module wsnbcast

go 1.22
