package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- f()
		w.Close()
	}()
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out), <-errCh
}

func TestLifetimeTableSmall(t *testing.T) {
	out, err := capture(t, func() error { return run("2d4", 10, 8, 0, 0.5) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.50 J", "2D-4", "Rounds (rotated)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestLifetimeBadTopo(t *testing.T) {
	if _, err := capture(t, func() error { return run("hex", 0, 0, 0, 1) }); err == nil {
		t.Error("bad topology accepted")
	}
}
