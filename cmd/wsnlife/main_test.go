package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

// smallStudy is a fast study whose batteries die within the cap: an
// 8x8 2d4 mesh on a 4 mJ budget.
func smallStudy() options {
	return options{
		topo:       "2d4",
		m:          8,
		n:          8,
		budgetJ:    0.004,
		rounds:     32,
		seed:       11,
		reps:       1,
		strategies: "static,residual",
		churn:      "0",
		workers:    2,
	}
}

func TestStudyTable(t *testing.T) {
	var out bytes.Buffer
	if err := run(smallStudy(), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2d4", "lifetime", "First death", "static", "residual"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

// TestStudyJSONMatchesService: -json emits exactly the bytes wsnserved
// serves for the equivalent POST /v1/lifetime document.
func TestStudyJSONMatchesService(t *testing.T) {
	o := smallStudy()
	o.jsonOut = true
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	sc := scenario.Scenario{
		Name:     "wsnlife",
		Topology: scenario.TopologySpec{Kind: "2d4", M: 8, N: 8},
		Sources:  []scenario.Point{{X: 4, Y: 4}},
		Lifetime: &scenario.LifetimeSpec{
			BudgetJ:    0.004,
			MaxRounds:  32,
			Seed:       11,
			Strategies: []string{"static", "residual"},
			ChurnRates: []float64{0},
		},
	}.Canonical()
	rep, err := sc.LifetimeReport(context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.EncodeBody(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Error("-json output differs from the /v1/lifetime body")
	}
}

// TestStudyAllTopologiesJSON: an empty -topo runs all four canonical
// meshes and -json emits them as a JSON array.
func TestStudyAllTopologiesJSON(t *testing.T) {
	o := smallStudy()
	o.topo, o.m, o.n = "", 0, 0
	o.rounds = 4
	o.strategies = "static"
	o.jsonOut = true
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	var reps []scenario.Report
	if err := json.Unmarshal(out.Bytes(), &reps); err != nil {
		t.Fatalf("not a JSON array of reports: %v", err)
	}
	if len(reps) != 4 {
		t.Fatalf("got %d reports, want 4", len(reps))
	}
	for _, rep := range reps {
		if len(rep.Lifetime) == 0 {
			t.Errorf("%s report has no lifetime cells", rep.Topology)
		}
	}
}

func TestStaticTable(t *testing.T) {
	o := smallStudy()
	o.static = true
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2D-4", "Rounds (rotated)", "Imbalance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadTopoSuggestion: a near-miss -topo gets a did-you-mean hint,
// a far one lists the choices.
func TestBadTopoSuggestion(t *testing.T) {
	o := smallStudy()
	o.topo = "2d44"
	err := run(o, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), `did you mean "2d4"`) {
		t.Errorf("near-miss topo error = %v, want a 2d4 suggestion", err)
	}
	o.topo = "hex"
	err = run(o, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "2d3, 2d4, 2d8 or 3d6") {
		t.Errorf("unknown topo error = %v, want the choice list", err)
	}
}

// TestBadStrategyHint: strategy validation (with its did-you-mean
// hint) flows up from the scenario layer.
func TestBadStrategyHint(t *testing.T) {
	o := smallStudy()
	o.strategies = "residul"
	err := run(o, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "residual") {
		t.Errorf("bad strategy error = %v, want a residual hint", err)
	}
}

func TestBadChurn(t *testing.T) {
	o := smallStudy()
	o.churn = "0,nope"
	if err := run(o, &bytes.Buffer{}); err == nil {
		t.Error("malformed -churn accepted")
	}
	o.churn = "1.5"
	if err := run(o, &bytes.Buffer{}); err == nil {
		t.Error("out-of-range churn rate accepted")
	}
}
