// Command wsnlife measures network lifetime by actually living it: a
// multi-round study (internal/life) that broadcasts round after round,
// drains each relay's battery by its true per-round radio cost, kills
// nodes whose budget hits zero, optionally churns links up and down
// between rounds, and compares source-rotation strategies. It prints
// one table per topology — rounds survived, first-death round, death
// milestones, partition round, delivered fraction, total energy — per
// (strategy, churn rate, replication) cell.
//
// Identical seeds reproduce the study byte-for-byte at any -workers
// value, and -json emits exactly the bytes wsnserved serves for the
// equivalent POST /v1/lifetime document.
//
// Usage:
//
//	wsnlife                                   # four canonical meshes, all strategies
//	wsnlife -topo 2d4 -m 12 -n 12             # one custom mesh
//	wsnlife -budget-j 0.01 -rounds 1024       # bigger batteries, longer cap
//	wsnlife -churn 0,0.01,0.05 -pnew 0.25     # link churn grid
//	wsnlife -churn 0.05 -pnew 0.25 -burnin 64 # churn starts at steady state
//	wsnlife -cpuprofile life.pprof            # profile the round loop
//	wsnlife -strategies static,residual       # compare a strategy subset
//	wsnlife -seed 7 -reps 5                   # replicated, reproducible
//	wsnlife -topo 2d4 -json                   # the /v1/lifetime report body
//	wsnlife -static                           # the closed-form estimate (no round loop)
//	wsnlife -no-delta                         # force full per-round runs (identical bytes, slower)
//
// The -static flag keeps the original closed-form estimator: per-node
// energy of one broadcast scaled up to the budget, plus the idealized
// rotation-gain bound. It answers "how many rounds would the battery
// sustain if nothing ever changed" in microseconds; the default
// multi-round engine answers what actually happens as relays die.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/life"
	"wsnbcast/internal/profiling"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/store"
	"wsnbcast/internal/table"
)

type options struct {
	topo       string
	m, n, l    int
	source     string
	budgetJ    float64
	rounds     int
	burnin     int
	seed       uint64
	reps       int
	strategies string
	churn      string
	pnew       float64
	workers    int
	jsonOut    bool
	static     bool
	noDelta    bool
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	flag.IntVar(&o.m, "m", 0, "mesh width (0 = canonical)")
	flag.IntVar(&o.n, "n", 0, "mesh height")
	flag.IntVar(&o.l, "l", 0, "mesh depth (3d6)")
	flag.StringVar(&o.source, "source", "", `round-1 source "x,y" or "x,y,z" (default: mesh center)`)
	flag.Float64Var(&o.budgetJ, "budget-j", 0.05, "per-node battery budget in Joules")
	flag.IntVar(&o.rounds, "rounds", 512, "round cap per cell")
	flag.IntVar(&o.burnin, "burnin", 0, "link-churn burn-in steps before round 1 (0 = start all-up)")
	flag.Uint64Var(&o.seed, "seed", 1, "study seed; identical seeds reproduce the study byte-for-byte")
	flag.IntVar(&o.reps, "reps", 1, "replications per (strategy, churn rate) cell")
	flag.StringVar(&o.strategies, "strategies", "static,round-robin,residual", "comma-separated rotation strategies to compare")
	flag.StringVar(&o.churn, "churn", "0", "comma-separated per-round link failure probabilities")
	flag.Float64Var(&o.pnew, "pnew", 0, "per-round recovery probability of a down link (0 = permanent failures)")
	flag.IntVar(&o.workers, "workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the lifetime report as JSON (the POST /v1/lifetime body)")
	flag.BoolVar(&o.static, "static", false, "print the closed-form single-round estimate instead of running the multi-round engine")
	flag.BoolVar(&o.noDelta, "no-delta", false, "run every round through the full engine instead of the incremental delta path (identical output, slower)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsnlife:", err)
		os.Exit(1)
	}
	runErr := run(o, os.Stdout)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "wsnlife:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "wsnlife:", runErr)
		os.Exit(1)
	}
}

// topoNames is the accepted -topo spelling set, in display order.
var topoNames = []string{"2d3", "2d4", "2d8", "3d6"}

// topoKinds resolves -topo; empty means all four canonical meshes.
func topoKinds(name string) ([]grid.Kind, error) {
	switch strings.ToLower(name) {
	case "":
		return grid.Kinds(), nil
	case "2d3":
		return []grid.Kind{grid.Mesh2D3}, nil
	case "2d4":
		return []grid.Kind{grid.Mesh2D4}, nil
	case "2d8":
		return []grid.Kind{grid.Mesh2D8}, nil
	case "3d6":
		return []grid.Kind{grid.Mesh3D6}, nil
	default:
		msg := fmt.Sprintf("unknown topology %q", name)
		if s := scenario.Suggest(name, topoNames); s != "" {
			msg += fmt.Sprintf(" — did you mean %q?", s)
		} else {
			msg += " (want 2d3, 2d4, 2d8 or 3d6)"
		}
		return nil, fmt.Errorf("%s", msg)
	}
}

// topology sizes one mesh: canonical unless -m/-n name a custom size.
func topology(o options, k grid.Kind) (grid.Topology, error) {
	if o.m == 0 && o.n == 0 {
		return grid.Canonical(k), nil
	}
	if o.m < 1 || o.n < 1 {
		return nil, fmt.Errorf("mesh needs -m and -n >= 1")
	}
	depth := 1
	if k == grid.Mesh3D6 && o.l > 0 {
		depth = o.l
	}
	return grid.New(k, o.m, o.n, depth), nil
}

func parseSource(s string, t grid.Topology) (grid.Coord, error) {
	if s == "" {
		m, n, l := t.Size()
		return grid.C3((m+1)/2, (n+1)/2, (l+1)/2), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 && len(parts) != 3 {
		return grid.Coord{}, fmt.Errorf(`invalid -source %q: need "x,y" or "x,y,z"`, s)
	}
	vals := make([]int, 3)
	vals[2] = 1
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return grid.Coord{}, fmt.Errorf("invalid -source %q: %v", s, err)
		}
		vals[i] = v
	}
	c := grid.C3(vals[0], vals[1], vals[2])
	if !t.Contains(c) {
		return grid.Coord{}, fmt.Errorf("source %s outside the %s mesh", c, t.Kind())
	}
	return c, nil
}

func parseChurn(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -churn rate %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-churn needs at least one rate")
	}
	return out, nil
}

func parseStrategies(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(o options, w io.Writer) error {
	kinds, err := topoKinds(o.topo)
	if err != nil {
		return err
	}
	if o.static {
		return runStatic(o, w, kinds)
	}
	return runStudy(o, w, kinds)
}

// runStudy runs the multi-round lifetime engine on each requested
// topology through the scenario layer, so the CLI, POST /v1/lifetime
// and async lifetime jobs all render the same report for the same
// inputs.
func runStudy(o options, w io.Writer, kinds []grid.Kind) error {
	if o.workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", o.workers)
	}
	churn, err := parseChurn(o.churn)
	if err != nil {
		return err
	}
	reports := make([]scenario.Report, 0, len(kinds))
	for _, k := range kinds {
		topo, err := topology(o, k)
		if err != nil {
			return err
		}
		src, err := parseSource(o.source, topo)
		if err != nil {
			return err
		}
		sc := scenario.Scenario{
			Name:     "wsnlife",
			Topology: topologySpec(topo),
			Sources:  []scenario.Point{{X: src.X, Y: src.Y, Z: src.Z}},
			Lifetime: &scenario.LifetimeSpec{
				BudgetJ:      o.budgetJ,
				MaxRounds:    o.rounds,
				Seed:         o.seed,
				Replications: o.reps,
				Strategies:   parseStrategies(o.strategies),
				ChurnRates:   churn,
				PNew:         o.pnew,
				BurnInRounds: o.burnin,
			},
		}.Canonical()
		sc.LifetimeNoDelta = o.noDelta
		rep, err := sc.LifetimeReport(context.Background(), o.workers, nil)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if o.jsonOut {
		return writeJSON(w, reports)
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := printStudy(w, o, rep); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON emits a single report exactly as wsnserved would serve it
// for the equivalent POST /v1/lifetime document; multiple topologies
// become a JSON array of those bodies.
func writeJSON(w io.Writer, reports []scenario.Report) error {
	if len(reports) == 1 {
		body, err := store.EncodeBody(reports[0])
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	}
	body, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	_, err = w.Write(body)
	return err
}

func printStudy(w io.Writer, o options, rep scenario.Report) error {
	t := &table.Table{
		Title: fmt.Sprintf("%s %s lifetime: %s/node, <=%d rounds, seed %d",
			rep.Topology, rep.Protocol, table.FormatJ(o.budgetJ), o.rounds, rep.LifetimeSeed),
		Headers: []string{"Strategy", "Churn", "Rep", "Rounds", "First death",
			"50% dead", "Partition", "Delivered", "Energy"},
	}
	for _, c := range rep.Lifetime {
		t.AddRow(c.Strategy, fmt.Sprintf("%g", c.PFail), c.Rep, c.Rounds,
			fmtRound(c.FirstDeathRound), fmtRound(milestoneRound(c, 0.50)),
			fmtRound(c.PartitionRound),
			fmt.Sprintf("%d/%d", c.DeliveredRounds, c.Rounds),
			table.FormatJ(c.TotalEnergyJ))
	}
	return t.Render(w)
}

// fmtRound renders a 1-based round number; zero means the event never
// happened within the run.
func fmtRound(r int) string {
	if r == 0 {
		return "-"
	}
	return strconv.Itoa(r)
}

// milestoneRound returns the round by which the given fraction of
// nodes had died, or 0 when the run never got there.
func milestoneRound(c life.CellReport, frac float64) int {
	for _, m := range c.DeadMilestones {
		if m.Frac == frac {
			return m.Round
		}
	}
	return 0
}

// topologySpec maps a compiled topology back to its scenario document
// form.
func topologySpec(t grid.Topology) scenario.TopologySpec {
	m, n, l := t.Size()
	spec := scenario.TopologySpec{Kind: kindDoc(t.Kind()), M: m, N: n}
	if l > 1 {
		spec.L = l
	}
	return spec
}

// kindDoc is the scenario-document spelling of a topology kind.
func kindDoc(k grid.Kind) string {
	switch k {
	case grid.Mesh2D3:
		return "2d3"
	case grid.Mesh2D8:
		return "2d8"
	case grid.Mesh3D6:
		return "3d6"
	default:
		return "2d4"
	}
}

// runStatic prints the original closed-form estimate: the per-node
// energy profile of a single broadcast scaled up to the budget, and
// the idealized gain bound from rotating the source.
func runStatic(o options, w io.Writer, kinds []grid.Kind) error {
	t := &table.Table{
		Title: fmt.Sprintf("Network lifetime estimate on a %s per-node budget (center source)", table.FormatJ(o.budgetJ)),
		Headers: []string{"Topology", "Max node J/bcast", "Mean node J/bcast",
			"Imbalance", "Rounds (fixed)", "Rounds (rotated)", "Gain"},
	}
	for _, k := range kinds {
		topo, err := topology(o, k)
		if err != nil {
			return err
		}
		center, err := parseSource(o.source, topo)
		if err != nil {
			return err
		}
		p := core.ForTopology(k)
		est, err := analysis.Lifetime(topo, p, center, sim.Config{}, o.budgetJ)
		if err != nil {
			return err
		}
		rot, err := analysis.CompareRotation(topo, p, center, sim.Config{}, o.budgetJ, 1<<22)
		if err != nil {
			return err
		}
		t.AddRow(k.String(),
			table.FormatJ(est.MaxNodeEnergyJ), table.FormatJ(est.MeanNodeEnergyJ),
			fmt.Sprintf("%.1fx", est.ImbalanceRatio),
			rot.FixedRounds, rot.RotatedRounds, fmt.Sprintf("%.2fx", rot.Gain))
	}
	return t.Render(w)
}
