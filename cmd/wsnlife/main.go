// Command wsnlife estimates network lifetime: how many broadcasts a
// per-node battery budget sustains under each topology's protocol,
// the per-node energy distribution, and the gain from rotating the
// broadcast source.
//
// Usage:
//
//	wsnlife                     # canonical meshes, center source, 1 J budget
//	wsnlife -budget 2.5         # custom battery budget (Joules)
//	wsnlife -topo 2d4 -m 20 -n 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

func main() {
	topoName := flag.String("topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	m := flag.Int("m", 0, "mesh width (0 = canonical)")
	n := flag.Int("n", 0, "mesh height")
	l := flag.Int("l", 0, "mesh depth (3d6)")
	budget := flag.Float64("budget", 1.0, "per-node battery budget in Joules")
	flag.Parse()

	if err := run(*topoName, *m, *n, *l, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "wsnlife:", err)
		os.Exit(1)
	}
}

func run(topoName string, m, n, l int, budget float64) error {
	var kinds []grid.Kind
	switch strings.ToLower(topoName) {
	case "":
		kinds = grid.Kinds()
	case "2d3":
		kinds = []grid.Kind{grid.Mesh2D3}
	case "2d4":
		kinds = []grid.Kind{grid.Mesh2D4}
	case "2d8":
		kinds = []grid.Kind{grid.Mesh2D8}
	case "3d6":
		kinds = []grid.Kind{grid.Mesh3D6}
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}
	t := &table.Table{
		Title: fmt.Sprintf("Network lifetime on a %.2f J per-node budget (center source)", budget),
		Headers: []string{"Topology", "Max node J/bcast", "Mean node J/bcast",
			"Imbalance", "Rounds (fixed)", "Rounds (rotated)", "Gain"},
	}
	for _, k := range kinds {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 && l > 0 {
				depth = l
			}
			topo = grid.New(k, m, n, depth)
		}
		mm, nn, ll := topo.Size()
		center := grid.C3((mm+1)/2, (nn+1)/2, (ll+1)/2)
		p := core.ForTopology(k)
		life, err := analysis.Lifetime(topo, p, center, sim.Config{}, budget)
		if err != nil {
			return err
		}
		rot, err := analysis.CompareRotation(topo, p, center, sim.Config{}, budget, 1<<22)
		if err != nil {
			return err
		}
		t.AddRow(k.String(),
			table.FormatJ(life.MaxNodeEnergyJ), table.FormatJ(life.MeanNodeEnergyJ),
			fmt.Sprintf("%.1fx", life.ImbalanceRatio),
			rot.FixedRounds, rot.RotatedRounds, fmt.Sprintf("%.2fx", rot.Gain))
	}
	return t.Render(os.Stdout)
}
