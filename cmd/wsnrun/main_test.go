package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `{
  "name": "t",
  "topology": {"kind": "2d4", "m": 8, "n": 6},
  "sources": [{"x": 4, "y": 3}]
}`

const relDoc = `{
  "name": "rel",
  "topology": {"kind": "2d4", "m": 8, "n": 6},
  "sources": [{"x": 4, "y": 3}],
  "disable_repair": true,
  "reliability": {"seed": 1, "replications": 4, "loss_rates": [0, 0.1]}
}`

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	if err := run("-", overrides{}, strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"reached": 48`) {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(p, overrides{}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name": "t"`) {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run("/no/such/file.json", overrides{}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBadScenario(t *testing.T) {
	var out strings.Builder
	if err := run("-", overrides{}, strings.NewReader(`{"topology":{"kind":"hex","m":2,"n":2}}`), &out); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestRunReliabilityScenario(t *testing.T) {
	var out strings.Builder
	if err := run("-", overrides{}, strings.NewReader(relDoc), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"reliability"`, `"loss_rate": 0.1`, `"reliability_seed": 1`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %s:\n%s", want, out.String())
		}
	}
}

// -seed and -replications override the document's reliability section,
// and the override must show up in the report.
func TestSeedAndReplicationsOverride(t *testing.T) {
	var out strings.Builder
	o := overrides{seed: 99, seedSet: true, replications: 2, repsSet: true}
	if err := run("-", o, strings.NewReader(relDoc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"reliability_seed": 99`) {
		t.Errorf("seed override missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `"replications": 2`) {
		t.Errorf("replications override missing:\n%s", out.String())
	}
}

func TestRejectsNonPositiveReplications(t *testing.T) {
	for _, reps := range []int{0, -5} {
		var out strings.Builder
		o := overrides{replications: reps, repsSet: true}
		err := run("-", o, strings.NewReader(relDoc), &out)
		if err == nil || !strings.Contains(err.Error(), "-replications") {
			t.Errorf("replications=%d: err = %v, want -replications validation error", reps, err)
		}
	}
}

func TestOverrideNeedsReliabilitySection(t *testing.T) {
	var out strings.Builder
	o := overrides{seed: 7, seedSet: true}
	err := run("-", o, strings.NewReader(doc), &out)
	if err == nil || !strings.Contains(err.Error(), "no reliability section") {
		t.Errorf("err = %v, want missing-reliability error", err)
	}
}
