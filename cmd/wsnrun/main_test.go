package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const doc = `{
  "name": "t",
  "topology": {"kind": "2d4", "m": 8, "n": 6},
  "sources": [{"x": 4, "y": 3}]
}`

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	if err := run("-", strings.NewReader(doc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"reached": 48`) {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(p, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"name": "t"`) {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run("/no/such/file.json", nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBadScenario(t *testing.T) {
	var out strings.Builder
	if err := run("-", strings.NewReader(`{"topology":{"kind":"hex","m":2,"n":2}}`), &out); err == nil {
		t.Error("bad scenario accepted")
	}
}
