// Command wsnrun executes a declarative JSON scenario and prints a
// JSON report: topology, protocol, sources, failures, pipelining,
// lifetime budget, convergecast and Monte Carlo reliability studies,
// all in one document.
//
// Usage:
//
//	wsnrun scenario.json              # one scenario object, or a JSON array of them
//	wsnrun -                          # read from stdin; arrays run in parallel
//	wsnrun -seed 7 -replications 200 scenario.json
//
// -seed and -replications override the corresponding fields of the
// scenario's "reliability" section, so one document can be re-run
// under different seeds or replication counts without editing it.
//
// Example scenario:
//
//	{
//	  "name": "field-study",
//	  "topology": {"kind": "2d4", "m": 32, "n": 16},
//	  "sources": [{"x": 16, "y": 8}],
//	  "reliability": {"replications": 100, "loss_rates": [0, 0.1]}
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsnbcast/internal/scenario"
)

// overrides carries the -seed/-replications flag values; the set bits
// record whether the user passed the flag at all, since zero is a
// meaningful seed.
type overrides struct {
	seed         uint64
	seedSet      bool
	replications int
	repsSet      bool
}

func main() {
	var o overrides
	flag.Uint64Var(&o.seed, "seed", 0, "override the reliability study seed")
	flag.IntVar(&o.replications, "replications", 0, "override the reliability replication count (>= 1)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wsnrun [flags] <scenario.json | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			o.seedSet = true
		case "replications":
			o.repsSet = true
		}
	})
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsnrun:", err)
		os.Exit(1)
	}
}

func run(path string, o overrides, stdin io.Reader, stdout io.Writer) error {
	if o.repsSet && o.replications < 1 {
		return fmt.Errorf("invalid -replications %d: must be >= 1", o.replications)
	}
	var in io.Reader
	if path == "-" {
		in = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	scenarios, err := scenario.LoadAll(in)
	if err != nil {
		return err
	}
	if o.seedSet || o.repsSet {
		for i := range scenarios {
			rel := scenarios[i].Reliability
			if rel == nil {
				return fmt.Errorf("scenario %q has no reliability section to apply -seed/-replications to",
					scenarios[i].Name)
			}
			if o.seedSet {
				rel.Seed = o.seed
			}
			if o.repsSet {
				rel.Replications = o.replications
			}
		}
	}
	reports, err := scenario.RunAll(scenarios)
	if err != nil {
		return err
	}
	if len(reports) == 1 {
		return reports[0].Write(stdout)
	}
	return scenario.WriteAll(stdout, reports)
}
