// Command wsnrun executes a declarative JSON scenario and prints a
// JSON report: topology, protocol, sources, failures, pipelining,
// lifetime budget and convergecast, all in one document.
//
// Usage:
//
//	wsnrun scenario.json     # one scenario object, or a JSON array of them
//	wsnrun -                 # read from stdin; arrays run in parallel
//
// Example scenario:
//
//	{
//	  "name": "field-study",
//	  "topology": {"kind": "2d4", "m": 32, "n": 16},
//	  "sources": [{"x": 16, "y": 8}],
//	  "pipeline": {"packets": 10},
//	  "budget_j": 2.0,
//	  "convergecast": true
//	}
package main

import (
	"fmt"
	"io"
	"os"

	"wsnbcast/internal/scenario"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: wsnrun <scenario.json | ->")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsnrun:", err)
		os.Exit(1)
	}
}

func run(path string, stdin io.Reader, stdout io.Writer) error {
	var in io.Reader
	if path == "-" {
		in = stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	scenarios, err := scenario.LoadAll(in)
	if err != nil {
		return err
	}
	reports, err := scenario.RunAll(scenarios)
	if err != nil {
		return err
	}
	if len(reports) == 1 {
		return reports[0].Write(stdout)
	}
	return scenario.WriteAll(stdout, reports)
}
