package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/tracelog"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- f()
		w.Close()
	}()
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out), <-errCh
}

func TestRunSingleFigure(t *testing.T) {
	out, err := capture(t, func() error { return run(6, "", 0, 0, 0, 0, 0, 0, false, "", "") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5/8") {
		t.Errorf("fig 6 output:\n%s", out)
	}
}

func TestRunAllFigures(t *testing.T) {
	out, err := capture(t, func() error { return run(0, "", 0, 0, 0, 0, 0, 0, false, "", "") })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		if !strings.Contains(out, "=== Figure") {
			t.Fatal("figure headers missing")
		}
	}
	if strings.Count(out, "=== Figure") != 9 {
		t.Errorf("figure count = %d", strings.Count(out, "=== Figure"))
	}
}

func TestRunCustom(t *testing.T) {
	out, err := capture(t, func() error { return run(0, "2d4", 10, 8, 1, 5, 4, 1, true, "", "") })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"broadcast from (5,4)", "heatmap", "reachability=100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustom3D(t *testing.T) {
	out, err := capture(t, func() error { return run(0, "3d6", 5, 5, 3, 3, 3, 2, false, "", "") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(3,3,2)") {
		t.Errorf("3D source missing:\n%s", out)
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]grid.Kind{
		"2d3": grid.Mesh2D3, "2D4": grid.Mesh2D4, "2d8": grid.Mesh2D8, "3D6": grid.Mesh3D6,
	} {
		got, err := parseKind(name)
		if err != nil || got != want {
			t.Errorf("parseKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseKind("hex"); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestRunCustomTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	_, err := capture(t, func() error { return run(0, "2d4", 8, 6, 1, 4, 3, 1, false, path, "") })
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := tracelog.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if err := tracelog.Check(events, grid.C2(4, 3)); err != nil {
		t.Error(err)
	}
}

func TestRunCustomSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.svg")
	_, err := capture(t, func() error { return run(0, "2d4", 8, 6, 1, 4, 3, 1, false, "", path) })
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("not an SVG file")
	}
}

func TestRunBadFigure(t *testing.T) {
	if _, err := capture(t, func() error { return run(12, "", 0, 0, 0, 0, 0, 0, false, "", "") }); err == nil {
		t.Error("figure 12 accepted")
	}
}
