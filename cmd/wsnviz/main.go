// Command wsnviz renders the paper's figures as ASCII: the four
// topologies (Figs. 1-4), the example broadcasts with relay maps and
// transmission sequences (Figs. 5, 7, 8), the ETR comparison (Fig. 6)
// and the z-relay lattice (Fig. 9). It can also visualize an arbitrary
// broadcast.
//
// Usage:
//
//	wsnviz -fig 5                  # one of the paper's figures (1-9)
//	wsnviz                         # all figures
//	wsnviz -topo 2d8 -m 20 -n 12 -sx 3 -sy 3   # custom broadcast
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wsnbcast/internal/core"
	"wsnbcast/internal/experiments"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/render"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/tracelog"
)

func main() {
	fig := flag.Int("fig", 0, "render paper figure N (1-9); 0 with no -topo means all")
	topoName := flag.String("topo", "", "custom run: topology (2d3, 2d4, 2d8, 3d6)")
	m := flag.Int("m", 16, "mesh width")
	n := flag.Int("n", 16, "mesh height")
	l := flag.Int("l", 8, "mesh depth (3d6 only)")
	sx := flag.Int("sx", 1, "source x")
	sy := flag.Int("sy", 1, "source y")
	sz := flag.Int("sz", 1, "source z (3d6 only)")
	heat := flag.Bool("heat", false, "custom run: render the per-node energy heatmap too")
	tracePath := flag.String("trace", "", "custom run: dump the event trace as JSONL to this file")
	svgPath := flag.String("svg", "", "custom run: write the relay map as SVG to this file")
	flag.Parse()

	if err := run(*fig, *topoName, *m, *n, *l, *sx, *sy, *sz, *heat, *tracePath, *svgPath); err != nil {
		fmt.Fprintln(os.Stderr, "wsnviz:", err)
		os.Exit(1)
	}
}

func run(fig int, topoName string, m, n, l, sx, sy, sz int, heat bool, tracePath, svgPath string) error {
	if topoName != "" {
		return custom(topoName, m, n, l, sx, sy, sz, heat, tracePath, svgPath)
	}
	if fig != 0 {
		out, err := experiments.Figure(fig, experiments.Config{})
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	for i := 1; i <= 9; i++ {
		fmt.Printf("=== Figure %d ===\n", i)
		out, err := experiments.Figure(i, experiments.Config{})
		if err != nil {
			return err
		}
		fmt.Print(out)
		fmt.Println()
	}
	return nil
}

func parseKind(name string) (grid.Kind, error) {
	switch strings.ToLower(name) {
	case "2d3":
		return grid.Mesh2D3, nil
	case "2d4":
		return grid.Mesh2D4, nil
	case "2d8":
		return grid.Mesh2D8, nil
	case "3d6":
		return grid.Mesh3D6, nil
	default:
		return 0, fmt.Errorf("unknown topology %q (want 2d3, 2d4, 2d8 or 3d6)", name)
	}
}

func custom(topoName string, m, n, l, sx, sy, sz int, heat bool, tracePath, svgPath string) error {
	k, err := parseKind(topoName)
	if err != nil {
		return err
	}
	topo := grid.New(k, m, n, l)
	src := grid.C3(sx, sy, sz)
	if k != grid.Mesh3D6 {
		src = grid.C2(sx, sy)
	}
	cfg := sim.Config{}
	var traceFile *os.File
	var traceWriter *tracelog.Writer
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		traceWriter = tracelog.NewWriter(traceFile)
		cfg.Trace = traceWriter.Sink()
	}
	r, err := sim.Run(topo, core.ForTopology(k), src, cfg)
	if err != nil {
		return err
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return err
		}
	}
	fmt.Print(render.BroadcastMap(topo, r, src.Z))
	fmt.Print(render.SequenceMap(topo, r, src.Z))
	if heat {
		fmt.Print(render.EnergyHeatmap(topo, r, src.Z))
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(render.BroadcastSVG(topo, r, src.Z)), 0o644); err != nil {
			return err
		}
	}
	fmt.Println(render.Summary(r))
	return nil
}
