// Command wsnsweep runs full source-position sweeps and emits one CSV
// row per (topology, source) for external plotting: Tx, Rx, energy,
// delay, collisions and repairs. This is the raw data behind Tables
// 3-5.
//
// The sweeps run on the parallel sweep engine (internal/sweep); rows
// are gathered in job order, so the CSV is byte-identical for every
// -workers value.
//
// Usage:
//
//	wsnsweep                       # canonical meshes, paper protocols
//	wsnsweep -topo 2d8             # one topology
//	wsnsweep -proto flooding       # a baseline protocol
//	wsnsweep -m 20 -n 12 -l 1      # custom mesh size
//	wsnsweep -workers 4            # bound the worker pool (0 = GOMAXPROCS)
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

func main() {
	topoName := flag.String("topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	protoName := flag.String("proto", "paper", "protocol: paper, flooding, flooding-jitter")
	m := flag.Int("m", 0, "mesh width (0 = canonical)")
	n := flag.Int("n", 0, "mesh height")
	l := flag.Int("l", 0, "mesh depth (3d6)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*topoName, *protoName, *m, *n, *l, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "wsnsweep:", err)
		os.Exit(1)
	}
}

func kinds(topoName string) ([]grid.Kind, error) {
	if topoName == "" {
		return grid.Kinds(), nil
	}
	switch strings.ToLower(topoName) {
	case "2d3":
		return []grid.Kind{grid.Mesh2D3}, nil
	case "2d4":
		return []grid.Kind{grid.Mesh2D4}, nil
	case "2d8":
		return []grid.Kind{grid.Mesh2D8}, nil
	case "3d6":
		return []grid.Kind{grid.Mesh3D6}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topoName)
	}
}

func protocol(name string, k grid.Kind) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "paper", "":
		return core.ForTopology(k), nil
	case "flooding":
		return core.NewFlooding(), nil
	case "flooding-jitter":
		return core.NewJitteredFlooding(8), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

// jobs builds the full job list: every source of every selected
// topology, in topology-then-source order. The engine's outcome order
// matches, so the CSV rows below come out identical to a serial loop.
func jobs(topoName, protoName string, m, n, l int) ([]sweep.Job, error) {
	ks, err := kinds(topoName)
	if err != nil {
		return nil, err
	}
	var out []sweep.Job
	for _, k := range ks {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 {
				depth = l
				if depth <= 0 {
					depth = 1
				}
			}
			topo = grid.New(k, m, n, depth)
		}
		p, err := protocol(protoName, k)
		if err != nil {
			return nil, err
		}
		out = append(out, sweep.SourceJobs(topo, p, sim.Config{})...)
	}
	return out, nil
}

func row(j sweep.Job, r *sim.Result) []string {
	return []string{
		j.Topology.Kind().String(), j.Protocol.Name(),
		strconv.Itoa(j.Source.X), strconv.Itoa(j.Source.Y), strconv.Itoa(j.Source.Z),
		strconv.Itoa(r.Tx), strconv.Itoa(r.Rx),
		strconv.FormatFloat(r.EnergyJ, 'e', 6, 64),
		strconv.Itoa(r.Delay), strconv.Itoa(r.Collisions),
		strconv.Itoa(r.Duplicates), strconv.Itoa(r.Repairs),
		strconv.Itoa(r.Reached), strconv.Itoa(r.Total),
	}
}

func run(topoName, protoName string, m, n, l, workers int) error {
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", workers)
	}
	js, err := jobs(topoName, protoName, m, n, l)
	if err != nil {
		return err
	}
	outs, err := sweep.New(workers).Run(context.Background(), js)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"topology", "protocol", "src_x", "src_y", "src_z",
		"tx", "rx", "energy_j", "delay", "collisions", "duplicates", "repairs", "reached", "total"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job, o.Err)
		}
		if err := w.Write(row(o.Job, o.Result)); err != nil {
			return err
		}
	}
	return nil
}
