// Command wsnsweep runs full source-position sweeps and emits one CSV
// row per (topology, source) for external plotting: Tx, Rx, energy,
// delay, collisions and repairs. This is the raw data behind Tables
// 3-5.
//
// The sweeps run on the parallel sweep engine (internal/sweep); rows
// are gathered in job order, so the CSV is byte-identical for every
// -workers value.
//
// Usage:
//
//	wsnsweep                       # canonical meshes, paper protocols
//	wsnsweep -topo 2d8             # one topology
//	wsnsweep -proto flooding       # a baseline protocol
//	wsnsweep -m 20 -n 12 -l 1      # custom mesh size
//	wsnsweep -workers 4            # bound the worker pool (0 = GOMAXPROCS)
//	wsnsweep -store DIR            # share wsnserved's durable result store
//
// With -store, each topology's sweep is served from (and written to)
// the same content-addressed store wsnserved uses, so sweeps the
// service already answered emit their CSV without simulating — and
// sweeps computed here serve later /v1/sweep requests.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/store"
	"wsnbcast/internal/sweep"
)

func main() {
	topoName := flag.String("topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	protoName := flag.String("proto", "paper", "protocol: paper, flooding, flooding-jitter")
	m := flag.Int("m", 0, "mesh width (0 = canonical)")
	n := flag.Int("n", 0, "mesh height")
	l := flag.Int("l", 0, "mesh depth (3d6)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "durable result store directory shared with wsnserved (serves repeats without simulating)")
	flag.Parse()

	if err := run(*topoName, *protoName, *m, *n, *l, *workers, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "wsnsweep:", err)
		os.Exit(1)
	}
}

func kinds(topoName string) ([]grid.Kind, error) {
	if topoName == "" {
		return grid.Kinds(), nil
	}
	switch strings.ToLower(topoName) {
	case "2d3":
		return []grid.Kind{grid.Mesh2D3}, nil
	case "2d4":
		return []grid.Kind{grid.Mesh2D4}, nil
	case "2d8":
		return []grid.Kind{grid.Mesh2D8}, nil
	case "3d6":
		return []grid.Kind{grid.Mesh3D6}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topoName)
	}
}

func protocol(name string, k grid.Kind) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "paper", "":
		return core.ForTopology(k), nil
	case "flooding":
		return core.NewFlooding(), nil
	case "flooding-jitter":
		return core.NewJitteredFlooding(8), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

// jobs builds the full job list: every source of every selected
// topology, in topology-then-source order. The engine's outcome order
// matches, so the CSV rows below come out identical to a serial loop.
func jobs(topoName, protoName string, m, n, l int) ([]sweep.Job, error) {
	ks, err := kinds(topoName)
	if err != nil {
		return nil, err
	}
	var out []sweep.Job
	for _, k := range ks {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 {
				depth = l
				if depth <= 0 {
					depth = 1
				}
			}
			topo = grid.New(k, m, n, depth)
		}
		p, err := protocol(protoName, k)
		if err != nil {
			return nil, err
		}
		out = append(out, sweep.SourceJobs(topo, p, sim.Config{})...)
	}
	return out, nil
}

func row(j sweep.Job, r *sim.Result) []string {
	return []string{
		j.Topology.Kind().String(), j.Protocol.Name(),
		strconv.Itoa(j.Source.X), strconv.Itoa(j.Source.Y), strconv.Itoa(j.Source.Z),
		strconv.Itoa(r.Tx), strconv.Itoa(r.Rx),
		strconv.FormatFloat(r.EnergyJ, 'e', 6, 64),
		strconv.Itoa(r.Delay), strconv.Itoa(r.Collisions),
		strconv.Itoa(r.Duplicates), strconv.Itoa(r.Repairs),
		strconv.Itoa(r.Reached), strconv.Itoa(r.Total),
	}
}

func run(topoName, protoName string, m, n, l, workers int, storeDir string) error {
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", workers)
	}
	// Validate the selection before the header hits stdout, so bad
	// flags fail with a clean message and no partial CSV.
	ks, err := kinds(topoName)
	if err != nil {
		return err
	}
	if _, err := protocol(protoName, ks[0]); err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"topology", "protocol", "src_x", "src_y", "src_z",
		"tx", "rx", "energy_j", "delay", "collisions", "duplicates", "repairs", "reached", "total"}
	if err := w.Write(header); err != nil {
		return err
	}
	if storeDir != "" {
		return runStored(w, ks, protoName, m, n, l, workers, storeDir)
	}
	js, err := jobs(topoName, protoName, m, n, l)
	if err != nil {
		return err
	}
	outs, err := sweep.New(workers).Run(context.Background(), js)
	if err != nil {
		return err
	}
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Job, o.Err)
		}
		if err := w.Write(row(o.Job, o.Result)); err != nil {
			return err
		}
	}
	return nil
}

// runStored serves each topology's sweep through the durable
// content-addressed store shared with wsnserved: the flags compile to
// the canonical /v1/sweep scenario document per topology, so a sweep
// the service (or a previous invocation) already computed prints
// without simulating, and fresh sweeps are stored for both to reuse.
// The CSV is byte-identical to the direct path — rows reconstruct from
// the stored report's runs, which round-trip float64 exactly.
func runStored(w *csv.Writer, ks []grid.Kind, protoName string, m, n, l, workers int, storeDir string) error {
	st, err := store.Open(storeDir)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer st.Close()
	for _, k := range ks {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 {
				depth = l
				if depth <= 0 {
					depth = 1
				}
			}
			topo = grid.New(k, m, n, depth)
		}
		p, err := protocol(protoName, k)
		if err != nil {
			return err
		}
		tm, tn, tl := topo.Size()
		spec := scenario.TopologySpec{Kind: kindDoc(k), M: tm, N: tn}
		if tl > 1 {
			spec.L = tl
		}
		sc := scenario.Scenario{Topology: spec, Protocol: strings.ToLower(protoName)}.Canonical()
		key, err := store.Key("sweep", sc)
		if err != nil {
			return err
		}
		body, ok := st.Get(key)
		if !ok {
			rep, err := sc.SweepReport(context.Background(), workers, nil)
			if err != nil {
				return err
			}
			if body, err = store.EncodeBody(rep); err != nil {
				return err
			}
			st.Put(key, body)
		}
		var rep scenario.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return fmt.Errorf("stored result for %s: %w", key, err)
		}
		for i := range rep.Runs {
			if err := w.Write(storedRow(k, p, &rep.Runs[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

// storedRow renders one stored run as the same CSV row the direct
// path produces.
func storedRow(k grid.Kind, p sim.Protocol, r *scenario.RunReport) []string {
	return []string{
		k.String(), p.Name(),
		strconv.Itoa(r.Source.X), strconv.Itoa(r.Source.Y), strconv.Itoa(r.Source.Z),
		strconv.Itoa(r.Tx), strconv.Itoa(r.Rx),
		strconv.FormatFloat(r.EnergyJ, 'e', 6, 64),
		strconv.Itoa(r.Delay), strconv.Itoa(r.Collisions),
		strconv.Itoa(r.Duplicates), strconv.Itoa(r.Repairs),
		strconv.Itoa(r.Reached), strconv.Itoa(r.Total),
	}
}

// kindDoc is the scenario-document spelling of a topology kind.
func kindDoc(k grid.Kind) string {
	switch k {
	case grid.Mesh2D3:
		return "2d3"
	case grid.Mesh2D8:
		return "2d8"
	case grid.Mesh3D6:
		return "3d6"
	default:
		return "2d4"
	}
}
