// Command wsnsweep runs full source-position sweeps and emits one CSV
// row per (topology, source) for external plotting: Tx, Rx, energy,
// delay, collisions and repairs. This is the raw data behind Tables
// 3-5.
//
// Usage:
//
//	wsnsweep                       # canonical meshes, paper protocols
//	wsnsweep -topo 2d8             # one topology
//	wsnsweep -proto flooding       # a baseline protocol
//	wsnsweep -m 20 -n 12 -l 1      # custom mesh size
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func main() {
	topoName := flag.String("topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	protoName := flag.String("proto", "paper", "protocol: paper, flooding, flooding-jitter")
	m := flag.Int("m", 0, "mesh width (0 = canonical)")
	n := flag.Int("n", 0, "mesh height")
	l := flag.Int("l", 0, "mesh depth (3d6)")
	flag.Parse()

	if err := run(*topoName, *protoName, *m, *n, *l); err != nil {
		fmt.Fprintln(os.Stderr, "wsnsweep:", err)
		os.Exit(1)
	}
}

func kinds(topoName string) ([]grid.Kind, error) {
	if topoName == "" {
		return grid.Kinds(), nil
	}
	switch strings.ToLower(topoName) {
	case "2d3":
		return []grid.Kind{grid.Mesh2D3}, nil
	case "2d4":
		return []grid.Kind{grid.Mesh2D4}, nil
	case "2d8":
		return []grid.Kind{grid.Mesh2D8}, nil
	case "3d6":
		return []grid.Kind{grid.Mesh3D6}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topoName)
	}
}

func protocol(name string, k grid.Kind) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "paper", "":
		return core.ForTopology(k), nil
	case "flooding":
		return core.NewFlooding(), nil
	case "flooding-jitter":
		return core.NewJitteredFlooding(8), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func run(topoName, protoName string, m, n, l int) error {
	ks, err := kinds(topoName)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	header := []string{"topology", "protocol", "src_x", "src_y", "src_z",
		"tx", "rx", "energy_j", "delay", "collisions", "duplicates", "repairs", "reached", "total"}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, k := range ks {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 {
				depth = l
				if depth <= 0 {
					depth = 1
				}
			}
			topo = grid.New(k, m, n, depth)
		}
		p, err := protocol(protoName, k)
		if err != nil {
			return err
		}
		for i := 0; i < topo.NumNodes(); i++ {
			src := topo.At(i)
			r, err := sim.Run(topo, p, src, sim.Config{})
			if err != nil {
				return err
			}
			row := []string{
				k.String(), p.Name(),
				strconv.Itoa(src.X), strconv.Itoa(src.Y), strconv.Itoa(src.Z),
				strconv.Itoa(r.Tx), strconv.Itoa(r.Rx),
				strconv.FormatFloat(r.EnergyJ, 'e', 6, 64),
				strconv.Itoa(r.Delay), strconv.Itoa(r.Collisions),
				strconv.Itoa(r.Duplicates), strconv.Itoa(r.Repairs),
				strconv.Itoa(r.Reached), strconv.Itoa(r.Total),
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}
