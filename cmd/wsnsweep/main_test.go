package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/service"
	"wsnbcast/internal/store"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- f()
		w.Close()
	}()
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out), <-errCh
}

func TestSweepCSV(t *testing.T) {
	out, err := capture(t, func() error { return run("2d4", "paper", 6, 4, 0, 0, "") })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+24 {
		t.Fatalf("line count = %d, want header + 24 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "topology,protocol,src_x") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		fields := strings.Split(l, ",")
		if len(fields) != 14 {
			t.Fatalf("row %q has %d fields", l, len(fields))
		}
		if fields[12] != fields[13] {
			t.Errorf("row %q: reached != total", l)
		}
	}
}

func TestSweepFloodingProto(t *testing.T) {
	out, err := capture(t, func() error { return run("2d8", "flooding-jitter", 5, 4, 0, 0, "") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flooding-jitter") {
		t.Error("protocol column wrong")
	}
}

// The CSV must be byte-identical for every -workers value: the sweep
// engine orders rows by job, not by completion.
func TestSweepWorkersByteIdentical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		out, err := capture(t, func() error { return run("", "paper", 8, 4, 2, workers, "") })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = out
			continue
		}
		if out != want {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

func TestKindsAndProtocolParsing(t *testing.T) {
	ks, err := kinds("")
	if err != nil || len(ks) != 4 {
		t.Errorf("kinds('') = %v, %v", ks, err)
	}
	if _, err := kinds("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := protocol("bogus", grid.Mesh2D4); err == nil {
		t.Error("bogus protocol accepted")
	}
	p, err := protocol("", grid.Mesh2D8)
	if err != nil || p.Name() != "paper-2d8" {
		t.Errorf("default protocol = %v, %v", p, err)
	}
}

func TestRejectsNegativeWorkers(t *testing.T) {
	err := run("2d4", "paper", 4, 4, 0, -1, "")
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("run(workers=-1) = %v, want -workers validation error", err)
	}
}

// TestStoreModeByteIdentical: with -store, the first invocation
// computes and stores each topology's sweep, repeats serve from the
// store, and the CSV is byte-identical to the direct path either way.
func TestStoreModeByteIdentical(t *testing.T) {
	direct, err := capture(t, func() error { return run("", "paper", 6, 4, 2, 0, "") })
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	first, err := capture(t, func() error { return run("", "paper", 6, 4, 2, 0, dir) })
	if err != nil {
		t.Fatal(err)
	}
	if first != direct {
		t.Errorf("store-mode CSV differs from direct CSV:\n--- direct\n%s--- store\n%s", direct, first)
	}
	second, err := capture(t, func() error { return run("", "paper", 6, 4, 2, 0, dir) })
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("store-served repeat differs from the computed run")
	}
}

// TestStoreSharedWithService: a sweep computed by the CLI serves the
// HTTP service from the store without simulating, byte-identically —
// the CLI and the service share one content-addressed identity.
func TestStoreSharedWithService(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := capture(t, func() error { return run("2d4", "paper", 6, 4, 0, 0, dir) }); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{Store: st})
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep",
		strings.NewReader(`{"topology": {"kind": "2d4", "m": 6, "n": 4}}`))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("service sweep over CLI store: %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Cache"); got != "store" {
		t.Errorf("X-Cache = %q, want store (CLI-computed entry)", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
