package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() (bool, error)) (string, bool, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	type res struct {
		ok  bool
		err error
	}
	ch := make(chan res, 1)
	go func() {
		ok, err := f()
		ch <- res{ok, err}
		w.Close()
	}()
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	got := <-ch
	return string(out), got.ok, got.err
}

func TestVerifyAllCanonical(t *testing.T) {
	out, ok, err := capture(t, func() (bool, error) { return run("", 0, 0, 0, 0, 0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("canonical verification failed:\n%s", out)
	}
	if strings.Count(out, "OK") != 4 {
		t.Errorf("expected 4 OK lines:\n%s", out)
	}
}

func TestVerifySingleSource(t *testing.T) {
	out, ok, err := capture(t, func() (bool, error) { return run("2d4", 10, 8, 0, 5, 4, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !strings.Contains(out, "(5,4)") {
		t.Errorf("single-source verify:\n%s", out)
	}
}

func TestVerifyBadTopo(t *testing.T) {
	if _, _, err := capture(t, func() (bool, error) { return run("hex", 0, 0, 0, 0, 0, 1) }); err == nil {
		t.Error("bad topology accepted")
	}
}
