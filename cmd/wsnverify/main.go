// Command wsnverify statically checks a broadcast protocol's relay
// structure on a mesh before any simulation: domination (every node
// within one hop of a relay), relay connectivity to the source, and
// well-formed delays/offsets. Exit status 1 when verification fails.
//
// Usage:
//
//	wsnverify                          # all four paper protocols, canonical meshes, all sources
//	wsnverify -topo 2d8 -m 20 -n 12    # one topology/size
//	wsnverify -sx 3 -sy 4              # a single source
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/verify"
)

func main() {
	topoName := flag.String("topo", "", "topology (2d3, 2d4, 2d8, 3d6); empty means all four")
	m := flag.Int("m", 0, "mesh width (0 = canonical)")
	n := flag.Int("n", 0, "mesh height")
	l := flag.Int("l", 0, "mesh depth (3d6)")
	sx := flag.Int("sx", 0, "source x (0 = all sources)")
	sy := flag.Int("sy", 0, "source y")
	sz := flag.Int("sz", 1, "source z (3d6)")
	flag.Parse()

	ok, err := run(*topoName, *m, *n, *l, *sx, *sy, *sz)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsnverify:", err)
		os.Exit(2)
	}
	if !ok {
		os.Exit(1)
	}
}

func run(topoName string, m, n, l, sx, sy, sz int) (bool, error) {
	var kinds []grid.Kind
	switch strings.ToLower(topoName) {
	case "":
		kinds = grid.Kinds()
	case "2d3":
		kinds = []grid.Kind{grid.Mesh2D3}
	case "2d4":
		kinds = []grid.Kind{grid.Mesh2D4}
	case "2d8":
		kinds = []grid.Kind{grid.Mesh2D8}
	case "3d6":
		kinds = []grid.Kind{grid.Mesh3D6}
	default:
		return false, fmt.Errorf("unknown topology %q", topoName)
	}
	allOK := true
	for _, k := range kinds {
		topo := grid.Canonical(k)
		if m > 0 && n > 0 {
			depth := 1
			if k == grid.Mesh3D6 && l > 0 {
				depth = l
			}
			topo = grid.New(k, m, n, depth)
		}
		p := core.ForTopology(k)
		var rep verify.Report
		var err error
		if sx > 0 && sy > 0 {
			rep, err = verify.Check(topo, p, grid.C3(sx, sy, sz))
		} else {
			rep, err = verify.CheckAllSources(topo, p)
		}
		if err != nil {
			return false, err
		}
		mm, nn, ll := topo.Size()
		where := fmt.Sprintf("%dx%d", mm, nn)
		if ll > 1 {
			where = fmt.Sprintf("%dx%dx%d", mm, nn, ll)
		}
		if rep.OK() {
			fmt.Printf("OK   %-4s %-9s relays=%d (last checked source %s)\n",
				k, where, rep.Relays, rep.Source)
			for _, issue := range rep.Issues {
				fmt.Printf("     warning: %s\n", issue)
			}
			continue
		}
		allOK = false
		fmt.Printf("FAIL %-4s %-9s source %s: %d fatal issues\n",
			k, where, rep.Source, len(rep.Fatal()))
		for i, issue := range rep.Fatal() {
			if i == 8 {
				fmt.Printf("     ... and %d more\n", len(rep.Fatal())-8)
				break
			}
			fmt.Printf("     %s\n", issue)
		}
	}
	return allOK, nil
}
