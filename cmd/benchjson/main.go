// Command benchjson merges two `go test -bench -benchmem` text outputs
// — a pinned baseline and a current run — into a machine-readable
// record of before/after pairs with computed speedups, and appends it
// as a dated snapshot to a history document. The Makefile's bench-json
// target uses it to maintain BENCH_sim.json, the committed perf record
// for the engine work: each invocation adds one entry to the history
// array instead of overwriting the document, so the measurement
// trajectory across PRs stays reviewable. Re-running on a date that
// already has a snapshot replaces that day's entry rather than
// appending a duplicate. CI regenerates and uploads the same document
// as a build artifact.
//
// Usage:
//
//	benchjson -before bench/baseline.txt -after /tmp/bench.txt -o BENCH_sim.json
//
// A pre-history BENCH_sim.json (a single {baseline, units, results}
// snapshot) is converted in place: the old snapshot becomes the first
// history entry. Benchmarks present in only one input appear with the
// other side null, so a renamed or newly added benchmark is visible
// rather than silently dropped.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// metrics is one side of a before/after pair. Extra holds custom
// b.ReportMetric columns keyed by their unit — the lifetime
// benchmarks' "rounds/sec" headline — so domain metrics survive into
// the history instead of only ns/op.
type metrics struct {
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  int64              `json:"b_op"`
	AllocsPerOp int64              `json:"allocs_op"`
	Iterations  int64              `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// entry is one benchmark's merged record. Speedup and AllocRatio are
// baseline/current — values above 1 mean the current run is better —
// and are omitted when either side is missing.
type entry struct {
	Name       string   `json:"name"`
	Pkg        string   `json:"pkg"`
	Before     *metrics `json:"before"`
	After      *metrics `json:"after"`
	Speedup    float64  `json:"speedup,omitempty"`
	AllocRatio float64  `json:"alloc_ratio,omitempty"`
}

// benchLine matches a -benchmem result row:
//
//	BenchmarkEngine/2D-4    34014    36140 ns/op    36536 B/op    358 allocs/op
//
// The B/op and allocs/op columns are optional (plain -bench output),
// and custom b.ReportMetric columns — "1062 rounds/sec" — may appear
// between ns/op and B/op without hiding the allocation numbers.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+[\d.eE+-]+ \S+)*?(?:\s+(\d+) B/op\s+(\d+) allocs/op)?\s*$`)

// parseBench reads `go test -bench` text output, returning metrics
// keyed by "pkg.Name" (the pkg: header lines scope the names, so equal
// benchmark names in different packages never collide).
func parseBench(r io.Reader) (map[string]metrics, map[string]string, error) {
	results := make(map[string]metrics)
	pkgs := make(map[string]string)
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		mt := metrics{NsPerOp: ns, Iterations: iters}
		// Columns after "ns/op" come in (value, unit) pairs: the
		// optional -benchmem columns, plus any custom ReportMetric
		// columns, which are kept under their unit string.
		f := strings.Fields(line)
		for i := 4; i+1 < len(f); i += 2 {
			val, unit := f[i], f[i+1]
			switch unit {
			case "B/op":
				mt.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				mt.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				if x, err := strconv.ParseFloat(val, 64); err == nil {
					if mt.Extra == nil {
						mt.Extra = make(map[string]float64)
					}
					mt.Extra[unit] = x
				}
			}
		}
		key := pkg + "." + m[1]
		results[key] = mt
		pkgs[key] = pkg
	}
	return results, pkgs, sc.Err()
}

// merge joins the two parses into sorted entries.
func merge(before, after map[string]metrics, pkgs map[string]string) []entry {
	keys := make(map[string]bool)
	for k := range before {
		keys[k] = true
	}
	for k := range after {
		keys[k] = true
	}
	var out []entry
	for k := range keys {
		e := entry{Pkg: pkgs[k], Name: strings.TrimPrefix(k, pkgs[k]+".")}
		if m, ok := before[k]; ok {
			m := m
			e.Before = &m
		}
		if m, ok := after[k]; ok {
			m := m
			e.After = &m
		}
		if e.Before != nil && e.After != nil && e.After.NsPerOp > 0 {
			e.Speedup = round2(e.Before.NsPerOp / e.After.NsPerOp)
			if e.After.AllocsPerOp > 0 {
				e.AllocRatio = round2(float64(e.Before.AllocsPerOp) / float64(e.After.AllocsPerOp))
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// snapshot is one dated measurement: a full before/after merge.
type snapshot struct {
	Date     string            `json:"date,omitempty"`
	Baseline string            `json:"baseline"`
	Units    map[string]string `json:"units"`
	Results  []entry           `json:"results"`
}

// document is the history file layout.
type document struct {
	History []snapshot `json:"history"`
}

// loadHistory reads the existing output file, if any. A legacy
// single-snapshot file (the pre-history {baseline, units, results}
// layout, no date) is wrapped as the first history entry so nothing
// measured before the format change is lost.
func loadHistory(path string) ([]snapshot, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err == nil && doc.History != nil {
		return doc.History, nil
	}
	var legacy snapshot
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Results) > 0 {
		return []snapshot{legacy}, nil
	}
	return nil, fmt.Errorf("%s exists but is neither a history document nor a legacy snapshot", path)
}

// buildSnapshot parses and merges one before/after pair.
func buildSnapshot(beforePath, afterPath, date string) (snapshot, error) {
	var snap snapshot
	bf, err := os.Open(beforePath)
	if err != nil {
		return snap, err
	}
	defer bf.Close()
	af, err := os.Open(afterPath)
	if err != nil {
		return snap, err
	}
	defer af.Close()

	before, pkgsB, err := parseBench(bf)
	if err != nil {
		return snap, fmt.Errorf("parse %s: %w", beforePath, err)
	}
	after, pkgsA, err := parseBench(af)
	if err != nil {
		return snap, fmt.Errorf("parse %s: %w", afterPath, err)
	}
	if len(before) == 0 {
		return snap, fmt.Errorf("%s contains no benchmark results", beforePath)
	}
	if len(after) == 0 {
		return snap, fmt.Errorf("%s contains no benchmark results", afterPath)
	}
	for k, p := range pkgsB {
		if _, ok := pkgsA[k]; !ok {
			pkgsA[k] = p
		}
	}
	return snapshot{
		Date:     date,
		Baseline: beforePath,
		Units:    map[string]string{"ns_op": "ns/op", "b_op": "B/op", "allocs_op": "allocs/op"},
		Results:  merge(before, after, pkgsA),
	}, nil
}

// upsert adds snap to the history. A snapshot dated the same as an
// existing entry replaces that entry in place — re-running bench-json
// twice in a day must refresh the day's measurement, not record it
// twice. Legacy dateless entries are never matched (and a dateless
// snap never matches them), so converted pre-history files only grow.
func upsert(hist []snapshot, snap snapshot) []snapshot {
	if snap.Date != "" {
		for i := range hist {
			if hist[i].Date == snap.Date {
				hist[i] = snap
				return hist
			}
		}
	}
	return append(hist, snap)
}

// run upserts a dated snapshot into outPath's history (creating or
// converting the file as needed), or writes a one-entry history to w
// when outPath is empty.
func run(beforePath, afterPath, outPath, date string, w io.Writer) error {
	snap, err := buildSnapshot(beforePath, afterPath, date)
	if err != nil {
		return err
	}
	hist := []snapshot{snap}
	if outPath != "" {
		prev, err := loadHistory(outPath)
		if err != nil {
			return err
		}
		hist = upsert(prev, snap)
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(document{History: hist}); err != nil {
		return err
	}
	if outPath == "" {
		_, err := io.WriteString(w, buf.String())
		return err
	}
	return os.WriteFile(outPath, []byte(buf.String()), 0o644)
}

func main() {
	before := flag.String("before", "", "baseline `file` (go test -bench -benchmem output)")
	after := flag.String("after", "", "current `file` (same format)")
	out := flag.String("o", "", "history file to append to (default: print a one-entry history to stdout)")
	date := flag.String("date", "", "snapshot date (default today, YYYY-MM-DD)")
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -before and -after are required")
		flag.Usage()
		os.Exit(2)
	}
	if *date == "" {
		*date = time.Now().Format("2006-01-02")
	}
	if err := run(*before, *after, *out, *date, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
