// Command benchjson merges two `go test -bench -benchmem` text outputs
// — a pinned baseline and a current run — into one machine-readable
// JSON document of before/after pairs with computed speedups. The
// Makefile's bench-json target uses it to produce BENCH_sim.json, the
// committed perf record for the engine overhaul; CI regenerates and
// uploads the same document as a build artifact.
//
// Usage:
//
//	benchjson -before bench/baseline.txt -after /tmp/bench.txt -o BENCH_sim.json
//
// Benchmarks present in only one input appear with the other side
// null, so a renamed or newly added benchmark is visible rather than
// silently dropped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one side of a before/after pair.
type metrics struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	Iterations  int64   `json:"iterations"`
}

// entry is one benchmark's merged record. Speedup and AllocRatio are
// baseline/current — values above 1 mean the current run is better —
// and are omitted when either side is missing.
type entry struct {
	Name       string   `json:"name"`
	Pkg        string   `json:"pkg"`
	Before     *metrics `json:"before"`
	After      *metrics `json:"after"`
	Speedup    float64  `json:"speedup,omitempty"`
	AllocRatio float64  `json:"alloc_ratio,omitempty"`
}

// benchLine matches a -benchmem result row:
//
//	BenchmarkEngine/2D-4    34014    36140 ns/op    36536 B/op    358 allocs/op
//
// The B/op and allocs/op columns are optional (plain -bench output).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// parseBench reads `go test -bench` text output, returning metrics
// keyed by "pkg.Name" (the pkg: header lines scope the names, so equal
// benchmark names in different packages never collide).
func parseBench(r io.Reader) (map[string]metrics, map[string]string, error) {
	results := make(map[string]metrics)
	pkgs := make(map[string]string)
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		mt := metrics{NsPerOp: ns, Iterations: iters}
		if m[4] != "" {
			mt.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			mt.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		key := pkg + "." + m[1]
		results[key] = mt
		pkgs[key] = pkg
	}
	return results, pkgs, sc.Err()
}

// merge joins the two parses into sorted entries.
func merge(before, after map[string]metrics, pkgs map[string]string) []entry {
	keys := make(map[string]bool)
	for k := range before {
		keys[k] = true
	}
	for k := range after {
		keys[k] = true
	}
	var out []entry
	for k := range keys {
		e := entry{Pkg: pkgs[k], Name: strings.TrimPrefix(k, pkgs[k]+".")}
		if m, ok := before[k]; ok {
			m := m
			e.Before = &m
		}
		if m, ok := after[k]; ok {
			m := m
			e.After = &m
		}
		if e.Before != nil && e.After != nil && e.After.NsPerOp > 0 {
			e.Speedup = round2(e.Before.NsPerOp / e.After.NsPerOp)
			if e.After.AllocsPerOp > 0 {
				e.AllocRatio = round2(float64(e.Before.AllocsPerOp) / float64(e.After.AllocsPerOp))
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func run(beforePath, afterPath string, w io.Writer) error {
	bf, err := os.Open(beforePath)
	if err != nil {
		return err
	}
	defer bf.Close()
	af, err := os.Open(afterPath)
	if err != nil {
		return err
	}
	defer af.Close()

	before, pkgsB, err := parseBench(bf)
	if err != nil {
		return fmt.Errorf("parse %s: %w", beforePath, err)
	}
	after, pkgsA, err := parseBench(af)
	if err != nil {
		return fmt.Errorf("parse %s: %w", afterPath, err)
	}
	if len(before) == 0 {
		return fmt.Errorf("%s contains no benchmark results", beforePath)
	}
	if len(after) == 0 {
		return fmt.Errorf("%s contains no benchmark results", afterPath)
	}
	for k, p := range pkgsB {
		if _, ok := pkgsA[k]; !ok {
			pkgsA[k] = p
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"baseline": beforePath,
		"units":    map[string]string{"ns_op": "ns/op", "b_op": "B/op", "allocs_op": "allocs/op"},
		"results":  merge(before, after, pkgsA),
	})
}

func main() {
	before := flag.String("before", "", "baseline `file` (go test -bench -benchmem output)")
	after := flag.String("after", "", "current `file` (same format)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -before and -after are required")
		flag.Usage()
		os.Exit(2)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(*before, *after, w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
