package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const beforeText = `goos: linux
pkg: wsnbcast/internal/sim
BenchmarkEngine/2D-4    	   34014	     36140 ns/op	   36536 B/op	     358 allocs/op
BenchmarkEngineSmall 	  170578	      7575 ns/op	    6104 B/op	      82 allocs/op
BenchmarkGone        	     100	      9999 ns/op	     100 B/op	      10 allocs/op
pkg: wsnbcast/internal/mc
BenchmarkMCReliability 	     104	  11189134 ns/op	 5873663 B/op	   88504 allocs/op
`

const afterText = `goos: linux
pkg: wsnbcast/internal/sim
BenchmarkEngine/2D-4    	  100000	     14047 ns/op	    4640 B/op	       5 allocs/op
BenchmarkEngineSmall 	  400000	      2530 ns/op	     672 B/op	       5 allocs/op
BenchmarkNew         	  200000	      5000 ns/op	     300 B/op	       3 allocs/op
pkg: wsnbcast/internal/mc
BenchmarkMCReliability 	     500	   2487367 ns/op	 1238158 B/op	   14736 allocs/op
`

func TestParseBench(t *testing.T) {
	results, pkgs, err := parseBench(strings.NewReader(beforeText))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	key := "wsnbcast/internal/sim.BenchmarkEngine/2D-4"
	m, ok := results[key]
	if !ok {
		t.Fatalf("missing %s; got keys %v", key, results)
	}
	if m.NsPerOp != 36140 || m.BytesPerOp != 36536 || m.AllocsPerOp != 358 || m.Iterations != 34014 {
		t.Errorf("wrong metrics: %+v", m)
	}
	if pkgs[key] != "wsnbcast/internal/sim" {
		t.Errorf("pkg = %q", pkgs[key])
	}
}

// TestParseBenchCustomMetricColumns: b.ReportMetric columns between
// ns/op and B/op must not hide the allocation numbers.
func TestParseBenchCustomMetricColumns(t *testing.T) {
	const row = "pkg: wsnbcast/internal/life\n" +
		"BenchmarkLifetime \t      19\t  60279110 ns/op\t      1062 rounds/sec\t24145510 B/op\t    3447 allocs/op\n"
	results, _, err := parseBench(strings.NewReader(row))
	if err != nil {
		t.Fatal(err)
	}
	m := results["wsnbcast/internal/life.BenchmarkLifetime"]
	if m.NsPerOp != 60279110 || m.BytesPerOp != 24145510 || m.AllocsPerOp != 3447 || m.Iterations != 19 {
		t.Errorf("custom-metric row parsed wrong: %+v", m)
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	results, _, err := parseBench(strings.NewReader("pkg: p\nBenchmarkX \t 10\t 123 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := results["p.BenchmarkX"]
	if m.NsPerOp != 123 || m.BytesPerOp != 0 || m.AllocsPerOp != 0 {
		t.Errorf("plain -bench row parsed wrong: %+v", m)
	}
}

func TestMergeComputesRatiosAndKeepsOrphans(t *testing.T) {
	before, pkgsB, _ := parseBench(strings.NewReader(beforeText))
	after, pkgsA, _ := parseBench(strings.NewReader(afterText))
	for k, p := range pkgsB {
		if _, ok := pkgsA[k]; !ok {
			pkgsA[k] = p
		}
	}
	entries := merge(before, after, pkgsA)
	if len(entries) != 5 {
		t.Fatalf("merged %d entries, want 5 (3 shared + 1 removed + 1 added)", len(entries))
	}
	byName := map[string]entry{}
	for _, e := range entries {
		byName[e.Pkg+"."+e.Name] = e
	}
	e := byName["wsnbcast/internal/sim.BenchmarkEngine/2D-4"]
	if e.Speedup < 2.5 || e.Speedup > 2.6 {
		t.Errorf("speedup = %v, want ~2.57", e.Speedup)
	}
	if e.AllocRatio < 71 || e.AllocRatio > 72 {
		t.Errorf("alloc ratio = %v, want ~71.6", e.AllocRatio)
	}
	if g := byName["wsnbcast/internal/sim.BenchmarkGone"]; g.After != nil || g.Before == nil || g.Speedup != 0 {
		t.Errorf("removed benchmark not reported as baseline-only: %+v", g)
	}
	if n := byName["wsnbcast/internal/sim.BenchmarkNew"]; n.Before != nil || n.After == nil {
		t.Errorf("added benchmark not reported as current-only: %+v", n)
	}
	// Deterministic order: sorted by pkg then name.
	if entries[0].Pkg > entries[len(entries)-1].Pkg {
		t.Errorf("entries not sorted by package: %v ... %v", entries[0], entries[len(entries)-1])
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	bp := filepath.Join(dir, "before.txt")
	ap := filepath.Join(dir, "after.txt")
	if err := os.WriteFile(bp, []byte(beforeText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ap, []byte(afterText), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(bp, ap, "", "2026-08-06", &buf); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.History) != 1 {
		t.Fatalf("stdout document has %d history entries, want 1", len(doc.History))
	}
	snap := doc.History[0]
	if snap.Date != "2026-08-06" || snap.Baseline != bp || len(snap.Results) != 5 {
		t.Errorf("snapshot = date %q baseline %q with %d results", snap.Date, snap.Baseline, len(snap.Results))
	}
}

// TestRunAppendsHistory drives the committed-file workflow: a first
// run creates a one-entry history, a second run appends a second dated
// entry, and a pre-history legacy snapshot is converted rather than
// clobbered.
func TestRunAppendsHistory(t *testing.T) {
	dir := t.TempDir()
	bp := filepath.Join(dir, "before.txt")
	ap := filepath.Join(dir, "after.txt")
	out := filepath.Join(dir, "BENCH_sim.json")
	os.WriteFile(bp, []byte(beforeText), 0o644)
	os.WriteFile(ap, []byte(afterText), 0o644)

	if err := run(bp, ap, out, "2026-08-05", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(bp, ap, out, "2026-08-06", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("history file is not valid JSON: %v", err)
	}
	if len(doc.History) != 2 || doc.History[0].Date != "2026-08-05" || doc.History[1].Date != "2026-08-06" {
		t.Fatalf("history entries wrong: %d entries", len(doc.History))
	}

	// Legacy single-snapshot file: converted, old results preserved.
	legacy := filepath.Join(dir, "legacy.json")
	var buf bytes.Buffer
	if err := run(bp, ap, "", "", &buf); err != nil {
		t.Fatal(err)
	}
	var one document
	json.Unmarshal(buf.Bytes(), &one)
	legacyBytes, _ := json.Marshal(one.History[0]) // {baseline, units, results}, dateless
	os.WriteFile(legacy, legacyBytes, 0o644)
	if err := run(bp, ap, legacy, "2026-08-06", nil); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(legacy)
	doc = document{}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 2 || len(doc.History[0].Results) != 5 || doc.History[1].Date != "2026-08-06" {
		t.Fatalf("legacy conversion wrong: %d entries", len(doc.History))
	}

	// Garbage in the output path must error, not be overwritten.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := run(bp, ap, bad, "2026-08-06", nil); err == nil {
		t.Error("corrupt history file silently overwritten")
	}
}

// TestRunReplacesSameDateSnapshot: re-running bench-json on a date
// that already has an entry refreshes that entry in place instead of
// appending a duplicate, while legacy dateless entries are never
// matched by the upsert.
func TestRunReplacesSameDateSnapshot(t *testing.T) {
	dir := t.TempDir()
	bp := filepath.Join(dir, "before.txt")
	ap := filepath.Join(dir, "after.txt")
	out := filepath.Join(dir, "BENCH_sim.json")
	os.WriteFile(bp, []byte(beforeText), 0o644)
	os.WriteFile(ap, []byte(afterText), 0o644)

	if err := run(bp, ap, out, "2026-08-05", nil); err != nil {
		t.Fatal(err)
	}
	// Same date, different measurement (before vs itself: all pairs
	// shared, so the entry count changes from 5 to 4).
	if err := run(bp, bp, out, "2026-08-05", nil); err != nil {
		t.Fatal(err)
	}
	if err := run(bp, ap, out, "2026-08-06", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 2 {
		t.Fatalf("history has %d entries, want 2 (same-date rerun must replace)", len(doc.History))
	}
	if doc.History[0].Date != "2026-08-05" || doc.History[1].Date != "2026-08-06" {
		t.Fatalf("history dates wrong: %q, %q", doc.History[0].Date, doc.History[1].Date)
	}
	if n := len(doc.History[0].Results); n != 4 {
		t.Errorf("replaced snapshot kept stale results: %d entries, want 4 from the rerun", n)
	}

	// Dateless snapshots (legacy conversions) never collide.
	hist := upsert([]snapshot{{Baseline: "old"}}, snapshot{Baseline: "new"})
	if len(hist) != 2 {
		t.Errorf("dateless snapshot replaced a legacy entry: %d entries, want 2", len(hist))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	full := filepath.Join(dir, "full.txt")
	os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644)
	os.WriteFile(full, []byte(beforeText), 0o644)
	if err := run(empty, full, "", "", &bytes.Buffer{}); err == nil {
		t.Error("empty baseline accepted")
	}
	if err := run(full, empty, "", "", &bytes.Buffer{}); err == nil {
		t.Error("empty current run accepted")
	}
}
