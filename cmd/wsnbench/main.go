// Command wsnbench regenerates the paper's evaluation: Tables 1-5 of
// Section 4 plus the ablation tables for the design choices the paper
// argues in prose. Every table prints the measured values next to the
// values the paper reports.
//
// Usage:
//
//	wsnbench             # all tables, ablations and extensions
//	wsnbench -table 3    # just Table 3
//	wsnbench -ablations  # just the ablations (A1-A4)
//	wsnbench -extensions # just the extensions (E1-E3)
//
// The -scale mode instead runs one large-grid broadcast through the
// implicit-adjacency engine and reports wall time and memory — the
// quick way to measure a mesh size on the current machine:
//
//	wsnbench -scale -kind 2D-8 -m 1024 -n 1024            # million nodes
//	wsnbench -scale -kind 3D-6 -m 128 -n 128 -l 128 -runworkers 4
//
// -runworkers sets sim.Config.Workers for the run: 0 (default)
// auto-selects — serial below the engine's large-grid threshold,
// min(GOMAXPROCS, 8) shard workers above it; 1 pins the serial path;
// higher values set the shard pool explicitly. Results are
// byte-identical for every value.
package main

import (
	"flag"
	"fmt"
	"os"

	"wsnbcast/internal/experiments"
	"wsnbcast/internal/profiling"
	"wsnbcast/internal/table"
)

func main() {
	tableN := flag.Int("table", 0, "print only table N (1-5); 0 means all")
	ablations := flag.Bool("ablations", false, "print only the ablation tables")
	extensions := flag.Bool("extensions", false, "print only the extension tables (E1-E7)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored Markdown instead of ASCII boxes")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS); tables are identical for every value")
	scale := flag.Bool("scale", false, "run one large-grid broadcast instead of the tables")
	kind := flag.String("kind", "2D-8", "-scale: topology kind (2D-3, 2D-4, 2D-8, 3D-6)")
	mDim := flag.Int("m", 1024, "-scale: mesh width")
	nDim := flag.Int("n", 1024, "-scale: mesh height")
	lDim := flag.Int("l", 1, "-scale: mesh depth (3D-6 only)")
	runWorkers := flag.Int("runworkers", 0, "-scale: sim.Config.Workers (0 = auto, 1 = serial pin)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsnbench:", err)
		os.Exit(1)
	}
	var runErr error
	if *scale {
		runErr = runScale(*kind, *mDim, *nDim, *lDim, *runWorkers)
	} else {
		runErr = run(*tableN, *ablations, *extensions, *markdown, *workers)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "wsnbench:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "wsnbench:", runErr)
		os.Exit(1)
	}
}

func run(tableN int, ablationsOnly, extensionsOnly, markdown bool, workers int) error {
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", workers)
	}
	cfg := experiments.Config{Workers: workers}
	emit := func(t *table.Table) error {
		if markdown {
			if _, err := fmt.Print(t.Markdown()); err != nil {
				return err
			}
			fmt.Println()
			return nil
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	if ablationsOnly {
		tabs, err := experiments.AllAblations(cfg)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
	if extensionsOnly {
		tabs, err := experiments.AllExtensions(cfg)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}

	switch tableN {
	case 0:
		tabs, err := experiments.AllTables(cfg)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			if err := emit(t); err != nil {
				return err
			}
		}
		abl, err := experiments.AllAblations(cfg)
		if err != nil {
			return err
		}
		for _, t := range abl {
			if err := emit(t); err != nil {
				return err
			}
		}
		ext, err := experiments.AllExtensions(cfg)
		if err != nil {
			return err
		}
		for _, t := range ext {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	case 1:
		return emit(experiments.Table1())
	case 2:
		return emit(experiments.Table2(cfg))
	case 3:
		t, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		return emit(t)
	case 4:
		t, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		return emit(t)
	case 5:
		t, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		return emit(t)
	default:
		return fmt.Errorf("no table %d (the paper has tables 1-5)", tableN)
	}
}
