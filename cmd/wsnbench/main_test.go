package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errCh := make(chan error, 1)
	go func() {
		errCh <- f()
		w.Close()
	}()
	out, readErr := io.ReadAll(r)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out), <-errCh
}

func TestRunSingleTables(t *testing.T) {
	out, err := capture(t, func() error { return run(1, false, false, false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2/3") || !strings.Contains(out, "Optimal ETR") {
		t.Errorf("table 1 output:\n%s", out)
	}
	out, err = capture(t, func() error { return run(2, false, false, false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "255") || !strings.Contains(out, "2.61e-02") {
		t.Errorf("table 2 output:\n%s", out)
	}
}

func TestRunMarkdown(t *testing.T) {
	out, err := capture(t, func() error { return run(1, false, false, true, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "|---|") || !strings.Contains(out, "| 2D-3 | 2/3 |") {
		t.Errorf("markdown output:\n%s", out)
	}
}

func TestRunBadTable(t *testing.T) {
	if _, err := capture(t, func() error { return run(9, false, false, false, 0) }); err == nil {
		t.Error("table 9 accepted")
	}
}

func TestRunAblationsOnly(t *testing.T) {
	out, err := capture(t, func() error { return run(0, true, false, false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation A1", "Ablation A2", "Ablation A3", "Ablation A4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(out, "Table 2") {
		t.Error("ablations-only printed tables")
	}
}

func TestRunExtensionsOnly(t *testing.T) {
	out, err := capture(t, func() error { return run(0, false, true, false, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Extension E1", "Extension E2", "Extension E3", "Extension E4", "Extension E5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRejectsNegativeWorkers(t *testing.T) {
	err := run(1, false, false, false, -1)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("run(workers=-1) = %v, want -workers validation error", err)
	}
}

// TestRunScale exercises the large-grid one-shot mode on a mesh small
// enough for CI, for both the serial pin and an explicit shard pool.
func TestRunScale(t *testing.T) {
	for _, workers := range []int{1, 2} {
		out, err := capture(t, func() error { return runScale("2D-8", 64, 64, 1, workers) })
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "4096 nodes") || !strings.Contains(out, "reached   4096/4096") {
			t.Errorf("workers=%d scale output:\n%s", workers, out)
		}
	}
	out, err := capture(t, func() error { return runScale("3D-6", 8, 8, 8, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "512 nodes") {
		t.Errorf("3D scale output:\n%s", out)
	}
}

func TestRunScaleRejectsBadInput(t *testing.T) {
	if err := runScale("2D-9", 8, 8, 1, 0); err == nil || !strings.Contains(err.Error(), "-kind") {
		t.Errorf("bad kind: %v", err)
	}
	if err := runScale("2D-4", 0, 8, 1, 0); err == nil {
		t.Error("zero width accepted")
	}
	if err := runScale("2D-4", 8, 8, 3, 0); err == nil || !strings.Contains(err.Error(), "planar") {
		t.Errorf("planar kind with depth: %v", err)
	}
}
