package main

import (
	"fmt"
	"runtime"
	"time"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// parseKind resolves a -kind flag value against the regular kinds.
func parseKind(s string) (grid.Kind, error) {
	for _, k := range grid.Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown -kind %q (use 2D-3, 2D-4, 2D-8 or 3D-6)", s)
}

// runScale executes one paper-protocol broadcast on an m x n x l mesh
// through sim.Run — the implicit large-grid path above the engine's
// threshold — and prints the run metrics plus wall time and heap use.
func runScale(kindName string, m, n, l, runWorkers int) error {
	k, err := parseKind(kindName)
	if err != nil {
		return err
	}
	if m < 1 || n < 1 || l < 1 {
		return fmt.Errorf("invalid mesh size %dx%dx%d: dimensions must be >= 1", m, n, l)
	}
	if l > 1 && k != grid.Mesh3D6 {
		return fmt.Errorf("-l %d requires -kind 3D-6 (%s meshes are planar)", l, k)
	}
	topo := grid.New(k, m, n, l)
	mm, nn, ll := topo.Size()
	src := grid.C3((mm+1)/2, (nn+1)/2, (ll+1)/2)
	proto := core.ForTopology(k)

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := sim.Run(topo, proto, src, sim.Config{Workers: runWorkers})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	fmt.Printf("scale run: %s %dx%dx%d (%d nodes), protocol %s, workers=%d\n",
		k, mm, nn, ll, topo.NumNodes(), proto.Name(), runWorkers)
	fmt.Printf("  reached   %d/%d (down %d)\n", res.Reached, res.Total, res.Down)
	fmt.Printf("  delay     %d slots\n", res.Delay)
	fmt.Printf("  tx %d  rx %d  collisions %d  duplicates %d  repairs %d\n",
		res.Tx, res.Rx, res.Collisions, res.Duplicates, res.Repairs)
	fmt.Printf("  energy    %.4e J\n", res.EnergyJ)
	fmt.Printf("  wall time %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  heap      %.1f MiB in use after run (%.1f MiB allocated during)\n",
		float64(after.HeapInuse)/(1<<20),
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
	return nil
}
