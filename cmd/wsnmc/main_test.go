package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsnbcast/internal/mc"
)

func study(workers int) options {
	return options{
		topo: "2d4", proto: "paper", m: 8, n: 6,
		seed: 42, reps: 8,
		loss: "0,0.1", failure: "0",
		workers: workers, disableRepair: true,
	}
}

func TestStudyTablesAndZeroLossRow(t *testing.T) {
	var buf bytes.Buffer
	if err := run(study(0), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2D-4 paper-2d4 src=(4,3) nodes=48 seed=42 replications=8") {
		t.Errorf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "failure rate 0") {
		t.Errorf("missing failure-rate section:\n%s", out)
	}
	// The error-free grid point is deterministic: every replication
	// reaches every node, so the CI collapses to zero.
	if !strings.Contains(out, "1.0000 ± 0.0000") || !strings.Contains(out, "8/8") {
		t.Errorf("loss=0 row should be fully reached with zero CI:\n%s", out)
	}
}

// The report must be byte-identical for every -workers value.
func TestStudyWorkersByteIdentical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		var buf bytes.Buffer
		if err := run(study(workers), &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = buf.String()
			continue
		}
		if buf.String() != want {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

// The report must also be byte-identical at every -lanes width: batch
// boundaries are invisible in the output, so narrowing the lockstep
// word can never shift an estimate.
func TestStudyLanesByteIdentical(t *testing.T) {
	o := study(2)
	o.disableRepair = false
	o.loss, o.failure = "0,0.15", "0,0.1"
	var want string
	for _, lanes := range []int{1, 3, 64, 0} {
		o.lanes = lanes
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if lanes == 1 {
			want = buf.String()
			continue
		}
		if buf.String() != want {
			t.Errorf("lanes=%d output differs from lanes=1", lanes)
		}
	}
}

func TestJSONLRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	o := study(0)
	o.jsonl = path
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []mc.Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r mc.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*8 {
		t.Fatalf("got %d records, want 16 (2 grid points x 8 replications)", len(recs))
	}
	for _, r := range recs {
		if r.Total != 48 || r.Seed == 0 {
			t.Errorf("suspicious record %+v", r)
		}
		if r.LossRate == 0 && r.Reached != r.Total {
			t.Errorf("loss=0 rep %d reached %d/%d", r.Rep, r.Reached, r.Total)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := map[string]struct {
		mutate func(*options)
		want   string
	}{
		"zero reps":        {func(o *options) { o.reps = 0 }, "-reps"},
		"negative reps":    {func(o *options) { o.reps = -3 }, "-reps"},
		"negative workers": {func(o *options) { o.workers = -1 }, "-workers"},
		"negative lanes":   {func(o *options) { o.lanes = -1 }, "-lanes"},
		"lanes above 64":   {func(o *options) { o.lanes = 65 }, "-lanes"},
		"bad topo":         {func(o *options) { o.topo = "hex" }, "unknown topology"},
		"bad proto":        {func(o *options) { o.proto = "gossip" }, "unknown protocol"},
		"loss above one":   {func(o *options) { o.loss = "0,1.5" }, "outside [0, 1]"},
		"garbage loss":     {func(o *options) { o.loss = "abc" }, "invalid -loss rate"},
		"empty failure":    {func(o *options) { o.failure = "," }, "at least one rate"},
		"bad source":       {func(o *options) { o.source = "99,99" }, "outside"},
		"partial mesh":     {func(o *options) { o.m = 8; o.n = 0 }, "-m and -n"},
	}
	for name, tc := range cases {
		o := study(0)
		tc.mutate(&o)
		err := run(o, &bytes.Buffer{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}

func TestCanonicalMeshDefault(t *testing.T) {
	o := study(0)
	o.m, o.n = 0, 0
	o.topo = "3d6"
	o.reps = 2
	o.loss = "0"
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3D-6") {
		t.Errorf("canonical 3d6 header missing:\n%s", buf.String())
	}
}

// TestStoreModeByteIdentical: with -store, the first invocation
// computes and stores, repeats serve from the store, and every
// invocation prints the exact bytes of the storeless path.
func TestStoreModeByteIdentical(t *testing.T) {
	var direct bytes.Buffer
	if err := run(study(0), &direct); err != nil {
		t.Fatal(err)
	}

	o := study(0)
	o.storeDir = filepath.Join(t.TempDir(), "store")
	var first bytes.Buffer
	if err := run(o, &first); err != nil {
		t.Fatal(err)
	}
	if first.String() != direct.String() {
		t.Errorf("store-mode output differs from direct output:\n--- direct\n%s--- store\n%s", direct.String(), first.String())
	}
	objects, err := filepath.Glob(filepath.Join(o.storeDir, "objects", "*", "*"))
	if err != nil || len(objects) == 0 {
		t.Fatalf("store holds no objects after the first run (%v)", err)
	}
	var second bytes.Buffer
	if err := run(o, &second); err != nil {
		t.Fatal(err)
	}
	if second.String() != first.String() {
		t.Error("store-served repeat differs from the computed run")
	}
}

func TestStoreRejectsJSONL(t *testing.T) {
	o := study(0)
	o.storeDir = t.TempDir()
	o.jsonl = filepath.Join(t.TempDir(), "runs.jsonl")
	var buf bytes.Buffer
	err := run(o, &buf)
	if err == nil || !strings.Contains(err.Error(), "-jsonl") {
		t.Errorf("run(-store with -jsonl) = %v, want a -jsonl conflict error", err)
	}
}
