// Command wsnmc runs Monte Carlo reliability studies: N seeded
// replications of one broadcast configuration at every point of a
// loss-rate x failure-rate grid, fanned across the parallel sweep
// engine. It prints one curve table per failure rate — reachability,
// delay, energy and transmissions as mean ± 95% CI over the loss
// rates — and optionally writes every replication as one JSON line.
//
// Replications run through the lockstep lane engine, up to 64 per
// machine word; identical seeds produce byte-identical output at any
// -workers or -lanes value.
//
// Usage:
//
//	wsnmc                                  # canonical 2d4 mesh, paper protocol
//	wsnmc -topo 3d6 -reps 200 -seed 7      # more replications, fixed seed
//	wsnmc -loss 0,0.05,0.1,0.2             # the loss grid
//	wsnmc -failure 0,0.05 -disable-repair  # failure grid, raw protocol rules
//	wsnmc -jsonl runs.jsonl                # per-replication records
//	wsnmc -source 16,8 -m 32 -n 16         # custom mesh and source
//	wsnmc -store /var/lib/wsn/store        # share wsnserved's result store
//
// With -store, the flags compile to the equivalent canonical scenario
// document and the study is served from (and written to) the same
// durable content-addressed store wsnserved uses: a study the service
// already answered prints without simulating, and vice versa.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/mc"
	"wsnbcast/internal/profiling"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/store"
)

type options struct {
	topo          string
	proto         string
	m, n, l       int
	source        string
	seed          uint64
	reps          int
	loss          string
	failure       string
	workers       int
	lanes         int
	disableRepair bool
	jsonl         string
	storeDir      string
	cpuprofile    string
	memprofile    string
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topo", "2d4", "topology: 2d3, 2d4, 2d8, 3d6")
	flag.StringVar(&o.proto, "proto", "paper", "protocol: paper, flooding, flooding-jitter")
	flag.IntVar(&o.m, "m", 0, "mesh width (0 = canonical)")
	flag.IntVar(&o.n, "n", 0, "mesh height")
	flag.IntVar(&o.l, "l", 0, "mesh depth (3d6)")
	flag.StringVar(&o.source, "source", "", `source "x,y" or "x,y,z" (default: mesh center)`)
	flag.Uint64Var(&o.seed, "seed", 1, "study seed")
	flag.IntVar(&o.reps, "reps", 100, "replications per grid point (>= 1)")
	flag.StringVar(&o.loss, "loss", "0,0.05,0.1,0.2", "comma-separated loss rates in [0, 1]")
	flag.StringVar(&o.failure, "failure", "0", "comma-separated failure rates in [0, 1]")
	flag.IntVar(&o.workers, "workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.lanes, "lanes", 0, "lockstep lane batch width, 1-64 (0 = full 64-lane words)")
	flag.BoolVar(&o.disableRepair, "disable-repair", false, "turn off the scheduler's repair pass")
	flag.StringVar(&o.jsonl, "jsonl", "", "write per-replication records to this file as JSON lines")
	flag.StringVar(&o.storeDir, "store", "", "durable result store directory shared with wsnserved (serves repeats without simulating; incompatible with -jsonl)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProfiles, err := profiling.Start(o.cpuprofile, o.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsnmc:", err)
		os.Exit(1)
	}
	runErr := run(o, os.Stdout)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "wsnmc:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "wsnmc:", runErr)
		os.Exit(1)
	}
}

func topology(o options) (grid.Topology, error) {
	var k grid.Kind
	switch strings.ToLower(o.topo) {
	case "2d3":
		k = grid.Mesh2D3
	case "2d4":
		k = grid.Mesh2D4
	case "2d8":
		k = grid.Mesh2D8
	case "3d6":
		k = grid.Mesh3D6
	default:
		return nil, fmt.Errorf("unknown topology %q", o.topo)
	}
	if o.m == 0 && o.n == 0 {
		return grid.Canonical(k), nil
	}
	if o.m < 1 || o.n < 1 {
		return nil, fmt.Errorf("mesh needs -m and -n >= 1")
	}
	depth := 1
	if k == grid.Mesh3D6 && o.l > 0 {
		depth = o.l
	}
	return grid.New(k, o.m, o.n, depth), nil
}

func protocol(name string, k grid.Kind) (sim.Protocol, error) {
	switch strings.ToLower(name) {
	case "paper", "":
		return core.ForTopology(k), nil
	case "flooding":
		return core.NewFlooding(), nil
	case "flooding-jitter":
		return core.NewJitteredFlooding(8), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseSource(s string, t grid.Topology) (grid.Coord, error) {
	if s == "" {
		m, n, l := t.Size()
		return grid.C3((m+1)/2, (n+1)/2, (l+1)/2), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 && len(parts) != 3 {
		return grid.Coord{}, fmt.Errorf(`invalid -source %q: need "x,y" or "x,y,z"`, s)
	}
	vals := make([]int, 3)
	vals[2] = 1
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return grid.Coord{}, fmt.Errorf("invalid -source %q: %v", s, err)
		}
		vals[i] = v
	}
	c := grid.C3(vals[0], vals[1], vals[2])
	if !t.Contains(c) {
		return grid.Coord{}, fmt.Errorf("source %s outside the %s mesh", c, t.Kind())
	}
	return c, nil
}

func parseRates(flagName, s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid %s rate %q", flagName, p)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("%s rate %g outside [0, 1]", flagName, v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s needs at least one rate", flagName)
	}
	return out, nil
}

func run(o options, w io.Writer) error {
	if o.reps < 1 {
		return fmt.Errorf("invalid -reps %d: need >= 1 replications", o.reps)
	}
	if o.workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", o.workers)
	}
	if o.lanes < 0 || o.lanes > 64 {
		return fmt.Errorf("invalid -lanes %d: must be 0-64 (0 means full 64-lane words)", o.lanes)
	}
	topo, err := topology(o)
	if err != nil {
		return err
	}
	p, err := protocol(o.proto, topo.Kind())
	if err != nil {
		return err
	}
	src, err := parseSource(o.source, topo)
	if err != nil {
		return err
	}
	lossRates, err := parseRates("-loss", o.loss)
	if err != nil {
		return err
	}
	failRates, err := parseRates("-failure", o.failure)
	if err != nil {
		return err
	}
	if o.storeDir != "" {
		if o.jsonl != "" {
			return fmt.Errorf("-store serves aggregated results and has no per-replication records; drop -jsonl")
		}
		return runStored(o, w, topo, p, src, lossRates, failRates)
	}

	rep, err := mc.Run(context.Background(), mc.Spec{
		Topology: topo, Protocol: p, Source: src,
		Config:       sim.Config{DisableRepair: o.disableRepair},
		Seed:         o.seed,
		Replications: o.reps,
		LossRates:    lossRates,
		FailureRates: failRates,
		Workers:      o.workers,
		Lanes:        o.lanes,
	})
	if err != nil {
		return err
	}

	if o.jsonl != "" {
		if err := writeJSONL(o.jsonl, rep.Records); err != nil {
			return err
		}
	}
	return printReport(w, rep)
}

// runStored serves the study through the durable content-addressed
// store shared with wsnserved: the flags compile to the equivalent
// canonical /v1/run scenario document, so a study the service (or a
// previous wsnmc invocation) already answered prints without
// simulating, and a fresh study is stored for both to reuse. Results
// are identical either way — the study is a pure function of the
// canonical document.
func runStored(o options, w io.Writer, topo grid.Topology, p sim.Protocol, src grid.Coord, lossRates, failRates []float64) error {
	sc := scenario.Scenario{
		Topology:      topologySpec(topo),
		Protocol:      strings.ToLower(o.proto),
		Sources:       []scenario.Point{{X: src.X, Y: src.Y, Z: src.Z}},
		DisableRepair: o.disableRepair,
		Reliability: &scenario.ReliabilitySpec{
			Seed:         o.seed,
			Replications: o.reps,
			LossRates:    lossRates,
			FailureRates: failRates,
		},
	}.Canonical()
	key, err := store.Key("run", sc)
	if err != nil {
		return err
	}
	st, err := store.Open(o.storeDir)
	if err != nil {
		return fmt.Errorf("open store: %w", err)
	}
	defer st.Close()
	body, ok := st.Get(key)
	if !ok {
		rep, err := sc.RunContext(context.Background())
		if err != nil {
			return err
		}
		if body, err = store.EncodeBody(rep); err != nil {
			return err
		}
		// A write failure degrades the store to pass-through; the
		// freshly computed body still prints.
		st.Put(key, body)
	}
	var rep scenario.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("stored result for %s: %w", key, err)
	}
	return printReport(w, &mc.Report{
		Topology:     topo.Kind().String(),
		Nodes:        topo.NumNodes(),
		Protocol:     p.Name(),
		Source:       src.String(),
		Seed:         o.seed,
		Replications: o.reps,
		Points:       rep.Reliability,
	})
}

// topologySpec maps a compiled topology back to its scenario document
// form.
func topologySpec(t grid.Topology) scenario.TopologySpec {
	m, n, l := t.Size()
	spec := scenario.TopologySpec{Kind: kindDoc(t.Kind()), M: m, N: n}
	if l > 1 {
		spec.L = l
	}
	return spec
}

// kindDoc is the scenario-document spelling of a topology kind.
func kindDoc(k grid.Kind) string {
	switch k {
	case grid.Mesh2D3:
		return "2d3"
	case grid.Mesh2D8:
		return "2d8"
	case grid.Mesh3D6:
		return "3d6"
	default:
		return "2d4"
	}
}

func writeJSONL(path string, records []mc.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// printReport renders one curve table per failure rate: loss rate rows
// against mean ± 95% CI columns.
func printReport(w io.Writer, rep *mc.Report) error {
	fmt.Fprintf(w, "%s %s src=%s nodes=%d seed=%d replications=%d\n",
		rep.Topology, rep.Protocol, rep.Source, rep.Nodes, rep.Seed, rep.Replications)
	seen := map[float64]bool{}
	for _, pt := range rep.Points {
		if seen[pt.FailureRate] {
			continue
		}
		seen[pt.FailureRate] = true
		fmt.Fprintf(w, "\nfailure rate %g\n", pt.FailureRate)
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "loss\treachability\tfull\tdelay\tenergy (J)\ttx\trepairs")
		for _, c := range rep.Curve(pt.FailureRate) {
			fmt.Fprintf(tw, "%g\t%.4f ± %.4f\t%d/%d\t%.1f ± %.1f\t%.4e ± %.1e\t%.1f ± %.1f\t%.1f ± %.1f\n",
				c.LossRate,
				c.Reachability.Mean, c.Reachability.CI95,
				c.FullyReached, c.Replications,
				c.Delay.Mean, c.Delay.CI95,
				c.EnergyJ.Mean, c.EnergyJ.CI95,
				c.Tx.Mean, c.Tx.CI95,
				c.Repairs.Mean, c.Repairs.CI95)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
