package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func defaults() options {
	return options{
		addr:         "127.0.0.1:0",
		queue:        64,
		cacheEntries: 1024,
		cacheMB:      64,
		timeout:      30 * time.Second,
		maxTimeout:   2 * time.Minute,
		maxBodyKB:    1024,
		maxNodes:     1 << 17,
		drain:        5 * time.Second,
	}
}

func TestRejectsNegativeWorkers(t *testing.T) {
	o := defaults()
	o.workers = -1
	err := run(context.Background(), o, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("err = %v, want -workers validation error", err)
	}
	o = defaults()
	o.sweepWorkers = -2
	err = run(context.Background(), o, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-sweep-workers") {
		t.Errorf("err = %v, want -sweep-workers validation error", err)
	}
}

// TestServeAndGracefulShutdown exercises the binary end to end: serve
// on a real socket, answer requests, then drain cleanly on the signal
// context's cancellation (what SIGTERM triggers in main).
func TestServeAndGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var logBuf syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, defaults(), ln, &logBuf) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = client.Get(base + "/healthz")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp.Body.Close()

	doc := `{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": 3, "y": 3}]}`
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := client.Post(base+"/v1/run", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != wantCache {
			t.Errorf("run %d: X-Cache = %q, want %q", i, got, wantCache)
		}
	}

	cancel() // what SIGTERM does in main
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("log = %q, want drain confirmation", logBuf.String())
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestAccessLogWiring(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var logBuf syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, defaults(), ln, &logBuf) }()

	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), `"path":"/healthz"`) {
		t.Errorf("access log missing healthz entry:\n%s", logBuf.String())
	}
}

// TestPprofListener: -pprof serves the debug handlers on its own
// listener, and the service listener never exposes /debug/pprof.
func TestPprofListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := pln.Addr().String()
	pln.Close() // run opens its own listener on this now-free address

	o := defaults()
	o.pprofAddr = pprofAddr
	ctx, cancel := context.WithCancel(context.Background())
	var logBuf syncWriter
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, ln, &logBuf) }()

	client := &http.Client{Timeout: 10 * time.Second}
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = client.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("pprof listener never came up: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = client.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("service listener exposes /debug/pprof — it must stay on the debug listener only")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run returned %v, want clean drain", err)
	}
	if !strings.Contains(logBuf.String(), "pprof on") {
		t.Errorf("log = %q, want pprof startup line", logBuf.String())
	}
}

// syncWriter serializes writes: run's log writer is shared between
// the access log and the lifecycle messages.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}
