// Command wsnserved serves the simulator over HTTP: single broadcasts,
// full scenario documents and all-sources sweeps, with result caching,
// admission control and metrics (internal/service).
//
// Endpoints (request bodies are internal/scenario JSON documents):
//
//	POST /v1/run       one broadcast (exactly one source)
//	POST /v1/scenario  a full scenario document
//	POST /v1/sweep     broadcast from every node (parallel sweep engine)
//	POST /v1/lifetime  a multi-round lifetime study (battery depletion, churn, rotation)
//	POST /v1/jobs      submit an async job: {"kind": "run|scenario|sweep|lifetime", "scenario": {...}}
//	GET  /v1/jobs/{id}         poll a job (state, done/total points)
//	GET  /v1/jobs/{id}/result  fetch the merged result (byte-identical to POST /v1/{kind})
//	GET  /v1/jobs/{id}/events  stream progress as Server-Sent Events
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      JSON counters: requests, cache, store, jobs, queue, latency
//
// Identical requests — byte-different encodings included — are served
// from an LRU result cache, and concurrent identical requests cost one
// simulation. When the bounded job queue is full the server sheds load
// with 429 + Retry-After. A client may set a per-request deadline with
// ?timeout_ms=. On SIGINT/SIGTERM the server drains gracefully: it
// stops accepting work, finishes what was admitted (up to -drain) and
// exits.
//
// Usage:
//
//	wsnserved                        # serve on :8080
//	wsnserved -addr :9000 -workers 4 -queue 128
//	wsnserved -cache-entries 4096 -cache-mb 128
//	wsnserved -timeout 10s -max-nodes 65536 -quiet
//	wsnserved -store /var/lib/wsn/store  # durable results; jobs survive restarts
//	wsnserved -store /var/lib/wsn/store -store-max-bytes 268435456  # cap the store at 256 MiB
//	wsnserved -pprof localhost:6060  # expose net/http/pprof separately
//
// With -store, every computed result is also written to a durable
// content-addressed store in that directory (an L2 behind the in-memory
// LRU, shareable between instances), and /v1/jobs jobs checkpoint
// there: a job interrupted by a shutdown or crash resumes on the next
// start, recomputing only its unfinished grid points. The same
// directory can be handed to wsnmc/wsnsweep via their -store flag.
// With -store-max-bytes, the store's object area is size-capped:
// exceeding the cap evicts the oldest results first (they are caches
// of deterministic computations, so eviction costs at most a
// recomputation); job records are exempt.
//
// The -pprof flag starts a second HTTP listener serving only the
// net/http/pprof handlers (/debug/pprof/...). It is off by default and
// must stay off in production-facing deployments: the profile
// endpoints expose internals and can perturb latency while sampling.
// Bind it to localhost when profiling a live instance.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/service"
	"wsnbcast/internal/store"
)

type options struct {
	addr         string
	workers      int
	queue        int
	cacheEntries int
	cacheMB      int
	timeout      time.Duration
	maxTimeout   time.Duration
	maxBodyKB    int
	maxNodes     int
	sweepWorkers  int
	storeDir      string
	storeMaxBytes int64
	jobWorkers    int
	drain        time.Duration
	quiet        bool
	pprofAddr    string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 64, "job queue capacity; a full queue sheds load with 429")
	flag.IntVar(&o.cacheEntries, "cache-entries", 1024, "result cache entry bound (negative disables caching)")
	flag.IntVar(&o.cacheMB, "cache-mb", 64, "result cache size bound in MiB")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "default per-request deadline")
	flag.DurationVar(&o.maxTimeout, "max-timeout", 2*time.Minute, "largest deadline a client may request via ?timeout_ms=")
	flag.IntVar(&o.maxBodyKB, "max-body-kb", 1024, "request body limit in KiB")
	flag.IntVar(&o.maxNodes, "max-nodes", 1<<17, "largest mesh (in nodes) a request may ask for")
	flag.IntVar(&o.sweepWorkers, "sweep-workers", 0, "per-request sweep engine pool size (0 = GOMAXPROCS)")
	flag.StringVar(&o.storeDir, "store", "", "durable content-addressed result store directory (shared across instances; makes /v1/jobs jobs resumable)")
	flag.Int64Var(&o.storeMaxBytes, "store-max-bytes", 0, "store object area size cap in bytes; exceeding it evicts oldest results first (0 = unbounded)")
	flag.IntVar(&o.jobWorkers, "job-workers", 0, "async job worker loops behind /v1/jobs (0 = GOMAXPROCS)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful shutdown budget after SIGTERM")
	flag.BoolVar(&o.quiet, "quiet", false, "disable the access log")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this extra address (off by default; not for production)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wsnserved:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (the signal handler) or the
// listener fails, then drains gracefully. A nil ln listens on
// opts.addr; tests pass their own listener and cancel ctx instead of
// sending signals.
func run(ctx context.Context, o options, ln net.Listener, logw io.Writer) error {
	if o.workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 means GOMAXPROCS)", o.workers)
	}
	if o.sweepWorkers < 0 {
		return fmt.Errorf("invalid -sweep-workers %d: must be >= 0 (0 means GOMAXPROCS)", o.sweepWorkers)
	}
	if o.jobWorkers < 0 {
		return fmt.Errorf("invalid -job-workers %d: must be >= 0 (0 means GOMAXPROCS)", o.jobWorkers)
	}
	var accessLog io.Writer
	if !o.quiet {
		accessLog = logw
	}
	if o.pprofAddr != "" {
		// The profiler gets its own listener and its own mux: the
		// service mux never exposes /debug/pprof, and the explicit
		// handler registration below keeps anything else that may have
		// landed on http.DefaultServeMux off the debug port.
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		psrv := &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		fmt.Fprintf(logw, "wsnserved: pprof on http://%s/debug/pprof/ (debug listener, do not expose publicly)\n", pln.Addr())
		go psrv.Serve(pln)
		defer psrv.Close()
	}
	// With -store, results and job state are durable: the store fronts
	// the LRU as an L2 shared by every instance pointed at the
	// directory, and jobs interrupted by a previous shutdown or crash
	// resume before the listener opens.
	var st *store.Store
	var mgr *jobs.Manager
	if o.storeDir != "" {
		var err error
		st, err = store.Open(o.storeDir)
		if err != nil {
			return fmt.Errorf("open store: %w", err)
		}
		if o.storeMaxBytes > 0 {
			if err := st.SetMaxBytes(o.storeMaxBytes); err != nil {
				return fmt.Errorf("store size cap: %w", err)
			}
		}
		mgr = jobs.NewManager(jobs.Config{Store: st, Workers: o.jobWorkers})
		resumed, err := mgr.Recover()
		if err != nil {
			return fmt.Errorf("recover jobs: %w", err)
		}
		if resumed > 0 {
			fmt.Fprintf(logw, "wsnserved: resumed %d unfinished job(s) from %s\n", resumed, o.storeDir)
		}
	}
	svc := service.New(service.Config{
		Workers:        o.workers,
		QueueCap:       o.queue,
		CacheEntries:   o.cacheEntries,
		CacheBytes:     int64(o.cacheMB) << 20,
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
		MaxBodyBytes:   int64(o.maxBodyKB) << 10,
		MaxNodes:       o.maxNodes,
		SweepWorkers:   o.sweepWorkers,
		Store:          st,
		Jobs:           mgr,
		JobWorkers:     o.jobWorkers,
		AccessLog:      accessLog,
	})
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", o.addr)
		if err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: svc, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(logw, "wsnserved: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections and let in-flight
	// requests finish, then stop the job pool.
	fmt.Fprintf(logw, "wsnserved: draining (budget %s)\n", o.drain)
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	shutErr := srv.Shutdown(dctx)
	drainErr := svc.Drain(dctx)
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintf(logw, "wsnserved: drained cleanly\n")
	return nil
}

// pprofMux builds a mux carrying exactly the net/http/pprof handlers.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
