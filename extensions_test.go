package wsnbcast_test

import (
	"strings"
	"testing"

	"wsnbcast"
)

func TestFacadeVerify(t *testing.T) {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	rep, err := wsnbcast.Verify(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4), wsnbcast.At(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("paper protocol failed verification: %v", rep.Issues)
	}
	rep, err = wsnbcast.VerifyAllSources(wsnbcast.NewTopology(wsnbcast.Mesh2D8, 10, 8, 1),
		wsnbcast.PaperProtocol(wsnbcast.Mesh2D8))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("2D-8 failed verification from %v", rep.Source)
	}
}

func TestFacadePipeline(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 10, 10, 1)
	p := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)
	src := wsnbcast.At(5, 5)
	safe, err := wsnbcast.SafeInterval(topo, p, src, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	snap, one, err := wsnbcast.Snapshot(topo, p, src, wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !one.FullyReached() {
		t.Fatal("snapshot run incomplete")
	}
	r, err := wsnbcast.Pipeline(topo, snap, src,
		wsnbcast.PipelineConfig{Packets: 5, Interval: safe})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Delivered {
		t.Errorf("pipeline at safe interval %d failed", safe)
	}
	if r.Throughput() <= 0 {
		t.Error("zero throughput")
	}
}

func TestFacadeRotation(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 8, 8, 1)
	p := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)
	rep, err := wsnbcast.CompareRotation(topo, p, wsnbcast.At(4, 4), wsnbcast.Config{}, 0.1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gain < 1 {
		t.Errorf("rotation gain %.2f < 1", rep.Gain)
	}
	rounds, err := wsnbcast.Rotate(topo, p, []wsnbcast.Coord{wsnbcast.At(1, 1)},
		wsnbcast.Config{}, 0.1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Errorf("rounds = %d", rounds)
	}
}

func TestFacadeIrregular(t *testing.T) {
	topo := wsnbcast.NewIrregularTopology(12, 12, 0.3, 1.5, 11)
	if !wsnbcast.IsConnectedGraph(topo) {
		t.Skip("seed produced a disconnected graph")
	}
	if d := wsnbcast.AvgDegree(topo); d <= 0 {
		t.Errorf("avg degree %f", d)
	}
	r, err := wsnbcast.Broadcast(topo, wsnbcast.JitteredFlooding(6), wsnbcast.At(6, 6),
		wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Errorf("flooding on connected RGG incomplete: %d/%d", r.Reached, r.Total)
	}
}

func TestFacadeConvergecast(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 10, 8, 1)
	r, err := wsnbcast.Convergecast(topo, wsnbcast.At(5, 4), wsnbcast.ConvergeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tx < topo.NumNodes()-1 || r.EnergyJ <= 0 {
		t.Errorf("converge: %+v", r)
	}
}

func TestFacadeScenario(t *testing.T) {
	s, err := wsnbcast.LoadScenario(strings.NewReader(`{
		"topology": {"kind": "2d8", "m": 8, "n": 6},
		"sources": [{"x": 4, "y": 3}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Reached != 48 {
		t.Errorf("scenario report: %+v", rep)
	}
}

func TestFacadeRenders(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh3D6, 4, 4, 3)
	r, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh3D6),
		wsnbcast.At3(2, 2, 2), wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out := wsnbcast.Volume(topo, r); !strings.Contains(out, "all 3 planes") {
		t.Error("volume render")
	}
	if out := wsnbcast.EnergyHeatmap(topo, r, 2); !strings.Contains(out, "heatmap") {
		t.Error("heatmap render")
	}
}
