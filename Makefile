# Tier-1 verification and development targets. `make verify` is the
# full pre-merge gate: build, vet, tests, and the race detector over
# the whole module (the differential and concurrency-audit tests in
# internal/sweep only prove anything when the race target runs).

GO ?= go

.PHONY: all build test race bench vet verify golden cover

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is part of tier-1 verification: it runs the
# differential sweep tests and the concurrency-safety audit under the
# race detector.
race:
	$(GO) test -race ./...

# Sweep-engine scaling benchmarks (plus the per-table harness
# benchmarks at the repo root) and the HTTP serving hot path (cold vs
# cached on the 512-node canonical mesh).
bench:
	$(GO) test ./internal/sweep -bench=Sweep -benchtime=3x -run=^$$
	$(GO) test ./internal/service -bench=Served -benchtime=100x -run=^$$

vet:
	$(GO) vet ./...

verify: build vet test race

# Coverage profile over the whole module; CI uploads coverage.out as
# an artifact. Atomic mode so the profile is also valid under -race.
cover:
	$(GO) test ./... -covermode=atomic -coverprofile=coverage.out
	$(GO) tool cover -func=coverage.out | tail -1

# Regenerate the golden files after an intended output change.
golden:
	$(GO) test ./internal/experiments -run Golden -update
