# Tier-1 verification and development targets. `make verify` is the
# full pre-merge gate: build, vet, tests, and the race detector over
# the whole module (the differential and concurrency-audit tests in
# internal/sweep only prove anything when the race target runs).

GO ?= go

.PHONY: all build test race bench bench-engine bench-scale bench-json bench-regress benchstat vet verify lane-guard session-guard delta-guard fuzz-smoke golden cover jobs-e2e

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target is part of tier-1 verification: it runs the
# differential sweep tests and the concurrency-safety audit under the
# race detector.
race:
	$(GO) test -race ./...

# Sweep-engine scaling benchmarks (plus the per-table harness
# benchmarks at the repo root) and the HTTP serving hot path (cold vs
# cached on the 512-node canonical mesh).
bench:
	$(GO) test ./internal/sweep -bench=Sweep -benchtime=3x -run=^$$
	$(GO) test ./internal/service -bench=Served -benchtime=100x -run=^$$
	$(GO) test ./internal/mc -bench=MCLockstep -benchtime=3x -run=^$$
	$(GO) test ./internal/life -bench=Lifetime -benchtime=3x -run=^$$

# Engine-overhaul measurement pipeline. bench/baseline.txt pins the
# pre-optimization numbers (same commands, run at the commit before the
# scheduler/arena/relay-plan rewrite); bench-engine reproduces the
# suite in the identical shape so benchstat and benchjson can pair the
# rows up.
bench-engine:
	$(GO) test ./internal/sim -run='^$$' -bench='^BenchmarkEngine' -benchmem | tee bench/current.txt
	$(GO) test ./internal/mc -run='^$$' -bench=. -benchmem | tee -a bench/current.txt
	$(GO) test ./internal/sweep -run='^$$' -bench=. -benchmem -benchtime=2x | tee -a bench/current.txt
	$(GO) test ./internal/life -run='^$$' -bench=. -benchmem | tee -a bench/current.txt

# Large-grid scaling suite (64^2 to 1024^2 plus 128^3): the implicit
# fast path at Workers=1 and auto, the forced materialized path, the
# preserved reference engine, and the engine-loop-only measurement that
# isolates steady-state arena allocation from the Result arrays. Low
# fixed iteration count — single iterations of the biggest meshes are
# already statistically quiet, and the materialized 128^3 run costs
# seconds per op.
bench-scale:
	$(GO) test ./internal/sim -run='^$$' -bench='^BenchmarkScale' -benchmem -benchtime=3x | tee bench/scale.txt

# Machine-readable before/after record. CI regenerates BENCH_sim.json
# on every run and uploads it as an artifact.
bench-json:
	@test -f bench/current.txt || $(MAKE) bench-engine
	$(GO) run ./cmd/benchjson -before bench/baseline.txt -after bench/current.txt -o BENCH_sim.json
	@echo wrote BENCH_sim.json

# Human-readable comparison against the pinned baseline. benchstat is
# not vendored; install it once with:
#   go install golang.org/x/perf/cmd/benchstat@latest
benchstat:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "benchstat not found on PATH; install it with:"; \
		echo "  go install golang.org/x/perf/cmd/benchstat@latest"; exit 1; }
	@test -f bench/current.txt || $(MAKE) bench-engine
	benchstat bench/baseline.txt bench/current.txt

# CI regression smoke: one iteration of the lifetime headline
# benchmark, compared against the pinned baseline when benchstat is on
# PATH. A single iteration carries no statistical weight, so the
# benchstat diff is informational (|| true); the target fails only when
# the benchmark itself fails to build or run — the regression this
# smoke actually guards against.
bench-regress:
	$(GO) test ./internal/life -run='^$$' -bench='^BenchmarkLifetime$$' -benchmem -benchtime=1x | tee bench/regress.txt
	@command -v benchstat >/dev/null 2>&1 && benchstat bench/baseline.txt bench/regress.txt || true

vet:
	$(GO) vet ./...

# Guard: the lane-vs-scalar differential suites are the lockstep
# engine's correctness contract. If a build tag (or a rename) ever
# drops them from the test binaries, verify fails before running
# anything rather than passing vacuously.
lane-guard:
	@$(GO) test ./internal/sim -run='^$$' -list='^TestLaneDifferentialMatrix$$' | grep -q '^TestLaneDifferentialMatrix$$' || \
		{ echo "verify: TestLaneDifferentialMatrix missing from internal/sim"; exit 1; }
	@$(GO) test ./internal/mc -run='^$$' -list='^TestLockstepLaneWidthsIdenticalReports$$' | grep -q '^TestLockstepLaneWidthsIdenticalReports$$' || \
		{ echo "verify: TestLockstepLaneWidthsIdenticalReports missing from internal/mc"; exit 1; }

# Guard: the session-vs-sim.Run differential suites are the
# round-persistent session's correctness contract (byte-identical
# lifetime reports across topologies, strategies, churn and worker
# counts). Same rationale as lane-guard: verify must fail loudly if a
# rename or build tag ever drops them, because the race target below
# is what runs them under the race detector.
session-guard:
	@$(GO) test ./internal/sim -run='^$$' -list='^TestSessionDifferentialAllKinds$$' | grep -q '^TestSessionDifferentialAllKinds$$' || \
		{ echo "verify: TestSessionDifferentialAllKinds missing from internal/sim"; exit 1; }
	@$(GO) test ./internal/life -run='^$$' -list='^TestSessionDifferentialMatrix$$' | grep -q '^TestSessionDifferentialMatrix$$' || \
		{ echo "verify: TestSessionDifferentialMatrix missing from internal/life"; exit 1; }

# Guard: the delta-vs-sim.Run differential suites are the incremental
# delta path's correctness contract (RunDelta byte-identical to the
# frozen one-shot engine across mutations, rotation, repairs and
# fallbacks, and the lifetime matrix equal with the delta path on and
# off). Verify must fail loudly if a rename or build tag ever drops
# them; the race target is what runs them under the race detector.
delta-guard:
	@$(GO) test ./internal/sim -run='^$$' -list='^TestDeltaDifferentialAllKinds$$' | grep -q '^TestDeltaDifferentialAllKinds$$' || \
		{ echo "verify: TestDeltaDifferentialAllKinds missing from internal/sim"; exit 1; }
	@$(GO) test ./internal/sim -run='^$$' -list='^TestDeltaDifferentialChurnStorm$$' | grep -q '^TestDeltaDifferentialChurnStorm$$' || \
		{ echo "verify: TestDeltaDifferentialChurnStorm missing from internal/sim"; exit 1; }
	@$(GO) test ./internal/life -run='^$$' -list='^TestSessionDifferentialMatrix$$' | grep -q '^TestSessionDifferentialMatrix$$' || \
		{ echo "verify: TestSessionDifferentialMatrix missing from internal/life"; exit 1; }

# Short fuzz smoke over the counter-based randomness layers — the
# corpus seeds plus a few seconds of mutation; CI runs this on every
# push. The churn target proves the lifetime engine's churn draws
# never collide with the loss/failure/replication key domains.
fuzz-smoke:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzLaneLossMask -fuzztime=5s
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzLaneFailureMasks -fuzztime=5s
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzChurnDomainDisjoint -fuzztime=5s

verify: lane-guard session-guard delta-guard build vet test race

# Coverage profile over the whole module; CI uploads coverage.out as
# an artifact. Atomic mode so the profile is also valid under -race.
cover:
	$(GO) test ./... -covermode=atomic -coverprofile=coverage.out
	$(GO) tool cover -func=coverage.out | tail -1

# Crash/restart smoke over the async job subsystem: submits a Monte
# Carlo job against a -store directory, SIGKILLs the server mid-job,
# restarts it, and diffs the resumed job's result against a fresh
# synchronous answer. Needs curl and jq on PATH.
jobs-e2e:
	./scripts/jobs_e2e.sh

# Regenerate the golden files after an intended output change.
golden:
	$(GO) test ./internal/experiments -run Golden -update
