#!/usr/bin/env bash
# End-to-end smoke test for the async job subsystem (/v1/jobs) and the
# durable content-addressed result store (-store).
#
# The script builds wsnserved, starts it with a store directory,
# submits a Monte Carlo reliability job, kills the server with SIGKILL
# mid-job, restarts it against the same store, polls the (resumed) job
# to completion, and diffs the merged result against the synchronous
# answer from a fresh storeless instance. Byte-identical output proves
# the crash-resume path recomputes nothing it shouldn't and that the
# distributed merge matches the serial code path exactly.
#
# A second phase repeats the kill/restart cycle with a multi-round
# lifetime job (kind "lifetime"): the round loop checkpoints through
# the store, so a SIGKILL can land mid-cell and the resumed job must
# still produce the byte-identical /v1/lifetime body.
#
# Needs: go, curl, jq. Run from the repository root:
#
#	./scripts/jobs_e2e.sh
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$work"
}
trap cleanup EXIT

log() { echo "jobs-e2e: $*" >&2; }
die() {
	log "FAIL: $*"
	exit 1
}

log "building wsnserved"
go build -o "$work/wsnserved" ./cmd/wsnserved

# start_server <name> [extra flags...] — starts an instance on an
# ephemeral port, waits for /healthz, and sets $addr and $pid.
start_server() {
	local name="$1"
	shift
	"$work/wsnserved" -addr 127.0.0.1:0 -quiet "$@" >"$work/$name.log" 2>&1 &
	pid=$!
	disown "$pid" # keep bash job control quiet about the SIGKILLs
	pids+=("$pid")
	addr=""
	for _ in $(seq 1 100); do
		addr="$(sed -n 's/^wsnserved: listening on \(.*\)$/\1/p' "$work/$name.log" | head -1)"
		if [ -n "$addr" ] && curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
			return 0
		fi
		kill -0 "$pid" 2>/dev/null || die "$name exited early: $(cat "$work/$name.log")"
		sleep 0.1
	done
	die "$name did not become ready: $(cat "$work/$name.log")"
}

# A reliability study: one deterministic broadcast plus a 3x2 grid of
# Monte Carlo points — enough grid points for the mid-job kill to land
# between checkpoints.
doc='{
  "topology": {"kind": "2d4", "m": 12, "n": 12},
  "sources": [{"x": 6, "y": 6}],
  "reliability": {
    "seed": 7,
    "replications": 3000,
    "loss_rates": [0, 0.05, 0.1],
    "failure_rates": [0, 0.02]
  }
}'
job="$(jq -n --argjson sc "$doc" '{kind: "scenario", scenario: $sc}')"

store="$work/store"

log "starting server with -store"
start_server first -store "$store"
first_pid=$pid
first_addr=$addr

log "submitting job"
status="$(curl -fsS -X POST -d "$job" "http://$first_addr/v1/jobs")"
id="$(echo "$status" | jq -r .id)"
total="$(echo "$status" | jq -r .total_points)"
[ -n "$id" ] && [ "$id" != null ] || die "no job id in: $status"
log "job $id submitted ($total points)"

# Let the job make some progress, then pull the plug. If the job
# finishes first the restart still has to serve the durable result.
for _ in $(seq 1 200); do
	st="$(curl -fsS "http://$first_addr/v1/jobs/$id")"
	state="$(echo "$st" | jq -r .state)"
	done_pts="$(echo "$st" | jq -r .done_points)"
	[ "$state" = done ] || [ "$done_pts" -ge 1 ] && break
	sleep 0.05
done
log "killing server at $done_pts/$total points (state $state)"
kill -9 "$first_pid"
wait "$first_pid" 2>/dev/null || true

log "restarting server against the same store"
start_server second -store "$store"
second_pid=$pid
second_addr=$addr

# The job id is the hash of the canonical document, so the restarted
# instance must know it (recovered or already durable) — resubmission
# must return the same id without restarting the work.
resub_id="$(curl -fsS -X POST -d "$job" "http://$second_addr/v1/jobs" | jq -r .id)"
[ "$resub_id" = "$id" ] || die "job id changed across restart: $id vs $resub_id"

log "polling job to completion"
state=""
for _ in $(seq 1 600); do
	state="$(curl -fsS "http://$second_addr/v1/jobs/$id" | jq -r .state)"
	[ "$state" = done ] && break
	[ "$state" = failed ] && die "job failed: $(curl -fsS "http://$second_addr/v1/jobs/$id")"
	sleep 0.1
done
[ "$state" = done ] || die "job did not finish: last state $state"
curl -fsS "http://$second_addr/v1/jobs/$id/result" >"$work/job.json"

log "computing synchronous answer on a storeless instance"
start_server sync
sync_addr=$addr
curl -fsS -X POST -d "$doc" "http://$sync_addr/v1/scenario" >"$work/sync.json"

diff -u "$work/sync.json" "$work/job.json" ||
	die "job result differs from the synchronous answer"

resumed="$(curl -fsS "http://$second_addr/metrics" | jq -r '.jobs.recovered')"
log "OK: job survived SIGKILL (recovered=$resumed), result byte-identical to sync"

# --- Phase 2: the same crash cycle for a multi-round lifetime job. ---
# A 32x32 study with churn and three rotation strategies: 12 cells of
# up to 512 rounds each, so the kill can land mid-cell between two
# round-loop checkpoints.
lifedoc='{
  "topology": {"kind": "2d4", "m": 32, "n": 32},
  "sources": [{"x": 16, "y": 16}],
  "lifetime": {
    "budget_j": 0.01,
    "max_rounds": 512,
    "seed": 5,
    "replications": 2,
    "strategies": ["static", "round-robin", "residual"],
    "churn_rates": [0, 0.01],
    "p_new": 0.25
  }
}'
lifejob="$(jq -n --argjson sc "$lifedoc" '{kind: "lifetime", scenario: $sc}')"

log "submitting lifetime job"
status="$(curl -fsS -X POST -d "$lifejob" "http://$second_addr/v1/jobs")"
lid="$(echo "$status" | jq -r .id)"
ltotal="$(echo "$status" | jq -r .total_points)"
[ -n "$lid" ] && [ "$lid" != null ] || die "no lifetime job id in: $status"
log "lifetime job $lid submitted ($ltotal cells)"

# Let it make some progress, then pull the plug again. If the job
# finishes first the restart still has to serve the durable result.
for _ in $(seq 1 200); do
	st="$(curl -fsS "http://$second_addr/v1/jobs/$lid")"
	state="$(echo "$st" | jq -r .state)"
	done_pts="$(echo "$st" | jq -r .done_points)"
	[ "$state" = done ] || [ "$done_pts" -ge 1 ] && break
	sleep 0.05
done
log "killing server at $done_pts/$ltotal cells (state $state)"
kill -9 "$second_pid"
wait "$second_pid" 2>/dev/null || true

log "restarting server against the same store"
start_server third -store "$store"
third_addr=$addr

resub_id="$(curl -fsS -X POST -d "$lifejob" "http://$third_addr/v1/jobs" | jq -r .id)"
[ "$resub_id" = "$lid" ] || die "lifetime job id changed across restart: $lid vs $resub_id"

log "polling lifetime job to completion"
state=""
for _ in $(seq 1 600); do
	state="$(curl -fsS "http://$third_addr/v1/jobs/$lid" | jq -r .state)"
	[ "$state" = done ] && break
	[ "$state" = failed ] && die "lifetime job failed: $(curl -fsS "http://$third_addr/v1/jobs/$lid")"
	sleep 0.1
done
[ "$state" = done ] || die "lifetime job did not finish: last state $state"
curl -fsS "http://$third_addr/v1/jobs/$lid/result" >"$work/life-job.json"

curl -fsS -X POST -d "$lifedoc" "http://$sync_addr/v1/lifetime" >"$work/life-sync.json"
diff -u "$work/life-sync.json" "$work/life-job.json" ||
	die "lifetime job result differs from the synchronous answer"

log "OK: lifetime job survived SIGKILL, result byte-identical to sync"
