// Package wsnbcast reproduces "Efficient Broadcasting Protocols for
// Regular Wireless Sensor Networks" (Hsu, Sheu, Chang; ICPP 2003): a
// slotted-time simulator of regular WSN topologies, the paper's power-
// and time-efficient one-to-all broadcasting protocols for the 2D mesh
// with 3, 4 and 8 neighbors and the 3D mesh with 6 neighbors, the
// baselines the paper argues against, and a harness regenerating every
// table and figure of its evaluation.
//
// # Quick start
//
//	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4) // 32x16, 512 nodes
//	res, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
//	    wsnbcast.At(16, 8), wsnbcast.Config{})
//	if err != nil { ... }
//	fmt.Printf("Tx=%d power=%.2e J delay=%d slots\n", res.Tx, res.EnergyJ, res.Delay)
//
// Every quantity follows the paper's Section 4 semantics: the source
// transmits in slot 0, a reception is one (transmitter, hearing
// neighbor) pair, energy uses the First Order Radio Model
// (E_elec = 50 nJ/bit, E_amp = 100 pJ/bit/m²), and the delay is the
// slot of the last first-decode.
//
// The protocols achieve the paper's headline property — 100%
// reachability despite deliberate collisions — through designated
// retransmissions; where a mesh/source combination needs a
// retransmission the closed-form rules do not cover, the scheduler
// plans one deterministically and reports it in Result.Repairs.
package wsnbcast
