package wsnbcast

// Extensions beyond the paper's single-broadcast evaluation: protocol
// verification, multi-packet pipelining, source rotation, and
// irregular (random geometric) deployments.

import (
	"io"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/converge"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/pipeline"
	"wsnbcast/internal/render"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/verify"
)

// Verification ---------------------------------------------------------

type (
	// VerifyReport is the outcome of a structural protocol check.
	VerifyReport = verify.Report
	// VerifyIssue is one structural problem (undominated node, bad
	// offset, ...).
	VerifyIssue = verify.Issue
)

// Verify statically checks the protocol's relay structure for one
// source: domination (every node within a hop of a relay), relay
// connectivity, and well-formed delays/offsets.
func Verify(t Topology, p Protocol, src Coord) (VerifyReport, error) {
	return verify.Check(t, p, src)
}

// VerifyAllSources runs Verify from every source and returns the first
// failing report.
func VerifyAllSources(t Topology, p Protocol) (VerifyReport, error) {
	return verify.CheckAllSources(t, p)
}

// Pipelining -----------------------------------------------------------

type (
	// PipelineConfig parameterizes a multi-packet dissemination.
	PipelineConfig = pipeline.Config
	// PipelineResult aggregates a pipelined run.
	PipelineResult = pipeline.Result
)

// Pipeline disseminates a stream of packets injected every
// cfg.Interval slots; packets interfere on the shared channel.
func Pipeline(t Topology, p Protocol, src Coord, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.Run(t, p, src, cfg)
}

// SafeInterval finds the smallest injection interval that delivers
// every probe packet to every node.
func SafeInterval(t Topology, p Protocol, src Coord, probe, upper int) (int, error) {
	return pipeline.SafeInterval(t, p, src, probe, upper)
}

// Snapshot runs one broadcast and freezes its final schedule —
// including any planned repairs — as a replayable protocol.
func Snapshot(t Topology, p Protocol, src Coord, cfg Config) (Protocol, *Result, error) {
	return sim.Snapshot(t, p, src, cfg)
}

// Rotation -------------------------------------------------------------

// RotationReport compares fixed-source against rotated-source
// lifetimes.
type RotationReport = analysis.RotationReport

// Rotate simulates broadcasts cycling through the schedule and returns
// how many rounds fit a per-node battery of budgetJ.
func Rotate(t Topology, p Protocol, schedule []Coord, cfg Config, budgetJ float64, maxRounds int) (int, error) {
	return analysis.Rotate(t, p, schedule, cfg, budgetJ, maxRounds)
}

// CompareRotation contrasts a fixed source against a round-robin
// rotation over the mesh corners and center.
func CompareRotation(t Topology, p Protocol, fixed Coord, cfg Config, budgetJ float64, maxRounds int) (RotationReport, error) {
	return analysis.CompareRotation(t, p, fixed, cfg, budgetJ, maxRounds)
}

// Irregular deployments -------------------------------------------------

// NewIrregularTopology builds a jittered-grid random geometric
// deployment: nodes near the m x n grid positions (displaced up to
// jitter per axis), connected within radius; deterministic in seed.
func NewIrregularTopology(m, n int, jitter, radius float64, seed uint64) Topology {
	return grid.NewIrregular(m, n, jitter, radius, seed)
}

// IsConnectedGraph reports whether every node of the topology is
// reachable from node 0 — check before broadcasting on an irregular
// deployment.
func IsConnectedGraph(t Topology) bool { return grid.IsConnectedGraph(t) }

// AvgDegree returns the topology's mean node degree.
func AvgDegree(t Topology) float64 { return grid.AvgDegree(t) }

// Convergecast -----------------------------------------------------------

type (
	// ConvergeConfig parameterizes a data-collection round.
	ConvergeConfig = converge.Config
	// ConvergeResult is the outcome of a convergecast round.
	ConvergeResult = converge.Result
)

// Convergecast runs one aggregating data-collection round: every
// node's reading flows down a shortest-path tree to the sink, each
// relay aggregating its subtree into one packet.
func Convergecast(t Topology, sink Coord, cfg ConvergeConfig) (*ConvergeResult, error) {
	return converge.Run(t, sink, cfg)
}

// Scenarios ---------------------------------------------------------------

type (
	// Scenario is a declarative experiment (JSON-loadable).
	Scenario = scenario.Scenario
	// ScenarioReport is a scenario's JSON-renderable output.
	ScenarioReport = scenario.Report
)

// LoadScenario parses a JSON scenario document.
func LoadScenario(r io.Reader) (Scenario, error) { return scenario.Load(r) }

// Rendering ---------------------------------------------------------------

// EnergyHeatmap renders one XY plane's per-node energy as ASCII.
func EnergyHeatmap(t Topology, r *Result, z int) string { return render.EnergyHeatmap(t, r, z) }

// Volume renders every XY plane of a 3D broadcast side by side.
func Volume(t Topology, r *Result) string { return render.Volume(t, r) }
