package wsnbcast

import (
	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/experiments"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/render"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// Re-exported fundamental types. The underlying packages are internal;
// this facade is the supported API surface.
type (
	// Coord is a node id: (x, y) in 2D meshes, (x, y, z) in 3D, 1-based.
	Coord = grid.Coord
	// Kind selects one of the four regular topologies.
	Kind = grid.Kind
	// Topology is pure mesh geometry.
	Topology = grid.Topology
	// Protocol is a broadcast protocol as pure node-local rules.
	Protocol = sim.Protocol
	// Config parameterizes a simulated broadcast.
	Config = sim.Config
	// Result is the outcome of one broadcast.
	Result = sim.Result
	// Event is one trace occurrence; see CollectTrace.
	Event = sim.Event
	// Summary aggregates a full source-position sweep.
	Summary = analysis.Summary
	// LifetimeReport estimates battery-bounded broadcast rounds.
	LifetimeReport = analysis.LifetimeReport
	// Ideal is the collision-free optimal-ETR lower bound (Table 2).
	Ideal = core.Ideal
	// RadioModel is the First Order Radio Model.
	RadioModel = radio.Model
	// Packet is the broadcast packet parameters (bits, spacing).
	Packet = radio.Packet
	// Table is a renderable fixed-width text table.
	Table = table.Table
)

// The four topology kinds of the paper.
const (
	Mesh2D3 = grid.Mesh2D3
	Mesh2D4 = grid.Mesh2D4
	Mesh2D8 = grid.Mesh2D8
	Mesh3D6 = grid.Mesh3D6
)

// At builds a 2D node id.
func At(x, y int) Coord { return grid.C2(x, y) }

// At3 builds a 3D node id.
func At3(x, y, z int) Coord { return grid.C3(x, y, z) }

// NewTopology constructs an m x n (x l, for Mesh3D6) regular mesh.
func NewTopology(k Kind, m, n, l int) Topology { return grid.New(k, m, n, l) }

// CanonicalTopology returns the paper's 512-node evaluation mesh:
// 32x16 for the 2D kinds, 8x8x8 for Mesh3D6.
func CanonicalTopology(k Kind) Topology { return grid.Canonical(k) }

// Kinds lists the four topologies in the paper's order.
func Kinds() []Kind { return grid.Kinds() }

// PaperProtocol returns the paper's broadcasting protocol for the
// topology kind (Sections 3.1-3.4).
func PaperProtocol(k Kind) Protocol { return core.ForTopology(k) }

// Flooding returns the blind-flooding baseline ("traditional
// broadcasting", Section 1).
func Flooding() Protocol { return core.NewFlooding() }

// JitteredFlooding returns flooding with a deterministic forwarding
// jitter of 1..j slots.
func JitteredFlooding(j int) Protocol { return core.NewJitteredFlooding(j) }

// DefaultRadio returns the paper's First Order Radio Model constants.
func DefaultRadio() RadioModel { return radio.Default() }

// CanonicalPacket returns the paper's packet parameters: 512 bits,
// 0.5 m node spacing.
func CanonicalPacket() Packet { return radio.CanonicalPacket() }

// Broadcast simulates one one-to-all broadcast of p from src on t.
func Broadcast(t Topology, p Protocol, src Coord, cfg Config) (*Result, error) {
	return sim.Run(t, p, src, cfg)
}

// CollectTrace returns a trace sink appending every engine event to
// dst; pass it as Config.Trace.
func CollectTrace(dst *[]Event) func(Event) { return sim.CollectTrace(dst) }

// Sweep runs p from every source position of t and aggregates the
// paper's best/worst/max-delay statistics.
func Sweep(t Topology, p Protocol, cfg Config) (Summary, error) {
	return analysis.Sweep(t, p, cfg)
}

// Lifetime estimates how many broadcasts a per-node battery of budgetJ
// Joules sustains before the most-loaded node dies.
func Lifetime(t Topology, p Protocol, src Coord, cfg Config, budgetJ float64) (LifetimeReport, error) {
	return analysis.Lifetime(t, p, src, cfg, budgetJ)
}

// IdealCase computes the paper's collision-free optimal-ETR lower
// bound for t (Table 2's rows).
func IdealCase(t Topology, m RadioModel, p Packet) Ideal {
	return core.IdealCase(t, m, p)
}

// OptimalETR returns Table 1's optimal efficient transmission ratio
// for the kind, as an exact fraction.
func OptimalETR(k Kind) (num, den int) { return core.OptimalETR(k) }

// Tables regenerates the paper's Tables 1-5 (the sweeps take a few
// seconds on the canonical meshes).
func Tables() ([]*Table, error) { return experiments.AllTables(experiments.Config{}) }

// Figure renders figure n of the paper (1-9) as ASCII.
func Figure(n int) (string, error) { return experiments.Figure(n, experiments.Config{}) }

// BroadcastMap renders one XY plane of a finished broadcast as a relay
// map in the style of the paper's Figs. 5, 7 and 8.
func BroadcastMap(t Topology, r *Result, z int) string { return render.BroadcastMap(t, r, z) }

// SequenceMap renders each node's first transmission slot.
func SequenceMap(t Topology, r *Result, z int) string { return render.SequenceMap(t, r, z) }
