package wsnbcast_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation, plus the ablations from DESIGN.md and
// engine microbenchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The table benchmarks regenerate the full artifact (including the
// 512-source sweeps for Tables 3-5), so one iteration is the cost of
// reproducing that table from scratch.

import (
	"strings"
	"testing"

	"wsnbcast"
	"wsnbcast/internal/analysis"
	"wsnbcast/internal/converge"
	"wsnbcast/internal/core"
	"wsnbcast/internal/experiments"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/pipeline"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/verify"
)

// --- Tables -----------------------------------------------------------

func BenchmarkTable1OptimalETR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table1(); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2Ideal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table2(experiments.Config{}); len(tbl.Rows) != 4 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3BestCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4WorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5MaxDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures ----------------------------------------------------------

func benchFigure(b *testing.B, n int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure(n, experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigTopologies(b *testing.B) { // Figs. 1-4
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 4; n++ {
			if _, err := experiments.Figure(n, experiments.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5Mesh4Broadcast(b *testing.B) { benchFigure(b, 5) }
func BenchmarkFig6ETRComparison(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFig7Mesh8Broadcast(b *testing.B) { benchFigure(b, 7) }
func BenchmarkFig8Mesh3Broadcast(b *testing.B) { benchFigure(b, 8) }
func BenchmarkFig9ZRelayPattern(b *testing.B)  { benchFigure(b, 9) }

// --- Ablations --------------------------------------------------------

func BenchmarkAblationDelayVsRetransmit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDelayVsRetransmit(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFlooding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFlooding(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPerPlane3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPerPlane3D(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMesh8Axis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMesh8Axis(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine microbenchmarks -------------------------------------------

// One canonical broadcast per topology: the simulator's unit of work.
func BenchmarkBroadcastCanonical(b *testing.B) {
	for _, k := range grid.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			topo := grid.Canonical(k)
			p := core.ForTopology(k)
			m, n, l := topo.Size()
			src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(topo, p, src, sim.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if !r.FullyReached() {
					b.Fatal("not reached")
				}
			}
		})
	}
}

// A full 512-source sweep (the building block of Tables 3-5).
func BenchmarkSweepCanonical2D4(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Sweep(topo, core.NewMesh4Protocol(), sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Flooding is the engine's stress case (every node transmits, heavy
// collision handling and planner repairs).
func BenchmarkFloodingStress(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(topo, core.NewFlooding(), grid.C2(1, 1), sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !r.FullyReached() {
			b.Fatal("not reached")
		}
	}
}

// Scaling: broadcast cost across mesh sizes.
func BenchmarkBroadcastScaling(b *testing.B) {
	for _, size := range []int{16, 32, 64, 128} {
		size := size
		b.Run(grid.Mesh2D4.String()+"/"+itoa(size), func(b *testing.B) {
			topo := grid.NewMesh2D4(size, size)
			p := core.NewMesh4Protocol()
			src := grid.C2(size/2, size/2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(topo, p, src, sim.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// The facade path end to end (what a downstream user calls).
func BenchmarkFacadeBroadcast(b *testing.B) {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	p := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)
	for i := 0; i < b.N; i++ {
		if _, err := wsnbcast.Broadcast(topo, p, wsnbcast.At(16, 8), wsnbcast.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions ---------------------------------------------------------

func BenchmarkExtensionRegularVsRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionRegularVsRandom(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionPipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionPipelining(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionRotation(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Pipelined dissemination as a microbenchmark: 10 packets through the
// canonical 2D-4 mesh at the safe interval.
func BenchmarkPipeline10Packets(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	snap, _, err := sim.Snapshot(topo, core.NewMesh4Protocol(), src, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := pipeline.Run(topo, snap, src, pipeline.Config{Packets: 10, Interval: 4})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Delivered {
			b.Fatal("not delivered")
		}
	}
}

// Structural verification across all sources (a pre-deployment check).
func BenchmarkVerifyAllSources(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	p := core.NewMesh4Protocol()
	for i := 0; i < b.N; i++ {
		rep, err := verify.CheckAllSources(topo, p)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatal("verification failed")
		}
	}
}

func BenchmarkExtensionRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionRobustness(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionScaling(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionMonitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionMonitoring(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Convergecast on the canonical mesh.
func BenchmarkConvergecast(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := converge.Run(topo, grid.C2(16, 8), converge.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Tx < 511 {
			b.Fatal("incomplete")
		}
	}
}

// A full declarative scenario end to end.
func BenchmarkScenarioRun(b *testing.B) {
	s, err := scenario.Load(strings.NewReader(`{
		"topology": {"kind": "2d4", "m": 32, "n": 16},
		"sources": [{"x": 16, "y": 8}],
		"pipeline": {"packets": 5},
		"budget_j": 1.0,
		"convergecast": true
	}`))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionIdleListening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionIdleListening(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGossip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGossip(experiments.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
