// Topology selection: before deploying a regular sensor field, compare
// the four topologies of the paper on your own mesh size and traffic
// parameters — reproducing the paper's Section 4 conclusions ("2D mesh
// with 4 neighbors possesses the minimum power consumption and 3D mesh
// with 6 neighbors has the smallest maximum delay") for deployments
// the paper never measured.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"wsnbcast"
)

func main() {
	m := flag.Int("m", 24, "mesh width")
	n := flag.Int("n", 12, "mesh height")
	l := flag.Int("l", 4, "mesh depth for the 3D topology")
	flag.Parse()

	fmt.Printf("comparing topologies on %dx%d (2D) and %dx%dx%d (3D) meshes\n\n",
		*m, *n, *m, *n, *l)

	tbl := &wsnbcast.Table{
		Headers: []string{"Topology", "Nodes", "Best Tx", "Worst Tx",
			"Best power (J)", "Worst power (J)", "Max delay", "Spread"},
	}
	type row struct {
		kind  wsnbcast.Kind
		best  float64
		delay int
	}
	var rows []row
	for _, k := range wsnbcast.Kinds() {
		topo := wsnbcast.NewTopology(k, *m, *n, *l)
		s, err := wsnbcast.Sweep(topo, wsnbcast.PaperProtocol(k), wsnbcast.Config{})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(k.String(), topo.NumNodes(), s.Best.Tx, s.Worst.Tx,
			s.Best.EnergyJ, s.Worst.EnergyJ, s.MaxDelay,
			fmt.Sprintf("%.1f%%", 100*s.EnergySpread()))
		rows = append(rows, row{k, s.Best.EnergyJ, s.MaxDelay})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	bestPower, bestDelay := rows[0], rows[0]
	for _, r := range rows[1:] {
		if r.best < bestPower.best {
			bestPower = r
		}
		if r.delay < bestDelay.delay {
			bestDelay = r
		}
	}
	fmt.Printf("\nminimum power:    %s (%.2e J per broadcast)\n",
		bestPower.kind, bestPower.best)
	fmt.Printf("minimum max delay: %s (%d slots)\n", bestDelay.kind, bestDelay.delay)
	fmt.Println("\n(the paper's canonical 512-node result: 2D-4 wins power, 3D-6 wins delay)")
}
