// Environmental monitoring: the full duty cycle of the deployment the
// paper's introduction motivates. A base station in a field of sensors
// periodically (1) broadcasts a measurement command using the paper's
// relay protocol and (2) collects every sensor's reading back through
// aggregating convergecast. The example sizes the duty cycle's energy
// and latency, picks the best topology for the combined pattern, and
// estimates how many daily cycles a battery sustains.
package main

import (
	"fmt"
	"log"
	"os"

	"wsnbcast"
)

const batteryJ = 5.0

func main() {
	tbl := &wsnbcast.Table{
		Title: "One monitoring cycle (command broadcast + reading collection), 512 nodes",
		Headers: []string{"Topology", "Command (J / slots)", "Collect (J / slots)",
			"Cycle (J / slots)", "Cycles on 5 J*"},
	}
	type score struct {
		kind   wsnbcast.Kind
		cycleJ float64
		cycles int
	}
	var best *score
	for _, k := range wsnbcast.Kinds() {
		topo := wsnbcast.CanonicalTopology(k)
		m, n, l := topo.Size()
		base := wsnbcast.At3((m+1)/2, (n+1)/2, (l+1)/2)

		cmd, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(k), base, wsnbcast.Config{})
		if err != nil {
			log.Fatal(err)
		}
		col, err := wsnbcast.Convergecast(topo, base, wsnbcast.ConvergeConfig{})
		if err != nil {
			log.Fatal(err)
		}

		// The busiest node across both phases bounds the lifetime.
		maxJ := 0.0
		for i := range cmd.PerNodeEnergyJ {
			if e := cmd.PerNodeEnergyJ[i] + col.PerNodeEnergyJ[i]; e > maxJ {
				maxJ = e
			}
		}
		cycles := int(batteryJ / maxJ)
		tbl.AddRow(k.String(),
			fmt.Sprintf("%.2e / %d", cmd.EnergyJ, cmd.Delay),
			fmt.Sprintf("%.2e / %d", col.EnergyJ, col.Slots),
			fmt.Sprintf("%.2e / %d", cmd.EnergyJ+col.EnergyJ, cmd.Delay+col.Slots),
			cycles)
		s := score{k, cmd.EnergyJ + col.EnergyJ, cycles}
		if best == nil || s.cycles > best.cycles {
			best = &s
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("* bounded by the busiest node's per-cycle energy")
	fmt.Printf("\nrecommended topology for this duty cycle: %s (%d cycles)\n",
		best.kind, best.cycles)
	fmt.Println("(hourly cycles: that is", best.cycles/24, "days of unattended monitoring)")
}
