// Quickstart: broadcast one message across the paper's canonical
// 32x16 sensor mesh (2D, 4 neighbors) and print the Section 4 metrics.
package main

import (
	"fmt"
	"log"

	"wsnbcast"
)

func main() {
	// The paper's canonical evaluation network: 512 nodes as a 32x16
	// mesh, 0.5 m spacing, 512-bit packets.
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	proto := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)

	// Broadcast from a central node.
	src := wsnbcast.At(16, 8)
	res, err := wsnbcast.Broadcast(topo, proto, src, wsnbcast.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("broadcast from %s on %s:\n", src, topo.Kind())
	fmt.Printf("  transmissions: %d\n", res.Tx)
	fmt.Printf("  receptions:    %d\n", res.Rx)
	fmt.Printf("  power:         %.2e J\n", res.EnergyJ)
	fmt.Printf("  delay:         %d slots\n", res.Delay)
	fmt.Printf("  reachability:  %.0f%%\n", 100*res.Reachability())

	// How close is that to the collision-free optimal-ETR lower bound?
	ideal := wsnbcast.IdealCase(topo, wsnbcast.DefaultRadio(), wsnbcast.CanonicalPacket())
	fmt.Printf("  ideal case:    Tx=%d power=%.2e J\n", ideal.Tx, ideal.EnergyJ)
	fmt.Printf("  power overhead over ideal: %.1f%%\n",
		100*(res.EnergyJ/ideal.EnergyJ-1))
}
