// Firmware dissemination: push a multi-packet firmware image to every
// node of a field-deployed sensor mesh and answer the operations
// questions the paper's introduction motivates — how fast can the
// image stream through the network, how much battery does one update
// burn on the busiest node, and how many updates can the network
// survive?
//
// The image is split into 512-bit packets that are *pipelined*: the
// gateway injects a new packet every few slots while earlier packets
// are still propagating, and different packets interfere on the shared
// channel. The example finds the smallest safe injection interval,
// streams the image through it, and compares against sequential
// dissemination and against flooding.
package main

import (
	"fmt"
	"log"

	"wsnbcast"
)

const (
	imageBytes    = 48 * 1024 // a 48 KiB firmware image
	packetBits    = 512       // the paper's packet size
	batteryJ      = 2.0       // a coin-cell-class per-node budget
	meshW, meshH  = 32, 16
	updatesNeeded = 52 // one update a week for a year
)

func main() {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, meshW, meshH, 1)
	proto := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)
	gateway := wsnbcast.At(1, 1) // the gateway sits at a corner

	// Freeze the repaired relay schedule once; the nodes replay it for
	// every packet.
	schedule, one, err := wsnbcast.Snapshot(topo, proto, gateway, wsnbcast.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if !one.FullyReached() {
		log.Fatalf("firmware would not reach %d nodes", one.Total-one.Reached)
	}

	packets := (imageBytes*8 + packetBits - 1) / packetBits
	fmt.Printf("firmware image: %d KiB = %d packets of %d bits\n",
		imageBytes/1024, packets, packetBits)
	fmt.Printf("one packet: Tx=%d, delay=%d slots, %.2e J network-wide\n",
		one.Tx, one.Delay, one.EnergyJ)

	// The fastest safe injection rate for this mesh and schedule.
	safe, err := wsnbcast.SafeInterval(topo, proto, gateway, 4, 4*(one.Delay+1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safe injection interval: every %d slots\n", safe)

	// Stream a representative burst through the pipeline to measure the
	// steady state, then extrapolate to the full image.
	burst, err := wsnbcast.Pipeline(topo, schedule, gateway,
		wsnbcast.PipelineConfig{Packets: 32, Interval: safe})
	if err != nil {
		log.Fatal(err)
	}
	if !burst.Delivered {
		log.Fatal("burst not fully delivered at the safe interval")
	}
	pipelinedSlots := (packets-1)*safe + one.Delay + 1
	sequentialSlots := packets * (one.Delay + 1)
	fmt.Printf("full image: pipelined %d slots vs sequential %d (%.1fx faster)\n",
		pipelinedSlots, sequentialSlots,
		float64(sequentialSlots)/float64(pipelinedSlots))

	// The busiest node bounds the network lifetime.
	rep, err := wsnbcast.Lifetime(topo, proto, gateway, wsnbcast.Config{}, batteryJ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest node per packet: %.2e J (%.1fx the mean)\n",
		rep.MaxNodeEnergyJ, rep.ImbalanceRatio)
	updatesOnBattery := rep.RoundsOnBudget / packets
	fmt.Printf("updates on a %.1f J battery: %d\n", batteryJ, updatesOnBattery)
	if updatesOnBattery >= updatesNeeded {
		fmt.Printf("OK: survives the planned %d weekly updates\n", updatesNeeded)
	} else {
		fmt.Printf("WARNING: only %d of the planned %d updates fit the budget\n",
			updatesOnBattery, updatesNeeded)
	}

	// Compare against naive flooding — the reason to use the paper's
	// relay selection in the first place.
	flood, err := wsnbcast.Lifetime(topo, wsnbcast.Flooding(), gateway, wsnbcast.Config{}, batteryJ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with flooding instead: %d updates (%.1fx fewer)\n",
		flood.RoundsOnBudget/packets,
		float64(rep.RoundsOnBudget)/float64(flood.RoundsOnBudget))
}
