package wsnbcast_test

import (
	"fmt"

	"wsnbcast"
)

// The one-call path: broadcast on the paper's canonical mesh and read
// the Section 4 metrics.
func ExampleBroadcast() {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	res, _ := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
		wsnbcast.At(16, 8), wsnbcast.Config{})
	fmt.Printf("Tx=%d delay=%d reach=%.0f%%\n", res.Tx, res.Delay, 100*res.Reachability())
	// Output: Tx=208 delay=23 reach=100%
}

// Table 1's optimal efficient transmission ratios.
func ExampleOptimalETR() {
	for _, k := range wsnbcast.Kinds() {
		num, den := wsnbcast.OptimalETR(k)
		fmt.Printf("%s %d/%d\n", k, num, den)
	}
	// Output:
	// 2D-3 2/3
	// 2D-4 3/4
	// 2D-8 5/8
	// 3D-6 5/6
}

// The ideal case of Table 2.
func ExampleIdealCase() {
	ideal := wsnbcast.IdealCase(wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4),
		wsnbcast.DefaultRadio(), wsnbcast.CanonicalPacket())
	fmt.Printf("Tx=%d Rx=%d\n", ideal.Tx, ideal.Rx)
	// Output: Tx=170 Rx=680
}

// A full source sweep reproduces the paper's best/worst cases.
func ExampleSweep() {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	s, _ := wsnbcast.Sweep(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4), wsnbcast.Config{})
	fmt.Printf("best Tx=%d worst Tx=%d max delay=%d\n", s.Best.Tx, s.Worst.Tx, s.MaxDelay)
	// Output: best Tx=208 worst Tx=223 max delay=45
}

// Structural verification before deployment.
func ExampleVerify() {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D8)
	rep, _ := wsnbcast.Verify(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D8), wsnbcast.At(5, 9))
	fmt.Println(rep.OK())
	// Output: true
}

// Streaming a burst of packets at the smallest safe injection rate.
func ExamplePipeline() {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 12, 12, 1)
	p := wsnbcast.PaperProtocol(wsnbcast.Mesh2D4)
	src := wsnbcast.At(6, 6)
	interval, _ := wsnbcast.SafeInterval(topo, p, src, 4, 64)
	snap, _, _ := wsnbcast.Snapshot(topo, p, src, wsnbcast.Config{})
	burst, _ := wsnbcast.Pipeline(topo, snap, src,
		wsnbcast.PipelineConfig{Packets: 8, Interval: interval})
	fmt.Println(burst.Delivered)
	// Output: true
}
