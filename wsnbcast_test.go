package wsnbcast_test

import (
	"strings"
	"testing"

	"wsnbcast"
)

// The facade quick-start path works end to end.
func TestQuickstartPath(t *testing.T) {
	topo := wsnbcast.CanonicalTopology(wsnbcast.Mesh2D4)
	if topo.NumNodes() != 512 {
		t.Fatalf("canonical nodes = %d", topo.NumNodes())
	}
	res, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
		wsnbcast.At(16, 8), wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullyReached() {
		t.Fatalf("reached %d/%d", res.Reached, res.Total)
	}
	if res.Tx != 208 {
		t.Errorf("Tx = %d, want 208 (the paper's best case)", res.Tx)
	}
}

func TestFacadeKindsAndETR(t *testing.T) {
	ks := wsnbcast.Kinds()
	if len(ks) != 4 {
		t.Fatalf("Kinds = %v", ks)
	}
	num, den := wsnbcast.OptimalETR(wsnbcast.Mesh2D8)
	if num != 5 || den != 8 {
		t.Errorf("OptimalETR(2D-8) = %d/%d", num, den)
	}
}

func TestFacadeIdeal(t *testing.T) {
	ideal := wsnbcast.IdealCase(wsnbcast.CanonicalTopology(wsnbcast.Mesh2D3),
		wsnbcast.DefaultRadio(), wsnbcast.CanonicalPacket())
	if ideal.Tx != 255 || ideal.Rx != 765 {
		t.Errorf("ideal = %+v, want Tx 255 Rx 765", ideal)
	}
}

func TestFacadeSweepAndLifetime(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 8, 8, 1)
	s, err := wsnbcast.Sweep(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4), wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 64 {
		t.Errorf("Runs = %d", s.Runs)
	}
	rep, err := wsnbcast.Lifetime(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
		wsnbcast.At(4, 4), wsnbcast.Config{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsOnBudget <= 0 {
		t.Errorf("rounds = %d", rep.RoundsOnBudget)
	}
}

func TestFacadeFloodingBaselines(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 10, 10, 1)
	for _, p := range []wsnbcast.Protocol{wsnbcast.Flooding(), wsnbcast.JitteredFlooding(5)} {
		r, err := wsnbcast.Broadcast(topo, p, wsnbcast.At(5, 5), wsnbcast.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FullyReached() {
			t.Errorf("%s incomplete", p.Name())
		}
	}
}

func TestFacadeTrace(t *testing.T) {
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 5, 5, 1)
	var events []wsnbcast.Event
	_, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
		wsnbcast.At(3, 3), wsnbcast.Config{Trace: wsnbcast.CollectTrace(&events)})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("no trace events")
	}
}

func TestFacadeFigureAndMaps(t *testing.T) {
	out, err := wsnbcast.Figure(6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5/8") {
		t.Errorf("figure 6 content:\n%s", out)
	}
	topo := wsnbcast.NewTopology(wsnbcast.Mesh2D4, 8, 8, 1)
	r, err := wsnbcast.Broadcast(topo, wsnbcast.PaperProtocol(wsnbcast.Mesh2D4),
		wsnbcast.At(4, 4), wsnbcast.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m := wsnbcast.BroadcastMap(topo, r, 1); !strings.Contains(m, "S") {
		t.Error("broadcast map missing source")
	}
	if m := wsnbcast.SequenceMap(topo, r, 1); !strings.Contains(m, " 0") {
		t.Error("sequence map missing slot 0")
	}
}

func TestFacadeAt3(t *testing.T) {
	c := wsnbcast.At3(2, 3, 4)
	if c.X != 2 || c.Y != 3 || c.Z != 4 {
		t.Errorf("At3 = %v", c)
	}
	if wsnbcast.At(2, 3).Z != 1 {
		t.Error("At should set Z=1")
	}
}
