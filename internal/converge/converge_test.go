package converge

import (
	"math"
	"testing"

	"wsnbcast/internal/grid"
)

func TestConvergeLine(t *testing.T) {
	topo := grid.NewMesh2D4(6, 1)
	r, err := Run(topo, grid.C2(1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A line aggregates leaf-to-sink: node 6 fires at 1, node 5 at 2,
	// ..., node 2 at 5; no collisions (only one sender per slot in
	// range of each parent... the chain fires sequentially).
	if r.Depth != 5 {
		t.Errorf("Depth = %d, want 5", r.Depth)
	}
	if r.Slots != 5 {
		t.Errorf("Slots = %d, want 5", r.Slots)
	}
	if r.Tx != 5 {
		t.Errorf("Tx = %d, want 5 (one aggregate per non-sink node)", r.Tx)
	}
	if r.Collisions != 0 || r.Retries != 0 {
		t.Errorf("collisions/retries = %d/%d", r.Collisions, r.Retries)
	}
}

func TestConvergeCompletesAllTopologies(t *testing.T) {
	t.Parallel()
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		for _, sink := range []grid.Coord{grid.C3(1, 1, 1), grid.C3((m+1)/2, (n+1)/2, (l+1)/2)} {
			r, err := Run(topo, sink, Config{})
			if err != nil {
				t.Fatalf("%v sink %v: %v", k, sink, err)
			}
			// Every non-sink node transmits at least once.
			if r.Tx < topo.NumNodes()-1 {
				t.Errorf("%v: Tx = %d < %d", k, r.Tx, topo.NumNodes()-1)
			}
			if r.Slots < r.Depth {
				t.Errorf("%v: Slots %d below tree depth %d", k, r.Slots, r.Depth)
			}
			if r.EnergyJ <= 0 {
				t.Errorf("%v: energy %g", k, r.EnergyJ)
			}
		}
	}
}

func TestConvergeEnergyAdditive(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	r, err := Run(topo, grid.C2(5, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range r.PerNodeEnergyJ {
		sum += e
	}
	if math.Abs(sum-r.EnergyJ) > 1e-12 {
		t.Errorf("per-node sum %g != total %g", sum, r.EnergyJ)
	}
}

func TestConvergeSinkValidation(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	if _, err := Run(topo, grid.C2(9, 9), Config{}); err == nil {
		t.Error("bad sink accepted")
	}
}

func TestConvergeDisconnected(t *testing.T) {
	topo := grid.NewMesh2D3(1, 4) // disconnected brick wall
	if _, err := Run(topo, grid.C2(1, 1), Config{}); err == nil {
		t.Error("disconnected mesh accepted")
	}
}

// Aggregation keeps transmissions linear in nodes even under
// collisions: retries stay a small fraction.
func TestConvergeRetriesBounded(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	r, err := Run(topo, grid.C2(16, 8), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retries > r.Total {
		t.Errorf("retries %d exceed node count %d", r.Retries, r.Total)
	}
	t.Logf("2D-4 convergecast: Tx=%d retries=%d slots=%d (depth %d) E=%.3e J",
		r.Tx, r.Retries, r.Slots, r.Depth, r.EnergyJ)
}

// Determinism.
func TestConvergeDeterministic(t *testing.T) {
	topo := grid.NewMesh2D8(12, 10)
	a, err := Run(topo, grid.C2(3, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(topo, grid.C2(3, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tx != b.Tx || a.Slots != b.Slots || a.Retries != b.Retries {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBackoffRange(t *testing.T) {
	for node := 0; node < 100; node++ {
		for att := 1; att < 10; att++ {
			if b := backoff(node, att); b < 1 || b > 4 {
				t.Fatalf("backoff(%d,%d) = %d", node, att, b)
			}
		}
	}
	// Symmetric colliders must separate within a few attempts.
	same := 0
	for att := 1; att <= 4; att++ {
		if backoff(10, att) == backoff(40, att) {
			same++
		}
	}
	if same == 4 {
		t.Error("nodes 10 and 40 never separate")
	}
}

func TestSingleNodeConverge(t *testing.T) {
	topo := grid.NewMesh2D4(1, 1)
	r, err := Run(topo, grid.C2(1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tx != 0 || r.Slots != 0 {
		t.Errorf("singleton: %+v", r)
	}
}
