// Package converge implements aggregating convergecast — the inverse
// of the paper's broadcast and the workload its related work (LEACH,
// TEEN) collects: every node holds a reading, readings flow down a
// shortest-path tree toward a sink, and each relay aggregates its
// subtree into one packet before forwarding. The same slotted radio
// applies: simultaneous transmissions in range of a receiver collide,
// and colliding senders retry with a deterministic backoff.
//
// Together with the broadcast protocols this completes the
// communication pattern of a monitoring deployment: commands out via
// broadcast, readings back via convergecast.
package converge

import (
	"fmt"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Config parameterizes a convergecast round.
type Config struct {
	// Model and Packet default to the paper's radio parameters.
	Model  radio.Model
	Packet radio.Packet
	// MaxSlots bounds the simulation (0 = automatic).
	MaxSlots int
}

// Result is the outcome of one convergecast round.
type Result struct {
	Kind  grid.Kind
	Sink  grid.Coord
	Total int

	// Tx counts transmissions including retries; Rx receptions.
	Tx, Rx int
	// EnergyJ is the total radio energy of the round.
	EnergyJ float64
	// Slots is the slot in which the sink received its last child's
	// aggregate.
	Slots int
	// Collisions counts collision events; Retries the retransmissions
	// they caused.
	Collisions, Retries int
	// Depth is the tree height (a lower bound on Slots).
	Depth int
	// PerNodeEnergyJ is each node's radio energy.
	PerNodeEnergyJ []float64
}

// Run performs one aggregating convergecast to the sink.
//
// Tree: every node's parent is its neighbor closest to the sink in hop
// distance (ties by dense index), giving a BFS shortest-path tree.
//
// Schedule: a leaf fires in slot 1; an interior node fires one slot
// after the last of its children succeeded. A transmission succeeds if
// no other node in radio range of the parent transmits in the same
// slot; otherwise every collided sender retries after a deterministic
// pseudo-random backoff of 1..4 slots derived from its index and
// attempt number (so symmetric colliders separate).
func Run(t grid.Topology, sink grid.Coord, cfg Config) (*Result, error) {
	if !t.Contains(sink) {
		return nil, fmt.Errorf("converge: sink %s outside mesh", sink)
	}
	if cfg.Model == (radio.Model{}) {
		cfg.Model = radio.Default()
	}
	if cfg.Packet == (radio.Packet{}) {
		cfg.Packet = radio.CanonicalPacket()
	}
	v := t.NumNodes()
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = 1024 + 64*v
	}

	adj := make([][]int32, v)
	var buf []grid.Coord
	for i := 0; i < v; i++ {
		buf = t.Neighbors(t.At(i), buf[:0])
		row := make([]int32, len(buf))
		for k, nb := range buf {
			row[k] = int32(t.Index(nb))
		}
		adj[i] = row
	}

	// BFS distances from the sink and parent selection.
	dist := make([]int, v)
	for i := range dist {
		dist[i] = -1
	}
	sinkIdx := t.Index(sink)
	dist[sinkIdx] = 0
	queue := []int32{int32(sinkIdx)}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, nb := range adj[cur] {
			if dist[nb] < 0 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	res := &Result{Kind: t.Kind(), Sink: sink, Total: v}
	parent := make([]int32, v)
	children := make([][]int32, v)
	for i := 0; i < v; i++ {
		parent[i] = -1
		if i == sinkIdx {
			continue
		}
		if dist[i] < 0 {
			return nil, fmt.Errorf("converge: node %s disconnected from the sink", t.At(i))
		}
		if dist[i] > res.Depth {
			res.Depth = dist[i]
		}
		best := int32(-1)
		for _, nb := range adj[i] {
			if dist[nb] != dist[i]-1 {
				continue
			}
			if best < 0 || nb < best {
				best = nb
			}
		}
		parent[i] = best
		children[best] = append(children[best], int32(i))
	}

	// pendingChildren[i] = children whose aggregates node i still
	// awaits; a node becomes ready when the count hits zero.
	pendingChildren := make([]int, v)
	fireAt := make(map[int][]int32) // slot -> senders
	scheduleFire := func(slot int, node int32) {
		fireAt[slot] = append(fireAt[slot], node)
	}
	outstanding := 0
	for i := 0; i < v; i++ {
		pendingChildren[i] = len(children[i])
		if i != sinkIdx {
			outstanding++
			if pendingChildren[i] == 0 {
				scheduleFire(1, int32(i)) // leaves fire in slot 1
			}
		}
	}

	heard := make([]int, v)   // receptions per node (for energy)
	txs := make([]int, v)     // transmissions per node (for energy)
	attempt := make([]int, v) // per-node transmission attempts
	hit := make([]int, v)
	for slot := 1; outstanding > 0; slot++ {
		if slot > cfg.MaxSlots {
			return nil, fmt.Errorf("converge: exceeded %d slots", cfg.MaxSlots)
		}
		senders := fireAt[slot]
		if len(senders) == 0 {
			continue
		}
		delete(fireAt, slot)
		sort.Slice(senders, func(a, b int) bool { return senders[a] < senders[b] })
		// Radio accounting: every neighbor of a sender hears it.
		var touched []int32
		for _, s := range senders {
			res.Tx++
			txs[s]++
			for _, nb := range adj[s] {
				heard[nb]++
				res.Rx++
				if hit[nb] == 0 {
					touched = append(touched, nb)
				}
				hit[nb]++
			}
		}
		// Delivery: sender s succeeds iff its parent heard exactly one
		// transmission this slot.
		for _, s := range senders {
			p := parent[s]
			if hit[p] == 1 {
				outstanding--
				pendingChildren[p]--
				if int(p) != sinkIdx && pendingChildren[p] == 0 {
					scheduleFire(slot+1, p)
				}
				if int(p) == sinkIdx && outstanding >= 0 {
					res.Slots = slot
				}
			} else {
				res.Retries++
				attempt[s]++
				scheduleFire(slot+backoff(int(s), attempt[s]), s)
			}
		}
		for _, nb := range touched {
			if hit[nb] >= 2 {
				res.Collisions++
			}
			hit[nb] = 0
		}
		if outstanding == 0 && res.Slots < slot {
			res.Slots = slot
		}
	}

	etx := cfg.Model.TxEnergyJ(cfg.Packet.Bits, cfg.Packet.NeighborDistM)
	erx := cfg.Model.RxEnergyJ(cfg.Packet.Bits)
	res.EnergyJ = float64(res.Tx)*etx + float64(res.Rx)*erx
	res.PerNodeEnergyJ = make([]float64, v)
	for i := 0; i < v; i++ {
		res.PerNodeEnergyJ[i] = float64(txs[i])*etx + float64(heard[i])*erx
	}
	return res, nil
}

// backoff derives a deterministic pseudo-random retry delay in 1..4
// from the node index and attempt number (splitmix64 mix), so two
// symmetric colliders separate after a retry or two.
func backoff(node, attempt int) int {
	z := uint64(node)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 1 + int(z%4)
}

// Delivered reports whether every node's aggregate reached the sink
// (Run errors out otherwise, so this is always true for a returned
// result; provided for symmetry with the broadcast API).
func (r *Result) Delivered() bool { return r != nil }
