package render

import (
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func fig5Run(t *testing.T) (grid.Topology, *sim.Result) {
	t.Helper()
	topo := grid.NewMesh2D4(16, 16)
	r, err := sim.Run(topo, core.NewMesh4Protocol(), grid.C2(6, 8), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return topo, r
}

// body returns only the mesh lines of a rendered map (dropping legend
// and header lines).
func body(out string) string {
	var keep []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "y=") || strings.HasPrefix(l, "o") {
			keep = append(keep, l)
		}
	}
	return strings.Join(keep, "\n")
}

func TestBroadcastMapFig5(t *testing.T) {
	topo, r := fig5Run(t)
	out := BroadcastMap(topo, r, 1)
	if !strings.Contains(body(out), "S") {
		t.Error("no source glyph")
	}
	// The six gray nodes of Fig. 5 transmit twice -> six 'R' glyphs
	// (the source is rendered as S even though it is on the row).
	if got := strings.Count(body(out), "R"); got != 6 {
		t.Errorf("retransmitter glyphs = %d, want 6\n%s", got, out)
	}
	if strings.Contains(body(out), "*") {
		t.Errorf("unreached glyph present:\n%s", out)
	}
	// 16 mesh rows plus 2 header lines.
	if lines := strings.Count(out, "\n"); lines != 18 {
		t.Errorf("line count = %d, want 18", lines)
	}
}

func TestSequenceAndDecodeMaps(t *testing.T) {
	topo, r := fig5Run(t)
	seq := SequenceMap(topo, r, 1)
	if !strings.Contains(seq, " 0") {
		t.Error("source slot 0 missing from sequence map")
	}
	if !strings.Contains(seq, "..") {
		t.Error("non-transmitting nodes missing")
	}
	dec := DecodeMap(topo, r, 1)
	if strings.Contains(body(dec), "**") {
		t.Error("unreached marker in a complete broadcast")
	}
}

func TestDecodeMapShowsUnreached(t *testing.T) {
	topo := grid.NewMesh2D4(3, 3)
	r, err := sim.Run(topo, core.NewFlooding(), grid.C2(1, 1), sim.Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	dec := DecodeMap(topo, r, 1)
	if !strings.Contains(body(dec), "**") {
		t.Errorf("expected unreached markers:\n%s", dec)
	}
	bm := BroadcastMap(topo, r, 1)
	if !strings.Contains(body(bm), "*") {
		t.Errorf("expected unreached glyphs:\n%s", bm)
	}
}

func TestTopologyRender(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.New(k, 5, 4, 3)
		out := Topology(topo)
		if !strings.Contains(out, k.String()) {
			t.Errorf("%v: missing kind header", k)
		}
		grid := out[strings.Index(out, "\n")+1:]
		if i := strings.Index(grid, "(plus"); i >= 0 {
			grid = grid[:i]
		}
		if strings.Count(grid, "o") != 20 {
			t.Errorf("%v: node glyph count = %d, want 20", k, strings.Count(grid, "o"))
		}
	}
	// The brick wall shows fewer vertical bars than the square mesh.
	wall := Topology(grid.NewMesh2D3(6, 4))
	square := Topology(grid.NewMesh2D4(6, 4))
	if strings.Count(wall, "|") >= strings.Count(square, "|") {
		t.Error("brick wall should have fewer vertical links than 2D-4")
	}
	// The Moore mesh shows diagonals.
	moore := Topology(grid.NewMesh2D8(6, 4))
	if !strings.Contains(moore, "\\") {
		t.Error("2D-8 render missing diagonals")
	}
	// 3D render mentions Z links.
	cube := Topology(grid.NewMesh3D6(3, 3, 3))
	if !strings.Contains(cube, "Z links") {
		t.Error("3D render missing Z note")
	}
}

func TestZRelayPattern(t *testing.T) {
	topo := grid.NewMesh3D6(16, 16, 8)
	src := grid.C3(6, 8, 4)
	out := ZRelayPattern(topo, src, core.IsZRelayColumn, core.IsBorderZColumn)
	if !strings.Contains(out, "S") {
		t.Error("missing source")
	}
	if strings.Count(out, "Z") == 0 {
		t.Error("missing lattice columns")
	}
	if strings.Count(out, "B") == 0 {
		t.Error("missing border columns")
	}
	// Paper's Fig. 9 example nodes: (4,7), (5,10), (7,6), (8,9) are
	// z-relays; find Z at those positions (row y printed top-down).
	lines := strings.Split(out, "\n")
	glyphAt := func(x, y int) byte {
		for _, l := range lines {
			var ly int
			if n, _ := fmtSscanf(l, &ly); n == 1 && ly == y {
				return l[len(l)-16+x-1]
			}
		}
		return '?'
	}
	_ = glyphAt
	if z := strings.Count(out, "Z") + 1; z < 16*16/5 { // +1 for the source
		t.Errorf("Z count %d too small for a 16x16 plane", z)
	}
}

// fmtSscanf is a tiny helper to parse the "y=NN" prefix.
func fmtSscanf(l string, y *int) (int, error) {
	if !strings.HasPrefix(l, "y=") {
		return 0, nil
	}
	rest := strings.TrimSpace(l[2:])
	i := 0
	v := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		v = v*10 + int(rest[i]-'0')
		i++
	}
	if i == 0 {
		return 0, nil
	}
	*y = v
	return 1, nil
}

func TestSummaryLine(t *testing.T) {
	_, r := fig5Run(t)
	out := Summary(r)
	for _, want := range []string{"Tx=", "Rx=", "power=", "delay=", "reachability=100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}

func TestBroadcastMap3DPlane(t *testing.T) {
	topo := grid.NewMesh3D6(6, 6, 4)
	r, err := sim.Run(topo, core.NewMesh3D6Protocol(), grid.C3(3, 3, 2), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for z := 1; z <= 4; z++ {
		out := BroadcastMap(topo, r, z)
		if strings.Contains(body(out), "*") {
			t.Errorf("plane %d has unreached glyphs:\n%s", z, out)
		}
	}
	// The source plane map contains the S glyph (beyond the one in the
	// legend line); other planes don't.
	if got := strings.Count(body(BroadcastMap(topo, r, 2)), "S"); got != 1 {
		t.Errorf("source plane S glyphs = %d, want 1", got)
	}
	if got := strings.Count(body(BroadcastMap(topo, r, 3)), "S"); got != 0 {
		t.Errorf("non-source plane S glyphs = %d, want 0", got)
	}
}

func TestEnergyHeatmap(t *testing.T) {
	topo, r := fig5Run(t)
	out := EnergyHeatmap(topo, r, 1)
	if !strings.Contains(out, "@") {
		t.Error("hottest glyph missing")
	}
	if lines := strings.Count(out, "\n"); lines != 17 {
		t.Errorf("line count = %d, want 17", lines)
	}
	// The hottest node must be unique-ish and correspond to the max.
	maxJ := r.MaxNodeEnergyJ()
	if maxJ <= 0 {
		t.Fatal("no energy recorded")
	}
	// Empty result renders blanks without panicking.
	empty := &sim.Result{PerNodeEnergyJ: make([]float64, topo.NumNodes())}
	if out := EnergyHeatmap(topo, empty, 1); !strings.Contains(out, "y= 1") {
		t.Error("empty heatmap malformed")
	}
}

func TestVolume(t *testing.T) {
	topo := grid.NewMesh3D6(5, 4, 3)
	r, err := sim.Run(topo, core.NewMesh3D6Protocol(), grid.C3(3, 2, 2), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := Volume(topo, r)
	if !strings.Contains(out, "all 3 planes") {
		t.Errorf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("line count = %d", len(lines))
	}
	// Each body line: "y= N  " + 3 planes of 5 glyphs + 2 separators of 2.
	wantLen := 6 + 3*5 + 2*2
	for _, l := range lines[1:] {
		if len(l) != wantLen {
			t.Errorf("line %q has length %d, want %d", l, len(l), wantLen)
		}
	}
	if strings.Count(body(out), "S") != 1 {
		t.Error("source glyph count wrong")
	}
}

func TestBroadcastSVG(t *testing.T) {
	topo, r := fig5Run(t)
	out := BroadcastSVG(topo, r, 1)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 256 nodes -> 256 circles.
	if got := strings.Count(out, "<circle"); got != 256 {
		t.Errorf("circle count = %d, want 256", got)
	}
	// The six gray retransmitters.
	if got := strings.Count(out, `fill="#7f7f7f"`); got != 6 {
		t.Errorf("gray nodes = %d, want 6", got)
	}
	// Exactly one source.
	if got := strings.Count(out, `fill="#d62728"`); got != 1 {
		t.Errorf("source nodes = %d", got)
	}
	// Edge lines exist (2D-4 16x16: 2*16*15 = 480 edges).
	if got := strings.Count(out, "<line"); got != 480 {
		t.Errorf("edges = %d, want 480", got)
	}
	// Transmission slot labels for every transmitter.
	if got := strings.Count(out, "<text"); got != r.RelayCount()+1 {
		t.Errorf("labels = %d, want %d", got, r.RelayCount()+1)
	}
}
