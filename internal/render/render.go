// Package render draws topologies and broadcast schedules as ASCII
// art, reproducing the paper's figures (relay maps with gray
// retransmitters and transmission sequence numbers) in a terminal.
package render

import (
	"fmt"
	"strings"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Glyphs used by the broadcast map:
//
//	S  the source
//	#  a relay node (transmitted once)
//	R  a designated retransmitter / repaired node (transmitted more
//	   than once) — the paper's gray nodes
//	.  a covered non-relay node
//	*  a node that never decoded (only possible with repairs disabled)
const (
	glyphSource      = 'S'
	glyphRelay       = '#'
	glyphRetransmit  = 'R'
	glyphCovered     = '.'
	glyphUnreached   = '*'
	glyphZColumn     = 'Z'
	glyphBorderZ     = 'B'
	glyphPlainColumn = '.'
)

// BroadcastMap renders one XY plane of a finished broadcast as a relay
// map in the style of Figs. 5, 7 and 8. Rows are printed top (y = n)
// to bottom (y = 1).
func BroadcastMap(t grid.Topology, r *sim.Result, z int) string {
	m, n, _ := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s broadcast from %s (plane z=%d)\n", r.Protocol, r.Kind, r.Source, z)
	sb.WriteString("legend: S source, # relay, R retransmitter, . covered, * unreached\n")
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d  ", y)
		for x := 1; x <= m; x++ {
			c := grid.C3(x, y, z)
			i := t.Index(c)
			g := byte(glyphCovered)
			switch {
			case c == r.Source:
				g = glyphSource
			case r.DecodeSlot[i] < 0:
				g = glyphUnreached
			case len(r.TxSlots[i]) > 1:
				g = glyphRetransmit
			case len(r.TxSlots[i]) == 1:
				g = glyphRelay
			}
			sb.WriteByte(g)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SequenceMap renders the first-transmission slot of every node in a
// plane — the paper's "numbers beside the edge are the transmission
// sequences". Non-transmitting nodes print "..".
func SequenceMap(t grid.Topology, r *sim.Result, z int) string {
	m, n, _ := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "transmission slots (plane z=%d), '..' = no transmission\n", z)
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d ", y)
		for x := 1; x <= m; x++ {
			i := t.Index(grid.C3(x, y, z))
			if len(r.TxSlots[i]) == 0 {
				sb.WriteString(" ..")
			} else {
				fmt.Fprintf(&sb, " %2d", r.TxSlots[i][0])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DecodeMap renders the first-decode slot of every node in a plane.
func DecodeMap(t grid.Topology, r *sim.Result, z int) string {
	m, n, _ := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "decode slots (plane z=%d), '**' = never decoded\n", z)
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d ", y)
		for x := 1; x <= m; x++ {
			i := t.Index(grid.C3(x, y, z))
			if r.DecodeSlot[i] < 0 {
				sb.WriteString(" **")
			} else {
				fmt.Fprintf(&sb, " %2d", r.DecodeSlot[i])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Topology draws the connectivity pattern of a small mesh (Figs. 1-4):
// nodes as "o" with edge marks. For 3D meshes one XY plane is drawn
// and the Z links are noted textually.
func Topology(t grid.Topology) string {
	m, n, l := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s mesh, %s\n", t.Kind(), sizeString(m, n, l))
	// Two text rows per mesh row: nodes+horizontal edges, then vertical
	// and diagonal edges.
	for y := n; y >= 1; y-- {
		for x := 1; x <= m; x++ {
			sb.WriteByte('o')
			if x < m && t.Connected(grid.C2(x, y), grid.C2(x+1, y)) {
				sb.WriteString("--")
			} else if x < m {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
		if y == 1 {
			break
		}
		for x := 1; x <= m; x++ {
			up := t.Connected(grid.C2(x, y), grid.C2(x, y-1))
			diagR := x < m && t.Connected(grid.C2(x, y), grid.C2(x+1, y-1))
			diagL := x > 1 && t.Connected(grid.C2(x, y), grid.C2(x-1, y-1))
			switch {
			case up && (diagR || diagL):
				sb.WriteByte('|')
			case up:
				sb.WriteByte('|')
			case diagL && x > 1:
				sb.WriteByte('/')
			default:
				sb.WriteByte(' ')
			}
			if x < m {
				if diagR && diagL {
					sb.WriteString("><")
				} else if diagR {
					sb.WriteString("\\ ")
				} else {
					sb.WriteString("  ")
				}
			}
		}
		sb.WriteByte('\n')
	}
	if l > 1 {
		fmt.Fprintf(&sb, "(plus Z links between each of the %d stacked planes)\n", l)
	}
	return sb.String()
}

// ZRelayPattern draws the z-relay lattice of the 3D protocol in one XY
// plane (Fig. 9): Z marks lattice columns, B the additional border
// columns, S the source column.
func ZRelayPattern(t grid.Topology, src grid.Coord,
	isZ func(src, c grid.Coord) bool, isB func(t grid.Topology, src, c grid.Coord) bool) string {
	m, n, _ := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "z-relay columns for source %s (Z lattice, B border, S source)\n", src)
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d  ", y)
		for x := 1; x <= m; x++ {
			c := grid.C2(x, y)
			g := byte(glyphPlainColumn)
			switch {
			case c.X == src.X && c.Y == src.Y:
				g = glyphSource
			case isZ(src, c):
				g = glyphZColumn
			case isB(t, src, c):
				g = glyphBorderZ
			}
			sb.WriteByte(g)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary prints the paper-style one-line metrics of a run.
func Summary(r *sim.Result) string {
	return fmt.Sprintf("Tx=%d Rx=%d power=%.2e J delay=%d slots reachability=%.0f%% collisions=%d repairs=%d",
		r.Tx, r.Rx, r.EnergyJ, r.Delay, 100*r.Reachability(), r.Collisions, r.Repairs)
}

func sizeString(m, n, l int) string {
	if l == 1 {
		return fmt.Sprintf("%dx%d", m, n)
	}
	return fmt.Sprintf("%dx%dx%d", m, n, l)
}
