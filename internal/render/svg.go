package render

import (
	"fmt"
	"strings"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// SVG rendering of broadcast relay maps: publication-quality versions
// of the paper's Figs. 5, 7 and 8, generated with the standard library
// only. Nodes are circles (source highlighted, relays filled,
// retransmitters ringed), edges of the mesh drawn faintly underneath.

const (
	svgCell   = 28 // pixels per mesh cell
	svgMargin = 24
	svgRadius = 7
)

// BroadcastSVG renders one XY plane of a finished broadcast as SVG.
func BroadcastSVG(t grid.Topology, r *sim.Result, z int) string {
	m, n, _ := t.Size()
	w := 2*svgMargin + (m-1)*svgCell
	h := 2*svgMargin + (n-1)*svgCell + 20
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w, h, w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)

	px := func(c grid.Coord) (int, int) {
		// y grows upward in the paper's figures.
		return svgMargin + (c.X-1)*svgCell, svgMargin + (n-c.Y)*svgCell
	}

	// Mesh edges underneath.
	sb.WriteString(`<g stroke="#cccccc" stroke-width="1">` + "\n")
	var buf []grid.Coord
	for i := 0; i < m*n; i++ {
		c := grid.C3(i%m+1, i/m+1, z)
		x1, y1 := px(c)
		buf = t.Neighbors(c, buf[:0])
		for _, nb := range buf {
			if nb.Z != z {
				continue
			}
			// Draw each edge once.
			if t.Index(nb) < t.Index(c) {
				continue
			}
			x2, y2 := px(nb)
			fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n", x1, y1, x2, y2)
		}
	}
	sb.WriteString("</g>\n")

	// Nodes.
	for i := 0; i < m*n; i++ {
		c := grid.C3(i%m+1, i/m+1, z)
		idx := t.Index(c)
		x, y := px(c)
		fill, stroke := "#ffffff", "#555555"
		switch {
		case c == r.Source:
			fill, stroke = "#d62728", "#7a0c0c"
		case r.DecodeSlot[idx] < 0:
			fill, stroke = "#eeeeee", "#bbbbbb"
		case len(r.TxSlots[idx]) > 1:
			fill, stroke = "#7f7f7f", "#333333" // the paper's gray nodes
		case len(r.TxSlots[idx]) == 1:
			fill, stroke = "#1f1f1f", "#000000"
		}
		fmt.Fprintf(&sb, `<circle cx="%d" cy="%d" r="%d" fill="%s" stroke="%s" stroke-width="1.5"/>`+"\n",
			x, y, svgRadius, fill, stroke)
		if len(r.TxSlots[idx]) > 0 {
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="8" text-anchor="middle" fill="#1f77b4">%d</text>`+"\n",
				x, y-svgRadius-2, r.TxSlots[idx][0])
		}
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" fill="#333333">%s %s from %s — black relays, gray retransmitters, numbers are transmission slots</text>`+"\n",
		svgMargin, h-6, r.Protocol, r.Kind, r.Source)
	sb.WriteString("</svg>\n")
	return sb.String()
}
