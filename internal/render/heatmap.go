package render

import (
	"fmt"
	"strings"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// heatGlyphs maps normalized load to glyphs, coldest to hottest.
var heatGlyphs = []byte(" .:-=+*#%@")

// EnergyHeatmap renders the per-node energy of one XY plane as an
// ASCII heatmap: ' ' for the lightest load through '@' for the node
// that bounds the network lifetime. The scale is global over the whole
// result (so 3D planes are comparable).
func EnergyHeatmap(t grid.Topology, r *sim.Result, z int) string {
	m, n, _ := t.Size()
	max := r.MaxNodeEnergyJ()
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-node energy heatmap (plane z=%d), ' '=0 .. '@'=%.2e J\n", z, max)
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d  ", y)
		for x := 1; x <= m; x++ {
			i := t.Index(grid.C3(x, y, z))
			g := byte(' ')
			if max > 0 {
				idx := int(r.PerNodeEnergyJ[i] / max * float64(len(heatGlyphs)-1))
				if idx >= len(heatGlyphs) {
					idx = len(heatGlyphs) - 1
				}
				g = heatGlyphs[idx]
			}
			sb.WriteByte(g)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Volume renders every XY plane of a 3D broadcast side by side, planes
// ordered z=1..l left to right.
func Volume(t grid.Topology, r *sim.Result) string {
	m, n, l := t.Size()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s broadcast from %s — all %d planes (left to right)\n",
		r.Protocol, r.Kind, r.Source, l)
	for y := n; y >= 1; y-- {
		fmt.Fprintf(&sb, "y=%2d  ", y)
		for z := 1; z <= l; z++ {
			for x := 1; x <= m; x++ {
				c := grid.C3(x, y, z)
				i := t.Index(c)
				g := byte(glyphCovered)
				switch {
				case c == r.Source:
					g = glyphSource
				case r.DecodeSlot[i] < 0:
					g = glyphUnreached
				case len(r.TxSlots[i]) > 1:
					g = glyphRetransmit
				case len(r.TxSlots[i]) == 1:
					g = glyphRelay
				}
				sb.WriteByte(g)
			}
			if z < l {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
