package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("{\n  \"x\": 1\n}\n")
	if _, ok := s.Get("run:abc"); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put("run:abc", body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("run:abc")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}
	// A different key — even one differing only in endpoint — is a miss.
	if _, ok := s.Get("sweep:abc"); ok {
		t.Error("endpoint-qualified keys collided")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 1 put", st)
	}
}

func TestReopenSeesDurableEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("k")
	if !ok || string(got) != "body" {
		t.Fatalf("entry did not survive reopen: %q, %v", got, ok)
	}
}

func TestClosedStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("body")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put("k2", []byte("x")); err != ErrClosed {
		t.Errorf("Put on closed store = %v, want ErrClosed", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("Get on closed store reported a hit")
	}
	if err := s.PutRecord("j1", []byte("{}")); err != ErrClosed {
		t.Errorf("PutRecord on closed store = %v, want ErrClosed", err)
	}
}

// TestCorruptEntryIsAMiss: a truncated or bit-flipped object file must
// never be served; it reads as a miss, is counted corrupt, and is
// removed so a later Put heals it.
func TestCorruptEntryIsAMiss(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"bit flip in body", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func([]byte) []byte { return nil }},
		{"wrong magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[0] = 'X'
			return out
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", []byte("the body")); err != nil {
				t.Fatal(err)
			}
			path := s.objectPath("k")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if s.Stats().Corrupt != 1 {
				t.Errorf("corrupt count = %d, want 1", s.Stats().Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry not removed")
			}
			// The entry heals on the next Put.
			if err := s.Put("k", []byte("the body")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); !ok || string(got) != "the body" {
				t.Errorf("healed Get = %q, %v", got, ok)
			}
		})
	}
}

// TestCrashMidWriteLeavesNoPartialEntry simulates a writer dying
// before its rename: the temp file it abandoned must not be visible as
// an entry, and a fresh writer completes normally alongside the
// stray file.
func TestCrashMidWriteLeavesNoPartialEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// What a crashed writer leaves behind: a temp file holding a
	// prefix of the frame, never renamed into place.
	frame := encodeObject([]byte("almost written"))
	if err := os.WriteFile(filepath.Join(dir, "tmp-crashed"), frame[:len(frame)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("victim"); ok {
		t.Fatal("partial write visible as an entry")
	}
	if err := s.Put("victim", []byte("complete")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("victim"); !ok || string(got) != "complete" {
		t.Fatalf("Get after recovery = %q, %v", got, ok)
	}
	if s.Stats().Corrupt != 0 {
		t.Errorf("stray temp file counted as corruption: %+v", s.Stats())
	}
}

// TestTwoInstancesShareOneDirectory drives two Store instances — the
// multi-process deployment shape — over one directory concurrently:
// readers poll keys while writers store them, every observed read is
// either a miss or the complete body, and both instances end up
// serving each other's writes. Run under -race.
func TestTwoInstancesShareOneDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64
	body := func(i int) []byte {
		return []byte(strings.Repeat(fmt.Sprintf("body-%03d|", i), 50))
	}
	var wg sync.WaitGroup
	// Writer on instance a, interleaved writer on instance b (even
	// keys land twice — idempotent by construction), reader on both.
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i++ {
			if err := a.Put(fmt.Sprintf("k%d", i), body(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i += 2 {
			if err := b.Put(fmt.Sprintf("k%d", i), body(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, inst := range []*Store{a, b} {
		inst := inst
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				// Poll until the writer lands this key; every successful
				// read must be the complete body.
				for {
					got, ok := inst.Get(fmt.Sprintf("k%d", i))
					if !ok {
						continue
					}
					if !bytes.Equal(got, body(i)) {
						t.Errorf("key k%d: read %d bytes, want %d", i, len(got), len(body(i)))
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	if a.Stats().Corrupt != 0 || b.Stats().Corrupt != 0 {
		t.Errorf("corruption under concurrent shared-dir use: a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetRecord("missing"); err != nil || ok {
		t.Fatalf("GetRecord(missing) = ok=%v err=%v", ok, err)
	}
	if err := s.PutRecord("job-1", []byte(`{"state":"queued"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRecord("job-2", []byte(`{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	body, ok, err := s.GetRecord("job-1")
	if err != nil || !ok || string(body) != `{"state":"queued"}` {
		t.Fatalf("GetRecord = %q, %v, %v", body, ok, err)
	}
	names, err := s.ListRecords()
	if err != nil || len(names) != 2 {
		t.Fatalf("ListRecords = %v, %v", names, err)
	}
	// Records survive reopen (the restart path reads them back).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.GetRecord("job-2"); !ok {
		t.Error("record lost across reopen")
	}
	// Path traversal in a record name is rejected.
	if err := s.PutRecord("../evil", []byte("x")); err == nil {
		t.Error("PutRecord accepted a path-traversal name")
	}
	if err := s.PutRecord("", []byte("x")); err == nil {
		t.Error("PutRecord accepted an empty name")
	}
}

func TestKeyIsCanonicalAndEndpointQualified(t *testing.T) {
	type doc struct {
		A int `json:"a"`
	}
	k1, err := Key("run", doc{A: 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("run", doc{A: 1})
	k3, _ := Key("sweep", doc{A: 1})
	k4, _ := Key("run", doc{A: 2})
	if k1 != k2 {
		t.Error("identical documents produced different keys")
	}
	if k1 == k3 {
		t.Error("endpoint not part of the key")
	}
	if k1 == k4 {
		t.Error("different documents share a key")
	}
	if !strings.HasPrefix(k1, "run:") || len(k1) != len("run:")+64 {
		t.Errorf("key %q not in endpoint:sha256hex form", k1)
	}
}

func TestEncodeBodyMatchesServiceRendering(t *testing.T) {
	v := struct {
		Name string `json:"name"`
	}{Name: "x"}
	b, err := EncodeBody(v)
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"name\": \"x\"\n}\n"
	if string(b) != want {
		t.Errorf("EncodeBody = %q, want %q", b, want)
	}
}
