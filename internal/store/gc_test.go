package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// putSized stores a body of n payload bytes under key and backdates
// its mtime so eviction order is deterministic without sleeping.
func putSized(t *testing.T, s *Store, key string, n int, age time.Duration) {
	t.Helper()
	if err := s.Put(key, bytes.Repeat([]byte{'x'}, n)); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
	old := time.Now().Add(-age)
	if err := os.Chtimes(s.objectPath(key), old, old); err != nil {
		t.Fatalf("chtimes %s: %v", key, err)
	}
}

func TestDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("run:missing"); err != nil {
		t.Errorf("deleting a missing key: %v", err)
	}
	if err := s.Put("run:a", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("run:a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("run:a"); ok {
		t.Error("deleted key still readable")
	}
	s.Close()
	if err := s.Delete("run:a"); err != ErrClosed {
		t.Errorf("Delete on closed store = %v, want ErrClosed", err)
	}
}

// TestEvictionOldestFirst: pushing the object area past the cap evicts
// the oldest-mtime entries until it fits, leaving the newest readable.
func TestEvictionOldestFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three aged 1 KiB objects, oldest first.
	for i, key := range []string{"run:old", "run:mid", "run:new"} {
		putSized(t, s, key, 1024, time.Duration(3-i)*time.Hour)
	}
	// Cap to roughly two framed objects; the seeding rescan must
	// already evict the oldest one.
	if err := s.SetMaxBytes(2 * 1100); err != nil {
		t.Fatalf("set max bytes: %v", err)
	}
	if _, ok := s.Get("run:old"); ok {
		t.Error("oldest object survived a sweep that had to evict one")
	}
	for _, key := range []string{"run:mid", "run:new"} {
		if _, ok := s.Get(key); !ok {
			t.Errorf("%s evicted, want oldest-first order", key)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.EvictedBytes == 0 {
		t.Error("evicted bytes not counted")
	}
	if st.Bytes > st.MaxBytes {
		t.Errorf("tracked bytes %d above cap %d after sweep", st.Bytes, st.MaxBytes)
	}

	// A Put that overflows the cap sweeps inline: the next-oldest goes,
	// the new entry stays.
	putSized(t, s, "run:newer", 1024, 0)
	if _, ok := s.Get("run:mid"); ok {
		t.Error("mid-aged object survived the overflow sweep")
	}
	if _, ok := s.Get("run:newer"); !ok {
		t.Error("freshly written object was evicted instead of the oldest")
	}
	if got := s.Stats().Evictions; got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

// TestEvictionExemptsRecords: the size cap governs the object area
// only — job records survive any sweep, because losing one orphans a
// job rather than costing a recomputation.
func TestEvictionExemptsRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := []byte(`{"id": "deadbeef", "state": "queued"}`)
	if err := s.PutRecord("deadbeef", rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		putSized(t, s, fmt.Sprintf("run:%d", i), 2048, time.Duration(4-i)*time.Minute)
	}
	if err := s.SetMaxBytes(1024); err != nil {
		t.Fatalf("set max bytes: %v", err)
	}
	if got := s.Stats().Evictions; got == 0 {
		t.Fatal("cap below every object evicted nothing")
	}
	got, ok, err := s.GetRecord("deadbeef")
	if err != nil || !ok {
		t.Fatalf("record lost to the sweep: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, rec) {
		t.Error("record bytes changed")
	}
}

// TestSetMaxBytesSeedsFromDisk: a fresh store handle over a populated
// directory learns the existing footprint from the rescan, so the cap
// binds across process restarts.
func TestSetMaxBytesSeedsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		putSized(t, s1, fmt.Sprintf("run:%d", i), 1024, time.Duration(3-i)*time.Minute)
	}
	s1.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.SetMaxBytes(1 << 20); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Bytes < 3*1024 {
		t.Errorf("rescan tracked %d bytes, want at least the 3 KiB of payload on disk", st.Bytes)
	}
	if st.Evictions != 0 {
		t.Errorf("sweep under the cap evicted %d objects", st.Evictions)
	}
	// An unbounded store never sweeps.
	if err := s2.SetMaxBytes(0); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("run:huge", bytes.Repeat([]byte{'y'}, 4096)); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Evictions; got != 0 {
		t.Errorf("uncapped store evicted %d objects", got)
	}
}
