// Package store is the durable, disk-backed result store behind the
// serving layer's in-memory LRU and the async job subsystem: a
// content-addressed map from canonical request keys (the same
// endpoint-qualified SHA-256 hashes the service cache uses) to fully
// rendered response bodies, plus a small atomic-rename record area for
// job state.
//
// # Durability and sharing
//
// Every entry is written to a temporary file in the target directory,
// fsynced, and renamed into place, so a reader — in this process or
// any other sharing the directory — observes either the complete entry
// or nothing; a crash mid-write leaves only a stray temp file, never a
// partial entry under the real name. Entries carry a magic header and
// the SHA-256 of their body; a read that finds a truncated or
// bit-flipped file counts it as corrupt, removes it, and reports a
// miss, so corruption degrades to recomputation rather than to serving
// wrong bytes. Multiple Store instances (multiple processes) may share
// one directory: writes are idempotent — the key is a hash of the
// request, so two writers racing on one key write identical bodies —
// and the rename makes each visible atomically.
//
// # Layout
//
//	<dir>/objects/<aa>/<sha256-of-key>   checksummed bodies
//	<dir>/jobs/<name>.json               job records (atomic rename)
//	<dir>/tmp-*                          in-flight writes
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by mutating operations on a closed store.
var ErrClosed = errors.New("store: closed")

// magic prefixes every object file; a file without it is corrupt.
var magic = []byte("WSNSTOR1")

// Store is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use, within and across
// processes.
type Store struct {
	dir    string
	closed atomic.Bool

	// maxBytes, when positive, caps the object area's on-disk size;
	// bytes is this process's running estimate of it (rescanned from
	// disk inside every sweep, so cross-process writers only delay a
	// sweep, never break the cap). sweepMu serializes sweeps.
	maxBytes atomic.Int64
	bytes    atomic.Int64
	sweepMu  sync.Mutex

	hits         atomic.Uint64
	misses       atomic.Uint64
	puts         atomic.Uint64
	corrupt      atomic.Uint64
	evictions    atomic.Uint64
	evictedBytes atomic.Uint64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Corrupt uint64 `json:"corrupt"`
	// Bytes is the tracked size of the object area; MaxBytes is the
	// configured cap (0: unbounded).
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// Evictions counts objects removed by the size-cap sweep;
	// EvictedBytes their cumulative size.
	Evictions    uint64 `json:"evictions"`
	EvictedBytes uint64 `json:"evicted_bytes"`
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetMaxBytes bounds the object area's on-disk footprint: whenever the
// tracked size exceeds max, a sweep evicts objects oldest-mtime-first
// until the area fits again. Objects are pure caches of deterministic
// computations, so eviction only ever costs recomputation. Job records
// (the jobs/ area) are exempt — losing one would orphan a job, not
// just a result. max <= 0 removes the cap. The call rescans the object
// area to seed the size estimate and sweeps immediately if the cap is
// already exceeded.
func (s *Store) SetMaxBytes(max int64) error {
	s.maxBytes.Store(max)
	size, err := s.scanObjects(nil)
	if err != nil {
		return err
	}
	s.bytes.Store(size)
	return s.sweep()
}

// object is one entry of the object area, as seen by a scan.
type object struct {
	path  string
	size  int64
	mtime time.Time
}

// scanObjects walks the object area summing sizes; when collect is
// non-nil every entry is also appended to it.
func (s *Store) scanObjects(collect *[]object) (int64, error) {
	var total int64
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			// A file evicted or corrupted mid-walk is simply absent.
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		total += info.Size()
		if collect != nil {
			*collect = append(*collect, object{path: path, size: info.Size(), mtime: info.ModTime()})
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return total, nil
}

// sweep enforces the size cap: rescan the object area (healing the
// estimate against writers in other processes), then remove objects
// oldest mtime first — the entries least recently written, and under
// the write-through usage pattern the least likely to be asked for
// again — until the area fits the cap.
func (s *Store) sweep() error {
	max := s.maxBytes.Load()
	if max <= 0 || s.bytes.Load() <= max {
		return nil
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	var objs []object
	total, err := s.scanObjects(&objs)
	if err != nil {
		return err
	}
	if total > max {
		sort.Slice(objs, func(i, j int) bool {
			if !objs[i].mtime.Equal(objs[j].mtime) {
				return objs[i].mtime.Before(objs[j].mtime)
			}
			return objs[i].path < objs[j].path
		})
		for _, o := range objs {
			if total <= max {
				break
			}
			if err := os.Remove(o.path); err != nil {
				if errors.Is(err, os.ErrNotExist) {
					total -= o.size // another process got there first
					continue
				}
				s.bytes.Store(total)
				return fmt.Errorf("store: evict %s: %w", o.path, err)
			}
			total -= o.size
			s.evictions.Add(1)
			s.evictedBytes.Add(uint64(o.size))
		}
	}
	s.bytes.Store(total)
	return nil
}

// Close marks the store closed: subsequent Puts fail with ErrClosed
// and Gets report misses. Writes are already durable at Put time
// (fsync before rename), so Close has nothing to flush; it exists so a
// draining server can fence late writers deterministically.
func (s *Store) Close() error {
	s.closed.Store(true)
	return nil
}

// objectPath shards objects by the first byte of the key hash so one
// directory never accumulates every entry.
func (s *Store) objectPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, "objects", name[:2], name)
}

// Get returns the body stored under key. A missing, truncated or
// checksum-mismatched entry is a miss; the latter two are additionally
// counted as corrupt and removed so the next Put can heal the entry.
func (s *Store) Get(key string) ([]byte, bool) {
	if s.closed.Load() {
		s.misses.Add(1)
		return nil, false
	}
	path := s.objectPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, ok := decodeObject(raw)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		if os.Remove(path) == nil {
			s.bytes.Add(-int64(len(raw)))
		}
		return nil, false
	}
	s.hits.Add(1)
	return body, true
}

// Put stores body under key: write to a temp file, fsync, rename into
// place. Concurrent Puts of the same key are safe — both write the
// same content-addressed bytes and the last rename wins bit-identically.
func (s *Store) Put(key string, body []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data := encodeObject(body)
	if err := writeAtomic(s.dir, path, data); err != nil {
		return err
	}
	s.puts.Add(1)
	s.bytes.Add(int64(len(data)))
	// The write is durable; a failing sweep degrades the cap, not the
	// Put.
	s.sweep()
	return nil
}

// Delete removes the object stored under key, if any. A missing entry
// is not an error — Delete is the cleanup of transient objects (point
// checkpoints) whose absence is the goal.
func (s *Store) Delete(key string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	path := s.objectPath(key)
	var size int64
	if info, err := os.Stat(path); err == nil {
		size = info.Size()
	}
	err := os.Remove(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	s.bytes.Add(-size)
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		Corrupt:      s.corrupt.Load(),
		Bytes:        s.bytes.Load(),
		MaxBytes:     s.maxBytes.Load(),
		Evictions:    s.evictions.Load(),
		EvictedBytes: s.evictedBytes.Load(),
	}
}

// encodeObject frames a body for disk: magic, body SHA-256, body.
func encodeObject(body []byte) []byte {
	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(magic)+len(sum)+len(body))
	out = append(out, magic...)
	out = append(out, sum[:]...)
	return append(out, body...)
}

// decodeObject reverses encodeObject, verifying frame and checksum.
func decodeObject(raw []byte) ([]byte, bool) {
	if len(raw) < len(magic)+sha256.Size || !bytes.HasPrefix(raw, magic) {
		return nil, false
	}
	want := raw[len(magic) : len(magic)+sha256.Size]
	body := raw[len(magic)+sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(want, sum[:]) {
		return nil, false
	}
	return body, true
}

// writeAtomic writes data to path via a fsynced temp file in tmpDir
// plus rename, then fsyncs the parent directory so the rename itself
// is durable.
func writeAtomic(tmpDir, path string, data []byte) error {
	f, err := os.CreateTemp(tmpDir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", path, errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// recordPath maps a record name to its file; names are restricted to
// hex/dash/underscore so a name can never escape the jobs directory.
func (s *Store) recordPath(name string) (string, error) {
	for _, r := range name {
		if (r < '0' || r > '9') && (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && r != '-' && r != '_' {
			return "", fmt.Errorf("store: invalid record name %q", name)
		}
	}
	if name == "" {
		return "", errors.New("store: empty record name")
	}
	return filepath.Join(s.dir, "jobs", name+".json"), nil
}

// PutRecord durably stores a small named record (job state) via the
// same write-then-rename protocol as objects.
func (s *Store) PutRecord(name string, body []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	path, err := s.recordPath(name)
	if err != nil {
		return err
	}
	return writeAtomic(s.dir, path, body)
}

// GetRecord returns the named record; ok is false when it does not
// exist.
func (s *Store) GetRecord(name string) ([]byte, bool, error) {
	path, err := s.recordPath(name)
	if err != nil {
		return nil, false, err
	}
	body, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return body, true, nil
}

// ListRecords returns the names of all stored records.
func (s *Store) ListRecords() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	return names, nil
}

// Key is the canonical cache/store identity of a request: the endpoint
// name (different endpoints answer different shapes for one document)
// plus the SHA-256 of the document's canonical JSON encoding. The
// serving layer, the job subsystem and the CLIs all derive their keys
// here, which is what lets one store directory share results between
// them.
func Key(endpoint string, doc any) (string, error) {
	b, err := json.Marshal(doc)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return endpoint + ":" + hex.EncodeToString(sum[:]), nil
}

// EncodeBody renders a response body exactly as the HTTP service does
// — indented JSON plus a trailing newline — so bodies produced by the
// job subsystem and the CLIs are byte-identical to the synchronous
// serving path.
func EncodeBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
