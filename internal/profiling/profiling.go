// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the command-line tools. It is a thin veneer over runtime/pprof
// with the error handling and GC discipline the pprof docs prescribe:
// the CPU profile brackets the whole run, and the heap profile is
// written after a forced GC so it reflects live steady-state memory
// rather than garbage awaiting collection.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). The stop function is safe to call exactly
// once, normally via defer; it reports any profile-writing failure so
// callers can surface it on stderr without aborting the run's real
// output.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("write mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("close mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
