package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartNoPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}

func TestStopBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "missing", "mem.pprof"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected error for uncreatable mem profile path")
	}
}
