// Package verify statically checks a broadcast protocol against a
// topology before any simulation: is the relay set connected, does it
// dominate the mesh (every node within one hop of a relay), are the
// retransmission offsets well-formed? These are the structural
// preconditions behind the paper's 100%-reachability claim; the
// checker pinpoints counterexample nodes when they fail.
package verify

import (
	"fmt"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Issue is one structural problem found by Check.
type Issue struct {
	// Kind classifies the issue.
	Kind IssueKind
	// Node is the counterexample node.
	Node grid.Coord
	// Detail is a human-readable explanation.
	Detail string
}

// IssueKind classifies verification failures.
type IssueKind int

const (
	// NotDominated: the node has no relay within one hop (and is not a
	// relay itself), so no transmission can ever reach it.
	NotDominated IssueKind = iota
	// RelayUnreachable: the relay subgraph (plus the source) does not
	// connect this relay to the source, so it can never obtain the
	// message through relays alone. This is a warning-level issue:
	// non-relay neighbors may still deliver to it in simulation.
	RelayUnreachable
	// BadOffset: the protocol returned a retransmission offset < 1.
	BadOffset
	// BadDelay: the protocol returned a forwarding delay < 1 (the
	// engine clamps it, but the protocol contract asks for >= 1).
	BadDelay
)

// String names the issue kind.
func (k IssueKind) String() string {
	switch k {
	case NotDominated:
		return "not-dominated"
	case RelayUnreachable:
		return "relay-unreachable"
	case BadOffset:
		return "bad-offset"
	case BadDelay:
		return "bad-delay"
	default:
		return fmt.Sprintf("IssueKind(%d)", int(k))
	}
}

func (i Issue) String() string {
	return fmt.Sprintf("%s at %s: %s", i.Kind, i.Node, i.Detail)
}

// Report is the outcome of a verification pass.
type Report struct {
	Topology grid.Kind
	Protocol string
	Source   grid.Coord
	// Relays is the number of relay nodes (the source included).
	Relays int
	// Issues lists every structural problem found, sorted by node
	// index; empty means the protocol passes.
	Issues []Issue
}

// OK reports whether no fatal issue was found (RelayUnreachable is a
// warning: simulation may still succeed through non-relay deliveries).
func (r Report) OK() bool {
	for _, i := range r.Issues {
		if i.Kind != RelayUnreachable {
			return false
		}
	}
	return true
}

// Fatal returns only the fatal issues.
func (r Report) Fatal() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Kind != RelayUnreachable {
			out = append(out, i)
		}
	}
	return out
}

// Check verifies the protocol's relay structure for one source.
func Check(t grid.Topology, p sim.Protocol, src grid.Coord) (Report, error) {
	if !t.Contains(src) {
		return Report{}, fmt.Errorf("verify: source %s outside mesh", src)
	}
	rep := Report{Topology: t.Kind(), Protocol: p.Name(), Source: src}
	v := t.NumNodes()
	relay := make([]bool, v)
	srcIdx := t.Index(src)
	relay[srcIdx] = true
	rep.Relays = 1
	for i := 0; i < v; i++ {
		c := t.At(i)
		if i != srcIdx && p.IsRelay(t, src, c) {
			relay[i] = true
			rep.Relays++
		}
		if d := p.TxDelay(t, src, c); d < 1 {
			rep.Issues = append(rep.Issues, Issue{
				Kind: BadDelay, Node: c,
				Detail: fmt.Sprintf("TxDelay = %d, want >= 1", d),
			})
		}
		for _, off := range p.Retransmits(t, src, c) {
			if off < 1 {
				rep.Issues = append(rep.Issues, Issue{
					Kind: BadOffset, Node: c,
					Detail: fmt.Sprintf("retransmit offset %d, want >= 1", off),
				})
			}
		}
	}

	// Domination: every node must be a relay or adjacent to one.
	var buf []grid.Coord
	for i := 0; i < v; i++ {
		if relay[i] {
			continue
		}
		c := t.At(i)
		buf = t.Neighbors(c, buf[:0])
		dominated := false
		for _, nb := range buf {
			if relay[t.Index(nb)] {
				dominated = true
				break
			}
		}
		if !dominated {
			rep.Issues = append(rep.Issues, Issue{
				Kind: NotDominated, Node: c,
				Detail: "no relay within one hop; unreachable by any schedule",
			})
		}
	}

	// Relay-subgraph connectivity from the source.
	seen := make([]bool, v)
	seen[srcIdx] = true
	queue := []int{srcIdx}
	for head := 0; head < len(queue); head++ {
		buf = t.Neighbors(t.At(queue[head]), buf[:0])
		for _, nb := range buf {
			j := t.Index(nb)
			if relay[j] && !seen[j] {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	for i := 0; i < v; i++ {
		if relay[i] && !seen[i] {
			rep.Issues = append(rep.Issues, Issue{
				Kind: RelayUnreachable, Node: t.At(i),
				Detail: "relay not connected to the source through relays",
			})
		}
	}
	sort.Slice(rep.Issues, func(a, b int) bool {
		ia, ib := t.Index(rep.Issues[a].Node), t.Index(rep.Issues[b].Node)
		if ia != ib {
			return ia < ib
		}
		return rep.Issues[a].Kind < rep.Issues[b].Kind
	})
	return rep, nil
}

// CheckAllSources runs Check from every source and returns the first
// failing report (by source index), or a passing report for the last
// source when everything is fine.
func CheckAllSources(t grid.Topology, p sim.Protocol) (Report, error) {
	var last Report
	for i := 0; i < t.NumNodes(); i++ {
		rep, err := Check(t, p, t.At(i))
		if err != nil {
			return rep, err
		}
		if !rep.OK() {
			return rep, nil
		}
		last = rep
	}
	return last, nil
}
