package verify

import (
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// All four paper protocols must pass structural verification from
// every source on the canonical meshes.
func TestPaperProtocolsVerifyCanonical(t *testing.T) {
	t.Parallel()
	for _, k := range grid.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := CheckAllSources(grid.Canonical(k), core.ForTopology(k))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("%v source %v: %d fatal issues, first: %v",
					k, rep.Source, len(rep.Fatal()), rep.Fatal()[0])
			}
		})
	}
}

// badProto drops an entire relay column, leaving nodes undominated.
type badProto struct{ core.Mesh4Protocol }

func (b badProto) Name() string { return "bad-2d4" }

func (b badProto) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	if c.Y != src.Y && c.X == src.X {
		return false // cut the source's own column
	}
	return b.Mesh4Protocol.IsRelay(t, src, c)
}

func TestCheckDetectsUndominated(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	rep, err := Check(topo, badProto{}, grid.C2(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("broken protocol passed verification")
	}
	found := false
	for _, i := range rep.Fatal() {
		if i.Kind == NotDominated {
			found = true
			// The victims are the removed column and its immediate
			// neighbors, which the cut column used to dominate.
			if i.Node.X < 7 || i.Node.X > 9 {
				t.Errorf("unexpected victim %v", i.Node)
			}
		}
	}
	if !found {
		t.Error("no NotDominated issue reported")
	}
}

// offsetProto returns an invalid retransmission offset.
type offsetProto struct{ core.Mesh4Protocol }

func (offsetProto) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int {
	return []int{0}
}

func TestCheckDetectsBadOffset(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	rep, err := Check(topo, offsetProto{}, grid.C2(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, i := range rep.Issues {
		if i.Kind == BadOffset {
			bad++
		}
	}
	if bad != topo.NumNodes() {
		t.Errorf("BadOffset issues = %d, want %d", bad, topo.NumNodes())
	}
}

// delayProto returns an invalid forwarding delay.
type delayProto struct{ core.Mesh4Protocol }

func (delayProto) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 0 }

func TestCheckDetectsBadDelay(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	rep, err := Check(topo, delayProto{}, grid.C2(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("zero delay passed")
	}
}

// islandProto adds an isolated relay cluster not connected to the
// source through relays: a warning, not fatal.
type islandProto struct{}

func (islandProto) Name() string { return "island" }

func (islandProto) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	// The source row relays (connected), and one far row relays
	// (an island for tall meshes).
	_, n, _ := t.Size()
	return c.Y == src.Y || c.Y == n
}

func (islandProto) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 1 }

func (islandProto) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int { return nil }

func TestRelayUnreachableIsWarning(t *testing.T) {
	topo := grid.NewMesh2D4(6, 8)
	rep, err := Check(topo, islandProto{}, grid.C2(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	warn := 0
	for _, i := range rep.Issues {
		if i.Kind == RelayUnreachable {
			warn++
		}
	}
	if warn == 0 {
		t.Fatal("island relays not flagged")
	}
	// Fatal() must exclude the warnings; the mesh also has undominated
	// middle rows here, which ARE fatal.
	for _, i := range rep.Fatal() {
		if i.Kind == RelayUnreachable {
			t.Error("warning included in Fatal()")
		}
	}
}

// Verification must agree with simulation: a protocol that passes
// Check reaches (with repairs allowed only for collision patches, not
// coverage holes) — and one that fails NotDominated cannot reach
// everyone without repairs.
func TestCheckAgreesWithSimulation(t *testing.T) {
	topo := grid.NewMesh2D4(12, 12)
	src := grid.C2(6, 6)
	rep, err := Check(topo, badProto{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected failure")
	}
	r, err := sim.Run(topo, badProto{}, src, sim.Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.FullyReached() {
		t.Error("simulation reached everyone despite undominated nodes")
	}
	// The undominated nodes are exactly among the never-decoded ones.
	for _, i := range rep.Fatal() {
		if i.Kind == NotDominated && r.DecodeSlot[topo.Index(i.Node)] >= 0 {
			t.Errorf("undominated node %v decoded", i.Node)
		}
	}
}

func TestCheckSourceOutside(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	if _, err := Check(topo, core.NewMesh4Protocol(), grid.C2(9, 9)); err == nil {
		t.Error("out-of-mesh source accepted")
	}
}

func TestIssueStrings(t *testing.T) {
	i := Issue{Kind: NotDominated, Node: grid.C2(3, 4), Detail: "x"}
	if !strings.Contains(i.String(), "not-dominated") || !strings.Contains(i.String(), "(3,4)") {
		t.Errorf("Issue.String() = %q", i.String())
	}
	for k, w := range map[IssueKind]string{
		RelayUnreachable: "relay-unreachable", BadOffset: "bad-offset", BadDelay: "bad-delay",
	} {
		if k.String() != w {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if IssueKind(42).String() != "IssueKind(42)" {
		t.Error("unknown kind")
	}
}

func TestRelayCount(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	rep, err := Check(topo, core.NewMesh4Protocol(), grid.C2(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5 structure: row 8 (16 nodes) + columns {1,3,6,9,12,15}
	// (6 columns x 15 non-row nodes) = 16 + 90 = 106.
	if rep.Relays != 106 {
		t.Errorf("Relays = %d, want 106", rep.Relays)
	}
}

// Exhaustive structural verification: every protocol, every source, on
// every mesh size up to 12x12 (and small 3D bricks). Guarded by
// -short; the full run takes a few seconds.
func TestExhaustiveSmallSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	t.Parallel()
	for m := 2; m <= 12; m += 2 {
		for n := 2; n <= 12; n += 2 {
			for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8} {
				if k == grid.Mesh2D3 && m == 2 {
					// The width-2 brick wall is a degenerate ladder: the
					// static relay set leaves one corner hole that only
					// the scheduler's planner covers (reachability is
					// still 100%, see TestPaperProtocolsOddSizes).
					continue
				}
				rep, err := CheckAllSources(grid.New(k, m, n, 1), core.ForTopology(k))
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Errorf("%v %dx%d source %v: %v", k, m, n, rep.Source, rep.Fatal()[0])
				}
			}
		}
	}
	for _, size := range [][3]int{{4, 4, 4}, {6, 4, 3}, {3, 3, 6}} {
		rep, err := CheckAllSources(grid.NewMesh3D6(size[0], size[1], size[2]), core.NewMesh3D6Protocol())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("3D-6 %v source %v: %v", size, rep.Source, rep.Fatal()[0])
		}
	}
}
