// Package sweep is the parallel sweep engine behind the repo's hot
// path: the paper's evaluation (Tables 3-5) broadcasts once from every
// node of each 512-node topology, and wsnsweep/wsnbench regenerate
// those sweeps wholesale. The engine shards independent (topology,
// protocol, source, config) simulation jobs across a bounded pool of
// worker goroutines and gathers the outcomes into a slice indexed by
// job — never by completion order — so the output of a parallel sweep
// is byte-identical to running the same jobs in a serial loop.
//
// # Determinism
//
// sim.Run is a pure function of its arguments: the topologies are
// immutable value types, the protocols are stateless node-local rules,
// and the engine's only shared structure (the adjacency cache) is
// written once per (kind, size) under a sync.Map. Each worker writes
// only to its own job's slot of a pre-allocated outcome slice, and all
// aggregation happens after the pool drains, in job-index order.
// Completion order therefore cannot influence any observable output;
// the differential tests in this package prove the equivalence on
// every canonical topology/protocol pair.
//
// # Errors and cancellation
//
// A job that fails captures its error in its own Outcome and does not
// poison the other shards. Cancelling the context stops workers from
// claiming further jobs promptly; jobs that never started carry the
// context's error, jobs that already finished keep their results, so a
// partial sweep remains coherent: every Outcome holds exactly one of
// Result or Err.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Job is one simulation to run: protocol p broadcast from Source on
// Topology under Config. Jobs must be independent — the engine gives
// no ordering guarantee between their executions, only between their
// gathered outcomes.
//
// Config.Trace, if set, is invoked from worker goroutines; it must be
// safe for concurrent use unless the engine runs with one worker.
//
// Config.Workers controls sim.Run's own intra-run shard pool and
// flows through unchanged. The two pools compose: this engine
// parallelizes across jobs, the sim engine within one large-grid run.
// For sweeps of many small meshes leave Config.Workers alone (auto
// stays serial below the large-grid threshold); for a sweep of a few
// huge meshes, intra-run sharding is where the parallelism is. Either
// way results are byte-identical — both levels are deterministic.
type Job struct {
	Topology grid.Topology
	Protocol sim.Protocol
	Source   grid.Coord
	Config   sim.Config
}

// String identifies the job in error messages.
func (j Job) String() string {
	name := "<nil>"
	if j.Protocol != nil {
		name = j.Protocol.Name()
	}
	return fmt.Sprintf("%s/%s src=%s", j.Topology.Kind(), name, j.Source)
}

// Outcome is the result slot of one job: exactly one of Result and Err
// is set once the engine returns.
type Outcome struct {
	// Job is the job this outcome belongs to.
	Job Job
	// Result is the simulation result; nil if the job failed or was
	// cancelled before it started.
	Result *sim.Result
	// Err is the job's own failure, or the context error for jobs the
	// cancellation prevented from running.
	Err error
}

// Gauge receives pending-job deltas from the engine, for queue-depth
// introspection by a serving layer: Run adds the batch size when it
// starts and subtracts one as each job finishes (or is abandoned by
// cancellation), so a gauge shared across engines reads the total
// number of simulation jobs currently queued or running. Add must be
// safe for concurrent use; *sync/atomic.Int64 satisfies the interface.
type Gauge interface {
	Add(delta int64)
}

// Engine is a bounded worker pool. The zero value runs with
// GOMAXPROCS workers; construct with New to bound it differently.
// Engines are stateless and safe for concurrent use.
type Engine struct {
	workers int
	gauge   Gauge
}

// New returns an engine with the given pool size; workers <= 0 means
// GOMAXPROCS, matching the serial path's single-core behavior when
// GOMAXPROCS=1.
func New(workers int) Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return Engine{workers: workers}
}

// WithGauge returns a copy of the engine that reports pending-job
// counts to g. Every Run nets to zero on g: whatever it adds up front
// it subtracts by the time it returns, cancelled or not.
func (e Engine) WithGauge(g Gauge) Engine {
	e.gauge = g
	return e
}

// Workers returns the effective pool size.
func (e Engine) Workers() int {
	if e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// Run executes the jobs on the pool and returns one Outcome per job,
// index-aligned with jobs. Per-job failures are captured in the
// corresponding Outcome and never abort the sweep. The returned error
// is non-nil only when ctx was cancelled, in which case outcomes of
// jobs that never started carry the context error and the rest hold
// whatever completed before the cancellation.
func (e Engine) Run(ctx context.Context, jobs []Job) ([]Outcome, error) {
	outs := make([]Outcome, len(jobs))
	for i := range outs {
		outs[i].Job = jobs[i]
	}
	if len(jobs) == 0 {
		return outs, ctx.Err()
	}
	workers := e.Workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if e.gauge != nil {
		e.gauge.Add(int64(len(jobs)))
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				outs[i].Result, outs[i].Err = sim.Run(j.Topology, j.Protocol, j.Source, j.Config)
				if e.gauge != nil {
					e.gauge.Add(-1)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range outs {
			if outs[i].Result == nil && outs[i].Err == nil {
				outs[i].Err = err
				if e.gauge != nil {
					e.gauge.Add(-1)
				}
			}
		}
		return outs, err
	}
	return outs, nil
}

// RunFuncs executes arbitrary independent tasks on the pool under the
// engine's claim/cancellation contract: workers claim tasks atomically
// in index order, each task's returned error lands in its own slot of
// the returned slice, and no task's failure stops the others. The
// second return is non-nil only when ctx was cancelled; tasks the
// cancellation prevented from starting then carry the context error in
// their slots, tasks that completed keep whatever they returned. The
// Monte Carlo engine fans its lockstep lane batches out through this
// — the batches write into caller-owned, per-task slots, so like Run,
// completion order cannot influence any observable output.
func (e Engine) RunFuncs(ctx context.Context, fns []func() error) ([]error, error) {
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs, ctx.Err()
	}
	workers := e.Workers()
	if workers > len(fns) {
		workers = len(fns)
	}
	if e.gauge != nil {
		e.gauge.Add(int64(len(fns)))
	}

	ran := make([]bool, len(fns)) // each slot written only by its claimer
	var next atomic.Int64
	var wg sync.WaitGroup
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				errs[i] = fns[i]()
				ran[i] = true
				if e.gauge != nil {
					e.gauge.Add(-1)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !ran[i] {
				errs[i] = err
				if e.gauge != nil {
					e.gauge.Add(-1)
				}
			}
		}
		return errs, err
	}
	return errs, nil
}

// SourceJobs returns one job per node of t in dense index order — the
// full source-position sweep of the paper's evaluation.
func SourceJobs(t grid.Topology, p sim.Protocol, cfg sim.Config) []Job {
	jobs := make([]Job, t.NumNodes())
	for i := range jobs {
		jobs[i] = Job{Topology: t, Protocol: p, Source: t.At(i), Config: cfg}
	}
	return jobs
}

// SweepSources runs p from each of the given sources (nil means every
// node of t) and returns the results in source order. The first failed
// job, in job order, aborts with its error.
func (e Engine) SweepSources(ctx context.Context, t grid.Topology, p sim.Protocol, cfg sim.Config, sources []grid.Coord) ([]*sim.Result, error) {
	var jobs []Job
	if sources == nil {
		jobs = SourceJobs(t, p, cfg)
	} else {
		jobs = make([]Job, len(sources))
		for i, src := range sources {
			jobs[i] = Job{Topology: t, Protocol: p, Source: src, Config: cfg}
		}
	}
	outs, err := e.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return Results(outs)
}

// Results unwraps outcomes into their results, index-aligned. The
// first job error, in job order, is returned wrapped with the job's
// identity.
func Results(outs []Outcome) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("sweep: job %d (%s): %w", i, o.Job, o.Err)
		}
		results[i] = o.Result
	}
	return results, nil
}
