package sweep_test

// RunFuncs is the transport under the Monte Carlo engine's lockstep
// lane batches: tasks write into caller-owned slots, so these tests pin
// the slot discipline — per-task error isolation, exhaustion before
// return, and context errors landing only in the slots of tasks that
// never ran.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"wsnbcast/internal/sweep"
)

func TestRunFuncsEmpty(t *testing.T) {
	errs, err := sweep.New(4).RunFuncs(context.Background(), nil)
	if err != nil || len(errs) != 0 {
		t.Errorf("RunFuncs(nil) = %v, %v", errs, err)
	}
}

// Every task runs exactly once, each error stays in its own slot, and
// task failures never abort the batch — the invariants the Monte Carlo
// layer relies on when a lane batch falls back to scalar replication.
func TestRunFuncsErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 3, 16} {
		var calls [5]atomic.Int32
		fns := make([]func() error, len(calls))
		for i := range fns {
			i := i
			fns[i] = func() error {
				calls[i].Add(1)
				if i == 1 || i == 3 {
					return boom
				}
				return nil
			}
		}
		errs, err := sweep.New(workers).RunFuncs(context.Background(), fns)
		if err != nil {
			t.Fatalf("workers=%d: RunFuncs error %v (task errors must not abort the batch)", workers, err)
		}
		if len(errs) != len(fns) {
			t.Fatalf("workers=%d: %d error slots for %d tasks", workers, len(errs), len(fns))
		}
		for i := range fns {
			if n := calls[i].Load(); n != 1 {
				t.Errorf("workers=%d task %d: ran %d times", workers, i, n)
			}
			want := i == 1 || i == 3
			if got := errs[i] != nil; got != want {
				t.Errorf("workers=%d task %d: err = %v, want error: %v", workers, i, errs[i], want)
			}
			if want && !errors.Is(errs[i], boom) {
				t.Errorf("workers=%d task %d: err = %v, want boom in its own slot", workers, i, errs[i])
			}
		}
	}
}

// A pre-cancelled context runs nothing: RunFuncs returns the context
// error and writes it into every slot, so callers can tell skipped
// tasks from completed ones.
func TestRunFuncsPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	fns := make([]func() error, 4)
	for i := range fns {
		fns[i] = func() error { ran.Add(1); return nil }
	}
	errs, err := sweep.New(2).RunFuncs(ctx, fns)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFuncs = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d tasks ran under a pre-cancelled context", n)
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Errorf("slot %d = %v, want the context error", i, e)
		}
	}
}

// Cancelling mid-batch stops claiming new tasks; completed tasks keep
// their own results while unclaimed slots report the context error.
func TestRunFuncsCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fns := make([]func() error, 64)
	fired := errors.New("ran after the trigger")
	for i := range fns {
		i := i
		fns[i] = func() error {
			if i == 0 {
				cancel()
				return nil
			}
			return fired
		}
	}
	errs, err := sweep.New(1).RunFuncs(ctx, fns)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunFuncs = %v, want context.Canceled", err)
	}
	if errs[0] != nil {
		t.Errorf("completed task lost its result: %v", errs[0])
	}
	skipped := 0
	for _, e := range errs[1:] {
		if errors.Is(e, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("no slot carries the context error after mid-batch cancellation")
	}
}

// More workers than tasks must not double-run or skip anything.
func TestRunFuncsMoreWorkersThanTasks(t *testing.T) {
	var calls [2]atomic.Int32
	fns := []func() error{
		func() error { calls[0].Add(1); return nil },
		func() error { calls[1].Add(1); return nil },
	}
	errs, err := sweep.New(32).RunFuncs(context.Background(), fns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fns {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("task %d ran %d times", i, n)
		}
		if errs[i] != nil {
			t.Errorf("task %d: unexpected error %v", i, errs[i])
		}
	}
}
