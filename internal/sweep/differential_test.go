package sweep_test

// The differential layer: the whole point of the sweep engine is that
// parallel execution is observationally equivalent to the serial loop
// it replaced. These tests run every (topology, protocol) pair both
// ways — a plain serial for-loop over sim.Run versus the worker pool —
// and require the per-source Result sets to be exactly equal, field by
// field (Tx, Rx, energy, delay, collisions, duplicates, repairs, and
// the full per-node decode/tx-slot/energy vectors), as well as
// byte-identical when rendered the way wsnsweep renders CSV rows.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

// protocols returns the issue's protocol matrix for a topology kind.
func protocols(k grid.Kind) []sim.Protocol {
	return []sim.Protocol{core.ForTopology(k), core.NewFlooding(), core.NewJitteredFlooding(8)}
}

// smallTopo is a reduced mesh of each kind, big enough to exercise
// borders, collisions and scheduler repairs.
func smallTopo(k grid.Kind) grid.Topology {
	if k == grid.Mesh3D6 {
		return grid.NewMesh3D6(4, 4, 3)
	}
	return grid.New(k, 10, 6, 1)
}

// serialSweep is the reference path: one sim.Run per source, in dense
// index order, on the calling goroutine.
func serialSweep(t *testing.T, topo grid.Topology, p sim.Protocol) []*sim.Result {
	t.Helper()
	results := make([]*sim.Result, topo.NumNodes())
	for i := range results {
		r, err := sim.Run(topo, p, topo.At(i), sim.Config{})
		if err != nil {
			t.Fatalf("serial %s/%s src=%s: %v", topo.Kind(), p.Name(), topo.At(i), err)
		}
		results[i] = r
	}
	return results
}

// renderRow formats a result the way wsnsweep renders a CSV row, so
// "byte-identical output" is checked literally.
func renderRow(r *sim.Result) string {
	return fmt.Sprintf("%s,%s,%d,%d,%d,%d,%d,%e,%d,%d,%d,%d,%d,%d",
		r.Kind, r.Protocol, r.Source.X, r.Source.Y, r.Source.Z,
		r.Tx, r.Rx, r.EnergyJ, r.Delay, r.Collisions, r.Duplicates, r.Repairs,
		r.Reached, r.Total)
}

func diffSweep(t *testing.T, topo grid.Topology, p sim.Protocol, workers int) {
	t.Helper()
	serial := serialSweep(t, topo, p)
	parallel, err := sweep.New(workers).SweepSources(context.Background(), topo, p, sim.Config{}, nil)
	if err != nil {
		t.Fatalf("parallel %s/%s: %v", topo.Kind(), p.Name(), err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel returned %d results, serial %d", len(parallel), len(serial))
	}
	var serialCSV, parallelCSV strings.Builder
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s/%s src=%s: parallel result differs from serial\nserial:   %v\nparallel: %v",
				topo.Kind(), p.Name(), topo.At(i), serial[i], parallel[i])
		}
		serialCSV.WriteString(renderRow(serial[i]) + "\n")
		parallelCSV.WriteString(renderRow(parallel[i]) + "\n")
	}
	if serialCSV.String() != parallelCSV.String() {
		t.Errorf("%s/%s: rendered sweep output not byte-identical", topo.Kind(), p.Name())
	}
}

// TestDifferentialSmallMeshes covers the full matrix — four topologies
// times {paper, flooding, flooding-jitter} — on reduced meshes, at
// several worker counts.
func TestDifferentialSmallMeshes(t *testing.T) {
	for _, k := range grid.Kinds() {
		for _, p := range protocols(k) {
			k, p := k, p
			t.Run(fmt.Sprintf("%s/%s", k, p.Name()), func(t *testing.T) {
				for _, workers := range []int{2, 8} {
					diffSweep(t, smallTopo(k), p, workers)
				}
			})
		}
	}
}

// TestDifferentialCanonical proves the equivalence on the paper's
// 512-node evaluation meshes for the full protocol matrix — the exact
// sweeps behind Tables 3-5 and wsnsweep's default output.
func TestDifferentialCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical 512-node differential matrix skipped in -short mode")
	}
	for _, k := range grid.Kinds() {
		for _, p := range protocols(k) {
			k, p := k, p
			t.Run(fmt.Sprintf("%s/%s", k, p.Name()), func(t *testing.T) {
				diffSweep(t, grid.Canonical(k), p, 4)
			})
		}
	}
}
