package sweep_test

// Concurrency-safety audit regression tests. The engine's correctness
// rests on three claims, each audited here so `go test -race` (the
// Makefile's race target) turns any future violation into a failure:
//
//  1. grid.Topology values are immutable after construction (the
//     interface documents it) — shared freely across workers;
//  2. core protocol values are stateless node-local rules — shared
//     freely across workers;
//  3. sim.Run's shared structures — the adjacency cache and the
//     compiled relay-plan cache, both sync.Maps populated once per
//     key — must be safe under concurrent first access on a cold key.
//
// The meshes here use deliberately odd sizes so every run of the test
// binary starts with cold cache keys and the build races (claim 3) are
// actually exercised, not skipped via a warm cache.

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

// TestConcurrentRunsShareTopologyAndProtocol hammers one shared
// Topology value and one shared Protocol value from many goroutines
// (claims 1 and 2).
func TestConcurrentRunsShareTopologyAndProtocol(t *testing.T) {
	cases := []struct {
		topo  grid.Topology
		proto sim.Protocol
	}{
		{grid.NewMesh2D3(11, 7), core.NewMesh3Protocol()},
		{grid.NewMesh2D4(11, 7), core.NewMesh4Protocol()},
		{grid.NewMesh2D8(11, 7), core.NewMesh8Protocol()},
		{grid.NewMesh3D6(5, 3, 3), core.NewMesh3D6Protocol()},
		{grid.NewMesh2D4(11, 7), core.NewFlooding()},
		{grid.NewMesh2D4(11, 7), core.NewJitteredFlooding(8)},
		{grid.NewMesh2D4(11, 7), core.GossipProtocol{P: 0.8, Jitter: 4}},
		{grid.NewMesh3D6(5, 3, 3), core.NewPerPlane3D()},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*8)
	for _, tc := range cases {
		tc := tc
		for g := 0; g < 8; g++ {
			src := tc.topo.At(g % tc.topo.NumNodes())
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sim.Run(tc.topo, tc.proto, src, sim.Config{}); err != nil {
					errs <- err
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentSweepsShareTopology runs two full engine sweeps over
// the same topology value at the same time — the cross-table pattern
// experiments.AllTables relies on.
func TestConcurrentSweepsShareTopology(t *testing.T) {
	topo := grid.NewMesh2D8(9, 5)
	proto := core.NewMesh8Protocol()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sweep.New(4).SweepSources(context.Background(), topo, proto, sim.Config{}, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestColdAdjacencyCacheRace starts many runs on a topology size no
// other test uses, so the adjacency cache's first build happens under
// contention (claim 3).
func TestColdAdjacencyCacheRace(t *testing.T) {
	topo := grid.NewMesh3D6(3, 5, 7)
	proto := core.NewMesh3D6Protocol()
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 12; g++ {
		src := topo.At((g * 13) % topo.NumNodes())
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := sim.Run(topo, proto, src, sim.Config{}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
}

// TestColdRelayPlanCacheRace hammers the compiled relay-plan cache
// alongside the adjacency cache: a parallel sweep on a cold topology
// size hits every source's plan key for the first time from whichever
// worker gets there first, with overlapping single runs adding more
// first-access pressure on the same keys plus a second protocol. Every
// worker count must also produce the same results (the plan is pure
// compilation, never mutated after publication).
func TestColdRelayPlanCacheRace(t *testing.T) {
	topo := grid.NewMesh2D4(13, 5) // size unused elsewhere: cold keys
	proto := core.NewMesh4Protocol()
	var wg sync.WaitGroup
	var sweeps [2][]*sim.Result
	for g := range sweeps {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := sweep.New(4).SweepSources(context.Background(), topo, proto, sim.Config{}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			sweeps[g] = s
		}()
	}
	for g := 0; g < 8; g++ {
		src := topo.At((g * 7) % topo.NumNodes())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sim.Run(topo, proto, src, sim.Config{}); err != nil {
				t.Error(err)
			}
			if _, err := sim.Run(topo, core.NewJitteredFlooding(8), src, sim.Config{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if !reflect.DeepEqual(sweeps[0], sweeps[1]) {
		t.Error("concurrent sweeps over shared plan cache disagree")
	}
}
