package sweep_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

func TestWorkersDefaults(t *testing.T) {
	if w := sweep.New(0).Workers(); w < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1", w)
	}
	if w := sweep.New(-3).Workers(); w < 1 {
		t.Errorf("New(-3).Workers() = %d, want >= 1", w)
	}
	if w := sweep.New(7).Workers(); w != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", w)
	}
	var zero sweep.Engine
	if w := zero.Workers(); w < 1 {
		t.Errorf("zero Engine.Workers() = %d, want >= 1", w)
	}
}

func TestSourceJobsOrder(t *testing.T) {
	topo := grid.NewMesh2D4(4, 3)
	jobs := sweep.SourceJobs(topo, core.NewMesh4Protocol(), sim.Config{})
	if len(jobs) != topo.NumNodes() {
		t.Fatalf("len(jobs) = %d, want %d", len(jobs), topo.NumNodes())
	}
	for i, j := range jobs {
		if j.Source != topo.At(i) {
			t.Errorf("job %d source = %s, want %s", i, j.Source, topo.At(i))
		}
	}
}

func TestRunEmpty(t *testing.T) {
	outs, err := sweep.New(4).Run(context.Background(), nil)
	if err != nil || len(outs) != 0 {
		t.Errorf("Run(nil) = %v, %v", outs, err)
	}
}

// TestErrorIsolation is the table-driven error layer: a failing job
// captures its own error and never poisons the other shards.
func TestErrorIsolation(t *testing.T) {
	topo := grid.NewMesh2D4(4, 3)
	proto := core.NewMesh4Protocol()
	good := func(i int) sweep.Job {
		return sweep.Job{Topology: topo, Protocol: proto, Source: topo.At(i), Config: sim.Config{}}
	}
	bad := sweep.Job{Topology: topo, Protocol: proto, Source: grid.C2(99, 99), Config: sim.Config{}}

	for _, tc := range []struct {
		name    string
		jobs    []sweep.Job
		wantErr []bool // per job: expect a captured error
	}{
		{"first job fails", []sweep.Job{bad, good(0), good(1), good(2)}, []bool{true, false, false, false}},
		{"middle job fails", []sweep.Job{good(0), bad, good(1)}, []bool{false, true, false}},
		{"last job fails", []sweep.Job{good(0), good(1), bad}, []bool{false, false, true}},
		{"all jobs fail", []sweep.Job{bad, bad, bad}, []bool{true, true, true}},
		{"no failures", []sweep.Job{good(0), good(1)}, []bool{false, false}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				outs, err := sweep.New(workers).Run(context.Background(), tc.jobs)
				if err != nil {
					t.Fatalf("workers=%d: Run error %v (job errors must not abort the sweep)", workers, err)
				}
				if len(outs) != len(tc.jobs) {
					t.Fatalf("workers=%d: %d outcomes for %d jobs", workers, len(outs), len(tc.jobs))
				}
				for i, o := range outs {
					if tc.wantErr[i] {
						if o.Err == nil || o.Result != nil {
							t.Errorf("workers=%d job %d: want captured error, got (%v, %v)",
								workers, i, o.Result, o.Err)
						}
					} else if o.Err != nil || o.Result == nil {
						t.Errorf("workers=%d job %d: poisoned by sibling failure: (%v, %v)",
							workers, i, o.Result, o.Err)
					}
				}
			}
		})
	}
}

// TestConfigWorkersFlowsToRuns pins the two-level composition: a job's
// Config.Workers reaches sim.Run's intra-run shard pool, and because
// that pool is deterministic, a sweep over large-grid jobs is
// byte-identical whichever value a job carries. The 256x256 mesh sits
// above the engine's large-grid threshold, so Workers=8 exercises the
// sharded implicit path while Workers=1 pins the serial one.
func TestConfigWorkersFlowsToRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("large-grid sweep in -short mode")
	}
	topo := grid.NewMesh2D8(256, 256)
	proto := core.ForTopology(grid.Mesh2D8)
	src := topo.At(topo.NumNodes() / 2)
	job := func(w int) sweep.Job {
		return sweep.Job{Topology: topo, Protocol: proto, Source: src, Config: sim.Config{Workers: w}}
	}
	outs, err := sweep.New(2).Run(context.Background(), []sweep.Job{job(1), job(8)})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sweep.Results(outs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("Config.Workers=1 and =8 jobs diverged through the sweep engine")
	}
}

func TestResultsNamesFirstFailedJob(t *testing.T) {
	topo := grid.NewMesh2D4(4, 3)
	proto := core.NewMesh4Protocol()
	jobs := []sweep.Job{
		{Topology: topo, Protocol: proto, Source: topo.At(0), Config: sim.Config{}},
		{Topology: topo, Protocol: proto, Source: grid.C2(50, 50), Config: sim.Config{}},
		{Topology: topo, Protocol: proto, Source: grid.C2(60, 60), Config: sim.Config{}},
	}
	outs, err := sweep.New(2).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Results(outs); err == nil ||
		!strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "(50,50)") {
		t.Errorf("Results error = %v, want first failure (job 1, source (50,50))", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	topo := grid.NewMesh2D4(4, 3)
	jobs := sweep.SourceJobs(topo, core.NewMesh4Protocol(), sim.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := sweep.New(4).Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) || o.Result != nil {
			t.Errorf("job %d outcome = (%v, %v), want context.Canceled and no result", i, o.Result, o.Err)
		}
	}
}

// gateProtocol blocks the first simulation that reaches it until the
// test releases the gate, so the test can cancel the context while a
// job is provably mid-flight.
type gateProtocol struct {
	entered chan<- struct{}
	gate    <-chan struct{}
	once    *sync.Once
}

func (gateProtocol) Name() string { return "gate" }

func (g gateProtocol) IsRelay(grid.Topology, grid.Coord, grid.Coord) bool {
	g.once.Do(func() {
		g.entered <- struct{}{}
		<-g.gate
	})
	return true
}

func (gateProtocol) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 1 }

func (gateProtocol) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int { return nil }

// TestCancelMidSweep cancels the context while job 0 is running on a
// single worker: the running job completes and keeps its result, the
// jobs never started report the context error, and Run surfaces the
// cancellation — a coherent partial sweep.
func TestCancelMidSweep(t *testing.T) {
	topo := grid.NewMesh2D4(4, 3)
	entered := make(chan struct{})
	gate := make(chan struct{})
	proto := gateProtocol{entered: entered, gate: gate, once: &sync.Once{}}

	jobs := make([]sweep.Job, 5)
	for i := range jobs {
		jobs[i] = sweep.Job{Topology: topo, Protocol: proto, Source: topo.At(i), Config: sim.Config{}}
	}

	ctx, cancel := context.WithCancel(context.Background())
	type ret struct {
		outs []sweep.Outcome
		err  error
	}
	got := make(chan ret, 1)
	go func() {
		outs, err := sweep.New(1).Run(ctx, jobs)
		got <- ret{outs, err}
	}()

	<-entered // job 0 is mid-flight on the only worker
	cancel()
	close(gate) // let job 0 finish
	r := <-got

	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", r.err)
	}
	if r.outs[0].Err != nil || r.outs[0].Result == nil {
		t.Errorf("job 0 (running at cancel) = (%v, %v), want completed result",
			r.outs[0].Result, r.outs[0].Err)
	}
	for i, o := range r.outs[1:] {
		if !errors.Is(o.Err, context.Canceled) || o.Result != nil {
			t.Errorf("job %d (never started) = (%v, %v), want context.Canceled", i+1, o.Result, o.Err)
		}
	}
}

// TestSweepSourcesMatchesAt verifies SweepSources returns results in
// source order regardless of the pool size.
func TestSweepSourcesOrder(t *testing.T) {
	topo := grid.NewMesh2D8(6, 4)
	proto := core.NewMesh8Protocol()
	for _, workers := range []int{1, 3, 16} {
		results, err := sweep.New(workers).SweepSources(context.Background(), topo, proto, sim.Config{}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != topo.NumNodes() {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Source != topo.At(i) {
				t.Errorf("workers=%d: result %d is for source %s, want %s",
					workers, i, r.Source, topo.At(i))
			}
		}
	}
}

// TestDeterministicAcrossWorkerCounts runs the same job list at several
// pool sizes and requires deeply equal outcomes.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	topo := grid.NewMesh2D3(8, 6)
	jobs := sweep.SourceJobs(topo, core.NewMesh3Protocol(), sim.Config{})
	base, err := sweep.New(1).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 32} {
		outs, err := sweep.New(workers).Run(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			if !reflect.DeepEqual(outs[i].Result, base[i].Result) {
				t.Errorf("workers=%d: job %d result differs from workers=1", workers, i)
			}
		}
	}
}

// TestNewNegativeWorkers pins the contract the CLIs rely on: New
// treats every non-positive pool size, -1 included, as "use
// GOMAXPROCS" — it never constructs a zero- or negative-width pool.
// The commands reject negative -workers flags before reaching New, so
// this is the behavior for any library caller that slips one through.
func TestNewNegativeWorkers(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	if w := sweep.New(-1).Workers(); w != want {
		t.Errorf("New(-1).Workers() = %d, want GOMAXPROCS (%d)", w, want)
	}
	topo := grid.NewMesh2D4(4, 4)
	outs, err := sweep.New(-1).Run(context.Background(),
		sweep.SourceJobs(topo, core.NewFlooding(), sim.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil || o.Result == nil {
			t.Fatalf("job %d: result=%v err=%v", i, o.Result, o.Err)
		}
	}
}

// trackingGauge records the highest pending count it ever saw.
type trackingGauge struct {
	mu      sync.Mutex
	current int64
	peak    int64
}

func (g *trackingGauge) Add(delta int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.current += delta
	if g.current > g.peak {
		g.peak = g.current
	}
}

func TestGaugeNetsToZero(t *testing.T) {
	topo := grid.NewMesh2D4(6, 4)
	var g trackingGauge
	eng := sweep.New(2).WithGauge(&g)
	if _, err := eng.Run(context.Background(),
		sweep.SourceJobs(topo, core.NewFlooding(), sim.Config{})); err != nil {
		t.Fatal(err)
	}
	if g.current != 0 {
		t.Errorf("gauge = %d after Run, want 0", g.current)
	}
	if g.peak != int64(topo.NumNodes()) {
		t.Errorf("gauge peak = %d, want %d", g.peak, topo.NumNodes())
	}
}

func TestGaugeNetsToZeroOnCancel(t *testing.T) {
	topo := grid.NewMesh2D4(6, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var g trackingGauge
	eng := sweep.New(2).WithGauge(&g)
	if _, err := eng.Run(ctx, sweep.SourceJobs(topo, core.NewFlooding(), sim.Config{})); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g.current != 0 {
		t.Errorf("gauge = %d after cancelled Run, want 0", g.current)
	}
}
