package sweep_test

// Benchmarks for the sweep engine's headline claim: near-linear
// speedup of the full canonical evaluation sweep with the worker
// count, up to the machine's core count. One iteration is the entire
// 4-topology x 512-source paper-protocol sweep (2048 simulations) —
// the exact workload behind Tables 3-5. Run:
//
//	go test ./internal/sweep -bench=Sweep -benchtime=3x
//
// On a single-core machine every pool size degenerates to the serial
// throughput (the workers time-share one CPU); the speedup column of
// EXPERIMENTS.md records what the current hardware actually delivers.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

func canonicalJobs() []sweep.Job {
	var jobs []sweep.Job
	for _, k := range grid.Kinds() {
		jobs = append(jobs, sweep.SourceJobs(grid.Canonical(k), core.ForTopology(k), sim.Config{})...)
	}
	return jobs
}

// BenchmarkCanonicalSweep measures the full 4-topology source sweep at
// 1, 2, 4 and GOMAXPROCS workers.
func BenchmarkCanonicalSweep(b *testing.B) {
	jobs := canonicalJobs()
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := sweep.New(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				outs, err := eng.Run(context.Background(), jobs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sweep.Results(outs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleTopologySweep isolates one canonical sweep (2D-4),
// the unit of work Table 3 parallelizes.
func BenchmarkSingleTopologySweep(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	proto := core.NewMesh4Protocol()
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := sweep.New(workers)
			for i := 0; i < b.N; i++ {
				if _, err := eng.SweepSources(context.Background(), topo, proto, sim.Config{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
