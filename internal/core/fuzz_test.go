package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// Fuzzing the headline invariant: for any mesh size and source
// position, the paper protocols (with the scheduler's planner) reach
// 100% of the nodes and produce an internally consistent result.

func clampMesh(m, n uint8, lo int) (int, int) {
	mm := int(m)%24 + lo
	nn := int(n)%24 + lo
	return mm, nn
}

func clampSrc(sx, sy uint8, m, n int) grid.Coord {
	return grid.C2(int(sx)%m+1, int(sy)%n+1)
}

func fuzzReach(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord) {
	t.Helper()
	r, err := sim.Run(topo, p, src, sim.Config{})
	if err != nil {
		t.Fatalf("%v src %v: %v", topo.Kind(), src, err)
	}
	if !r.FullyReached() {
		t.Fatalf("%v src %v: reached %d/%d", topo.Kind(), src, r.Reached, r.Total)
	}
	if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatalf("%v src %v: %v", topo.Kind(), src, err)
	}
}

func FuzzMesh4Reachability(f *testing.F) {
	f.Add(uint8(32), uint8(16), uint8(5), uint8(7))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(20), uint8(2), uint8(19))
	f.Fuzz(func(t *testing.T, m, n, sx, sy uint8) {
		mm, nn := clampMesh(m, n, 1)
		topo := grid.NewMesh2D4(mm, nn)
		fuzzReach(t, topo, NewMesh4Protocol(), clampSrc(sx, sy, mm, nn))
	})
}

func FuzzMesh8Reachability(f *testing.F) {
	f.Add(uint8(14), uint8(14), uint8(4), uint8(8))
	f.Add(uint8(2), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, m, n, sx, sy uint8) {
		mm, nn := clampMesh(m, n, 1)
		topo := grid.NewMesh2D8(mm, nn)
		fuzzReach(t, topo, NewMesh8Protocol(), clampSrc(sx, sy, mm, nn))
	})
}

func FuzzMesh3Reachability(f *testing.F) {
	f.Add(uint8(20), uint8(14), uint8(9), uint8(6))
	f.Add(uint8(2), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, m, n, sx, sy uint8) {
		mm, nn := clampMesh(m, n, 2) // 1-wide brick walls are disconnected
		topo := grid.NewMesh2D3(mm, nn)
		fuzzReach(t, topo, NewMesh3Protocol(), clampSrc(sx, sy, mm, nn))
	})
}

func FuzzMesh3D6Reachability(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint8(3), uint8(3), uint8(3))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, m, n, l, sx, sy, sz uint8) {
		mm := int(m)%10 + 1
		nn := int(n)%10 + 1
		ll := int(l)%6 + 1
		topo := grid.NewMesh3D6(mm, nn, ll)
		src := grid.C3(int(sx)%mm+1, int(sy)%nn+1, int(sz)%ll+1)
		fuzzReach(t, topo, NewMesh3D6Protocol(), src)
	})
}

// Fuzz the protocol purity contract: IsRelay/TxDelay/Retransmits are
// functions of (topology, source, node) only — repeated calls agree.
func FuzzProtocolPurity(f *testing.F) {
	f.Add(uint8(10), uint8(8), uint8(3), uint8(3), uint8(7), uint8(2))
	f.Fuzz(func(t *testing.T, m, n, sx, sy, cx, cy uint8) {
		mm, nn := clampMesh(m, n, 2)
		src := clampSrc(sx, sy, mm, nn)
		c := clampSrc(cx, cy, mm, nn)
		for _, k := range grid.Kinds() {
			topo := grid.New(k, mm, nn, 3)
			p := ForTopology(k)
			if p.IsRelay(topo, src, c) != p.IsRelay(topo, src, c) {
				t.Fatalf("%v: IsRelay not pure", k)
			}
			if p.TxDelay(topo, src, c) != p.TxDelay(topo, src, c) {
				t.Fatalf("%v: TxDelay not pure", k)
			}
			a := p.Retransmits(topo, src, c)
			b := p.Retransmits(topo, src, c)
			if len(a) != len(b) {
				t.Fatalf("%v: Retransmits not pure", k)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: Retransmits not pure", k)
				}
				if a[i] < 1 {
					t.Fatalf("%v: retransmit offset %d < 1", k, a[i])
				}
			}
			if d := p.TxDelay(topo, src, c); d < 1 {
				t.Fatalf("%v: TxDelay %d < 1", k, d)
			}
		}
	})
}
