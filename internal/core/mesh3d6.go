package core

import (
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Mesh3D6Protocol is the broadcasting protocol for the 3D mesh with 6
// neighbors (Section 3.4, Fig. 9).
//
// The protocol has two parts. In the source's own XY plane the 2D-4
// protocol scatters the message to every node. Independently, the
// z-relay nodes forward the message across planes along the Z axis:
// rule R5's offsets {(0,0), (-2,-1), (-1,2), (1,-2), (2,1)} generate
// the index-5 perfect-code lattice 2(x-i)+(y-j) = 0 (mod 5), so in
// every other XY plane each z-relay's single transmission covers its
// 5-cell plus-shape and the lattice tiles the plane exactly. The
// source is itself a z-relay.
//
// Collision handling follows the paper: when all the source's
// neighbors forward simultaneously they collide, so the relay nodes
// (i±1, j, k) retransmit one slot later and the z-relays (i, j, k±1)
// two slots later; and the z-relays in the source plane defer their
// forward one extra slot so they stay out of phase with the 2D-4
// relays around them.
//
// Border cells whose covering lattice point falls outside the grid are
// served by the paper's "additional relay nodes in the border" (the
// gray nodes of Fig. 9): extra z-relay columns that forward two time
// slots after decoding.
type Mesh3D6Protocol struct {
	plane Mesh4Protocol
}

// NewMesh3D6Protocol returns the paper's 3D-mesh-6-neighbor protocol.
func NewMesh3D6Protocol() Mesh3D6Protocol { return Mesh3D6Protocol{} }

// Name implements sim.Protocol.
func (Mesh3D6Protocol) Name() string { return "paper-3d6" }

// IsZRelayColumn reports whether (x, y) is on the R5 z-relay lattice of
// the source.
func IsZRelayColumn(src, c grid.Coord) bool {
	return mod(2*(c.X-src.X)+(c.Y-src.Y), 5) == 0
}

// IsBorderZColumn reports whether (x, y) is an additional border
// z-relay column: a cell whose plus-shape covering lattice point falls
// outside the grid, so it must carry the message along Z itself.
func IsBorderZColumn(t grid.Topology, src, c grid.Coord) bool {
	if IsZRelayColumn(src, c) {
		return false
	}
	m, n, _ := t.Size()
	for _, d := range [...][2]int{{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		x, y := c.X+d[0], c.Y+d[1]
		if x >= 1 && x <= m && y >= 1 && y <= n && IsZRelayColumn(src, grid.C2(x, y)) {
			return false
		}
	}
	return true
}

// planeView returns the 2D-4 topology of one XY plane and the source's
// and node's in-plane coordinates.
func planeView(t grid.Topology) grid.Topology {
	m, n, _ := t.Size()
	return grid.NewMesh2D4(m, n)
}

func flat(c grid.Coord) grid.Coord { return grid.C2(c.X, c.Y) }

// IsRelay implements sim.Protocol.
func (p Mesh3D6Protocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	if IsZRelayColumn(src, c) || IsBorderZColumn(t, src, c) {
		return true
	}
	if c.Z != src.Z {
		return false
	}
	return p.plane.IsRelay(planeView(t), flat(src), flat(c))
}

// TxDelay implements sim.Protocol: z-relays in the source plane that
// are not also 2D-4 relays defer one extra slot (the paper's rule to
// avoid colliding with the in-plane relays); border z-columns wait two
// slots everywhere (Fig. 9's gray nodes).
func (p Mesh3D6Protocol) TxDelay(t grid.Topology, src, c grid.Coord) int {
	if IsBorderZColumn(t, src, c) && !(c.Z == src.Z && p.plane.IsRelay(planeView(t), flat(src), flat(c))) {
		// Border columns wait two slots in the source plane, per the
		// paper's Fig. 9 gray nodes.
		if c.Z == src.Z {
			return 3
		}
	}
	if IsZRelayColumn(src, c) {
		if c.Z == src.Z && !p.plane.IsRelay(planeView(t), flat(src), flat(c)) {
			return 2
		}
		// One plane away from the source the 2D-4 relays' transmissions
		// leak across the Z axis and march in lockstep with the lifted
		// column chains; deferring the z-relays there breaks the
		// lockstep. Further planes hear only z-relays and need no
		// stagger.
		if c.Z == src.Z+1 || c.Z == src.Z-1 {
			return 2
		}
	}
	return 1
}

// Retransmits implements sim.Protocol: the source's in-plane X
// neighbors retransmit one slot after their first transmission and the
// source's Z neighbors two slots after; inside the source plane the
// 2D-4 protocol's designated row retransmitters apply as usual.
func (p Mesh3D6Protocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	dx, dy, dz := c.X-src.X, c.Y-src.Y, c.Z-src.Z
	if dy == 0 && dz == 0 && (dx == 1 || dx == -1) {
		// Also the 2D-4 designated retransmitter position when it
		// coincides; one retransmission covers both duties.
		return []int{1}
	}
	if dx == 0 && dy == 0 && (dz == 1 || dz == -1) {
		return []int{2}
	}
	// Border z-columns transmit twice in every plane: their plus-shapes
	// overlap the lattice columns' coverage, and the overlapped cells
	// of a phase-locked column pair collide in one slot but hear the
	// border column alone in the other. (This costs one extra
	// transmission per border column per plane; the paper's own 3D-6
	// numbers carry a comparable border overhead — its worst case is
	// 51% above the ideal count, by far the largest gap in Table 4.)
	if IsBorderZColumn(t, src, c) {
		return []int{1}
	}
	if c.Z == src.Z {
		// Pure z-relays in the source plane double-transmit for the same
		// reason as the border columns: cells between them and a 2D-4
		// relay are covered twice, and when the phases align they
		// collide in one slot but hear the z-relay alone in the other.
		if IsZRelayColumn(src, c) && !p.plane.IsRelay(planeView(t), flat(src), flat(c)) {
			return []int{1}
		}
		return p.plane.Retransmits(planeView(t), flat(src), flat(c))
	}
	return nil
}

var _ sim.Protocol = Mesh3D6Protocol{}
