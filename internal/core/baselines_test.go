package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Ablation A2: blind flooding reaches everyone only through massive
// collision repair and burns far more transmissions and energy than
// the paper's relay selection.
func TestFloodingVsPaperProtocol(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	flood, err := sim.Run(topo, NewFlooding(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := sim.Run(topo, NewMesh4Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !flood.FullyReached() {
		t.Fatalf("flooding did not reach everyone: %v", flood)
	}
	if flood.EnergyJ <= paper.EnergyJ {
		t.Errorf("flooding energy %.3e not worse than paper %.3e", flood.EnergyJ, paper.EnergyJ)
	}
	if flood.Collisions <= paper.Collisions {
		t.Errorf("flooding collisions %d not worse than paper %d", flood.Collisions, paper.Collisions)
	}
}

// Jittered flooding trades delay for fewer repairs than blind
// flooding.
func TestJitteredFlooding(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	src := grid.C2(8, 8)
	blind, err := sim.Run(topo, NewFlooding(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	jit, err := sim.Run(topo, NewJitteredFlooding(6), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !jit.FullyReached() {
		t.Fatalf("jittered flooding incomplete: %v", jit)
	}
	if jit.Delay <= blind.Delay {
		t.Errorf("jitter should lengthen delay: %d vs %d", jit.Delay, blind.Delay)
	}
	if jit.Repairs >= blind.Repairs && blind.Repairs > 0 {
		t.Errorf("jitter should reduce repairs: %d vs %d", jit.Repairs, blind.Repairs)
	}
}

func TestFloodingNames(t *testing.T) {
	if NewFlooding().Name() != "flooding" {
		t.Error("blind flooding name")
	}
	if NewJitteredFlooding(4).Name() != "flooding-jitter" {
		t.Error("jittered flooding name")
	}
}

// The jitter hash must be deterministic and within bounds.
func TestJitterBounds(t *testing.T) {
	p := NewJitteredFlooding(5)
	topo := grid.NewMesh2D4(10, 10)
	src := grid.C2(1, 1)
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		d := p.TxDelay(topo, src, c)
		if d < 1 || d > 5 {
			t.Fatalf("jitter delay %d out of [1,5]", d)
		}
		if d2 := p.TxDelay(topo, src, c); d2 != d {
			t.Fatalf("jitter not deterministic")
		}
	}
}

// Ablation A1: both delay-based 2D-4 variants reach 100% but cost
// more delay than the retransmission strategy, exactly as the paper
// argues in Section 3.1.
func TestDelayedVariantsVsRetransmit(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(6, 8)
	retx, err := sim.Run(topo, NewMesh4Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []DelayVariant{DelayRows, DelayColumns} {
		r, err := sim.Run(topo, NewDelayedMesh4(v), src, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FullyReached() {
			t.Fatalf("variant %d incomplete: %v", v, r)
		}
		if r.Delay < retx.Delay {
			t.Errorf("variant %d delay %d beats retransmission %d — paper argues the opposite",
				v, r.Delay, retx.Delay)
		}
	}
}

// The paper's analysis: delaying rows costs more delay than delaying
// columns ("3 extra time slots" vs "an extra time slot").
func TestDelayRowsCostsMoreThanDelayColumns(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(6, 8)
	rows, err := sim.Run(topo, NewDelayedMesh4(DelayRows), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := sim.Run(topo, NewDelayedMesh4(DelayColumns), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Delay < cols.Delay {
		t.Errorf("delay-rows %d < delay-columns %d, paper predicts the opposite order",
			rows.Delay, cols.Delay)
	}
}

func TestDelayedVariantNames(t *testing.T) {
	if NewDelayedMesh4(DelayRows).Name() != "paper-2d4-delayrows" {
		t.Error("delay rows name")
	}
	if NewDelayedMesh4(DelayColumns).Name() != "paper-2d4-delaycols" {
		t.Error("delay cols name")
	}
}

// Ablation A4: the axis-forwarding 2D-8 strawman reaches everyone but
// wastes energy relative to diagonal forwarding (already asserted in
// mesh8 tests); here: it must at least complete from several sources.
func TestMesh8AxisCompletes(t *testing.T) {
	topo := grid.NewMesh2D8(16, 12)
	for _, src := range []grid.Coord{grid.C2(1, 1), grid.C2(8, 6), grid.C2(16, 12)} {
		r, err := sim.Run(topo, NewMesh8Axis(), src, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FullyReached() {
			t.Errorf("axis-2d8 from %v: %d/%d", src, r.Reached, r.Total)
		}
	}
}

// Ablation A3: the per-plane 3D strawman completes everywhere.
func TestPerPlane3DCompletes(t *testing.T) {
	topo := grid.NewMesh3D6(6, 6, 4)
	for _, src := range []grid.Coord{grid.C3(1, 1, 1), grid.C3(3, 3, 2), grid.C3(6, 6, 4)} {
		r, err := sim.Run(topo, NewPerPlane3D(), src, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FullyReached() {
			t.Errorf("perplane-3d from %v: %d/%d", src, r.Reached, r.Total)
		}
	}
}

// Flooding reaches 100% on all four canonical topologies (the repair
// guarantee applies to any protocol).
func TestFloodingAllTopologies(t *testing.T) {
	t.Parallel()
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		r, err := sim.Run(topo, NewFlooding(), topo.At(0), sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.FullyReached() {
			t.Errorf("%v flooding: %d/%d", k, r.Reached, r.Total)
		}
	}
}

func TestCoordHashDeterministic(t *testing.T) {
	a := coordHash(grid.C3(3, 4, 5))
	b := coordHash(grid.C3(3, 4, 5))
	c := coordHash(grid.C3(4, 3, 5))
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("hash collision on swapped coordinates (suspicious)")
	}
}

// Gossip percolation: low forwarding probability strands nodes, p=1 is
// flooding, and the flip is deterministic per (source, node).
func TestGossipPercolation(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	low, err := sim.Run(topo, GossipProtocol{P: 0.2, Jitter: 4}, src, sim.Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	high, err := sim.Run(topo, GossipProtocol{P: 0.9, Jitter: 4}, src, sim.Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if low.Reached >= high.Reached {
		t.Errorf("low-p reach %d not below high-p %d", low.Reached, high.Reached)
	}
	if float64(low.Reached)/float64(low.Total) > 0.8 {
		t.Errorf("p=0.2 reached %.2f, expected sub-percolation", low.Reachability())
	}
}

func TestGossipDeterministicAndEdges(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	g := NewGossip(0.5)
	src := grid.C2(5, 5)
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		if g.IsRelay(topo, src, c) != g.IsRelay(topo, src, c) {
			t.Fatal("coin flip not deterministic")
		}
	}
	if !NewGossip(1).IsRelay(topo, src, grid.C2(1, 1)) {
		t.Error("p=1 must always relay")
	}
	if NewGossip(0).IsRelay(topo, src, grid.C2(1, 1)) {
		t.Error("p=0 must never relay")
	}
	if d := (GossipProtocol{P: 0.5, Jitter: 5}).TxDelay(topo, src, grid.C2(2, 2)); d < 1 || d > 5 {
		t.Errorf("jitter delay %d", d)
	}
	if NewGossip(0.5).Name() != "gossip" {
		t.Error("name")
	}
	if got := NewGossip(0.5).Retransmits(topo, src, src); got != nil {
		t.Error("gossip should not retransmit")
	}
	// The forward fraction tracks p roughly.
	count := 0
	for i := 0; i < topo.NumNodes(); i++ {
		if g.IsRelay(topo, src, topo.At(i)) {
			count++
		}
	}
	frac := float64(count) / float64(topo.NumNodes())
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("forward fraction %.2f far from p=0.5", frac)
	}
}
