package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// sweepStats aggregates a full source sweep of one protocol on one
// topology.
type sweepStats struct {
	runs                 int
	totalRepairs         int
	maxRepairs           int
	minTx, maxTx         int
	maxDelay             int
	sourcesNeedingRepair int
}

// sweepAll runs proto from every source and asserts the paper's
// headline invariant: 100% reachability. Every result is also
// validated against the engine's consistency contract.
func sweepAll(t *testing.T, topo grid.Topology, proto sim.Protocol) sweepStats {
	t.Helper()
	st := sweepStats{minTx: 1 << 30}
	for i := 0; i < topo.NumNodes(); i++ {
		src := topo.At(i)
		r, err := sim.Run(topo, proto, src, sim.Config{})
		if err != nil {
			t.Fatalf("%s src %v: %v", proto.Name(), src, err)
		}
		if !r.FullyReached() {
			t.Fatalf("%s src %v: reached %d/%d", proto.Name(), src, r.Reached, r.Total)
		}
		if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
			t.Fatalf("%s src %v: %v", proto.Name(), src, err)
		}
		st.runs++
		st.totalRepairs += r.Repairs
		if r.Repairs > st.maxRepairs {
			st.maxRepairs = r.Repairs
		}
		if r.Repairs > 0 {
			st.sourcesNeedingRepair++
		}
		if r.Tx < st.minTx {
			st.minTx = r.Tx
		}
		if r.Tx > st.maxTx {
			st.maxTx = r.Tx
		}
		if r.Delay > st.maxDelay {
			st.maxDelay = r.Delay
		}
	}
	return st
}

// The paper's protocols must reach every node from every source on the
// canonical 512-node networks — and their designated retransmissions
// must carry almost all of the collision handling themselves (the
// scheduler's planner patches at most a handful of cases).
func TestPaperProtocolsCanonicalReachability(t *testing.T) {
	cases := []struct {
		topo            grid.Topology
		proto           sim.Protocol
		maxTotalRepairs int // across the whole sweep
	}{
		{grid.Canonical(grid.Mesh2D3), NewMesh3Protocol(), 32},
		{grid.Canonical(grid.Mesh2D4), NewMesh4Protocol(), 0},
		{grid.Canonical(grid.Mesh2D8), NewMesh8Protocol(), 0},
		{grid.Canonical(grid.Mesh3D6), NewMesh3D6Protocol(), 600},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.proto.Name(), func(t *testing.T) {
			t.Parallel()
			st := sweepAll(t, tc.topo, tc.proto)
			if st.totalRepairs > tc.maxTotalRepairs {
				t.Errorf("%s: %d planner repairs across sweep, budget %d",
					tc.proto.Name(), st.totalRepairs, tc.maxTotalRepairs)
			}
			t.Logf("%s: tx=[%d..%d] maxDelay=%d repairs=%d (srcs=%d, max=%d)",
				tc.proto.Name(), st.minTx, st.maxTx, st.maxDelay,
				st.totalRepairs, st.sourcesNeedingRepair, st.maxRepairs)
		})
	}
}

// Reachability must hold on odd shapes too: thin, tall, tiny meshes.
func TestPaperProtocolsOddSizes(t *testing.T) {
	t.Parallel()
	for _, size := range [][3]int{{2, 2, 1}, {3, 7, 1}, {12, 3, 1}, {5, 5, 1}, {16, 2, 1}, {2, 16, 1}} {
		for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8} {
			if k == grid.Mesh2D3 && size[0] == 1 {
				continue // 1-wide brick wall is disconnected
			}
			sweepAll(t, grid.New(k, size[0], size[1], 1), ForTopology(k))
		}
	}
	for _, size := range [][3]int{{2, 2, 2}, {3, 4, 5}, {6, 2, 3}, {8, 8, 2}, {2, 2, 8}} {
		sweepAll(t, grid.NewMesh3D6(size[0], size[1], size[2]), NewMesh3D6Protocol())
	}
}

// The paper's Table 3/4 values for the 2D mesh with 4 neighbors are
// reproduced exactly: best case Tx=208, worst case Tx=223 over all
// source positions of the 32x16 mesh, and Table 5's max delay of 45.
func TestMesh4PaperTxRangeExact(t *testing.T) {
	st := sweepAll(t, grid.Canonical(grid.Mesh2D4), NewMesh4Protocol())
	if st.minTx != 208 {
		t.Errorf("best-case Tx = %d, paper reports 208", st.minTx)
	}
	if st.maxTx != 223 {
		t.Errorf("worst-case Tx = %d, paper reports 223", st.maxTx)
	}
	if st.maxDelay != 45 {
		t.Errorf("max delay = %d, paper reports 45", st.maxDelay)
	}
	if st.totalRepairs != 0 {
		t.Errorf("2D-4 should never need planner repairs, got %d", st.totalRepairs)
	}
}

// ForTopology must dispatch to the right protocol.
func TestForTopologyDispatch(t *testing.T) {
	want := map[grid.Kind]string{
		grid.Mesh2D3: "paper-2d3",
		grid.Mesh2D4: "paper-2d4",
		grid.Mesh2D8: "paper-2d8",
		grid.Mesh3D6: "paper-3d6",
	}
	for k, name := range want {
		if got := ForTopology(k).Name(); got != name {
			t.Errorf("ForTopology(%v).Name() = %q, want %q", k, got, name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic")
		}
	}()
	ForTopology(grid.Kind(77))
}

// Relay fraction sanity: the paper protocols must use far fewer relays
// than flooding — that is the whole point.
func TestRelayFractionBelowFlooding(t *testing.T) {
	t.Parallel()
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		src := topo.At(topo.NumNodes() / 2)
		r, err := sim.Run(topo, ForTopology(k), src, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		frac := float64(r.RelayCount()) / float64(r.Total)
		if frac > 0.75 {
			t.Errorf("%v: relay fraction %.2f too close to flooding", k, frac)
		}
	}
}

// mod must behave like mathematical mod for negatives.
func TestMod(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 3, 1}, {-7, 3, 2}, {0, 5, 0}, {-1, 4, 3}, {-8, 4, 0},
	}
	for _, c := range cases {
		if got := mod(c.a, c.b); got != c.want {
			t.Errorf("mod(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
