package core

import "wsnbcast/internal/grid"

// Mesh8Protocol is the broadcasting protocol for the 2D mesh with 8
// neighbors (Section 3.2, Figs. 6-7).
//
// Forwarding along the diagonals both halves the hop count and raises
// the ETR to the optimal 5/8 (Fig. 6). The relay set is:
//
//   - the basic diagonals S1(i+j) and S2(i-j) through the source;
//   - every S2 line spaced five apart: S2(i-j+5k). Each line's
//     transmissions cover the two diagonals on either side, so the
//     spacing tiles the mesh exactly;
//   - border handling (interpretation, see DESIGN.md): segments of the
//     border continuing past the two endpoints of the basic S1
//     diagonal, which seed the S2 lines the (clipped) diagonal cannot
//     reach; and one border node past each endpoint of every S2 line
//     ("line-end extensions"), covering the border nodes whose
//     covering line node would fall outside the mesh.
//
// Collision handling: of the source's four diagonal neighbors that
// forward simultaneously, (i+1, j-1) and (i-1, j+1) retransmit one
// slot later (the paper designates (i+1, j-1); the opposite corner is
// the symmetric case). The interference two line chains produce where
// they brush past each other resolves itself (the paper's
// (i+3, j-3)/(i+3, j-2) example): the next nodes of both chains cover
// the collided receivers one slot later.
type Mesh8Protocol struct{}

// NewMesh8Protocol returns the paper's 2D-mesh-8-neighbor protocol.
func NewMesh8Protocol() Mesh8Protocol { return Mesh8Protocol{} }

// Name implements sim.Protocol.
func (Mesh8Protocol) Name() string { return "paper-2d8" }

// IsRelay implements sim.Protocol.
func (Mesh8Protocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	m, n, _ := t.Size()
	c1 := src.S1()
	base := src.S2()
	if c.S1() == c1 {
		return true // basic S1 diagonal
	}
	if mod(c.S2()-base, 5) == 0 {
		return true // S2 relay lines every 5 diagonals
	}

	// Endpoints of the basic S1 diagonal inside the mesh.
	xA, yA := c1-n, n // top-left endpoint
	if xA < 1 {
		xA, yA = 1, c1-1
	}
	xB, yB := c1-1, 1 // bottom-right endpoint
	if xB > m {
		xB, yB = m, c1-m
	}
	// Border seeding segments past the endpoints.
	if yA == n && c.Y == n && c.X <= xA {
		return true
	}
	if xA == 1 && c.X == 1 && c.Y >= yA {
		return true
	}
	if yB == 1 && c.Y == 1 && c.X >= xB {
		return true
	}
	if xB == m && c.X == m && c.Y <= yB {
		return true
	}

	return isMesh8Extension(t, src, c)
}

// isMesh8Extension reports whether c is a line-end extension: the
// border node one step past an S2 relay line's endpoint along the
// border. Extensions cover the border nodes whose covering line node
// would fall outside the mesh.
func isMesh8Extension(t grid.Topology, src, c grid.Coord) bool {
	m, n, _ := t.Size()
	base := src.S2()
	onLine := func(x, y int) bool { return mod(x-y-base, 5) == 0 }
	if c.X == 1 && c.Y < n && onLine(1, c.Y+1) {
		return true
	}
	if c.Y == n && c.X > 1 && onLine(c.X-1, n) {
		return true
	}
	if c.X == m && c.Y > 1 && onLine(m, c.Y-1) {
		return true
	}
	if c.Y == 1 && c.X < m && onLine(c.X+1, 1) {
		return true
	}
	return false
}

// TxDelay implements sim.Protocol: pure line-end extensions forward
// two slots after decoding so they stay off-phase with the line chains
// and designated retransmissions around them (a pure extension serves
// only its two border neighbors, so the extra slot costs nothing
// globally). Nodes that are part of a diagonal or border-segment chain
// keep the one-slot forward even if they also qualify as extensions —
// delaying them would slow the whole chain.
func (Mesh8Protocol) TxDelay(t grid.Topology, src, c grid.Coord) int {
	if isMesh8Extension(t, src, c) && !isMesh8Chain(t, src, c) {
		return 2
	}
	return 1
}

// isMesh8Chain reports whether c belongs to one of the propagation
// chains: the basic S1 diagonal, an S2 relay line, or a border seeding
// segment.
func isMesh8Chain(t grid.Topology, src, c grid.Coord) bool {
	m, n, _ := t.Size()
	c1 := src.S1()
	if c.S1() == c1 || mod(c.S2()-src.S2(), 5) == 0 {
		return true
	}
	xA, yA := c1-n, n
	if xA < 1 {
		xA, yA = 1, c1-1
	}
	xB, yB := c1-1, 1
	if xB > m {
		xB, yB = m, c1-m
	}
	if yA == n && c.Y == n && c.X <= xA {
		return true
	}
	if xA == 1 && c.X == 1 && c.Y >= yA {
		return true
	}
	if yB == 1 && c.Y == 1 && c.X >= xB {
		return true
	}
	if xB == m && c.X == m && c.Y <= yB {
		return true
	}
	return false
}

// Retransmits implements sim.Protocol. The designated retransmitters
// (the paper's gray nodes) are:
//
//   - the source's diagonal neighbors (i+1, j-1) and (i-1, j+1), whose
//     first transmissions collide at (i±2, j) and (i, j∓2)
//     (Section 3.2's stated rule plus its mirror);
//   - the border-segment node one step past each crossing with an S2
//     relay line: the segment node and the line node decode together
//     and their simultaneous forwards collide at the next segment
//     node, which would sever the segment (and everything it seeds);
//   - the two endpoints of the basic S1 diagonal, whose tails run
//     diagonal-adjacent to an S2 line and collide at the border node
//     straight past the endpoint.
//
// Each retransmits one slot after its first transmission.
func (Mesh8Protocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	m, n, _ := t.Size()
	c1 := src.S1()
	base := src.S2()
	onLine := func(x, y int) bool { return mod(x-y-base, 5) == 0 }

	xA, yA := c1-n, n
	if xA < 1 {
		xA, yA = 1, c1-1
	}
	xB, yB := c1-1, 1
	if xB > m {
		xB, yB = m, c1-m
	}
	// S1 endpoints retransmit two slots after their first transmission:
	// offset 1 would land in the same slot as the border segment's
	// first forward and re-collide at the node straight past the
	// endpoint. This rule takes precedence over the source-diagonal
	// rule when the endpoint sits next to the source.
	if (c.X == xA && c.Y == yA) || (c.X == xB && c.Y == yB) {
		return []int{2}
	}
	dx, dy := c.X-src.X, c.Y-src.Y
	if (dx == 1 && dy == -1) || (dx == -1 && dy == 1) {
		return []int{1}
	}
	// S1 node one past a lattice crossing with an S2 line (away from
	// the source): the crossing spawns three outgoing chains that
	// forward simultaneously and collide at the node straight ahead of
	// the S1 continuation; its retransmission covers all victims.
	if c.S1() == c1 {
		if dx >= 2 && onLine(c.X-1, c.Y+1) {
			return []int{1}
		}
		if dx <= -2 && onLine(c.X+1, c.Y-1) {
			return []int{1}
		}
	}
	// Segment nodes one past a line crossing, per border.
	if yB == 1 && c.Y == 1 && c.X > xB && onLine(c.X-1, 1) {
		return []int{1}
	}
	if yA == n && c.Y == n && c.X < xA && onLine(c.X+1, n) {
		return []int{1}
	}
	if xA == 1 && c.X == 1 && c.Y > yA && onLine(1, c.Y-1) {
		return []int{1}
	}
	if xB == m && c.X == m && c.Y < yB && onLine(m, c.Y+1) {
		return []int{1}
	}
	return nil
}
