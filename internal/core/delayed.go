package core

import (
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// DelayVariant selects which of the two delay-to-avoid-collision
// options of Section 3.1 a DelayedMesh4Protocol uses. The paper
// analyzes both and rejects them in favor of retransmission; ablation
// A1 reproduces that comparison.
type DelayVariant int

const (
	// DelayRows defers the row nodes x = i±(1+3k) one extra slot
	// (the paper's first option: "it will cause 3 extra time slots
	// delay and ... duplicated messages").
	DelayRows DelayVariant = iota
	// DelayColumns defers the first column relays (i+3k, j±1) one
	// extra slot (the paper's second option: "an extra time slot delay
	// and ... more duplicated messages").
	DelayColumns
)

// DelayedMesh4Protocol is the 2D-mesh-4-neighbor protocol with the
// collision-avoidance-by-delay strategy instead of designated
// retransmissions. Relay selection is identical to Mesh4Protocol.
type DelayedMesh4Protocol struct {
	Variant DelayVariant
	inner   Mesh4Protocol
}

// NewDelayedMesh4 returns the delay-based 2D-4 variant.
func NewDelayedMesh4(v DelayVariant) DelayedMesh4Protocol {
	return DelayedMesh4Protocol{Variant: v}
}

// Name implements sim.Protocol.
func (p DelayedMesh4Protocol) Name() string {
	if p.Variant == DelayRows {
		return "paper-2d4-delayrows"
	}
	return "paper-2d4-delaycols"
}

// IsRelay implements sim.Protocol (same relay set as Mesh4Protocol).
func (p DelayedMesh4Protocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	return p.inner.IsRelay(t, src, c)
}

// TxDelay implements sim.Protocol.
func (p DelayedMesh4Protocol) TxDelay(t grid.Topology, src, c grid.Coord) int {
	switch p.Variant {
	case DelayRows:
		if c.Y == src.Y {
			if r := mesh4RowRetransmit(c.X - src.X); r != nil {
				return 2
			}
		}
	case DelayColumns:
		// The first column relays, directly above/below the source row.
		if c.Y == src.Y+1 || c.Y == src.Y-1 {
			if isMesh4RelayColumn(t, src, c.X) {
				return 2
			}
		}
	}
	return 1
}

// Retransmits implements sim.Protocol: none — that is the point of the
// delay strategy.
func (DelayedMesh4Protocol) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int {
	return nil
}

var _ sim.Protocol = DelayedMesh4Protocol{}
