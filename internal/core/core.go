// Package core implements the paper's contribution: power- and
// time-efficient one-to-all broadcasting protocols for the four regular
// WSN topologies (Section 3), their ideal-case analytics (Section 4),
// and the baseline strategies the paper argues against (blind flooding
// and delay-to-avoid-collision variants).
//
// Each protocol is a set of pure node-local rules — which nodes relay,
// when they transmit, which designated nodes retransmit — exactly in
// the spirit of the paper: the topology is regular and fixed, so every
// node can derive its role from (topology, source, own id) alone.
//
// Where the 4-page paper leaves details informal (border handling,
// the full retransmission schedule), the interpretation is documented
// on the relevant rule and in DESIGN.md; the engine's repair pass
// guarantees the paper's headline 100% reachability regardless, and
// every granted repair is counted and reported.
package core

import (
	"fmt"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// ForTopology returns the paper's broadcasting protocol for the given
// topology kind (Sections 3.1-3.4).
func ForTopology(k grid.Kind) sim.Protocol {
	switch k {
	case grid.Mesh2D3:
		return NewMesh3Protocol()
	case grid.Mesh2D4:
		return NewMesh4Protocol()
	case grid.Mesh2D8:
		return NewMesh8Protocol()
	case grid.Mesh3D6:
		return NewMesh3D6Protocol()
	default:
		panic(fmt.Sprintf("core: no protocol for topology %v", k))
	}
}

// mod returns the non-negative remainder of a mod b (b > 0).
func mod(a, b int) int {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}
