package core

import (
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// FloodingProtocol is the "traditional" broadcast the paper's
// introduction argues against: almost all nodes forward the message,
// causing severe collisions ("broadcast storm"). It is the baseline
// for ablation A2.
//
// Two variants are provided:
//
//   - blind flooding (Jitter == 0): every node forwards in the slot
//     after it decodes. On any 2D/3D mesh this collides massively and
//     only reaches everyone thanks to scheduler repairs;
//   - jittered flooding (Jitter > 0): every node forwards after a
//     deterministic pseudo-random delay of 1..Jitter slots, the
//     classic collision-mitigation that trades delay for reachability.
//
// Determinism: the jitter is a hash of the node id, not a random
// draw, so runs are exactly reproducible.
type FloodingProtocol struct {
	// Jitter is the maximum forwarding delay in slots; 0 or 1 means
	// blind flooding (forward in the next slot).
	Jitter int
}

// NewFlooding returns blind flooding.
func NewFlooding() FloodingProtocol { return FloodingProtocol{} }

// NewJitteredFlooding returns flooding with deterministic jitter of
// 1..j slots.
func NewJitteredFlooding(j int) FloodingProtocol { return FloodingProtocol{Jitter: j} }

// Name implements sim.Protocol.
func (p FloodingProtocol) Name() string {
	if p.Jitter > 1 {
		return "flooding-jitter"
	}
	return "flooding"
}

// IsRelay implements sim.Protocol: everyone forwards.
func (FloodingProtocol) IsRelay(grid.Topology, grid.Coord, grid.Coord) bool { return true }

// TxDelay implements sim.Protocol.
func (p FloodingProtocol) TxDelay(t grid.Topology, src, c grid.Coord) int {
	if p.Jitter <= 1 {
		return 1
	}
	return 1 + int(coordHash(c)%uint64(p.Jitter))
}

// Retransmits implements sim.Protocol.
func (FloodingProtocol) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int { return nil }

// coordHash is a deterministic 64-bit mix of the coordinate
// (splitmix64 over the packed coordinates).
func coordHash(c grid.Coord) uint64 {
	z := uint64(c.X)<<42 ^ uint64(c.Y)<<21 ^ uint64(c.Z)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

var _ sim.Protocol = FloodingProtocol{}
