package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Section 3.3's example: source (5,4) has B1(5,4) = S1(9) u S1(8) and
// B2(5,4) = S2(1) u S2(2) (node (5,5) is not its neighbor).
func TestMesh3PaperStripExample(t *testing.T) {
	src := grid.C2(5, 4)
	for _, c := range []grid.Coord{grid.C2(4, 4), grid.C2(4, 5), grid.C2(3, 5)} {
		// S1 in {8, 9}
		if a, ok := mesh3B1Match(src, c); !ok || a != 5 {
			t.Errorf("B1 match of %v (S1=%d) = (%d,%v), want anchor 5", c, c.S1(), a, ok)
		}
	}
	for _, c := range []grid.Coord{grid.C2(6, 5), grid.C2(7, 5)} {
		// S2 in {1, 2}
		if a, ok := mesh3B2Match(src, c); !ok || a != 5 {
			t.Errorf("B2 match of %v (S2=%d) = (%d,%v), want anchor 5", c, c.S2(), a, ok)
		}
	}
	// Off-strip diagonals must not match.
	if _, ok := mesh3B1Match(src, grid.C2(5, 6)); ok { // S1 = 11
		t.Error("S1(11) should not match B1 strips of (5,4)")
	}
}

// Fig. 8 of the paper: source (10,7). The B1 strips are anchored at
// columns {2,6,10,14,18}, giving the listed S1 sets {8,9}, {12,13},
// {16,17}, {20,21}, {24,25}; the B2 sets are {-5,-4}, {-1,0}, {3,4},
// {7,8}, {11,12}.
func TestMesh3Fig8StripSets(t *testing.T) {
	src := grid.C2(10, 7)
	wantB1 := map[int]bool{8: true, 9: true, 12: true, 13: true, 16: true, 17: true,
		20: true, 21: true, 24: true, 25: true}
	for s1 := 6; s1 <= 27; s1++ {
		c := grid.C2(s1-7, 7) // any node with that S1 index
		_, ok := mesh3B1Match(src, grid.C2(1, s1-1))
		_ = c
		if ok != wantB1[s1] {
			t.Errorf("S1(%d): B1 match = %v, want %v", s1, ok, wantB1[s1])
		}
	}
	wantB2 := map[int]bool{-5: true, -4: true, -1: true, 0: true, 3: true, 4: true,
		7: true, 8: true, 11: true, 12: true}
	for s2 := -6; s2 <= 13; s2++ {
		_, ok := mesh3B2Match(src, grid.C2(s2+8, 8))
		if ok != wantB2[s2] {
			t.Errorf("S2(%d): B2 match = %v, want %v", s2, ok, wantB2[s2])
		}
	}
}

// The Fig. 8 configuration broadcast: 100% reachability on a 20x14
// mesh from (10,7), with the spine and strips carrying the message.
func TestMesh3Fig8Broadcast(t *testing.T) {
	topo := grid.NewMesh2D3(20, 14)
	r, err := sim.Run(topo, NewMesh3Protocol(), grid.C2(10, 7), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Fatalf("reached %d/%d", r.Reached, r.Total)
	}
	if r.Repairs > 2 {
		t.Errorf("Repairs = %d, want at most 2", r.Repairs)
	}
}

// The whole source row relays (the paper's "node (k,4), k != 5" rule).
func TestMesh3SpineRelays(t *testing.T) {
	topo := grid.NewMesh2D3(16, 10)
	src := grid.C2(7, 5)
	p := NewMesh3Protocol()
	for x := 1; x <= 16; x++ {
		if !p.IsRelay(topo, src, grid.C2(x, 5)) {
			t.Errorf("spine node (%d,5) is not a relay", x)
		}
	}
}

// Strip relays must form a connected structure reaching every strip
// node (behavioral check: on a collision-free... rather, every B1
// strip node decodes in the simulated broadcast).
func TestMesh3StripNodesAllDecode(t *testing.T) {
	topo := grid.NewMesh2D3(20, 12)
	src := grid.C2(9, 6)
	r, err := sim.Run(topo, NewMesh3Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.NumNodes(); i++ {
		if r.DecodeSlot[i] < 0 {
			t.Errorf("node %v never decoded", topo.At(i))
		}
	}
}

// The B2 wedge strips only activate beyond the outermost B1 lines.
func TestMesh3WedgeActivation(t *testing.T) {
	topo := grid.NewMesh2D3(16, 16)
	src := grid.C2(8, 3)
	p := NewMesh3Protocol()
	lo, hi := mesh3B1IndexRange(topo, src)
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		if c.Y == src.Y {
			continue
		}
		_, b2 := mesh3B2Match(src, c)
		inWedge := c.S1() > hi || c.S1() < lo
		if b2 && !inWedge && !isMesh3Extension(topo, src, c) {
			if a, b1 := mesh3B1Match(src, c); !(b1 && a >= 1 && a <= 16) && p.IsRelay(topo, src, c) {
				t.Errorf("%v relays as B2 outside the wedge", c)
			}
		}
	}
}

// All strip anchors share the source's column parity, so the residue
// classes are stable: property check across many sources.
func TestMesh3ResidueStability(t *testing.T) {
	for _, src := range []grid.Coord{grid.C2(3, 4), grid.C2(8, 9), grid.C2(1, 1), grid.C2(14, 2)} {
		for dx := -8; dx <= 8; dx += 4 {
			a := src.X + dx
			if a < 1 {
				continue
			}
			anchor := grid.C2(a, src.Y)
			if gotA, ok := mesh3B1Match(src, anchor); !ok || gotA != a {
				t.Errorf("anchor (%d,%d) of src %v: match = (%d,%v)", a, src.Y, src, gotA, ok)
			}
		}
	}
}
