package core

import "wsnbcast/internal/grid"

// ETR — the efficient transmission ratio of Section 3 — is M/N where N
// is the transmitter's total number of neighbors and M the number of
// neighbors that receive a non-duplicated message from the
// transmission.

// ETR computes the efficient transmission ratio of node tx forwarding
// the broadcast, given the set of nodes that already hold the message
// (have decoded or originated it). The returned fraction is
// fresh-neighbors / all-neighbors of tx.
func ETR(t grid.Topology, tx grid.Coord, has func(grid.Coord) bool) (m, n int) {
	var buf []grid.Coord
	buf = t.Neighbors(tx, buf)
	n = len(buf)
	for _, nb := range buf {
		if !has(nb) {
			m++
		}
	}
	return m, n
}

// ForwardETR computes the ETR of the single-hop forward from sender to
// receiver on an otherwise message-free network: only the sender and
// its neighborhood hold the message when the receiver forwards. This
// is the quantity compared in the paper's Fig. 6 (diagonal forward in
// the 2D mesh with 8 neighbors achieves 5/8; an X-axis forward only
// 3/8).
func ForwardETR(t grid.Topology, sender, receiver grid.Coord) (m, n int) {
	if !t.Connected(sender, receiver) {
		return 0, t.Degree(receiver)
	}
	var covered = map[grid.Coord]bool{sender: true}
	var buf []grid.Coord
	for _, nb := range t.Neighbors(sender, buf) {
		covered[nb] = true
	}
	return ETR(t, receiver, func(c grid.Coord) bool { return covered[c] })
}

// OptimalETR restates Table 1: for any non-source node with N
// neighbors the best possible ratio is (N-1)/N except where the
// topology's geometry forces a larger overlap between consecutive
// neighborhoods, as in the 2D mesh with 8 neighbors (5/8) and the 3D
// mesh with 6 neighbors (5/6).
func OptimalETR(k grid.Kind) (num, den int) {
	return grid.New(k, 3, 3, 3).OptimalETR()
}

// OptimalM is the numerator of the optimal ETR: the largest number of
// fresh neighbors a non-source relay can cover per transmission.
func OptimalM(k grid.Kind) int {
	num, _ := OptimalETR(k)
	return num
}
