package core

import (
	"fmt"
	"math"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Ideal is the paper's ideal case (Section 4, Tables 2 and 5): every
// relay achieves the optimal ETR and no transmission ever collides. It
// is a lower bound the real protocols are compared against.
type Ideal struct {
	Kind grid.Kind
	// Tx is the minimum number of transmissions to cover the network
	// with optimal-ETR relays.
	Tx int
	// Rx is Tx * N: every transmission is heard by the nominal number
	// of neighbors.
	Rx int
	// EnergyJ is the resulting total power consumption.
	EnergyJ float64
	// MaxDelay is the worst-case broadcast delay over all source
	// positions: the network diameter in hops minus one (the source
	// transmits in slot 0, so a node at hop distance h decodes in slot
	// h-1).
	MaxDelay int
}

// IdealCase computes the ideal-case numbers for a topology under the
// given radio model and packet (Table 2 uses the canonical 512-node
// meshes with radio.Default and radio.CanonicalPacket).
func IdealCase(t grid.Topology, model radio.Model, pkt radio.Packet) Ideal {
	tx := IdealTx(t)
	rx := tx * t.MaxDegree()
	ledger := radio.NewLedger(model, pkt)
	ledger.AddTx(tx)
	ledger.AddRx(rx)
	return Ideal{
		Kind:     t.Kind(),
		Tx:       tx,
		Rx:       rx,
		EnergyJ:  ledger.TotalJ(),
		MaxDelay: Diameter(t) - 1,
	}
}

// IdealTx returns the ideal-case transmission count.
//
// For the 2D topologies: the source's transmission covers N fresh
// nodes and every further optimal-ETR transmission covers M fresh
// nodes, so Tx = 1 + ceil((V-1-N)/M). This reproduces Table 2 exactly
// (255, 170 and 102 for the 512-node meshes).
//
// For the 3D mesh with 6 neighbors the paper's protocol is structural
// (Section 3.4): the source plane is covered by the 2D-4 protocol, Z =
// ceil(m*n/5) z-relay columns carry the message across planes, and in
// each of the other l-1 planes every column's single transmission
// covers its 5-cell plus-shape. The ideal count is therefore
//
//	Tx = Tx_2D4(m, n) + (Z - 1) + Z*(l - 1)
//
// ((Z-1) because the source, itself a z-relay, is already counted in
// the plane term). This reproduces Table 2's 124 for the 8x8x8 mesh.
func IdealTx(t grid.Topology) int {
	m, n, l := t.Size()
	v := t.NumNodes()
	if v == 1 {
		return 1
	}
	switch t.Kind() {
	case grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8:
		return ideal2DTx(v, t.MaxDegree(), OptimalM(t.Kind()))
	case grid.Mesh3D6:
		plane := ideal2DTx(m*n, 4, 3)
		z := ceilDiv(m*n, 5)
		return plane + (z - 1) + z*(l-1)
	default:
		panic(fmt.Sprintf("core: no ideal model for %v", t.Kind()))
	}
}

func ideal2DTx(v, n, m int) int {
	if v-1 <= n {
		return 1
	}
	return 1 + ceilDiv(v-1-n, m)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Diameter returns the hop diameter of the topology, computed exactly
// by breadth-first search from every node.
func Diameter(t grid.Topology) int {
	v := t.NumNodes()
	adj := make([][]int32, v)
	var buf []grid.Coord
	for i := 0; i < v; i++ {
		buf = t.Neighbors(t.At(i), buf[:0])
		row := make([]int32, len(buf))
		for k, nb := range buf {
			row[k] = int32(t.Index(nb))
		}
		adj[i] = row
	}
	diam := 0
	dist := make([]int32, v)
	queue := make([]int32, 0, v)
	for s := 0; s < v; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, nb := range adj[cur] {
				if dist[nb] < 0 {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for _, d := range dist {
			if int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam
}

// Eccentricity returns the largest hop distance from src to any node.
func Eccentricity(t grid.Topology, src grid.Coord) int {
	if !t.Contains(src) {
		return -1
	}
	v := t.NumNodes()
	dist := make([]int, v)
	for i := range dist {
		dist[i] = -1
	}
	s := t.Index(src)
	dist[s] = 0
	queue := []int{s}
	ecc := 0
	var buf []grid.Coord
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		buf = t.Neighbors(t.At(cur), buf[:0])
		for _, nb := range buf {
			j := t.Index(nb)
			if dist[j] < 0 {
				dist[j] = dist[cur] + 1
				if dist[j] > ecc {
					ecc = dist[j]
				}
				queue = append(queue, j)
			}
		}
	}
	return ecc
}

// LowerBoundEnergyJ is the Joule cost of the ideal case, exposed for
// efficiency-gap reporting.
func LowerBoundEnergyJ(t grid.Topology, model radio.Model, pkt radio.Packet) float64 {
	return IdealCase(t, model, pkt).EnergyJ
}

// EfficiencyGap returns how far a measured energy is above the ideal
// case, as a ratio >= 0 (0.08 means 8% above ideal). Returns +Inf for
// a zero ideal.
func EfficiencyGap(measuredJ, idealJ float64) float64 {
	if idealJ <= 0 {
		return math.Inf(1)
	}
	return measuredJ/idealJ - 1
}
