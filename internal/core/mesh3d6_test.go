package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Rule R5: if (x, y, z) is a z-relay then so are (x, y, w),
// (x-2, y-1, w), (x-1, y+2, w), (x+1, y-2, w), (x+2, y+1, w).
func TestR5OffsetsGenerateLattice(t *testing.T) {
	src := grid.C3(6, 8, 4)
	offsets := [][2]int{{0, 0}, {-2, -1}, {-1, 2}, {1, -2}, {2, 1}}
	// Start from the source (a z-relay by definition) and expand by R5;
	// everything generated must satisfy the lattice predicate and vice
	// versa on a bounded window.
	seen := map[[2]int]bool{{src.X, src.Y}: true}
	frontier := [][2]int{{src.X, src.Y}}
	for len(frontier) > 0 {
		var next [][2]int
		for _, f := range frontier {
			for _, o := range offsets {
				p := [2]int{f[0] + o[0], f[1] + o[1]}
				if p[0] < -10 || p[0] > 20 || p[1] < -10 || p[1] > 20 || seen[p] {
					continue
				}
				seen[p] = true
				next = append(next, p)
			}
		}
		frontier = next
	}
	for x := -10; x <= 20; x++ {
		for y := -10; y <= 20; y++ {
			want := IsZRelayColumn(src, grid.C2(x, y))
			got := seen[[2]int{x, y}]
			// Interior of the window only (border effects of the BFS).
			if x > -6 && x < 16 && y > -6 && y < 16 && want != got {
				t.Fatalf("(%d,%d): lattice=%v, R5 closure=%v", x, y, want, got)
			}
		}
	}
}

// The paper's Fig. 9 example: source (6,8,k); nodes (4,7), (5,10),
// (7,6), (8,9) are z-relays.
func TestFig9ZRelays(t *testing.T) {
	src := grid.C3(6, 8, 4)
	for _, c := range []grid.Coord{grid.C2(4, 7), grid.C2(5, 10), grid.C2(7, 6), grid.C2(8, 9)} {
		if !IsZRelayColumn(src, c) {
			t.Errorf("%v should be a z-relay column", c)
		}
	}
	if !IsZRelayColumn(src, grid.C2(6, 8)) {
		t.Error("the source must be a z-relay")
	}
	if IsZRelayColumn(src, grid.C2(6, 9)) {
		t.Error("(6,9) must not be a z-relay")
	}
}

// The z-relay lattice tiles every plane: each cell is either a lattice
// point or 4-adjacent to exactly one.
func TestLatticePerfectCode(t *testing.T) {
	src := grid.C3(5, 5, 1)
	for x := -20; x <= 20; x++ {
		for y := -20; y <= 20; y++ {
			count := 0
			for _, d := range [][2]int{{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				if IsZRelayColumn(src, grid.C2(x+d[0], y+d[1])) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("(%d,%d): %d lattice points in closed neighborhood, want exactly 1", x, y, count)
			}
		}
	}
}

// Border z-columns are exactly the cells whose covering lattice point
// is outside the grid.
func TestBorderZColumns(t *testing.T) {
	topo := grid.NewMesh3D6(8, 8, 8)
	src := grid.C3(1, 1, 1)
	borders := 0
	for x := 1; x <= 8; x++ {
		for y := 1; y <= 8; y++ {
			c := grid.C2(x, y)
			if IsBorderZColumn(topo, src, c) {
				borders++
				if IsZRelayColumn(src, c) {
					t.Errorf("%v is both lattice and border column", c)
				}
				// Interior cells can never be border columns.
				if x > 1 && x < 8 && y > 1 && y < 8 {
					t.Errorf("interior cell %v marked as border column", c)
				}
			}
		}
	}
	if borders == 0 {
		t.Error("an 8x8 plane should have border columns")
	}
	if borders > 12 {
		t.Errorf("%d border columns, too many", borders)
	}
}

// The source's neighbors' designated retransmissions (Section 3.4):
// (i±1, j, k) one slot later, (i, j, k±1) two slots later.
func TestMesh3D6SourceNeighborRetransmits(t *testing.T) {
	topo := grid.NewMesh3D6(8, 8, 8)
	src := grid.C3(4, 4, 4)
	p := NewMesh3D6Protocol()
	for _, tc := range []struct {
		c    grid.Coord
		want int
	}{
		{grid.C3(3, 4, 4), 1},
		{grid.C3(5, 4, 4), 1},
		{grid.C3(4, 4, 3), 2},
		{grid.C3(4, 4, 5), 2},
	} {
		got := p.Retransmits(topo, src, tc.c)
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("Retransmits(%v) = %v, want [%d]", tc.c, got, tc.want)
		}
	}
}

// The canonical 8x8x8 broadcast: full reachability, delay close to the
// paper's 20, and the 3D protocol beats the per-plane strawman on
// energy (Section 3.4's claim).
func TestMesh3D6BeatsPerPlane(t *testing.T) {
	topo := grid.Canonical(grid.Mesh3D6)
	src := grid.C3(6, 8, 4)
	if !topo.Contains(src) {
		src = grid.C3(6, 8, 4)
	}
	src = grid.C3(4, 4, 4)
	smart, err := sim.Run(topo, NewMesh3D6Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sim.Run(topo, NewPerPlane3D(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !smart.FullyReached() || !naive.FullyReached() {
		t.Fatalf("reachability: smart %d/%d, naive %d/%d",
			smart.Reached, smart.Total, naive.Reached, naive.Total)
	}
	if smart.EnergyJ >= naive.EnergyJ {
		t.Errorf("z-relay protocol energy %.3e not better than per-plane %.3e",
			smart.EnergyJ, naive.EnergyJ)
	}
	if smart.Tx >= naive.Tx {
		t.Errorf("z-relay Tx %d not better than per-plane %d", smart.Tx, naive.Tx)
	}
}

// In non-source planes only z-columns transmit.
func TestMesh3D6OnlyColumnsBeyondSourcePlane(t *testing.T) {
	topo := grid.NewMesh3D6(8, 8, 4)
	src := grid.C3(3, 5, 2)
	r, err := sim.Run(topo, NewMesh3D6Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, slots := range r.TxSlots {
		if len(slots) == 0 {
			continue
		}
		c := topo.At(i)
		if c.Z == src.Z || r.Repairs > 0 {
			continue
		}
		if !IsZRelayColumn(src, c) && !IsBorderZColumn(topo, src, c) {
			t.Errorf("non-column node %v transmitted outside the source plane", c)
		}
	}
}
