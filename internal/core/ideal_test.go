package core

import (
	"math"
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Table 2 of the paper, reproduced exactly: ideal-case Tx, Rx and
// power for the canonical 512-node networks.
func TestTable2IdealExact(t *testing.T) {
	want := map[grid.Kind]struct {
		tx, rx int
		powerJ float64
	}{
		grid.Mesh2D3: {255, 765, 2.61e-2},
		grid.Mesh2D4: {170, 680, 2.18e-2},
		grid.Mesh2D8: {102, 816, 2.35e-2},
		grid.Mesh3D6: {124, 744, 2.22e-2},
	}
	for k, w := range want {
		ideal := IdealCase(grid.Canonical(k), radio.Default(), radio.CanonicalPacket())
		if ideal.Tx != w.tx {
			t.Errorf("%v ideal Tx = %d, paper %d", k, ideal.Tx, w.tx)
		}
		if ideal.Rx != w.rx {
			t.Errorf("%v ideal Rx = %d, paper %d", k, ideal.Rx, w.rx)
		}
		if math.Abs(ideal.EnergyJ-w.powerJ) > 0.005e-2 {
			t.Errorf("%v ideal power = %.4e J, paper %.2e", k, ideal.EnergyJ, w.powerJ)
		}
	}
}

// Table 5's ideal max delays follow from the hop diameters: 2D-4 has
// diameter 46 on 32x16 (delay 45, matching the paper); 3D-6 diameter
// 21 (delay 20, matching). The 2D-8 Chebyshev diameter is 31 (delay
// 30; the paper reports 31 — see EXPERIMENTS.md).
func TestIdealDelays(t *testing.T) {
	cases := map[grid.Kind]int{
		grid.Mesh2D4: 45,
		grid.Mesh3D6: 20,
		grid.Mesh2D8: 30,
		// The 32x16 brick wall has hop diameter 46, so the ideal delay
		// is 45 under our slot convention; the paper reports 46 (off by
		// one, see EXPERIMENTS.md).
		grid.Mesh2D3: 45,
	}
	for k, want := range cases {
		ideal := IdealCase(grid.Canonical(k), radio.Default(), radio.CanonicalPacket())
		if ideal.MaxDelay != want {
			t.Errorf("%v ideal max delay = %d, want %d", k, ideal.MaxDelay, want)
		}
	}
}

func TestDiameterSmallMeshes(t *testing.T) {
	if d := Diameter(grid.NewMesh2D4(4, 3)); d != 5 {
		t.Errorf("2D-4 4x3 diameter = %d, want 5", d)
	}
	if d := Diameter(grid.NewMesh2D8(4, 3)); d != 3 {
		t.Errorf("2D-8 4x3 diameter = %d, want 3", d)
	}
	if d := Diameter(grid.NewMesh3D6(2, 2, 2)); d != 3 {
		t.Errorf("3D-6 2x2x2 diameter = %d, want 3", d)
	}
	if d := Diameter(grid.NewMesh2D4(1, 1)); d != 0 {
		t.Errorf("singleton diameter = %d, want 0", d)
	}
}

func TestEccentricity(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	if e := Eccentricity(topo, grid.C2(3, 3)); e != 4 {
		t.Errorf("center eccentricity = %d, want 4", e)
	}
	if e := Eccentricity(topo, grid.C2(1, 1)); e != 8 {
		t.Errorf("corner eccentricity = %d, want 8", e)
	}
	if e := Eccentricity(topo, grid.C2(9, 9)); e != -1 {
		t.Errorf("out-of-mesh eccentricity = %d, want -1", e)
	}
	// Diameter is the max eccentricity.
	maxEcc := 0
	for i := 0; i < topo.NumNodes(); i++ {
		if e := Eccentricity(topo, topo.At(i)); e > maxEcc {
			maxEcc = e
		}
	}
	if d := Diameter(topo); d != maxEcc {
		t.Errorf("diameter %d != max eccentricity %d", d, maxEcc)
	}
}

// IdealTx edge cases.
func TestIdealTxEdges(t *testing.T) {
	if tx := IdealTx(grid.NewMesh2D4(1, 1)); tx != 1 {
		t.Errorf("singleton ideal Tx = %d", tx)
	}
	// A 2x2 mesh: the ideal model assumes nominal (interior) degrees,
	// exactly as the paper's Table 2 does, so a single transmission
	// nominally suffices for the 3 other nodes.
	if tx := IdealTx(grid.NewMesh2D4(2, 2)); tx != 1 {
		t.Errorf("2x2 ideal Tx = %d, want 1", tx)
	}
	// A star-like tiny mesh where one transmission suffices.
	if tx := IdealTx(grid.NewMesh2D8(2, 2)); tx != 1 {
		t.Errorf("2D-8 2x2 ideal Tx = %d, want 1", tx)
	}
}

// The ideal case must lower-bound the measured protocols on the
// canonical networks for both Tx and energy.
func TestIdealIsLowerBound(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		ideal := IdealCase(topo, radio.Default(), radio.CanonicalPacket())
		st := sweepAll(t, topo, ForTopology(k))
		if st.minTx < ideal.Tx {
			t.Errorf("%v: measured best Tx %d below ideal %d", k, st.minTx, ideal.Tx)
		}
	}
}

func TestEfficiencyGap(t *testing.T) {
	if g := EfficiencyGap(1.08, 1.0); math.Abs(g-0.08) > 1e-12 {
		t.Errorf("gap = %g, want 0.08", g)
	}
	if g := EfficiencyGap(1, 0); !math.IsInf(g, 1) {
		t.Errorf("gap with zero ideal = %g, want +Inf", g)
	}
}

func TestLowerBoundEnergy(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	if got, want := LowerBoundEnergyJ(topo, radio.Default(), radio.CanonicalPacket()),
		IdealCase(topo, radio.Default(), radio.CanonicalPacket()).EnergyJ; got != want {
		t.Errorf("LowerBoundEnergyJ = %g, want %g", got, want)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {0, 5, 0}}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
