package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Fig. 7 of the paper: a 14x14 mesh (196 nodes) with source (5,9).
// The relay lines are S1(14) and S2(1), S2(6), S2(11), S2(-4), S2(-9).
func TestMesh8Fig7RelayLines(t *testing.T) {
	topo := grid.NewMesh2D8(14, 14)
	src := grid.C2(5, 9)
	p := NewMesh8Protocol()
	wantS2 := map[int]bool{1: true, 6: true, 11: true, -4: true, -9: true}
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		if c.S1() == 14 || wantS2[c.S2()] {
			if !p.IsRelay(topo, src, c) {
				t.Errorf("%v on a paper relay line but not a relay", c)
			}
		}
		// Conversely, interior nodes off every line must not relay.
		if c.X > 1 && c.X < 14 && c.Y > 1 && c.Y < 14 &&
			c.S1() != 14 && !wantS2[c.S2()] && p.IsRelay(topo, src, c) {
			t.Errorf("interior node %v relays but is on no relay line", c)
		}
	}
}

// The Fig. 7 broadcast completes with 100% reachability, no planner
// repairs, and only a handful of designated retransmitters (the paper
// reports 3 gray nodes among 196).
func TestMesh8Fig7Broadcast(t *testing.T) {
	topo := grid.NewMesh2D8(14, 14)
	r, err := sim.Run(topo, NewMesh8Protocol(), grid.C2(5, 9), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Fatalf("reached %d/%d", r.Reached, r.Total)
	}
	if r.Repairs != 0 {
		t.Errorf("Repairs = %d, want 0", r.Repairs)
	}
	if got := len(r.RetransmitNodes()); got > 6 {
		t.Errorf("%d retransmitters, paper reports 3 — ours must stay comparable", got)
	}
}

// The paper's stated designated retransmitter: when (i+1, j+1) and
// (i+1, j-1) forward simultaneously they collide at (i+2, j), so
// (i+1, j-1) retransmits; (i-1, j+1) is the symmetric case.
func TestMesh8SourceDiagonalRetransmitters(t *testing.T) {
	topo := grid.NewMesh2D8(14, 14)
	src := grid.C2(7, 7)
	p := NewMesh8Protocol()
	if got := p.Retransmits(topo, src, grid.C2(8, 6)); len(got) != 1 {
		t.Errorf("(i+1,j-1) retransmits = %v", got)
	}
	if got := p.Retransmits(topo, src, grid.C2(6, 8)); len(got) != 1 {
		t.Errorf("(i-1,j+1) retransmits = %v", got)
	}
	if got := p.Retransmits(topo, src, grid.C2(8, 8)); len(got) != 0 {
		t.Errorf("(i+1,j+1) must not retransmit, got %v", got)
	}
}

// The paper's no-retransmission case: chains brushing at (i+3, j-3)
// and (i+3, j-2) self-resolve — the victims decode one slot later from
// the next chain nodes. Verified behaviorally: the Fig. 7 run decodes
// (i+4, j-3) and (i+4, j-2) without any retransmission by (i+3, j-3)
// or (i+3, j-2).
func TestMesh8SelfResolvingCollision(t *testing.T) {
	topo := grid.NewMesh2D8(14, 14)
	src := grid.C2(5, 9)
	p := NewMesh8Protocol()
	for _, c := range []grid.Coord{grid.C2(8, 6), grid.C2(8, 7)} {
		if got := p.Retransmits(topo, src, c); len(got) != 0 {
			t.Errorf("%v should not be designated (self-resolving case), got %v", c, got)
		}
	}
	r, err := sim.Run(topo, p, src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []grid.Coord{grid.C2(9, 6), grid.C2(9, 7)} {
		if r.DecodeSlot[topo.Index(c)] < 0 {
			t.Errorf("%v never decoded", c)
		}
	}
}

// Diagonal forwarding must deliver a strictly shorter worst-case delay
// than axis forwarding on the same topology (the Fig. 6 argument at
// network scale).
func TestMesh8DiagonalBeatsAxisDelay(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D8)
	src := grid.C2(1, 1)
	diag, err := sim.Run(topo, NewMesh8Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	axis, err := sim.Run(topo, NewMesh8Axis(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if diag.Delay >= axis.Delay {
		t.Errorf("diagonal delay %d not better than axis delay %d", diag.Delay, axis.Delay)
	}
	if diag.EnergyJ >= axis.EnergyJ {
		t.Errorf("diagonal energy %.3e not better than axis %.3e", diag.EnergyJ, axis.EnergyJ)
	}
}

// The S2 relay lines are spaced exactly five diagonals apart
// (coverage tiling): every node is within Chebyshev distance 1 of a
// point whose S2 index is on a line.
func TestMesh8LineSpacingCoverage(t *testing.T) {
	topo := grid.NewMesh2D8(20, 20)
	src := grid.C2(9, 11)
	base := src.S2()
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		d := mod(c.S2()-base, 5)
		if d > 2 {
			d = 5 - d
		}
		if d > 2 {
			t.Fatalf("node %v is %d diagonals from the nearest relay line", c, d)
		}
	}
}
