package core

import (
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// GossipProtocol is probabilistic flooding — the classic broadcast-
// storm mitigation the literature contemporary with the paper studied:
// each node forwards with probability P. Below a percolation threshold
// the broadcast dies out; above it the cost approaches flooding. The
// paper's deterministic relay selection sits outside that trade-off
// entirely (guaranteed coverage at a fraction of flooding's cost),
// which ablation A5 quantifies.
//
// Determinism: the coin flip is a hash of (source, node), so a given
// broadcast is exactly reproducible; different sources reshuffle the
// relay set like a fresh seed would.
type GossipProtocol struct {
	// P is the forwarding probability in [0, 1].
	P float64
	// Jitter spreads forwards over 1..Jitter slots (minimum 1) to
	// soften the collision burst; 0 means forward in the next slot.
	Jitter int
}

// NewGossip returns probabilistic flooding with forwarding
// probability p.
func NewGossip(p float64) GossipProtocol { return GossipProtocol{P: p} }

// Name implements sim.Protocol.
func (GossipProtocol) Name() string { return "gossip" }

// IsRelay implements sim.Protocol: a deterministic coin flip per
// (source, node).
func (g GossipProtocol) IsRelay(_ grid.Topology, src, c grid.Coord) bool {
	if g.P >= 1 {
		return true
	}
	if g.P <= 0 {
		return false
	}
	h := coordHash(src) ^ coordHash(c)*0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < g.P
}

// TxDelay implements sim.Protocol.
func (g GossipProtocol) TxDelay(_ grid.Topology, src, c grid.Coord) int {
	if g.Jitter <= 1 {
		return 1
	}
	return 1 + int((coordHash(c)^coordHash(src))%uint64(g.Jitter))
}

// Retransmits implements sim.Protocol.
func (GossipProtocol) Retransmits(grid.Topology, grid.Coord, grid.Coord) []int { return nil }

var _ sim.Protocol = GossipProtocol{}
