package core

import "wsnbcast/internal/grid"

// Mesh4Protocol is the broadcasting protocol for the 2D mesh with 4
// neighbors (Section 3.1, Fig. 5).
//
// Relay selection: the source (i, j) first scatters the message along
// its X axis — every node of row j relays. Every node in the columns
// x = i + 3k then relays along its Y axis. Most column relays achieve
// the optimal ETR of 3/4.
//
// Border rule: when the leftmost relay column is column 3 (i = 0 mod
// 3), columns 1 and 2 would never be covered; following the paper's
// border check ("if node (2, y) is not a relay node, node (1, y) will
// become the relay node"), column 1 becomes a relay column, seeded by
// the row node (1, j), and its transmissions also cover column 2. The
// right border is symmetric.
//
// Collision handling: when row node (i+1+3k, j) and column relays
// (i+3k, j±1) transmit simultaneously, the transmissions collide at
// (i+1+3k, j±1); instead of delaying (which the paper shows costs more
// time and duplicates), the row nodes x = i ± (1+3k) retransmit in the
// next slot.
type Mesh4Protocol struct{}

// NewMesh4Protocol returns the paper's 2D-mesh-4-neighbor protocol.
func NewMesh4Protocol() Mesh4Protocol { return Mesh4Protocol{} }

// Name implements sim.Protocol.
func (Mesh4Protocol) Name() string { return "paper-2d4" }

// IsRelay implements sim.Protocol: row j, columns x = i+3k, and the
// border columns the paper's check adds.
func (Mesh4Protocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	if c.Y == src.Y {
		return true
	}
	return isMesh4RelayColumn(t, src, c.X)
}

// isMesh4RelayColumn reports whether column x relays in the 2D-4
// protocol from the given source.
func isMesh4RelayColumn(t grid.Topology, src grid.Coord, x int) bool {
	if mod(x-src.X, 3) == 0 {
		return true
	}
	m, _, _ := t.Size()
	// Leftmost regular relay column; if it is column 3, column 1 takes
	// over border duty (and covers column 2 on the way).
	if x == 1 && mod(src.X-1, 3)+1 == 3 {
		return true
	}
	// Rightmost regular relay column; mirror case.
	if x == m && mod(m-src.X, 3) == 2 {
		return true
	}
	return false
}

// TxDelay implements sim.Protocol: every relay forwards in the slot
// after it first decodes.
func (Mesh4Protocol) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 1 }

// Retransmits implements sim.Protocol: the row nodes x = i ± (1+3k)
// are the paper's designated retransmitters (the gray nodes of
// Fig. 5); each transmits again one slot after its first transmission.
func (Mesh4Protocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	_, n, _ := t.Size()
	if n == 1 || c.Y != src.Y {
		return nil // no column relays, nothing to collide with
	}
	return mesh4RowRetransmit(c.X - src.X)
}

// mesh4RowRetransmit returns the retransmission offsets for a row node
// at signed distance dx from the source.
func mesh4RowRetransmit(dx int) []int {
	if dx >= 1 && mod(dx-1, 3) == 0 {
		return []int{1}
	}
	if dx <= -1 && mod(-dx-1, 3) == 0 {
		return []int{1}
	}
	return nil
}
