package core

import (
	"wsnbcast/internal/grid"
)

// Mesh3Protocol is the broadcasting protocol for the 2D mesh with 3
// neighbors (Section 3.3, Figs. 1 and 8) — the brick-wall grid.
//
// The relay structure follows the paper: the source row is the
// horizontal spine, and vertical transport happens along "staircase"
// strips — the B1/B2 pairs of adjacent diagonal lines — anchored on
// the spine every 4 columns (each strip's transmissions cover 4
// consecutive diagonals, so the spacing tiles the mesh exactly). Most
// strip relays achieve the optimal ETR of 2/3.
//
// Interpretation (see DESIGN.md): the paper's region rules R1-R4
// assign one strip type per region, but as stated they leave the far
// corner wedges beyond the outermost strip anchors uncovered (a B1
// strip through a node near the top-right corner would need an anchor
// beyond column m). We therefore use B1 strips wherever their anchor
// exists — they pass continuously through regions 1, 2 and 3 — and
// activate B2 strips only for the two wedges B1 cannot reach: the
// bottom wedge below S1(j) and the top wedge above S1(m+j+1). This
// keeps the paper's relay density (one strip family per node plus the
// spine) and achieves 100% reachability for every source position.
type Mesh3Protocol struct{}

// NewMesh3Protocol returns the paper's 2D-mesh-3-neighbor protocol.
func NewMesh3Protocol() Mesh3Protocol { return Mesh3Protocol{} }

// Name implements sim.Protocol.
func (Mesh3Protocol) Name() string { return "paper-2d3" }

// mesh3B1Match reports whether c lies on a B1 strip of the source
// (anchored at (i+4k, j)), and returns the strip's anchor column.
// All anchors share the source's column parity, so the strip indices
// are i+j+{0,1}+4k when the source has its vertical edge up, and
// i+j+{0,-1}+4k otherwise.
func mesh3B1Match(src, c grid.Coord) (anchor int, ok bool) {
	r := mod(c.S1()-src.S1(), 4)
	if grid.VerticalUp(src) {
		switch r {
		case 0:
			return c.S1() - src.Y, true
		case 1:
			return c.S1() - src.Y - 1, true
		}
		return 0, false
	}
	switch r {
	case 0:
		return c.S1() - src.Y, true
	case 3:
		return c.S1() - src.Y + 1, true
	}
	return 0, false
}

// mesh3B2Match is the S2-axis analogue of mesh3B1Match.
func mesh3B2Match(src, c grid.Coord) (anchor int, ok bool) {
	q := mod(c.S2()-src.S2(), 4)
	if grid.VerticalUp(src) {
		switch q {
		case 0:
			return c.S2() + src.Y, true
		case 3:
			return c.S2() + src.Y + 1, true
		}
		return 0, false
	}
	switch q {
	case 0:
		return c.S2() + src.Y, true
	case 1:
		return c.S2() + src.Y - 1, true
	}
	return 0, false
}

// IsRelay implements sim.Protocol.
func (Mesh3Protocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	if c.Y == src.Y {
		return true // the source-row spine
	}
	m, _, _ := t.Size()
	if a, ok := mesh3B1Match(src, c); ok && a >= 1 && a <= m {
		return true
	}
	// B2 wedge strips: active only beyond the outermost B1 strip
	// lines, i.e. in the two corner wedges no B1 anchor can reach.
	// There they are seeded by the outermost B1 strip's transmissions
	// (which cover one diagonal past the strip) and climb into the
	// wedge, S1 increasing monotonically along the staircase. Keeping
	// them inactive elsewhere prevents their chains from brushing the
	// B1 chains, which would collide at every node in between.
	if _, ok := mesh3B2Match(src, c); ok {
		lo, hi := mesh3B1IndexRange(t, src)
		if c.S1() > hi || c.S1() < lo {
			return true
		}
	}
	return isMesh3Extension(t, src, c)
}

// isMesh3Extension reports whether c is a border extension. Along the
// borders the strip node that would cover a border node can fall
// outside the mesh, leaving a coverage hole: a node with no chain
// relay among itself and its neighbors. The designated coverer of a
// hole — its smallest-index neighbor that can itself decode (it is a
// chain relay or adjacent to one) — relays to fill it. Extensions
// forward off-phase (TxDelay 2) so they do not collide with the strip
// chains around them.
func isMesh3Extension(t grid.Topology, src, c grid.Coord) bool {
	p := Mesh3Protocol{}
	if p.isChainRelay(t, src, c) {
		return false
	}
	var nbs, nbs2 []grid.Coord
	nbs = t.Neighbors(c, nbs)
	for _, h := range nbs {
		if !mesh3IsHole(t, src, h) {
			continue
		}
		// c covers h if it is h's designated coverer: the first
		// neighbor of h (in topology order) that can decode.
		nbs2 = t.Neighbors(h, nbs2[:0])
		for _, cand := range nbs2 {
			if !mesh3CanDecode(t, src, cand) {
				continue
			}
			if cand == c {
				return true
			}
			break // an earlier candidate is the designated coverer
		}
	}
	return false
}

// mesh3IsHole reports whether h is a coverage hole: neither h nor any
// of its neighbors is a chain relay, so no chain transmission can ever
// reach it.
func mesh3IsHole(t grid.Topology, src, h grid.Coord) bool {
	p := Mesh3Protocol{}
	if p.isChainRelay(t, src, h) {
		return false
	}
	var nbs []grid.Coord
	nbs = t.Neighbors(h, nbs)
	for _, nb := range nbs {
		if p.isChainRelay(t, src, nb) {
			return false
		}
	}
	return true
}

// mesh3CanDecode reports whether the node can receive the message from
// the chain structure: it is a chain relay or adjacent to one.
func mesh3CanDecode(t grid.Topology, src, c grid.Coord) bool {
	p := Mesh3Protocol{}
	if p.isChainRelay(t, src, c) {
		return true
	}
	var nbs []grid.Coord
	nbs = t.Neighbors(c, nbs)
	for _, nb := range nbs {
		if p.isChainRelay(t, src, nb) {
			return true
		}
	}
	return false
}

// mesh3B1IndexRange returns the smallest and largest S1 line index
// used by any B1 strip with an in-mesh anchor.
func mesh3B1IndexRange(t grid.Topology, src grid.Coord) (lo, hi int) {
	m, _, _ := t.Size()
	aMin := mod(src.X-1, 4) + 1
	aMax := m - mod(m-src.X, 4)
	if grid.VerticalUp(src) {
		return aMin + src.Y, aMax + src.Y + 1
	}
	return aMin + src.Y - 1, aMax + src.Y
}

// TxDelay implements sim.Protocol: pure border extensions forward two
// slots after decoding, off-phase with the strip chains; everything
// else forwards in the next slot.
func (p Mesh3Protocol) TxDelay(t grid.Topology, src, c grid.Coord) int {
	if isMesh3Extension(t, src, c) && !p.isChainRelay(t, src, c) {
		return 2
	}
	return 1
}

// isChainRelay reports whether c is part of a propagation chain (the
// spine, a B1 strip, or an active B2 wedge strip).
func (Mesh3Protocol) isChainRelay(t grid.Topology, src, c grid.Coord) bool {
	if c.Y == src.Y {
		return true
	}
	m, _, _ := t.Size()
	if a, ok := mesh3B1Match(src, c); ok && a >= 1 && a <= m {
		return true
	}
	if _, ok := mesh3B2Match(src, c); ok {
		lo, hi := mesh3B1IndexRange(t, src)
		if c.S1() > hi || c.S1() < lo {
			return true
		}
	}
	return false
}

// Retransmits implements sim.Protocol: like the 2D-4 protocol, the
// spine nodes one past each strip anchor retransmit — when the spine
// wave passes an anchor, the next spine node and the strip's first
// off-row nodes forward simultaneously and collide at the node
// diagonal to the anchor. "The topology of the network is
// predetermined, [so] we know where the collision will occur and which
// node needs to retransmit" (Section 3.3).
func (Mesh3Protocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	_, n, _ := t.Size()
	if n == 1 {
		return nil
	}
	if c.Y != src.Y {
		// Wedge seam: the outermost B1 strip seeds the B2 wedge strips,
		// and its side-line transmissions collide with the climbing B2
		// chains at the seam diagonal; the strip's outer line
		// retransmits to cover the seam victims.
		lo, hi := mesh3B1IndexRange(t, src)
		if (c.Y > src.Y && c.S1() == hi) || (c.Y < src.Y && c.S1() == lo) {
			return []int{1}
		}
		return nil
	}
	m, _, _ := t.Size()
	if c.X == 1 || c.X == m {
		// The last spine node on each side: its forward is in lockstep
		// with the adjacent strip chain and collides at the border node
		// above/below it.
		return []int{1}
	}
	dx := c.X - src.X
	if dx >= 1 && mod(dx, 4) != 0 {
		return []int{1}
	}
	if dx <= -1 && mod(-dx, 4) != 0 {
		return []int{1}
	}
	return nil
}
