package core

import (
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// PerPlane3DProtocol is the strawman 3D broadcast of Section 3.4's
// opening: carry the message up the source's Z column and run the full
// 2D-mesh-4-neighbor protocol in every XY plane. The paper rejects it
// ("this approach will consume more power and cause more collisions")
// in favor of the z-relay lattice; ablation A3 reproduces the
// comparison.
type PerPlane3DProtocol struct {
	plane Mesh4Protocol
}

// NewPerPlane3D returns the per-plane 3D baseline.
func NewPerPlane3D() PerPlane3DProtocol { return PerPlane3DProtocol{} }

// Name implements sim.Protocol.
func (PerPlane3DProtocol) Name() string { return "perplane-3d" }

// IsRelay implements sim.Protocol: the source's Z column plus, in
// every plane, the 2D-4 relay set anchored at the column cell.
func (p PerPlane3DProtocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	if c.X == src.X && c.Y == src.Y {
		return true
	}
	return p.plane.IsRelay(planeView(t), flat(src), flat(c))
}

// TxDelay implements sim.Protocol: planes run back-to-back; adjacent
// planes' waves leak across the Z axis and collide — which is exactly
// the behavior the ablation quantifies.
func (PerPlane3DProtocol) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 1 }

// Retransmits implements sim.Protocol: each plane uses the 2D-4
// designated row retransmitters.
func (p PerPlane3DProtocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	if c.X == src.X && c.Y == src.Y {
		return nil
	}
	return p.plane.Retransmits(planeView(t), flat(src), flat(c))
}

var _ sim.Protocol = PerPlane3DProtocol{}

// Mesh8AxisProtocol runs the 2D-4 relay structure (rows and every
// third column) on the 2D mesh with 8 neighbors — forwarding along the
// X and Y axes only, the strategy Fig. 6 shows to achieve ETR 3/8
// instead of the diagonal 5/8. Ablation A4 quantifies the whole-
// network cost: the same relays now wake 8 neighbors per transmission.
type Mesh8AxisProtocol struct {
	inner Mesh4Protocol
}

// NewMesh8Axis returns the axis-forwarding 2D-8 baseline.
func NewMesh8Axis() Mesh8AxisProtocol { return Mesh8AxisProtocol{} }

// Name implements sim.Protocol.
func (Mesh8AxisProtocol) Name() string { return "axis-2d8" }

// IsRelay implements sim.Protocol.
func (p Mesh8AxisProtocol) IsRelay(t grid.Topology, src, c grid.Coord) bool {
	m, n, _ := t.Size()
	return p.inner.IsRelay(grid.NewMesh2D4(m, n), src, c)
}

// TxDelay implements sim.Protocol.
func (Mesh8AxisProtocol) TxDelay(grid.Topology, grid.Coord, grid.Coord) int { return 1 }

// Retransmits implements sim.Protocol.
func (p Mesh8AxisProtocol) Retransmits(t grid.Topology, src, c grid.Coord) []int {
	m, n, _ := t.Size()
	return p.inner.Retransmits(grid.NewMesh2D4(m, n), src, c)
}

var _ sim.Protocol = Mesh8AxisProtocol{}
