package core

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Fig. 5 of the paper: a 16x16 mesh with source (6,8). The designated
// retransmitters (the gray nodes) are exactly (2,8), (5,8), (7,8),
// (10,8), (13,8) and (16,8).
func TestMesh4Fig5Retransmitters(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	src := grid.C2(6, 8)
	p := NewMesh4Protocol()
	want := map[grid.Coord]bool{
		grid.C2(2, 8): true, grid.C2(5, 8): true, grid.C2(7, 8): true,
		grid.C2(10, 8): true, grid.C2(13, 8): true, grid.C2(16, 8): true,
	}
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		offsets := p.Retransmits(topo, src, c)
		if want[c] {
			if len(offsets) != 1 || offsets[0] != 1 {
				t.Errorf("%v: Retransmits = %v, want [1]", c, offsets)
			}
		} else if len(offsets) != 0 {
			t.Errorf("%v: unexpected retransmit %v", c, offsets)
		}
	}
}

// Fig. 5's relay structure: row 8 entirely, columns {3,6,9,12,15}
// entirely, plus the border column 1 (the leftmost regular relay
// column is 3).
func TestMesh4Fig5RelaySet(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	src := grid.C2(6, 8)
	p := NewMesh4Protocol()
	relayCols := map[int]bool{3: true, 6: true, 9: true, 12: true, 15: true, 1: true}
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		want := c.Y == 8 || relayCols[c.X]
		if got := p.IsRelay(topo, src, c); got != want {
			t.Errorf("IsRelay(%v) = %v, want %v", c, got, want)
		}
	}
}

// The Fig. 5 broadcast must complete with zero collisions left
// unresolved and no planner repairs.
func TestMesh4Fig5Broadcast(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	r, err := sim.Run(topo, NewMesh4Protocol(), grid.C2(6, 8), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Fatalf("reached %d/%d", r.Reached, r.Total)
	}
	if r.Repairs != 0 {
		t.Errorf("Repairs = %d, want 0", r.Repairs)
	}
	// The six gray nodes transmit twice; everyone else at most once.
	if got := len(r.RetransmitNodes()); got != 6 {
		t.Errorf("%d nodes retransmitted, want 6", got)
	}
	if r.Collisions == 0 {
		t.Error("expected collisions (the paper's protocol collides and retransmits)")
	}
}

// Border rule cases: leftmost relay column 1, 2 and 3 (source column
// i = 1, 2, 3 mod 3).
func TestMesh4BorderColumns(t *testing.T) {
	topo := grid.NewMesh2D4(10, 6)
	p := NewMesh4Protocol()
	cases := []struct {
		srcX int
		col1 bool // is column 1 a relay column
		colM bool // is column m=10 a relay column
	}{
		{1, true, true},   // columns 1,4,7,10
		{2, false, false}, // columns 2,5,8 -> col 1 via col 2, col 10 via... 10-8=2 -> border!
		{3, true, false},  // columns 3,6,9 -> border col 1; col 10 via 9
	}
	// Correction for srcX=2: c_max = 8, m-c_max = 2 -> column 10 relays.
	cases[1].colM = true
	for _, tc := range cases {
		src := grid.C2(tc.srcX, 3)
		got1 := p.IsRelay(topo, src, grid.C2(1, 5))
		gotM := p.IsRelay(topo, src, grid.C2(10, 5))
		if got1 != tc.col1 {
			t.Errorf("src x=%d: column 1 relay = %v, want %v", tc.srcX, got1, tc.col1)
		}
		if gotM != tc.colM {
			t.Errorf("src x=%d: column 10 relay = %v, want %v", tc.srcX, gotM, tc.colM)
		}
	}
}

// Most relays must achieve the optimal ETR of 3/4: verify that the
// average fresh-coverage per transmission is close to 3.
func TestMesh4ETREfficiency(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	r, err := sim.Run(topo, NewMesh4Protocol(), grid.C2(16, 8), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh coverage per transmission = (nodes reached - 1) / Tx.
	perTx := float64(r.Reached-1) / float64(r.Tx)
	if perTx < 2.3 {
		t.Errorf("fresh nodes per transmission = %.2f, want near the optimal 3", perTx)
	}
}

// A single-row network degenerates to a simple pipeline.
func TestMesh4SingleRow(t *testing.T) {
	topo := grid.NewMesh2D4(12, 1)
	r, err := sim.Run(topo, NewMesh4Protocol(), grid.C2(4, 1), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() || r.Tx != 12 || r.Repairs != 0 {
		t.Errorf("unexpected: %v", r)
	}
}

// In a single-column network the (only) column must relay.
func TestMesh4SingleColumn(t *testing.T) {
	topo := grid.NewMesh2D4(1, 12)
	r, err := sim.Run(topo, NewMesh4Protocol(), grid.C2(1, 5), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Errorf("unexpected: %v", r)
	}
}
