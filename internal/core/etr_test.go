package core

import (
	"testing"

	"wsnbcast/internal/grid"
)

// Fig. 6 of the paper: in the 2D mesh with 8 neighbors, forwarding
// from (2,3) to the diagonal neighbor (3,2) achieves ETR 5/8, while
// forwarding from (2,2) to the axis neighbor (3,2) achieves only 3/8.
func TestFig6ForwardETR(t *testing.T) {
	topo := grid.NewMesh2D8(6, 6)
	m, n := ForwardETR(topo, grid.C2(2, 3), grid.C2(3, 2))
	if m != 5 || n != 8 {
		t.Errorf("diagonal forward ETR = %d/%d, want 5/8", m, n)
	}
	m, n = ForwardETR(topo, grid.C2(2, 2), grid.C2(3, 2))
	if m != 3 || n != 8 {
		t.Errorf("axis forward ETR = %d/%d, want 3/8", m, n)
	}
}

// Table 1: the optimal ETRs of the four topologies.
func TestTable1OptimalETR(t *testing.T) {
	want := map[grid.Kind][2]int{
		grid.Mesh2D3: {2, 3},
		grid.Mesh2D4: {3, 4},
		grid.Mesh2D8: {5, 8},
		grid.Mesh3D6: {5, 6},
	}
	for k, w := range want {
		num, den := OptimalETR(k)
		if num != w[0] || den != w[1] {
			t.Errorf("%v optimal ETR = %d/%d, want %d/%d", k, num, den, w[0], w[1])
		}
		if OptimalM(k) != w[0] {
			t.Errorf("%v OptimalM = %d, want %d", k, OptimalM(k), w[0])
		}
	}
}

// A non-source relay's forward ETR can never exceed the topology's
// optimal ETR — exhaustive check over all interior forwards.
func TestForwardETRNeverExceedsOptimal(t *testing.T) {
	for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8, grid.Mesh3D6} {
		topo := grid.New(k, 7, 7, 5)
		optNum, optDen := topo.OptimalETR()
		var buf []grid.Coord
		for i := 0; i < topo.NumNodes(); i++ {
			sender := topo.At(i)
			buf = topo.Neighbors(sender, buf[:0])
			for _, receiver := range buf {
				if topo.Degree(receiver) != topo.MaxDegree() {
					continue // the bound is for full-degree nodes
				}
				m, n := ForwardETR(topo, sender, receiver)
				// m/n <= optNum/optDen  <=>  m*optDen <= optNum*n
				if m*optDen > optNum*n {
					t.Fatalf("%v: forward %v->%v has ETR %d/%d above optimal %d/%d",
						k, sender, receiver, m, n, optNum, optDen)
				}
			}
		}
	}
}

// Paper claim behind Table 1: the best ETR is achieved by some
// interior forward in every topology (the optimum is attainable).
func TestOptimalETRAttainable(t *testing.T) {
	for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8, grid.Mesh3D6} {
		topo := grid.New(k, 9, 9, 5)
		optNum, optDen := topo.OptimalETR()
		found := false
		var buf []grid.Coord
		for i := 0; i < topo.NumNodes() && !found; i++ {
			sender := topo.At(i)
			buf = topo.Neighbors(sender, buf[:0])
			for _, receiver := range buf {
				if topo.Degree(receiver) != topo.MaxDegree() {
					continue
				}
				m, n := ForwardETR(topo, sender, receiver)
				if m*optDen == optNum*n {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%v: optimal ETR %d/%d not attained by any forward", k, optNum, optDen)
		}
	}
}

// ETR with an explicit holder set.
func TestETRExplicit(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	holders := map[grid.Coord]bool{grid.C2(3, 3): true, grid.C2(2, 3): true}
	m, n := ETR(topo, grid.C2(3, 3), func(c grid.Coord) bool { return holders[c] })
	if n != 4 || m != 3 {
		t.Errorf("ETR = %d/%d, want 3/4", m, n)
	}
	// Everyone already has it: ETR 0.
	m, _ = ETR(topo, grid.C2(3, 3), func(grid.Coord) bool { return true })
	if m != 0 {
		t.Errorf("saturated ETR numerator = %d, want 0", m)
	}
}

// ForwardETR of a non-adjacent pair is zero.
func TestForwardETRNonAdjacent(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	m, _ := ForwardETR(topo, grid.C2(1, 1), grid.C2(3, 3))
	if m != 0 {
		t.Errorf("non-adjacent forward ETR numerator = %d, want 0", m)
	}
}

// The source itself achieves 100% ETR (all neighbors fresh).
func TestSourceETRFull(t *testing.T) {
	topo := grid.NewMesh2D8(5, 5)
	src := grid.C2(3, 3)
	m, n := ETR(topo, src, func(c grid.Coord) bool { return c == src })
	if m != n || n != 8 {
		t.Errorf("source ETR = %d/%d, want 8/8", m, n)
	}
}
