package table

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tbl := Table{
		Title:   "Table 1. Optimal ETRs",
		Headers: []string{"Topology", "Optimal ETR"},
	}
	tbl.AddRow("2D-3", "2/3")
	tbl.AddRow("2D-4", "3/4")
	out := tbl.String()
	for _, want := range []string{"Table 1. Optimal ETRs", "| Topology |", "| 2D-3", "| 3/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + rule + header + rule + 2 rows + rule = 7 lines.
	if len(lines) != 7 {
		t.Errorf("line count = %d, want 7:\n%s", len(lines), out)
	}
	// All rules and rows must have equal width.
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Errorf("ragged table: %q", l)
		}
	}
}

func TestAddRowTypes(t *testing.T) {
	var tbl Table
	tbl.Headers = []string{"a", "b", "c"}
	tbl.AddRow(42, 2.18e-2, "x")
	if got := tbl.Rows[0][0]; got != "42" {
		t.Errorf("int cell = %q", got)
	}
	if got := tbl.Rows[0][1]; got != "2.18e-02" {
		t.Errorf("float cell = %q", got)
	}
}

func TestNoHeaders(t *testing.T) {
	var tbl Table
	tbl.AddRow("only", "rows")
	out := tbl.String()
	if strings.Count(out, "+") < 4 {
		t.Errorf("missing rules:\n%s", out)
	}
}

func TestFormatJ(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.18e-2, "2.18e-02"},
		{2.61e-2, "2.61e-02"},
		{0, "0.00e+00"},
	}
	for _, c := range cases {
		if got := FormatJ(c.in); got != c.want {
			t.Errorf("FormatJ(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatFraction(t *testing.T) {
	if got := FormatFraction(5, 8); got != "5/8" {
		t.Errorf("got %q", got)
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.082); got != "8.2%" {
		t.Errorf("got %q", got)
	}
}

func TestShortRowPadded(t *testing.T) {
	tbl := Table{Headers: []string{"a", "b", "c"}}
	tbl.AddRow("x") // shorter than headers
	out := tbl.String()
	if !strings.Contains(out, "| x") {
		t.Errorf("row not rendered:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "x|y")
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "|---|---|", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	empty := Table{}
	if empty.Markdown() != "" {
		t.Error("empty table should render nothing")
	}
	short := Table{Headers: []string{"a", "b", "c"}}
	short.AddRow("only")
	if !strings.Contains(short.Markdown(), "| only |  |  |") {
		t.Errorf("short row padding:\n%s", short.Markdown())
	}
}
