// Package table renders fixed-width text tables in the visual style of
// the paper's Tables 1-5, for the wsnbench tool and EXPERIMENTS.md.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells. The zero value is ready to use.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatJ(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRule := func() {
		sb.WriteByte('+')
		for _, wd := range widths {
			sb.WriteString(strings.Repeat("-", wd+2))
			sb.WriteByte('+')
		}
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		sb.WriteByte('|')
		for i, wd := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&sb, " %-*s |", wd, cell)
		}
		sb.WriteByte('\n')
	}
	writeRule()
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		writeRule()
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	writeRule()
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// FormatJ renders an energy in Joules the way the paper prints it:
// three significant digits with a power-of-ten exponent, e.g.
// "2.18e-02".
func FormatJ(v float64) string {
	return fmt.Sprintf("%.2e", v)
}

// FormatFraction renders an exact fraction like the paper's Table 1
// ("3/4").
func FormatFraction(num, den int) string {
	return fmt.Sprintf("%d/%d", num, den)
}

// FormatPercent renders a ratio as a percentage with one decimal.
func FormatPercent(r float64) string {
	return fmt.Sprintf("%.1f%%", 100*r)
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	if cols == 0 {
		return ""
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	cell := func(cells []string, i int) string {
		if i < len(cells) {
			return strings.ReplaceAll(cells[i], "|", "\\|")
		}
		return ""
	}
	sb.WriteByte('|')
	for i := 0; i < cols; i++ {
		sb.WriteString(" " + cell(t.Headers, i) + " |")
	}
	sb.WriteByte('\n')
	sb.WriteByte('|')
	for i := 0; i < cols; i++ {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteByte('|')
		for i := 0; i < cols; i++ {
			sb.WriteString(" " + cell(row, i) + " |")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
