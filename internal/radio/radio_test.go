package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestCanonicalEnergies(t *testing.T) {
	m := Default()
	p := CanonicalPacket()
	// E_Tx(512, 0.5) = 50n*512 + 100p*512*0.25 = 2.56e-5 + 1.28e-8 J.
	wantTx := 2.56e-5 + 1.28e-8
	if got := m.TxEnergyJ(p.Bits, p.NeighborDistM); !almostEqual(got, wantTx, 1e-12) {
		t.Errorf("TxEnergyJ = %g, want %g", got, wantTx)
	}
	// E_Rx(512) = 2.56e-5 J.
	if got := m.RxEnergyJ(p.Bits); !almostEqual(got, 2.56e-5, 1e-12) {
		t.Errorf("RxEnergyJ = %g, want %g", got, 2.56e-5)
	}
}

// Cross-check against the paper's Table 2 (ideal case): for each
// topology the paper reports Tx, Rx and the resulting Joules. Our
// model must reproduce those Joules from their Tx/Rx counts to the
// printed precision (3 significant digits).
func TestTable2EnergyCrossCheck(t *testing.T) {
	m := Default()
	p := CanonicalPacket()
	cases := []struct {
		name   string
		tx, rx int
		wantJ  float64
	}{
		{"2D-3", 255, 765, 2.61e-2},
		{"2D-4", 170, 680, 2.18e-2},
		{"2D-8", 102, 816, 2.35e-2},
		{"3D-6", 124, 744, 2.22e-2},
	}
	for _, tc := range cases {
		l := NewLedger(m, p)
		l.AddTx(tc.tx)
		l.AddRx(tc.rx)
		got := l.TotalJ()
		if math.Abs(got-tc.wantJ) > 0.005e-2 {
			t.Errorf("%s: TotalJ = %.4e, paper %.2e", tc.name, got, tc.wantJ)
		}
	}
}

func TestTxEnergyMonotonic(t *testing.T) {
	m := Default()
	f := func(k uint16, d float64) bool {
		bits := int(k)%4096 + 1
		dist := math.Mod(math.Abs(d), 100)
		e1 := m.TxEnergyJ(bits, dist)
		e2 := m.TxEnergyJ(bits, dist+1)
		e3 := m.TxEnergyJ(bits+1, dist)
		return e2 >= e1 && e3 > e1 && e1 >= m.RxEnergyJ(bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroDistance(t *testing.T) {
	m := Default()
	if got, want := m.TxEnergyJ(100, 0), m.RxEnergyJ(100); got != want {
		t.Errorf("TxEnergyJ(k,0) = %g, want E_elec*k = %g", got, want)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(-1, 0); err == nil {
		t.Error("negative E_elec accepted")
	}
	if _, err := NewModel(0, -1); err == nil {
		t.Error("negative E_amp accepted")
	}
	m, err := NewModel(1e-9, 2e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m.ElecJPerBit != 1e-9 || m.AmpJPerBitM2 != 2e-12 {
		t.Errorf("NewModel = %+v", m)
	}
}

func TestPacketValidate(t *testing.T) {
	if err := CanonicalPacket().Validate(); err != nil {
		t.Errorf("canonical packet invalid: %v", err)
	}
	if err := (Packet{Bits: 0, NeighborDistM: 1}).Validate(); err == nil {
		t.Error("zero-bit packet accepted")
	}
	if err := (Packet{Bits: 10, NeighborDistM: 0}).Validate(); err == nil {
		t.Error("zero-distance packet accepted")
	}
	if err := (Packet{Bits: -5, NeighborDistM: -1}).Validate(); err == nil {
		t.Error("negative packet accepted")
	}
}

// Ledger energy must be additive: splitting the same counts across
// multiple Add calls yields the same total.
func TestLedgerAdditivity(t *testing.T) {
	m := Default()
	p := CanonicalPacket()
	a := NewLedger(m, p)
	a.AddTx(100)
	a.AddRx(400)
	b := NewLedger(m, p)
	for i := 0; i < 100; i++ {
		b.AddTx(1)
		b.AddRx(4)
	}
	if a.TotalJ() != b.TotalJ() {
		t.Errorf("additivity broken: %g != %g", a.TotalJ(), b.TotalJ())
	}
	if a.Tx != 100 || a.Rx != 400 {
		t.Errorf("counts wrong: %+v", a)
	}
}

func TestLedgerQuickLinear(t *testing.T) {
	m := Default()
	p := CanonicalPacket()
	f := func(tx, rx uint16) bool {
		l := NewLedger(m, p)
		l.AddTx(int(tx))
		l.AddRx(int(rx))
		want := float64(tx)*m.TxEnergyJ(p.Bits, p.NeighborDistM) +
			float64(rx)*m.RxEnergyJ(p.Bits)
		return almostEqual(l.TotalJ(), want, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTiming(t *testing.T) {
	p := CanonicalPacket()
	// 512 bits at 250 kbit/s = 2.048 ms per slot.
	if got := SlotSeconds(p, DefaultBitrateBps); !almostEqual(got, 2.048e-3, 1e-12) {
		t.Errorf("SlotSeconds = %g", got)
	}
	// The paper's worst 2D-4 delay (45 slots) is ~92 ms.
	if got := DelaySeconds(45, p, DefaultBitrateBps); !almostEqual(got, 0.09216, 1e-12) {
		t.Errorf("DelaySeconds = %g", got)
	}
	if SlotSeconds(p, 0) != 0 || SlotSeconds(p, -1) != 0 {
		t.Error("non-positive bitrate should yield 0")
	}
}
