// Package radio implements the First Order Radio Model the paper
// adopts from LEACH (Heinzelman et al.) to evaluate per-transmission
// power consumption (Section 2, equations (1) and (2)):
//
//	E_Tx(k, d) = E_elec*k + E_amp*k*d^2
//	E_Rx(k)    = E_elec*k
//
// with E_elec = 50 nJ/bit and E_amp = 100 pJ/bit/m^2.
package radio

import "fmt"

// Paper constants of the First Order Radio Model.
const (
	// ElecJPerBit is the electronics energy to run the transmitter or
	// receiver circuitry: 50 nJ/bit.
	ElecJPerBit = 50e-9
	// AmpJPerBitM2 is the transmit-amplifier energy to overcome channel
	// noise: 100 pJ/bit/m^2.
	AmpJPerBitM2 = 100e-12
)

// Model is a first-order radio model instance. The zero value is not
// useful; use Default or NewModel.
type Model struct {
	// ElecJPerBit is E_elec in J/bit.
	ElecJPerBit float64
	// AmpJPerBitM2 is E_amp in J/bit/m^2.
	AmpJPerBitM2 float64
}

// Default returns the paper's model: E_elec = 50 nJ/bit,
// E_amp = 100 pJ/bit/m^2.
func Default() Model {
	return Model{ElecJPerBit: ElecJPerBit, AmpJPerBitM2: AmpJPerBitM2}
}

// NewModel builds a model with custom constants (both must be
// non-negative).
func NewModel(elecJPerBit, ampJPerBitM2 float64) (Model, error) {
	if elecJPerBit < 0 || ampJPerBitM2 < 0 {
		return Model{}, fmt.Errorf("radio: negative energy constants (%g, %g)", elecJPerBit, ampJPerBitM2)
	}
	return Model{ElecJPerBit: elecJPerBit, AmpJPerBitM2: ampJPerBitM2}, nil
}

// TxEnergyJ returns E_Tx(k, d) in Joules for transmitting k bits over
// d meters (equation (1)).
func (m Model) TxEnergyJ(kBits int, dMeters float64) float64 {
	k := float64(kBits)
	return m.ElecJPerBit*k + m.AmpJPerBitM2*k*dMeters*dMeters
}

// RxEnergyJ returns E_Rx(k) in Joules for receiving k bits
// (equation (2)).
func (m Model) RxEnergyJ(kBits int) float64 {
	return m.ElecJPerBit * float64(kBits)
}

// Packet describes one broadcast packet in the evaluation: its length
// in bits and the neighbor distance in meters. The paper's canonical
// evaluation uses k = 512 bits and d = 0.5 m.
type Packet struct {
	// Bits is the packet length k.
	Bits int
	// NeighborDistM is the distance d between adjacent nodes.
	NeighborDistM float64
}

// CanonicalPacket is the paper's Section 4 configuration: 512-bit
// packets, 0.5 m node spacing.
func CanonicalPacket() Packet { return Packet{Bits: 512, NeighborDistM: 0.5} }

// Validate reports whether the packet parameters are usable.
func (p Packet) Validate() error {
	if p.Bits <= 0 {
		return fmt.Errorf("radio: packet length must be positive (got %d bits)", p.Bits)
	}
	if p.NeighborDistM <= 0 {
		return fmt.Errorf("radio: neighbor distance must be positive (got %g m)", p.NeighborDistM)
	}
	return nil
}

// Ledger accumulates transmission and reception counts and converts
// them into Joules under a model and packet. It mirrors the paper's
// accounting: total power = Tx*E_Tx(k, d) + Rx*E_Rx(k).
type Ledger struct {
	Model  Model
	Packet Packet
	// Tx is the total number of transmissions.
	Tx int
	// Rx is the total number of receptions, counted per
	// (transmitter, hearing neighbor) pair — duplicates and collided
	// receptions included, exactly as the paper's Rx column.
	Rx int
}

// NewLedger builds a ledger for the given model and packet.
func NewLedger(m Model, p Packet) Ledger { return Ledger{Model: m, Packet: p} }

// AddTx records n transmissions.
func (l *Ledger) AddTx(n int) { l.Tx += n }

// AddRx records n receptions.
func (l *Ledger) AddRx(n int) { l.Rx += n }

// TotalJ returns the total consumed energy in Joules.
func (l Ledger) TotalJ() float64 {
	return float64(l.Tx)*l.Model.TxEnergyJ(l.Packet.Bits, l.Packet.NeighborDistM) +
		float64(l.Rx)*l.Model.RxEnergyJ(l.Packet.Bits)
}

// Timing. The paper measures delay in slots; to express it in seconds
// a slot must fit one packet transmission at the radio's bitrate.
// 250 kbit/s is the classic low-rate WSN figure (802.15.4-class
// radios of the paper's era).
const DefaultBitrateBps = 250_000

// SlotSeconds returns the duration of one slot: the airtime of one
// packet at the given bitrate.
func SlotSeconds(p Packet, bitrateBps float64) float64 {
	if bitrateBps <= 0 {
		return 0
	}
	return float64(p.Bits) / bitrateBps
}

// DelaySeconds converts a slot-count delay to seconds.
func DelaySeconds(slots int, p Packet, bitrateBps float64) float64 {
	return float64(slots) * SlotSeconds(p, bitrateBps)
}
