package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/store"
)

const lifetimeDoc = `{
  "topology": {"kind": "2d4", "m": 8, "n": 8},
  "sources": [{"x": 4, "y": 4}],
  "lifetime": {
    "budget_j": 0.004,
    "max_rounds": 32,
    "seed": 11,
    "strategies": ["static", "residual"],
    "churn_rates": [0, 0.05],
    "p_new": 0.3
  }
}`

// TestLifetimeEndpointMatchesReport: POST /v1/lifetime renders exactly
// the scenario.LifetimeReport body, and repeats serve from the cache.
func TestLifetimeEndpointMatchesReport(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/lifetime", lifetimeDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	sc, err := loadScenario(lifetimeDoc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.LifetimeReport(context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.EncodeBody(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Error("served lifetime body differs from scenario.LifetimeReport")
	}
	second := post(srv, "/v1/lifetime", lifetimeDoc)
	if second.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(second.Body.Bytes(), want) {
		t.Error("cached lifetime body differs")
	}
}

// TestLifetimeEndpointRouting: lifetime sections are rejected by the
// single-shot endpoints and required by /v1/lifetime.
func TestLifetimeEndpointRouting(t *testing.T) {
	srv := New(Config{})
	for _, path := range []string{"/v1/run", "/v1/scenario", "/v1/sweep"} {
		if w := post(srv, path, lifetimeDoc); w.Code != http.StatusBadRequest {
			t.Errorf("POST %s with a lifetime section: status = %d, want 400", path, w.Code)
		}
	}
	if w := post(srv, "/v1/lifetime", runDoc); w.Code != http.StatusBadRequest {
		t.Errorf("POST /v1/lifetime without a lifetime section: status = %d, want 400", w.Code)
	}
}

// TestLifetimeJobMatchesEndpoint: a lifetime study submitted as an
// async job produces the exact bytes of the synchronous POST
// /v1/lifetime response.
func TestLifetimeJobMatchesEndpoint(t *testing.T) {
	srv := New(Config{})
	doc := fmt.Sprintf(`{"kind": "lifetime", "scenario": %s}`, lifetimeDoc)
	w := post(srv, "/v1/jobs", doc)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status = %d, body %s", w.Code, w.Body)
	}
	st := decodeStatus(t, w.Body.Bytes())
	if st.Total != 4 {
		t.Fatalf("total points = %d, want 4 cells", st.Total)
	}
	fin := pollJobDone(t, srv, st.ID)
	if fin.State != jobs.StateDone {
		t.Fatalf("final status = %+v", fin)
	}
	res := get(srv, "/v1/jobs/"+st.ID+"/result")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status = %d, body %s", res.Code, res.Body)
	}
	sync := post(srv, "/v1/lifetime", lifetimeDoc)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync lifetime: %d", sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Error("lifetime job result differs from synchronous body")
	}
}

// TestStoreEvictionCountersInMetrics: a size-capped store surfaces its
// eviction counters through GET /metrics.
func TestStoreEvictionCountersInMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetMaxBytes(256); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st})
	defer srv.Drain(context.Background())
	// Two cached results overflow the 256-byte cap, forcing an eviction.
	post(srv, "/v1/run", runDoc)
	post(srv, "/v1/lifetime", lifetimeDoc)
	w := get(srv, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	var snap struct {
		Store *store.Stats `json:"store"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Store == nil {
		t.Fatal("no store section in /metrics")
	}
	if snap.Store.MaxBytes != 256 {
		t.Errorf("max_bytes = %d, want 256", snap.Store.MaxBytes)
	}
	if snap.Store.Evictions == 0 {
		t.Error("no evictions counted despite a 256-byte cap")
	}
}

// TestLifetimeStudySizeCap: admission control rejects studies whose
// cells x max_rounds product exceeds the configured bound, on the
// synchronous endpoint and on job submission alike.
func TestLifetimeStudySizeCap(t *testing.T) {
	srv := New(Config{MaxLifetimeRounds: 100})
	if w := post(srv, "/v1/lifetime", lifetimeDoc); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized study: status = %d, want 413 (4 cells x 32 rounds > 100)", w.Code)
	}
	doc := fmt.Sprintf(`{"kind": "lifetime", "scenario": %s}`, lifetimeDoc)
	if w := post(srv, "/v1/jobs", doc); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized job: status = %d, want 413", w.Code)
	}
}
