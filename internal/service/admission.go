package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Admission-control errors, mapped to HTTP statuses by the handlers:
// a full queue sheds with 429 + Retry-After, a draining server
// answers 503.
var (
	errQueueFull = errors.New("service: job queue full")
	errDraining  = errors.New("service: server draining")
)

// pool is the admission-controlled worker pool between the HTTP
// handlers and the simulator: a fixed number of workers pull jobs
// from a bounded queue, and a job that finds the queue full is
// rejected immediately — load is shed at the door instead of piling
// up latency. Each job carries its request's context; a job whose
// context has already expired by the time a worker picks it up is
// skipped, not executed.
type pool struct {
	mu       sync.Mutex
	draining bool
	tasks    chan *task
	wg       sync.WaitGroup
}

type task struct {
	ctx  context.Context
	fn   func(context.Context) ([]byte, error)
	body []byte
	err  error
	done chan struct{}
}

// newPool starts workers goroutines over a queue of capacity queueCap.
// workers <= 0 means GOMAXPROCS; queueCap < 0 means an unbuffered
// queue (a job is admitted only if a worker is idle).
func newPool(workers, queueCap int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &pool{tasks: make(chan *task, queueCap)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if err := t.ctx.Err(); err != nil {
			t.err = err
		} else {
			t.body, t.err = t.fn(t.ctx)
		}
		close(t.done)
	}
}

// Do submits fn and waits for its completion or for ctx to expire,
// whichever is first. It never blocks on admission: a full queue
// returns errQueueFull at once. When ctx expires while the job is
// queued or running, Do returns the context's error immediately; a
// queued job whose context expired is discarded by the worker without
// running.
func (p *pool) Do(ctx context.Context, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	t := &task{ctx: ctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return nil, errDraining
	}
	select {
	case p.tasks <- t:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return nil, errQueueFull
	}
	select {
	case <-t.done:
		return t.body, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth returns the number of admitted jobs no worker has picked
// up yet.
func (p *pool) QueueDepth() int { return len(p.tasks) }

// CloseAdmission stops admission: by the time it returns, every
// subsequent Do fails with errDraining. Safe to call more than once.
func (p *pool) CloseAdmission() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.tasks)
	}
	p.mu.Unlock()
}

// AwaitIdle waits until the workers have finished all admitted jobs,
// queued ones included, or until ctx expires. Call CloseAdmission
// first; the workers only exit once the queue is closed and empty.
func (p *pool) AwaitIdle(ctx context.Context) error {
	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
