package service

import (
	"fmt"
	"testing"
)

func TestCacheEntryBound(t *testing.T) {
	c := newCache(3, 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Oldest two evicted, newest three present.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing", i)
		}
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := newCache(2, 0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // must evict b, the least recently used
	if _, ok := c.Get("b"); ok {
		t.Error("b survived, want it evicted (a was touched)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted, want it kept (recently used)")
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newCache(100, 10)
	c.Put("a", []byte("12345"))
	c.Put("b", []byte("12345"))
	c.Put("c", []byte("12345")) // 15 bytes total: a must go
	if c.Bytes() > 10 {
		t.Errorf("bytes = %d, want <= 10", c.Bytes())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a survived the byte bound")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	// A single body over the bound is kept (never evict the entry
	// just inserted) until something replaces it.
	c.Put("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized single entry dropped, want kept")
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newCache(4, 0)
	c.Put("a", []byte("11"))
	c.Put("a", []byte("2222"))
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	if c.Bytes() != 4 {
		t.Errorf("bytes = %d, want 4", c.Bytes())
	}
	if body, _ := c.Get("a"); string(body) != "2222" {
		t.Errorf("body = %q", body)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(-1, 0)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("disabled cache reports len=%d bytes=%d", c.Len(), c.Bytes())
	}
}
