package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
)

// post drives one request through the full handler stack (middleware
// included) and returns the recorder.
func post(srv *Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func get(srv *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const runDoc = `{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": 3, "y": 3}]}`

func TestRunEndpointMatchesSim(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/run", runDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	var rep scenario.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	direct, err := sim.Run(grid.NewMesh2D4(8, 8), core.ForTopology(grid.Mesh2D4), grid.C2(3, 3), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Runs[0]
	if r.Tx != direct.Tx || r.Rx != direct.Rx || r.Delay != direct.Delay || r.EnergyJ != direct.EnergyJ {
		t.Errorf("served run %+v != direct %v", r, direct)
	}
	if rep.Protocol != "paper-2d4" {
		t.Errorf("protocol = %q", rep.Protocol)
	}
}

func TestCacheHitDeterminism(t *testing.T) {
	srv := New(Config{})
	first := post(srv, "/v1/run", runDoc)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first: status %d cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	// Byte-identical repeat.
	second := post(srv, "/v1/run", runDoc)
	if second.Code != http.StatusOK {
		t.Fatalf("second: status %d", second.Code)
	}
	if second.Header().Get("X-Cache") != "hit" {
		t.Errorf("second X-Cache = %q, want hit", second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from the original response")
	}
	// Semantically identical but byte-different: reordered fields,
	// explicit defaults, uppercase names, whitespace.
	variant := `{
		"sources": [{"x": 3, "y": 3, "z": 1}],
		"protocol": "PAPER",
		"packet_bits": 512,
		"topology": {"n": 8, "m": 8, "kind": "2D4"}
	}`
	third := post(srv, "/v1/run", variant)
	if third.Code != http.StatusOK {
		t.Fatalf("third: status %d, body %s", third.Code, third.Body)
	}
	if third.Header().Get("X-Cache") != "hit" {
		t.Errorf("variant X-Cache = %q, want hit (canonicalization failed)", third.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Error("variant body differs from the original response")
	}
	if got := srv.metrics.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	srv := New(Config{Workers: 4, QueueCap: 16})
	release := make(chan struct{})
	srv.hookBeforeJob = func() { <-release }

	const clients = 8
	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = post(srv, "/v1/run", runDoc)
		}(i)
	}
	// Wait until all clients are inside the handler, then let the one
	// leader run.
	waitFor(t, "all clients in flight", func() bool {
		return srv.metrics.inFlight.Load() == clients
	})
	close(release)
	wg.Wait()

	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), results[0].Body.Bytes()) {
			t.Errorf("client %d body differs", i)
		}
	}
	if got := srv.metrics.executions.Load(); got != 1 {
		t.Errorf("executions = %d, want exactly 1 for %d identical concurrent requests", got, clients)
	}
	// A straggler after the burst is a plain cache hit.
	late := post(srv, "/v1/run", runDoc)
	if late.Header().Get("X-Cache") != "hit" {
		t.Errorf("straggler X-Cache = %q, want hit", late.Header().Get("X-Cache"))
	}
}

func TestQueueFullSheds429(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv.hookBeforeJob = func() {
		entered <- struct{}{}
		<-release
	}
	defer close(release)

	doc := func(x int) string {
		return fmt.Sprintf(`{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": %d, "y": 1}]}`, x)
	}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	wg.Add(1)
	go func() { defer wg.Done(); codes[0] = post(srv, "/v1/run", doc(1)).Code }()
	<-entered // the only worker is now occupied
	wg.Add(1)
	go func() { defer wg.Done(); codes[1] = post(srv, "/v1/run", doc(2)).Code }()
	waitFor(t, "second job queued", func() bool { return srv.pool.QueueDepth() == 1 })

	// Worker busy, queue full: the third distinct request must be shed.
	w := post(srv, "/v1/run", doc(3))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	}
	if got := srv.metrics.shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	release <- struct{}{} // let job 1 finish
	release <- struct{}{} // let job 2 finish (its hook runs next)
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Errorf("blocked requests finished with %v, want 200s", codes)
	}
}

func TestDeadlineExceeded504(t *testing.T) {
	srv := New(Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	srv.hookBeforeJob = func() { <-release }

	req := httptest.NewRequest(http.MethodPost, "/v1/run?timeout_ms=25", strings.NewReader(runDoc))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "deadline") {
		t.Errorf("body = %s, want deadline error", w.Body)
	}
}

func TestInvalidTimeoutParam(t *testing.T) {
	srv := New(Config{})
	for _, v := range []string{"abc", "-5", "0"} {
		req := httptest.NewRequest(http.MethodPost, "/v1/run?timeout_ms="+v, strings.NewReader(runDoc))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("timeout_ms=%s: status = %d, want 400", v, w.Code)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := New(Config{})
	cases := []struct {
		name, path, body, want string
	}{
		{"malformed json", "/v1/run", `{"topology": {`, "scenario"},
		{"unknown field", "/v1/run", `{"topolgy": {"kind": "2d4", "m": 4, "n": 4}}`, "unknown field"},
		{"unknown topology", "/v1/run", `{"topology": {"kind": "hex", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}]}`, "unknown topology"},
		{"unknown protocol", "/v1/run", `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "protocol": "gossip", "sources": [{"x": 1, "y": 1}]}`, "unknown protocol"},
		{"run without source", "/v1/run", `{"topology": {"kind": "2d4", "m": 4, "n": 4}}`, "exactly one source"},
		{"run with pipeline", "/v1/run", `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}], "pipeline": {"packets": 3}}`, "/v1/scenario"},
		{"sweep with sources", "/v1/sweep", `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}]}`, "every node"},
		{"source outside mesh", "/v1/run", `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 40, "y": 1}]}`, "outside"},
		{"paper on irregular", "/v1/run", `{"topology": {"kind": "irregular", "m": 4, "n": 4, "radius": 1.2}, "sources": [{"x": 1, "y": 1}]}`, "regular"},
	}
	for _, tc := range cases {
		w := post(srv, tc.path, tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body %s", tc.name, w.Code, w.Body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: non-JSON error body %s", tc.name, w.Body)
			continue
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q, want it to mention %q", tc.name, e.Error, tc.want)
		}
	}
}

func TestOversizedBody413(t *testing.T) {
	srv := New(Config{MaxBodyBytes: 128})
	big := `{"name": "` + strings.Repeat("x", 256) + `", "topology": {"kind": "2d4", "m": 4, "n": 4}, "sources": [{"x": 1, "y": 1}]}`
	w := post(srv, "/v1/run", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "body exceeds") {
		t.Errorf("body = %s", w.Body)
	}
}

func TestOversizedMesh413(t *testing.T) {
	srv := New(Config{MaxNodes: 100})
	w := post(srv, "/v1/run", `{"topology": {"kind": "2d4", "m": 50, "n": 50}, "sources": [{"x": 1, "y": 1}]}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "mesh too large") {
		t.Errorf("body = %s", w.Body)
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	srv := New(Config{})
	if w := get(srv, "/v1/run"); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status = %d, want 405", w.Code)
	}
	if w := post(srv, "/v1/nope", runDoc); w.Code != http.StatusNotFound {
		t.Errorf("POST /v1/nope: status = %d, want 404", w.Code)
	}
}

func TestSweepEndpointMatchesAnalysis(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/sweep", `{"topology": {"kind": "2d4", "m": 6, "n": 4}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var rep scenario.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 24 {
		t.Fatalf("runs = %d, want 24 (one per source)", len(rep.Runs))
	}
	topo := grid.NewMesh2D4(6, 4)
	sum, err := analysis.Sweep(topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestEnergyJ != sum.Best.EnergyJ || rep.WorstEnergyJ != sum.Worst.EnergyJ || rep.MaxDelay != sum.MaxDelay {
		t.Errorf("summary best=%g worst=%g delay=%d, analysis says best=%g worst=%g delay=%d",
			rep.BestEnergyJ, rep.WorstEnergyJ, rep.MaxDelay,
			sum.Best.EnergyJ, sum.Worst.EnergyJ, sum.MaxDelay)
	}
	// Row order is the dense source order of the topology.
	for i, r := range rep.Runs {
		src := topo.At(i)
		if r.Source.X != src.X || r.Source.Y != src.Y {
			t.Fatalf("run %d source = %+v, want %s", i, r.Source, src)
		}
	}
	if got := srv.metrics.sweepPending.Load(); got != 0 {
		t.Errorf("sweep_pending = %d after sweep, want 0", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{})
	if w := get(srv, "/healthz"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz: %d %s", w.Code, w.Body)
	}
	post(srv, "/v1/run", runDoc)
	post(srv, "/v1/run", runDoc) // cache hit
	post(srv, "/v1/run", `{"topology": {`)

	w := get(srv, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	var snap snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests["run"]["200"] != 2 || snap.Requests["run"]["400"] != 1 {
		t.Errorf("run requests = %v, want 200:2 400:1", snap.Requests["run"])
	}
	if snap.Requests["healthz"]["200"] != 1 {
		t.Errorf("healthz requests = %v", snap.Requests["healthz"])
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.CacheEntries != 1 || snap.CacheBytes <= 0 {
		t.Errorf("cache entries/bytes = %d/%d", snap.CacheEntries, snap.CacheBytes)
	}
	if snap.Executions != 1 {
		t.Errorf("executions = %d, want 1", snap.Executions)
	}
	// The /metrics request itself is the only one in flight.
	if snap.InFlight != 1 {
		t.Errorf("in_flight = %d, want 1 (the /metrics request)", snap.InFlight)
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue_depth = %d, want 0", snap.QueueDepth)
	}
	// Every finished request landed in exactly one latency bucket.
	var observed uint64
	for _, b := range snap.Latency {
		observed += b.Count
	}
	var counted uint64
	for _, byStatus := range snap.Requests {
		for _, n := range byStatus {
			counted += n
		}
	}
	if observed != counted {
		t.Errorf("latency histogram holds %d requests, counters hold %d", observed, counted)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCap: 2})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.hookBeforeJob = func() {
		entered <- struct{}{}
		<-release
	}

	var inFlight *httptest.ResponseRecorder
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); inFlight = post(srv, "/v1/run", runDoc) }()
	<-entered // the request is now executing

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	// Once /healthz reports draining, admission is closed.
	waitFor(t, "healthz to report draining", func() bool {
		return get(srv, "/healthz").Code == http.StatusServiceUnavailable
	})
	if w := post(srv, "/v1/run", `{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": 5, "y": 5}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status = %d, want 503; body %s", w.Code, w.Body)
	}
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v while a job was still running", err)
	default:
	}

	close(release)
	wg.Wait()
	if inFlight.Code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", inFlight.Code)
	}
	if err := <-drainErr; err != nil {
		t.Errorf("Drain = %v, want nil", err)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv := New(Config{AccessLog: &buf})
	post(srv, "/v1/run", runDoc)
	post(srv, "/v1/run", runDoc)
	get(srv, "/healthz")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var entry struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMs  float64 `json:"dur_ms"`
		Bytes  int     `json:"bytes"`
		Cache  string  `json:"cache"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("line %q: %v", lines[1], err)
	}
	if entry.Method != "POST" || entry.Path != "/v1/run" || entry.Status != 200 {
		t.Errorf("entry = %+v", entry)
	}
	if entry.Cache != "hit" {
		t.Errorf("second request logged cache %q, want hit", entry.Cache)
	}
	if entry.Bytes <= 0 || entry.Time == "" {
		t.Errorf("entry = %+v, want bytes and time", entry)
	}
}

func TestScenarioEndpointFullDocument(t *testing.T) {
	srv := New(Config{})
	doc := `{
		"name": "full",
		"topology": {"kind": "2d4", "m": 8, "n": 8},
		"sources": [{"x": 4, "y": 4}],
		"pipeline": {"packets": 3},
		"budget_j": 2.0,
		"convergecast": true
	}`
	w := post(srv, "/v1/scenario", doc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var rep scenario.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.PipelineDelivered || rep.LifetimeRounds < 1 || rep.ConvergeSlots < 1 {
		t.Errorf("report = %+v, want pipeline, lifetime and convergecast results", rep)
	}
}

const reliabilityDoc = `{
	"topology": {"kind": "2d4", "m": 8, "n": 6},
	"sources": [{"x": 4, "y": 3}],
	"disable_repair": true,
	"reliability": {"seed": 9, "replications": 8, "loss_rates": [0, 0.2]}
}`

// /v1/run exposes Monte Carlo reliability studies: the response carries
// the aggregated points, and canonicalization makes equivalent grids
// (reordered, duplicated rates) hit the same cache entry.
func TestRunEndpointReliability(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/run", reliabilityDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var rep scenario.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Reliability) != 2 {
		t.Fatalf("reliability points = %d, want 2", len(rep.Reliability))
	}
	if rep.Reliability[0].Reachability.Mean != 1 {
		t.Errorf("lossless point: %+v", rep.Reliability[0])
	}
	if rep.Reliability[1].Reachability.Mean >= 1 {
		t.Errorf("20%% loss did not degrade reachability: %+v", rep.Reliability[1])
	}
	// Byte-different but equivalent study: duplicated + reordered rates.
	equiv := strings.Replace(reliabilityDoc, `[0, 0.2]`, `[0.2, 0, 0.2]`, 1)
	w2 := post(srv, "/v1/run", equiv)
	if w2.Code != http.StatusOK {
		t.Fatalf("equivalent doc status = %d", w2.Code)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("equivalent reliability doc X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached reliability body differs")
	}
}

func TestSweepEndpointRejectsReliability(t *testing.T) {
	srv := New(Config{})
	doc := `{"topology": {"kind": "2d4", "m": 4, "n": 4}, "reliability": {"replications": 2}}`
	w := post(srv, "/v1/sweep", doc)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "reliability") {
		t.Errorf("body %s does not name the offending section", w.Body)
	}
}

// A misspelled field answers 400 with the field name and a suggestion —
// it must not silently canonicalize into a cache hit for the default
// configuration.
func TestUnknownFieldAnswers400WithHint(t *testing.T) {
	srv := New(Config{})
	doc := `{"topology": {"kind": "2d4", "m": 8, "n": 8}, "sources": [{"x": 3, "y": 3}], "lossrate": 0.1}`
	w := post(srv, "/v1/run", doc)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "lossrate") || !strings.Contains(w.Body.String(), "loss_rates") {
		t.Errorf("body %s missing field name or suggestion", w.Body)
	}
	// The well-formed document must still be a cold miss afterwards:
	// nothing about the typo run may have polluted the cache.
	w2 := post(srv, "/v1/run", runDoc)
	if got := w2.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first clean request X-Cache = %q, want miss", got)
	}
}

func TestReliabilityStudySizeCap(t *testing.T) {
	srv := New(Config{MaxReliabilityJobs: 10})
	doc := `{
		"topology": {"kind": "2d4", "m": 4, "n": 4},
		"sources": [{"x": 1, "y": 1}],
		"reliability": {"replications": 6, "loss_rates": [0, 0.1]}
	}`
	w := post(srv, "/v1/run", doc)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", w.Code, w.Body)
	}
	small := strings.Replace(doc, `"replications": 6`, `"replications": 5`, 1)
	if w := post(srv, "/v1/run", small); w.Code != http.StatusOK {
		t.Fatalf("10-job study status = %d, body %s", w.Code, w.Body)
	}
}
