package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	// Queue capacity 6 fits all 8 submissions (2 in flight + 6 queued)
	// even if every goroutine enqueues before a worker dequeues —
	// capacity 4 shed load with "queue full" on scheduling luck.
	p := newPool(2, 6)
	defer drain(t, p)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := p.Do(context.Background(), func(context.Context) ([]byte, error) {
				n.Add(1)
				return []byte("ok"), nil
			})
			if err != nil || string(body) != "ok" {
				t.Errorf("Do = %q, %v", body, err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 8 {
		t.Errorf("ran %d jobs, want 8", n.Load())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := newPool(1, 1)
	defer drain(t, p)
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	// Worker busy; this one fills the queue slot.
	go p.Do(context.Background(), func(context.Context) ([]byte, error) { return nil, nil })
	deadline := time.Now().Add(5 * time.Second)
	for len(p.tasks) != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Do(context.Background(), func(context.Context) ([]byte, error) { return nil, nil }); !errors.Is(err, errQueueFull) {
		t.Errorf("err = %v, want errQueueFull", err)
	}
}

func TestPoolSkipsExpiredQueuedJob(t *testing.T) {
	p := newPool(1, 2)
	defer drain(t, p)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	// Queue a job, then expire its context before any worker is free:
	// the caller returns at once and the worker must discard the job
	// without running it.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, func(context.Context) ([]byte, error) {
			ran.Store(true)
			return nil, nil
		})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(p.tasks) != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	drain(t, p) // the worker consumes the dead task on the way out
	if ran.Load() {
		t.Error("expired queued job was executed")
	}
}

func TestPoolDrainRejectsAndWaits(t *testing.T) {
	p := newPool(1, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		_, err := p.Do(context.Background(), func(context.Context) ([]byte, error) {
			close(started)
			<-release
			return nil, nil
		})
		result <- err
	}()
	<-started
	p.CloseAdmission()
	if _, err := p.Do(context.Background(), func(context.Context) ([]byte, error) { return nil, nil }); !errors.Is(err, errDraining) {
		t.Fatalf("err = %v, want errDraining", err)
	}
	// AwaitIdle must not return while the job is still running.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := p.AwaitIdle(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AwaitIdle = %v, want deadline exceeded while job runs", err)
	}
	cancel()
	close(release)
	if err := p.AwaitIdle(context.Background()); err != nil {
		t.Fatalf("AwaitIdle after release = %v", err)
	}
	if err := <-result; err != nil {
		t.Errorf("admitted job err = %v, want nil (drain waits for it)", err)
	}
}

func drain(t *testing.T, p *pool) {
	t.Helper()
	p.CloseAdmission()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.AwaitIdle(ctx); err != nil {
		t.Fatalf("pool did not drain: %v", err)
	}
}
