// Package service is the HTTP serving layer over the simulator: a
// deterministic-simulation service with result caching, admission
// control and metrics, built to serve many clients from one process.
//
// Three POST endpoints accept the declarative scenario JSON of
// internal/scenario as their wire format:
//
//   - /v1/run — a single broadcast (exactly one source), optionally
//     with a Monte Carlo reliability study (a "reliability" section:
//     seeded replications under packet loss and node failures,
//     aggregated into confidence-interval curves by internal/mc)
//   - /v1/scenario — a full scenario document (pipelining, failures,
//     lifetime, convergecast)
//   - /v1/sweep — an all-sources sweep on the parallel sweep engine,
//     one row per source plus the paper's best/worst/max-delay summary
//
// Because every simulation is a pure function of its canonicalized
// request, responses are perfectly cacheable: requests are normalized
// (scenario.Canonical) and hashed, byte-different but semantically
// identical documents map to one cache key, and a size-bounded LRU
// serves repeats without simulating. Concurrent identical requests are
// deduplicated in flight — a burst of N equal requests costs exactly
// one execution. Admission control bounds the work accepted: jobs run
// on a fixed worker pool behind a bounded queue, a full queue sheds
// load with 429 + Retry-After, request deadlines propagate through
// context into the simulation layers, and Drain stops admission and
// waits for in-flight work during graceful shutdown. /healthz and
// /metrics expose liveness and the counters in metrics.go; every
// request is access-logged as one JSON line.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

// Config sizes the service; zero values mean the stated defaults.
type Config struct {
	// Workers is the simulation worker pool size (<= 0: GOMAXPROCS).
	Workers int
	// QueueCap is the bounded job queue in front of the pool; a job
	// arriving to a full queue is shed with 429. 0 means 64; negative
	// means no queue (admit only onto an idle worker).
	QueueCap int
	// CacheEntries bounds the result cache (0: 1024; negative:
	// caching disabled). CacheBytes bounds the cached body bytes
	// (<= 0: 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// DefaultTimeout is the per-request deadline when the client sets
	// none (0: 30s); a client may lower or raise it with ?timeout_ms=
	// up to MaxTimeout (0: 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps the request body (<= 0: 1 MiB) and MaxNodes
	// caps the requested mesh size (<= 0: 131072 nodes); both reject
	// with 413.
	MaxBodyBytes int64
	MaxNodes     int
	// MaxReliabilityJobs caps the total simulation jobs one reliability
	// study may request — replications x loss rates x failure rates
	// (<= 0: 65536); larger studies reject with 413.
	MaxReliabilityJobs int
	// MaxLifetimeRounds caps the total broadcast rounds one lifetime
	// study may request — cells x max_rounds (<= 0: 4194304); larger
	// studies reject with 413.
	MaxLifetimeRounds int
	// SweepWorkers sizes the per-request sweep engine of /v1/sweep
	// (<= 0: GOMAXPROCS).
	SweepWorkers int
	// Store, when non-nil, is the durable content-addressed result
	// store: an L2 behind the LRU shared by every instance pointed at
	// the same directory, and the durability layer of the job
	// subsystem. The server owns it from here — Drain closes it last.
	Store *store.Store
	// Jobs, when non-nil, is the async job manager behind /v1/jobs.
	// Nil constructs one over Store with JobWorkers worker loops.
	// Either way the server owns it: Drain checkpoints and closes it.
	Jobs *jobs.Manager
	// JobWorkers sizes the constructed job manager's worker loops
	// (<= 0: GOMAXPROCS); ignored when Jobs is supplied.
	JobWorkers int
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 17
	}
	if c.MaxReliabilityJobs <= 0 {
		c.MaxReliabilityJobs = 1 << 16
	}
	if c.MaxLifetimeRounds <= 0 {
		c.MaxLifetimeRounds = 1 << 22
	}
	return c
}

// Server is the HTTP simulation service. Construct with New; it
// implements http.Handler and is safe for concurrent use.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *cache
	flight   flightGroup
	pool     *pool
	jobs     *jobs.Manager
	metrics  *metrics
	draining atomic.Bool
	logMu    sync.Mutex

	// hookBeforeJob, when non-nil, runs inside the worker at the start
	// of every admitted job. Tests use it to hold jobs in flight.
	hookBeforeJob func()
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newCache(cfg.CacheEntries, cfg.CacheBytes),
		pool:    newPool(cfg.Workers, cfg.QueueCap),
		metrics: newMetrics(),
	}
	s.jobs = cfg.Jobs
	if s.jobs == nil {
		s.jobs = jobs.NewManager(jobs.Config{Store: cfg.Store, Workers: cfg.JobWorkers})
	}
	s.mux.HandleFunc("POST /v1/run", s.handleSim("run", prepRun, s.execScenario))
	s.mux.HandleFunc("POST /v1/scenario", s.handleSim("scenario", prepScenario, s.execScenario))
	s.mux.HandleFunc("POST /v1/sweep", s.handleSim("sweep", prepSweep, s.execSweep))
	s.mux.HandleFunc("POST /v1/lifetime", s.handleSim("lifetime", prepLifetime, s.execLifetime))
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Drain stops admitting jobs, marks the server unhealthy — subsequent
// simulation requests answer 503, /healthz reports draining — and
// waits for every admitted job to finish or for ctx to expire. Call
// it during graceful shutdown, after http.Server.Shutdown has stopped
// accepting connections. Once /healthz reports draining, admission is
// guaranteed closed.
//
// The shutdown order is: close pool admission, mark draining, stop
// the job subsystem (its in-flight points drain to the store and
// every unfinished job is checkpointed for the next process's
// Recover), await the request pool, and only then close the store —
// nothing writes to it after both the job workers and the pool are
// idle.
func (s *Server) Drain(ctx context.Context) error {
	s.pool.CloseAdmission()
	s.draining.Store(true)
	jerr := s.jobs.Close(ctx)
	perr := s.pool.AwaitIdle(ctx)
	var serr error
	if s.cfg.Store != nil {
		serr = s.cfg.Store.Close()
	}
	return errors.Join(jerr, perr, serr)
}

// ServeHTTP dispatches to the endpoint handlers, wrapped in the
// in-flight gauge, the per-endpoint request counters, the latency
// histogram and the access log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.inFlight.Add(1)
	rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.metrics.inFlight.Add(-1)
	elapsed := time.Since(start)
	s.metrics.ObserveRequest(endpointLabel(r.URL.Path), rec.status, elapsed)
	s.logAccess(r, rec, elapsed)
}

func endpointLabel(path string) string {
	switch path {
	case "/v1/run":
		return "run"
	case "/v1/scenario":
		return "scenario"
	case "/v1/sweep":
		return "sweep"
	case "/v1/lifetime":
		return "lifetime"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	default:
		if path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/") {
			return "jobs"
		}
		return "other"
	}
}

// responseRecorder captures the status and body size for metrics and
// the access log.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *responseRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// streaming handlers can flush through the middleware.
func (r *responseRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) logAccess(r *http.Request, rec *responseRecorder, elapsed time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(struct {
		Time   string  `json:"time"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMs  float64 `json:"dur_ms"`
		Bytes  int     `json:"bytes"`
		Cache  string  `json:"cache,omitempty"`
	}{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		Method: r.Method,
		Path:   r.URL.Path,
		Status: rec.status,
		DurMs:  float64(elapsed.Microseconds()) / 1000,
		Bytes:  rec.bytes,
		Cache:  rec.Header().Get("X-Cache"),
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// prep functions enforce each endpoint's request shape on the
// canonicalized scenario before any simulation work is admitted.
func prepRun(sc scenario.Scenario) error {
	if len(sc.Sources) != 1 {
		return fmt.Errorf("POST /v1/run needs exactly one source (got %d); use /v1/sweep for all-sources sweeps", len(sc.Sources))
	}
	if sc.Pipeline != nil || sc.BudgetJ > 0 || sc.Convergecast {
		return errors.New("POST /v1/run is a single broadcast; use /v1/scenario for pipeline, budget or convergecast runs")
	}
	if sc.Lifetime != nil {
		return errors.New("POST /v1/run is a single broadcast; run lifetime studies through /v1/lifetime")
	}
	return nil
}

func prepScenario(sc scenario.Scenario) error {
	if sc.Lifetime != nil {
		return errors.New("POST /v1/scenario runs single-shot documents; run lifetime studies through /v1/lifetime")
	}
	return nil
}

func prepSweep(sc scenario.Scenario) error {
	if len(sc.Sources) != 0 {
		return fmt.Errorf("POST /v1/sweep broadcasts from every node; drop the %d explicit sources or use /v1/run", len(sc.Sources))
	}
	if sc.Pipeline != nil || sc.BudgetJ > 0 || sc.Convergecast {
		return errors.New("POST /v1/sweep is a plain all-sources sweep; use /v1/scenario for pipeline, budget or convergecast runs")
	}
	if sc.Reliability != nil {
		return errors.New("POST /v1/sweep is deterministic; run reliability studies through /v1/run or /v1/scenario")
	}
	if sc.Lifetime != nil {
		return errors.New("POST /v1/sweep is a plain all-sources sweep; run lifetime studies through /v1/lifetime")
	}
	return nil
}

func prepLifetime(sc scenario.Scenario) error {
	if sc.Lifetime == nil {
		return errors.New(`POST /v1/lifetime needs a "lifetime" section; single-shot documents go to /v1/run or /v1/scenario`)
	}
	return nil
}

// handleSim is the shared request path of the three simulation
// endpoints: decode and canonicalize, validate, consult the cache,
// deduplicate in flight, admit to the pool, execute, cache, respond.
func (s *Server) handleSim(endpoint string, prep func(scenario.Scenario) error, exec func(ctx context.Context, sc scenario.Scenario) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		sc, err := scenario.Load(r.Body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.fail(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
				return
			}
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		sc = sc.Canonical()
		if err := prep(sc); err != nil {
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		if status, msg := s.checkLimits(sc); status != 0 {
			s.fail(w, status, msg)
			return
		}
		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}

		key, err := requestKey(endpoint, sc)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err.Error())
			return
		}
		if body, ok := s.cache.Get(key); ok {
			s.metrics.cacheHits.Add(1)
			s.writeBody(w, "hit", body)
			return
		}
		s.metrics.cacheMisses.Add(1)
		// The durable store is the L2 behind the LRU: results computed
		// by a previous process, a finished /v1/jobs job, or another
		// instance sharing the directory serve without simulating.
		if s.cfg.Store != nil {
			if body, ok := s.cfg.Store.Get(key); ok {
				s.cache.Put(key, body)
				s.writeBody(w, "store", body)
				return
			}
		}

		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		body, joined, err := s.flight.Do(ctx, key, func() ([]byte, error) {
			// Re-check the cache as the flight leader: a request that
			// missed the cache just before a previous leader for the
			// same key stored its result must not simulate again.
			if body, ok := s.cache.Get(key); ok {
				return body, nil
			}
			if s.cfg.Store != nil {
				if body, ok := s.cfg.Store.Get(key); ok {
					return body, nil
				}
			}
			return s.pool.Do(ctx, func(ctx context.Context) ([]byte, error) {
				if s.hookBeforeJob != nil {
					s.hookBeforeJob()
				}
				s.metrics.executions.Add(1)
				v, err := exec(ctx, sc)
				if err != nil {
					return nil, err
				}
				b, err := json.MarshalIndent(v, "", "  ")
				if err != nil {
					return nil, err
				}
				return append(b, '\n'), nil
			})
		})
		if err != nil {
			s.failJob(w, err)
			return
		}
		if !joined {
			s.cache.Put(key, body)
			if s.cfg.Store != nil {
				// Write-through; a full or failing disk degrades the
				// store to a cache layer, never the response.
				s.cfg.Store.Put(key, body)
			}
		}
		s.writeBody(w, "miss", body)
	}
}

// checkLimits enforces the size caps shared by the synchronous
// endpoints and job submission on a canonicalized scenario. It returns
// (0, "") for an admissible document, else the HTTP status and
// message to reject with.
func (s *Server) checkLimits(sc scenario.Scenario) (int, string) {
	topo, _, _, err := sc.Compile()
	if err != nil {
		return http.StatusBadRequest, err.Error()
	}
	if n := topo.NumNodes(); n > s.cfg.MaxNodes {
		return http.StatusRequestEntityTooLarge,
			fmt.Sprintf("mesh too large: %d nodes (limit %d)", n, s.cfg.MaxNodes)
	}
	if rel := sc.Reliability; rel != nil {
		// The grids are canonical here, so the product is the exact
		// number of simulation jobs the study would admit.
		jobs := rel.Replications * len(rel.LossRates) * len(rel.FailureRates)
		if jobs > s.cfg.MaxReliabilityJobs {
			return http.StatusRequestEntityTooLarge,
				fmt.Sprintf("reliability study too large: %d simulation jobs (limit %d)", jobs, s.cfg.MaxReliabilityJobs)
		}
	}
	if sc.Lifetime != nil {
		// Every lifetime round is one full broadcast, so cells x
		// max_rounds is the study's worst-case simulation count. Both
		// factors are canonical here.
		cells, err := sc.LifetimeCellCount()
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		rounds, err := sc.LifetimeMaxRounds()
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		if total := cells * rounds; total > s.cfg.MaxLifetimeRounds {
			return http.StatusRequestEntityTooLarge,
				fmt.Sprintf("lifetime study too large: %d cells x %d rounds = %d broadcasts (limit %d)",
					cells, rounds, total, s.cfg.MaxLifetimeRounds)
		}
	}
	return 0, ""
}

// requestTimeout resolves the per-request deadline: ?timeout_ms=
// overrides the default, clamped to MaxTimeout.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	d := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			return 0, fmt.Errorf("invalid timeout_ms %q: need a positive integer", v)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// requestKey is the cache/singleflight identity of a canonicalized
// request: the endpoint (the three endpoints answer different shapes)
// plus the SHA-256 of the canonical JSON encoding. It delegates to
// store.Key so the synchronous path, the durable store and the job
// subsystem share one identity — a finished job IS a cache entry for
// the equivalent synchronous request.
func requestKey(endpoint string, sc scenario.Scenario) (string, error) {
	return store.Key(endpoint, sc)
}

// execScenario runs /v1/run and /v1/scenario bodies; the shape checks
// in prepRun make the former a single sim.Run.
func (s *Server) execScenario(ctx context.Context, sc scenario.Scenario) (any, error) {
	rep, err := sc.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// execSweep broadcasts from every node on the parallel sweep engine
// and reports one row per source plus the paper's summary statistics —
// the shared scenario.SweepReport path, so the synchronous endpoint,
// the job subsystem and the wsnsweep CLI render byte-identical bodies.
// The request context propagates into the engine, so an expired
// deadline stops the sweep between jobs.
func (s *Server) execSweep(ctx context.Context, sc scenario.Scenario) (any, error) {
	rep, err := sc.SweepReport(ctx, s.cfg.SweepWorkers, s.metrics.SweepGauge())
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// execLifetime runs a multi-round lifetime study on the sweep engine's
// worker pool — the shared scenario.LifetimeReport path, so the
// synchronous endpoint, the job subsystem and the wsnlife CLI render
// byte-identical bodies.
func (s *Server) execLifetime(ctx context.Context, sc scenario.Scenario) (any, error) {
	rep, err := sc.LifetimeReport(ctx, s.cfg.SweepWorkers, s.metrics.SweepGauge())
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.QueueDepth = s.pool.QueueDepth()
	snap.CacheEntries = s.cache.Len()
	snap.CacheBytes = s.cache.Bytes()
	snap.CacheEvictions = s.cache.Evictions()
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		snap.Store = &st
	}
	js := s.jobs.Stats()
	snap.Jobs = &js
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

func (s *Server) writeBody(w http.ResponseWriter, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// failJob maps an admission or execution failure to its HTTP status:
// shed load answers 429 with a Retry-After hint, a draining server
// 503, an expired deadline 504; anything else is a genuine execution
// failure, 500.
func (s *Server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, "server overloaded: job queue full")
	case errors.Is(err, errDraining):
		s.fail(w, http.StatusServiceUnavailable, "server draining")
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, "request cancelled")
	default:
		s.fail(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Write(append(body, '\n'))
}
