package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// The serving hot path on the paper's canonical 512-node mesh
// (2d4, 32x16): Cold measures full simulations (cache disabled,
// sources cycle over the mesh), Cached measures the cache hit path a
// warm service spends nearly all of its time in. The gap between the
// two is the cache's leverage; EXPERIMENTS.md tracks both.

func servedRun(b *testing.B, srv *Server, doc string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(doc))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
}

func BenchmarkServedRunCold(b *testing.B) {
	srv := New(Config{CacheEntries: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, y := 1+i%32, 1+(i/32)%16
		servedRun(b, srv, fmt.Sprintf(
			`{"topology": {"kind": "2d4", "m": 32, "n": 16}, "sources": [{"x": %d, "y": %d}]}`, x, y))
	}
}

func BenchmarkServedRunCached(b *testing.B) {
	srv := New(Config{})
	doc := `{"topology": {"kind": "2d4", "m": 32, "n": 16}, "sources": [{"x": 16, "y": 8}]}`
	servedRun(b, srv, doc) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servedRun(b, srv, doc)
	}
}

func BenchmarkServedSweepCold(b *testing.B) {
	srv := New(Config{CacheEntries: -1})
	doc := `{"topology": {"kind": "2d4", "m": 32, "n": 16}}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(doc))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
}

func BenchmarkServedSweepCached(b *testing.B) {
	srv := New(Config{})
	doc := `{"topology": {"kind": "2d4", "m": 32, "n": 16}}`
	req := func() {
		r := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(doc))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d", w.Code)
		}
	}
	req() // warm: one full 512-source sweep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req()
	}
}
