package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/scenario"
)

// This file is the HTTP face of the async job subsystem
// (internal/jobs): submit a long-running study once, then poll or
// stream it instead of holding a connection open.
//
//	POST /v1/jobs                 {"kind": "sweep", "scenario": {...}} -> 202 + status
//	GET  /v1/jobs/{id}            -> status (state, done/total points)
//	GET  /v1/jobs/{id}/result     -> the merged body, byte-identical to POST /v1/{kind}
//	GET  /v1/jobs/{id}/events     -> SSE: one "point" event per finished grid
//	                                 point, then "done" or "failed"
//
// Submission is idempotent (the job id is the hash of the canonical
// document) and a job whose result is already durable completes
// instantly, so clients may re-submit freely after a disconnect or a
// server restart.

// jobSubmitRequest is the POST /v1/jobs wire format.
type jobSubmitRequest struct {
	// Kind selects the shape: "run", "scenario", "sweep" or "lifetime",
	// with the same document rules as the synchronous POST /v1/<kind>.
	Kind string `json:"kind"`
	// Scenario is the declarative scenario document.
	Scenario json.RawMessage `json:"scenario"`
}

// prepForKind returns the synchronous endpoint's shape check for a job
// kind, so a job rejects exactly the documents POST /v1/<kind> would.
func prepForKind(kind string) (func(scenario.Scenario) error, bool) {
	switch kind {
	case jobs.KindRun:
		return prepRun, true
	case jobs.KindScenario:
		return prepScenario, true
	case jobs.KindSweep:
		return prepSweep, true
	case jobs.KindLifetime:
		return prepLifetime, true
	}
	return nil, false
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobSubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if dec.More() {
		s.fail(w, http.StatusBadRequest, "trailing content after the job document")
		return
	}
	prep, ok := prepForKind(req.Kind)
	if !ok {
		s.fail(w, http.StatusBadRequest,
			fmt.Sprintf("unknown job kind %q (want run, scenario, sweep or lifetime)", req.Kind))
		return
	}
	if len(req.Scenario) == 0 {
		s.fail(w, http.StatusBadRequest, "job document needs a scenario")
		return
	}
	sc, err := scenario.Load(bytes.NewReader(req.Scenario))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	sc = sc.Canonical()
	if err := prep(sc); err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	if status, msg := s.checkLimits(sc); status != 0 {
		s.fail(w, status, msg)
		return
	}
	st, err := s.jobs.Submit(req.Kind, sc)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	s.writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown job")
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.jobs.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown job")
		return
	}
	switch st.State {
	case jobs.StateDone:
		body, ok := s.jobs.Result(id)
		if !ok {
			s.fail(w, http.StatusInternalServerError, "job done but result unavailable")
			return
		}
		s.writeBody(w, "job", body)
	case jobs.StateFailed:
		s.fail(w, http.StatusInternalServerError, st.Error)
	default:
		// Not finished yet: point the client back at the status
		// endpoint rather than failing hard.
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusConflict,
			fmt.Sprintf("job %s: %d/%d points done", st.State, st.Done, st.Total))
	}
}

// handleJobEvents streams a job's progress as Server-Sent Events: the
// finished points replay first (in index order), then live events
// follow until the terminal "done"/"failed", which ends the stream.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	replay, ch, cancel, ok := s.jobs.Subscribe(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown job")
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Flush errors (an underlying writer without flush support) are
	// ignored: the events still deliver when the stream ends.
	rc := http.NewResponseController(w)
	for _, e := range replay {
		if writeSSE(w, e) != nil {
			return
		}
	}
	rc.Flush()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return // terminal event delivered
			}
			if writeSSE(w, e) != nil {
				return
			}
			rc.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, e jobs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}

// writeJSON renders v as an indented JSON document.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}
