package service

import (
	"container/list"
	"sync"
)

// cache is a size-bounded LRU over canonical-request keys. It stores
// fully rendered response bodies, so a hit is a pure byte copy: no
// JSON encoding, no simulation. Both bounds apply together — entry
// count and total body bytes — and eviction is strictly
// least-recently-used (Get refreshes recency). A cache constructed
// with maxEntries <= 0 is disabled: every Get misses, every Put is
// dropped.
//
// Stored bodies are shared, not copied; callers must treat them as
// immutable.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	evictions  uint64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(maxEntries int, maxBytes int64) *cache {
	c := &cache{maxEntries: maxEntries, maxBytes: maxBytes}
	if maxEntries > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element)
	}
	return c
}

// Get returns the cached body for key, refreshing its recency.
func (c *cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key and evicts from the LRU tail until both
// bounds hold again. The entry just inserted is never evicted, so a
// single body larger than maxBytes still serves its own request's
// followers until something replaces it.
func (c *cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.items == nil {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.ll.MoveToFront(el)
	} else {
		el = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.items[key] = el
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		if back == nil || back == c.ll.Front() {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions++
	}
}

// Evictions returns the number of entries evicted over the cache's
// lifetime.
func (c *cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached entries.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ll == nil {
		return 0
	}
	return c.ll.Len()
}

// Bytes returns the total size of the cached bodies.
func (c *cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
