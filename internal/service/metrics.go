package service

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/life"
	"wsnbcast/internal/store"
)

// latencyBoundsMs are the histogram bucket upper bounds in
// milliseconds; a request slower than the last bound lands in the
// +Inf bucket.
var latencyBoundsMs = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metrics is the service's hand-rolled instrumentation: request
// counts by endpoint and status, cache hit/miss counters, an
// in-flight gauge, a pending-sweep-jobs gauge (fed by the sweep
// engine), an executions counter (jobs that actually ran a
// simulation, as opposed to being served from cache or joined in
// flight) and a cumulative latency histogram. Everything is atomic or
// mutex-guarded; Snapshot returns a consistent JSON-ready copy.
type metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64
	latency  []atomic.Uint64 // len(latencyBoundsMs)+1, last = +Inf

	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	inFlight     atomic.Int64
	executions   atomic.Uint64
	shed         atomic.Uint64
	sweepPending atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make([]atomic.Uint64, len(latencyBoundsMs)+1),
	}
}

// ObserveRequest records one finished HTTP request.
func (m *metrics) ObserveRequest(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[int]uint64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	m.mu.Unlock()

	ms := d.Milliseconds()
	bucket := len(latencyBoundsMs)
	for i, le := range latencyBoundsMs {
		if ms <= le {
			bucket = i
			break
		}
	}
	m.latency[bucket].Add(1)
}

// pendingGauge adapts the pending-jobs counter to sweep.Gauge.
type pendingGauge struct{ n *atomic.Int64 }

func (g pendingGauge) Add(delta int64) { g.n.Add(delta) }

// SweepGauge returns the sweep.Gauge fed by /v1/sweep engines.
func (m *metrics) SweepGauge() pendingGauge { return pendingGauge{&m.sweepPending} }

// latencyBucket is one histogram cell of the /metrics document.
type latencyBucket struct {
	LE    string `json:"le_ms"`
	Count uint64 `json:"count"`
}

// snapshot is the JSON document served at /metrics.
type snapshot struct {
	Requests       map[string]map[string]uint64 `json:"requests"`
	CacheHits      uint64                       `json:"cache_hits"`
	CacheMisses    uint64                       `json:"cache_misses"`
	CacheEntries   int                          `json:"cache_entries"`
	CacheBytes     int64                        `json:"cache_bytes"`
	CacheEvictions uint64                       `json:"cache_evictions"`
	InFlight       int64                        `json:"in_flight"`
	QueueDepth     int                          `json:"queue_depth"`
	SweepPending   int64                        `json:"sweep_pending"`
	Executions     uint64                       `json:"executions"`
	Shed           uint64                       `json:"shed"`
	// LifeDeltaHits / LifeDeltaFallbacks count lifetime rounds served
	// from the incremental delta cone versus full engine runs,
	// process-wide (internal/life keeps the totals).
	LifeDeltaHits      uint64 `json:"life_delta_hits"`
	LifeDeltaFallbacks uint64 `json:"life_delta_fallbacks"`
	// Store holds the durable result store's counters when one is
	// configured; Jobs holds the async job subsystem's counters and
	// gauges.
	Store   *store.Stats    `json:"store,omitempty"`
	Jobs    *jobs.Stats     `json:"jobs,omitempty"`
	Latency []latencyBucket `json:"latency_ms"`
}

// Snapshot copies the counters; queue depth and cache sizing are the
// caller's to fill (they live in the pool and the cache).
func (m *metrics) Snapshot() snapshot {
	s := snapshot{
		Requests:     make(map[string]map[string]uint64),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		InFlight:     m.inFlight.Load(),
		SweepPending: m.sweepPending.Load(),
		Executions:   m.executions.Load(),
		Shed:         m.shed.Load(),
	}
	s.LifeDeltaHits, s.LifeDeltaFallbacks = life.DeltaTotals()
	m.mu.Lock()
	for ep, byStatus := range m.requests {
		out := make(map[string]uint64, len(byStatus))
		for status, n := range byStatus {
			out[strconv.Itoa(status)] = n
		}
		s.Requests[ep] = out
	}
	m.mu.Unlock()
	s.Latency = make([]latencyBucket, len(m.latency))
	for i := range m.latency {
		le := "inf"
		if i < len(latencyBoundsMs) {
			le = strconv.FormatInt(latencyBoundsMs[i], 10)
		}
		s.Latency[i] = latencyBucket{LE: le, Count: m.latency[i].Load()}
	}
	return s
}
