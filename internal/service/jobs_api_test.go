package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wsnbcast/internal/jobs"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

const sweepDoc = `{"topology": {"kind": "2d4", "m": 6, "n": 6}}`

// loadScenario parses and canonicalizes a document the way the
// handlers do.
func loadScenario(doc string) (scenario.Scenario, error) {
	sc, err := scenario.Load(strings.NewReader(doc))
	if err != nil {
		return sc, err
	}
	return sc.Canonical(), nil
}

func sweepJobDoc() string {
	return fmt.Sprintf(`{"kind": "sweep", "scenario": %s}`, sweepDoc)
}

func decodeStatus(t *testing.T, body []byte) jobs.Status {
	t.Helper()
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode job status %q: %v", body, err)
	}
	return st
}

// pollJobDone polls GET /v1/jobs/{id} until the job is terminal.
func pollJobDone(t *testing.T, srv *Server, id string) jobs.Status {
	t.Helper()
	var st jobs.Status
	waitFor(t, "job "+id+" to finish", func() bool {
		w := get(srv, "/v1/jobs/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("job status: %d, body %s", w.Code, w.Body)
		}
		st = decodeStatus(t, w.Body.Bytes())
		return st.State == jobs.StateDone || st.State == jobs.StateFailed
	})
	return st
}

// TestJobsEndpointMatchesSync is the API-level differential: a sweep
// submitted as an async job must produce the exact bytes of the
// synchronous POST /v1/sweep response.
func TestJobsEndpointMatchesSync(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/jobs", sweepJobDoc())
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status = %d, body %s", w.Code, w.Body)
	}
	st := decodeStatus(t, w.Body.Bytes())
	if st.ID == "" || st.Total != 36 {
		t.Fatalf("submit status = %+v", st)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}

	fin := pollJobDone(t, srv, st.ID)
	if fin.State != jobs.StateDone || fin.Done != 36 {
		t.Fatalf("final status = %+v", fin)
	}

	res := get(srv, "/v1/jobs/"+st.ID+"/result")
	if res.Code != http.StatusOK {
		t.Fatalf("result: status = %d, body %s", res.Code, res.Body)
	}
	if cacheHdr := res.Header().Get("X-Cache"); cacheHdr != "job" {
		t.Errorf("result X-Cache = %q, want job", cacheHdr)
	}

	sync := post(srv, "/v1/sweep", sweepDoc)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync sweep: %d", sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Error("job result differs from synchronous sweep body")
	}

	// Idempotent resubmission attaches to the finished job.
	again := post(srv, "/v1/jobs", sweepJobDoc())
	if again.Code != http.StatusAccepted {
		t.Fatalf("resubmit: %d", again.Code)
	}
	if st2 := decodeStatus(t, again.Body.Bytes()); st2.ID != st.ID {
		t.Errorf("resubmit id = %s, want %s", st2.ID, st.ID)
	}
}

// TestJobsEvents reads the SSE stream: every point replays or arrives
// live, and the stream ends with the terminal done event.
func TestJobsEvents(t *testing.T) {
	srv := New(Config{})
	w := post(srv, "/v1/jobs", sweepJobDoc())
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	st := decodeStatus(t, w.Body.Bytes())

	// The handler streams until the terminal event, so this request
	// returns once the job finishes.
	ev := get(srv, "/v1/jobs/"+st.ID+"/events")
	if ev.Code != http.StatusOK {
		t.Fatalf("events: status = %d, body %s", ev.Code, ev.Body)
	}
	if ct := ev.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	points, done := 0, 0
	for _, line := range strings.Split(ev.Body.String(), "\n") {
		switch {
		case line == "event: point":
			points++
		case line == "event: done":
			done++
		case line == "event: failed":
			t.Fatal("stream carried a failed event")
		}
	}
	if points != 36 || done != 1 {
		t.Errorf("stream carried %d point events and %d done events, want 36 and 1", points, done)
	}

	if w := get(srv, "/v1/jobs/no-such-job/events"); w.Code != http.StatusNotFound {
		t.Errorf("events for unknown job: %d, want 404", w.Code)
	}
}

// TestJobsSubmitValidation: the endpoint rejects what the synchronous
// endpoints would reject, plus malformed job wrappers.
func TestJobsSubmitValidation(t *testing.T) {
	srv := New(Config{MaxNodes: 100})
	cases := []struct {
		name, doc string
		status    int
	}{
		{"unknown kind", `{"kind": "explode", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}}}`, 400},
		{"missing scenario", `{"kind": "sweep"}`, 400},
		{"unknown wrapper field", `{"kind": "sweep", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}}, "priority": 9}`, 400},
		{"unknown scenario field", `{"kind": "sweep", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}, "bogus": 1}}`, 400},
		{"sweep with sources", `{"kind": "sweep", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}, "sources": [{"x": 1, "y": 1}]}}`, 400},
		{"run without source", `{"kind": "run", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}}}`, 400},
		{"oversized mesh", `{"kind": "sweep", "scenario": {"topology": {"kind": "2d4", "m": 50, "n": 50}}}`, 413},
		{"trailing content", `{"kind": "sweep", "scenario": {"topology": {"kind": "2d4", "m": 2, "n": 2}}} extra`, 400},
	}
	for _, tc := range cases {
		if w := post(srv, "/v1/jobs", tc.doc); w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, w.Code, tc.status, w.Body)
		}
	}
	if w := get(srv, "/v1/jobs/missing"); w.Code != http.StatusNotFound {
		t.Errorf("status of unknown job = %d, want 404", w.Code)
	}
	if w := get(srv, "/v1/jobs/missing/result"); w.Code != http.StatusNotFound {
		t.Errorf("result of unknown job = %d, want 404", w.Code)
	}
}

// TestStoreIsL2SharedAcrossInstances: a result computed by one server
// process serves a second process over the same directory from the
// store, byte-identically, without simulating.
func TestStoreIsL2SharedAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: st1})
	first := post(srv1, "/v1/sweep", sweepDoc)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first: %d, X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	if w := post(srv1, "/v1/sweep", sweepDoc); w.Header().Get("X-Cache") != "hit" {
		t.Errorf("second request X-Cache = %q, want hit (LRU in front of store)", w.Header().Get("X-Cache"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Store: st2})
	w := post(srv2, "/v1/sweep", sweepDoc)
	if w.Code != http.StatusOK {
		t.Fatalf("restarted instance: %d", w.Code)
	}
	if got := w.Header().Get("X-Cache"); got != "store" {
		t.Errorf("restarted instance X-Cache = %q, want store", got)
	}
	if !bytes.Equal(w.Body.Bytes(), first.Body.Bytes()) {
		t.Error("store-served body differs from the computed one")
	}

	// The metrics document carries the store and job sections.
	var snap struct {
		CacheEvictions *uint64 `json:"cache_evictions"`
		Store          *store.Stats
		Jobs           *jobs.Stats
	}
	if err := json.Unmarshal(get(srv2, "/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheEvictions == nil || snap.Store == nil || snap.Jobs == nil {
		t.Fatalf("metrics missing cache_evictions/store/jobs sections: %+v", snap)
	}
	if snap.Store.Hits != 1 {
		t.Errorf("store hits = %d, want 1", snap.Store.Hits)
	}
	if err := srv2.Drain(ctx); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}

// TestJobSurvivesRestart: a finished job's result is durable — a new
// server over the same directory answers the resubmitted job
// instantly, computing nothing, and the synchronous endpoint hits the
// same entry.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: st1})
	w := post(srv1, "/v1/jobs", sweepJobDoc())
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	st := decodeStatus(t, w.Body.Bytes())
	pollJobDone(t, srv1, st.ID)
	res1 := get(srv1, "/v1/jobs/"+st.ID+"/result")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := jobs.NewManager(jobs.Config{Store: st2, Workers: 2})
	srv2 := New(Config{Store: st2, Jobs: m2})
	if n, err := m2.Recover(); err != nil || n != 0 {
		t.Fatalf("recover = %d, %v; want 0 resumed (job finished before restart)", n, err)
	}
	// The finished job is visible after recovery, result intact.
	w2 := get(srv2, "/v1/jobs/"+st.ID)
	if w2.Code != http.StatusOK {
		t.Fatalf("recovered status: %d", w2.Code)
	}
	if got := decodeStatus(t, w2.Body.Bytes()); got.State != jobs.StateDone {
		t.Fatalf("recovered state = %s, want done", got.State)
	}
	res2 := get(srv2, "/v1/jobs/"+st.ID+"/result")
	if res2.Code != http.StatusOK || !bytes.Equal(res2.Body.Bytes(), res1.Body.Bytes()) {
		t.Error("recovered result differs")
	}
	if n := m2.Stats().PointsComputed; n != 0 {
		t.Errorf("restarted manager computed %d points, want 0", n)
	}
	// The synchronous endpoint shares the entry.
	if w := post(srv2, "/v1/sweep", sweepDoc); w.Header().Get("X-Cache") != "store" {
		t.Errorf("sync X-Cache after job = %q, want store", w.Header().Get("X-Cache"))
	}
	if err := srv2.Drain(ctx); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}

// TestGracefulDrainWithJobsAndStore extends the drain ordering test to
// the job subsystem and the durable store: Drain must checkpoint the
// in-flight job (its unfinished points resumable by the next process),
// wait out the admitted pool work, and close the store last — and the
// resumed job must finish byte-identically without recomputing the
// points that drained to disk.
func TestGracefulDrainWithJobsAndStore(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobEntered := make(chan struct{}, 1)
	jobRelease := make(chan struct{})
	var once sync.Once
	m1 := jobs.NewManager(jobs.Config{
		Store:   st1,
		Workers: 1,
		BeforePoint: func(_ string, index int) {
			once.Do(func() {
				jobEntered <- struct{}{}
				<-jobRelease
			})
		},
	})
	srv := New(Config{Workers: 1, Store: st1, Jobs: m1})
	syncRelease := make(chan struct{})
	syncEntered := make(chan struct{}, 1)
	srv.hookBeforeJob = func() {
		syncEntered <- struct{}{}
		<-syncRelease
	}

	// One async job held at its first point, one sync request held in
	// the pool.
	w := post(srv, "/v1/jobs", sweepJobDoc())
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	jobID := decodeStatus(t, w.Body.Bytes()).ID
	<-jobEntered
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); post(srv, "/v1/run", runDoc) }()
	<-syncEntered

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	waitFor(t, "healthz to report draining", func() bool {
		return get(srv, "/healthz").Code == http.StatusServiceUnavailable
	})
	if w := post(srv, "/v1/jobs", sweepJobDoc()); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("job submit during drain: %d, want 503", w.Code)
	}
	// Once the manager rejects direct submissions, its workers are
	// cancelled: releasing the gate lets exactly the in-flight point
	// drain to the store before the worker stops.
	waitFor(t, "job manager to start closing", func() bool {
		sc, lerr := loadScenario(sweepDoc)
		if lerr != nil {
			t.Fatal(lerr)
		}
		_, serr := m1.Submit(jobs.KindSweep, sc)
		return serr != nil
	})
	close(jobRelease)
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v while the pool still held a request", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(syncRelease)
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	// The store closed last: writes are fenced now.
	if err := st1.Put("post-drain", []byte("x")); err != store.ErrClosed {
		t.Errorf("store Put after drain = %v, want ErrClosed", err)
	}

	// The next process resumes the checkpointed job and computes only
	// the 35 points that had not drained.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := jobs.NewManager(jobs.Config{Store: st2, Workers: 4})
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	srv2 := New(Config{Store: st2, Jobs: m2})
	fin := pollJobDone(t, srv2, jobID)
	if fin.State != jobs.StateDone || fin.Done != 36 {
		t.Fatalf("resumed job = %+v", fin)
	}
	if n := m2.Stats().PointsComputed; n != 35 {
		t.Errorf("resumed manager computed %d points, want 35 (one drained before shutdown)", n)
	}
	res := get(srv2, "/v1/jobs/"+jobID+"/result")
	sync := post(srv2, "/v1/sweep", sweepDoc)
	if sync.Header().Get("X-Cache") != "store" {
		t.Errorf("sync after resumed job: X-Cache = %q, want store", sync.Header().Get("X-Cache"))
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Error("resumed job result differs from synchronous body")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Drain(ctx); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
}
