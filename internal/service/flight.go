package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent identical work: the first caller
// for a key becomes the leader and executes fn; every caller that
// arrives for the same key while the leader is in flight waits for
// the leader's outcome instead of executing again. Combined with the
// result cache this guarantees a burst of identical requests costs
// exactly one simulation — the leader's — no matter how many clients
// ask at once.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

// Do runs fn once per concurrent key. joined reports whether this
// caller waited on another caller's execution rather than running fn
// itself. A joined waiter whose ctx expires abandons the wait with the
// context's error; the leader keeps running and its result still
// serves the remaining waiters (and the cache).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, joined bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.body, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.body, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, false, c.err
}
