package analysis

import (
	"math"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Lifetime analysis — the motivation of the paper's introduction: the
// sensor nodes have no plug-in power, so the rounds a network survives
// are bounded by the most-loaded node. This module estimates how many
// repeated broadcasts a battery budget sustains under a protocol.

// LifetimeReport describes the energy-load distribution of repeated
// broadcasts from a fixed source.
type LifetimeReport struct {
	Kind     grid.Kind
	Protocol string
	Source   grid.Coord
	// MaxNodeEnergyJ is the per-broadcast energy of the most loaded
	// node; it bounds the network lifetime.
	MaxNodeEnergyJ float64
	// MeanNodeEnergyJ is the average per-node energy per broadcast.
	MeanNodeEnergyJ float64
	// P50, P90, P99 are per-node energy quantiles per broadcast.
	P50, P90, P99 float64
	// ImbalanceRatio is Max/Mean: 1.0 means perfectly balanced load.
	ImbalanceRatio float64
	// Fairness is Jain's index over the per-node energies: 1.0 means a
	// perfectly balanced load.
	Fairness float64
	// RoundsOnBudget is how many broadcasts a per-node battery of
	// budgetJ Joules sustains before the first node dies.
	RoundsOnBudget int
	// BudgetJ echoes the battery budget used.
	BudgetJ float64
}

// Lifetime estimates the broadcast rounds a per-node battery of
// budgetJ sustains for the given protocol and source.
func Lifetime(t grid.Topology, p sim.Protocol, src grid.Coord, cfg sim.Config, budgetJ float64) (LifetimeReport, error) {
	r, err := sim.Run(t, p, src, cfg)
	if err != nil {
		return LifetimeReport{}, err
	}
	rep := LifetimeReport{
		Kind:     t.Kind(),
		Protocol: p.Name(),
		Source:   src,
		BudgetJ:  budgetJ,
	}
	sorted := append([]float64(nil), r.PerNodeEnergyJ...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, e := range sorted {
		sum += e
	}
	n := len(sorted)
	rep.MaxNodeEnergyJ = sorted[n-1]
	rep.MeanNodeEnergyJ = sum / float64(n)
	rep.P50 = sorted[n/2]
	rep.P90 = sorted[min(n-1, n*9/10)]
	rep.P99 = sorted[min(n-1, n*99/100)]
	if rep.MeanNodeEnergyJ > 0 {
		rep.ImbalanceRatio = rep.MaxNodeEnergyJ / rep.MeanNodeEnergyJ
	}
	rep.Fairness = JainIndex(r.PerNodeEnergyJ)
	if rep.MaxNodeEnergyJ > 0 && budgetJ > 0 {
		rep.RoundsOnBudget = int(math.Floor(budgetJ / rep.MaxNodeEnergyJ))
	}
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// JainIndex computes Jain's fairness index over the per-node energies:
// (sum x)^2 / (n * sum x^2), 1.0 when perfectly balanced, 1/n when a
// single node carries everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
