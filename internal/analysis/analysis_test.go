package analysis

import (
	"math"
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// The sweep over the canonical 2D-4 mesh reproduces the paper's
// Table 3/4/5 row exactly: best Tx 208, worst Tx 223, max delay 45.
func TestSweepMesh4PaperRow(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	s, err := Sweep(topo, core.NewMesh4Protocol(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 512 {
		t.Errorf("Runs = %d, want 512", s.Runs)
	}
	if s.Best.Tx != 208 {
		t.Errorf("best Tx = %d, paper 208", s.Best.Tx)
	}
	if s.Worst.Tx != 223 {
		t.Errorf("worst Tx = %d, paper 223", s.Worst.Tx)
	}
	if s.MaxDelay != 45 {
		t.Errorf("max delay = %d, paper 45", s.MaxDelay)
	}
	if s.TotalRepairs != 0 {
		t.Errorf("repairs = %d", s.TotalRepairs)
	}
	// Best must not exceed mean, mean not exceed worst.
	if s.Best.EnergyJ > s.MeanEnergyJ || s.MeanEnergyJ > s.Worst.EnergyJ {
		t.Errorf("energy ordering broken: best %g mean %g worst %g",
			s.Best.EnergyJ, s.MeanEnergyJ, s.Worst.EnergyJ)
	}
}

// Paper claim (Section 4): a corner source "has a longer delay" than a
// center source. (Power is residue-driven for 2D-4 — the border
// columns — so the centrality claim is asserted on delay.)
func TestCenterSourceFasterThanCorner(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		center := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		corner := grid.C3(1, 1, 1)
		rc, err := sim.Run(topo, core.ForTopology(k), center, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rk, err := sim.Run(topo, core.ForTopology(k), corner, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rc.Delay >= rk.Delay {
			t.Errorf("%v: center delay %d not below corner delay %d", k, rc.Delay, rk.Delay)
		}
	}
}

// Paper claim: 2D-3 and 2D-8 are "not sensitive to the source node's
// location" — their best/worst spread must be smaller than 2D-4's and
// 3D-6's.
func TestSourceSensitivityOrdering(t *testing.T) {
	spread := map[grid.Kind]float64{}
	for _, k := range grid.Kinds() {
		s, err := Sweep(grid.Canonical(k), core.ForTopology(k), sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		spread[k] = s.EnergySpread()
	}
	if spread[grid.Mesh2D3] >= spread[grid.Mesh2D4] {
		t.Errorf("2D-3 spread %.3f not below 2D-4 %.3f", spread[grid.Mesh2D3], spread[grid.Mesh2D4])
	}
	if spread[grid.Mesh2D8] >= spread[grid.Mesh3D6] {
		t.Errorf("2D-8 spread %.3f not below 3D-6 %.3f", spread[grid.Mesh2D8], spread[grid.Mesh3D6])
	}
}

// Headline result of the paper: 2D mesh with 4 neighbors has the
// minimum power consumption; 3D mesh with 6 neighbors the smallest
// maximum delay.
func TestPaperHeadlineOrderings(t *testing.T) {
	best := map[grid.Kind]float64{}
	delay := map[grid.Kind]int{}
	for _, k := range grid.Kinds() {
		s, err := Sweep(grid.Canonical(k), core.ForTopology(k), sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		best[k] = s.Best.EnergyJ
		delay[k] = s.MaxDelay
	}
	for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D8, grid.Mesh3D6} {
		if best[grid.Mesh2D4] >= best[k] {
			t.Errorf("2D-4 best energy %.3e not below %v's %.3e", best[grid.Mesh2D4], k, best[k])
		}
	}
	for _, k := range []grid.Kind{grid.Mesh2D3, grid.Mesh2D4, grid.Mesh2D8} {
		if delay[grid.Mesh3D6] >= delay[k] {
			t.Errorf("3D-6 max delay %d not below %v's %d", delay[grid.Mesh3D6], k, delay[k])
		}
	}
	// And among the 2D topologies, 2D-8 has the smallest max delay.
	if delay[grid.Mesh2D8] >= delay[grid.Mesh2D4] || delay[grid.Mesh2D8] >= delay[grid.Mesh2D3] {
		t.Errorf("2D-8 max delay %d not smallest among 2D (%d, %d)",
			delay[grid.Mesh2D8], delay[grid.Mesh2D4], delay[grid.Mesh2D3])
	}
}

// SweepSources with an explicit subset.
func TestSweepSourcesSubset(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	srcs := CornersAndCenter(topo)
	s, err := SweepSources(topo, core.NewMesh4Protocol(), sim.Config{}, srcs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != len(srcs) {
		t.Errorf("Runs = %d, want %d", s.Runs, len(srcs))
	}
}

// A sweep must fail loudly when reachability cannot be achieved
// (disconnected brick wall).
func TestSweepReportsUnreachable(t *testing.T) {
	topo := grid.NewMesh2D3(1, 6) // disconnected vertical pairs
	_, err := Sweep(topo, core.NewMesh3Protocol(), sim.Config{})
	if err == nil || !strings.Contains(err.Error(), "reached only") {
		t.Errorf("expected unreachable error, got %v", err)
	}
}

func TestCornersAndCenter(t *testing.T) {
	topo := grid.NewMesh3D6(4, 5, 3)
	srcs := CornersAndCenter(topo)
	if len(srcs) != 9 {
		t.Errorf("len = %d, want 9 (8 corners + center)", len(srcs))
	}
	topo2 := grid.NewMesh2D4(4, 5)
	srcs2 := CornersAndCenter(topo2)
	if len(srcs2) != 5 {
		t.Errorf("2D len = %d, want 5", len(srcs2))
	}
}

func TestEnergySpreadEdge(t *testing.T) {
	s := Summary{}
	if !math.IsInf(s.EnergySpread(), 1) {
		t.Error("zero best energy should give +Inf spread")
	}
}

func TestLifetime(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	rep, err := Lifetime(topo, core.NewMesh4Protocol(), grid.C2(4, 4), sim.Config{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxNodeEnergyJ <= 0 || rep.MeanNodeEnergyJ <= 0 {
		t.Fatalf("energies not positive: %+v", rep)
	}
	if rep.MaxNodeEnergyJ < rep.P99 || rep.P99 < rep.P90 || rep.P90 < rep.P50 {
		t.Errorf("quantiles disordered: %+v", rep)
	}
	if rep.ImbalanceRatio < 1 {
		t.Errorf("imbalance %.2f < 1", rep.ImbalanceRatio)
	}
	if rep.RoundsOnBudget <= 0 {
		t.Errorf("rounds = %d", rep.RoundsOnBudget)
	}
	want := int(1.0 / rep.MaxNodeEnergyJ)
	if rep.RoundsOnBudget != want {
		t.Errorf("rounds = %d, want %d", rep.RoundsOnBudget, want)
	}
}

// Lifetime with flooding must be shorter than with the paper protocol
// (flooding loads every node with every neighbor's transmission).
func TestLifetimeFloodingWorse(t *testing.T) {
	topo := grid.NewMesh2D4(12, 12)
	src := grid.C2(6, 6)
	paper, err := Lifetime(topo, core.NewMesh4Protocol(), src, sim.Config{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	flood, err := Lifetime(topo, core.NewFlooding(), src, sim.Config{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if flood.RoundsOnBudget >= paper.RoundsOnBudget {
		t.Errorf("flooding lifetime %d rounds not below paper %d",
			flood.RoundsOnBudget, paper.RoundsOnBudget)
	}
}

func TestLifetimeError(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	if _, err := Lifetime(topo, core.NewMesh4Protocol(), grid.C2(9, 9), sim.Config{}, 1.0); err == nil {
		t.Error("out-of-mesh source accepted")
	}
}

// The running statistics agree with the best/worst extremes.
func TestSweepStatsConsistent(t *testing.T) {
	topo := grid.NewMesh2D4(10, 6)
	s, err := Sweep(topo, core.NewMesh4Protocol(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.EnergyStats.N() != s.Runs {
		t.Errorf("stats n = %d, runs = %d", s.EnergyStats.N(), s.Runs)
	}
	if s.EnergyStats.Min() != s.Best.EnergyJ {
		t.Errorf("stats min %g != best %g", s.EnergyStats.Min(), s.Best.EnergyJ)
	}
	if s.EnergyStats.Max() != s.Worst.EnergyJ {
		t.Errorf("stats max %g != worst %g", s.EnergyStats.Max(), s.Worst.EnergyJ)
	}
	if math.Abs(s.EnergyStats.Mean()-s.MeanEnergyJ) > 1e-12 {
		t.Errorf("stats mean %g != mean %g", s.EnergyStats.Mean(), s.MeanEnergyJ)
	}
	if s.TxStats.Min() > s.TxStats.Max() || s.DelayStats.Max() != float64(s.MaxDelay) {
		t.Errorf("tx/delay stats inconsistent: %v %v", s.TxStats, s.DelayStats)
	}
}

// Idle listening accounting: the idle term grows with delay and the
// total re-ranks the topologies by speed.
func TestWithIdle(t *testing.T) {
	topo := grid.Canonical(grid.Mesh2D4)
	r, err := sim.Run(topo, core.NewMesh4Protocol(), grid.C2(16, 8), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := WithIdle(r, radio.Default(), radio.CanonicalPacket())
	if b.ActiveJ != r.EnergyJ {
		t.Errorf("active %g != %g", b.ActiveJ, r.EnergyJ)
	}
	if b.IdleJ <= 0 || b.TotalJ != b.ActiveJ+b.IdleJ {
		t.Errorf("breakdown: %+v", b)
	}
	// Idle dominates: 512 nodes x 24 slots of listening vs ~1000
	// active events.
	if b.IdleJ < b.ActiveJ {
		t.Errorf("idle %g should dominate active %g on the canonical mesh", b.IdleJ, b.ActiveJ)
	}
	if got, want := IdleJPerSlot(radio.Default(), radio.CanonicalPacket()),
		radio.Default().RxEnergyJ(512); got != want {
		t.Errorf("IdleJPerSlot = %g, want %g", got, want)
	}
}

// Under idle accounting, the fastest topology (3D-6) beats the paper's
// power winner (2D-4) on total energy.
func TestIdleRankingFlips(t *testing.T) {
	total := map[grid.Kind]float64{}
	for _, k := range []grid.Kind{grid.Mesh2D4, grid.Mesh3D6} {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		r, err := sim.Run(topo, core.ForTopology(k), grid.C3((m+1)/2, (n+1)/2, (l+1)/2), sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		total[k] = WithIdle(r, radio.Default(), radio.CanonicalPacket()).TotalJ
	}
	if total[grid.Mesh3D6] >= total[grid.Mesh2D4] {
		t.Errorf("with idle listening 3D-6 (%.3e) should beat 2D-4 (%.3e)",
			total[grid.Mesh3D6], total[grid.Mesh2D4])
	}
}

// The Summary must be identical for every worker-pool size: Summarize
// aggregates in source order, so tie-breaking never depends on
// completion order.
func TestSweepWorkersInvariant(t *testing.T) {
	topo := grid.NewMesh2D4(10, 6)
	base, err := SweepWorkers(topo, core.NewMesh4Protocol(), sim.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 64} {
		s, err := SweepWorkers(topo, core.NewMesh4Protocol(), sim.Config{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if s != base {
			t.Errorf("workers=%d summary differs from workers=1:\n%+v\nvs\n%+v", workers, s, base)
		}
	}
}

// Summarize on an explicit serial result list must match the engine
// path exactly.
func TestSummarizeMatchesSweep(t *testing.T) {
	topo := grid.NewMesh2D8(8, 5)
	p := core.NewMesh8Protocol()
	results := make([]*sim.Result, topo.NumNodes())
	for i := range results {
		r, err := sim.Run(topo, p, topo.At(i), sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	fromSerial, err := Summarize(topo, p, results)
	if err != nil {
		t.Fatal(err)
	}
	fromEngine, err := Sweep(topo, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fromSerial != fromEngine {
		t.Errorf("Summarize(serial results) != Sweep:\n%+v\nvs\n%+v", fromSerial, fromEngine)
	}
}
