package analysis

import (
	"fmt"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Source rotation — the load-balancing idea of the paper's related
// work (LEACH rotates cluster heads so "every node consume[s] about
// the same amount of power") applied to broadcast: when the
// broadcasting role rotates over the network, the relay load spreads
// and the first-node-death horizon moves out.

// RotationReport compares a fixed broadcast source against a rotation
// schedule under a per-node battery budget.
type RotationReport struct {
	Kind     grid.Kind
	Protocol string
	BudgetJ  float64
	// FixedRounds is how many broadcasts from the fixed source the
	// budget sustains before the first node dies.
	FixedRounds int
	// RotatedRounds is the same for the rotation schedule.
	RotatedRounds int
	// Gain is RotatedRounds / FixedRounds.
	Gain float64
}

// Rotate simulates broadcasts whose source cycles through the given
// schedule and returns how many rounds complete before some node's
// cumulative energy exceeds budgetJ. Each distinct source is simulated
// once (the protocol is deterministic) and its per-node energy is
// replayed per round.
func Rotate(t grid.Topology, p sim.Protocol, schedule []grid.Coord, cfg sim.Config, budgetJ float64, maxRounds int) (int, error) {
	if len(schedule) == 0 {
		return 0, fmt.Errorf("analysis: empty rotation schedule")
	}
	if budgetJ <= 0 {
		return 0, fmt.Errorf("analysis: budget must be positive")
	}
	cache := map[grid.Coord][]float64{}
	for _, src := range schedule {
		if _, ok := cache[src]; ok {
			continue
		}
		r, err := sim.Run(t, p, src, cfg)
		if err != nil {
			return 0, err
		}
		if !r.FullyReached() {
			return 0, fmt.Errorf("analysis: source %s reached %d/%d", src, r.Reached, r.Total)
		}
		cache[src] = r.PerNodeEnergyJ
	}
	used := make([]float64, t.NumNodes())
	for round := 0; round < maxRounds; round++ {
		per := cache[schedule[round%len(schedule)]]
		for i, e := range per {
			used[i] += e
			if used[i] > budgetJ {
				return round, nil
			}
		}
	}
	return maxRounds, nil
}

// CompareRotation contrasts a fixed source against a round-robin
// rotation over the corners-and-center set.
func CompareRotation(t grid.Topology, p sim.Protocol, fixed grid.Coord, cfg sim.Config, budgetJ float64, maxRounds int) (RotationReport, error) {
	rep := RotationReport{Kind: t.Kind(), Protocol: p.Name(), BudgetJ: budgetJ}
	fixedRounds, err := Rotate(t, p, []grid.Coord{fixed}, cfg, budgetJ, maxRounds)
	if err != nil {
		return rep, err
	}
	rotRounds, err := Rotate(t, p, CornersAndCenter(t), cfg, budgetJ, maxRounds)
	if err != nil {
		return rep, err
	}
	rep.FixedRounds = fixedRounds
	rep.RotatedRounds = rotRounds
	if fixedRounds > 0 {
		rep.Gain = float64(rotRounds) / float64(fixedRounds)
	}
	return rep, nil
}
