package analysis

import (
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func TestRotateBasics(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	p := core.NewMesh4Protocol()
	rounds, err := Rotate(topo, p, []grid.Coord{grid.C2(5, 5)}, sim.Config{}, 0.01, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 || rounds >= 10000 {
		t.Errorf("rounds = %d", rounds)
	}
	// Double the budget: at least as many rounds, roughly double.
	rounds2, err := Rotate(topo, p, []grid.Coord{grid.C2(5, 5)}, sim.Config{}, 0.02, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rounds2 < rounds {
		t.Errorf("bigger budget gave fewer rounds: %d vs %d", rounds2, rounds)
	}
	if rounds2 > 2*rounds+2 || rounds2 < 2*rounds-2 {
		t.Errorf("rounds should scale ~linearly: %d vs %d", rounds2, rounds)
	}
}

func TestRotationBalancesLoad(t *testing.T) {
	topo := grid.NewMesh2D4(12, 12)
	rep, err := CompareRotation(topo, core.NewMesh4Protocol(), grid.C2(6, 6),
		sim.Config{}, 0.05, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RotatedRounds < rep.FixedRounds {
		t.Errorf("rotation %d rounds worse than fixed %d", rep.RotatedRounds, rep.FixedRounds)
	}
	if rep.Gain < 1 {
		t.Errorf("gain = %.2f", rep.Gain)
	}
	t.Logf("fixed %d rounds, rotated %d rounds (gain %.2fx)",
		rep.FixedRounds, rep.RotatedRounds, rep.Gain)
}

func TestRotateValidation(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	p := core.NewMesh4Protocol()
	if _, err := Rotate(topo, p, nil, sim.Config{}, 1, 10); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := Rotate(topo, p, []grid.Coord{grid.C2(1, 1)}, sim.Config{}, 0, 10); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Rotate(topo, p, []grid.Coord{grid.C2(9, 9)}, sim.Config{}, 1, 10); err == nil {
		t.Error("bad source accepted")
	}
}

func TestRotateMaxRoundsCap(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	p := core.NewMesh4Protocol()
	rounds, err := Rotate(topo, p, []grid.Coord{grid.C2(3, 3)}, sim.Config{}, 1e9, 17)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 17 {
		t.Errorf("cap not honored: %d", rounds)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); j != 1 {
		t.Errorf("balanced = %g", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); j != 0.25 {
		t.Errorf("single = %g", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Errorf("empty = %g", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 1 {
		t.Errorf("all-zero = %g", j)
	}
}

func TestLifetimeFairness(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	rep, err := Lifetime(topo, core.NewMesh4Protocol(), grid.C2(5, 5), sim.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Errorf("fairness = %g", rep.Fairness)
	}
	// Flooding loads everyone heavily but more evenly than the relay
	// structure concentrates load.
	fl, err := Lifetime(topo, core.NewFlooding(), grid.C2(5, 5), sim.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Fairness <= rep.Fairness {
		t.Logf("note: flooding fairness %.3f vs paper %.3f", fl.Fairness, rep.Fairness)
	}
}
