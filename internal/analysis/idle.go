package analysis

import (
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// Idle-listening accounting. The paper's power metric (Section 4)
// counts only transmissions and receptions; real sensor radios also
// burn energy while listening for a packet that never comes. With
// synchronized slots, every live node keeps its receiver on from the
// broadcast's start until the last slot of activity — so a protocol's
// *delay* directly costs energy across the whole network, which the
// paper's metric hides.

// IdleJPerSlot models the receiver electronics running for one slot
// (one packet time) without decoding anything: E_elec * k, the same
// electronics cost as an actual reception (the amplifier term applies
// only to transmitters).
func IdleJPerSlot(m radio.Model, p radio.Packet) float64 {
	return m.RxEnergyJ(p.Bits)
}

// IdleBreakdown describes a broadcast's energy under idle accounting.
type IdleBreakdown struct {
	// ActiveJ is the paper's metric: Tx*E_Tx + Rx*E_Rx.
	ActiveJ float64
	// IdleJ is the listening cost: every live node keeps its radio on
	// for the broadcast's duration (Delay+1 slots), minus the slots in
	// which it actually received (already counted in ActiveJ).
	IdleJ float64
	// TotalJ = ActiveJ + IdleJ.
	TotalJ float64
}

// WithIdle recomputes a broadcast's energy including idle listening.
func WithIdle(r *sim.Result, m radio.Model, p radio.Packet) IdleBreakdown {
	idlePerSlot := IdleJPerSlot(m, p)
	awakeSlots := r.Delay + 1
	// Total listening slots across live nodes, minus the Rx events that
	// already paid the electronics cost.
	idleSlots := r.Total*awakeSlots - r.Rx
	if idleSlots < 0 {
		idleSlots = 0
	}
	b := IdleBreakdown{ActiveJ: r.EnergyJ, IdleJ: float64(idleSlots) * idlePerSlot}
	b.TotalJ = b.ActiveJ + b.IdleJ
	return b
}
