// Package analysis runs source-position sweeps of a broadcast protocol
// and aggregates them into the paper's Section 4 statistics: the best
// case, the worst case and the maximum delay over all source positions
// (Tables 3, 4 and 5), plus distribution diagnostics the paper
// discusses qualitatively (center sources perform better than corner
// sources; 2D-3 and 2D-8 are insensitive to the source location).
package analysis

import (
	"context"
	"fmt"
	"math"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/stats"
	"wsnbcast/internal/sweep"
)

// Summary aggregates one full sweep: the protocol run once from every
// source position of the topology.
type Summary struct {
	Kind     grid.Kind
	Protocol string
	Runs     int

	// Best is the run with the lowest total energy, Worst the highest
	// (the paper's best/worst cases over source positions).
	Best, Worst Case

	// MaxDelay is the largest broadcast delay over all sources
	// (Table 5).
	MaxDelay int
	// MaxDelaySource is a source attaining MaxDelay.
	MaxDelaySource grid.Coord

	// MeanEnergyJ and EnergySpread describe the sensitivity to the
	// source location ((worst-best)/best).
	MeanEnergyJ float64
	// EnergyStats, TxStats and DelayStats carry the full per-source
	// distributions (mean, standard deviation, extremes).
	EnergyStats stats.Running
	TxStats     stats.Running
	DelayStats  stats.Running

	// TotalRepairs counts scheduler-planned retransmissions across the
	// sweep; MaxRepairs the worst single run.
	TotalRepairs int
	MaxRepairs   int

	// TotalCollisions across the sweep.
	TotalCollisions int
}

// Case is one run's paper-style row: Tx, Rx and power.
type Case struct {
	Source  grid.Coord
	Tx, Rx  int
	EnergyJ float64
	Delay   int
}

func caseOf(r *sim.Result) Case {
	return Case{Source: r.Source, Tx: r.Tx, Rx: r.Rx, EnergyJ: r.EnergyJ, Delay: r.Delay}
}

// EnergySpread returns (worst - best) / best: the paper's
// source-location sensitivity.
func (s Summary) EnergySpread() float64 {
	if s.Best.EnergyJ == 0 {
		return math.Inf(1)
	}
	return (s.Worst.EnergyJ - s.Best.EnergyJ) / s.Best.EnergyJ
}

// Sweep runs the protocol from every source of the topology through
// the parallel sweep engine and aggregates the results. Every run must
// achieve 100% reachability or Sweep returns an error naming the
// failing source.
func Sweep(t grid.Topology, p sim.Protocol, cfg sim.Config) (Summary, error) {
	return SweepSources(t, p, cfg, nil)
}

// SweepWorkers is Sweep with an explicit worker-pool size (<= 0 means
// GOMAXPROCS).
func SweepWorkers(t grid.Topology, p sim.Protocol, cfg sim.Config, workers int) (Summary, error) {
	return SweepSourcesWorkers(t, p, cfg, nil, workers)
}

// SweepSources is Sweep restricted to the given sources (nil means all
// nodes).
func SweepSources(t grid.Topology, p sim.Protocol, cfg sim.Config, sources []grid.Coord) (Summary, error) {
	return SweepSourcesWorkers(t, p, cfg, sources, 0)
}

// SweepSourcesWorkers runs the sweep on a pool of the given size
// (<= 0 means GOMAXPROCS) and aggregates the outcomes in source order,
// so the Summary is identical for every pool size.
func SweepSourcesWorkers(t grid.Topology, p sim.Protocol, cfg sim.Config, sources []grid.Coord, workers int) (Summary, error) {
	if sources == nil {
		sources = make([]grid.Coord, t.NumNodes())
		for i := range sources {
			sources[i] = t.At(i)
		}
	}
	jobs := make([]sweep.Job, len(sources))
	for i, src := range sources {
		jobs[i] = sweep.Job{Topology: t, Protocol: p, Source: src, Config: cfg}
	}
	outs, _ := sweep.New(workers).Run(context.Background(), jobs)
	results := make([]*sim.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return Summary{Kind: t.Kind(), Protocol: p.Name()},
				fmt.Errorf("analysis: source %s: %w", sources[i], o.Err)
		}
		results[i] = o.Result
	}
	return Summarize(t, p, results)
}

// Summarize aggregates per-source results into a Summary. The results
// must be in the sweep's source order: ties for the best/worst case
// keep the earliest source, so the order is part of the deterministic
// output contract.
func Summarize(t grid.Topology, p sim.Protocol, results []*sim.Result) (Summary, error) {
	s := Summary{Kind: t.Kind(), Protocol: p.Name()}
	sumEnergy := 0.0
	for _, r := range results {
		if !r.FullyReached() {
			return s, fmt.Errorf("analysis: source %s reached only %d/%d nodes",
				r.Source, r.Reached, r.Total)
		}
		c := caseOf(r)
		s.EnergyStats.Add(c.EnergyJ)
		s.TxStats.Add(float64(c.Tx))
		s.DelayStats.Add(float64(c.Delay))
		if s.Runs == 0 || c.EnergyJ < s.Best.EnergyJ {
			s.Best = c
		}
		if s.Runs == 0 || c.EnergyJ > s.Worst.EnergyJ {
			s.Worst = c
		}
		if r.Delay > s.MaxDelay || s.Runs == 0 {
			s.MaxDelay = r.Delay
			s.MaxDelaySource = r.Source
		}
		s.Runs++
		sumEnergy += c.EnergyJ
		s.TotalRepairs += r.Repairs
		if r.Repairs > s.MaxRepairs {
			s.MaxRepairs = r.Repairs
		}
		s.TotalCollisions += r.Collisions
	}
	if s.Runs > 0 {
		s.MeanEnergyJ = sumEnergy / float64(s.Runs)
	}
	return s, nil
}

// CornersAndCenter returns a small representative source set: the
// mesh corners plus the central node — the positions the paper's
// best/worst discussion revolves around.
func CornersAndCenter(t grid.Topology) []grid.Coord {
	m, n, l := t.Size()
	set := map[grid.Coord]bool{}
	for _, x := range []int{1, m} {
		for _, y := range []int{1, n} {
			for _, z := range []int{1, l} {
				set[grid.C3(x, y, z)] = true
			}
		}
	}
	set[grid.C3((m+1)/2, (n+1)/2, (l+1)/2)] = true
	out := make([]grid.Coord, 0, len(set))
	for i := 0; i < t.NumNodes(); i++ {
		if set[t.At(i)] {
			out = append(out, t.At(i))
		}
	}
	return out
}
