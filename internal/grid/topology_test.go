package grid

import (
	"sort"
	"testing"
)

// allTestTopologies returns a mix of sizes for each kind, including
// degenerate and canonical ones.
func allTestTopologies() []Topology {
	return []Topology{
		NewMesh2D3(8, 8), NewMesh2D3(32, 16), NewMesh2D3(5, 3), NewMesh2D3(1, 1),
		NewMesh2D4(8, 8), NewMesh2D4(32, 16), NewMesh2D4(5, 3), NewMesh2D4(1, 4),
		NewMesh2D8(8, 8), NewMesh2D8(32, 16), NewMesh2D8(14, 14), NewMesh2D8(2, 2),
		NewMesh3D6(8, 8, 8), NewMesh3D6(4, 3, 2), NewMesh3D6(1, 1, 5),
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Mesh2D3: "2D-3", Mesh2D4: "2D-4", Mesh2D8: "2D-8", Mesh3D6: "3D-6"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	want := []Kind{Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6}
	if len(ks) != len(want) {
		t.Fatalf("Kinds() = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("Kinds()[%d] = %v, want %v", i, ks[i], want[i])
		}
	}
}

func TestNewDispatch(t *testing.T) {
	for _, k := range Kinds() {
		topo := New(k, 6, 5, 4)
		if topo.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, topo.Kind())
		}
		m, n, l := topo.Size()
		if m != 6 || n != 5 {
			t.Errorf("New(%v).Size() = %d,%d,%d", k, m, n, l)
		}
		if k == Mesh3D6 && l != 4 {
			t.Errorf("3D l = %d, want 4", l)
		}
		if k != Mesh3D6 && l != 1 {
			t.Errorf("2D l = %d, want 1", l)
		}
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown kind did not panic")
		}
	}()
	New(Kind(42), 4, 4, 1)
}

func TestBadSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMesh2D4(0, 4) },
		func() { NewMesh2D3(4, 0) },
		func() { NewMesh2D8(-1, 4) },
		func() { NewMesh3D6(4, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad size did not panic")
				}
			}()
			f()
		}()
	}
}

// Canonical must return the paper's 512-node configurations.
func TestCanonical(t *testing.T) {
	for _, k := range Kinds() {
		topo := Canonical(k)
		if topo.NumNodes() != 512 {
			t.Errorf("Canonical(%v).NumNodes() = %d, want 512", k, topo.NumNodes())
		}
		m, n, l := topo.Size()
		if k == Mesh3D6 {
			if m != 8 || n != 8 || l != 8 {
				t.Errorf("Canonical(3D-6) = %dx%dx%d", m, n, l)
			}
		} else if m != 32 || n != 16 {
			t.Errorf("Canonical(%v) = %dx%d", k, m, n)
		}
	}
}

// Table 1 of the paper: optimal ETRs 2/3, 3/4, 5/8, 5/6.
func TestOptimalETRTable1(t *testing.T) {
	want := map[Kind][2]int{
		Mesh2D3: {2, 3}, Mesh2D4: {3, 4}, Mesh2D8: {5, 8}, Mesh3D6: {5, 6},
	}
	for k, w := range want {
		num, den := Canonical(k).OptimalETR()
		if num != w[0] || den != w[1] {
			t.Errorf("%v optimal ETR = %d/%d, want %d/%d", k, num, den, w[0], w[1])
		}
	}
}

func TestIndexAtRoundTrip(t *testing.T) {
	for _, topo := range allTestTopologies() {
		seen := make(map[int]bool)
		for i := 0; i < topo.NumNodes(); i++ {
			c := topo.At(i)
			if !topo.Contains(c) {
				t.Fatalf("%v: At(%d) = %v outside mesh", topo.Kind(), i, c)
			}
			if j := topo.Index(c); j != i {
				t.Fatalf("%v: Index(At(%d)) = %d", topo.Kind(), i, j)
			}
			if seen[i] {
				t.Fatalf("%v: duplicate index %d", topo.Kind(), i)
			}
			seen[i] = true
		}
	}
}

func TestContainsBorders(t *testing.T) {
	topo := NewMesh3D6(4, 3, 2)
	in := []Coord{C3(1, 1, 1), C3(4, 3, 2), C3(2, 2, 1)}
	out := []Coord{C3(0, 1, 1), C3(5, 3, 2), C3(4, 4, 2), C3(4, 3, 3), C3(1, 0, 1), C3(1, 1, 0)}
	for _, c := range in {
		if !topo.Contains(c) {
			t.Errorf("Contains(%v) = false", c)
		}
	}
	for _, c := range out {
		if topo.Contains(c) {
			t.Errorf("Contains(%v) = true", c)
		}
	}
}

// Neighbor lists must be symmetric, in-mesh, deduplicated, consistent
// with Connected and Degree, and bounded by MaxDegree.
func TestNeighborInvariants(t *testing.T) {
	for _, topo := range allTestTopologies() {
		var buf []Coord
		for i := 0; i < topo.NumNodes(); i++ {
			c := topo.At(i)
			buf = topo.Neighbors(c, buf[:0])
			if len(buf) != topo.Degree(c) {
				t.Fatalf("%v %v: len(Neighbors) = %d, Degree = %d",
					topo.Kind(), c, len(buf), topo.Degree(c))
			}
			if len(buf) > topo.MaxDegree() {
				t.Fatalf("%v %v: degree %d > max %d", topo.Kind(), c, len(buf), topo.MaxDegree())
			}
			seen := make(map[Coord]bool, len(buf))
			for _, nb := range buf {
				if nb == c {
					t.Fatalf("%v %v: self neighbor", topo.Kind(), c)
				}
				if !topo.Contains(nb) {
					t.Fatalf("%v %v: neighbor %v outside mesh", topo.Kind(), c, nb)
				}
				if seen[nb] {
					t.Fatalf("%v %v: duplicate neighbor %v", topo.Kind(), c, nb)
				}
				seen[nb] = true
				if !topo.Connected(c, nb) || !topo.Connected(nb, c) {
					t.Fatalf("%v: Connected(%v,%v) inconsistent with Neighbors", topo.Kind(), c, nb)
				}
				// Symmetry: c must be in nb's neighbor list.
				back := topo.Neighbors(nb, nil)
				found := false
				for _, b := range back {
					if b == c {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v: %v -> %v not symmetric", topo.Kind(), c, nb)
				}
			}
		}
	}
}

// Interior nodes must have exactly MaxDegree neighbors.
func TestInteriorDegree(t *testing.T) {
	for _, topo := range []Topology{
		NewMesh2D3(8, 8), NewMesh2D4(8, 8), NewMesh2D8(8, 8), NewMesh3D6(5, 5, 5),
	} {
		c := C3(3, 3, 3)
		if _, _, l := topo.Size(); l == 1 {
			c = C2(3, 3)
		}
		if d := topo.Degree(c); d != topo.MaxDegree() {
			t.Errorf("%v interior degree = %d, want %d", topo.Kind(), d, topo.MaxDegree())
		}
	}
}

// Connected must reject out-of-mesh endpoints and non-adjacent pairs.
func TestConnectedRejects(t *testing.T) {
	for _, topo := range allTestTopologies() {
		m, n, l := topo.Size()
		if topo.Connected(C3(1, 1, 1), C3(0, 1, 1)) {
			t.Errorf("%v: connected to out-of-mesh node", topo.Kind())
		}
		if m >= 4 && topo.Connected(C2(1, 1), C2(4, 1)) {
			t.Errorf("%v: distant nodes connected", topo.Kind())
		}
		_ = n
		_ = l
	}
}

// The handshake lemma: sum of degrees is even, and equals twice the
// edge count computed from Connected.
func TestHandshake(t *testing.T) {
	for _, topo := range []Topology{
		NewMesh2D3(7, 5), NewMesh2D4(7, 5), NewMesh2D8(7, 5), NewMesh3D6(4, 3, 3),
	} {
		sum := 0
		edges := 0
		for i := 0; i < topo.NumNodes(); i++ {
			a := topo.At(i)
			sum += topo.Degree(a)
			for j := i + 1; j < topo.NumNodes(); j++ {
				if topo.Connected(a, topo.At(j)) {
					edges++
				}
			}
		}
		if sum != 2*edges {
			t.Errorf("%v: degree sum %d != 2*edges %d", topo.Kind(), sum, 2*edges)
		}
	}
}

// Expected total edge counts for small meshes, computed by hand:
//   - 2D-4 m x n: (m-1)n + m(n-1)
//   - 2D-8 m x n: (m-1)n + m(n-1) + 2(m-1)(n-1)
//   - 3D-6 m x n x l: [(m-1)n + m(n-1)]l + mn(l-1)
//   - 2D-3 m x n: (m-1)n horizontal + vertical edges at even x+y
func TestEdgeCounts(t *testing.T) {
	count := func(topo Topology) int {
		edges := 0
		for i := 0; i < topo.NumNodes(); i++ {
			edges += topo.Degree(topo.At(i))
		}
		return edges / 2
	}
	if got := count(NewMesh2D4(4, 3)); got != (3*3 + 4*2) {
		t.Errorf("2D-4 4x3 edges = %d, want 17", got)
	}
	if got := count(NewMesh2D8(4, 3)); got != (3*3 + 4*2 + 2*3*2) {
		t.Errorf("2D-8 4x3 edges = %d, want 29", got)
	}
	if got := count(NewMesh3D6(4, 3, 2)); got != (17*2 + 12) {
		t.Errorf("3D-6 4x3x2 edges = %d, want 46", got)
	}
	// 2D-3 4x3: horizontal (4-1)*3 = 9; vertical: for y in {1,2}, x+y
	// even -> x in {odd/even}: y=1: x in {1,3}: 2; y=2: x in {2,4}: 2.
	if got := count(NewMesh2D3(4, 3)); got != 9+4 {
		t.Errorf("2D-3 4x3 edges = %d, want 13", got)
	}
}

// Each topology must be connected (single broadcast component).
func TestConnectivityBFS(t *testing.T) {
	for _, topo := range allTestTopologies() {
		visited := make([]bool, topo.NumNodes())
		queue := []int{0}
		visited[0] = true
		seen := 1
		var buf []Coord
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			buf = topo.Neighbors(topo.At(cur), buf[:0])
			for _, nb := range buf {
				j := topo.Index(nb)
				if !visited[j] {
					visited[j] = true
					seen++
					queue = append(queue, j)
				}
			}
		}
		if seen != topo.NumNodes() {
			t.Errorf("%v %v: graph not connected: reached %d of %d",
				topo.Kind(), sizeString(topo), seen, topo.NumNodes())
		}
	}
}

func sizeString(t Topology) string {
	m, n, l := t.Size()
	if l == 1 {
		return itoa(m) + "x" + itoa(n)
	}
	return itoa(m) + "x" + itoa(n) + "x" + itoa(l)
}

func itoa(v int) string {
	return string(appendInt(nil, v))
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// Neighbor order must be deterministic.
func TestNeighborsDeterministic(t *testing.T) {
	for _, topo := range allTestTopologies() {
		c := topo.At(topo.NumNodes() / 2)
		a := topo.Neighbors(c, nil)
		b := topo.Neighbors(c, nil)
		if len(a) != len(b) {
			t.Fatalf("%v: nondeterministic neighbor count", topo.Kind())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic neighbor order", topo.Kind())
			}
		}
	}
}

// Neighbors must reuse the destination slice without reallocating when
// capacity suffices (alloc-free hot path for the simulator).
func TestNeighborsAppendNoAlloc(t *testing.T) {
	topo := NewMesh2D8(10, 10)
	buf := make([]Coord, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = topo.Neighbors(C2(5, 5), buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Neighbors allocated %v times per run", allocs)
	}
}

// Sorted neighbor offsets of 2D-8 cover the full Moore neighborhood.
func TestMesh2D8MooreNeighborhood(t *testing.T) {
	topo := NewMesh2D8(5, 5)
	nbs := topo.Neighbors(C2(3, 3), nil)
	if len(nbs) != 8 {
		t.Fatalf("interior 2D-8 degree = %d", len(nbs))
	}
	sort.Slice(nbs, func(i, j int) bool {
		if nbs[i].Y != nbs[j].Y {
			return nbs[i].Y < nbs[j].Y
		}
		return nbs[i].X < nbs[j].X
	})
	want := []Coord{
		C2(2, 2), C2(3, 2), C2(4, 2),
		C2(2, 3), C2(4, 3),
		C2(2, 4), C2(3, 4), C2(4, 4),
	}
	for i := range want {
		if nbs[i] != want[i] {
			t.Fatalf("moore[%d] = %v, want %v", i, nbs[i], want[i])
		}
	}
}
