package grid_test

import (
	"fmt"
	"math/rand"
	"testing"

	"wsnbcast/internal/grid"
)

// opaque hides a topology's NeighborIndexer so tests can exercise the
// generic Neighbors+Index fallback of grid.IndexNeighbors.
type opaque struct{ grid.Topology }

// indexNeighborsRef is the specification IndexNeighbors must match:
// Topology.Neighbors mapped through Index, order preserved.
func indexNeighborsRef(t grid.Topology, i int) []int32 {
	out := []int32{}
	for _, nb := range t.Neighbors(t.At(i), nil) {
		out = append(out, int32(t.Index(nb)))
	}
	return out
}

// checkAllNodes requires IndexNeighbors == Neighbors+Index, order
// included, for every node of t.
func checkAllNodes(t *testing.T, topo grid.Topology) {
	t.Helper()
	var buf []int32
	for i := 0; i < topo.NumNodes(); i++ {
		want := indexNeighborsRef(topo, i)
		buf = grid.IndexNeighbors(topo, i, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("node %d (%s): IndexNeighbors len %d, Neighbors len %d\n got %v\nwant %v",
				i, topo.At(i), len(buf), len(want), buf, want)
		}
		for k := range want {
			if buf[k] != want[k] {
				t.Fatalf("node %d (%s): IndexNeighbors[%d] = %d, want %d\n got %v\nwant %v",
					i, topo.At(i), k, buf[k], want[k], buf, want)
			}
		}
	}
}

// TestIndexNeighborsMatchesNeighbors is the property test of the
// implicit-adjacency fast path: for every regular kind and a spread of
// sizes — including degenerate 1xN and Nx1 meshes, and 3D meshes with
// thin planes — the dense-index emission must equal the Coord-based
// enumeration exactly, order included. The engine's byte-identical
// contract between the implicit and materialized paths reduces to this
// property.
func TestIndexNeighborsMatchesNeighbors(t *testing.T) {
	sizes2D := [][2]int{
		{1, 1}, {1, 2}, {2, 1}, {1, 7}, {7, 1},
		{2, 2}, {3, 3}, {2, 9}, {9, 2}, {5, 4}, {10, 6}, {32, 16}, {17, 23},
	}
	for _, k := range grid.Kinds() {
		if k == grid.Mesh3D6 {
			continue
		}
		for _, sz := range sizes2D {
			t.Run(fmt.Sprintf("%s/%dx%d", k, sz[0], sz[1]), func(t *testing.T) {
				checkAllNodes(t, grid.New(k, sz[0], sz[1], 1))
			})
		}
	}
	sizes3D := [][3]int{
		{1, 1, 1}, {1, 1, 5}, {1, 5, 1}, {5, 1, 1},
		{2, 2, 2}, {3, 4, 5}, {8, 8, 8}, {4, 4, 3}, {7, 3, 2},
	}
	for _, sz := range sizes3D {
		t.Run(fmt.Sprintf("3D-6/%dx%dx%d", sz[0], sz[1], sz[2]), func(t *testing.T) {
			checkAllNodes(t, grid.NewMesh3D6(sz[0], sz[1], sz[2]))
		})
	}
}

// TestIndexNeighborsRandomizedSizes fuzzes the same property over
// randomized mesh dimensions with a fixed seed, sampling random nodes
// on meshes too large for the exhaustive scan.
func TestIndexNeighborsRandomizedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf []int32
	for trial := 0; trial < 40; trial++ {
		m, n := rng.Intn(200)+1, rng.Intn(200)+1
		l := 1
		k := grid.Kinds()[rng.Intn(len(grid.Kinds()))]
		if k == grid.Mesh3D6 {
			m, n, l = rng.Intn(40)+1, rng.Intn(40)+1, rng.Intn(40)+1
		}
		topo := grid.New(k, m, n, l)
		v := topo.NumNodes()
		for s := 0; s < 64; s++ {
			i := rng.Intn(v)
			want := indexNeighborsRef(topo, i)
			buf = grid.IndexNeighbors(topo, i, buf[:0])
			if fmt.Sprint(buf) != fmt.Sprint(want) {
				t.Fatalf("%s %dx%dx%d node %d: got %v, want %v", k, m, n, l, i, buf, want)
			}
		}
	}
}

// TestIndexNeighborsCorners pins the border cases explicitly: the four
// corners and edge midpoints of each 2D kind, and the eight corners
// plus interior/boundary plane centers of the 3D mesh.
func TestIndexNeighborsCorners(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		cases := []grid.Coord{
			grid.C3(1, 1, 1), grid.C3(m, 1, 1), grid.C3(1, n, 1), grid.C3(m, n, 1),
			grid.C3((m+1)/2, 1, 1), grid.C3(1, (n+1)/2, 1),
			grid.C3(m, (n+1)/2, 1), grid.C3((m+1)/2, n, 1),
			grid.C3((m+1)/2, (n+1)/2, 1),
		}
		if k == grid.Mesh3D6 {
			cases = append(cases,
				grid.C3(1, 1, l), grid.C3(m, 1, l), grid.C3(1, n, l), grid.C3(m, n, l),
				grid.C3((m+1)/2, (n+1)/2, l),       // top-plane center
				grid.C3((m+1)/2, (n+1)/2, (l+1)/2), // interior plane center
			)
		}
		var buf []int32
		for _, c := range cases {
			i := topo.Index(c)
			want := indexNeighborsRef(topo, i)
			buf = grid.IndexNeighbors(topo, i, buf[:0])
			if fmt.Sprint(buf) != fmt.Sprint(want) {
				t.Errorf("%s %s: got %v, want %v", k, c, buf, want)
			}
		}
	}
}

// TestIndexNeighborsIrregular covers the Irregular kind: the indexer
// must serve the instance's own adjacency, identical to the Coord
// enumeration.
func TestIndexNeighborsIrregular(t *testing.T) {
	topo := grid.NewIrregular(12, 9, 0.3, 1.6, 99)
	checkAllNodes(t, topo)
	if _, ok := topo.(grid.NeighborIndexer); !ok {
		t.Fatalf("Irregular does not implement NeighborIndexer")
	}
}

// TestIndexNeighborsFallback exercises the generic path for topologies
// without a NeighborIndexer.
func TestIndexNeighborsFallback(t *testing.T) {
	topo := opaque{grid.NewMesh2D8(6, 5)}
	if _, ok := interface{}(topo).(grid.NeighborIndexer); ok {
		t.Fatalf("opaque wrapper unexpectedly exposes NeighborIndexer")
	}
	checkAllNodes(t, topo)
}

// TestIndexNeighborsZeroAlloc proves the regular kinds emit into a
// caller buffer without allocating.
func TestIndexNeighborsZeroAlloc(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		ix := topo.(grid.NeighborIndexer)
		buf := make([]int32, 0, topo.MaxDegree())
		mid := topo.NumNodes() / 2
		allocs := testing.AllocsPerRun(100, func() {
			buf = ix.IndexNeighbors(mid, buf[:0])
		})
		if allocs != 0 {
			t.Errorf("%s: IndexNeighbors allocates %.1f per call into a sized buffer", k, allocs)
		}
	}
}
