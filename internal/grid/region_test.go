package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Base-node selection follows Section 3.3 exactly.
func TestBaseNodes(t *testing.T) {
	// Source (10,7): 10+7 odd -> vertical down exists -> a=(10,5), b=(10,8).
	a, b := BaseNodes(C2(10, 7))
	if a != C2(10, 5) || b != C2(10, 8) {
		t.Errorf("BaseNodes(10,7) = %v,%v, want (10,5),(10,8)", a, b)
	}
	// Source (5,4): 5+4 odd -> vertical down exists -> a=(5,2), b=(5,5).
	a, b = BaseNodes(C2(5, 4))
	if a != C2(5, 2) || b != C2(5, 5) {
		t.Errorf("BaseNodes(5,4) = %v,%v, want (5,2),(5,5)", a, b)
	}
	// Source (6,4): 6+4 even -> vertical up exists (down does not)
	// -> a=(6,3), b=(6,6).
	a, b = BaseNodes(C2(6, 4))
	if a != C2(6, 3) || b != C2(6, 6) {
		t.Errorf("BaseNodes(6,4) = %v,%v, want (6,3),(6,6)", a, b)
	}
}

// The three regions partition every mesh: each node is in exactly one.
func TestRegionPartition(t *testing.T) {
	topo := NewMesh2D3(20, 14)
	for s := 0; s < topo.NumNodes(); s++ {
		src := topo.At(s)
		counts := map[Region]int{}
		for i := 0; i < topo.NumNodes(); i++ {
			r := RegionOf(src, topo.At(i))
			if r != Region1 && r != Region2 && r != Region3 {
				t.Fatalf("RegionOf(%v,%v) = %d", src, topo.At(i), r)
			}
			counts[r]++
		}
		total := counts[Region1] + counts[Region2] + counts[Region3]
		if total != topo.NumNodes() {
			t.Fatalf("src %v: regions cover %d of %d", src, total, topo.NumNodes())
		}
	}
}

// The source and its base nodes classify as expected: base node a is
// the apex of region 2, base node b the apex of region 3, the source
// itself is in region 1.
func TestRegionApexes(t *testing.T) {
	src := C2(10, 7)
	a, b := BaseNodes(src)
	if r := RegionOf(src, src); r != Region1 {
		t.Errorf("source region = %v, want 1", r)
	}
	if r := RegionOf(src, a); r != Region2 {
		t.Errorf("base a region = %v, want 2", r)
	}
	if r := RegionOf(src, b); r != Region3 {
		t.Errorf("base b region = %v, want 3", r)
	}
}

// Region 2 lies strictly below the source row minus one; region 3
// strictly above. (The cones open downward/upward from the base nodes.)
func TestRegionVerticalSeparation(t *testing.T) {
	f := func(sx, sy, cx, cy uint8) bool {
		src := C2(int(sx)%24+1, int(sy)%24+4) // keep base nodes meaningful
		c := C2(int(cx)%24+1, int(cy)%24+1)
		a, b := BaseNodes(src)
		switch RegionOf(src, c) {
		case Region2:
			return c.Y <= a.Y
		case Region3:
			return c.Y >= b.Y
		default:
			return true
		}
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Nodes directly below the source (same column, far down) are in
// region 2; far up in region 3; far left/right on the source row in
// region 1.
func TestRegionDirections(t *testing.T) {
	src := C2(10, 7)
	if r := RegionOf(src, C2(10, 1)); r != Region2 {
		t.Errorf("below = %v, want 2", r)
	}
	if r := RegionOf(src, C2(10, 14)); r != Region3 {
		t.Errorf("above = %v, want 3", r)
	}
	if r := RegionOf(src, C2(1, 7)); r != Region1 {
		t.Errorf("left = %v, want 1", r)
	}
	if r := RegionOf(src, C2(20, 7)); r != Region1 {
		t.Errorf("right = %v, want 1", r)
	}
}
