package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordString(t *testing.T) {
	cases := []struct {
		c    Coord
		want string
	}{
		{C2(6, 8), "(6,8)"},
		{C2(1, 1), "(1,1)"},
		{C3(6, 8, 4), "(6,8,4)"},
		{C3(2, 3, 1), "(2,3)"}, // z == 1 is elided
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestCoordAdd(t *testing.T) {
	c := C3(5, 9, 2).Add(-2, 1, 3)
	if c != (Coord{X: 3, Y: 10, Z: 5}) {
		t.Fatalf("Add = %v", c)
	}
}

// The paper's Section 3 example: nodes (5,7), (6,6), (7,5) are in set
// S1(12), and nodes (5,3), (6,4), (7,5) are in set S2(2).
func TestDiagonalIndicesPaperExample(t *testing.T) {
	for _, c := range []Coord{C2(5, 7), C2(6, 6), C2(7, 5)} {
		if c.S1() != 12 {
			t.Errorf("%v.S1() = %d, want 12", c, c.S1())
		}
	}
	for _, c := range []Coord{C2(5, 3), C2(6, 4), C2(7, 5)} {
		if c.S2() != 2 {
			t.Errorf("%v.S2() = %d, want 2", c, c.S2())
		}
	}
}

func TestManhattanChebyshev(t *testing.T) {
	a, b := C3(1, 2, 3), C3(4, 2, 1)
	if d := a.ManhattanTo(b); d != 5 {
		t.Errorf("Manhattan = %d, want 5", d)
	}
	if d := a.ChebyshevTo(b); d != 3 {
		t.Errorf("Chebyshev = %d, want 3", d)
	}
	if d := a.ManhattanTo(a); d != 0 {
		t.Errorf("Manhattan self = %d", d)
	}
}

func TestDistanceSymmetryQuick(t *testing.T) {
	gen := func(r *rand.Rand) Coord {
		return Coord{X: r.Intn(64) + 1, Y: r.Intn(64) + 1, Z: r.Intn(8) + 1}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		return a.ManhattanTo(b) == b.ManhattanTo(a) &&
			a.ChebyshevTo(b) == b.ChebyshevTo(a) &&
			a.ChebyshevTo(b) <= a.ManhattanTo(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbs(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-3, 3}, {0, 0}, {7, 7}} {
		if got := abs(tc.in); got != tc.want {
			t.Errorf("abs(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
