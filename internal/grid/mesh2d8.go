package grid

// mesh2d8 is the 2D mesh with 8 neighbors (Fig. 3): node (x, y) is
// connected to the four axis neighbors and the four diagonal neighbors
// (x±1, y±1).
type mesh2d8 struct {
	base
}

var offsets2d8 = [][3]int{
	{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0},
	{-1, -1, 0}, {1, -1, 0}, {-1, 1, 0}, {1, 1, 0},
}

// NewMesh2D8 constructs an m x n 2D mesh with 8 neighbors.
func NewMesh2D8(m, n int) Topology {
	t := mesh2d8{base{m: m, n: n, l: 1}}
	t.check2D("Mesh2D8")
	return t
}

func (t mesh2d8) Kind() Kind     { return Mesh2D8 }
func (t mesh2d8) MaxDegree() int { return 8 }

// OptimalETR is 5/8: a diagonal forward covers 5 fresh neighbors out of
// 8 (Fig. 6 and Table 1) — the sender's own neighborhood overlaps the
// receiver's in 3 nodes.
func (t mesh2d8) OptimalETR() (int, int) { return 5, 8 }

func (t mesh2d8) Neighbors(c Coord, dst []Coord) []Coord {
	return neighborsFromOffsets(t.base, c, offsets2d8, dst)
}

func (t mesh2d8) Connected(a, b Coord) bool {
	if !t.Contains(a) || !t.Contains(b) {
		return false
	}
	return a.Z == b.Z && a.ChebyshevTo(b) == 1
}

func (t mesh2d8) Degree(c Coord) int {
	dx := 0
	if c.X > 1 {
		dx++
	}
	if c.X < t.m {
		dx++
	}
	dy := 0
	if c.Y > 1 {
		dy++
	}
	if c.Y < t.n {
		dy++
	}
	// (dx+1)*(dy+1) cells in the Moore neighborhood including self.
	return (dx+1)*(dy+1) - 1
}
