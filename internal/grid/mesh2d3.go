package grid

// mesh2d3 is the 2D mesh with 3 neighbors (Fig. 1): the brick-wall
// grid. Node (x, y) always has its horizontal neighbors (x±1, y) and
// exactly one vertical neighbor: the edge between (x, y) and (x, y+1)
// exists iff x+y is even.
//
// This parity convention is fixed by the paper's Section 3.3 example:
// for source (5, 4), node (5, 5) is NOT a neighbor (5+4 odd) while
// node (5, 3) IS (5+3 even).
type mesh2d3 struct {
	base
}

// NewMesh2D3 constructs an m x n 2D mesh with 3 neighbors.
func NewMesh2D3(m, n int) Topology {
	t := mesh2d3{base{m: m, n: n, l: 1}}
	t.check2D("Mesh2D3")
	return t
}

func (t mesh2d3) Kind() Kind     { return Mesh2D3 }
func (t mesh2d3) MaxDegree() int { return 3 }

// OptimalETR is 2/3 (Table 1).
func (t mesh2d3) OptimalETR() (int, int) { return 2, 3 }

// VerticalUp reports whether the vertical edge from (x, y) to (x, y+1)
// exists: iff x+y is even.
func VerticalUp(c Coord) bool { return (c.X+c.Y)%2 == 0 }

// VerticalDown reports whether the vertical edge from (x, y) to
// (x, y-1) exists: iff x+(y-1) is even, i.e. x+y odd.
func VerticalDown(c Coord) bool { return (c.X+c.Y)%2 != 0 }

func (t mesh2d3) Neighbors(c Coord, dst []Coord) []Coord {
	if c.X > 1 {
		dst = append(dst, c.Add(-1, 0, 0))
	}
	if c.X < t.m {
		dst = append(dst, c.Add(1, 0, 0))
	}
	if VerticalDown(c) && c.Y > 1 {
		dst = append(dst, c.Add(0, -1, 0))
	}
	if VerticalUp(c) && c.Y < t.n {
		dst = append(dst, c.Add(0, 1, 0))
	}
	return dst
}

func (t mesh2d3) Connected(a, b Coord) bool {
	if !t.Contains(a) || !t.Contains(b) || a.Z != b.Z {
		return false
	}
	if a.Y == b.Y && abs(a.X-b.X) == 1 {
		return true
	}
	if a.X == b.X && abs(a.Y-b.Y) == 1 {
		lo := a
		if b.Y < a.Y {
			lo = b
		}
		return VerticalUp(lo)
	}
	return false
}

func (t mesh2d3) Degree(c Coord) int {
	d := 0
	if c.X > 1 {
		d++
	}
	if c.X < t.m {
		d++
	}
	if VerticalDown(c) && c.Y > 1 {
		d++
	}
	if VerticalUp(c) && c.Y < t.n {
		d++
	}
	return d
}
