package grid

import (
	"fmt"
	"math"
)

// Irregular is the extension kind for randomized deployments: a
// jittered-grid random geometric graph. It is not one of the paper's
// four regular topologies (and is deliberately absent from Kinds());
// it exists to quantify the paper's Section 1 premise that "the WSN
// with regular topology can communicate more efficiently than the WSN
// with random topology".
const Irregular Kind = 100

// irregular is a random geometric graph over a jittered m x n grid:
// node (x, y) sits at (x + jx, y + jy) with |jx|,|jy| <= Jitter, and
// two nodes are connected iff their Euclidean distance is at most
// Radius (both in units of the grid spacing). The construction is
// deterministic in the seed.
type irregular struct {
	base
	jitter float64
	radius float64
	seed   uint64
	adj    [][]int32
	maxDeg int
}

// NewIrregular builds a jittered-grid random geometric topology.
// jitter is the maximum per-axis displacement (0 <= jitter < 0.5 keeps
// nodes in distinct cells), radius the connectivity range; both in
// units of the grid spacing. The same seed always yields the same
// graph.
func NewIrregular(m, n int, jitter, radius float64, seed uint64) Topology {
	if m < 1 || n < 1 {
		panic("grid: Irregular requires m, n >= 1")
	}
	if jitter < 0 || radius <= 0 {
		panic("grid: Irregular requires jitter >= 0 and radius > 0")
	}
	t := &irregular{
		base:   base{m: m, n: n, l: 1},
		jitter: jitter,
		radius: radius,
		seed:   seed,
	}
	t.build()
	return t
}

// position returns the jittered coordinates of node i.
func (t *irregular) position(i int) (float64, float64) {
	c := t.At(i)
	jx := t.uniform(uint64(i)*2+1)*2 - 1
	jy := t.uniform(uint64(i)*2+2)*2 - 1
	return float64(c.X) + jx*t.jitter, float64(c.Y) + jy*t.jitter
}

// uniform returns a deterministic value in [0, 1) derived from the
// seed and key (splitmix64).
func (t *irregular) uniform(key uint64) float64 {
	z := t.seed + key*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func (t *irregular) build() {
	v := t.NumNodes()
	xs := make([]float64, v)
	ys := make([]float64, v)
	for i := 0; i < v; i++ {
		xs[i], ys[i] = t.position(i)
	}
	t.adj = make([][]int32, v)
	r2 := t.radius * t.radius
	// Cell-bucketed neighbor search: nodes stay within jitter of their
	// cell, so candidates sit within ceil(radius + 2*jitter) cells.
	reach := int(math.Ceil(t.radius + 2*t.jitter))
	for i := 0; i < v; i++ {
		ci := t.At(i)
		for dy := -reach; dy <= reach; dy++ {
			for dx := -reach; dx <= reach; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				cj := ci.Add(dx, dy, 0)
				if !t.Contains(cj) {
					continue
				}
				j := t.Index(cj)
				ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
				if ddx*ddx+ddy*ddy <= r2 {
					t.adj[i] = append(t.adj[i], int32(j))
				}
			}
		}
		if len(t.adj[i]) > t.maxDeg {
			t.maxDeg = len(t.adj[i])
		}
	}
}

func (t *irregular) Kind() Kind { return Irregular }

func (t *irregular) MaxDegree() int { return t.maxDeg }

// OptimalETR for an irregular graph is the generic (N-1)/N bound.
func (t *irregular) OptimalETR() (int, int) {
	if t.maxDeg == 0 {
		return 0, 1
	}
	return t.maxDeg - 1, t.maxDeg
}

func (t *irregular) Neighbors(c Coord, dst []Coord) []Coord {
	if !t.Contains(c) {
		return dst
	}
	for _, j := range t.adj[t.Index(c)] {
		dst = append(dst, t.At(int(j)))
	}
	return dst
}

func (t *irregular) Connected(a, b Coord) bool {
	if !t.Contains(a) || !t.Contains(b) || a == b {
		return false
	}
	bi := int32(t.Index(b))
	for _, j := range t.adj[t.Index(a)] {
		if j == bi {
			return true
		}
	}
	return false
}

func (t *irregular) Degree(c Coord) int {
	if !t.Contains(c) {
		return 0
	}
	return len(t.adj[t.Index(c)])
}

// AvgDegree returns the mean node degree — the knob to match against a
// regular topology when comparing fairly.
func AvgDegree(t Topology) float64 {
	sum := 0
	for i := 0; i < t.NumNodes(); i++ {
		sum += t.Degree(t.At(i))
	}
	return float64(sum) / float64(t.NumNodes())
}

// IsConnectedGraph reports whether every node is reachable from node 0
// — random geometric graphs below the percolation radius fall apart,
// and broadcast experiments must check first.
func IsConnectedGraph(t Topology) bool {
	v := t.NumNodes()
	if v == 0 {
		return false
	}
	seen := make([]bool, v)
	seen[0] = true
	queue := []int{0}
	count := 1
	var buf []Coord
	for head := 0; head < len(queue); head++ {
		buf = t.Neighbors(t.At(queue[head]), buf[:0])
		for _, nb := range buf {
			j := t.Index(nb)
			if !seen[j] {
				seen[j] = true
				count++
				queue = append(queue, j)
			}
		}
	}
	return count == v
}

func (t *irregular) String() string {
	return fmt.Sprintf("irregular %dx%d (jitter %.2f, radius %.2f, seed %d)",
		t.m, t.n, t.jitter, t.radius, t.seed)
}
