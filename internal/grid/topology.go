// Package grid defines the four regular wireless-sensor-network
// topologies evaluated by the paper (2D mesh with 3, 4 and 8 neighbors,
// 3D mesh with 6 neighbors), plus the diagonal-axis and region geometry
// the broadcasting protocols are expressed in.
//
// The package is pure geometry: it answers "who are my neighbors",
// "which diagonal set am I in", "which region am I in" — it knows
// nothing about relays, slots or energy.
package grid

import "fmt"

// Kind enumerates the four regular topologies of the paper.
type Kind int

const (
	// Mesh2D3 is the 2D mesh with 3 neighbors (Fig. 1): a brick-wall
	// grid where every node has both horizontal neighbors and exactly
	// one vertical neighbor.
	Mesh2D3 Kind = iota
	// Mesh2D4 is the 2D mesh with 4 neighbors (Fig. 2): the standard
	// von-Neumann grid.
	Mesh2D4
	// Mesh2D8 is the 2D mesh with 8 neighbors (Fig. 3): the Moore grid
	// with diagonal links.
	Mesh2D8
	// Mesh3D6 is the 3D mesh with 6 neighbors (Fig. 4): stacked XY
	// planes of Mesh2D4 with Z links.
	Mesh3D6
)

// String returns the short name used throughout the paper's tables.
func (k Kind) String() string {
	switch k {
	case Mesh2D3:
		return "2D-3"
	case Mesh2D4:
		return "2D-4"
	case Mesh2D8:
		return "2D-8"
	case Mesh3D6:
		return "3D-6"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all four topologies in the paper's table order.
func Kinds() []Kind { return []Kind{Mesh2D3, Mesh2D4, Mesh2D8, Mesh3D6} }

// Topology is pure mesh geometry. Implementations are immutable and
// safe for concurrent use.
type Topology interface {
	// Kind identifies which of the four regular topologies this is.
	Kind() Kind
	// Size returns the mesh dimensions (m, n, l). For 2D meshes l == 1.
	Size() (m, n, l int)
	// NumNodes returns m * n * l.
	NumNodes() int
	// Contains reports whether the coordinate is inside the mesh.
	Contains(c Coord) bool
	// Neighbors appends the directly connected nodes of c to dst and
	// returns the extended slice. Border nodes have fewer neighbors
	// than MaxDegree. The order is deterministic.
	Neighbors(c Coord, dst []Coord) []Coord
	// Connected reports whether a and b are directly connected.
	Connected(a, b Coord) bool
	// Degree returns the actual number of neighbors of c (border-aware).
	Degree(c Coord) int
	// MaxDegree returns the nominal number of neighbors N of the
	// topology (3, 4, 8 or 6), the denominator of the ETR.
	MaxDegree() int
	// Index maps a coordinate to a dense index in [0, NumNodes).
	Index(c Coord) int
	// At is the inverse of Index.
	At(i int) Coord
	// OptimalETR returns the paper's optimal efficient transmission
	// ratio for a non-source relay as an exact fraction (Table 1).
	OptimalETR() (num, den int)
}

// base carries the shared size bookkeeping of all four topologies.
type base struct {
	m, n, l int
}

func (b base) Size() (int, int, int) { return b.m, b.n, b.l }

func (b base) NumNodes() int { return b.m * b.n * b.l }

func (b base) Contains(c Coord) bool {
	return c.X >= 1 && c.X <= b.m &&
		c.Y >= 1 && c.Y <= b.n &&
		c.Z >= 1 && c.Z <= b.l
}

func (b base) Index(c Coord) int {
	return (c.Z-1)*b.m*b.n + (c.Y-1)*b.m + (c.X - 1)
}

func (b base) At(i int) Coord {
	plane := b.m * b.n
	z := i / plane
	r := i % plane
	return Coord{X: r%b.m + 1, Y: r/b.m + 1, Z: z + 1}
}

func (b base) check2D(kind string) {
	if b.m < 1 || b.n < 1 {
		panic(fmt.Sprintf("grid: %s requires m, n >= 1 (got %dx%d)", kind, b.m, b.n))
	}
}

// New constructs the topology of the given kind. For 2D kinds l is
// ignored and forced to 1; for Mesh3D6 all three dimensions are used.
func New(k Kind, m, n, l int) Topology {
	switch k {
	case Mesh2D3:
		return NewMesh2D3(m, n)
	case Mesh2D4:
		return NewMesh2D4(m, n)
	case Mesh2D8:
		return NewMesh2D8(m, n)
	case Mesh3D6:
		return NewMesh3D6(m, n, l)
	default:
		panic(fmt.Sprintf("grid: unknown topology kind %d", int(k)))
	}
}

// Canonical returns the 512-node configuration of the paper's
// evaluation (Section 4): a 32x16 mesh for the 2D topologies and an
// 8x8x8 mesh for the 3D topology.
func Canonical(k Kind) Topology {
	if k == Mesh3D6 {
		return NewMesh3D6(8, 8, 8)
	}
	return New(k, 32, 16, 1)
}

// neighborsFromOffsets is the shared neighbor enumeration for the
// offset-defined topologies.
func neighborsFromOffsets(b base, c Coord, offs [][3]int, dst []Coord) []Coord {
	for _, o := range offs {
		nb := c.Add(o[0], o[1], o[2])
		if b.Contains(nb) {
			dst = append(dst, nb)
		}
	}
	return dst
}
