package grid

// Region partition for the 2D mesh with 3 neighbors (Section 3.3,
// Fig. 8). The source picks two base nodes (i_a, j_a) below it and
// (i_b, j_b) above it; region 2 is the diagonal cone below the lower
// base node, region 3 the diagonal cone above the upper base node, and
// region 1 everything else.

// Region identifies one of the three relay-selection regions.
type Region int

const (
	// Region1 is the middle band around the source's row.
	Region1 Region = 1
	// Region2 is the cone below the lower base node:
	// x+y <= i_a+j_a and x-y >= i_a-j_a.
	Region2 Region = 2
	// Region3 is the cone above the upper base node:
	// x+y >= i_b+j_b and x-y <= i_b-j_b.
	Region3 Region = 3
)

// BaseNodes returns the two base nodes (i_a, j_a) and (i_b, j_b) of a
// source in the 2D mesh with 3 neighbors:
//
//	if node (i, j-1) is a neighbor of source (i, j):
//	    (i_a, j_a) = (i, j-2), (i_b, j_b) = (i, j+1)
//	else:
//	    (i_a, j_a) = (i, j-1), (i_b, j_b) = (i, j+2)
//
// The base nodes may fall outside the mesh for sources near the top or
// bottom border; the region tests still apply (the out-of-mesh cone is
// simply empty or clipped).
func BaseNodes(src Coord) (a, b Coord) {
	if VerticalDown(src) {
		return src.Add(0, -2, 0), src.Add(0, 1, 0)
	}
	return src.Add(0, -1, 0), src.Add(0, 2, 0)
}

// RegionOf classifies node c with respect to the given source of a 2D
// mesh with 3 neighbors broadcast (Section 3.3):
//
//	region 2: x+y <= i_a+j_a and x-y >= i_a-j_a
//	region 3: x+y >= i_b+j_b and x-y <= i_b-j_b
//	region 1: otherwise
func RegionOf(src, c Coord) Region {
	a, b := BaseNodes(src)
	if c.S1() <= a.S1() && c.S2() >= a.S2() {
		return Region2
	}
	if c.S1() >= b.S1() && c.S2() <= b.S2() {
		return Region3
	}
	return Region1
}
