package grid

import "fmt"

// Coord identifies a node by its relative location in the regular mesh,
// exactly as the paper assigns ids: (x, y) in 2D networks and (x, y, z)
// in 3D networks. Coordinates are 1-based, matching the paper's figures
// (the corner of an m x n mesh is (1, 1)). For 2D topologies Z is 1.
type Coord struct {
	X, Y, Z int
}

// C2 builds a 2D coordinate (Z fixed to 1).
func C2(x, y int) Coord { return Coord{X: x, Y: y, Z: 1} }

// C3 builds a 3D coordinate.
func C3(x, y, z int) Coord { return Coord{X: x, Y: y, Z: z} }

// String renders the id the way the paper writes it: "(x,y)" for 2D
// (z == 1 is elided only when printing via a 2D topology; the bare
// String always includes all set dimensions for unambiguity).
func (c Coord) String() string {
	if c.Z == 1 {
		return fmt.Sprintf("(%d,%d)", c.X, c.Y)
	}
	return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z)
}

// Add returns the coordinate translated by (dx, dy, dz).
func (c Coord) Add(dx, dy, dz int) Coord {
	return Coord{X: c.X + dx, Y: c.Y + dy, Z: c.Z + dz}
}

// S1 returns the S1 diagonal-axis index of the coordinate: the paper
// defines node (i, j) to be in set S1(c) when c = i + j. Nodes sharing
// an S1 index form a straight line in the mesh (the S1 direction).
func (c Coord) S1() int { return c.X + c.Y }

// S2 returns the S2 diagonal-axis index: node (i, j) is in set S2(c)
// when c = i - j.
func (c Coord) S2() int { return c.X - c.Y }

// ManhattanTo returns the L1 distance between two coordinates.
func (c Coord) ManhattanTo(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y) + abs(c.Z-o.Z)
}

// ChebyshevTo returns the L-infinity distance between two coordinates.
func (c Coord) ChebyshevTo(o Coord) int {
	d := abs(c.X - o.X)
	if dy := abs(c.Y - o.Y); dy > d {
		d = dy
	}
	if dz := abs(c.Z - o.Z); dz > d {
		d = dz
	}
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
