package grid

// NeighborIndexer is the allocation-free companion of
// Topology.Neighbors: it emits the dense indices of a node's neighbors
// straight from lattice arithmetic (or, for Irregular, from the
// instance's own adjacency), without materializing Coord values. The
// emission order is exactly the order Topology.Neighbors produces —
// the simulation engine's byte-identical-results contract depends on
// it, and the property tests in indexer_test.go pin it for every kind.
//
// All topologies constructed by this package implement the interface;
// it exists as an optional interface so third-party Topology
// implementations keep working through the materialized fallback.
type NeighborIndexer interface {
	// IndexNeighbors appends the dense indices of node i's neighbors to
	// dst and returns the extended slice. i must be in [0, NumNodes).
	IndexNeighbors(i int, dst []int32) []int32
}

// IndexNeighbors appends the dense neighbor indices of node i of t to
// dst, using the topology's NeighborIndexer when it has one and the
// generic Neighbors+Index path otherwise. Callers on a hot path should
// type-assert once and call the interface directly; this helper is for
// the O(N) sizing and validation paths.
func IndexNeighbors(t Topology, i int, dst []int32) []int32 {
	if ix, ok := t.(NeighborIndexer); ok {
		return ix.IndexNeighbors(i, dst)
	}
	for _, nb := range t.Neighbors(t.At(i), nil) {
		dst = append(dst, int32(t.Index(nb)))
	}
	return dst
}

// The implicit implementations below decompose the dense index with
// 0-based coordinates (x = i mod m, y = (i div m) mod n, z = i div
// (m*n)) and emit neighbor indices as +-1 / +-m / +-m*n deltas, in the
// same order as the corresponding Neighbors method.

// IndexNeighbors implements NeighborIndexer: left, right, then the
// single parity-selected vertical neighbor (VerticalDown before
// VerticalUp), matching mesh2d3.Neighbors.
func (t mesh2d3) IndexNeighbors(i int, dst []int32) []int32 {
	x, y := i%t.m, i/t.m
	if x > 0 {
		dst = append(dst, int32(i-1))
	}
	if x < t.m-1 {
		dst = append(dst, int32(i+1))
	}
	// 1-based parity: VerticalUp((x+1, y+1)) == ((x+y) % 2 == 0).
	if (x+y)%2 != 0 && y > 0 {
		dst = append(dst, int32(i-t.m))
	}
	if (x+y)%2 == 0 && y < t.n-1 {
		dst = append(dst, int32(i+t.m))
	}
	return dst
}

// IndexNeighbors implements NeighborIndexer in offsets2d4 order:
// (-1,0), (1,0), (0,-1), (0,1).
func (t mesh2d4) IndexNeighbors(i int, dst []int32) []int32 {
	x, y := i%t.m, i/t.m
	if x > 0 {
		dst = append(dst, int32(i-1))
	}
	if x < t.m-1 {
		dst = append(dst, int32(i+1))
	}
	if y > 0 {
		dst = append(dst, int32(i-t.m))
	}
	if y < t.n-1 {
		dst = append(dst, int32(i+t.m))
	}
	return dst
}

// IndexNeighbors implements NeighborIndexer in offsets2d8 order: the
// four axis neighbors, then the four diagonals (-1,-1), (1,-1),
// (-1,1), (1,1).
func (t mesh2d8) IndexNeighbors(i int, dst []int32) []int32 {
	x, y := i%t.m, i/t.m
	left, right := x > 0, x < t.m-1
	below, above := y > 0, y < t.n-1
	if left {
		dst = append(dst, int32(i-1))
	}
	if right {
		dst = append(dst, int32(i+1))
	}
	if below {
		dst = append(dst, int32(i-t.m))
	}
	if above {
		dst = append(dst, int32(i+t.m))
	}
	if left && below {
		dst = append(dst, int32(i-t.m-1))
	}
	if right && below {
		dst = append(dst, int32(i-t.m+1))
	}
	if left && above {
		dst = append(dst, int32(i+t.m-1))
	}
	if right && above {
		dst = append(dst, int32(i+t.m+1))
	}
	return dst
}

// IndexNeighbors implements NeighborIndexer in offsets3d6 order:
// (-1,0,0), (1,0,0), (0,-1,0), (0,1,0), (0,0,-1), (0,0,1).
func (t mesh3d6) IndexNeighbors(i int, dst []int32) []int32 {
	plane := t.m * t.n
	z := i / plane
	r := i % plane
	x, y := r%t.m, r/t.m
	if x > 0 {
		dst = append(dst, int32(i-1))
	}
	if x < t.m-1 {
		dst = append(dst, int32(i+1))
	}
	if y > 0 {
		dst = append(dst, int32(i-t.m))
	}
	if y < t.n-1 {
		dst = append(dst, int32(i+t.m))
	}
	if z > 0 {
		dst = append(dst, int32(i-plane))
	}
	if z < t.l-1 {
		dst = append(dst, int32(i+plane))
	}
	return dst
}

// IndexNeighbors implements NeighborIndexer from the instance's own
// materialized adjacency — the graph is built once in NewIrregular, so
// consumers iterating through this method never pay a rebuild.
func (t *irregular) IndexNeighbors(i int, dst []int32) []int32 {
	return append(dst, t.adj[i]...)
}

var (
	_ NeighborIndexer = mesh2d3{}
	_ NeighborIndexer = mesh2d4{}
	_ NeighborIndexer = mesh2d8{}
	_ NeighborIndexer = mesh3d6{}
	_ NeighborIndexer = (*irregular)(nil)
)
