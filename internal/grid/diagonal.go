package grid

// Diagonal-axis geometry (Section 3 of the paper).
//
// For any node (i, j), the paper defines two diagonal axes:
//   - node (i, j) is in set S1(c) when c = i + j;
//   - node (i, j) is in set S2(c) when c = i - j.
// Nodes in one set form a straight diagonal line in the mesh.
//
// For the 2D mesh with 3 neighbors the paper additionally defines the
// basic relay strips B1 and B2 of a node: a pair of adjacent S1 (resp.
// S2) lines, whose union is a connected "staircase" in the brick-wall
// grid.

// InS1 reports whether c lies on the diagonal line S1(idx).
func InS1(c Coord, idx int) bool { return c.S1() == idx }

// InS2 reports whether c lies on the diagonal line S2(idx).
func InS2(c Coord, idx int) bool { return c.S2() == idx }

// S1Line returns, in increasing x order, the nodes of S1(idx) inside t.
// The line contains the nodes (x, idx-x).
func S1Line(t Topology, idx int) []Coord {
	m, n, _ := t.Size()
	var line []Coord
	for x := 1; x <= m; x++ {
		y := idx - x
		if y >= 1 && y <= n {
			line = append(line, C2(x, y))
		}
	}
	return line
}

// S2Line returns, in increasing x order, the nodes of S2(idx) inside t.
// The line contains the nodes (x, x-idx).
func S2Line(t Topology, idx int) []Coord {
	m, n, _ := t.Size()
	var line []Coord
	for x := 1; x <= m; x++ {
		y := x - idx
		if y >= 1 && y <= n {
			line = append(line, C2(x, y))
		}
	}
	return line
}

// Strip is a pair of adjacent diagonal lines of one type — the paper's
// B1(i, j) and B2(i, j) basic relay sets for the 2D mesh with 3
// neighbors. Lo and Hi are the two line indices (Hi = Lo or Lo±1
// collapsed so that Lo <= Hi).
type Strip struct {
	// Axis is 1 for S1 strips and 2 for S2 strips.
	Axis int
	// Lo and Hi are the smallest and largest line index of the strip.
	Lo, Hi int
}

// Contains reports whether c lies on the strip.
func (s Strip) Contains(c Coord) bool {
	idx := c.S1()
	if s.Axis == 2 {
		idx = c.S2()
	}
	return idx >= s.Lo && idx <= s.Hi
}

// B1 returns the B1(i, j) strip of the paper for the 2D mesh with 3
// neighbors:
//
//	if node (i, j+1) is a neighbor of (i, j):
//	    B1(i,j) = S1(i+j) u S1(i+j+1)
//	else:
//	    B1(i,j) = S1(i+j) u S1(i+j-1)
func B1(c Coord) Strip {
	if VerticalUp(c) {
		return Strip{Axis: 1, Lo: c.S1(), Hi: c.S1() + 1}
	}
	return Strip{Axis: 1, Lo: c.S1() - 1, Hi: c.S1()}
}

// B2 returns the B2(i, j) strip of the paper for the 2D mesh with 3
// neighbors:
//
//	if node (i, j+1) is a neighbor of (i, j):
//	    B2(i,j) = S2(i-j) u S2(i-j-1)
//	else:
//	    B2(i,j) = S2(i-j) u S2(i-j+1)
func B2(c Coord) Strip {
	if VerticalUp(c) {
		return Strip{Axis: 2, Lo: c.S2() - 1, Hi: c.S2()}
	}
	return Strip{Axis: 2, Lo: c.S2(), Hi: c.S2() + 1}
}
