package grid

// mesh2d4 is the 2D mesh with 4 neighbors (Fig. 2): node (x, y) is
// connected to (x±1, y) and (x, y±1).
type mesh2d4 struct {
	base
}

var offsets2d4 = [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}}

// NewMesh2D4 constructs an m x n 2D mesh with 4 neighbors.
func NewMesh2D4(m, n int) Topology {
	t := mesh2d4{base{m: m, n: n, l: 1}}
	t.check2D("Mesh2D4")
	return t
}

func (t mesh2d4) Kind() Kind     { return Mesh2D4 }
func (t mesh2d4) MaxDegree() int { return 4 }

// OptimalETR is 3/4: a non-source relay's transmitter already holds the
// message, so at most 3 of its 4 neighbors receive it fresh (Table 1).
func (t mesh2d4) OptimalETR() (int, int) { return 3, 4 }

func (t mesh2d4) Neighbors(c Coord, dst []Coord) []Coord {
	return neighborsFromOffsets(t.base, c, offsets2d4, dst)
}

func (t mesh2d4) Connected(a, b Coord) bool {
	if !t.Contains(a) || !t.Contains(b) {
		return false
	}
	return a.ManhattanTo(b) == 1 && a.Z == b.Z
}

func (t mesh2d4) Degree(c Coord) int {
	d := 0
	if c.X > 1 {
		d++
	}
	if c.X < t.m {
		d++
	}
	if c.Y > 1 {
		d++
	}
	if c.Y < t.n {
		d++
	}
	return d
}
