package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's Section 3.3 example fixes the brick-wall parity: for
// source (5,4), node (5,5) is NOT a neighbor while (5,3) is.
func TestMesh2D3PaperParity(t *testing.T) {
	topo := NewMesh2D3(10, 10)
	if topo.Connected(C2(5, 4), C2(5, 5)) {
		t.Error("(5,5) must not be a neighbor of (5,4)")
	}
	if !topo.Connected(C2(5, 4), C2(5, 3)) {
		t.Error("(5,3) must be a neighbor of (5,4)")
	}
	if VerticalUp(C2(5, 4)) {
		t.Error("VerticalUp(5,4) must be false (5+4 odd)")
	}
	if !VerticalDown(C2(5, 4)) {
		t.Error("VerticalDown(5,4) must be true")
	}
}

// Every node has exactly one vertical link direction available.
func TestMesh2D3VerticalExclusive(t *testing.T) {
	f := func(x, y uint8) bool {
		c := C2(int(x)+1, int(y)+1)
		return VerticalUp(c) != VerticalDown(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A vertical edge must be agreed on by both endpoints.
func TestMesh2D3VerticalAgreement(t *testing.T) {
	topo := NewMesh2D3(12, 12)
	for y := 1; y < 12; y++ {
		for x := 1; x <= 12; x++ {
			lo, hi := C2(x, y), C2(x, y+1)
			up := VerticalUp(lo)
			down := VerticalDown(hi)
			if up != down {
				t.Fatalf("edge %v-%v: up=%v down=%v", lo, hi, up, down)
			}
			if topo.Connected(lo, hi) != up {
				t.Fatalf("Connected(%v,%v) = %v, VerticalUp = %v",
					lo, hi, topo.Connected(lo, hi), up)
			}
		}
	}
}

// Interior nodes of 2D-3 have exactly 3 neighbors: two horizontal, one
// vertical.
func TestMesh2D3InteriorDegree(t *testing.T) {
	topo := NewMesh2D3(16, 16)
	for y := 2; y <= 15; y++ {
		for x := 2; x <= 15; x++ {
			if d := topo.Degree(C2(x, y)); d != 3 {
				t.Fatalf("(%d,%d) degree = %d", x, y, d)
			}
		}
	}
}

// Row 1 and row n nodes whose vertical link points outside the mesh
// have degree 2 (or 1 in a 1-wide mesh).
func TestMesh2D3BorderDegrees(t *testing.T) {
	topo := NewMesh2D3(6, 4)
	// (1,1): x+y=2 even -> vertical up exists; horizontal right only.
	if d := topo.Degree(C2(1, 1)); d != 2 {
		t.Errorf("(1,1) degree = %d, want 2", d)
	}
	// (2,1): x+y=3 odd -> vertical down (outside); two horizontal.
	if d := topo.Degree(C2(2, 1)); d != 2 {
		t.Errorf("(2,1) degree = %d, want 2", d)
	}
	// (2,4): x+y=6 even -> vertical up outside; two horizontal.
	if d := topo.Degree(C2(2, 4)); d != 2 {
		t.Errorf("(2,4) degree = %d, want 2", d)
	}
}

// B1/B2 strips must contain the anchor node and be connected staircases
// in the brick-wall graph.
func TestStripGeometry(t *testing.T) {
	topo := NewMesh2D3(14, 14)
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		b1, b2 := B1(c), B2(c)
		if !b1.Contains(c) {
			t.Fatalf("B1(%v) does not contain anchor", c)
		}
		if !b2.Contains(c) {
			t.Fatalf("B2(%v) does not contain anchor", c)
		}
		if b1.Hi-b1.Lo != 1 || b2.Hi-b2.Lo != 1 {
			t.Fatalf("strip of %v is not two adjacent lines", c)
		}
		if b1.Axis != 1 || b2.Axis != 2 {
			t.Fatalf("strip axes of %v wrong", c)
		}
	}
}

// stripNodes collects the in-mesh nodes of a strip.
func stripNodes(topo Topology, s Strip) []Coord {
	var nodes []Coord
	for i := 0; i < topo.NumNodes(); i++ {
		c := topo.At(i)
		if s.Contains(c) {
			nodes = append(nodes, c)
		}
	}
	return nodes
}

// A B1/B2 strip induces a connected subgraph of the 2D-3 mesh: the
// staircase is traversable hop by hop, which is what makes it usable
// as a relay path.
func TestStripConnectedSubgraph(t *testing.T) {
	topo := NewMesh2D3(12, 12)
	anchors := []Coord{C2(5, 4), C2(6, 6), C2(1, 1), C2(12, 12), C2(7, 2)}
	for _, a := range anchors {
		for _, s := range []Strip{B1(a), B2(a)} {
			nodes := stripNodes(topo, s)
			if len(nodes) == 0 {
				t.Fatalf("strip of %v empty", a)
			}
			idx := make(map[Coord]int, len(nodes))
			for i, c := range nodes {
				idx[c] = i
			}
			visited := make([]bool, len(nodes))
			stack := []int{0}
			visited[0] = true
			count := 1
			var buf []Coord
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				buf = topo.Neighbors(nodes[cur], buf[:0])
				for _, nb := range buf {
					if j, ok := idx[nb]; ok && !visited[j] {
						visited[j] = true
						count++
						stack = append(stack, j)
					}
				}
			}
			if count != len(nodes) {
				t.Errorf("strip %+v of %v not connected: %d of %d", s, a, count, len(nodes))
			}
		}
	}
}

// S1Line and S2Line must return exactly the in-mesh nodes with the
// matching diagonal index, in increasing x order.
func TestDiagonalLines(t *testing.T) {
	topo := NewMesh2D4(8, 6)
	line := S1Line(topo, 7)
	if len(line) == 0 {
		t.Fatal("S1(7) empty")
	}
	prevX := 0
	for _, c := range line {
		if c.S1() != 7 || !topo.Contains(c) {
			t.Fatalf("S1Line element %v invalid", c)
		}
		if c.X <= prevX {
			t.Fatalf("S1Line not increasing in x")
		}
		prevX = c.X
	}
	line2 := S2Line(topo, 2)
	for _, c := range line2 {
		if c.S2() != 2 || !topo.Contains(c) {
			t.Fatalf("S2Line element %v invalid", c)
		}
	}
	// Counts: S1(7) in 8x6: x from 1..6 (y=7-x in 1..6) -> 6 nodes.
	if len(line) != 6 {
		t.Errorf("len(S1Line(7)) = %d, want 6", len(line))
	}
	// S2(2): y=x-2, x from 3..8 -> 6 nodes.
	if len(line2) != 6 {
		t.Errorf("len(S2Line(2)) = %d, want 6", len(line2))
	}
	if got := S1Line(topo, 100); got != nil {
		t.Errorf("far S1 line not empty: %v", got)
	}
}

func TestInS1InS2(t *testing.T) {
	if !InS1(C2(6, 6), 12) || InS1(C2(6, 6), 11) {
		t.Error("InS1 wrong")
	}
	if !InS2(C2(6, 4), 2) || InS2(C2(6, 4), 3) {
		t.Error("InS2 wrong")
	}
}

// Property: strip membership is equivalent to the diagonal index being
// one of the two strip lines.
func TestStripContainsQuick(t *testing.T) {
	f := func(ax, ay, cx, cy uint8) bool {
		a := C2(int(ax)%30+1, int(ay)%30+1)
		c := C2(int(cx)%30+1, int(cy)%30+1)
		b1 := B1(a)
		want := c.S1() == b1.Lo || c.S1() == b1.Hi
		return b1.Contains(c) == want
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
