package grid

// mesh3d6 is the 3D mesh with 6 neighbors (Fig. 4): stacked XY planes
// of the 2D mesh with 4 neighbors, with additional links along the Z
// axis. Node (x, y, z) is connected to (x±1, y, z), (x, y±1, z) and
// (x, y, z±1).
type mesh3d6 struct {
	base
}

var offsets3d6 = [][3]int{
	{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1},
}

// NewMesh3D6 constructs an m x n x l 3D mesh with 6 neighbors.
func NewMesh3D6(m, n, l int) Topology {
	if m < 1 || n < 1 || l < 1 {
		panic("grid: Mesh3D6 requires m, n, l >= 1")
	}
	return mesh3d6{base{m: m, n: n, l: l}}
}

func (t mesh3d6) Kind() Kind     { return Mesh3D6 }
func (t mesh3d6) MaxDegree() int { return 6 }

// OptimalETR is 5/6 (Table 1).
func (t mesh3d6) OptimalETR() (int, int) { return 5, 6 }

func (t mesh3d6) Neighbors(c Coord, dst []Coord) []Coord {
	return neighborsFromOffsets(t.base, c, offsets3d6, dst)
}

func (t mesh3d6) Connected(a, b Coord) bool {
	if !t.Contains(a) || !t.Contains(b) {
		return false
	}
	return a.ManhattanTo(b) == 1
}

func (t mesh3d6) Degree(c Coord) int {
	d := 0
	if c.X > 1 {
		d++
	}
	if c.X < t.m {
		d++
	}
	if c.Y > 1 {
		d++
	}
	if c.Y < t.n {
		d++
	}
	if c.Z > 1 {
		d++
	}
	if c.Z < t.l {
		d++
	}
	return d
}
