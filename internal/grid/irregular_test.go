package grid

import (
	"testing"
	"testing/quick"
)

func TestIrregularDeterministic(t *testing.T) {
	a := NewIrregular(10, 10, 0.3, 1.4, 7)
	b := NewIrregular(10, 10, 0.3, 1.4, 7)
	for i := 0; i < a.NumNodes(); i++ {
		c := a.At(i)
		na := a.Neighbors(c, nil)
		nb := b.Neighbors(c, nil)
		if len(na) != len(nb) {
			t.Fatalf("node %v: %d vs %d neighbors", c, len(na), len(nb))
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("node %v: neighbor %d differs", c, k)
			}
		}
	}
	// A different seed yields a different graph (overwhelmingly).
	cdiff := NewIrregular(10, 10, 0.3, 1.4, 8)
	same := true
	for i := 0; i < a.NumNodes() && same; i++ {
		if len(a.Neighbors(a.At(i), nil)) != len(cdiff.Neighbors(a.At(i), nil)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical degree sequences (suspicious)")
	}
}

func TestIrregularSymmetry(t *testing.T) {
	topo := NewIrregular(12, 8, 0.4, 1.5, 42)
	for i := 0; i < topo.NumNodes(); i++ {
		a := topo.At(i)
		for _, b := range topo.Neighbors(a, nil) {
			if !topo.Connected(b, a) {
				t.Fatalf("asymmetric edge %v-%v", a, b)
			}
		}
		if topo.Connected(a, a) {
			t.Fatalf("self-loop at %v", a)
		}
		if topo.Degree(a) != len(topo.Neighbors(a, nil)) {
			t.Fatalf("degree mismatch at %v", a)
		}
	}
}

// With zero jitter and radius 1, the irregular graph IS the 2D-4 mesh.
func TestIrregularDegeneratesTo2D4(t *testing.T) {
	rgg := NewIrregular(8, 6, 0, 1.0, 1)
	ref := NewMesh2D4(8, 6)
	for i := 0; i < ref.NumNodes(); i++ {
		c := ref.At(i)
		if rgg.Degree(c) != ref.Degree(c) {
			t.Fatalf("%v: degree %d vs %d", c, rgg.Degree(c), ref.Degree(c))
		}
		for _, nb := range ref.Neighbors(c, nil) {
			if !rgg.Connected(c, nb) {
				t.Fatalf("missing edge %v-%v", c, nb)
			}
		}
	}
}

// With radius ~1.5 and zero jitter it becomes the 2D-8 mesh.
func TestIrregularDegeneratesTo2D8(t *testing.T) {
	rgg := NewIrregular(8, 6, 0, 1.45, 1)
	ref := NewMesh2D8(8, 6)
	for i := 0; i < ref.NumNodes(); i++ {
		c := ref.At(i)
		if rgg.Degree(c) != ref.Degree(c) {
			t.Fatalf("%v: degree %d vs %d", c, rgg.Degree(c), ref.Degree(c))
		}
	}
}

func TestIrregularConnectivityHelpers(t *testing.T) {
	well := NewIrregular(10, 10, 0.2, 1.6, 3)
	if !IsConnectedGraph(well) {
		t.Error("radius 1.6 RGG should be connected")
	}
	sparse := NewIrregular(10, 10, 0.45, 0.35, 3)
	if IsConnectedGraph(sparse) {
		t.Error("radius 0.35 with jitter should disconnect")
	}
	if d := AvgDegree(well); d < 4 || d > 10 {
		t.Errorf("avg degree %f out of expected band", d)
	}
	if AvgDegree(NewMesh2D4(100, 100)) >= 4 {
		// borders pull the average strictly below 4
		t.Error("2D-4 average degree must be < 4")
	}
}

func TestIrregularKindAndETR(t *testing.T) {
	topo := NewIrregular(6, 6, 0.3, 1.4, 5)
	if topo.Kind() != Irregular {
		t.Errorf("kind = %v", topo.Kind())
	}
	num, den := topo.OptimalETR()
	if den != topo.MaxDegree() || num != den-1 {
		t.Errorf("ETR = %d/%d for max degree %d", num, den, topo.MaxDegree())
	}
	for _, k := range Kinds() {
		if k == Irregular {
			t.Error("Irregular must not appear in Kinds()")
		}
	}
}

func TestIrregularBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewIrregular(0, 5, 0.1, 1, 1) },
		func() { NewIrregular(5, 5, -0.1, 1, 1) },
		func() { NewIrregular(5, 5, 0.1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad params did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: jitter displaces each node by at most jitter per axis
// (sqrt(2)*jitter in Euclidean length), so an edge of length <= radius
// never connects cells farther than radius + 2*sqrt(2)*jitter apart.
func TestIrregularEdgeLengthBound(t *testing.T) {
	f := func(seed uint16) bool {
		topo := NewIrregular(8, 8, 0.4, 1.3, uint64(seed))
		limit := 1.3 + 2*0.4*1.4142136
		for i := 0; i < topo.NumNodes(); i++ {
			a := topo.At(i)
			for _, b := range topo.Neighbors(a, nil) {
				dx := float64(a.X - b.X)
				dy := float64(a.Y - b.Y)
				if dx*dx+dy*dy > limit*limit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIrregularOutOfMeshQueries(t *testing.T) {
	topo := NewIrregular(5, 5, 0.2, 1.2, 1)
	if got := topo.Neighbors(C2(9, 9), nil); got != nil {
		t.Errorf("out-of-mesh neighbors = %v", got)
	}
	if topo.Degree(C2(9, 9)) != 0 {
		t.Error("out-of-mesh degree")
	}
	if topo.Connected(C2(1, 1), C2(9, 9)) {
		t.Error("out-of-mesh connected")
	}
}
