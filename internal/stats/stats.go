// Package stats provides the small statistics toolkit the analysis
// layer builds on: numerically stable running moments (Welford),
// quantiles, and fixed-width histograms for per-node distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates count, mean and variance in one pass using
// Welford's algorithm; numerically stable for long sweeps. The zero
// value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add accumulates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll accumulates the observations in order, exactly equivalent to
// calling Add on each: the Monte Carlo layer gathers one grid point's
// per-lane samples into a slice and folds them in with one call, and
// because the fold order is the slice order the running moments stay
// byte-identical to the per-replication loop they replaced.
func (r *Running) AddAll(xs ...float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 for no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance.
func (r *Running) Var() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// SampleVar returns the unbiased (n-1 denominator) sample variance,
// the estimator Monte Carlo replications call for; 0 for fewer than
// two observations.
func (r *Running) SampleVar() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdErr returns the standard error of the mean,
// sqrt(SampleVar / n); 0 for fewer than two observations.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.SampleVar() / float64(r.n))
}

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval for the mean, 1.96 * StdErr. The normal
// approximation is what replication counts of ~30+ warrant; callers
// running very few replications should read it as a rough error bar,
// not a calibrated interval.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Min and Max return the observed extremes (0 for no observations).
func (r *Running) Min() float64 { return r.min }
func (r *Running) Max() float64 { return r.max }

// String renders "n=512 mean=2.56e-02 std=1.2e-04 [min, max]".
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g [%.4g, %.4g]",
		r.n, r.mean, r.StdDev(), r.min, r.max)
}

// Quantile returns the q-quantile (q in [0,1], clamped) of the values
// by nearest-rank on a sorted copy.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram builds a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 || !(hi > lo) {
		panic("stats: histogram needs hi > lo and buckets >= 1")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add counts one observation (out-of-range values go to under/over).
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns all observations including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.under + h.over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render draws the histogram as ASCII bars of at most width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 1
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var sb strings.Builder
	step := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&sb, "[%10.3g, %10.3g) %6d %s\n",
			h.Lo+float64(i)*step, h.Lo+float64(i+1)*step, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&sb, "under: %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "over: %d\n", h.over)
	}
	return sb.String()
}
