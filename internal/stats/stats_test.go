package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningExact(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %g", r.Mean())
	}
	if r.StdDev() != 2 {
		t.Errorf("StdDev = %g", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("extremes = %g, %g", r.Min(), r.Max())
	}
	if !strings.Contains(r.String(), "n=8") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.StdDev() != 0 || r.N() != 0 {
		t.Error("empty accumulator not zero")
	}
	if r.SampleVar() != 0 || r.StdErr() != 0 || r.CI95() != 0 {
		t.Error("empty accumulator has a nonzero interval")
	}
}

// Sample moments: n-1 denominator, stderr = s/sqrt(n), normal 95%
// half-width 1.96*stderr; a single observation has no interval.
func TestRunningSampleMoments(t *testing.T) {
	var r Running
	r.Add(3)
	if r.SampleVar() != 0 || r.CI95() != 0 {
		t.Error("one observation should carry no spread")
	}
	for _, x := range []float64{5, 7} {
		r.Add(x)
	}
	if v := r.SampleVar(); v != 4 { // {3,5,7}: m2=8, n-1=2
		t.Errorf("SampleVar = %g, want 4", v)
	}
	wantSE := math.Sqrt(4.0 / 3.0)
	if se := r.StdErr(); math.Abs(se-wantSE) > 1e-12 {
		t.Errorf("StdErr = %g, want %g", se, wantSE)
	}
	if ci := r.CI95(); math.Abs(ci-1.96*wantSE) > 1e-12 {
		t.Errorf("CI95 = %g, want %g", ci, 1.96*wantSE)
	}
	// Relationship to the population variance: SampleVar = Var * n/(n-1).
	if got, want := r.SampleVar(), r.Var()*3/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleVar %g inconsistent with Var %g", got, r.Var())
	}
}

// AddAll must be bit-identical to the Add loop it replaces: running
// moments are fold-order sensitive, so the Monte Carlo layer's batch
// fold may not deviate from per-replication accumulation by even an
// ulp. Running is a comparable value type, so equality is exact.
func TestAddAllMatchesAddLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	var loop, batch Running
	for _, x := range xs {
		loop.Add(x)
	}
	batch.AddAll(xs...)
	if loop != batch {
		t.Errorf("AddAll diverges from the Add loop: %v vs %v", batch, loop)
	}
	var empty Running
	empty.AddAll()
	if empty != (Running{}) {
		t.Error("AddAll with no observations mutated the accumulator")
	}
}

// Welford must agree with the two-pass formula.
func TestRunningMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			r.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Var()-v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("q.5 = %g", q)
	}
	if q := Quantile(xs, -1); q != 1 {
		t.Errorf("clamped low = %g", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %g", q)
	}
	// The input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.9, -1, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 1 { // 9.9
		t.Errorf("bucket 4 = %d", h.Counts[4])
	}
	out := h.Render(20)
	if !strings.Contains(out, "under: 1") || !strings.Contains(out, "over: 2") {
		t.Errorf("render missing out-of-range:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("render missing bars:\n%s", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramRenderDefaultWidth(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.2)
	if out := h.Render(0); !strings.Contains(out, "#") {
		t.Errorf("default width render:\n%s", out)
	}
}
