package experiments

import (
	"fmt"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// ExtensionRobustness (E4) injects node failures and measures how much
// of the live network each strategy still reaches. The paper's sparse
// relay structures are efficient precisely because they concentrate
// forwarding on few nodes — which makes them fragile; the scheduler's
// repair planner restores delivery at the cost of extra
// retransmissions, while flooding is naturally redundant. The table
// reports, per failure count: reachability without repairs, and the
// repairs needed for full delivery to the connected live nodes.
func ExtensionRobustness(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E4. Node-failure robustness (2D-4 32x16, source (16,8), deterministic failure sets)",
		Headers: []string{"Failures", "Protocol", "Reach (no repair)",
			"Repairs for 100%", "Power (J)"},
	}
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	for _, failures := range []int{0, 4, 16, 48} {
		down := failureSet(topo, src, failures)
		for _, p := range []sim.Protocol{core.NewMesh4Protocol(), core.NewFlooding()} {
			bare, err := sim.Run(topo, p, src, sim.Config{Down: down, DisableRepair: true})
			if err != nil {
				return nil, err
			}
			repaired, err := sim.Run(topo, p, src, sim.Config{Down: down})
			if err != nil {
				return nil, err
			}
			reach := table.FormatPercent(bare.Reachability())
			repairs := fmt.Sprintf("%d", repaired.Repairs)
			if !repaired.FullyReached() {
				repairs = fmt.Sprintf("%d (live graph cut: %d unreachable)",
					repaired.Repairs, repaired.Total-repaired.Reached)
			}
			t.AddRow(failures, p.Name(), reach, repairs, repaired.EnergyJ)
		}
	}
	return t, nil
}

// failureSet picks n deterministic failed nodes spread over the mesh,
// never the source: every k-th node of the index space, offset to
// avoid the source.
func failureSet(t grid.Topology, src grid.Coord, n int) []grid.Coord {
	if n <= 0 {
		return nil
	}
	v := t.NumNodes()
	step := v / (n + 1)
	if step < 1 {
		step = 1
	}
	srcIdx := t.Index(src)
	var out []grid.Coord
	for i := step; len(out) < n && i < v; i += step {
		if i == srcIdx {
			continue
		}
		out = append(out, t.At(i))
	}
	return out
}
