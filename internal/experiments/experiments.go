// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) from the simulator, side by side with
// the values the paper reports. It is the single source of truth for
// the wsnbench/wsnviz tools, the benchmark harness and EXPERIMENTS.md.
//
// The source-position sweeps behind Tables 3-5 run on the parallel
// sweep engine (internal/sweep); Config.Workers bounds the pool. The
// engine gathers results in source order, so the tables are identical
// for every pool size.
//
// The deterministic tables and figures are pinned by golden files
// under testdata/; regenerate them after an intended output change
// with:
//
//	go test ./internal/experiments -run Golden -update
package experiments

import (
	"context"
	"fmt"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/render"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
	"wsnbcast/internal/table"
)

// PaperRow holds the values printed in the paper for one topology.
type PaperRow struct {
	Tx, Rx int
	PowerJ float64
}

// The paper's reported values (Tables 2-5), used for the comparison
// columns.
var (
	PaperTable2 = map[grid.Kind]PaperRow{
		grid.Mesh2D3: {255, 765, 2.61e-2},
		grid.Mesh2D4: {170, 680, 2.18e-2},
		grid.Mesh2D8: {102, 816, 2.35e-2},
		grid.Mesh3D6: {124, 744, 2.22e-2},
	}
	PaperTable3 = map[grid.Kind]PaperRow{
		grid.Mesh2D3: {301, 798, 2.81e-2},
		grid.Mesh2D4: {208, 714, 2.36e-2},
		grid.Mesh2D8: {143, 895, 2.66e-2},
		grid.Mesh3D6: {167, 815, 2.51e-2},
	}
	PaperTable4 = map[grid.Kind]PaperRow{
		grid.Mesh2D3: {308, 816, 2.88e-2},
		grid.Mesh2D4: {223, 778, 2.56e-2},
		grid.Mesh2D8: {147, 924, 2.74e-2},
		grid.Mesh3D6: {187, 923, 2.84e-2},
	}
	PaperTable5 = map[grid.Kind]int{
		grid.Mesh2D3: 46,
		grid.Mesh2D4: 45,
		grid.Mesh2D8: 31,
		grid.Mesh3D6: 20,
	}
)

// Config parameterizes the experiment harness; the zero value uses the
// paper's canonical setup.
type Config struct {
	Model  radio.Model
	Packet radio.Packet
	// Workers bounds the parallel sweep engine's pool; <= 0 means
	// GOMAXPROCS. The tables are identical for every value (the sweep
	// engine orders results by source, not by completion).
	Workers int
}

func (c Config) fill() Config {
	if c.Model == (radio.Model{}) {
		c.Model = radio.Default()
	}
	if c.Packet == (radio.Packet{}) {
		c.Packet = radio.CanonicalPacket()
	}
	return c
}

func (c Config) simConfig() sim.Config {
	return sim.Config{Model: c.Model, Packet: c.Packet}
}

// Table1 regenerates Table 1: the optimal ETRs of the four topologies.
func Table1() *table.Table {
	t := &table.Table{
		Title:   "Table 1. Optimal ETRs of the four topologies",
		Headers: []string{"Topology", "Optimal ETR"},
	}
	for _, k := range grid.Kinds() {
		num, den := core.OptimalETR(k)
		t.AddRow(k.String(), table.FormatFraction(num, den))
	}
	return t
}

// Table2 regenerates Table 2: the ideal case.
func Table2(cfg Config) *table.Table {
	cfg = cfg.fill()
	t := &table.Table{
		Title:   "Table 2. The performance of the ideal case",
		Headers: []string{"Topology", "Tx", "Rx", "Power (J)", "paper Tx", "paper Rx", "paper Power"},
	}
	for _, k := range grid.Kinds() {
		ideal := core.IdealCase(grid.Canonical(k), cfg.Model, cfg.Packet)
		p := PaperTable2[k]
		t.AddRow(k.String(), ideal.Tx, ideal.Rx, ideal.EnergyJ, p.Tx, p.Rx, p.PowerJ)
	}
	return t
}

// sweepAll runs the full source sweep for every topology's paper
// protocol and returns the summaries keyed by kind. All four sweeps
// (4 x 512 sources) are flattened into one job list so the worker pool
// stays saturated across topology boundaries; the per-kind summaries
// aggregate each topology's slice of the ordered outcomes.
func sweepAll(cfg Config) (map[grid.Kind]analysis.Summary, error) {
	type span struct {
		topo   grid.Topology
		proto  sim.Protocol
		lo, hi int
	}
	var jobs []sweep.Job
	spans := make(map[grid.Kind]span, 4)
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		p := core.ForTopology(k)
		lo := len(jobs)
		jobs = append(jobs, sweep.SourceJobs(topo, p, cfg.simConfig())...)
		spans[k] = span{topo: topo, proto: p, lo: lo, hi: len(jobs)}
	}
	outs, _ := sweep.New(cfg.Workers).Run(context.Background(), jobs)
	out := make(map[grid.Kind]analysis.Summary, 4)
	for _, k := range grid.Kinds() {
		sp := spans[k]
		results := make([]*sim.Result, 0, sp.hi-sp.lo)
		for _, o := range outs[sp.lo:sp.hi] {
			if o.Err != nil {
				return nil, fmt.Errorf("experiments: %v sweep: %w", k, o.Err)
			}
			results = append(results, o.Result)
		}
		s, err := analysis.Summarize(sp.topo, sp.proto, results)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v sweep: %w", k, err)
		}
		out[k] = s
	}
	return out, nil
}

// Table3 regenerates Table 3: the best case of the broadcasting
// protocols over all source positions.
func Table3(cfg Config) (*table.Table, error) {
	sums, err := sweepAll(cfg.fill())
	if err != nil {
		return nil, err
	}
	return table3From(sums), nil
}

func table3From(sums map[grid.Kind]analysis.Summary) *table.Table {
	t := &table.Table{
		Title:   "Table 3. The performance of the broadcasting protocols (best case)",
		Headers: []string{"Topology", "Tx", "Rx", "Power (J)", "paper Tx", "paper Rx", "paper Power"},
	}
	for _, k := range grid.Kinds() {
		s := sums[k]
		p := PaperTable3[k]
		t.AddRow(k.String(), s.Best.Tx, s.Best.Rx, s.Best.EnergyJ, p.Tx, p.Rx, p.PowerJ)
	}
	return t
}

// Table4 regenerates Table 4: the worst case.
func Table4(cfg Config) (*table.Table, error) {
	sums, err := sweepAll(cfg.fill())
	if err != nil {
		return nil, err
	}
	return table4From(sums), nil
}

func table4From(sums map[grid.Kind]analysis.Summary) *table.Table {
	t := &table.Table{
		Title:   "Table 4. The performance of the broadcasting protocols (worst case)",
		Headers: []string{"Topology", "Tx", "Rx", "Power (J)", "paper Tx", "paper Rx", "paper Power"},
	}
	for _, k := range grid.Kinds() {
		s := sums[k]
		p := PaperTable4[k]
		t.AddRow(k.String(), s.Worst.Tx, s.Worst.Rx, s.Worst.EnergyJ, p.Tx, p.Rx, p.PowerJ)
	}
	return t
}

// Table5 regenerates Table 5: the maximum delay times of the ideal
// case and the broadcasting protocols.
func Table5(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	sums, err := sweepAll(cfg)
	if err != nil {
		return nil, err
	}
	return table5From(cfg, sums), nil
}

func table5From(cfg Config, sums map[grid.Kind]analysis.Summary) *table.Table {
	t := &table.Table{
		Title:   "Table 5. The maximum delay times of the ideal case and the protocols",
		Headers: []string{"Topology", "Ideal", "Ours", "paper (both)"},
	}
	for _, k := range grid.Kinds() {
		ideal := core.IdealCase(grid.Canonical(k), cfg.Model, cfg.Packet)
		t.AddRow(k.String(), ideal.MaxDelay, sums[k].MaxDelay, PaperTable5[k])
	}
	return t
}

// AllTables renders Tables 1-5 in order. The full source sweep behind
// Tables 3-5 runs once and is shared by all three.
func AllTables(cfg Config) ([]*table.Table, error) {
	cfg = cfg.fill()
	sums, err := sweepAll(cfg)
	if err != nil {
		return nil, err
	}
	return []*table.Table{
		Table1(), Table2(cfg),
		table3From(sums), table4From(sums), table5From(cfg, sums),
	}, nil
}

// Figure renders figure n of the paper (1-9) as ASCII.
func Figure(n int, cfg Config) (string, error) {
	cfg = cfg.fill()
	switch n {
	case 1:
		return render.Topology(grid.NewMesh2D3(8, 5)), nil
	case 2:
		return render.Topology(grid.NewMesh2D4(8, 5)), nil
	case 3:
		return render.Topology(grid.NewMesh2D8(8, 5)), nil
	case 4:
		return render.Topology(grid.NewMesh3D6(5, 4, 3)), nil
	case 5:
		return broadcastFigure(grid.NewMesh2D4(16, 16), core.NewMesh4Protocol(), grid.C2(6, 8), cfg)
	case 6:
		return figure6(), nil
	case 7:
		return broadcastFigure(grid.NewMesh2D8(14, 14), core.NewMesh8Protocol(), grid.C2(5, 9), cfg)
	case 8:
		return broadcastFigure(grid.NewMesh2D3(20, 14), core.NewMesh3Protocol(), grid.C2(10, 7), cfg)
	case 9:
		topo := grid.NewMesh3D6(16, 16, 8)
		return render.ZRelayPattern(topo, grid.C3(6, 8, 4), core.IsZRelayColumn, core.IsBorderZColumn), nil
	default:
		return "", fmt.Errorf("experiments: no figure %d (the paper has figures 1-9)", n)
	}
}

func broadcastFigure(topo grid.Topology, p sim.Protocol, src grid.Coord, cfg Config) (string, error) {
	r, err := sim.Run(topo, p, src, cfg.simConfig())
	if err != nil {
		return "", err
	}
	return render.BroadcastMap(topo, r, src.Z) +
		render.SequenceMap(topo, r, src.Z) +
		render.Summary(r) + "\n", nil
}

// figure6 reproduces Fig. 6: the ETR of a diagonal forward vs an
// X-axis forward in the 2D mesh with 8 neighbors.
func figure6() string {
	topo := grid.NewMesh2D8(6, 6)
	dm, dn := core.ForwardETR(topo, grid.C2(2, 3), grid.C2(3, 2))
	am, an := core.ForwardETR(topo, grid.C2(2, 2), grid.C2(3, 2))
	t := &table.Table{
		Title:   "Fig. 6. Transmit along the diagonal vs the X axis (2D-8)",
		Headers: []string{"Forward", "ETR"},
	}
	t.AddRow("(2,3) -> (3,2)  diagonal", table.FormatFraction(dm, dn))
	t.AddRow("(2,2) -> (3,2)  X axis", table.FormatFraction(am, an))
	return t.String()
}
