package experiments

import (
	"strings"
	"testing"

	"wsnbcast/internal/grid"
)

func TestTable1Golden(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"2/3", "3/4", "5/8", "5/6", "2D-3", "3D-6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	out := Table2(Config{}).String()
	// Measured and paper columns must agree cell for cell; spot-check
	// the distinctive values.
	for _, want := range []string{"255", "765", "170", "680", "102", "816", "124", "744",
		"2.61e-02", "2.18e-02", "2.35e-02", "2.22e-02"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTables3Through5(t *testing.T) {
	t3, err := Table3(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 2D-4 best case matches the paper exactly.
	if !strings.Contains(t3.String(), "208") {
		t.Errorf("Table 3 missing 2D-4 best Tx 208:\n%s", t3)
	}
	t4, err := Table4(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4.String(), "223") {
		t.Errorf("Table 4 missing 2D-4 worst Tx 223:\n%s", t4)
	}
	t5, err := Table5(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := t5.String()
	if !strings.Contains(out, "45") || !strings.Contains(out, "20") {
		t.Errorf("Table 5 missing expected delays:\n%s", out)
	}
}

func TestAllTables(t *testing.T) {
	tables, err := AllTables(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("AllTables returned %d tables", len(tables))
	}
	for i, tbl := range tables {
		if tbl.Title == "" || len(tbl.Rows) == 0 {
			t.Errorf("table %d empty", i+1)
		}
	}
}

func TestFigures(t *testing.T) {
	for n := 1; n <= 9; n++ {
		out, err := Figure(n, Config{})
		if err != nil {
			t.Fatalf("Figure(%d): %v", n, err)
		}
		if len(out) == 0 {
			t.Errorf("Figure(%d) empty", n)
		}
	}
	if _, err := Figure(10, Config{}); err == nil {
		t.Error("Figure(10) should fail")
	}
	if _, err := Figure(0, Config{}); err == nil {
		t.Error("Figure(0) should fail")
	}
}

func TestFigure6Content(t *testing.T) {
	out, err := Figure(6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5/8") || !strings.Contains(out, "3/8") {
		t.Errorf("Fig. 6 missing the 5/8 vs 3/8 comparison:\n%s", out)
	}
}

func TestFigure5Content(t *testing.T) {
	out, err := Figure(5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reachability=100%") {
		t.Errorf("Fig. 5 run incomplete:\n%s", out)
	}
	if !strings.Contains(out, "(6,8)") {
		t.Errorf("Fig. 5 missing the paper's source:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	tables, err := AllAblations(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("AllAblations returned %d", len(tables))
	}
	a5 := tables[4].String()
	if !strings.Contains(a5, "gossip p=0.30") {
		t.Errorf("A5 rows missing:\n%s", a5)
	}
	// A2 includes flooding rows for every topology.
	a2 := tables[1].String()
	if strings.Count(a2, "flooding") < 4 {
		t.Errorf("A2 missing flooding rows:\n%s", a2)
	}
}

func TestPaperConstantsComplete(t *testing.T) {
	for _, k := range grid.Kinds() {
		if _, ok := PaperTable2[k]; !ok {
			t.Errorf("PaperTable2 missing %v", k)
		}
		if _, ok := PaperTable3[k]; !ok {
			t.Errorf("PaperTable3 missing %v", k)
		}
		if _, ok := PaperTable4[k]; !ok {
			t.Errorf("PaperTable4 missing %v", k)
		}
		if _, ok := PaperTable5[k]; !ok {
			t.Errorf("PaperTable5 missing %v", k)
		}
	}
}
