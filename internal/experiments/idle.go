package experiments

import (
	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// ExtensionIdleListening (E7) re-evaluates Table 3's comparison under
// idle-listening accounting: the paper's metric counts only Tx/Rx
// energy, but a synchronized node's receiver is on for the whole
// broadcast, so delay is energy. Under that accounting the ranking
// flips — the fastest topology (3D-6), not the Tx-cheapest (2D-4),
// minimizes total energy. The paper's own conclusion pairs the two
// metrics without combining them; this table combines them.
func ExtensionIdleListening(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E7. Idle-listening accounting (canonical meshes, center source)",
		Headers: []string{"Topology", "Active (J)", "Delay", "Idle (J)",
			"Total (J)", "Active rank", "Total rank"},
	}
	type row struct {
		kind          grid.Kind
		active, total float64
		delay         int
		idle          float64
	}
	var rows []row
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		r, err := sim.Run(topo, core.ForTopology(k), src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		b := analysis.WithIdle(r, cfg.Model, cfg.Packet)
		rows = append(rows, row{k, b.ActiveJ, b.TotalJ, r.Delay, b.IdleJ})
	}
	rank := func(get func(row) float64) map[grid.Kind]int {
		out := map[grid.Kind]int{}
		for _, r := range rows {
			pos := 1
			for _, o := range rows {
				if get(o) < get(r) {
					pos++
				}
			}
			out[r.kind] = pos
		}
		return out
	}
	activeRank := rank(func(r row) float64 { return r.active })
	totalRank := rank(func(r row) float64 { return r.total })
	for _, r := range rows {
		t.AddRow(r.kind.String(), table.FormatJ(r.active), r.delay,
			table.FormatJ(r.idle), table.FormatJ(r.total),
			activeRank[r.kind], totalRank[r.kind])
	}
	return t, nil
}
