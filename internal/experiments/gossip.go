package experiments

import (
	"fmt"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// AblationGossip (A5) sweeps the forwarding probability of
// probabilistic flooding on the canonical 2D-4 mesh and contrasts it
// with the paper's deterministic relay selection. Gossip exhibits the
// classic percolation behavior — low p strands most of the mesh, high
// p costs nearly as much as flooding — while the paper's protocol
// achieves guaranteed coverage below gossip's viable operating range.
func AblationGossip(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	t := &table.Table{
		Title: "Ablation A5. Probabilistic gossip vs deterministic relays (2D-4 32x16, source (16,8))",
		Headers: []string{"Protocol", "Forward frac", "Reach (no repair)",
			"Tx (repaired)", "Power (J)", "Repairs"},
	}
	paper, err := sim.Run(topo, core.NewMesh4Protocol(), src, cfg.simConfig())
	if err != nil {
		return nil, err
	}
	t.AddRow("paper-2d4", fmt.Sprintf("%.2f", float64(paper.RelayCount())/float64(paper.Total)),
		table.FormatPercent(1.0), paper.Tx, paper.EnergyJ, paper.Repairs)
	for _, p := range []float64{0.3, 0.5, 0.65, 0.8, 1.0} {
		g := core.GossipProtocol{P: p, Jitter: 4}
		bare, err := sim.Run(topo, g, src, sim.Config{Model: cfg.Model, Packet: cfg.Packet, DisableRepair: true})
		if err != nil {
			return nil, err
		}
		full, err := sim.Run(topo, g, src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("gossip p=%.2f", p), fmt.Sprintf("%.2f", p),
			table.FormatPercent(bare.Reachability()), full.Tx, full.EnergyJ, full.Repairs)
	}
	return t, nil
}
