package experiments

import (
	"fmt"

	"wsnbcast/internal/analysis"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/pipeline"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// Extension experiments: beyond the paper's evaluation, quantifying
// claims it makes in passing and the natural next questions.

// ExtensionRegularVsRandom (E1) quantifies Section 1's premise: "the
// WSN with regular topology can communicate more efficiently than the
// WSN with random topology". A 2D-4 mesh with the paper protocol is
// compared against jittered-grid random geometric deployments of the
// same 512 nodes (flooding — a random topology admits no precomputed
// relay schedule).
func ExtensionRegularVsRandom(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E1. Regular vs random deployment (512 nodes, center source)",
		Headers: []string{"Deployment", "Protocol", "AvgDeg", "Tx", "Rx",
			"Power (J)", "Delay", "Repairs"},
	}
	regular := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(16, 8)
	r, err := sim.Run(regular, core.NewMesh4Protocol(), src, cfg.simConfig())
	if err != nil {
		return nil, err
	}
	t.AddRow("regular 32x16", r.Protocol, fmt.Sprintf("%.2f", grid.AvgDegree(regular)),
		r.Tx, r.Rx, r.EnergyJ, r.Delay, r.Repairs)

	for _, seed := range []uint64{1, 2, 3} {
		// Radius 1.35 yields an average degree comparable to the
		// 8-neighbor regime; flooding is the only generic protocol.
		rgg := grid.NewIrregular(32, 16, 0.35, 1.35, seed)
		if !grid.IsConnectedGraph(rgg) {
			continue
		}
		rr, err := sim.Run(rgg, core.NewJitteredFlooding(8), src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("random seed=%d", seed), rr.Protocol,
			fmt.Sprintf("%.2f", grid.AvgDegree(rgg)),
			rr.Tx, rr.Rx, rr.EnergyJ, rr.Delay, rr.Repairs)
	}
	if len(t.Rows) < 2 {
		return nil, fmt.Errorf("experiments: every random deployment disconnected")
	}
	return t, nil
}

// ExtensionPipelining (E2) measures the multi-packet behavior: the
// smallest safe injection interval per topology and the speedup of
// pipelining a 10-packet burst over sequential broadcasts.
func ExtensionPipelining(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E2. Pipelined multi-packet dissemination (canonical meshes, center source)",
		Headers: []string{"Topology", "Safe interval", "1-pkt delay",
			"10 pkts pipelined", "10 pkts sequential", "Speedup"},
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		p := core.ForTopology(k)
		one, err := sim.Run(topo, p, src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		safe, err := pipeline.SafeInterval(topo, p, src, 4, 4*(one.Delay+1))
		if err != nil {
			return nil, err
		}
		snap, _, err := sim.Snapshot(topo, p, src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		burst, err := pipeline.Run(topo, snap, src, pipeline.Config{Packets: 10, Interval: safe})
		if err != nil {
			return nil, err
		}
		if !burst.Delivered {
			return nil, fmt.Errorf("experiments: %v burst not delivered at interval %d", k, safe)
		}
		sequential := 10 * (one.Delay + 1)
		t.AddRow(k.String(), safe, one.Delay, burst.Slots, sequential,
			fmt.Sprintf("%.1fx", float64(sequential)/float64(burst.Slots)))
	}
	return t, nil
}

// ExtensionRotation (E3) measures the lifetime gain of rotating the
// broadcast source instead of always broadcasting from one node.
func ExtensionRotation(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title:   "Extension E3. Source rotation vs fixed source (1 J per-node budget)",
		Headers: []string{"Topology", "Fixed rounds", "Rotated rounds", "Gain"},
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		fixed := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		rep, err := analysis.CompareRotation(topo, core.ForTopology(k), fixed,
			cfg.simConfig(), 1.0, 1<<20)
		if err != nil {
			return nil, err
		}
		t.AddRow(k.String(), rep.FixedRounds, rep.RotatedRounds,
			fmt.Sprintf("%.2fx", rep.Gain))
	}
	return t, nil
}

// AllExtensions renders E1-E7.
func AllExtensions(cfg Config) ([]*table.Table, error) {
	var out []*table.Table
	for _, f := range []func(Config) (*table.Table, error){
		ExtensionRegularVsRandom, ExtensionPipelining, ExtensionRotation, ExtensionRobustness, ExtensionScaling, ExtensionMonitoring, ExtensionIdleListening,
	} {
		t, err := f(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: extension: %w", err)
		}
		out = append(out, t)
	}
	return out, nil
}
