package experiments

import (
	"fmt"

	"wsnbcast/internal/converge"
	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// ExtensionMonitoring (E6) measures a full monitoring duty cycle — the
// deployment the paper's introduction describes: the base station
// broadcasts a command (the paper's protocol) and every node's reading
// flows back via aggregating convergecast. The table reports the
// per-phase and total cost for each topology, answering which topology
// a monitoring deployment should pick when both directions matter.
func ExtensionMonitoring(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E6. Full monitoring duty cycle: broadcast command + convergecast readings (canonical meshes, center base station)",
		Headers: []string{"Topology", "Bcast J", "Bcast slots",
			"Collect J", "Collect slots", "Cycle J", "Cycle slots"},
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		base := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		bc, err := sim.Run(topo, core.ForTopology(k), base, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		if !bc.FullyReached() {
			return nil, fmt.Errorf("experiments: %v broadcast incomplete", k)
		}
		cc, err := converge.Run(topo, base, converge.Config{Model: cfg.Model, Packet: cfg.Packet})
		if err != nil {
			return nil, err
		}
		t.AddRow(k.String(),
			table.FormatJ(bc.EnergyJ), bc.Delay,
			table.FormatJ(cc.EnergyJ), cc.Slots,
			table.FormatJ(bc.EnergyJ+cc.EnergyJ), bc.Delay+cc.Slots)
	}
	return t, nil
}
