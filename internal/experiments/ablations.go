package experiments

import (
	"fmt"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// Ablations quantify the design choices the paper argues in prose.

// runRow executes one broadcast and appends a row of metrics.
func runRow(t *table.Table, topo grid.Topology, p sim.Protocol, src grid.Coord, cfg Config) error {
	r, err := sim.Run(topo, p, src, cfg.simConfig())
	if err != nil {
		return err
	}
	t.AddRow(p.Name(), r.Tx, r.Rx, r.EnergyJ, r.Delay, r.Duplicates, r.Collisions, r.Repairs)
	return nil
}

func ablationHeaders() []string {
	return []string{"Protocol", "Tx", "Rx", "Power (J)", "Delay", "Dups", "Collisions", "Repairs"}
}

// AblationDelayVsRetransmit (A1): retransmit-on-collision vs the two
// delay-to-avoid-collision options of Section 3.1, on the canonical
// 2D-4 mesh.
func AblationDelayVsRetransmit(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	topo := grid.Canonical(grid.Mesh2D4)
	src := grid.C2(6, 8)
	t := &table.Table{
		Title:   "Ablation A1. Retransmission vs delay-based collision avoidance (2D-4, 32x16, source (6,8))",
		Headers: ablationHeaders(),
	}
	for _, p := range []sim.Protocol{
		core.NewMesh4Protocol(),
		core.NewDelayedMesh4(core.DelayColumns),
		core.NewDelayedMesh4(core.DelayRows),
	} {
		if err := runRow(t, topo, p, src, cfg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationFlooding (A2): the paper's relay selection vs blind and
// jittered flooding, for every topology.
func AblationFlooding(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title:   "Ablation A2. Relay selection vs flooding (canonical meshes, center source)",
		Headers: append([]string{"Topology"}, ablationHeaders()...),
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		m, n, l := topo.Size()
		src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		for _, p := range []sim.Protocol{core.ForTopology(k), core.NewFlooding(), core.NewJitteredFlooding(8)} {
			r, err := sim.Run(topo, p, src, cfg.simConfig())
			if err != nil {
				return nil, err
			}
			t.AddRow(k.String(), p.Name(), r.Tx, r.Rx, r.EnergyJ, r.Delay, r.Duplicates, r.Collisions, r.Repairs)
		}
	}
	return t, nil
}

// AblationPerPlane3D (A3): the z-relay lattice vs running the 2D-4
// protocol in every plane (Section 3.4's rejected approach).
func AblationPerPlane3D(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	topo := grid.Canonical(grid.Mesh3D6)
	src := grid.C3(4, 4, 4)
	t := &table.Table{
		Title:   "Ablation A3. z-relay lattice vs per-plane 2D-4 (3D-6, 8x8x8, source (4,4,4))",
		Headers: ablationHeaders(),
	}
	for _, p := range []sim.Protocol{core.NewMesh3D6Protocol(), core.NewPerPlane3D()} {
		if err := runRow(t, topo, p, src, cfg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AblationMesh8Axis (A4): diagonal vs axis forwarding on the 2D mesh
// with 8 neighbors (the whole-network version of Fig. 6).
func AblationMesh8Axis(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	topo := grid.Canonical(grid.Mesh2D8)
	src := grid.C2(16, 8)
	t := &table.Table{
		Title:   "Ablation A4. Diagonal vs axis forwarding (2D-8, 32x16, source (16,8))",
		Headers: ablationHeaders(),
	}
	for _, p := range []sim.Protocol{core.NewMesh8Protocol(), core.NewMesh8Axis()} {
		if err := runRow(t, topo, p, src, cfg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AllAblations renders A1-A5.
func AllAblations(cfg Config) ([]*table.Table, error) {
	var out []*table.Table
	for _, f := range []func(Config) (*table.Table, error){
		AblationDelayVsRetransmit, AblationFlooding, AblationPerPlane3D, AblationMesh8Axis, AblationGossip,
	} {
		t, err := f(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation: %w", err)
		}
		out = append(out, t)
	}
	return out, nil
}
