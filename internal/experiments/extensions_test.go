package experiments

import (
	"strings"
	"testing"
)

func TestExtensions(t *testing.T) {
	tables, err := AllExtensions(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Fatalf("got %d tables", len(tables))
	}
	e1 := tables[0].String()
	if !strings.Contains(e1, "regular 32x16") || !strings.Contains(e1, "random seed=1") {
		t.Errorf("E1 rows missing:\n%s", e1)
	}
	e2 := tables[1].String()
	if strings.Count(e2, "x") < 4 {
		t.Errorf("E2 speedups missing:\n%s", e2)
	}
	e3 := tables[2].String()
	if !strings.Contains(e3, "3D-6") {
		t.Errorf("E3 rows missing:\n%s", e3)
	}
	e4 := tables[3].String()
	if !strings.Contains(e4, "flooding") || !strings.Contains(e4, "48") {
		t.Errorf("E4 rows missing:\n%s", e4)
	}
	e5 := tables[4].String()
	if !strings.Contains(e5, "64x32") || !strings.Contains(e5, "12x12x12") {
		t.Errorf("E5 rows missing:\n%s", e5)
	}
	e6 := tables[5].String()
	if !strings.Contains(e6, "Cycle J") {
		t.Errorf("E6 rows missing:\n%s", e6)
	}
	e7 := tables[6].String()
	if !strings.Contains(e7, "Total rank") {
		t.Errorf("E7 rows missing:\n%s", e7)
	}
	t.Logf("\n%s\n%s\n%s\n%s\n%s\n%s\n%s", e1, e2, e3, e4, e5, e6, e7)
}
