package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The figures are fully deterministic; golden files pin their exact
// output so rendering or protocol regressions surface immediately.
// Regenerate with: go test ./internal/experiments -run Golden -update
func TestFiguresGolden(t *testing.T) {
	for n := 1; n <= 9; n++ {
		n := n
		t.Run(fmt.Sprintf("fig%d", n), func(t *testing.T) {
			got, err := Figure(n, Config{})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fmt.Sprintf("fig%d.golden", n))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("figure %d changed; diff against %s (or -update if intended)\ngot:\n%s",
					n, path, got)
			}
		})
	}
}

// Table 1 and 2 are deterministic too; pin them.
func TestTablesGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func() string
	}{
		{"table1", func() string { return Table1().String() }},
		{"table2", func() string { return Table2(Config{}).String() }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.gen()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s changed:\n%s", tc.name, got)
			}
		})
	}
}
