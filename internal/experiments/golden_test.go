package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The figures are fully deterministic; golden files pin their exact
// output so rendering or protocol regressions surface immediately.
// Regenerate with: go test ./internal/experiments -run Golden -update
func TestFiguresGolden(t *testing.T) {
	for n := 1; n <= 9; n++ {
		n := n
		t.Run(fmt.Sprintf("fig%d", n), func(t *testing.T) {
			got, err := Figure(n, Config{})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", fmt.Sprintf("fig%d.golden", n))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("figure %d changed; diff against %s (or -update if intended)\ngot:\n%s",
					n, path, got)
			}
		})
	}
}

// Tables 3-5 are the sweep-backed tables: their golden files were
// captured from the original serial sweep loop, and the test
// regenerates them through the parallel sweep engine at several pool
// sizes. Any byte of drift means the engine broke the parallel ==
// serial contract (or an intended output change needs -update).
func TestSweepTablesParallelGolden(t *testing.T) {
	paths := []string{"table3", "table4", "table5"}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			tabs, err := AllTables(Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i, name := range paths {
				got := tabs[2+i].String()
				path := filepath.Join("testdata", name+".golden")
				if *update && workers == 1 {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("%s at workers=%d differs from the serial golden:\n%s", name, workers, got)
				}
			}
		})
	}
}

// Table 1 and 2 are deterministic too; pin them.
func TestTablesGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func() string
	}{
		{"table1", func() string { return Table1().String() }},
		{"table2", func() string { return Table2(Config{}).String() }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.gen()
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s changed:\n%s", tc.name, got)
			}
		})
	}
}
