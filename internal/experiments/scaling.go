package experiments

import (
	"fmt"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/table"
)

// ExtensionScaling (E5) sweeps the network size: the paper evaluates a
// single 512-node configuration; this series shows how transmissions
// per node, power per node and delay scale as the mesh grows, and that
// the protocol delay tracks the network diameter (the shortest-path
// claim) at every size.
func ExtensionScaling(cfg Config) (*table.Table, error) {
	cfg = cfg.fill()
	t := &table.Table{
		Title: "Extension E5. Size scaling (center source)",
		Headers: []string{"Topology", "Size", "Nodes", "Tx/node", "Power/node (J)",
			"Delay", "Diameter-1", "Delay overhead"},
	}
	type config struct {
		k       grid.Kind
		m, n, l int
	}
	var configs []config
	for _, side := range []int{8, 16, 32, 64} {
		configs = append(configs,
			config{grid.Mesh2D3, side, side / 2, 1},
			config{grid.Mesh2D4, side, side / 2, 1},
			config{grid.Mesh2D8, side, side / 2, 1},
		)
	}
	for _, side := range []int{4, 6, 8, 12} {
		configs = append(configs, config{grid.Mesh3D6, side, side, side})
	}
	for _, c := range configs {
		topo := grid.New(c.k, c.m, c.n, c.l)
		src := grid.C3((c.m+1)/2, (c.n+1)/2, (c.l+1)/2)
		r, err := sim.Run(topo, core.ForTopology(c.k), src, cfg.simConfig())
		if err != nil {
			return nil, err
		}
		if !r.FullyReached() {
			return nil, fmt.Errorf("experiments: %v %dx%dx%d incomplete", c.k, c.m, c.n, c.l)
		}
		v := float64(topo.NumNodes())
		ideal := core.Eccentricity(topo, src) - 1
		size := fmt.Sprintf("%dx%d", c.m, c.n)
		if c.l > 1 {
			size = fmt.Sprintf("%dx%dx%d", c.m, c.n, c.l)
		}
		overhead := "0.0%"
		if ideal > 0 {
			overhead = table.FormatPercent(float64(r.Delay-ideal) / float64(ideal))
		}
		t.AddRow(c.k.String(), size, topo.NumNodes(),
			fmt.Sprintf("%.3f", float64(r.Tx)/v),
			table.FormatJ(r.EnergyJ/v),
			r.Delay, ideal, overhead)
	}
	return t, nil
}
