// Package pipeline extends the paper's one-shot broadcast to streams
// of packets: the source injects a new packet every Interval slots and
// every packet follows the same relay schedule. Different packets
// interfere on the shared channel — a node decodes nothing in a slot
// where two transmissions overlap, whatever packets they carry — so
// the launch interval controls the trade between throughput and
// collisions. This models the firmware-dissemination workload the
// paper's introduction motivates (and is the natural "what's next"
// beyond its single-message evaluation).
package pipeline

import (
	"fmt"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// Config parameterizes a pipelined dissemination.
type Config struct {
	// Packets is the number of packets the source injects (>= 1).
	Packets int
	// Interval is the number of slots between consecutive injections
	// (>= 1).
	Interval int
	// Model and Packet default to the paper's radio parameters.
	Model  radio.Model
	Packet radio.Packet
	// MaxSlots bounds the simulation (0 = automatic).
	MaxSlots int
}

// PacketStats reports one packet's fate.
type PacketStats struct {
	// Injected is the slot the source transmitted the packet first.
	Injected int
	// Reached is how many nodes decoded the packet.
	Reached int
	// Delay is the slot of the packet's last first-decode, relative to
	// its injection; -1 if the packet reached no one beyond the source.
	Delay int
}

// Result aggregates a pipelined run.
type Result struct {
	Kind     grid.Kind
	Protocol string
	Source   grid.Coord
	Total    int

	Packets  []PacketStats
	Tx, Rx   int
	EnergyJ  float64
	Slots    int // last slot with activity
	Collides int

	// Delivered reports whether every packet reached every node.
	Delivered bool
}

// Throughput returns delivered packets per slot over the whole run.
func (r *Result) Throughput() float64 {
	if r.Slots <= 0 {
		return 0
	}
	n := 0
	for _, p := range r.Packets {
		if p.Reached == r.Total {
			n++
		}
	}
	return float64(n) / float64(r.Slots)
}

// Run simulates the pipelined dissemination of cfg.Packets packets.
func Run(t grid.Topology, p sim.Protocol, src grid.Coord, cfg Config) (*Result, error) {
	if !t.Contains(src) {
		return nil, fmt.Errorf("pipeline: source %s outside mesh", src)
	}
	if cfg.Packets < 1 {
		return nil, fmt.Errorf("pipeline: need at least 1 packet, got %d", cfg.Packets)
	}
	if cfg.Interval < 1 {
		return nil, fmt.Errorf("pipeline: interval must be >= 1, got %d", cfg.Interval)
	}
	if cfg.Model == (radio.Model{}) {
		cfg.Model = radio.Default()
	}
	if cfg.Packet == (radio.Packet{}) {
		cfg.Packet = radio.CanonicalPacket()
	}
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = 1024 + 64*t.NumNodes() + cfg.Packets*cfg.Interval
	}

	v := t.NumNodes()
	adj := make([][]int32, v)
	var nbuf []grid.Coord
	for i := 0; i < v; i++ {
		nbuf = t.Neighbors(t.At(i), nbuf[:0])
		row := make([]int32, len(nbuf))
		for k, nb := range nbuf {
			row[k] = int32(t.Index(nb))
		}
		adj[i] = row
	}

	// Per-node protocol roles (identical for every packet).
	relay := make([]bool, v)
	delay := make([]int, v)
	retx := make([][]int, v)
	srcIdx := t.Index(src)
	for i := 0; i < v; i++ {
		c := t.At(i)
		relay[i] = p.IsRelay(t, src, c)
		if d := p.TxDelay(t, src, c); d >= 1 {
			delay[i] = d
		} else {
			delay[i] = 1
		}
		for _, off := range p.Retransmits(t, src, c) {
			if off >= 1 {
				retx[i] = append(retx[i], off)
			}
		}
	}

	res := &Result{
		Kind:     t.Kind(),
		Protocol: p.Name(),
		Source:   src,
		Total:    v,
		Packets:  make([]PacketStats, cfg.Packets),
	}

	// decode[pkt*v + node] = first decode slot, -1 never.
	decode := make([]int, cfg.Packets*v)
	for i := range decode {
		decode[i] = -1
	}
	type txev struct {
		node int32
		pkt  int32
	}
	pending := map[int][]txev{}
	outstanding := 0
	schedule := func(slot int, node int32, pkt int32) {
		pending[slot] = append(pending[slot], txev{node, pkt})
		outstanding++
	}
	for k := 0; k < cfg.Packets; k++ {
		inj := k * cfg.Interval
		decode[k*v+srcIdx] = inj
		res.Packets[k] = PacketStats{Injected: inj, Reached: 1, Delay: -1}
		schedule(inj, int32(srcIdx), int32(k))
		for _, off := range retx[srcIdx] {
			schedule(inj+off, int32(srcIdx), int32(k))
		}
	}

	hit := make([]int, v)       // transmissions heard this slot
	hitPkt := make([]int32, v)  // the packet if exactly one
	hitFrom := make([]int32, v) // the transmitter if exactly one
	for slot := 0; outstanding > 0; slot++ {
		if slot > cfg.MaxSlots {
			return nil, fmt.Errorf("pipeline: exceeded %d slots", cfg.MaxSlots)
		}
		txs, ok := pending[slot]
		if !ok {
			continue
		}
		delete(pending, slot)
		outstanding -= len(txs)
		res.Slots = slot
		var touched []int32
		for _, tx := range txs {
			res.Tx++
			for _, nb := range adj[tx.node] {
				res.Rx++
				if hit[nb] == 0 {
					touched = append(touched, nb)
					hitPkt[nb] = tx.pkt
					hitFrom[nb] = tx.node
				}
				hit[nb]++
			}
		}
		for _, nb := range touched {
			n := hit[nb]
			hit[nb] = 0
			if n >= 2 {
				res.Collides++
				continue
			}
			k := int(hitPkt[nb])
			if decode[k*v+int(nb)] >= 0 {
				continue // duplicate
			}
			decode[k*v+int(nb)] = slot
			res.Packets[k].Reached++
			if d := slot - res.Packets[k].Injected; d > res.Packets[k].Delay {
				res.Packets[k].Delay = d
			}
			if relay[nb] {
				first := slot + delay[nb]
				schedule(first, nb, int32(k))
				for _, off := range retx[nb] {
					schedule(first+off, nb, int32(k))
				}
			}
		}
	}
	_ = hitFrom

	ledger := radio.NewLedger(cfg.Model, cfg.Packet)
	ledger.AddTx(res.Tx)
	ledger.AddRx(res.Rx)
	res.EnergyJ = ledger.TotalJ()
	res.Delivered = true
	for _, ps := range res.Packets {
		if ps.Reached != v {
			res.Delivered = false
			break
		}
	}
	return res, nil
}

// SafeInterval finds the smallest injection interval that delivers
// every one of probe packets to every node (binary search over
// [1, upper]; returns upper+1 if even upper fails). Probe with at
// least 3 packets so steady-state interference between neighbors in
// the pipeline is exercised.
//
// The protocol is snapshotted first: the single-packet broadcast runs
// once through the scheduler (planned repairs included) and the frozen
// schedule is what gets pipelined — matching how a deployment would
// ship the repaired schedule to the nodes.
func SafeInterval(t grid.Topology, p sim.Protocol, src grid.Coord, probe, upper int) (int, error) {
	snap, _, err := sim.Snapshot(t, p, src, sim.Config{})
	if err != nil {
		return 0, err
	}
	p = snap
	if probe < 1 {
		probe = 3
	}
	ok := func(interval int) (bool, error) {
		r, err := Run(t, p, src, Config{Packets: probe, Interval: interval})
		if err != nil {
			return false, err
		}
		return r.Delivered, nil
	}
	// The property is monotone in practice (larger interval = less
	// interference); binary search for the boundary.
	lo, hi := 1, upper
	good, err := ok(hi)
	if err != nil {
		return 0, err
	}
	if !good {
		return upper + 1, nil
	}
	for lo < hi {
		mid := (lo + hi) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
