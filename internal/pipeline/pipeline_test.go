package pipeline

import (
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// A single packet through the pipeline must match the plain simulator
// (same protocol roles, no planner repairs on 2D-4).
func TestSinglePacketMatchesSim(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	src := grid.C2(6, 8)
	pr, err := Run(topo, core.NewMesh4Protocol(), src, Config{Packets: 1, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.Run(topo, core.NewMesh4Protocol(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Tx != sr.Tx {
		t.Errorf("pipeline Tx %d != sim Tx %d", pr.Tx, sr.Tx)
	}
	if pr.Rx != sr.Rx {
		t.Errorf("pipeline Rx %d != sim Rx %d", pr.Rx, sr.Rx)
	}
	if pr.Packets[0].Delay != sr.Delay {
		t.Errorf("pipeline delay %d != sim delay %d", pr.Packets[0].Delay, sr.Delay)
	}
	if !pr.Delivered {
		t.Error("single packet not delivered")
	}
}

// A generous interval delivers every packet; interval 1 jams the
// channel.
func TestIntervalExtremes(t *testing.T) {
	topo := grid.NewMesh2D4(12, 12)
	src := grid.C2(6, 6)
	p := core.NewMesh4Protocol()

	wide, err := Run(topo, p, src, Config{Packets: 4, Interval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !wide.Delivered {
		t.Errorf("wide interval failed: %+v", wide.Packets)
	}

	jam, err := Run(topo, p, src, Config{Packets: 4, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	if jam.Delivered {
		t.Error("interval 1 should jam the 2D-4 pipeline")
	}
}

// SafeInterval finds a boundary: one less fails, the boundary works.
func TestSafeInterval(t *testing.T) {
	topo := grid.NewMesh2D4(12, 12)
	src := grid.C2(6, 6)
	p := core.NewMesh4Protocol()
	safe, err := SafeInterval(topo, p, src, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if safe < 2 || safe > 64 {
		t.Fatalf("safe interval = %d", safe)
	}
	r, err := Run(topo, p, src, Config{Packets: 4, Interval: safe})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Delivered {
		t.Errorf("interval %d reported safe but failed", safe)
	}
	if safe > 1 {
		r, err = Run(topo, p, src, Config{Packets: 4, Interval: safe - 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Delivered {
			t.Errorf("interval %d should fail if %d is minimal", safe-1, safe)
		}
	}
	t.Logf("2D-4 12x12 safe interval: %d slots", safe)
}

// Pipelining beats sequential dissemination: K packets at the safe
// interval finish much sooner than K full broadcasts back to back.
func TestPipelineBeatsSequential(t *testing.T) {
	topo := grid.NewMesh2D4(16, 16)
	src := grid.C2(8, 8)
	p := core.NewMesh4Protocol()
	one, err := sim.Run(topo, p, src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	safe, err := SafeInterval(topo, p, src, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if safe > one.Delay {
		t.Skipf("no pipelining headroom (safe=%d, delay=%d)", safe, one.Delay)
	}
	const k = 10
	r, err := Run(topo, p, src, Config{Packets: k, Interval: safe})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Delivered {
		t.Fatal("pipelined run failed at the safe interval")
	}
	sequential := k * (one.Delay + 1)
	if r.Slots >= sequential {
		t.Errorf("pipelined %d slots not better than sequential %d", r.Slots, sequential)
	}
	t.Logf("10 packets: pipelined %d slots vs sequential %d (interval %d)",
		r.Slots, sequential, safe)
}

func TestThroughput(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(4, 4)
	r, err := Run(topo, core.NewMesh4Protocol(), src, Config{Packets: 5, Interval: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / float64(r.Slots)
	if got := r.Throughput(); got != want {
		t.Errorf("throughput = %g, want %g", got, want)
	}
	empty := &Result{}
	if empty.Throughput() != 0 {
		t.Error("empty throughput")
	}
}

func TestRunValidation(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	p := core.NewMesh4Protocol()
	if _, err := Run(topo, p, grid.C2(9, 9), Config{Packets: 1, Interval: 1}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Run(topo, p, grid.C2(2, 2), Config{Packets: 0, Interval: 1}); err == nil {
		t.Error("zero packets accepted")
	}
	if _, err := Run(topo, p, grid.C2(2, 2), Config{Packets: 1, Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
}

// Safe intervals exist for all four paper protocols on small canonical
// sections.
func TestSafeIntervalAllTopologies(t *testing.T) {
	t.Parallel()
	for _, k := range grid.Kinds() {
		topo := grid.New(k, 8, 8, 4)
		m, n, l := topo.Size()
		src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		safe, err := SafeInterval(topo, core.ForTopology(k), src, 3, 256)
		if err != nil {
			t.Fatal(err)
		}
		if safe > 256 {
			t.Errorf("%v: no safe interval below 256", k)
		}
		t.Logf("%v 8x8(x4) safe interval: %d", k, safe)
	}
}
