package tracelog

import (
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func traceOf(t *testing.T, topo grid.Topology, src grid.Coord) ([]sim.Event, string) {
	t.Helper()
	var sb strings.Builder
	w := NewWriter(&sb)
	var events []sim.Event
	_, err := sim.Run(topo, core.ForTopology(topo.Kind()), src, sim.Config{
		Trace: func(e sim.Event) {
			events = append(events, e)
			w.Sink()(e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return events, sb.String()
}

func TestRoundTrip(t *testing.T) {
	topo := grid.NewMesh2D4(10, 8)
	src := grid.C2(5, 4)
	events, jsonl := traceOf(t, topo, src)
	back, err := Read(strings.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip length %d != %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d: %v != %v", i, back[i], events[i])
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	topo := grid.NewMesh3D6(4, 4, 3)
	src := grid.C3(2, 2, 2)
	events, jsonl := traceOf(t, topo, src)
	if !strings.Contains(jsonl, `"z":3`) {
		t.Error("3D coordinates not serialized")
	}
	back, err := Read(strings.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) || back[0] != events[0] {
		t.Error("3D round trip broken")
	}
}

func TestCheckAcceptsRealTraces(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.New(k, 8, 6, 3)
		m, n, l := topo.Size()
		src := grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
		events, _ := traceOf(t, topo, src)
		if err := Check(events, src); err != nil {
			t.Errorf("%v: real trace rejected: %v", k, err)
		}
	}
}

func TestCheckRejectsCorruption(t *testing.T) {
	topo := grid.NewMesh2D4(8, 6)
	src := grid.C2(4, 3)
	events, _ := traceOf(t, topo, src)

	// Time reversal.
	rev := append([]sim.Event(nil), events...)
	rev[len(rev)-1].Slot = 0
	if len(rev) > 1 && rev[len(rev)-2].Slot > 0 {
		if err := Check(rev, src); err == nil {
			t.Error("time reversal not caught")
		}
	}

	// Double decode.
	var firstDecode sim.Event
	for _, e := range events {
		if e.Kind == sim.EventDecode {
			firstDecode = e
			break
		}
	}
	dd := append(append([]sim.Event(nil), events...),
		sim.Event{Slot: events[len(events)-1].Slot, Kind: sim.EventDecode, Node: firstDecode.Node})
	if err := Check(dd, src); err == nil {
		t.Error("double decode not caught")
	}

	// Transmission without decode.
	ghost := append([]sim.Event(nil), events...)
	ghost = append(ghost, sim.Event{Slot: ghost[len(ghost)-1].Slot + 1,
		Kind: sim.EventTx, Node: grid.C2(8, 6)})
	// (8,6) decodes in a full run, so pick a node... fabricate by using
	// an event list with only the tx.
	if err := Check([]sim.Event{{Slot: 1, Kind: sim.EventTx, Node: grid.C2(2, 2)}}, src); err == nil {
		t.Error("ghost transmission not caught")
	}
	_ = ghost

	// Dangling repair.
	dangling := append([]sim.Event(nil), events...)
	dangling = append(dangling, sim.Event{Slot: dangling[len(dangling)-1].Slot + 1,
		Kind: sim.EventRepair, Node: src})
	if err := Check(dangling, src); err == nil {
		t.Error("dangling repair not caught")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{bad json\n")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := Read(strings.NewReader(`{"slot":1,"kind":"warp","x":1,"y":1}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	events, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank lines: %v, %v", events, err)
	}
}

func TestRecordConversions(t *testing.T) {
	for _, e := range []sim.Event{
		{Slot: 3, Kind: sim.EventTx, Node: grid.C2(1, 2)},
		{Slot: 4, Kind: sim.EventDuplicate, Node: grid.C3(2, 3, 4)},
		{Slot: 5, Kind: sim.EventCollision, Node: grid.C2(9, 9)},
	} {
		back, err := FromEvent(e).Event()
		if err != nil {
			t.Fatal(err)
		}
		if back != e {
			t.Errorf("round trip %v -> %v", e, back)
		}
	}
}
