// Package tracelog serializes engine traces as JSON Lines, one event
// per line, for offline analysis and tooling: dump a broadcast's full
// schedule with wsnviz -trace, then replay, diff or plot it with any
// JSON-speaking tool.
package tracelog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// Record is the JSONL form of one engine event.
type Record struct {
	Slot int    `json:"slot"`
	Kind string `json:"kind"` // tx, decode, dup, collide, repair
	X    int    `json:"x"`
	Y    int    `json:"y"`
	Z    int    `json:"z,omitempty"`
}

// FromEvent converts an engine event.
func FromEvent(e sim.Event) Record {
	z := e.Node.Z
	if z == 1 {
		z = 0 // omitted for 2D traces
	}
	return Record{Slot: e.Slot, Kind: e.Kind.String(), X: e.Node.X, Y: e.Node.Y, Z: z}
}

// Event converts the record back to an engine event.
func (r Record) Event() (sim.Event, error) {
	var kind sim.EventKind
	switch r.Kind {
	case "tx":
		kind = sim.EventTx
	case "decode":
		kind = sim.EventDecode
	case "dup":
		kind = sim.EventDuplicate
	case "collide":
		kind = sim.EventCollision
	case "repair":
		kind = sim.EventRepair
	default:
		return sim.Event{}, fmt.Errorf("tracelog: unknown event kind %q", r.Kind)
	}
	z := r.Z
	if z == 0 {
		z = 1
	}
	return sim.Event{Slot: r.Slot, Kind: kind, Node: grid.C3(r.X, r.Y, z)}, nil
}

// Writer streams events to JSONL. Use Sink as a sim Config.Trace and
// Flush when the run finishes.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// Sink returns a TraceFunc that appends each event as one JSON line.
func (w *Writer) Sink() sim.TraceFunc {
	return func(e sim.Event) {
		if w.err != nil {
			return
		}
		b, err := json.Marshal(FromEvent(e))
		if err != nil {
			w.err = err
			return
		}
		if _, err := w.bw.Write(append(b, '\n')); err != nil {
			w.err = err
		}
	}
}

// Flush flushes buffered lines and reports any write error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Read parses a JSONL trace back into events.
func Read(r io.Reader) ([]sim.Event, error) {
	var out []sim.Event
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tracelog: line %d: %w", line, err)
		}
		e, err := rec.Event()
		if err != nil {
			return nil, fmt.Errorf("tracelog: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Check validates the causal structure of a trace: slots never
// decrease, every decode of a node happens at most once, every
// transmission of a non-source node follows its decode, and every
// repair is followed by a same-slot transmission of the same node.
func Check(events []sim.Event, source grid.Coord) error {
	prevSlot := 0
	decoded := map[grid.Coord]int{source: 0}
	firstTx := map[grid.Coord]int{}
	pendingRepair := map[grid.Coord]int{}
	for i, e := range events {
		if e.Slot < prevSlot {
			return fmt.Errorf("tracelog: event %d (%s) goes back in time", i, e)
		}
		prevSlot = e.Slot
		switch e.Kind {
		case sim.EventDecode:
			if _, dup := decoded[e.Node]; dup {
				return fmt.Errorf("tracelog: event %d: %s decoded twice", i, e.Node)
			}
			decoded[e.Node] = e.Slot
		case sim.EventTx:
			if d, ok := decoded[e.Node]; ok {
				if e.Node != source && e.Slot <= d {
					return fmt.Errorf("tracelog: event %d: %s transmitted at/before decode", i, e.Node)
				}
			} else if e.Node != source {
				return fmt.Errorf("tracelog: event %d: %s transmitted without decoding", i, e.Node)
			}
			if _, ok := firstTx[e.Node]; !ok {
				firstTx[e.Node] = e.Slot
			}
			delete(pendingRepair, e.Node)
		case sim.EventRepair:
			pendingRepair[e.Node] = e.Slot
		}
	}
	for node, slot := range pendingRepair {
		return fmt.Errorf("tracelog: repair of %s at slot %d never transmitted", node, slot)
	}
	return nil
}
