//go:build !race

package life

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
