package life

import "sync/atomic"

// Process-wide delta-propagation counters, accumulated as cells finish
// (every RunCell, across all studies and goroutines). They are pure
// observability — the HTTP service's /metrics document exposes them so
// a long-running deployment can see the incremental path's hit rate —
// and never feed back into results.
var (
	deltaHitsTotal      atomic.Uint64
	deltaFallbacksTotal atomic.Uint64
)

func addDeltaTotals(hits, fallbacks uint64) {
	deltaHitsTotal.Add(hits)
	deltaFallbacksTotal.Add(fallbacks)
}

// DeltaTotals reports how many lifetime rounds this process served
// from the incremental delta cone versus any full-engine fallback,
// summed over every finished cell.
func DeltaTotals() (hits, fallbacks uint64) {
	return deltaHitsTotal.Load(), deltaFallbacksTotal.Load()
}
