package life

// Lifetime-level coverage of the incremental delta path: the hit-rate
// counters, their invisibility on the wire, the churn-zero sweep skip,
// and the rotation edge case where a round's own source dies during
// that round.

import (
	"bytes"
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
)

// A static death-only cell must serve most rounds from the delta cone,
// and every session round lands in exactly one counter; the reference
// and NoDelta paths must report zero on both.
func TestDeltaCountersPopulated(t *testing.T) {
	spec := matrixSpec(grid.Mesh2D4)
	spec.Strategies = []Strategy{Static}
	spec.PFail = nil // death-only: the delta sweet spot

	rep, err := RunCell(context.Background(), spec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaHits == 0 {
		t.Errorf("static death-only cell recorded no delta hits over %d rounds", rep.Rounds)
	}
	if got := rep.DeltaHits + rep.DeltaFallbacks; got != uint64(rep.Rounds) {
		t.Errorf("hits %d + fallbacks %d != %d rounds", rep.DeltaHits, rep.DeltaFallbacks, rep.Rounds)
	}

	for name, mod := range map[string]func(*Spec){
		"reference": func(s *Spec) { s.Reference = true },
		"no-delta":  func(s *Spec) { s.NoDelta = true },
	} {
		s := spec
		mod(&s)
		r, err := RunCell(context.Background(), s, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.DeltaHits != 0 || r.DeltaFallbacks != 0 {
			t.Errorf("%s path recorded delta counters: hits %d fallbacks %d", name, r.DeltaHits, r.DeltaFallbacks)
		}
	}

	hits, _ := DeltaTotals()
	if hits == 0 {
		t.Error("package delta totals never incremented")
	}
}

// The delta counters are debug-only: two reports differing solely in
// them must marshal to identical bytes, or the differential matrix,
// checkpoints and result-cache identity would all see phantom diffs.
func TestDeltaCountersInvisibleOnWire(t *testing.T) {
	a := CellReport{Strategy: "static", Rounds: 7}
	b := a
	b.DeltaHits, b.DeltaFallbacks = 6, 1
	if !bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Error("delta counters leak into the CellReport JSON")
	}
}

// Churn-zero pin (issue satellite): with p_fail == 0 and p_new == 0
// the churn sweep is skipped entirely. The report must stay
// byte-identical to the frozen reference path, and burn-in — which
// only advances the (empty) chain — must change nothing.
func TestChurnZeroSweepSkipByteIdentity(t *testing.T) {
	spec := matrixSpec(grid.Mesh2D4)
	spec.PFail = []float64{0}
	spec.PNew = 0

	ref := spec
	ref.Reference = true
	want, err := Run(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("churn-0 session report differs from reference")
	}

	burned := spec
	burned.BurnInRounds = 32
	burnedRep, err := Run(context.Background(), burned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, burnedRep), mustJSON(t, want)) {
		t.Error("burn-in on a churn-0 study changed the report")
	}
}

// Permanent failures (p_new == 0, p_fail > 0) take the skip-the-
// recovery-draw branch; the report must still match the reference.
func TestPermanentFailureChurnByteIdentity(t *testing.T) {
	spec := matrixSpec(grid.Mesh2D4)
	spec.PFail = []float64{0.05}
	spec.PNew = 0

	ref := spec
	ref.Reference = true
	want, err := Run(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
		t.Error("permanent-failure session report differs from reference")
	}
}

// Rotation edge case (issue satellite): a round whose own source dies
// during that round. pickSource only ever returns alive nodes, so a
// dead prevSrc after round() means the source died while sourcing;
// the loop must carry on (round-robin skips the corpse) and all three
// computation paths must agree byte for byte.
func TestRotationSourceDiesSameRound(t *testing.T) {
	topo := grid.New(grid.Mesh2D4, 8, 8, 1)
	spec := Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(grid.Mesh2D4),
		Source:       topo.At(topo.NumNodes() / 2),
		BudgetJ:      0.003,
		MaxRounds:    96,
		Seed:         11,
		Replications: 1,
		Strategies:   []Strategy{RoundRobin},
	}
	probe := spec
	probe.Reference = true
	st, err := newCellState(probe, probe.CellAt(0))
	if err != nil {
		t.Fatal(err)
	}
	occurred := false
	for !st.stopped() {
		if err := st.round(); err != nil {
			t.Fatal(err)
		}
		if st.dead[st.prevSrc] {
			occurred = true
		}
	}
	if !occurred {
		t.Fatalf("no source died during its own round in %d rounds; retune the budget", st.rep.Rounds)
	}

	want, err := RunCell(context.Background(), probe, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := mustJSON(t, want)
	for name, mod := range map[string]func(*Spec){
		"session-delta":    func(s *Spec) {},
		"session-no-delta": func(s *Spec) { s.NoDelta = true },
	} {
		s := spec
		mod(&s)
		got, err := RunCell(context.Background(), s, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(mustJSON(t, got), wantJSON) {
			t.Errorf("%s report differs from reference after a same-round source death", name)
		}
	}
}
