package life

import (
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
)

// benchSpec is the shared shape of the lifetime benchmarks: one cell,
// Workers=1, rounds/sec as the headline metric.
func benchSpec(m, n int, budgetJ, pfail float64, strat Strategy) Spec {
	topo := grid.NewMesh2D4(m, n)
	return Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(topo.Kind()),
		Source:       grid.C2((m+1)/2, (n+1)/2),
		BudgetJ:      budgetJ,
		MaxRounds:    64,
		Seed:         1,
		Replications: 1,
		Strategies:   []Strategy{strat},
		PFail:        []float64{pfail},
		PNew:         0.25,
		Workers:      1,
	}
}

func benchRounds(b *testing.B, spec Spec) {
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		cells, err := Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		rounds += cells[0].Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
}

// BenchmarkLifetime measures the round loop on the 64x64 mesh — one
// static cell with light churn, so every round pays the full price:
// the churn sweep over ~8k links, the graph upkeep, and the broadcast
// itself. The custom rounds/sec metric is the headline; make bench
// runs this and benchjson records it. The name and configuration are
// pinned so benchjson pairs it with the pre-session baseline rows.
func BenchmarkLifetime(b *testing.B) {
	benchRounds(b, benchSpec(64, 64, 1, 0.001, Static))
}

// BenchmarkLifetimeNoDelta is the headline study with the incremental
// delta path disabled: every round is a full session run. The
// headline delta speedup is this vs BenchmarkLifetime.
func BenchmarkLifetimeNoDelta(b *testing.B) {
	spec := benchSpec(64, 64, 1, 0.001, Static)
	spec.NoDelta = true
	benchRounds(b, spec)
}

// BenchmarkLifetimeReference is the identical study on the frozen
// per-round sim.Run path (Spec.Reference), measured in the same
// session so the session speedup is an honest A/B, not a
// cross-machine comparison.
func BenchmarkLifetimeReference(b *testing.B) {
	spec := benchSpec(64, 64, 1, 0.001, Static)
	spec.Reference = true
	benchRounds(b, spec)
}

// BenchmarkLifetimeLadder walks the workload axes: death-only (no
// churn, batteries small enough that nodes die and the graph shrinks)
// under both a static and a rotating source, churn-heavy (5% of ~8k
// links flip per round), and churn-heavy at 128x128 (~32k links, 16k
// nodes). The static death-only rung is the delta path's sweet spot:
// most rounds mutate nothing and splice the cached result outright.
func BenchmarkLifetimeLadder(b *testing.B) {
	b.Run("death-only-static-64", func(b *testing.B) {
		benchRounds(b, benchSpec(64, 64, 0.003, 0, Static))
	})
	b.Run("death-only-64", func(b *testing.B) {
		benchRounds(b, benchSpec(64, 64, 0.003, 0, RoundRobin))
	})
	b.Run("churn-heavy-64", func(b *testing.B) {
		benchRounds(b, benchSpec(64, 64, 1, 0.05, Static))
	})
	b.Run("churn-heavy-128", func(b *testing.B) {
		benchRounds(b, benchSpec(128, 128, 1, 0.05, Static))
	})
}

// BenchmarkLifetimeLadderNoDelta runs the same rungs with the
// incremental delta path disabled (Spec.NoDelta): every round is a
// full session run. The delta speedup is LadderNoDelta vs Ladder; the
// session-vs-reference speedup is LadderNoDelta vs LadderReference.
func BenchmarkLifetimeLadderNoDelta(b *testing.B) {
	nd := func(spec Spec) Spec { spec.NoDelta = true; return spec }
	b.Run("death-only-static-64", func(b *testing.B) {
		benchRounds(b, nd(benchSpec(64, 64, 0.003, 0, Static)))
	})
	b.Run("death-only-64", func(b *testing.B) {
		benchRounds(b, nd(benchSpec(64, 64, 0.003, 0, RoundRobin)))
	})
	b.Run("churn-heavy-64", func(b *testing.B) {
		benchRounds(b, nd(benchSpec(64, 64, 1, 0.05, Static)))
	})
	b.Run("churn-heavy-128", func(b *testing.B) {
		benchRounds(b, nd(benchSpec(128, 128, 1, 0.05, Static)))
	})
}

// BenchmarkLifetimeLadderReference runs the same rungs on the frozen
// per-round path, so every EXPERIMENTS.md before/after pair comes from
// one session on one machine.
func BenchmarkLifetimeLadderReference(b *testing.B) {
	ref := func(spec Spec) Spec { spec.Reference = true; return spec }
	b.Run("death-only-static-64", func(b *testing.B) {
		benchRounds(b, ref(benchSpec(64, 64, 0.003, 0, Static)))
	})
	b.Run("death-only-64", func(b *testing.B) {
		benchRounds(b, ref(benchSpec(64, 64, 0.003, 0, RoundRobin)))
	})
	b.Run("churn-heavy-64", func(b *testing.B) {
		benchRounds(b, ref(benchSpec(64, 64, 1, 0.05, Static)))
	})
	b.Run("churn-heavy-128", func(b *testing.B) {
		benchRounds(b, ref(benchSpec(128, 128, 1, 0.05, Static)))
	})
}
