package life

import (
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
)

// BenchmarkLifetime measures the round loop on the 64x64 mesh — one
// static cell with light churn, so every round pays the full price:
// the churn sweep over ~8k links, the pruned-adjacency rebuild, and
// the broadcast itself. The custom rounds/sec metric is the headline;
// make bench runs this and benchjson records it.
func BenchmarkLifetime(b *testing.B) {
	topo := grid.NewMesh2D4(64, 64)
	spec := Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(topo.Kind()),
		Source:       grid.C2(32, 32),
		BudgetJ:      1, // nobody dies: measure steady-state rounds
		MaxRounds:    64,
		Seed:         1,
		Replications: 1,
		Strategies:   []Strategy{Static},
		PFail:        []float64{0.001},
		PNew:         0.25,
		Workers:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		cells, err := Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		rounds += cells[0].Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/sec")
}
