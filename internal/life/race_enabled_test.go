//go:build race

package life

// raceEnabled reports whether this test binary was built with -race.
// The race detector intentionally defeats sync.Pool reuse (to shake
// out races) and its instrumentation allocates, so the allocation
// regression tests measure nothing real under it and skip themselves.
const raceEnabled = true
