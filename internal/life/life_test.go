package life

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// testSpec is a small study that dies well within its round budget:
// on the 12x12 2d4 mesh the busiest paper-protocol relay burns on the
// order of 1e-4 J per round, so a 3 mJ battery lasts a few dozen
// rounds.
func testSpec() Spec {
	topo := grid.NewMesh2D4(12, 12)
	return Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(topo.Kind()),
		Source:       grid.C2(6, 6),
		BudgetJ:      0.003,
		MaxRounds:    128,
		Seed:         7,
		Replications: 2,
		Strategies:   []Strategy{Static, RoundRobin, Residual},
		PFail:        []float64{0, 0.02},
		PNew:         0.25,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The whole-study report must be byte-identical at any worker count:
// cells write index-ordered slots and are internally sequential, so
// scheduling cannot move a float.
func TestLifetimeWorkersIdentical(t *testing.T) {
	spec := testSpec()
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		spec.Workers = workers
		cells, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := mustJSON(t, cells)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: report differs from workers=1", workers)
		}
	}
}

// Cell order is strategy-major, churn-rate middle, replication minor,
// and replication seeds ignore strategy and churn rate (common random
// numbers).
func TestCellLayout(t *testing.T) {
	spec := testSpec()
	if got, want := spec.NumCells(), 3*2*2; got != want {
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	c0 := spec.CellAt(0)
	if c0.Strategy != Static || c0.PFail != 0 || c0.Rep != 0 {
		t.Errorf("cell 0 = %+v", c0)
	}
	last := spec.CellAt(spec.NumCells() - 1)
	if last.Strategy != Residual || last.PFail != 0.02 || last.Rep != 1 {
		t.Errorf("last cell = %+v", last)
	}
	// Same rep index -> same seed across every (strategy, churn) pair.
	for i := 0; i < spec.NumCells(); i++ {
		c := spec.CellAt(i)
		if c.Seed != spec.CellAt(c.Rep).Seed {
			t.Errorf("cell %d (rep %d) seed %#x not shared", i, c.Rep, c.Seed)
		}
	}
}

// Residual-energy rotation must outlive the static paper source: the
// static origin re-burns the same relay set every round, rotation
// spreads the load.
func TestResidualExtendsFirstDeath(t *testing.T) {
	spec := testSpec()
	spec.Strategies = []Strategy{Static, Residual}
	spec.PFail = []float64{0}
	spec.Replications = 1
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	static, residual := cells[0], cells[1]
	if static.FirstDeathRound == 0 || residual.FirstDeathRound == 0 {
		t.Fatalf("no deaths within %d rounds: static %d, residual %d",
			spec.MaxRounds, static.FirstDeathRound, residual.FirstDeathRound)
	}
	if residual.FirstDeathRound <= static.FirstDeathRound {
		t.Errorf("residual rotation first death at round %d, static at %d — rotation should extend it",
			residual.FirstDeathRound, static.FirstDeathRound)
	}
}

// The static strategy stops when its source dies; rotation strategies
// keep broadcasting from survivors.
func TestStaticStopsAtSourceDeath(t *testing.T) {
	spec := testSpec()
	spec.Strategies = []Strategy{Static}
	spec.PFail = []float64{0}
	spec.Replications = 1
	spec.MaxRounds = 4096
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.SourceDeathRound == 0 {
		t.Fatalf("static source survived %d rounds on a 3 mJ battery", c.Rounds)
	}
	if c.Rounds != c.SourceDeathRound {
		t.Errorf("static cell ran %d rounds past source death at %d", c.Rounds, c.SourceDeathRound)
	}
}

func TestRoundRobinOutlivesDeaths(t *testing.T) {
	spec := testSpec()
	spec.Strategies = []Strategy{RoundRobin}
	spec.PFail = []float64{0}
	spec.Replications = 1
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.FirstDeathRound == 0 || c.Deaths == 0 {
		t.Fatalf("no deaths: %+v", c)
	}
	if c.Rounds <= c.FirstDeathRound {
		t.Errorf("round-robin stopped at round %d, first death %d — it should rotate past dead nodes",
			c.Rounds, c.FirstDeathRound)
	}
}

// Permanent link churn (p_new = 0) on a line partitions the broadcast
// long before any battery dies.
func TestChurnPartitionsLine(t *testing.T) {
	topo := grid.NewMesh2D4(16, 1)
	spec := Spec{
		Topology:     topo,
		Protocol:     core.NewFlooding(),
		Source:       grid.C2(1, 1),
		BudgetJ:      1,
		MaxRounds:    32,
		Seed:         3,
		Replications: 1,
		Strategies:   []Strategy{Static},
		PFail:        []float64{0.3},
		PNew:         0,
	}
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.PartitionRound == 0 {
		t.Fatalf("15 links at p_fail 0.3 never partitioned in %d rounds", c.Rounds)
	}
	if c.FirstDeathRound != 0 {
		t.Errorf("a 1 J battery died at round %d", c.FirstDeathRound)
	}
	// Once a line link is permanently down, reachability never recovers.
	if c.DeliveredRounds >= c.Rounds {
		t.Errorf("DeliveredRounds %d not below Rounds %d despite partition", c.DeliveredRounds, c.Rounds)
	}
}

// With p_new > 0 churned links come back: the same line heals and
// delivers full reachability again after partition rounds.
func TestChurnRecovery(t *testing.T) {
	topo := grid.NewMesh2D4(16, 1)
	spec := Spec{
		Topology:     topo,
		Protocol:     core.NewFlooding(),
		Source:       grid.C2(1, 1),
		BudgetJ:      1,
		MaxRounds:    64,
		Seed:         3,
		Replications: 1,
		Strategies:   []Strategy{Static},
		PFail:        []float64{0.3},
		PNew:         1, // every down link recovers next round
	}
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.PartitionRound == 0 {
		t.Fatalf("line never partitioned in %d rounds", c.Rounds)
	}
	if c.DeliveredRounds == 0 {
		t.Errorf("no round delivered fully despite p_new = 1")
	}
}

type memCkpt struct {
	loaded []byte
	saves  [][]byte
}

func (c *memCkpt) Load() ([]byte, bool) {
	if c.loaded == nil {
		return nil, false
	}
	return c.loaded, true
}

func (c *memCkpt) Save(b []byte) error {
	c.saves = append(c.saves, append([]byte(nil), b...))
	return nil
}

// A cell resumed from any mid-run checkpoint must finish with the
// byte-identical report of an uninterrupted run.
func TestCheckpointResumeIdentical(t *testing.T) {
	spec := testSpec()
	spec.CheckpointEvery = 8
	for _, index := range []int{0, spec.NumCells() - 1} {
		rec := &memCkpt{}
		base, err := RunCell(context.Background(), spec, index, rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.saves) == 0 {
			t.Fatalf("cell %d: no checkpoints taken over %d rounds", index, base.Rounds)
		}
		want := mustJSON(t, base)
		for si, save := range rec.saves {
			resumed, err := RunCell(context.Background(), spec, index, &memCkpt{loaded: save})
			if err != nil {
				t.Fatalf("cell %d resume from save %d: %v", index, si, err)
			}
			if got := mustJSON(t, resumed); !bytes.Equal(got, want) {
				t.Errorf("cell %d resumed from save %d differs:\n got %s\nwant %s", index, si, got, want)
			}
		}
	}
}

// A checkpoint from a different mesh size is rejected, not silently
// misapplied.
func TestCheckpointMismatchRejected(t *testing.T) {
	spec := testSpec()
	spec.CheckpointEvery = 8
	rec := &memCkpt{}
	if _, err := RunCell(context.Background(), spec, 0, rec); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Topology = grid.NewMesh2D4(8, 8)
	other.Source = grid.C2(4, 4)
	if _, err := RunCell(context.Background(), other, 0, &memCkpt{loaded: rec.saves[0]}); err == nil {
		t.Error("checkpoint from a 12x12 study accepted by an 8x8 study")
	}
}

func TestSpecValidation(t *testing.T) {
	base := testSpec()
	for name, mut := range map[string]func(*Spec){
		"no budget":        func(s *Spec) { s.BudgetJ = 0 },
		"no rounds":        func(s *Spec) { s.MaxRounds = 0 },
		"no reps":          func(s *Spec) { s.Replications = 0 },
		"no strategies":    func(s *Spec) { s.Strategies = nil },
		"bad strategy":     func(s *Spec) { s.Strategies = []Strategy{"eternal"} },
		"bad churn":        func(s *Spec) { s.PFail = []float64{1.5} },
		"bad p_new":        func(s *Spec) { s.PNew = -0.1 },
		"source outside":   func(s *Spec) { s.Source = grid.C2(99, 99) },
		"down owned":       func(s *Spec) { s.Config.Down = []grid.Coord{grid.C2(1, 1)} },
		"down links owned": func(s *Spec) { s.Config.DownLinks = []sim.Link{{A: grid.C2(1, 1), B: grid.C2(2, 1)}} },
	} {
		s := base
		mut(&s)
		if _, err := Run(context.Background(), s); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

func TestRunCellIndexBounds(t *testing.T) {
	spec := testSpec()
	if _, err := RunCell(context.Background(), spec, -1, nil); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := RunCell(context.Background(), spec, spec.NumCells(), nil); err == nil {
		t.Error("out-of-range index accepted")
	}
}
