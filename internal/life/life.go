// Package life is the multi-round lifetime engine: it layers battery
// depletion, node death, link churn and source rotation on top of the
// single-broadcast simulator. The paper's premise is that sensor nodes
// are battery-bound — a broadcast protocol is only as good as the
// rounds a network survives under it — so this package runs the
// broadcast round after round, carrying per-node battery state (seeded
// from the first-order radio model) across rounds, feeding depleted
// nodes back as sim.Config.Down, flipping links up and down with a
// counter-based Markov churn chain, and rotating the source between
// rounds under a pluggable strategy. It reports network-lifetime
// metrics — rounds to first death, to X% dead, to source-partition —
// as curves, one cell per (strategy, churn rate, replication), sharded
// across internal/sweep with byte-identical merging at any worker
// count.
package life

import (
	"context"
	"encoding/json"
	"fmt"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/sweep"
)

// Strategy names a between-round source rotation policy.
type Strategy string

const (
	// Static keeps the configured source every round — the paper's
	// fixed-origin broadcast. The run stops when the source dies.
	Static Strategy = "static"
	// RoundRobin hands the source role to the next alive node in dense
	// index order each round, spreading the origin load mechanically.
	RoundRobin Strategy = "round-robin"
	// Residual picks the alive node with the most remaining battery
	// (ties to the lowest index) — LEACH-style rotation by residual
	// energy.
	Residual Strategy = "residual"
)

// Strategies lists every valid strategy, in canonical report order.
func Strategies() []Strategy { return []Strategy{Static, RoundRobin, Residual} }

// ParseStrategy validates a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	s := Strategy(name)
	for _, v := range Strategies() {
		if s == v {
			return s, nil
		}
	}
	return "", fmt.Errorf("life: unknown strategy %q", name)
}

// Milestone fractions reported per cell: the round by which 10%, 25%
// and 50% of the nodes have died.
var milestoneFracs = []float64{0.10, 0.25, 0.50}

// DefaultCheckpointEvery is the checkpoint cadence when
// Spec.CheckpointEvery is zero.
const DefaultCheckpointEvery = 256

// Spec describes one lifetime study: the cross product of Strategies x
// PFail x Replications, each cell an independent multi-round run.
type Spec struct {
	Topology grid.Topology
	Protocol sim.Protocol
	// Source is the round-1 origin of every cell; rotation strategies
	// take over from round 2.
	Source grid.Coord
	// Config is the per-round base configuration. Down, DownLinks and
	// Trace must be empty: the engine owns them across rounds.
	Config sim.Config
	// BudgetJ is the initial per-node battery in Joules (> 0).
	BudgetJ float64
	// MaxRounds bounds each cell's round loop (>= 1).
	MaxRounds int
	// Seed is the study seed; replication r of every cell draws from
	// sim.ReplicationSeed(Seed, r), so cells that differ only in
	// strategy or churn rate share their uniforms (common random
	// numbers) and compare under coupled noise.
	Seed uint64
	// Replications per (strategy, churn rate) cell (>= 1).
	Replications int
	// Strategies to run; must be non-empty and valid.
	Strategies []Strategy
	// PFail is the per-round, per-link failure probability grid; empty
	// means {0}. PNew is the per-round recovery probability of a down
	// link, shared across the grid.
	PFail []float64
	PNew  float64
	// BurnInRounds steps the link churn Markov chain this many times
	// before round 1, so churn starts at (or near) its stationary
	// distribution instead of all-up. Burn-in consumes chain steps
	// 1..BurnInRounds; live round r then draws step BurnInRounds+r, so
	// BurnInRounds=0 reproduces the un-burned byte stream exactly.
	// Burn-in is free of simulation work — only the chain advances.
	BurnInRounds int
	// Reference forces the frozen per-round sim.Run path (full config
	// rebuild every round) instead of the round-persistent sim.Session.
	// The two paths are byte-identical — locked by the differential
	// matrix in session_test.go — so Reference exists for those tests
	// and for honest benchmarking, not for production use.
	Reference bool
	// NoDelta keeps the session path but forces full Session.Run rounds
	// instead of the default incremental Session.RunDelta — the
	// `wsnlife -no-delta` escape hatch. Like Reference it never changes
	// report bytes (RunDelta is byte-identical by contract), only how
	// each round is computed.
	NoDelta bool
	// Workers sizes the cell-sharding pool (<= 0: GOMAXPROCS). Cells
	// are sequential inside; the report is byte-identical at any count.
	Workers int
	// Gauge, when non-nil, receives pending-cell deltas.
	Gauge sweep.Gauge
	// CheckpointEvery is the round cadence of Checkpointer saves in
	// RunCell; 0 means DefaultCheckpointEvery.
	CheckpointEvery int
}

// Cell identifies one (strategy, churn rate, replication) cell of a
// study.
type Cell struct {
	Strategy Strategy
	PFail    float64
	Rep      int
	Seed     uint64
}

// NumCells returns the study's cell count.
func (s Spec) NumCells() int {
	pf := len(s.PFail)
	if pf == 0 {
		pf = 1
	}
	return len(s.Strategies) * pf * s.Replications
}

// CellAt maps a cell index (strategy-major, churn-rate middle,
// replication minor) to its parameters.
func (s Spec) CellAt(index int) Cell {
	pfail := s.PFail
	if len(pfail) == 0 {
		pfail = []float64{0}
	}
	per := len(pfail) * s.Replications
	rep := index % s.Replications
	pi := index / s.Replications % len(pfail)
	si := index / per
	return Cell{
		Strategy: s.Strategies[si],
		PFail:    pfail[pi],
		Rep:      rep,
		Seed:     sim.ReplicationSeed(s.Seed, rep),
	}
}

func (s Spec) validate() error {
	if s.Topology == nil || s.Protocol == nil {
		return fmt.Errorf("life: spec needs a topology and a protocol")
	}
	if !s.Topology.Contains(s.Source) {
		return fmt.Errorf("life: source %s outside %s mesh", s.Source, s.Topology.Kind())
	}
	if s.BudgetJ <= 0 {
		return fmt.Errorf("life: battery budget must be positive (got %g)", s.BudgetJ)
	}
	if s.MaxRounds < 1 {
		return fmt.Errorf("life: max rounds must be >= 1 (got %d)", s.MaxRounds)
	}
	if s.Replications < 1 {
		return fmt.Errorf("life: replications must be >= 1 (got %d)", s.Replications)
	}
	if len(s.Strategies) == 0 {
		return fmt.Errorf("life: spec needs at least one strategy")
	}
	for _, st := range s.Strategies {
		if _, err := ParseStrategy(string(st)); err != nil {
			return err
		}
	}
	for _, p := range s.PFail {
		if p < 0 || p > 1 {
			return fmt.Errorf("life: churn rate %g outside [0, 1]", p)
		}
	}
	if s.PNew < 0 || s.PNew > 1 {
		return fmt.Errorf("life: p_new %g outside [0, 1]", s.PNew)
	}
	if s.BurnInRounds < 0 {
		return fmt.Errorf("life: burn-in rounds must be >= 0 (got %d)", s.BurnInRounds)
	}
	if len(s.Config.Down) > 0 || len(s.Config.DownLinks) > 0 || s.Config.Trace != nil {
		return fmt.Errorf("life: Config.Down, DownLinks and Trace are owned by the round loop")
	}
	return nil
}

// CurvePoint is one sample of a cell's lifetime curve.
type CurvePoint struct {
	Round int `json:"round"`
	// Alive is the node count still above zero battery after the round.
	Alive int `json:"alive"`
	// Reachability is the fraction of alive nodes the round's broadcast
	// reached.
	Reachability float64 `json:"reachability"`
	// MeanResidualJ is the mean remaining battery over all nodes (dead
	// nodes count as zero).
	MeanResidualJ float64 `json:"mean_residual_j"`
}

// Milestone records the first round by which the given fraction of
// nodes had died.
type Milestone struct {
	Frac  float64 `json:"frac"`
	Round int     `json:"round"`
}

// CellReport is one cell's lifetime metrics. Round numbers are 1-based;
// a zero round field means the event never happened within the run.
type CellReport struct {
	Strategy string  `json:"strategy"`
	PFail    float64 `json:"p_fail"`
	PNew     float64 `json:"p_new,omitempty"`
	Rep      int     `json:"rep"`
	Seed     uint64  `json:"seed"`
	// Rounds is how many broadcast rounds completed before the run
	// stopped (budget exhaustion path, MaxRounds, or a dead static
	// source).
	Rounds int `json:"rounds"`
	// FirstDeathRound is the network-lifetime headline: the round in
	// which the first node depleted its battery.
	FirstDeathRound int `json:"first_death_round,omitempty"`
	// DeadMilestones records the rounds by which 10/25/50% of the nodes
	// had died.
	DeadMilestones []Milestone `json:"dead_milestones,omitempty"`
	// PartitionRound is the first round whose broadcast failed to reach
	// every alive node (source partition).
	PartitionRound int `json:"partition_round,omitempty"`
	// SourceDeathRound is the round in which the configured round-1
	// source node died.
	SourceDeathRound int `json:"source_death_round,omitempty"`
	// Deaths counts dead nodes at the end of the run.
	Deaths int `json:"deaths"`
	// DeliveredRounds counts rounds whose broadcast reached every alive
	// node.
	DeliveredRounds int `json:"delivered_rounds"`
	// TotalEnergyJ is the cumulative radio energy of all rounds.
	TotalEnergyJ float64      `json:"total_energy_j"`
	Curve        []CurvePoint `json:"curve,omitempty"`

	// DeltaHits / DeltaFallbacks are in-process debug counters: how many
	// of the cell's rounds the session served from the incremental delta
	// cone versus any full-engine path. Deliberately excluded from JSON
	// (json:"-") so the wire format, checkpoints and result-cache
	// identity are byte-identical whether or not the delta path ran —
	// the differential matrix depends on that. Zero under
	// Spec.Reference/NoDelta; counters reset on checkpoint resume.
	DeltaHits      uint64 `json:"-"`
	DeltaFallbacks uint64 `json:"-"`
}

// Checkpointer persists a cell's round-loop state between calls, so an
// interrupted RunCell resumes instead of restarting. Load returns the
// last saved state (ok=false when none); Save replaces it. The state
// is opaque JSON produced by the engine; resumed runs are
// byte-identical to uninterrupted ones because encoding/json
// round-trips float64 exactly.
type Checkpointer interface {
	Load() ([]byte, bool)
	Save([]byte) error
}

// ckptState is the serialized round-loop state. Dead nodes and down
// links are stored as dense/link indices; everything else the loop
// needs is recomputable from (spec, cell, Round).
type ckptState struct {
	Round      int        `json:"round"`
	Battery    []float64  `json:"battery"`
	Dead       []int32    `json:"dead,omitempty"`
	LinkDown   []int32    `json:"link_down,omitempty"`
	PrevSource int32      `json:"prev_source"`
	Report     CellReport `json:"report"`
	EnergyJ    float64    `json:"energy_j"`
}

// Run executes every cell of the study, sharding cells across the
// worker pool and merging in cell-index order, so the slice is
// byte-identical at any worker count.
func Run(ctx context.Context, spec Spec) ([]CellReport, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	total := spec.NumCells()
	cells := make([]CellReport, total)
	fns := make([]func() error, total)
	for i := range fns {
		i := i
		fns[i] = func() error {
			rep, err := RunCell(ctx, spec, i, nil)
			if err != nil {
				return err
			}
			cells[i] = rep
			return nil
		}
	}
	eng := sweep.New(spec.Workers)
	if spec.Gauge != nil {
		eng = eng.WithGauge(spec.Gauge)
	}
	errs, err := eng.RunFuncs(ctx, fns)
	if err != nil {
		done := 0
		for i := range cells {
			if cells[i].Rounds > 0 {
				done++
			}
		}
		return nil, fmt.Errorf("life: cancelled after %d/%d cells: %w", done, total, err)
	}
	for i, e := range errs {
		if e != nil {
			c := spec.CellAt(i)
			return nil, fmt.Errorf("life: cell %d (%s, p_fail %g, rep %d): %w",
				i, c.Strategy, c.PFail, c.Rep, e)
		}
	}
	return cells, nil
}

// RunCell executes one cell's round loop. ck, when non-nil, is
// consulted for a previous checkpoint to resume from and receives a
// fresh checkpoint every Spec.CheckpointEvery rounds; the final report
// is byte-identical whether or not the run was interrupted.
func RunCell(ctx context.Context, spec Spec, index int, ck Checkpointer) (CellReport, error) {
	if err := spec.validate(); err != nil {
		return CellReport{}, err
	}
	if index < 0 || index >= spec.NumCells() {
		return CellReport{}, fmt.Errorf("life: cell index %d outside study of %d cells", index, spec.NumCells())
	}
	cell := spec.CellAt(index)
	st, err := newCellState(spec, cell)
	if err != nil {
		return CellReport{}, fmt.Errorf("life: cell %d: %w", index, err)
	}
	if ck != nil {
		if raw, ok := ck.Load(); ok {
			if err := st.restore(raw); err != nil {
				return CellReport{}, fmt.Errorf("life: cell %d checkpoint: %w", index, err)
			}
		}
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	for !st.stopped() {
		if err := ctx.Err(); err != nil {
			return CellReport{}, err
		}
		if err := st.round(); err != nil {
			return CellReport{}, err
		}
		if ck != nil && st.rep.Rounds%every == 0 && !st.stopped() {
			raw, err := st.snapshot()
			if err != nil {
				return CellReport{}, err
			}
			if err := ck.Save(raw); err != nil {
				return CellReport{}, fmt.Errorf("life: cell %d checkpoint save: %w", index, err)
			}
		}
	}
	return st.finish(), nil
}

// cellState is one cell's mutable round-loop state.
type cellState struct {
	spec Spec
	cell Cell

	v        int       // node count
	srcIdx   int32     // the configured round-1 source
	battery  []float64 // remaining Joules per dense index
	dead     []bool
	deadN    int
	links    []sim.IndexLink // the full link table, id = slice position
	linkDown []bool          // per link id
	prevSrc  int32           // source of the previous round (dense index)
	energyJ  float64
	rep      CellReport

	// sess is the round-persistent simulation session the round loop
	// drives (nil under Spec.Reference): deaths and link flips are
	// applied to it incrementally, once, as they happen.
	sess *sim.Session

	// Per-round scratch of the Reference path, rebuilt each round.
	downCoords []grid.Coord
	cutLinks   []sim.Link
}

// newCellState builds the initial state of a cell: full batteries,
// every link up, the configured source as "previous" so round-robin
// starts right after it. The churn chain is burned in here — before
// round 1 — so both checkpointed and fresh runs see the same chain.
func newCellState(spec Spec, cell Cell) (*cellState, error) {
	v := spec.Topology.NumNodes()
	st := &cellState{
		spec:    spec,
		cell:    cell,
		v:       v,
		srcIdx:  int32(spec.Topology.Index(spec.Source)),
		battery: make([]float64, v),
		dead:    make([]bool, v),
	}
	for i := range st.battery {
		st.battery[i] = spec.BudgetJ
	}
	st.prevSrc = st.srcIdx
	if !spec.Reference {
		sess, err := sim.NewSession(spec.Topology, spec.Protocol, spec.Config)
		if err != nil {
			return nil, err
		}
		st.sess = sess
	}
	if cell.PFail > 0 {
		st.links = sim.LinksOf(spec.Topology)
		st.linkDown = make([]bool, len(st.links))
		for b := 1; b <= spec.BurnInRounds; b++ {
			st.churnStep(b)
		}
	}
	st.rep = CellReport{
		Strategy: string(cell.Strategy),
		PFail:    cell.PFail,
		PNew:     spec.PNew,
		Rep:      cell.Rep,
		Seed:     cell.Seed,
	}
	return st, nil
}

// stopped reports whether the round loop has reached a terminal state:
// the round budget, fewer than two alive nodes, or — under the static
// strategy — a dead source.
func (st *cellState) stopped() bool {
	if st.rep.Rounds >= st.spec.MaxRounds {
		return true
	}
	if st.v-st.deadN <= 1 {
		return true
	}
	if st.cell.Strategy == Static && st.dead[st.srcIdx] {
		return true
	}
	return false
}

// pickSource chooses the round's broadcast origin under the cell's
// strategy. Round 1 always originates at the configured source.
func (st *cellState) pickSource() int32 {
	if st.rep.Rounds == 0 {
		return st.srcIdx
	}
	switch st.cell.Strategy {
	case RoundRobin:
		for off := 1; off <= st.v; off++ {
			i := (int(st.prevSrc) + off) % st.v
			if !st.dead[i] {
				return int32(i)
			}
		}
	case Residual:
		best := int32(-1)
		for i := 0; i < st.v; i++ {
			if st.dead[i] {
				continue
			}
			if best < 0 || st.battery[i] > st.battery[best] {
				best = int32(i)
			}
		}
		return best
	}
	return st.srcIdx
}

// churn advances the link Markov chain for live round r, which is
// chain step BurnInRounds+r: burn-in consumed the earlier steps.
func (st *cellState) churn(round int) {
	if st.cell.PFail == 0 {
		return
	}
	st.churnStep(st.spec.BurnInRounds + round)
}

// churnStep advances the chain one step: an up link fails with
// probability PFail, a down link recovers with probability PNew, both
// decided by the same counter-based uniform sim.ChurnUnit(cellSeed,
// step, linkID) — keyed by what is being decided, so replays, resume
// and worker count cannot shift a draw. Flips are mirrored into the
// session as they happen.
//
// Draws a state transition cannot use are skipped entirely: with
// p_fail == 0 and p_new == 0 the whole sweep is dead weight, and with
// p_new == 0 (permanent failures) down links need no uniform. Skipping
// is byte-identical because ChurnUnit is keyed by (seed, step, id) —
// an unconsumed draw can never shift another link's uniform — and a
// threshold of zero rejects every u in [0, 1) anyway; the churn-zero
// pin tests lock this.
func (st *cellState) churnStep(step int) {
	pf, pn := st.cell.PFail, st.spec.PNew
	if pf == 0 && pn == 0 {
		return
	}
	for id := range st.links {
		if st.linkDown[id] {
			if pn > 0 && sim.ChurnUnit(st.cell.Seed, step, int32(id)) < pn {
				st.setLink(id, false)
			}
		} else if pf > 0 && sim.ChurnUnit(st.cell.Seed, step, int32(id)) < pf {
			st.setLink(id, true)
		}
	}
}

// setLink records one link state change, forwarding it to the session
// (the ids are valid by construction: st.links and the session share
// the LinksOf enumeration).
func (st *cellState) setLink(id int, down bool) {
	st.linkDown[id] = down
	if st.sess == nil {
		return
	}
	if down {
		_ = st.sess.SetLinkDown(id)
	} else {
		_ = st.sess.SetLinkUp(id)
	}
}

// roundConfig assembles the sim config of one Reference-path round:
// the base config plus the current dead nodes and down links, both in
// deterministic dense order. The session path never calls it — that
// rebuild is exactly the per-round cost sessions eliminate.
func (st *cellState) roundConfig() sim.Config {
	cfg := st.spec.Config
	if st.deadN > 0 {
		st.downCoords = st.downCoords[:0]
		for i := 0; i < st.v; i++ {
			if st.dead[i] {
				st.downCoords = append(st.downCoords, st.spec.Topology.At(i))
			}
		}
		cfg.Down = st.downCoords
	}
	if st.linkDown != nil {
		st.cutLinks = st.cutLinks[:0]
		for id, d := range st.linkDown {
			if d {
				lk := st.links[id]
				st.cutLinks = append(st.cutLinks, sim.Link{
					A: st.spec.Topology.At(int(lk.A)),
					B: st.spec.Topology.At(int(lk.B)),
				})
			}
		}
		cfg.DownLinks = st.cutLinks
	}
	return cfg
}

// round executes one broadcast round: rotate, churn, run, account.
func (st *cellState) round() error {
	r := st.rep.Rounds + 1
	src := st.pickSource()
	if src < 0 || st.dead[src] {
		return fmt.Errorf("life: round %d has no alive source", r)
	}
	st.churn(r)
	var res *sim.Result
	var err error
	if st.sess != nil {
		at := st.spec.Topology.At(int(src))
		if st.spec.NoDelta {
			res, err = st.sess.Run(at)
		} else {
			res, err = st.sess.RunDelta(at)
		}
	} else {
		res, err = sim.Run(st.spec.Topology, st.spec.Protocol, st.spec.Topology.At(int(src)), st.roundConfig())
	}
	if err != nil {
		return fmt.Errorf("life: round %d: %w", r, err)
	}
	st.prevSrc = src
	st.rep.Rounds = r
	st.energyJ += res.EnergyJ

	reach := res.Reachability()
	if res.FullyReached() {
		st.rep.DeliveredRounds++
	} else if st.rep.PartitionRound == 0 {
		st.rep.PartitionRound = r
	}

	// Deplete batteries and mark deaths. PerNodeEnergyJ is dense-index
	// sized with zeros for down nodes, so one pass covers everyone.
	for i, e := range res.PerNodeEnergyJ {
		if e == 0 || st.dead[i] {
			continue
		}
		st.battery[i] -= e
		if st.battery[i] <= 0 {
			st.battery[i] = 0
			st.dead[i] = true
			st.deadN++
			if st.sess != nil {
				_ = st.sess.SetNodeDown(i) // i ranges over PerNodeEnergyJ: always in-mesh
			}
			if st.rep.FirstDeathRound == 0 {
				st.rep.FirstDeathRound = r
			}
			if int32(i) == st.srcIdx && st.rep.SourceDeathRound == 0 {
				st.rep.SourceDeathRound = r
			}
		}
	}
	for _, frac := range milestoneFracs {
		if float64(st.deadN) >= frac*float64(st.v) && !st.hasMilestone(frac) {
			st.rep.DeadMilestones = append(st.rep.DeadMilestones, Milestone{Frac: frac, Round: r})
		}
	}

	if st.sampleAt(r) || st.stopped() {
		st.rep.Curve = append(st.rep.Curve, CurvePoint{
			Round:         r,
			Alive:         st.v - st.deadN,
			Reachability:  reach,
			MeanResidualJ: st.meanResidual(),
		})
	}
	return nil
}

func (st *cellState) hasMilestone(frac float64) bool {
	for _, m := range st.rep.DeadMilestones {
		if m.Frac == frac {
			return true
		}
	}
	return false
}

// sampleAt reports whether round r is a regular curve sample: at most
// ~64 evenly spaced samples per cell, plus the final round.
func (st *cellState) sampleAt(r int) bool {
	every := st.spec.MaxRounds / 64
	if every < 1 {
		every = 1
	}
	return r%every == 0
}

func (st *cellState) meanResidual() float64 {
	sum := 0.0
	for _, b := range st.battery {
		sum += b
	}
	return sum / float64(st.v)
}

// snapshot serializes the loop state for a Checkpointer.
func (st *cellState) snapshot() ([]byte, error) {
	s := ckptState{
		Round:      st.rep.Rounds,
		Battery:    st.battery,
		PrevSource: st.prevSrc,
		Report:     st.rep,
		EnergyJ:    st.energyJ,
	}
	for i, d := range st.dead {
		if d {
			s.Dead = append(s.Dead, int32(i))
		}
	}
	for id, d := range st.linkDown {
		if d {
			s.LinkDown = append(s.LinkDown, int32(id))
		}
	}
	return json.Marshal(s)
}

// restore rewinds the state to a snapshot taken by the same (spec,
// cell) pair.
func (st *cellState) restore(raw []byte) error {
	var s ckptState
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	if len(s.Battery) != st.v {
		return fmt.Errorf("checkpoint is for a %d-node mesh, study has %d", len(s.Battery), st.v)
	}
	if s.Round != s.Report.Rounds {
		return fmt.Errorf("checkpoint round %d disagrees with its report (%d)", s.Round, s.Report.Rounds)
	}
	copy(st.battery, s.Battery)
	for i := range st.dead {
		st.dead[i] = false
	}
	st.deadN = 0
	for _, i := range s.Dead {
		if int(i) < 0 || int(i) >= st.v {
			return fmt.Errorf("checkpoint dead index %d outside mesh", i)
		}
		st.dead[i] = true
		st.deadN++
	}
	if st.linkDown != nil {
		for i := range st.linkDown {
			st.linkDown[i] = false
		}
		for _, id := range s.LinkDown {
			if int(id) < 0 || int(id) >= len(st.linkDown) {
				return fmt.Errorf("checkpoint link id %d outside table", id)
			}
			st.linkDown[id] = true
		}
	} else if len(s.LinkDown) > 0 {
		return fmt.Errorf("checkpoint has down links but the cell has no churn")
	}
	st.prevSrc = s.PrevSource
	st.rep = s.Report
	st.energyJ = s.EnergyJ
	st.syncSession()
	return nil
}

// syncSession deterministically reconstructs the session's live graph
// from the restored dead/linkDown state: reset to pristine, then
// replay every failure. The resulting adjacency rows are identical to
// the ones an uninterrupted session would hold (each row is a pure
// filter of the pristine row by the current node/link state, whatever
// mutation order produced it), so resumed runs stay byte-identical.
func (st *cellState) syncSession() {
	if st.sess == nil {
		return
	}
	st.sess.Reset()
	for i, d := range st.dead {
		if d {
			_ = st.sess.SetNodeDown(i)
		}
	}
	for id, d := range st.linkDown {
		if d {
			_ = st.sess.SetLinkDown(id)
		}
	}
}

// finish seals the report, folding the session's delta counters into
// the debug fields and the package totals (served at /metrics).
func (st *cellState) finish() CellReport {
	st.rep.Deaths = st.deadN
	st.rep.TotalEnergyJ = st.energyJ
	if st.sess != nil {
		hits, falls := st.sess.DeltaStats()
		st.rep.DeltaHits, st.rep.DeltaFallbacks = hits, falls
		addDeltaTotals(hits, falls)
	}
	return st.rep
}
