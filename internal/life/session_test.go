package life

// Differential matrix locking the round-persistent session path to
// the frozen per-round reference (Spec.Reference): whole-study reports
// must be byte-identical across every canonical topology, every
// rotation strategy, churn on and off, and every worker count —
// including runs resumed from mid-study checkpoints. This is the
// contract that let the hot loop move onto sim.Session at all.

import (
	"bytes"
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
)

// matrixSpec is one small-but-busy study per topology kind: batteries
// sized to cause deaths within the round budget, churn at 5% with
// recovery, all three strategies.
func matrixSpec(k grid.Kind) Spec {
	topo := grid.New(k, 8, 8, 4)
	return Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(k),
		Source:       topo.At(topo.NumNodes() / 2),
		BudgetJ:      0.003,
		MaxRounds:    48,
		Seed:         11,
		Replications: 1,
		Strategies:   []Strategy{Static, RoundRobin, Residual},
		PFail:        []float64{0, 0.05},
		PNew:         0.25,
	}
}

// TestSessionDifferentialMatrix is the byte-identity matrix: for every
// canonical topology and worker count, the session-driven study equals
// the reference study exactly.
func TestSessionDifferentialMatrix(t *testing.T) {
	for _, k := range grid.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			ref := matrixSpec(k)
			ref.Reference = true
			ref.Workers = 1
			want, err := Run(context.Background(), ref)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON := mustJSON(t, want)
			for _, workers := range []int{1, 2, 8} {
				for _, noDelta := range []bool{false, true} {
					spec := matrixSpec(k)
					spec.Workers = workers
					spec.NoDelta = noDelta
					got, err := Run(context.Background(), spec)
					if err != nil {
						t.Fatalf("workers=%d noDelta=%v: %v", workers, noDelta, err)
					}
					if gotJSON := mustJSON(t, got); !bytes.Equal(gotJSON, wantJSON) {
						t.Errorf("workers=%d noDelta=%v: session report differs from reference:\n got %s\nwant %s",
							workers, noDelta, gotJSON, wantJSON)
					}
				}
			}
		})
	}
}

// A session-driven cell resumed from any mid-run checkpoint — with
// churn and burn-in active, so the restored state includes down links
// and dead nodes the session must reconstruct — finishes with the
// byte-identical report of an uninterrupted reference run.
func TestSessionCheckpointResumeMatchesReference(t *testing.T) {
	spec := matrixSpec(grid.Mesh2D4)
	spec.BurnInRounds = 16
	spec.CheckpointEvery = 8
	index := spec.NumCells() - 1 // residual rotation, churned
	ref := spec
	ref.Reference = true
	base, err := RunCell(context.Background(), ref, index, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, base)
	rec := &memCkpt{}
	full, err := RunCell(context.Background(), spec, index, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, full); !bytes.Equal(got, want) {
		t.Fatalf("uninterrupted session run differs from reference:\n got %s\nwant %s", got, want)
	}
	if len(rec.saves) == 0 {
		t.Fatalf("no checkpoints taken over %d rounds", full.Rounds)
	}
	for si, save := range rec.saves {
		resumed, err := RunCell(context.Background(), spec, index, &memCkpt{loaded: save})
		if err != nil {
			t.Fatalf("resume from save %d: %v", si, err)
		}
		if got := mustJSON(t, resumed); !bytes.Equal(got, want) {
			t.Errorf("resume from save %d differs from reference:\n got %s\nwant %s", si, got, want)
		}
	}
}

// Burn-in shifts the churn chain, not the round loop: zero burn-in
// reproduces the un-burned study, positive burn-in changes churned
// cells (the chain starts at steady state) but leaves churn-free cells
// untouched, and the session and reference paths agree under both.
func TestBurnInSemantics(t *testing.T) {
	base := matrixSpec(grid.Mesh2D4)
	baseRep, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	zero := base
	zero.BurnInRounds = 0
	zeroRep, err := Run(context.Background(), zero)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, baseRep), mustJSON(t, zeroRep)) {
		t.Error("BurnInRounds=0 changed the report")
	}
	burned := base
	burned.BurnInRounds = 32
	burnedRep, err := Run(context.Background(), burned)
	if err != nil {
		t.Fatal(err)
	}
	burnedRef := burned
	burnedRef.Reference = true
	burnedRefRep, err := Run(context.Background(), burnedRef)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, burnedRep), mustJSON(t, burnedRefRep)) {
		t.Error("burned-in session report differs from burned-in reference")
	}
	for i := range burnedRep {
		bj, zj := mustJSON(t, burnedRep[i]), mustJSON(t, zeroRep[i])
		if burnedRep[i].PFail == 0 {
			if !bytes.Equal(bj, zj) {
				t.Errorf("cell %d (no churn): burn-in changed the report", i)
			}
		} else if bytes.Equal(bj, zj) {
			t.Errorf("cell %d (p_fail %g): 32 burn-in steps left the chain untouched",
				i, burnedRep[i].PFail)
		}
	}
}

// With p_new=0 every burn-in step only removes links, so enough
// burn-in starts round 1 partitioned: the chain really does advance
// before the first broadcast, without consuming round budget.
func TestBurnInStartsAtChainState(t *testing.T) {
	topo := grid.NewMesh2D4(16, 1)
	spec := Spec{
		Topology:     topo,
		Protocol:     core.NewFlooding(),
		Source:       grid.C2(1, 1),
		BudgetJ:      1,
		MaxRounds:    4,
		Seed:         3,
		Replications: 1,
		Strategies:   []Strategy{Static},
		PFail:        []float64{0.3},
		PNew:         0,
		BurnInRounds: 64,
	}
	cells, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.PartitionRound != 1 {
		t.Errorf("PartitionRound = %d, want 1: 64 burn-in steps at p_fail 0.3 / p_new 0 must partition the line before round 1", c.PartitionRound)
	}
	if c.Rounds != spec.MaxRounds {
		t.Errorf("Rounds = %d, want %d: burn-in must not consume round budget", c.Rounds, spec.MaxRounds)
	}
}

func TestBurnInValidation(t *testing.T) {
	spec := matrixSpec(grid.Mesh2D4)
	spec.BurnInRounds = -1
	if _, err := Run(context.Background(), spec); err == nil {
		t.Error("negative burn-in accepted")
	}
}

// The lifetime hot loop's allocation budget: once a cell's session is
// warm, a steady-state round — churn step, broadcast, battery
// accounting — stays within a handful of allocations (curve samples
// and milestone appends are amortized). Measured by differencing two
// run lengths so setup cost cancels out.
func TestRoundAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse and allocates for instrumentation; budget holds only in normal builds")
	}
	spec := matrixSpec(grid.Mesh2D4)
	spec.Strategies = []Strategy{RoundRobin}
	spec.PFail = []float64{0.05}
	spec.BudgetJ = 1e6 // nobody dies: round count is exactly MaxRounds
	run := func(rounds int) float64 {
		s := spec
		s.MaxRounds = rounds
		if _, err := RunCell(context.Background(), s, 0, nil); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := RunCell(context.Background(), s, 0, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(64), run(256)
	perRound := (long - short) / 192
	if perRound > 4 {
		t.Errorf("steady-state lifetime round allocates %.2f/round (%.0f @64 rounds, %.0f @256), budget is 4",
			perRound, short, long)
	}
}
