package mc_test

// Macro-benchmark of the Monte Carlo reliability engine: one full
// study — replications x (loss rate x failure rate) grid — through
// spec validation, job fan-out, the sweep pool and aggregation. This
// is the workload whose per-run constant factor the engine overhaul
// attacks: every replication is one sim.Run. Run:
//
//	go test ./internal/mc -bench=MC -benchmem -run=^$

import (
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/mc"
	"wsnbcast/internal/sim"
)

// BenchmarkMCReliability runs a 20-replication study over a
// 3 loss x 2 failure grid on a 16x8 2D-4 mesh (120 sim.Runs per
// iteration) with one worker, isolating per-run engine cost from
// scheduling noise.
func BenchmarkMCReliability(b *testing.B) {
	topo := grid.NewMesh2D4(16, 8)
	spec := mc.Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(grid.Mesh2D4),
		Source:       grid.C2(8, 4),
		Config:       sim.Config{},
		Seed:         1,
		Replications: 20,
		LossRates:    []float64{0, 0.05, 0.1},
		FailureRates: []float64{0, 0.1},
		Workers:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCLockstep saturates the lockstep lane engine: 130
// replications per grid point fill two 64-lane words plus a 2-lane
// tail every point, so the figure tracks the engine's bit-parallel
// throughput including the ragged-batch edge the width tests pin.
func BenchmarkMCLockstep(b *testing.B) {
	topo := grid.NewMesh2D4(16, 8)
	spec := mc.Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(grid.Mesh2D4),
		Source:       grid.C2(8, 4),
		Config:       sim.Config{},
		Seed:         1,
		Replications: 130,
		LossRates:    []float64{0, 0.05, 0.1},
		FailureRates: []float64{0, 0.1},
		Workers:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCReliabilityCanonical runs a smaller-replication study on
// the canonical 512-node 2D-4 mesh — the per-replication cost at the
// paper's evaluation scale.
func BenchmarkMCReliabilityCanonical(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	spec := mc.Spec{
		Topology:     topo,
		Protocol:     core.ForTopology(grid.Mesh2D4),
		Source:       grid.C2(16, 8),
		Config:       sim.Config{},
		Seed:         1,
		Replications: 5,
		LossRates:    []float64{0, 0.1},
		FailureRates: []float64{0},
		Workers:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
