package mc

// Edge cases of the Report surface: curve extraction at a rate the grid
// never ran, and the degenerate statistics of a single-replication
// study — both consumed downstream by the CLI tables and the scenario
// layer, so their shapes are part of the contract.

import (
	"context"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
)

// Curve slices the point grid by exact failure rate: a rate the study
// never ran yields an empty curve, not a nearest match, and each real
// rate yields its full loss-rate run in ascending order.
func TestCurveUnknownFailureRate(t *testing.T) {
	topo := grid.NewMesh2D4(6, 4)
	rep, err := Run(context.Background(), Spec{
		Topology: topo, Protocol: core.ForTopology(grid.Mesh2D4), Source: center(topo),
		Seed: 5, Replications: 2,
		LossRates:    []float64{0, 0.1},
		FailureRates: []float64{0, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts := rep.Curve(0.05); len(pts) != 0 {
		t.Errorf("Curve(0.05) returned %d points for a rate the grid never ran", len(pts))
	}
	for _, fr := range []float64{0, 0.2} {
		pts := rep.Curve(fr)
		if len(pts) != 2 {
			t.Fatalf("Curve(%g) returned %d points, want 2", fr, len(pts))
		}
		for i, p := range pts {
			if p.FailureRate != fr {
				t.Errorf("Curve(%g)[%d] has failure rate %g", fr, i, p.FailureRate)
			}
		}
		if pts[0].LossRate != 0 || pts[1].LossRate != 0.1 {
			t.Errorf("Curve(%g) loss rates = %g, %g, want ascending 0, 0.1",
				fr, pts[0].LossRate, pts[1].LossRate)
		}
	}
}

// A single replication carries no spread: every metric of the point
// must collapse to Mean == Min == Max with a zero confidence interval,
// not a NaN from the n-1 denominator.
func TestSingleReplicationDegenerateIntervals(t *testing.T) {
	topo := grid.NewMesh2D4(6, 4)
	rep, err := Run(context.Background(), Spec{
		Topology: topo, Protocol: core.ForTopology(grid.Mesh2D4), Source: center(topo),
		Seed: 11, Replications: 1,
		LossRates:    []float64{0.15},
		FailureRates: []float64{0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Replications != 1 {
		t.Fatalf("points = %+v, want one single-replication point", rep.Points)
	}
	pt := rep.Points[0]
	for name, m := range map[string]Metric{
		"Reachability": pt.Reachability,
		"Delay":        pt.Delay,
		"EnergyJ":      pt.EnergyJ,
		"Tx":           pt.Tx,
		"Repairs":      pt.Repairs,
	} {
		if m.CI95 != 0 {
			t.Errorf("%s: single replication has CI95 = %g", name, m.CI95)
		}
		if m.Min != m.Mean || m.Max != m.Mean {
			t.Errorf("%s: extremes %g..%g disagree with mean %g", name, m.Min, m.Max, m.Mean)
		}
	}
}
