package mc

// The lane-width leg of the differential layer: a study's report must
// be byte-identical at every lockstep batch width — one replication
// per word, ragged widths, or the full 64-lane word — and identical
// again when the lane engine is bypassed entirely and every
// replication runs through scalar sim.Run. Together with
// sim.TestLaneDifferentialMatrix (which proves per-replication
// equality at the engine level) this pins the whole stack: batching
// boundaries and the lane/scalar dispatch can never shift an estimate.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// lockstepSpec exercises the full stochastic engine — loss, failures
// and the repair planner all on — with a replication count that is
// deliberately not a multiple of any lane width under test, so every
// width produces at least one ragged tail batch.
func lockstepSpec(lanes int) Spec {
	topo := grid.New(grid.Mesh2D4, 8, 6, 1)
	return Spec{
		Topology: topo, Protocol: core.ForTopology(grid.Mesh2D4), Source: center(topo),
		Seed:         99,
		Replications: 67, // one full 64-lane word plus a 3-lane tail
		LossRates:    []float64{0, 0.08, 0.2},
		FailureRates: []float64{0, 0.1},
		Workers:      3,
		Lanes:        lanes,
	}
}

func TestLockstepLaneWidthsIdenticalReports(t *testing.T) {
	ref, err := Run(context.Background(), lockstepSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, wantRec := marshalled(t, ref)
	for _, lanes := range []int{0, 2, 7, 64} {
		rep, err := Run(context.Background(), lockstepSpec(lanes))
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		gotAgg, gotRec := marshalled(t, rep)
		if gotAgg != wantAgg {
			t.Errorf("lanes=%d: aggregate report differs from lanes=1", lanes)
		}
		if gotRec != wantRec {
			t.Errorf("lanes=%d: per-replication records differ from lanes=1", lanes)
		}
	}
}

// A traced spec is inherently scalar: the lane engine declines it and
// every replication runs through sim.Run. The reports must still be
// byte-identical — the lane engine's correctness contract at the mc
// level.
func TestLockstepMatchesScalarEngine(t *testing.T) {
	lane, err := Run(context.Background(), lockstepSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	scalarSpec := lockstepSpec(0)
	scalarSpec.Config.Trace = func(sim.Event) {}
	scalar, err := Run(context.Background(), scalarSpec)
	if err != nil {
		t.Fatal(err)
	}
	laneAgg, laneRec := marshalled(t, lane)
	scalAgg, scalRec := marshalled(t, scalar)
	if laneAgg != scalAgg {
		t.Error("lane-engine aggregate report differs from scalar engine")
	}
	if laneRec != scalRec {
		t.Error("lane-engine per-replication records differ from scalar engine")
	}
}

// A cancelled study reports how far it got: the partial-report error
// names completed vs total replications and wraps the context error.
func TestCancellationPartialReportError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, lockstepSpec(0))
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "mc: cancelled after ") ||
		!strings.Contains(err.Error(), "/402 replications") {
		t.Errorf("partial-report error missing progress counts: %v", err)
	}
}
