package mc

// The stochastic extension of PR 1's differential layer: a Monte Carlo
// study must produce byte-identical aggregate reports and per-
// replication records at every worker count for the same seed. The
// whole package's determinism rests on counter-based draws — if any
// layer smuggled in shared RNG state, worker scheduling would surface
// here as a diff. make race runs this file under the race detector,
// which doubles as the concurrency-safety audit of the loss channel.

import (
	"context"
	"encoding/json"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func studySpec(k grid.Kind, workers int) Spec {
	topo := grid.New(k, 8, 6, 2)
	return Spec{
		Topology: topo, Protocol: core.ForTopology(k), Source: center(topo),
		Config:       sim.Config{DisableRepair: true},
		Seed:         1234,
		Replications: 6,
		LossRates:    []float64{0, 0.1, 0.25},
		FailureRates: []float64{0, 0.08},
		Workers:      workers,
	}
}

func marshalled(t *testing.T, rep *Report) (aggregate, records string) {
	t.Helper()
	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	r, err := json.Marshal(rep.Records)
	if err != nil {
		t.Fatal(err)
	}
	return string(a), string(r)
}

func TestParallelSerialIdenticalReports(t *testing.T) {
	for _, k := range grid.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			serial, err := Run(context.Background(), studySpec(k, 1))
			if err != nil {
				t.Fatal(err)
			}
			wantAgg, wantRec := marshalled(t, serial)
			for _, workers := range []int{2, 5, 8} {
				par, err := Run(context.Background(), studySpec(k, workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				gotAgg, gotRec := marshalled(t, par)
				if gotAgg != wantAgg {
					t.Errorf("workers=%d: aggregate report differs from serial", workers)
				}
				if gotRec != wantRec {
					t.Errorf("workers=%d: per-replication records differ from serial", workers)
				}
			}
		})
	}
}

// Identical seeds reproduce the identical study; different seeds must
// not (at a stochastic grid point).
func TestSeedReproducibility(t *testing.T) {
	a, err := Run(context.Background(), studySpec(grid.Mesh2D4, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), studySpec(grid.Mesh2D4, 4))
	if err != nil {
		t.Fatal(err)
	}
	aAgg, aRec := marshalled(t, a)
	bAgg, bRec := marshalled(t, b)
	if aAgg != bAgg || aRec != bRec {
		t.Error("same seed did not reproduce the study")
	}
	other := studySpec(grid.Mesh2D4, 4)
	other.Seed = 4321
	c, err := Run(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	cAgg, _ := marshalled(t, c)
	if cAgg == aAgg {
		t.Error("different seeds produced identical stochastic studies")
	}
}
