package mc

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func center(t grid.Topology) grid.Coord {
	m, n, l := t.Size()
	return grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
}

// The regression bridge to the deterministic engine: at loss rate 0
// with failure rate 0 every replication must be *identical* to
// sim.Run's output for the same config — the config the Tables 3-5
// goldens pin. The stochastic path must be a strict superset of the
// deterministic one, never a reimplementation that drifts.
func TestZeroRatesBridgeToDeterministicEngine(t *testing.T) {
	for _, k := range grid.Kinds() {
		topo := grid.New(k, 8, 6, 2)
		p := core.ForTopology(k)
		src := center(topo)
		rep, err := Run(context.Background(), Spec{
			Topology: topo, Protocol: p, Source: src,
			Seed: 42, Replications: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		det, err := sim.Run(topo, p, src, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(rep.Points) != 1 || len(rep.Records) != 3 {
			t.Fatalf("%s: %d points / %d records", k, len(rep.Points), len(rep.Records))
		}
		for _, rec := range rep.Records {
			want := Record{
				LossRate: 0, FailureRate: 0, Rep: rec.Rep,
				Seed:    sim.ReplicationSeed(42, rec.Rep),
				Reached: det.Reached, Total: det.Total, Down: det.Down,
				Reachability: det.Reachability(), Delay: det.Delay,
				Tx: det.Tx, Rx: det.Rx, Lost: det.Lost,
				Collisions: det.Collisions, Repairs: det.Repairs,
				EnergyJ: det.EnergyJ,
			}
			if rec != want {
				t.Errorf("%s rep %d:\n got %+v\nwant %+v", k, rec.Rep, rec, want)
			}
		}
		pt := rep.Points[0]
		if pt.Reachability.Mean != 1 || pt.Reachability.CI95 != 0 {
			t.Errorf("%s: zero-rate reachability %+v", k, pt.Reachability)
		}
		if pt.FullyReached != 3 {
			t.Errorf("%s: FullyReached = %d", k, pt.FullyReached)
		}
		if pt.EnergyJ.Mean != det.EnergyJ || pt.Delay.Mean != float64(det.Delay) {
			t.Errorf("%s: aggregate drifted from the deterministic run", k)
		}
	}
}

// Loss degrades reachability when repair is off; failures shrink the
// live population; both aggregates stay internally consistent.
func TestLossAndFailureCurves(t *testing.T) {
	topo := grid.NewMesh2D4(12, 8)
	rep, err := Run(context.Background(), Spec{
		Topology: topo, Protocol: core.ForTopology(grid.Mesh2D4), Source: center(topo),
		Config:       sim.Config{DisableRepair: true},
		Seed:         7,
		Replications: 30,
		LossRates:    []float64{0, 0.1, 0.3},
		FailureRates: []float64{0, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(rep.Points))
	}
	curve := rep.Curve(0)
	if len(curve) != 3 {
		t.Fatalf("curve at failure 0 has %d points", len(curve))
	}
	if curve[0].Reachability.Mean != 1 {
		t.Errorf("lossless reachability %g, want 1", curve[0].Reachability.Mean)
	}
	if curve[2].Reachability.Mean >= curve[0].Reachability.Mean {
		t.Errorf("30%% loss did not degrade reachability: %g", curve[2].Reachability.Mean)
	}
	if curve[2].Reachability.CI95 <= 0 {
		t.Errorf("stochastic point has no confidence interval: %+v", curve[2].Reachability)
	}
	for _, p := range rep.Points {
		if p.Reachability.Min > p.Reachability.Mean || p.Reachability.Max < p.Reachability.Mean {
			t.Errorf("metric extremes exclude the mean: %+v", p.Reachability)
		}
	}
	// At failure rate 0.1 some replications run with a reduced live
	// population.
	failed := rep.Curve(0.1)
	sawDown := false
	for _, rec := range rep.Records {
		if rec.FailureRate == 0.1 && rec.Down > 0 {
			sawDown = true
		}
		if rec.Total+rec.Down != topo.NumNodes() {
			t.Fatalf("Total %d + Down %d != %d nodes", rec.Total, rec.Down, topo.NumNodes())
		}
	}
	if !sawDown {
		t.Error("failure rate 0.1 never sampled a down node across 30 replications")
	}
	if len(failed) != 3 {
		t.Fatalf("curve at failure 0.1 has %d points", len(failed))
	}
}

// The grid axes are canonical: duplicated, unsorted rate lists produce
// the byte-identical report of their sorted deduplication, and nil
// means {0}.
// TestConfigWorkersInvariance pins the doc contract on Spec.Config:
// the intra-run shard pool a study requests via Config.Workers cannot
// move any estimate. Both reports carry sampled loss and failures, so
// the invariance holds on the stochastic path, not just the zero-rate
// bridge.
func TestConfigWorkersInvariance(t *testing.T) {
	topo := grid.NewMesh2D4(12, 8)
	spec := Spec{
		Topology: topo, Protocol: core.ForTopology(grid.Mesh2D4), Source: center(topo),
		Seed: 9, Replications: 4,
		LossRates: []float64{0, 0.1}, FailureRates: []float64{0.05},
	}
	serial := spec
	serial.Config.Workers = 1
	sharded := spec
	sharded.Config.Workers = 8
	repSerial, err := Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	repSharded, err := Run(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repSerial, repSharded) {
		t.Error("Config.Workers=1 and =8 studies diverged")
	}
}

func TestRateGridCanonicalization(t *testing.T) {
	topo := grid.NewMesh2D4(6, 4)
	base := Spec{
		Topology: topo, Protocol: core.NewFlooding(), Source: center(topo),
		Config: sim.Config{DisableRepair: true}, Seed: 3, Replications: 4,
	}
	messy := base
	messy.LossRates = []float64{0.2, 0, 0.2, 0.1}
	messy.FailureRates = []float64{0.05, 0.05}
	clean := base
	clean.LossRates = []float64{0, 0.1, 0.2}
	clean.FailureRates = []float64{0.05}
	a, err := Run(context.Background(), messy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("messy and clean grids differ:\n%s\n%s", ja, jb)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("records differ between messy and clean grids")
	}
}

func TestSpecValidation(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	ok := Spec{Topology: topo, Protocol: core.NewFlooding(), Source: grid.C2(1, 1), Replications: 1}
	bad := []Spec{
		{},
		{Topology: topo, Protocol: core.NewFlooding(), Source: grid.C2(9, 9), Replications: 1},
		func() Spec { s := ok; s.Replications = 0; return s }(),
		func() Spec { s := ok; s.Replications = -3; return s }(),
		func() Spec { s := ok; s.LossRates = []float64{1.5}; return s }(),
		func() Spec { s := ok; s.FailureRates = []float64{-0.1}; return s }(),
	}
	for i, s := range bad {
		if _, err := Run(context.Background(), s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := Run(context.Background(), ok); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{
		Topology: topo, Protocol: core.NewFlooding(), Source: grid.C2(1, 1),
		Replications: 50, LossRates: []float64{0.1},
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
