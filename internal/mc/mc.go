// Package mc is the Monte Carlo reliability engine: it replays one
// broadcast configuration many times under sampled packet loss and
// node failures and aggregates the replications into reliability
// curves — reachability, delay, energy and transmission counts as
// means with 95% confidence intervals per (loss rate, failure rate)
// grid point.
//
// # Determinism
//
// A replication is a pure function of its derived seed: packet loss
// and node failures come from counter-based draws (internal/sim's
// keyed PRNG), never from shared stateful generators, so neither the
// worker count nor completion order can shift a draw. Replications fan
// out across the internal/sweep worker pool as independent jobs and
// are gathered in job order; every aggregate is accumulated in that
// order, so an mc report is byte-identical for any -workers value —
// the stochastic extension of the sweep engine's parallel==serial
// contract. Replication seeds are shared across grid points (common
// random numbers), which couples the curves: per seed, raising the
// loss rate can only remove deliveries.
package mc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/stats"
	"wsnbcast/internal/sweep"
)

// Spec describes one reliability study: N seeded replications of a
// (topology, protocol, source, config) broadcast at every point of the
// loss-rate x failure-rate grid.
type Spec struct {
	Topology grid.Topology
	Protocol sim.Protocol
	Source   grid.Coord
	// Config is the base simulation config; sampled failures are merged
	// into its Down list and the loss channel replaces its Channel.
	// Config.Workers flows through to every replication's sim.Run: on a
	// large-grid study it enables deterministic intra-run sharding on
	// top of the cross-replication pool below, without changing any
	// estimate (the engine is byte-identical at every worker count).
	Config sim.Config
	// Seed is the study seed; replication r of every grid point runs
	// under sim.ReplicationSeed(Seed, r).
	Seed uint64
	// Replications is the number of seeded replications per grid point
	// (>= 1).
	Replications int
	// LossRates and FailureRates span the study grid; nil means {0}.
	// Rates must lie in [0, 1].
	LossRates    []float64
	FailureRates []float64
	// Workers bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Workers int
}

func (s Spec) validate() error {
	if s.Topology == nil || s.Protocol == nil {
		return fmt.Errorf("mc: spec needs a topology and a protocol")
	}
	if !s.Topology.Contains(s.Source) {
		return fmt.Errorf("mc: source %s outside the %s mesh", s.Source, s.Topology.Kind())
	}
	if s.Replications < 1 {
		return fmt.Errorf("mc: replications must be >= 1 (got %d)", s.Replications)
	}
	for _, r := range s.LossRates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("mc: loss rate %g outside [0, 1]", r)
		}
	}
	for _, r := range s.FailureRates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("mc: failure rate %g outside [0, 1]", r)
		}
	}
	return nil
}

// Record is one replication's outcome — the JSONL row the wsnmc CLI
// emits, and the raw material of the per-point aggregates.
type Record struct {
	LossRate     float64 `json:"loss_rate"`
	FailureRate  float64 `json:"failure_rate"`
	Rep          int     `json:"rep"`
	Seed         uint64  `json:"seed"` // derived replication seed
	Reached      int     `json:"reached"`
	Total        int     `json:"total"`
	Down         int     `json:"down"`
	Reachability float64 `json:"reachability"`
	Delay        int     `json:"delay"`
	Tx           int     `json:"tx"`
	Rx           int     `json:"rx"`
	Lost         int     `json:"lost"`
	Collisions   int     `json:"collisions"`
	Repairs      int     `json:"repairs"`
	EnergyJ      float64 `json:"energy_j"`
}

// Metric summarizes one quantity over a point's replications: the mean
// with its normal-approximation 95% confidence half-width, plus the
// observed extremes.
type Metric struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func metric(r *stats.Running) Metric {
	return Metric{Mean: r.Mean(), CI95: r.CI95(), Min: r.Min(), Max: r.Max()}
}

// Point aggregates the replications of one (loss rate, failure rate)
// grid point.
type Point struct {
	LossRate     float64 `json:"loss_rate"`
	FailureRate  float64 `json:"failure_rate"`
	Replications int     `json:"replications"`
	// FullyReached counts replications in which every live node decoded
	// the message.
	FullyReached int    `json:"fully_reached"`
	Reachability Metric `json:"reachability"`
	Delay        Metric `json:"delay"`
	EnergyJ      Metric `json:"energy_j"`
	Tx           Metric `json:"tx"`
	Repairs      Metric `json:"repairs"`
}

// Report is the aggregated study. Points are ordered failure-rate
// major, loss rate minor, both ascending — each failure rate's run of
// points is one reachability-vs-loss-rate curve, and fixing a loss
// rate across runs reads out the reachability-vs-failure-rate curve.
type Report struct {
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	Protocol     string  `json:"protocol"`
	Source       string  `json:"source"`
	Seed         uint64  `json:"seed"`
	Replications int     `json:"replications"`
	Points       []Point `json:"points"`
	// Records carries every replication (point-major, replication
	// minor); the CLI writes them out as JSONL.
	Records []Record `json:"-"`
}

// Curve returns the report's points at the given failure rate, in
// ascending loss-rate order: one reachability-vs-loss-rate curve.
func (r *Report) Curve(failureRate float64) []Point {
	var out []Point
	for _, p := range r.Points {
		if p.FailureRate == failureRate {
			out = append(out, p)
		}
	}
	return out
}

// CanonicalRates returns the canonical form of a grid axis: the input
// sorted ascending and deduplicated, or {0} when empty. Run applies it
// to both axes, and the scenario layer applies the same function when
// canonicalizing documents so that equivalent rate lists share one
// cache identity.
func CanonicalRates(in []float64) []float64 {
	if len(in) == 0 {
		return []float64{0}
	}
	out := append([]float64(nil), in...)
	sort.Float64s(out)
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// Run executes the study: Replications seeded jobs per grid point,
// fanned across the sweep engine's worker pool, gathered and
// aggregated in job order. The first failed replication, in job order,
// aborts with its identity; a cancelled context returns promptly with
// the context's error.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	lossRates := CanonicalRates(spec.LossRates)
	failRates := CanonicalRates(spec.FailureRates)

	type pointJobs struct {
		loss, fail float64
	}
	var points []pointJobs
	for _, fr := range failRates {
		for _, lr := range lossRates {
			points = append(points, pointJobs{loss: lr, fail: fr})
		}
	}

	// One sweep job per (point, replication); the replication seed
	// depends only on the replication index, so grid points share
	// uniforms (common random numbers).
	jobs := make([]sweep.Job, 0, len(points)*spec.Replications)
	for _, pt := range points {
		for rep := 0; rep < spec.Replications; rep++ {
			repSeed := sim.ReplicationSeed(spec.Seed, rep)
			cfg := spec.Config
			if pt.fail > 0 {
				sampled := sim.SampleFailures(spec.Topology, spec.Source, repSeed, pt.fail)
				cfg.Down = append(append([]grid.Coord(nil), spec.Config.Down...), sampled...)
			}
			cfg.Channel = sim.NewBernoulliLoss(repSeed, pt.loss)
			jobs = append(jobs, sweep.Job{
				Topology: spec.Topology,
				Protocol: spec.Protocol,
				Source:   spec.Source,
				Config:   cfg,
			})
		}
	}

	outs, err := sweep.New(spec.Workers).Run(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("mc: %w", err)
	}

	rep := &Report{
		Topology:     spec.Topology.Kind().String(),
		Nodes:        spec.Topology.NumNodes(),
		Protocol:     spec.Protocol.Name(),
		Source:       spec.Source.String(),
		Seed:         spec.Seed,
		Replications: spec.Replications,
		Points:       make([]Point, 0, len(points)),
		Records:      make([]Record, 0, len(jobs)),
	}
	for pi, pt := range points {
		var reach, delay, energy, tx, repairs stats.Running
		p := Point{LossRate: pt.loss, FailureRate: pt.fail, Replications: spec.Replications}
		for r := 0; r < spec.Replications; r++ {
			o := outs[pi*spec.Replications+r]
			if o.Err != nil {
				return nil, fmt.Errorf("mc: replication %d at loss=%g failure=%g: %w",
					r, pt.loss, pt.fail, o.Err)
			}
			res := o.Result
			rep.Records = append(rep.Records, Record{
				LossRate: pt.loss, FailureRate: pt.fail,
				Rep: r, Seed: sim.ReplicationSeed(spec.Seed, r),
				Reached: res.Reached, Total: res.Total, Down: res.Down,
				Reachability: res.Reachability(), Delay: res.Delay,
				Tx: res.Tx, Rx: res.Rx, Lost: res.Lost,
				Collisions: res.Collisions, Repairs: res.Repairs,
				EnergyJ: res.EnergyJ,
			})
			reach.Add(res.Reachability())
			delay.Add(float64(res.Delay))
			energy.Add(res.EnergyJ)
			tx.Add(float64(res.Tx))
			repairs.Add(float64(res.Repairs))
			if res.FullyReached() {
				p.FullyReached++
			}
		}
		p.Reachability = metric(&reach)
		p.Delay = metric(&delay)
		p.EnergyJ = metric(&energy)
		p.Tx = metric(&tx)
		p.Repairs = metric(&repairs)
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}
