// Package mc is the Monte Carlo reliability engine: it replays one
// broadcast configuration many times under sampled packet loss and
// node failures and aggregates the replications into reliability
// curves — reachability, delay, energy and transmission counts as
// means with 95% confidence intervals per (loss rate, failure rate)
// grid point.
//
// # Determinism
//
// A replication is a pure function of its derived seed: packet loss
// and node failures come from counter-based draws (internal/sim's
// keyed PRNG), never from shared stateful generators, so neither the
// worker count nor completion order can shift a draw. Replications run
// as lockstep lane batches — up to Spec.Lanes (default 64)
// replications bit-parallel per sim.RunLanes call, one bit lane per
// replication — fanned across the internal/sweep worker pool and
// gathered in (point, replication) order; every aggregate is
// accumulated in that order, so an mc report is byte-identical for any
// -workers AND any -lanes value — the stochastic extension of the
// sweep engine's parallel==serial contract, proven by the lockstep
// differential tests in this package. Batches the lane engine declines
// (traced runs, oversized grids, non-converging repair plans) rerun
// replication-by-replication through scalar sim.Run, which the lane
// engine reproduces bit for bit. Replication seeds are shared across
// grid points (common random numbers), which couples the curves: per
// seed, raising the loss rate can only remove deliveries.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/stats"
	"wsnbcast/internal/sweep"
)

// Spec describes one reliability study: N seeded replications of a
// (topology, protocol, source, config) broadcast at every point of the
// loss-rate x failure-rate grid.
type Spec struct {
	Topology grid.Topology
	Protocol sim.Protocol
	Source   grid.Coord
	// Config is the base simulation config; sampled failures are merged
	// into its Down list and the loss channel replaces its Channel.
	// Config.Workers flows through to every replication's sim.Run: on a
	// large-grid study it enables deterministic intra-run sharding on
	// top of the cross-replication pool below, without changing any
	// estimate (the engine is byte-identical at every worker count).
	Config sim.Config
	// Seed is the study seed; replication r of every grid point runs
	// under sim.ReplicationSeed(Seed, r).
	Seed uint64
	// Replications is the number of seeded replications per grid point
	// (>= 1).
	Replications int
	// LossRates and FailureRates span the study grid; nil means {0}.
	// Rates must lie in [0, 1].
	LossRates    []float64
	FailureRates []float64
	// Workers bounds the sweep worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Lanes caps the lockstep batch width: how many replications one
	// sim.RunLanes call carries bit-parallel. 0 means the full 64-lane
	// word; 1 pins the scalar engine per replication. Any value in
	// [1, 64] produces byte-identical reports — the lane engine is
	// bit-exact against scalar sim.Run — so the knob trades batch
	// throughput against cross-batch parallelism, never results.
	Lanes int
}

func (s Spec) validate() error {
	if s.Topology == nil || s.Protocol == nil {
		return fmt.Errorf("mc: spec needs a topology and a protocol")
	}
	if !s.Topology.Contains(s.Source) {
		return fmt.Errorf("mc: source %s outside the %s mesh", s.Source, s.Topology.Kind())
	}
	if s.Replications < 1 {
		return fmt.Errorf("mc: replications must be >= 1 (got %d)", s.Replications)
	}
	for _, r := range s.LossRates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("mc: loss rate %g outside [0, 1]", r)
		}
	}
	for _, r := range s.FailureRates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("mc: failure rate %g outside [0, 1]", r)
		}
	}
	if s.Lanes < 0 || s.Lanes > 64 {
		return fmt.Errorf("mc: lanes must be in [0, 64] (got %d)", s.Lanes)
	}
	return nil
}

// Record is one replication's outcome — the JSONL row the wsnmc CLI
// emits, and the raw material of the per-point aggregates.
type Record struct {
	LossRate     float64 `json:"loss_rate"`
	FailureRate  float64 `json:"failure_rate"`
	Rep          int     `json:"rep"`
	Seed         uint64  `json:"seed"` // derived replication seed
	Reached      int     `json:"reached"`
	Total        int     `json:"total"`
	Down         int     `json:"down"`
	Reachability float64 `json:"reachability"`
	Delay        int     `json:"delay"`
	Tx           int     `json:"tx"`
	Rx           int     `json:"rx"`
	Lost         int     `json:"lost"`
	Collisions   int     `json:"collisions"`
	Repairs      int     `json:"repairs"`
	EnergyJ      float64 `json:"energy_j"`
}

// Metric summarizes one quantity over a point's replications: the mean
// with its normal-approximation 95% confidence half-width, plus the
// observed extremes.
type Metric struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func metric(r *stats.Running) Metric {
	return Metric{Mean: r.Mean(), CI95: r.CI95(), Min: r.Min(), Max: r.Max()}
}

// Point aggregates the replications of one (loss rate, failure rate)
// grid point.
type Point struct {
	LossRate     float64 `json:"loss_rate"`
	FailureRate  float64 `json:"failure_rate"`
	Replications int     `json:"replications"`
	// FullyReached counts replications in which every live node decoded
	// the message.
	FullyReached int    `json:"fully_reached"`
	Reachability Metric `json:"reachability"`
	Delay        Metric `json:"delay"`
	EnergyJ      Metric `json:"energy_j"`
	Tx           Metric `json:"tx"`
	Repairs      Metric `json:"repairs"`
}

// Report is the aggregated study. Points are ordered failure-rate
// major, loss rate minor, both ascending — each failure rate's run of
// points is one reachability-vs-loss-rate curve, and fixing a loss
// rate across runs reads out the reachability-vs-failure-rate curve.
type Report struct {
	Topology     string  `json:"topology"`
	Nodes        int     `json:"nodes"`
	Protocol     string  `json:"protocol"`
	Source       string  `json:"source"`
	Seed         uint64  `json:"seed"`
	Replications int     `json:"replications"`
	Points       []Point `json:"points"`
	// Records carries every replication (point-major, replication
	// minor); the CLI writes them out as JSONL.
	Records []Record `json:"-"`
}

// Curve returns the report's points at the given failure rate, in
// ascending loss-rate order: one reachability-vs-loss-rate curve.
func (r *Report) Curve(failureRate float64) []Point {
	var out []Point
	for _, p := range r.Points {
		if p.FailureRate == failureRate {
			out = append(out, p)
		}
	}
	return out
}

// CanonicalRates returns the canonical form of a grid axis: the input
// sorted ascending and deduplicated, or {0} when empty. Run applies it
// to both axes, and the scenario layer applies the same function when
// canonicalizing documents so that equivalent rate lists share one
// cache identity.
func CanonicalRates(in []float64) []float64 {
	if len(in) == 0 {
		return []float64{0}
	}
	out := append([]float64(nil), in...)
	sort.Float64s(out)
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

// RunPoint runs the study restricted to a single (loss, failure) grid
// point and returns that point's aggregate. Replication seeds depend
// only on the replication index — never on the grid shape — and every
// point aggregates its own replications independently, so the returned
// Point is byte-identical to the corresponding entry of a full-grid
// Run. This is the decomposition the distributed job coordinator
// shards on: one RunPoint per grid point, merged in (failure-major,
// loss-minor) order, reproduces the serial study exactly.
func RunPoint(ctx context.Context, spec Spec, loss, failure float64) (Point, error) {
	spec.LossRates = []float64{loss}
	spec.FailureRates = []float64{failure}
	rep, err := Run(ctx, spec)
	if err != nil {
		return Point{}, err
	}
	return rep.Points[0], nil
}

// repOut is one replication's slot in the batch output matrix: exactly
// one of a usable result and an error once its batch ran.
type repOut struct {
	res sim.LaneResult
	err error
}

// runBatch executes one lockstep batch — the replications [repLo,
// repLo+len(seeds)) of one grid point — into its own slots of the
// output matrix. The lane engine carries the whole batch bit-parallel;
// a batch it declines (ErrLaneFallback) reruns replication by
// replication through scalar sim.Run, built exactly as the pre-lane
// engine built its sweep jobs, so the fallback is byte-identical by
// construction rather than by argument.
func runBatch(spec Spec, loss, fail float64, seeds []uint64, out []repOut) {
	laneCfg := spec.Config
	laneCfg.Channel = nil // mc owns the channel; the seeded loss mask replaces it
	lanes, err := sim.RunLanes(sim.LaneSpec{
		Topology: spec.Topology,
		Protocol: spec.Protocol,
		Source:   spec.Source,
		Config:   laneCfg,
		Seeds:    seeds,
		LossRate: loss, FailureRate: fail,
	})
	if err == nil {
		for i, r := range lanes {
			out[i] = repOut{res: r}
		}
		return
	}
	if !errors.Is(err, sim.ErrLaneFallback) {
		for i := range out {
			out[i] = repOut{err: err}
		}
		return
	}
	for i, seed := range seeds {
		cfg := spec.Config
		if fail > 0 {
			sampled := sim.SampleFailures(spec.Topology, spec.Source, seed, fail)
			cfg.Down = append(append([]grid.Coord(nil), spec.Config.Down...), sampled...)
		}
		cfg.Channel = sim.NewBernoulliLoss(seed, loss)
		res, err := sim.Run(spec.Topology, spec.Protocol, spec.Source, cfg)
		if err != nil {
			out[i] = repOut{err: err}
			continue
		}
		out[i] = repOut{res: sim.LaneResult{
			Reached: res.Reached, Total: res.Total, Down: res.Down,
			Delay: res.Delay, Tx: res.Tx, Rx: res.Rx, Lost: res.Lost,
			Collisions: res.Collisions, Duplicates: res.Duplicates,
			Repairs: res.Repairs, EnergyJ: res.EnergyJ,
		}}
	}
}

// Run executes the study: Replications seeded replications per grid
// point, dispatched as lockstep lane batches across the sweep engine's
// worker pool, gathered and aggregated in (point, replication) order.
// The first failed replication, in that order, aborts with its
// identity; a cancelled context aborts with a partial-report error
// naming how many lane batches had completed.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	lossRates := CanonicalRates(spec.LossRates)
	failRates := CanonicalRates(spec.FailureRates)
	laneWidth := spec.Lanes
	if laneWidth == 0 {
		laneWidth = 64
	}
	if spec.Config.Trace != nil {
		// Traced runs are inherently scalar; width-1 batches keep them
		// one sweep task per replication, as before the lane engine.
		laneWidth = 1
	}

	type gridPoint struct {
		loss, fail float64
	}
	var points []gridPoint
	for _, fr := range failRates {
		for _, lr := range lossRates {
			points = append(points, gridPoint{loss: lr, fail: fr})
		}
	}

	// The replication seed depends only on the replication index, so
	// grid points share uniforms (common random numbers) and the lane
	// batching boundary cannot shift any draw.
	seeds := make([]uint64, spec.Replications)
	for r := range seeds {
		seeds[r] = sim.ReplicationSeed(spec.Seed, r)
	}

	// One task per (point, lane batch), each writing its own slots of
	// the output matrix; the final batch of a point is ragged when
	// Replications is not a multiple of the lane width.
	outs := make([]repOut, len(points)*spec.Replications)
	var fns []func() error
	for pi, pt := range points {
		base := pi * spec.Replications
		for lo := 0; lo < spec.Replications; lo += laneWidth {
			hi := min(lo+laneWidth, spec.Replications)
			pt, lo, hi := pt, lo, hi
			fns = append(fns, func() error {
				runBatch(spec, pt.loss, pt.fail, seeds[lo:hi], outs[base+lo:base+hi])
				return nil
			})
		}
	}

	if _, err := sweep.New(spec.Workers).RunFuncs(ctx, fns); err != nil {
		done := 0
		for _, o := range outs {
			if o.err != nil || o.res.Total > 0 {
				done++
			}
		}
		return nil, fmt.Errorf("mc: cancelled after %d/%d replications: %w",
			done, len(outs), err)
	}

	rep := &Report{
		Topology:     spec.Topology.Kind().String(),
		Nodes:        spec.Topology.NumNodes(),
		Protocol:     spec.Protocol.Name(),
		Source:       spec.Source.String(),
		Seed:         spec.Seed,
		Replications: spec.Replications,
		Points:       make([]Point, 0, len(points)),
		Records:      make([]Record, 0, len(outs)),
	}
	// Per-point sample buffers, reused across points: the per-lane
	// values are gathered in replication order and folded into the
	// running moments with one AddAll each, which keeps the accumulation
	// order — and therefore every float — identical to the
	// per-replication loop the lane engine replaced.
	samples := struct{ reach, delay, energy, tx, repairs []float64 }{}
	for pi, pt := range points {
		var reach, delay, energy, tx, repairs stats.Running
		samples.reach = samples.reach[:0]
		samples.delay = samples.delay[:0]
		samples.energy = samples.energy[:0]
		samples.tx = samples.tx[:0]
		samples.repairs = samples.repairs[:0]
		p := Point{LossRate: pt.loss, FailureRate: pt.fail, Replications: spec.Replications}
		for r := 0; r < spec.Replications; r++ {
			o := outs[pi*spec.Replications+r]
			if o.err != nil {
				return nil, fmt.Errorf("mc: replication %d at loss=%g failure=%g: %w",
					r, pt.loss, pt.fail, o.err)
			}
			res := o.res
			rep.Records = append(rep.Records, Record{
				LossRate: pt.loss, FailureRate: pt.fail,
				Rep: r, Seed: seeds[r],
				Reached: res.Reached, Total: res.Total, Down: res.Down,
				Reachability: res.Reachability(), Delay: res.Delay,
				Tx: res.Tx, Rx: res.Rx, Lost: res.Lost,
				Collisions: res.Collisions, Repairs: res.Repairs,
				EnergyJ: res.EnergyJ,
			})
			samples.reach = append(samples.reach, res.Reachability())
			samples.delay = append(samples.delay, float64(res.Delay))
			samples.energy = append(samples.energy, res.EnergyJ)
			samples.tx = append(samples.tx, float64(res.Tx))
			samples.repairs = append(samples.repairs, float64(res.Repairs))
			if res.FullyReached() {
				p.FullyReached++
			}
		}
		reach.AddAll(samples.reach...)
		delay.AddAll(samples.delay...)
		energy.AddAll(samples.energy...)
		tx.AddAll(samples.tx...)
		repairs.AddAll(samples.repairs...)
		p.Reachability = metric(&reach)
		p.Delay = metric(&delay)
		p.EnergyJ = metric(&energy)
		p.Tx = metric(&tx)
		p.Repairs = metric(&repairs)
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}
