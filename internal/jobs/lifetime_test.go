package jobs

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

// lifetimeScenario is a small study whose batteries die within the
// round budget: 2 strategies x 2 churn rates x 2 replications = 8
// cells, each a few dozen 8x8 broadcast rounds.
func lifetimeScenario() scenario.Scenario {
	return scenario.Scenario{
		Name:     "jobs-life",
		Topology: scenario.TopologySpec{Kind: "2d4", M: 8, N: 8},
		Sources:  []scenario.Point{{X: 4, Y: 4}},
		Lifetime: &scenario.LifetimeSpec{
			BudgetJ:      0.004,
			MaxRounds:    48,
			Seed:         11,
			Replications: 2,
			Strategies:   []string{"static", "residual"},
			ChurnRates:   []float64{0, 0.05},
			PNew:         0.3,
		},
	}
}

func syncLifetimeBody(t *testing.T, sc scenario.Scenario) []byte {
	t.Helper()
	rep, err := sc.Canonical().LifetimeReport(context.Background(), 4, nil)
	if err != nil {
		t.Fatalf("sync lifetime: %v", err)
	}
	body, err := store.EncodeBody(rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return body
}

// TestLifetimeJobMatchesSync: the merged lifetime job result is
// byte-identical to the synchronous POST /v1/lifetime body at every
// worker count.
func TestLifetimeJobMatchesSync(t *testing.T) {
	sc := lifetimeScenario()
	want := syncLifetimeBody(t, sc)
	for _, workers := range []int{1, 4} {
		m := NewManager(Config{Workers: workers})
		_, got := submitAndWait(t, m, KindLifetime, sc)
		if !bytes.Equal(got, want) {
			t.Errorf("lifetime job with %d workers: result differs from synchronous body", workers)
		}
		if err := m.Close(context.Background()); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestLifetimeKindGate: a lifetime section only runs under the
// lifetime kind, and the lifetime kind needs a lifetime section.
func TestLifetimeKindGate(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())
	for _, kind := range []string{KindRun, KindScenario} {
		if _, err := m.Submit(kind, lifetimeScenario()); err == nil {
			t.Errorf("kind %s accepted a lifetime section", kind)
		}
	}
	if _, err := m.Submit(KindLifetime, runScenario()); err == nil {
		t.Error("lifetime kind accepted a document without a lifetime section")
	}
}

// cancelAfterSaves checkpoints through the store and cancels the run
// context once `after` saves have landed — a deterministic stand-in
// for SIGKILL between two checkpoint cadences.
type cancelAfterSaves struct {
	inner  storeCheckpointer
	after  int
	saves  int
	cancel context.CancelFunc
}

func (c *cancelAfterSaves) Load() ([]byte, bool) { return c.inner.Load() }

func (c *cancelAfterSaves) Save(b []byte) error {
	if err := c.inner.Save(b); err != nil {
		return err
	}
	c.saves++
	if c.saves == c.after {
		c.cancel()
	}
	return nil
}

// countingCkpt counts successful Loads, to prove a resume actually
// consumed the durable checkpoint instead of restarting.
type countingCkpt struct {
	inner storeCheckpointer
	loads int
}

func (c *countingCkpt) Load() ([]byte, bool) {
	b, ok := c.inner.Load()
	if ok {
		c.loads++
	}
	return b, ok
}

func (c *countingCkpt) Save(b []byte) error { return c.inner.Save(b) }

// TestLifetimeCheckpointKillResume kills a lifetime point mid-cell
// (after its second checkpoint save) and re-executes it over the same
// store: the resumed run must load the durable checkpoint and produce
// the byte-identical payload of an uninterrupted run.
func TestLifetimeCheckpointKillResume(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st.Close()
	sc := lifetimeScenario().Canonical()
	pl, err := compilePlan(KindLifetime, sc)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	const index, every = 0, 4
	key, err := checkpointKey(KindLifetime, sc, index)
	if err != nil {
		t.Fatalf("checkpoint key: %v", err)
	}

	want, err := executePoint(context.Background(), KindLifetime, sc, pl, index, nil, every)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killer := &cancelAfterSaves{inner: storeCheckpointer{st: st, key: key}, after: 2, cancel: cancel}
	if _, err := executePoint(ctx, KindLifetime, sc, pl, index, killer, every); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}
	if killer.saves != 2 {
		t.Fatalf("killed run saved %d checkpoints, want 2", killer.saves)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("no durable checkpoint after the kill")
	}

	resumer := &countingCkpt{inner: storeCheckpointer{st: st, key: key}}
	got, err := executePoint(context.Background(), KindLifetime, sc, pl, index, resumer, every)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumer.loads != 1 {
		t.Errorf("resumed run loaded %d checkpoints, want 1", resumer.loads)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed payload differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestLifetimeRestartResume tears a manager down mid-study and
// recovers on a fresh manager over the same store: durable cells come
// back from disk, the rest are recomputed, the merged result matches
// the synchronous body, and the spent checkpoints are gone.
func TestLifetimeRestartResume(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	sc := lifetimeScenario()
	const total = 8

	reached := make(chan struct{})
	release := make(chan struct{})
	var gated atomic.Bool
	m1 := NewManager(Config{
		Store:           st1,
		Workers:         1,
		CheckpointEvery: 4,
		BeforePoint: func(_ string, index int) {
			if index == 2 && gated.CompareAndSwap(false, true) {
				close(reached)
				<-release
			}
		},
	})
	sub, err := m1.Submit(KindLifetime, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(time.Minute):
		t.Fatal("worker never reached point 2")
	}
	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		closed <- m1.Close(ctx)
	}()
	for m1.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	m2 := NewManager(Config{Store: st2, Workers: 4, CheckpointEvery: 4})
	defer m2.Close(context.Background())
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("recovered %d jobs, want 1", resumed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fin, err := m2.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone || fin.Done != total {
		t.Fatalf("recovered job = %s %d/%d, want done %d/%d", fin.State, fin.Done, fin.Total, total, total)
	}
	// Cells 0 and 1 were durable before the restart (the gated cell 2
	// was cancelled before running); the second manager computes the
	// other six.
	if n := m2.Stats().PointsComputed; n != total-2 {
		t.Errorf("recovered manager computed %d points, want %d", n, total-2)
	}
	got, ok := m2.Result(sub.ID)
	if !ok {
		t.Fatal("no result after recovery")
	}
	if want := syncLifetimeBody(t, sc); !bytes.Equal(got, want) {
		t.Error("recovered result differs from synchronous body")
	}
	// Every cell's payload is durable, so every round-loop checkpoint
	// must have been deleted.
	csc := sc.Canonical()
	for i := 0; i < total; i++ {
		key, err := checkpointKey(KindLifetime, csc, i)
		if err != nil {
			t.Fatalf("checkpoint key %d: %v", i, err)
		}
		if _, ok := st2.Get(key); ok {
			t.Errorf("cell %d checkpoint survived job completion", i)
		}
	}
}
