package jobs

import (
	"context"
	"encoding/json"
	"fmt"

	"wsnbcast/internal/life"
	"wsnbcast/internal/mc"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/sim"
	"wsnbcast/internal/store"
)

// This file is the determinism core of the job subsystem: how a
// submitted scenario decomposes into independent grid points, how one
// point executes, and how the per-point payloads merge back into the
// exact bytes the synchronous serving path would have produced.
//
// The decomposition is a pure function of the canonical scenario, so
// every instance sharing a store directory enumerates the same points
// in the same order; each point's payload is a pure function of the
// scenario and the point index (simulation results are deterministic,
// and Monte Carlo replication seeds depend only on the replication
// index — never on the grid shape or the worker layout); and the merge
// consumes payloads strictly in point-index order. Work-stealing,
// retries, worker counts and process restarts can therefore reorder
// and re-execute computation freely without being able to shift a
// single output byte — the distributed extension of the sweep engine's
// parallel==serial contract, proven by the differential tests in this
// package and in internal/service.

// Job kinds mirror the synchronous endpoints: a job's merged result is
// byte-identical to the corresponding POST /v1/<kind> response body,
// and is stored under the same content-addressed key.
const (
	KindRun      = "run"
	KindScenario = "scenario"
	KindSweep    = "sweep"
	KindLifetime = "lifetime"
)

// ValidKind reports whether kind names a job shape.
func ValidKind(kind string) bool {
	return kind == KindRun || kind == KindScenario || kind == KindSweep || kind == KindLifetime
}

// plan is a job's compiled decomposition.
type plan struct {
	total int
	// shape selects the executor/merger triple.
	shape shape
	// loss/fail are the canonical reliability grid axes (reliability
	// shape only).
	loss, fail []float64
}

type shape int

const (
	// shapeWhole: one point carrying the full rendered body (single
	// broadcasts, pipeline/budget/convergecast scenarios).
	shapeWhole shape = iota
	// shapeSweep: one point per source node; payloads are RunReport
	// rows merged with the paper's summary statistics.
	shapeSweep
	// shapeReliability: point 0 is the deterministic broadcast, points
	// 1..G are Monte Carlo (failure, loss) grid points in failure-major
	// loss-minor order.
	shapeReliability
	// shapeLifetime: one point per (strategy, churn rate, replication)
	// cell of a lifetime study, in life's strategy-major cell order.
	// Points checkpoint their round loop through the store, so a killed
	// process resumes a half-run cell instead of restarting it.
	shapeLifetime
)

// compilePlan validates the scenario for the kind and decomposes it
// into points. The scenario must already be canonical.
func compilePlan(kind string, sc scenario.Scenario) (plan, error) {
	if !ValidKind(kind) {
		return plan{}, fmt.Errorf("jobs: unknown kind %q (want run, scenario, sweep or lifetime)", kind)
	}
	topo, _, _, err := sc.Compile()
	if err != nil {
		return plan{}, err
	}
	if kind == KindLifetime {
		cells, err := sc.LifetimeCellCount()
		if err != nil {
			return plan{}, err
		}
		return plan{total: cells, shape: shapeLifetime}, nil
	}
	if sc.Lifetime != nil {
		return plan{}, fmt.Errorf("jobs: a lifetime study runs under kind %q, not %q", KindLifetime, kind)
	}
	if kind == KindSweep {
		return plan{total: topo.NumNodes(), shape: shapeSweep}, nil
	}
	if rel := sc.Reliability; rel != nil {
		loss := mc.CanonicalRates(rel.LossRates)
		fail := mc.CanonicalRates(rel.FailureRates)
		return plan{
			total: 1 + len(loss)*len(fail),
			shape: shapeReliability,
			loss:  loss, fail: fail,
		}, nil
	}
	return plan{total: 1, shape: shapeWhole}, nil
}

// pointKey is the content-addressed store key of one point's payload,
// derived from the canonical scenario plus the point index so finished
// points survive restarts and are shared across instances.
func pointKey(kind string, sc scenario.Scenario, index int) (string, error) {
	return store.Key(fmt.Sprintf("jobpoint/%s/%d", kind, index), sc)
}

// resultKey is the store key of the merged job result — the same key
// the synchronous endpoint uses for this document, so a completed job
// is an L2 cache hit for later synchronous requests and vice versa.
func resultKey(kind string, sc scenario.Scenario) (string, error) {
	return store.Key(kind, sc)
}

// checkpointKey is the store key of a lifetime point's mid-run round
// state. It is derived from the canonical scenario plus the point
// index — like pointKey but in its own namespace — so a restarted
// process finds the checkpoint its predecessor saved. The object is
// transient: it is deleted once the point's payload is durable.
func checkpointKey(kind string, sc scenario.Scenario, index int) (string, error) {
	return store.Key(fmt.Sprintf("lifeckpt/%s/%d", kind, index), sc)
}

// executePoint computes one point's payload. Payloads are compact JSON
// (RunReport, mc.Point, life.CellReport, or the full rendered body for
// shapeWhole). ck and ckptEvery only concern shapeLifetime points,
// whose round loop checkpoints through ck when non-nil.
func executePoint(ctx context.Context, kind string, sc scenario.Scenario, pl plan, index int, ck life.Checkpointer, ckptEvery int) ([]byte, error) {
	switch pl.shape {
	case shapeWhole:
		rep, err := sc.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		return store.EncodeBody(rep)

	case shapeSweep:
		topo, p, cfg, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		if index < 0 || index >= topo.NumNodes() {
			return nil, fmt.Errorf("jobs: sweep point %d outside [0, %d)", index, topo.NumNodes())
		}
		src := topo.At(index)
		r, err := sim.Run(topo, p, src, cfg)
		if err != nil {
			return nil, err
		}
		return json.Marshal(scenario.RunReport{
			Source: scenario.Point{X: src.X, Y: src.Y, Z: src.Z},
			Tx:     r.Tx, Rx: r.Rx, EnergyJ: r.EnergyJ, Delay: r.Delay,
			Reached: r.Reached, Total: r.Total, Collisions: r.Collisions,
			Duplicates: r.Duplicates, Repairs: r.Repairs,
		})

	case shapeReliability:
		topo, p, cfg, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		src := sc.Sources[0]
		if index == 0 {
			// The deterministic broadcast that precedes the study in
			// RunContext's report.
			r, err := sim.Run(topo, p, src.Coord(), cfg)
			if err != nil {
				return nil, err
			}
			return json.Marshal(scenario.RunReport{
				Source: src, Tx: r.Tx, Rx: r.Rx, EnergyJ: r.EnergyJ, Delay: r.Delay,
				Reached: r.Reached, Total: r.Total, Collisions: r.Collisions,
				Duplicates: r.Duplicates, Repairs: r.Repairs,
			})
		}
		g := index - 1
		if g >= len(pl.loss)*len(pl.fail) {
			return nil, fmt.Errorf("jobs: reliability point %d outside the %dx%d grid", index, len(pl.fail), len(pl.loss))
		}
		fail := pl.fail[g/len(pl.loss)]
		loss := pl.loss[g%len(pl.loss)]
		pt, err := mc.RunPoint(ctx, mc.Spec{
			Topology: topo, Protocol: p, Source: src.Coord(), Config: cfg,
			Seed:         sc.Reliability.Seed,
			Replications: sc.Reliability.Replications,
		}, loss, fail)
		if err != nil {
			return nil, err
		}
		return json.Marshal(pt)

	case shapeLifetime:
		if index < 0 || index >= pl.total {
			return nil, fmt.Errorf("jobs: lifetime point %d outside [0, %d)", index, pl.total)
		}
		cell, err := sc.LifetimeCell(ctx, index, ck, ckptEvery)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cell)
	}
	return nil, fmt.Errorf("jobs: unknown shape %d", pl.shape)
}

// merge folds the complete, index-ordered payload set into the final
// response body, byte-identical to the synchronous path.
func merge(kind string, sc scenario.Scenario, pl plan, payloads [][]byte) ([]byte, error) {
	if len(payloads) != pl.total {
		return nil, fmt.Errorf("jobs: merge got %d payloads, want %d", len(payloads), pl.total)
	}
	for i, p := range payloads {
		if p == nil {
			return nil, fmt.Errorf("jobs: merge missing payload %d", i)
		}
	}
	switch pl.shape {
	case shapeWhole:
		return payloads[0], nil

	case shapeSweep:
		_, p, _, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		rep := scenario.Report{Name: sc.Name, Topology: sc.Topology.Kind, Protocol: p.Name()}
		rep.Runs = make([]scenario.RunReport, len(payloads))
		for i, raw := range payloads {
			if err := json.Unmarshal(raw, &rep.Runs[i]); err != nil {
				return nil, fmt.Errorf("jobs: sweep payload %d: %w", i, err)
			}
		}
		scenario.SweepSummary(&rep)
		return store.EncodeBody(rep)

	case shapeReliability:
		_, p, _, err := sc.Compile()
		if err != nil {
			return nil, err
		}
		rep := scenario.Report{Name: sc.Name, Topology: sc.Topology.Kind, Protocol: p.Name()}
		var run scenario.RunReport
		if err := json.Unmarshal(payloads[0], &run); err != nil {
			return nil, fmt.Errorf("jobs: broadcast payload: %w", err)
		}
		rep.Runs = []scenario.RunReport{run}
		rep.Reliability = make([]mc.Point, len(payloads)-1)
		for i, raw := range payloads[1:] {
			if err := json.Unmarshal(raw, &rep.Reliability[i]); err != nil {
				return nil, fmt.Errorf("jobs: reliability payload %d: %w", i+1, err)
			}
		}
		rep.ReliabilitySeed = sc.Reliability.Seed
		return store.EncodeBody(rep)

	case shapeLifetime:
		cells := make([]life.CellReport, len(payloads))
		for i, raw := range payloads {
			if err := json.Unmarshal(raw, &cells[i]); err != nil {
				return nil, fmt.Errorf("jobs: lifetime payload %d: %w", i, err)
			}
		}
		rep, err := sc.LifetimeMerge(cells)
		if err != nil {
			return nil, err
		}
		return store.EncodeBody(rep)
	}
	return nil, fmt.Errorf("jobs: unknown shape %d", pl.shape)
}
