package jobs

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

func sweepScenario() scenario.Scenario {
	return scenario.Scenario{
		Name:     "jobs-sweep",
		Topology: scenario.TopologySpec{Kind: "2d4", M: 6, N: 6},
	}
}

func reliabilityScenario() scenario.Scenario {
	return scenario.Scenario{
		Name:          "jobs-rel",
		Topology:      scenario.TopologySpec{Kind: "2d4", M: 4, N: 4},
		Sources:       []scenario.Point{{X: 1, Y: 1}},
		DisableRepair: true,
		Reliability: &scenario.ReliabilitySpec{
			Seed:         7,
			Replications: 16,
			LossRates:    []float64{0, 0.1},
			FailureRates: []float64{0, 0.05},
		},
	}
}

func runScenario() scenario.Scenario {
	return scenario.Scenario{
		Name:     "jobs-run",
		Topology: scenario.TopologySpec{Kind: "2d4", M: 5, N: 5},
		Sources:  []scenario.Point{{X: 3, Y: 3}},
	}
}

// syncBody renders the scenario through the synchronous serving path:
// the bytes a POST /v1/<kind> response carries.
func syncBody(t *testing.T, kind string, sc scenario.Scenario) []byte {
	t.Helper()
	sc = sc.Canonical()
	var (
		rep scenario.Report
		err error
	)
	if kind == KindSweep {
		rep, err = sc.SweepReport(context.Background(), 4, nil)
	} else {
		rep, err = sc.RunContext(context.Background())
	}
	if err != nil {
		t.Fatalf("sync %s: %v", kind, err)
	}
	body, err := store.EncodeBody(rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return body
}

func submitAndWait(t *testing.T, m *Manager, kind string, sc scenario.Scenario) (Status, []byte) {
	t.Helper()
	st, err := m.Submit(kind, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err = m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", st.State, st.Error)
	}
	body, ok := m.Result(st.ID)
	if !ok {
		t.Fatalf("no result for done job %s", st.ID)
	}
	return st, body
}

// TestDifferentialWorkerCounts is the distributed==serial contract:
// the merged job result is byte-identical to the synchronous serving
// path at every worker count, for every job shape.
func TestDifferentialWorkerCounts(t *testing.T) {
	cases := []struct {
		kind string
		sc   scenario.Scenario
	}{
		{KindSweep, sweepScenario()},
		{KindScenario, reliabilityScenario()},
		{KindRun, runScenario()},
	}
	for _, tc := range cases {
		want := syncBody(t, tc.kind, tc.sc)
		for _, workers := range []int{1, 2, 8} {
			m := NewManager(Config{Workers: workers})
			_, got := submitAndWait(t, m, tc.kind, tc.sc)
			if !bytes.Equal(got, want) {
				t.Errorf("%s with %d workers: result differs from synchronous body", tc.kind, workers)
			}
			if err := m.Close(context.Background()); err != nil {
				t.Fatalf("close: %v", err)
			}
		}
	}
}

// TestRestartResume checkpoints a half-finished job, tears the manager
// down, and recovers it on a fresh manager over the same store: the
// finished points must come back from disk, not be recomputed, and the
// final result must still match the synchronous body.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	sc := sweepScenario()
	total := 36

	// Gate the single worker at point 3: points 0..2 finish, point 3
	// holds until we release it during shutdown.
	reached := make(chan struct{})
	release := make(chan struct{})
	var gated atomic.Bool
	m1 := NewManager(Config{
		Store:   st1,
		Workers: 1,
		BeforePoint: func(_ string, index int) {
			if index == 3 && gated.CompareAndSwap(false, true) {
				close(reached)
				<-release
			}
		},
	})
	sub, err := m1.Submit(KindSweep, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-reached:
	case <-time.After(time.Minute):
		t.Fatal("worker never reached point 3")
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		closed <- m1.Close(ctx)
	}()
	// Release the gated point only once shutdown has been signalled, so
	// the worker drains point 3 and then stops: exactly points 0..3 are
	// durable at the "crash".
	for m1.ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// "Restart": fresh store handle, fresh manager, recover.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	m2 := NewManager(Config{Store: st2, Workers: 4})
	defer m2.Close(context.Background())
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if resumed != 1 {
		t.Fatalf("recovered %d jobs, want 1", resumed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fin, err := m2.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone || fin.Done != total {
		t.Fatalf("recovered job = %s %d/%d, want done %d/%d", fin.State, fin.Done, fin.Total, total, total)
	}

	// Points 0..3 were durable before the restart (3 finished plus the
	// gated one draining through shutdown); the second manager must
	// compute only the other 32.
	stats := m2.Stats()
	if stats.PointsComputed != uint64(total-4) {
		t.Errorf("recovered manager computed %d points, want %d (must not recompute durable points)", stats.PointsComputed, total-4)
	}
	if stats.Recovered != 1 {
		t.Errorf("recovered counter = %d, want 1", stats.Recovered)
	}

	got, ok := m2.Result(sub.ID)
	if !ok {
		t.Fatal("no result after recovery")
	}
	if want := syncBody(t, KindSweep, sc); !bytes.Equal(got, want) {
		t.Error("recovered result differs from synchronous body")
	}
}

// TestShortCircuitFromStore: a second manager sharing the store
// completes the same job instantly from the durable result, computing
// nothing.
func TestShortCircuitFromStore(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	defer st1.Close()
	sc := runScenario()
	m1 := NewManager(Config{Store: st1, Workers: 2})
	defer m1.Close(context.Background())
	_, want := submitAndWait(t, m1, KindRun, sc)

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open second store: %v", err)
	}
	defer st2.Close()
	m2 := NewManager(Config{Store: st2, Workers: 2})
	defer m2.Close(context.Background())
	stat, got := submitAndWait(t, m2, KindRun, sc)
	if stat.State != StateDone {
		t.Fatalf("second submit state = %s, want done", stat.State)
	}
	if !bytes.Equal(got, want) {
		t.Error("short-circuited result differs")
	}
	if n := m2.Stats().PointsComputed; n != 0 {
		t.Errorf("second manager computed %d points, want 0 (result was durable)", n)
	}
}

// TestRetryTransient: a point that fails twice then succeeds must be
// retried with backoff and the job must complete.
func TestRetryTransient(t *testing.T) {
	var fails atomic.Int32
	fails.Store(2)
	testExecPoint = func(ctx context.Context, kind string, sc scenario.Scenario, pl plan, idx int) ([]byte, error) {
		if idx == 0 && fails.Add(-1) >= 0 {
			return nil, errors.New("transient fault")
		}
		return executePoint(ctx, kind, sc, pl, idx, nil, 0)
	}
	defer func() { testExecPoint = nil }()

	m := NewManager(Config{Workers: 2, RetryBase: time.Millisecond})
	defer m.Close(context.Background())
	_, got := submitAndWait(t, m, KindRun, runScenario())
	if want := syncBody(t, KindRun, runScenario()); !bytes.Equal(got, want) {
		t.Error("retried result differs from synchronous body")
	}
	if r := m.Stats().Retries; r != 2 {
		t.Errorf("retries = %d, want 2", r)
	}
}

// TestRetryPermanent: a point that always fails exhausts its attempt
// budget and fails the job; resubmitting after the fault clears
// re-queues the job and it completes.
func TestRetryPermanent(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	testExecPoint = func(ctx context.Context, kind string, sc scenario.Scenario, pl plan, idx int) ([]byte, error) {
		if broken.Load() {
			return nil, errors.New("persistent fault")
		}
		return executePoint(ctx, kind, sc, pl, idx, nil, 0)
	}
	defer func() { testExecPoint = nil }()

	m := NewManager(Config{Workers: 2, RetryBase: time.Millisecond, RetryMax: 3})
	defer m.Close(context.Background())
	sc := runScenario()
	st, err := m.Submit(KindRun, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err = m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Error == "" {
		t.Error("failed job carries no error")
	}
	if n := m.Stats().Failed; n != 1 {
		t.Errorf("failed counter = %d, want 1", n)
	}

	broken.Store(false)
	st2, err := m.Submit(KindRun, sc)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit produced a different job id")
	}
	fin, err := m.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatalf("wait after resubmit: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("resubmitted job state = %s (error %q), want done", fin.State, fin.Error)
	}
}

// TestWorkStealing pins one worker in each of two shards and checks
// the remaining worker steals across shard boundaries to finish every
// other point.
func TestWorkStealing(t *testing.T) {
	sc := sweepScenario() // 36 points; 3 workers => shards 0-11, 12-23, 24-35
	release := make(chan struct{})
	var mu sync.Mutex
	gated := map[int]bool{}
	m := NewManager(Config{
		Workers: 3,
		BeforePoint: func(_ string, index int) {
			if index == 0 || index == 24 {
				mu.Lock()
				first := !gated[index]
				gated[index] = true
				mu.Unlock()
				if first {
					<-release
				}
			}
		},
	})
	defer m.Close(context.Background())
	st, err := m.Submit(KindSweep, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// With workers 0 and 2 pinned, progress beyond 12 points proves
	// worker 1 is stealing; all but the two pinned points must finish.
	deadline := time.After(time.Minute)
	for {
		got, _ := m.Get(st.ID)
		if got.Done == 34 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("done = %d, want 34 (work stealing stalled)", got.Done)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	fin, err := m.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("state = %s, want done", fin.State)
	}
	if want := syncBody(t, KindSweep, sc); func() bool {
		got, _ := m.Result(st.ID)
		return !bytes.Equal(got, want)
	}() {
		t.Error("stolen-schedule result differs from synchronous body")
	}
}

// TestSubscribe checks the event stream: replay plus live events cover
// every point exactly once and end with the terminal event, and a
// subscription opened after completion replays everything.
func TestSubscribe(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	defer m.Close(context.Background())
	sc := sweepScenario()
	st, err := m.Submit(KindSweep, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	replay, ch, cancel, ok := m.Subscribe(st.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer cancel()

	seen := map[int]int{}
	terminal := ""
	consume := func(e Event) {
		switch e.Type {
		case "point":
			seen[e.Index]++
			if len(e.Payload) == 0 {
				t.Errorf("point %d event has no payload", e.Index)
			}
		default:
			terminal = e.Type
		}
	}
	for _, e := range replay {
		consume(e)
	}
	timeout := time.After(2 * time.Minute)
	for terminal == "" {
		select {
		case e, open := <-ch:
			if !open {
				t.Fatal("event channel closed before terminal event")
			}
			consume(e)
		case <-timeout:
			t.Fatal("no terminal event")
		}
	}
	if terminal != "done" {
		t.Fatalf("terminal event = %q, want done", terminal)
	}
	if len(seen) != 36 {
		t.Fatalf("saw %d distinct points, want 36", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("point %d delivered %d times", idx, n)
		}
	}

	// Late subscription: everything replays, the channel is closed.
	replay2, ch2, cancel2, ok := m.Subscribe(st.ID)
	if !ok {
		t.Fatal("late subscribe failed")
	}
	defer cancel2()
	points := 0
	last := ""
	for _, e := range replay2 {
		if e.Type == "point" {
			points++
		}
		last = e.Type
	}
	if points != 36 || last != "done" {
		t.Fatalf("late replay = %d points ending %q, want 36 ending done", points, last)
	}
	if _, open := <-ch2; open {
		t.Error("late subscription channel not closed")
	}
}

// TestSubmitValidation rejects unknown kinds and broken scenarios.
func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())
	if _, err := m.Submit("explode", runScenario()); err == nil {
		t.Error("unknown kind accepted")
	}
	bad := scenario.Scenario{Name: "bad", Topology: scenario.TopologySpec{Kind: "nope", M: 2, N: 2}}
	if _, err := m.Submit(KindRun, bad); err == nil {
		t.Error("uncompilable scenario accepted")
	}
	if _, ok := m.Get("missing"); ok {
		t.Error("Get found a job that was never submitted")
	}
}

// TestStatsGauges sanity-checks the queue gauges while a job is held
// in flight.
func TestStatsGauges(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	m := NewManager(Config{
		Workers: 1,
		BeforePoint: func(string, int) {
			once.Do(func() { close(started) })
			<-release
		},
	})
	sc := sweepScenario()
	st, err := m.Submit(KindSweep, sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	s := m.Stats()
	if s.Running != 1 {
		t.Errorf("running = %d, want 1", s.Running)
	}
	if s.QueuedPoints != 36 {
		t.Errorf("queued points = %d, want 36", s.QueuedPoints)
	}
	if s.OldestAgeMs < 0 {
		t.Errorf("oldest age = %d, want >= 0", s.OldestAgeMs)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := m.Wait(ctx, st.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
	s = m.Stats()
	if s.Running != 0 || s.QueuedPoints != 0 || s.OldestAgeMs != 0 {
		t.Errorf("post-completion gauges = %+v, want zeros", s)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Submit(KindRun, runScenario()); err == nil {
		t.Error("closed manager accepted a submission")
	}
}

// TestJobIDStable: the id is content-addressed, so equivalent
// spellings of one document collapse to one job.
func TestJobIDStable(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close(context.Background())
	a := runScenario()
	b := runScenario()
	b.Topology.Kind = "2D4" // canonicalization lowercases
	b.Protocol = "PAPER"
	sa, err := m.Submit(KindRun, a)
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	sb, err := m.Submit(KindRun, b)
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if sa.ID != sb.ID {
		t.Errorf("equivalent documents produced different job ids %s vs %s", sa.ID, sb.ID)
	}
	if n := m.Stats().Submitted; n != 1 {
		t.Errorf("submitted counter = %d, want 1 (idempotent resubmit)", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := m.Wait(ctx, sa.ID); err != nil {
		t.Fatalf("wait: %v", err)
	}
}
