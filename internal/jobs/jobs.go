// Package jobs is the asynchronous job subsystem behind the serving
// layer's /v1/jobs API: long-running sweep and Monte Carlo studies
// submitted once, executed by a coordinator that shards their grid
// points across worker loops, and polled or streamed while they run —
// instead of holding an HTTP connection for the whole study.
//
// # Model
//
// A job is (kind, canonical scenario): the same document the
// synchronous endpoints accept, decomposed into independent grid
// points (points.go). The job id is the SHA-256 of that identity, so
// submission is idempotent — re-submitting a running, finished or
// crashed study attaches to the same job. Points execute on N worker
// loops over contiguous shards with work-stealing: a worker that
// drains its own shard steals from the tail of the fullest remaining
// shard, so stragglers cannot idle the pool. A point that fails
// transiently retries with exponential backoff before failing the job.
//
// # Durability
//
// With a store configured, every finished point is written to the
// content-addressed result store before it counts as done, and the job
// record (id, kind, scenario, state) is persisted on every state
// transition. After a crash or restart, Recover re-enumerates the
// records, re-derives each job's point list from its canonical
// scenario, finds the already-finished points in the store, and
// resumes computing only the missing ones. The merged result is stored
// under the same key the synchronous endpoint uses, so a completed job
// serves later synchronous requests (and other instances sharing the
// directory) as a durable cache hit.
//
// # Determinism
//
// Results are byte-identical to the synchronous serving path at any
// worker count, steal pattern, retry history or restart point: see the
// contract spelled out in points.go.
package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wsnbcast/internal/life"
	"wsnbcast/internal/scenario"
	"wsnbcast/internal/store"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Config sizes the manager; zero values mean the stated defaults.
type Config struct {
	// Store, when non-nil, makes jobs durable: finished points and
	// merged results are written through to it and Recover resumes
	// unfinished jobs after a restart. Nil means in-memory jobs only.
	Store *store.Store
	// Workers is the number of point worker loops (<= 0: GOMAXPROCS).
	Workers int
	// RetryMax is the attempt budget per point (0: 3). A point failing
	// RetryMax times fails its job.
	RetryMax int
	// RetryBase is the first retry's backoff; attempt k waits
	// RetryBase << (k-1) (0: 50ms).
	RetryBase time.Duration
	// CheckpointEvery is the round cadence at which lifetime points
	// checkpoint their round loop through the store (0:
	// life.DefaultCheckpointEvery). The cadence never changes result
	// bytes, only how much work a killed process repeats.
	CheckpointEvery int
	// BeforePoint, when non-nil, runs at the start of every point
	// execution attempt, before the store is consulted. Test
	// instrumentation: the drain and restart tests use it to hold
	// points in flight and count executions.
	BeforePoint func(jobID string, index int)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	return c
}

// Status is a job's externally visible state, served by GET /v1/jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Done and Total count grid points; partial progress is visible
	// while the job runs.
	Done  int    `json:"done_points"`
	Total int    `json:"total_points"`
	Error string `json:"error,omitempty"`
	// Created and Updated are Unix milliseconds.
	Created int64 `json:"created_ms"`
	Updated int64 `json:"updated_ms"`
}

// Event is one entry of a job's progress stream: a finished grid point
// ("point", with its payload), or the terminal "done"/"failed".
type Event struct {
	Type    string          `json:"type"`
	Index   int             `json:"index,omitempty"`
	Done    int             `json:"done_points"`
	Total   int             `json:"total_points"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Stats is a snapshot of the manager's lifecycle counters and gauges,
// merged into the service's /metrics document.
type Stats struct {
	Submitted       uint64 `json:"submitted"`
	Recovered       uint64 `json:"recovered"`
	Completed       uint64 `json:"completed"`
	Failed          uint64 `json:"failed"`
	Running         int    `json:"running"`
	QueuedJobs      int    `json:"queued"`
	QueuedPoints    int    `json:"queued_points"`
	PointsComputed  uint64 `json:"points_computed"`
	PointsFromStore uint64 `json:"points_from_store"`
	Retries         uint64 `json:"retries"`
	// OldestAgeMs is the age of the oldest non-terminal job, 0 when
	// every job is done or failed.
	OldestAgeMs int64 `json:"oldest_age_ms"`
}

// job is the manager's internal job representation. The mutex guards
// everything below it; payloads slots are written exactly once.
type job struct {
	id      string
	kind    string
	sc      scenario.Scenario
	scJSON  []byte
	pl      plan
	created time.Time

	mu       sync.Mutex
	state    State
	done     int
	payloads [][]byte
	result   []byte
	err      error
	updated  time.Time
	subs     map[int]chan Event
	subSeq   int
	finished chan struct{}
}

// record is the durable form of a job.
type record struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Scenario  json.RawMessage `json:"scenario"`
	State     State           `json:"state"`
	Total     int             `json:"total_points"`
	Error     string          `json:"error,omitempty"`
	CreatedMs int64           `json:"created_ms"`
}

// Manager owns the job table and the coordinator. Construct with
// NewManager; Close stops it. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*job
	queue []*job
	wake  chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	loopWG sync.WaitGroup
	closed atomic.Bool

	submitted       atomic.Uint64
	recovered       atomic.Uint64
	completed       atomic.Uint64
	failed          atomic.Uint64
	pointsComputed  atomic.Uint64
	pointsFromStore atomic.Uint64
	retries         atomic.Uint64
}

// NewManager starts a manager and its coordinator loop.
func NewManager(cfg Config) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg.withDefaults(),
		jobs:   make(map[string]*job),
		wake:   make(chan struct{}, 1),
		ctx:    ctx,
		cancel: cancel,
	}
	m.loopWG.Add(1)
	go m.dispatch()
	return m
}

// jobID derives the content-addressed job identity.
func jobID(kind string, scJSON []byte) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{':'})
	h.Write(scJSON)
	return hex.EncodeToString(h.Sum(nil))
}

// Submit registers (or re-attaches to) the job for the canonicalized
// scenario and returns its status. Submission is idempotent: the id is
// the hash of (kind, canonical document), so resubmitting returns the
// existing job — a failed one is re-queued for another attempt. If the
// store already holds the merged result (a previous run of this job,
// or the synchronous path on any instance sharing the directory), the
// job completes immediately without computing anything.
func (m *Manager) Submit(kind string, sc scenario.Scenario) (Status, error) {
	if m.closed.Load() {
		return Status{}, errors.New("jobs: manager closed")
	}
	sc = sc.Canonical()
	pl, err := compilePlan(kind, sc)
	if err != nil {
		return Status{}, err
	}
	scJSON, err := json.Marshal(sc)
	if err != nil {
		return Status{}, err
	}
	id := jobID(kind, scJSON)

	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.state == StateFailed {
			// Re-queue a failed job: keep whatever points finished.
			j.state = StateQueued
			j.err = nil
			j.updated = time.Now()
			j.finished = make(chan struct{})
			m.persistLocked(j)
			m.queue = append(m.queue, j)
			m.wakeUp()
		}
		return j.statusLocked(), nil
	}

	now := time.Now()
	j := &job{
		id: id, kind: kind, sc: sc, scJSON: scJSON, pl: pl,
		created: now, updated: now,
		state:    StateQueued,
		payloads: make([][]byte, pl.total),
		subs:     make(map[int]chan Event),
		finished: make(chan struct{}),
	}
	m.submitted.Add(1)

	// Short-circuit: the merged result may already be durable.
	if body, ok := m.resultFromStore(j); ok {
		j.state = StateDone
		j.done = j.pl.total
		j.result = body
		close(j.finished)
		m.jobs[id] = j
		m.persistLocked(j)
		j.mu.Lock()
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	}

	m.jobs[id] = j
	m.persistLocked(j)
	m.queue = append(m.queue, j)
	m.wakeUp()
	j.mu.Lock()
	st := j.statusLocked()
	j.mu.Unlock()
	return st, nil
}

func (m *Manager) resultFromStore(j *job) ([]byte, bool) {
	if m.cfg.Store == nil {
		return nil, false
	}
	key, err := resultKey(j.kind, j.sc)
	if err != nil {
		return nil, false
	}
	return m.cfg.Store.Get(key)
}

// Recover loads persisted job records and re-queues every job that was
// not finished when the previous process exited (cleanly or not).
// Finished points are found in the store, so a recovered job computes
// only what is missing. It returns the number of jobs re-queued.
func (m *Manager) Recover() (int, error) {
	if m.cfg.Store == nil {
		return 0, nil
	}
	names, err := m.cfg.Store.ListRecords()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, name := range names {
		raw, ok, err := m.cfg.Store.GetRecord(name)
		if err != nil || !ok {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			continue // unreadable record: ignore rather than refuse to start
		}
		if err := m.recoverOne(rec); err != nil {
			return resumed, fmt.Errorf("jobs: recover %s: %w", rec.ID, err)
		}
		m.mu.Lock()
		j := m.jobs[rec.ID]
		m.mu.Unlock()
		if j != nil {
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			if st == StateQueued {
				resumed++
			}
		}
	}
	return resumed, nil
}

func (m *Manager) recoverOne(rec record) error {
	sc, err := scenario.Load(bytes.NewReader(rec.Scenario))
	if err != nil {
		return err
	}
	sc = sc.Canonical()
	pl, err := compilePlan(rec.Kind, sc)
	if err != nil {
		return err
	}
	scJSON, err := json.Marshal(sc)
	if err != nil {
		return err
	}
	created := time.UnixMilli(rec.CreatedMs)
	j := &job{
		id: rec.ID, kind: rec.Kind, sc: sc, scJSON: scJSON, pl: pl,
		created: created, updated: time.Now(),
		payloads: make([][]byte, pl.total),
		subs:     make(map[int]chan Event),
		finished: make(chan struct{}),
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[rec.ID]; ok {
		return nil // already live (Submit raced Recover)
	}
	switch rec.State {
	case StateDone:
		body, ok := m.resultFromStore(j)
		if !ok {
			// The record says done but the result is gone (corruption
			// healed to a miss): recompute.
			break
		}
		j.state = StateDone
		j.done = pl.total
		j.result = body
		close(j.finished)
		m.jobs[rec.ID] = j
		return nil
	case StateFailed:
		j.state = StateFailed
		j.err = errors.New(rec.Error)
		close(j.finished)
		m.jobs[rec.ID] = j
		return nil
	}
	// Queued or running (or done-with-missing-result): scan the store
	// for points that already finished and queue the rest.
	for i := 0; i < pl.total; i++ {
		key, err := pointKey(rec.Kind, sc, i)
		if err != nil {
			return err
		}
		if body, ok := m.cfg.Store.Get(key); ok {
			j.payloads[i] = body
			j.done++
		}
	}
	j.state = StateQueued
	m.jobs[rec.ID] = j
	m.recovered.Add(1)
	m.persistLocked(j)
	m.queue = append(m.queue, j)
	m.wakeUp()
	return nil
}

// Get returns the status of the job with the given id.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), true
}

// Result returns a finished job's merged body.
func (m *Manager) Result(id string) ([]byte, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	if j.result == nil {
		// Done via a previous process: the body lives in the store.
		j.mu.Unlock()
		body, ok := m.resultFromStore(j)
		j.mu.Lock()
		if !ok {
			return nil, false
		}
		j.result = body
	}
	return j.result, true
}

// Subscribe attaches to a job's progress stream. It returns the events
// already emitted (every finished point in index order, plus the
// terminal event if the job is over), a channel carrying subsequent
// events (closed after the terminal event), and a cancel function the
// caller must invoke when done. The channel is buffered for the job's
// remaining events, so the coordinator never blocks on a slow consumer.
func (m *Manager) Subscribe(id string) (replay []Event, ch <-chan Event, cancel func(), ok bool) {
	m.mu.Lock()
	j, exists := m.jobs[id]
	m.mu.Unlock()
	if !exists {
		return nil, nil, nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, p := range j.payloads {
		if p != nil {
			replay = append(replay, Event{Type: "point", Index: i, Done: j.done, Total: j.pl.total, Payload: p})
		}
	}
	if j.state == StateDone || j.state == StateFailed {
		replay = append(replay, j.terminalEventLocked())
		closed := make(chan Event)
		close(closed)
		return replay, closed, func() {}, true
	}
	c := make(chan Event, j.pl.total-j.done+2)
	idx := j.subSeq
	j.subSeq++
	j.subs[idx] = c
	cancel = func() {
		j.mu.Lock()
		delete(j.subs, idx)
		j.mu.Unlock()
	}
	return replay, c, cancel, true
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("jobs: unknown job %s", id)
	}
	select {
	case <-j.finished:
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), nil
}

// Stats returns a snapshot of the lifecycle counters and gauges.
func (m *Manager) Stats() Stats {
	s := Stats{
		Submitted:       m.submitted.Load(),
		Recovered:       m.recovered.Load(),
		Completed:       m.completed.Load(),
		Failed:          m.failed.Load(),
		PointsComputed:  m.pointsComputed.Load(),
		PointsFromStore: m.pointsFromStore.Load(),
		Retries:         m.retries.Load(),
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest time.Time
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateRunning:
			s.Running++
			s.QueuedPoints += j.pl.total - j.done
		case StateQueued:
			s.QueuedJobs++
			s.QueuedPoints += j.pl.total - j.done
		}
		if j.state == StateQueued || j.state == StateRunning {
			if oldest.IsZero() || j.created.Before(oldest) {
				oldest = j.created
			}
		}
		j.mu.Unlock()
	}
	if !oldest.IsZero() {
		s.OldestAgeMs = now.Sub(oldest).Milliseconds()
	}
	return s
}

// Close checkpoints and stops the coordinator: no new job starts, the
// points already executing finish (their results are durable the
// moment they complete), and every unfinished job's record is
// persisted so the next process's Recover resumes it. The store itself
// is NOT closed — the caller owns it and must close it after Close
// returns, because in-flight points write to it until then.
func (m *Manager) Close(ctx context.Context) error {
	// Cancel before fencing Submit: once Submit reports the manager
	// closed, the workers are guaranteed to be stopping — tests and
	// drain sequencing rely on that order.
	m.cancel()
	m.closed.Store(true)
	idle := make(chan struct{})
	go func() {
		m.loopWG.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Checkpoint: persist every non-terminal job as queued so Recover
	// picks it up. Terminal jobs were persisted at their transition.
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateQueued || j.state == StateRunning {
			j.state = StateQueued
			m.persistLocked(j)
		}
		j.mu.Unlock()
	}
	return nil
}

// wakeUp nudges the dispatcher; callers hold m.mu.
func (m *Manager) wakeUp() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// persistLocked writes the job's record through the store; callers
// hold j.mu or are constructing j. Persistence failures are recorded
// on the job but do not abort it: an unpersisted job still completes,
// it just will not survive a restart.
func (m *Manager) persistLocked(j *job) {
	if m.cfg.Store == nil {
		return
	}
	errStr := ""
	if j.err != nil {
		errStr = j.err.Error()
	}
	rec, err := json.Marshal(record{
		ID: j.id, Kind: j.kind, Scenario: j.scJSON,
		State: j.state, Total: j.pl.total, Error: errStr,
		CreatedMs: j.created.UnixMilli(),
	})
	if err != nil {
		return
	}
	m.cfg.Store.PutRecord(j.id, rec)
}

func (j *job) statusLocked() Status {
	errStr := ""
	if j.err != nil {
		errStr = j.err.Error()
	}
	return Status{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.pl.total, Error: errStr,
		Created: j.created.UnixMilli(), Updated: j.updated.UnixMilli(),
	}
}

func (j *job) terminalEventLocked() Event {
	if j.state == StateFailed {
		errStr := ""
		if j.err != nil {
			errStr = j.err.Error()
		}
		return Event{Type: "failed", Done: j.done, Total: j.pl.total, Error: errStr}
	}
	return Event{Type: "done", Done: j.done, Total: j.pl.total}
}

// emitLocked fans an event out to the subscribers; callers hold j.mu.
// Channels are sized for the job's remaining events at subscribe time,
// so sends never block; a send that would (a subscriber misusing the
// API) is dropped rather than stalling the coordinator.
func (j *job) emitLocked(e Event) {
	for _, c := range j.subs {
		select {
		case c <- e:
		default:
		}
	}
	if e.Type != "point" {
		for id, c := range j.subs {
			close(c)
			delete(j.subs, id)
		}
	}
}

// dispatch is the coordinator loop: one job at a time, its points
// fanned across the worker shards. Jobs queue in submission order.
func (m *Manager) dispatch() {
	defer m.loopWG.Done()
	for {
		j := m.nextJob()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

func (m *Manager) nextJob() *job {
	for {
		m.mu.Lock()
		if len(m.queue) > 0 {
			j := m.queue[0]
			m.queue = m.queue[1:]
			m.mu.Unlock()
			return j
		}
		m.mu.Unlock()
		select {
		case <-m.ctx.Done():
			return nil
		case <-m.wake:
		}
	}
}

// shard is one worker's contiguous slice of a job's pending points.
// Owners take from the front, thieves steal from the back, so a steal
// never contends with the owner on the same index.
type shard struct {
	mu   sync.Mutex
	idxs []int
	lo   int
	hi   int
}

func (s *shard) take() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	i := s.idxs[s.lo]
	s.lo++
	return i, true
}

func (s *shard) steal() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	s.hi--
	return s.idxs[s.hi], true
}

func (s *shard) remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}

// buildShards partitions the pending point indexes into one contiguous
// chunk per worker.
func buildShards(pending []int, workers int) []*shard {
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]*shard, workers)
	chunk := (len(pending) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(pending))
		if lo > hi {
			lo = hi
		}
		shards[w] = &shard{idxs: pending, lo: lo, hi: hi}
	}
	return shards
}

// runJob executes one job's pending points across the worker shards,
// then merges. On manager shutdown mid-job it returns with the job
// checkpointed back to queued (Close persists it).
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	j.state = StateRunning
	j.updated = time.Now()
	var pending []int
	for i, p := range j.payloads {
		if p == nil {
			pending = append(pending, i)
		}
	}
	m.persistLocked(j)
	j.mu.Unlock()

	jctx, jcancel := context.WithCancel(m.ctx)
	defer jcancel()
	var failure atomic.Pointer[error]

	if len(pending) > 0 {
		shards := buildShards(pending, m.cfg.Workers)
		var wg sync.WaitGroup
		for w := range shards {
			wg.Add(1)
			go func(own int) {
				defer wg.Done()
				for {
					if jctx.Err() != nil {
						return
					}
					idx, ok := shards[own].take()
					if !ok {
						idx, ok = stealFrom(shards, own)
					}
					if !ok {
						return
					}
					if err := m.runPoint(jctx, j, idx); err != nil {
						if jctx.Err() == nil {
							err := fmt.Errorf("jobs: point %d: %w", idx, err)
							failure.CompareAndSwap(nil, &err)
						}
						jcancel() // stop the other workers
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	if m.ctx.Err() != nil {
		// Shutdown: leave the job for Close to checkpoint as queued.
		return
	}
	if perr := failure.Load(); perr != nil {
		m.failJob(j, *perr)
		return
	}

	j.mu.Lock()
	payloads := j.payloads
	j.mu.Unlock()
	body, err := merge(j.kind, j.sc, j.pl, payloads)
	if err != nil {
		m.failJob(j, err)
		return
	}
	if m.cfg.Store != nil {
		if key, kerr := resultKey(j.kind, j.sc); kerr == nil {
			if perr := m.cfg.Store.Put(key, body); perr != nil {
				m.failJob(j, fmt.Errorf("jobs: store result: %w", perr))
				return
			}
		}
	}
	m.completed.Add(1)
	j.mu.Lock()
	j.state = StateDone
	j.result = body
	j.updated = time.Now()
	m.persistLocked(j)
	j.emitLocked(j.terminalEventLocked())
	close(j.finished)
	j.mu.Unlock()
}

// stealFrom picks the victim shard with the most remaining work and
// steals one index from its tail.
func stealFrom(shards []*shard, self int) (int, bool) {
	for {
		victim, most := -1, 0
		for i, s := range shards {
			if i == self {
				continue
			}
			if r := s.remaining(); r > most {
				victim, most = i, r
			}
		}
		if victim < 0 {
			return 0, false
		}
		if idx, ok := shards[victim].steal(); ok {
			return idx, true
		}
		// The victim drained between inspection and steal; rescan.
	}
}

func (m *Manager) failJob(j *job, err error) {
	m.failed.Add(1)
	j.mu.Lock()
	j.state = StateFailed
	j.err = err
	j.updated = time.Now()
	m.persistLocked(j)
	j.emitLocked(j.terminalEventLocked())
	close(j.finished)
	j.mu.Unlock()
}

// runPoint executes one grid point: consult the store, else compute
// with retry-and-backoff, write through, deliver. A nil error means
// the point's payload is recorded and (with a store) durable.
func (m *Manager) runPoint(ctx context.Context, j *job, idx int) error {
	if m.cfg.BeforePoint != nil {
		m.cfg.BeforePoint(j.id, idx)
	}
	var key string
	if m.cfg.Store != nil {
		var err error
		key, err = pointKey(j.kind, j.sc, idx)
		if err != nil {
			return err
		}
		if body, ok := m.cfg.Store.Get(key); ok {
			m.pointsFromStore.Add(1)
			m.deliverPoint(j, idx, body)
			return nil
		}
	}
	var body []byte
	var err error
	for attempt := 0; attempt < m.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			m.retries.Add(1)
			backoff := m.cfg.RetryBase << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		body, err = m.execPoint(ctx, j, idx)
		if err == nil {
			break
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancellation is not transient; do not burn retries on it.
			return err
		}
	}
	if err != nil {
		return fmt.Errorf("failed after %d attempts: %w", m.cfg.RetryMax, err)
	}
	if m.cfg.Store != nil {
		if perr := m.cfg.Store.Put(key, body); perr != nil {
			return perr
		}
		if j.pl.shape == shapeLifetime {
			// The payload is durable; its round-loop checkpoint is spent.
			if ckey, err := checkpointKey(j.kind, j.sc, idx); err == nil {
				m.cfg.Store.Delete(ckey)
			}
		}
	}
	m.pointsComputed.Add(1)
	m.deliverPoint(j, idx, body)
	return nil
}

// execPoint is the point computation, indirect for test injection.
func (m *Manager) execPoint(ctx context.Context, j *job, idx int) ([]byte, error) {
	if testExecPoint != nil {
		return testExecPoint(ctx, j.kind, j.sc, j.pl, idx)
	}
	var ck life.Checkpointer
	if m.cfg.Store != nil && j.pl.shape == shapeLifetime {
		if key, err := checkpointKey(j.kind, j.sc, idx); err == nil {
			ck = storeCheckpointer{st: m.cfg.Store, key: key}
		}
	}
	return executePoint(ctx, j.kind, j.sc, j.pl, idx, ck, m.cfg.CheckpointEvery)
}

// storeCheckpointer persists one lifetime point's round-loop state
// under its deterministic checkpoint key, making the durable store the
// resume medium: a SIGKILLed process's successor re-runs the cell from
// the last saved round instead of round 1.
type storeCheckpointer struct {
	st  *store.Store
	key string
}

func (c storeCheckpointer) Load() ([]byte, bool) { return c.st.Get(c.key) }
func (c storeCheckpointer) Save(b []byte) error  { return c.st.Put(c.key, b) }

// testExecPoint, when non-nil, replaces executePoint (package tests
// inject transient failures through it).
var testExecPoint func(ctx context.Context, kind string, sc scenario.Scenario, pl plan, idx int) ([]byte, error)

func (m *Manager) deliverPoint(j *job, idx int, body []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.payloads[idx] != nil {
		return // idempotent: a recovered duplicate cannot double-count
	}
	j.payloads[idx] = body
	j.done++
	j.updated = time.Now()
	j.emitLocked(Event{Type: "point", Index: idx, Done: j.done, Total: j.pl.total, Payload: body})
}
