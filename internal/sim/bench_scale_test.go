package sim_test

// Scaling benchmarks of the large-grid fast path: paper-protocol
// broadcasts from 64^2 up to 1024^2 (and a 128^3 volume) through the
// implicit-adjacency engine, against the materialized path at the same
// sizes. These back the EXPERIMENTS.md scaling table and the issue's
// acceptance bars (>= 3x ns/op and >= 10x B/op at 1024^2 vs the
// materialized configuration). Run:
//
//	go test ./internal/sim -bench=Scale -benchmem -run=^$
//
// The materialized variants force the small-grid engine configuration
// (cached lists do not apply above the large-grid gate, so every Run
// pays the adjacency build the deliberately bounded caches refuse to
// amortize — exactly what shipping the old path at this scale would
// cost in steady state, memory-safety policy included).

import (
	"fmt"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// scaleTopos is the size ladder of the scaling table.
func scaleTopos() []grid.Topology {
	return []grid.Topology{
		grid.NewMesh2D8(64, 64),     // 4096: below the large-grid gate
		grid.NewMesh2D8(256, 256),   // 65536: first implicit size
		grid.NewMesh2D8(1024, 1024), // ~1.05M: the issue's headline size
		grid.NewMesh3D6(128, 128, 128),
	}
}

func benchRun(b *testing.B, topo grid.Topology, cfg sim.Config) {
	b.Helper()
	proto := core.ForTopology(topo.Kind())
	src := center(topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(topo, proto, src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale measures the default engine (implicit path above the
// gate, auto workers) across the size ladder.
func BenchmarkScale(b *testing.B) {
	for _, topo := range scaleTopos() {
		m, n, l := topo.Size()
		b.Run(fmt.Sprintf("%s/%dx%dx%d", topo.Kind(), m, n, l), func(b *testing.B) {
			benchRun(b, topo, sim.Config{})
		})
	}
}

// BenchmarkScaleSerial pins Workers=1, isolating the implicit-path
// gains from the sharded step (on a single-core host the two coincide).
func BenchmarkScaleSerial(b *testing.B) {
	for _, topo := range scaleTopos() {
		m, n, l := topo.Size()
		b.Run(fmt.Sprintf("%s/%dx%dx%d", topo.Kind(), m, n, l), func(b *testing.B) {
			benchRun(b, topo, sim.Config{Workers: 1})
		})
	}
}

// BenchmarkScaleMaterialized forces the materialized small-grid
// configuration at every size — the comparison baseline for the
// issue's >= 3x time and >= 10x bytes criteria at 1024^2.
func BenchmarkScaleMaterialized(b *testing.B) {
	for _, topo := range scaleTopos() {
		m, n, l := topo.Size()
		b.Run(fmt.Sprintf("%s/%dx%dx%d", topo.Kind(), m, n, l), func(b *testing.B) {
			defer sim.SetLargeGridThresholdForTest(1 << 30)()
			benchRun(b, topo, sim.Config{})
		})
	}
}

// BenchmarkScaleLossy exercises the stochastic channel at 256^2 — the
// scale a Monte Carlo sweep of large grids replays per replication.
func BenchmarkScaleLossy(b *testing.B) {
	topo := grid.NewMesh2D8(256, 256)
	benchRun(b, topo, sim.Config{Channel: sim.NewBernoulliLoss(42, 0.02)})
}

// BenchmarkScaleReference runs the preserved pre-overhaul engine at
// the headline 1024^2 size — the materialized baseline the issue's
// acceptance bars are measured against.
func BenchmarkScaleReference(b *testing.B) {
	topo := grid.NewMesh2D8(1024, 1024)
	proto := core.ForTopology(grid.Mesh2D8)
	src := center(topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunReference(topo, proto, src, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleEngineLoop measures the schedule/repair loop alone at
// 1024^2, without Result assembly: whole-Run B/op at this size is
// dominated by the per-node arrays every engine must hand the caller
// (DecodeSlot, TxSlots, PerNodeEnergyJ — ~43 MB), so this is the
// number that shows the arena's steady-state allocation, which should
// be near zero.
func BenchmarkScaleEngineLoop(b *testing.B) {
	topo := grid.NewMesh2D8(1024, 1024)
	proto := core.ForTopology(grid.Mesh2D8)
	src := center(topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunLoopForBenchmark(topo, proto, src, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
