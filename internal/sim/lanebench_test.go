package sim_test

import (
	"fmt"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

func BenchmarkLanePointProbe(b *testing.B) {
	topo := grid.NewMesh2D4(16, 8)
	p := core.ForTopology(grid.Mesh2D4)
	src := grid.C2(8, 4)
	seeds := make([]uint64, 20)
	for i := range seeds {
		seeds[i] = sim.ReplicationSeed(1, i)
	}
	for _, pt := range []struct{ loss, fail float64 }{
		{0, 0}, {0.05, 0}, {0.1, 0}, {0, 0.1}, {0.05, 0.1}, {0.1, 0.1},
	} {
		b.Run(fmt.Sprintf("lane/loss=%g,fail=%g", pt.loss, pt.fail), func(b *testing.B) {
			spec := sim.LaneSpec{Topology: topo, Protocol: p, Source: src,
				Seeds: seeds, LossRate: pt.loss, FailureRate: pt.fail}
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunLanes(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scalar/loss=%g,fail=%g", pt.loss, pt.fail), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, seed := range seeds {
					cfg := sim.Config{Channel: sim.NewBernoulliLoss(seed, pt.loss)}
					if pt.fail > 0 {
						cfg.Down = sim.SampleFailures(topo, src, seed, pt.fail)
					}
					if _, err := sim.Run(topo, p, src, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
