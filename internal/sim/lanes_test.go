package sim_test

// The differential lock on the lockstep lane engine: every lane of
// sim.RunLanes must reproduce, field for field, the scalar sim.Run
// replication built from the same derived seed — sampled failures in
// Down, BernoulliLoss channel, identical config — across the canonical
// topology x protocol x loss x failure matrix of ISSUE 6, at full and
// ragged lane widths. Run under -race by the Makefile's race target;
// make verify greps for TestLaneDifferentialMatrix so a build tag
// cannot silently drop this file.

import (
	"errors"
	"fmt"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// laneSmallTopo is a reduced mesh of each kind, big enough for
// borders, collisions, and scheduler repairs without making the
// 64-lane scalar cross-check expensive.
func laneSmallTopo(k grid.Kind) grid.Topology {
	if k == grid.Mesh3D6 {
		return grid.NewMesh3D6(4, 4, 3)
	}
	return grid.New(k, 10, 6, 1)
}

func laneProtocols(k grid.Kind) map[string]sim.Protocol {
	return map[string]sim.Protocol{
		"paper":           core.ForTopology(k),
		"flooding":        core.NewFlooding(),
		"flooding-jitter": core.NewJitteredFlooding(8),
	}
}

// scalarLane runs the scalar replication lane λ must match: failures
// sampled from the lane's seed into Down, the lane's seeded Bernoulli
// channel, everything else from the shared base config.
func scalarLane(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord, base sim.Config, seed uint64, loss, fail float64) *sim.Result {
	t.Helper()
	cfg := base
	cfg.Down = append(append([]grid.Coord(nil), base.Down...), sim.SampleFailures(topo, src, seed, fail)...)
	cfg.Channel = sim.NewBernoulliLoss(seed, loss)
	res, err := sim.Run(topo, p, src, cfg)
	if err != nil {
		t.Fatalf("scalar run (seed %d): %v", seed, err)
	}
	return res
}

// requireLaneEqual asserts exact equality — floats included — between
// one lane's result and its scalar counterpart.
func requireLaneEqual(t *testing.T, lane int, got sim.LaneResult, want *sim.Result) {
	t.Helper()
	if got.Reached != want.Reached || got.Total != want.Total || got.Down != want.Down ||
		got.Delay != want.Delay || got.Tx != want.Tx || got.Rx != want.Rx ||
		got.Lost != want.Lost || got.Collisions != want.Collisions ||
		got.Duplicates != want.Duplicates || got.Repairs != want.Repairs ||
		got.EnergyJ != want.EnergyJ {
		t.Fatalf("lane %d diverged from scalar:\nlane:   %+v\nscalar: Reached=%d Total=%d Down=%d Delay=%d Tx=%d Rx=%d Lost=%d Coll=%d Dup=%d Rep=%d E=%v",
			lane, got, want.Reached, want.Total, want.Down, want.Delay, want.Tx, want.Rx,
			want.Lost, want.Collisions, want.Duplicates, want.Repairs, want.EnergyJ)
	}
	if got.Reachability() != want.Reachability() || got.FullyReached() != want.FullyReached() {
		t.Fatalf("lane %d derived metrics diverged", lane)
	}
}

// diffLanes runs one batch through the lane engine and checks every
// lane against its scalar replication.
func diffLanes(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord, base sim.Config, seeds []uint64, loss, fail float64) {
	t.Helper()
	spec := sim.LaneSpec{
		Topology: topo, Protocol: p, Source: src, Config: base,
		Seeds: seeds, LossRate: loss, FailureRate: fail,
	}
	lanes, err := sim.RunLanes(spec)
	if err != nil {
		t.Fatalf("RunLanes: %v", err)
	}
	if len(lanes) != len(seeds) {
		t.Fatalf("RunLanes returned %d results for %d seeds", len(lanes), len(seeds))
	}
	for lane, seed := range seeds {
		want := scalarLane(t, topo, p, src, base, seed, loss, fail)
		requireLaneEqual(t, lane, lanes[lane], want)
	}
}

func laneSeeds(study uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = sim.ReplicationSeed(study, i)
	}
	return seeds
}

// TestLaneDifferentialMatrix is the issue's full matrix: all canonical
// topologies x {paper, flooding, flooding-jitter} x loss {0, 0.05,
// 0.2} x failure {0, 0.1}, 64 lanes each, every lane checked against
// its scalar replication. make verify requires this test to exist in
// the compiled test binary.
func TestLaneDifferentialMatrix(t *testing.T) {
	losses := []float64{0, 0.05, 0.2}
	failures := []float64{0, 0.1}
	for _, k := range grid.Kinds() {
		topo := laneSmallTopo(k)
		src := topo.At(topo.NumNodes() / 2)
		for name, p := range laneProtocols(k) {
			for _, loss := range losses {
				for _, fail := range failures {
					t.Run(fmt.Sprintf("%s/%s/loss=%g/fail=%g", k, name, loss, fail), func(t *testing.T) {
						t.Parallel()
						diffLanes(t, topo, p, src, sim.Config{}, laneSeeds(1, 64), loss, fail)
					})
				}
			}
		}
	}
}

// TestLaneRaggedWidths pins ragged batches: every lane width from a
// single lane up through a full word matches scalar, so the final
// partial batch of a Monte Carlo run (reps not a multiple of 64) is as
// trustworthy as the full ones. Also exercises a different study seed
// offset per width, as mc's last batch starts mid-sequence.
func TestLaneRaggedWidths(t *testing.T) {
	topo := grid.New(grid.Mesh2D4, 9, 5, 1)
	src := topo.At(22)
	p := core.ForTopology(grid.Mesh2D4)
	all := laneSeeds(7, 64)
	for _, width := range []int{1, 2, 7, 31, 63, 64} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			t.Parallel()
			off := 64 - width // a mid-sequence slice, like mc's final batch
			diffLanes(t, topo, p, src, sim.Config{}, all[off:off+width], 0.2, 0.1)
		})
	}
}

// TestLaneStaticDownAndDisableRepair covers the remaining config
// surface: a shared static Down list composed with per-lane sampled
// failures, and DisableRepair leaving whatever the protocol achieves.
func TestLaneStaticDownAndDisableRepair(t *testing.T) {
	topo := grid.New(grid.Mesh2D8, 8, 6, 1)
	src := topo.At(20)
	base := sim.Config{Down: []grid.Coord{topo.At(3), topo.At(41)}}
	diffLanes(t, topo, core.NewFlooding(), src, base, laneSeeds(11, 64), 0.1, 0.1)

	base.DisableRepair = true
	diffLanes(t, topo, core.ForTopology(grid.Mesh2D8), src, base, laneSeeds(13, 64), 0.2, 0)
}

// TestLanePoolReuse reruns one batch back to back: a stale pooled
// arena (counters, decode slots, tx logs not reset) would show up as a
// second-run divergence.
func TestLanePoolReuse(t *testing.T) {
	topo := laneSmallTopo(grid.Mesh2D4)
	src := topo.At(5)
	p := core.NewJitteredFlooding(8)
	for i := 0; i < 3; i++ {
		diffLanes(t, topo, p, src, sim.Config{}, laneSeeds(uint64(17+i), 37), 0.05, 0.1)
	}
}

// TestRunLanesFallbacks pins the scalar-only surface: tracing,
// caller-owned channels, and invalid static Down lists report
// ErrLaneFallback (the caller reruns through sim.Run), while malformed
// specs report ordinary errors.
func TestRunLanesFallbacks(t *testing.T) {
	topo := grid.New(grid.Mesh2D4, 4, 4, 1)
	src := topo.At(5)
	p := core.NewFlooding()
	ok := sim.LaneSpec{Topology: topo, Protocol: p, Source: src, Seeds: []uint64{1, 2}}

	fallback := map[string]sim.LaneSpec{}
	withTrace := ok
	withTrace.Config.Trace = func(sim.Event) {}
	fallback["trace"] = withTrace
	withChannel := ok
	withChannel.Config.Channel = sim.NewBernoulliLoss(1, 0.5)
	fallback["channel"] = withChannel
	downSource := ok
	downSource.Config.Down = []grid.Coord{src}
	fallback["down-source"] = downSource
	outsideSource := ok
	outsideSource.Source = grid.C2(99, 99)
	fallback["outside-source"] = outsideSource
	for name, spec := range fallback {
		if _, err := sim.RunLanes(spec); !errors.Is(err, sim.ErrLaneFallback) {
			t.Errorf("%s: want ErrLaneFallback, got %v", name, err)
		}
	}

	invalid := map[string]sim.LaneSpec{}
	noSeeds := ok
	noSeeds.Seeds = nil
	invalid["no-seeds"] = noSeeds
	tooWide := ok
	tooWide.Seeds = make([]uint64, 65)
	invalid["too-wide"] = tooWide
	badLoss := ok
	badLoss.LossRate = 1.5
	invalid["bad-loss"] = badLoss
	badFail := ok
	badFail.FailureRate = -0.25
	invalid["bad-failure"] = badFail
	invalid["nil-protocol"] = sim.LaneSpec{Topology: topo, Source: src, Seeds: []uint64{1}}
	for name, spec := range invalid {
		_, err := sim.RunLanes(spec)
		if err == nil || errors.Is(err, sim.ErrLaneFallback) {
			t.Errorf("%s: want a validation error, got %v", name, err)
		}
	}
}
