package sim

import (
	"wsnbcast/internal/grid"
)

// Lane randomness: the lockstep Monte Carlo engine (lanes.go) carries
// up to 64 replications per machine word, so every Bernoulli decision
// needs one bit per lane — and each bit must equal, exactly, the draw
// the scalar engine would have made for that lane's derived seed.
// There is no shortcut through a single 64-bit word of "random bits":
// a Bernoulli(rate) decision needs a full uniform per lane, and lane λ
// is defined by its own seed. What the lanes do share is structure:
// keyedUint64 absorbs its words in order, so every draw of lane λ in a
// domain starts from the same two-word prefix mix(seed_λ, domain), and
// the per-slot and per-transmitter continuations are shared across all
// receivers of a transmission. The engine caches those chain prefixes
// and pays one splitmix64 finalizer per (link, lane) where the scalar
// path pays the whole five-word chain per link per replication — plus
// the scalar engine's per-replication bookkeeping.
//
// The functions here are the uncached reference forms. They exist so
// the fuzz harness (lanerand_test.go) can pin the lane-vs-scalar
// equality on arbitrary inputs, and so the derivation is written down
// once in full; the engine's cached chains are proven against the same
// scalar draws by the differential matrix.

// laneSeedPrefix returns, per lane, the keyedUint64 chain state after
// absorbing (seed, domain) — the seed-dependent prefix shared by every
// draw that lane makes in the domain.
func laneSeedPrefix(seeds []uint64, domain uint64, out *[64]uint64) {
	for i, s := range seeds {
		h := golden
		h = mix64(h + golden + s)
		out[i] = mix64(h + golden + domain)
	}
}

// LaneLossMask returns the lost-mask of one link event for a batch of
// lockstep lanes: bit λ is set iff BernoulliLoss{Seed: seeds[λ],
// Rate: rate} would drop the (slot, tx, rx) reception — the exact
// complement, per lane, of the scalar Channel's Deliver verdict. A
// rate <= 0 loses nothing, matching NewBernoulliLoss returning the
// error-free nil channel. len(seeds) must be at most 64.
func LaneLossMask(seeds []uint64, rate float64, slot int, tx, rx int32) uint64 {
	if len(seeds) > 64 {
		panic("sim: lane batch wider than 64 lanes")
	}
	if rate <= 0 {
		return 0
	}
	var mask uint64
	txw, rxw := uint64(uint32(tx)), uint64(uint32(rx))
	for lane, s := range seeds {
		h := golden
		h = mix64(h + golden + s)
		h = mix64(h + golden + domainLoss)
		h = mix64(h + golden + uint64(slot))
		h = mix64(h + golden + txw)
		h = mix64(h + golden + rxw)
		if float64(h>>11)*0x1p-53 < rate {
			mask |= 1 << uint(lane)
		}
	}
	return mask
}

// LaneFailureMasks fills fail[i] with the pre-broadcast failure mask
// of node i: bit λ is set iff SampleFailures(t, src, seeds[λ], rate)
// would fail node i. The source is exempt in every lane, exactly as in
// the scalar sampler. fail must have t.NumNodes() entries; len(seeds)
// must be at most 64.
func LaneFailureMasks(t grid.Topology, src grid.Coord, seeds []uint64, rate float64, fail []uint64) {
	if len(seeds) > 64 {
		panic("sim: lane batch wider than 64 lanes")
	}
	clear(fail)
	if rate <= 0 {
		return
	}
	var prefix [64]uint64
	laneSeedPrefix(seeds, domainFailure, &prefix)
	srcIdx := t.Index(src)
	for i := range fail {
		if i == srcIdx {
			continue
		}
		var m uint64
		for lane := range seeds {
			if float64(mix64(prefix[lane]+golden+uint64(i))>>11)*0x1p-53 < rate {
				m |= 1 << uint(lane)
			}
		}
		fail[i] = m
	}
}

// laneCounter accumulates one integer per lane from 64-bit event
// masks, bit-sliced: plane p holds bit p of every lane's count, so
// adding a mask is a short ripple-carry over words — O(1) amortized —
// instead of a popcount-directed loop over set bits. 32 planes bound
// the counts at 2^32, far above anything a single broadcast can
// produce (the engine rejects schedules past the int32 slot limit).
type laneCounter struct {
	planes [32]uint64
}

// add increments the count of every lane whose bit is set in m.
func (c *laneCounter) add(m uint64) {
	for i := 0; m != 0 && i < len(c.planes); i++ {
		carry := c.planes[i] & m
		c.planes[i] ^= m
		m = carry
	}
}

// count reads lane λ's accumulated total.
func (c *laneCounter) count(lane int) int {
	var n uint64
	for i, p := range c.planes {
		n |= (p >> uint(lane) & 1) << uint(i)
	}
	return int(n)
}

// reset clears every lane's count.
func (c *laneCounter) reset() {
	clear(c.planes[:])
}
