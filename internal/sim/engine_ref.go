package sim

import (
	"fmt"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// This file preserves the pre-optimization broadcast engine — map-based
// slot schedule, per-round state reallocation, per-decode Protocol
// interface calls — verbatim except for renames. It is the
// differential-testing oracle for the optimized engine in engine.go:
// the tests in differential_test.go require Run and RunReference to
// produce byte-identical Results (counters, DecodeSlot, TxSlots,
// PerNodeEnergyJ, trace event sequence) on every topology, protocol
// and channel configuration. Keep its behavior frozen; performance
// work happens in engine.go only.

// RunReference simulates one broadcast exactly like Run, using the
// original (slower) engine implementation. It exists solely as the
// oracle for differential tests and benchmarks; production callers use
// Run.
func RunReference(t grid.Topology, p Protocol, src grid.Coord, cfg Config) (*Result, error) {
	if !t.Contains(src) {
		return nil, fmt.Errorf("sim: source %s outside %s mesh", src, t.Kind())
	}
	cfg = cfg.withDefaults(t.NumNodes())
	if err := cfg.Packet.Validate(); err != nil {
		return nil, err
	}
	var down []bool
	if len(cfg.Down) > 0 {
		down = make([]bool, t.NumNodes())
		for _, c := range cfg.Down {
			if !t.Contains(c) {
				return nil, fmt.Errorf("sim: down node %s outside mesh", c)
			}
			down[t.Index(c)] = true
		}
		if down[t.Index(src)] {
			return nil, fmt.Errorf("sim: source %s is down", src)
		}
	}
	adj := buildAdjacency(t, down != nil)
	if down != nil {
		// Remove the down nodes from the radio graph entirely.
		for i := range adj {
			if down[i] {
				adj[i] = nil
				continue
			}
			kept := adj[i][:0]
			for _, nb := range adj[i] {
				if !down[nb] {
					kept = append(kept, nb)
				}
			}
			adj[i] = kept
		}
	}

	var inj []injection
	var e *refEngine
	for round := 0; ; round++ {
		e = newRefEngine(t, p, src, cfg, adj, down, inj)
		if err := e.run(); err != nil {
			return nil, err
		}
		if cfg.DisableRepair || !e.anyMissing() {
			break
		}
		if round >= cfg.MaxPlanRounds {
			// Fallback: serialized repairs after all other activity.
			if err := e.appendRepair(); err != nil {
				return nil, err
			}
			break
		}
		added := e.planInjections(&inj)
		if added == 0 {
			break // unreached nodes are disconnected from the source
		}
	}
	e.finish()
	e.flushTrace()
	return e.res, nil
}

// refEngine holds the mutable state of one schedule replay
// (pre-optimization layout: maps, per-round allocation).
type refEngine struct {
	topo  grid.Topology
	proto Protocol
	src   grid.Coord
	cfg   Config

	nbr     [][]int32 // dense adjacency (down nodes removed)
	down    []bool    // failed nodes (nil when none)
	decode  []int     // first-decode slot, -1 never; source 0
	txSlots [][]int
	heard   []int // receptions per node
	hit     []int // scratch: transmitters heard this slot

	touched     []int32         // scratch: receivers hit this slot
	pending     map[int][]int32 // slot -> scheduled transmitters
	injAt       map[int][]int32 // slot -> injected repair transmitters
	outstanding int
	maxSched    int // highest slot with scheduled activity so far
	last        int // highest slot processed with activity

	traceBuf []Event
	res      *Result
}

func newRefEngine(t grid.Topology, p Protocol, src grid.Coord, cfg Config, adj [][]int32, down []bool, inj []injection) *refEngine {
	v := t.NumNodes()
	e := &refEngine{
		down:    down,
		topo:    t,
		proto:   p,
		src:     src,
		cfg:     cfg,
		nbr:     adj,
		decode:  make([]int, v),
		txSlots: make([][]int, v),
		heard:   make([]int, v),
		hit:     make([]int, v),
		pending: make(map[int][]int32),
		injAt:   make(map[int][]int32),
		res: &Result{
			Kind:     t.Kind(),
			Source:   src,
			Protocol: p.Name(),
			Total:    v,
		},
	}
	for i := range e.decode {
		e.decode[i] = -1
	}
	for i := range down {
		if down[i] {
			e.res.Down++
		}
	}
	e.res.Total = v - e.res.Down
	srcIdx := t.Index(src)
	e.decode[srcIdx] = 0
	e.res.Reached = 1
	e.schedule(SourceTx, int32(srcIdx))
	for _, off := range p.Retransmits(t, src, src) {
		if off >= 1 {
			e.schedule(SourceTx+off, int32(srcIdx))
		}
	}
	for _, in := range inj {
		e.injAt[in.slot] = append(e.injAt[in.slot], in.node)
		e.outstanding++
		if in.slot > e.maxSched {
			e.maxSched = in.slot
		}
	}
	return e
}

func (e *refEngine) schedule(slot int, node int32) {
	e.pending[slot] = append(e.pending[slot], node)
	e.outstanding++
	if slot > e.maxSched {
		e.maxSched = slot
	}
}

// run processes the whole schedule.
func (e *refEngine) run() error { return e.drain() }

// drain processes slots in order until no transmissions remain
// scheduled.
func (e *refEngine) drain() error {
	slot := e.last
	for e.outstanding > 0 {
		if slot > e.cfg.MaxSlots {
			return fmt.Errorf("sim: %s/%s exceeded %d slots (runaway schedule)",
				e.proto.Name(), e.topo.Kind(), e.cfg.MaxSlots)
		}
		txs, ok := e.pending[slot]
		injs, okInj := e.injAt[slot]
		if !ok && !okInj {
			slot++
			continue
		}
		delete(e.pending, slot)
		delete(e.injAt, slot)
		e.outstanding -= len(txs) + len(injs)
		// An injection fires only if its node decoded in an earlier
		// slot: replays may shift decode times and invalidate it.
		for _, v := range injs {
			if d := e.decode[v]; d >= 0 && d < slot {
				txs = append(txs, v)
				e.res.Repairs++
				e.emit(Event{Slot: slot, Kind: EventRepair, Node: e.topo.At(int(v))})
			}
		}
		if len(txs) == 0 {
			slot++
			continue
		}
		txs = refDedupe(txs)
		e.step(slot, txs)
		e.last = slot
		slot++
	}
	return nil
}

// refDedupe sorts and removes duplicate transmitters using the
// original closure-allocating sort.Slice (the optimized path uses
// slices.Sort; see dedupe in engine.go).
func refDedupe(txs []int32) []int32 {
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	out := txs[:0]
	for i, v := range txs {
		if i == 0 || v != txs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// step executes one slot with the given transmitters.
func (e *refEngine) step(slot int, txs []int32) {
	touched := e.touched[:0]
	for _, tx := range txs {
		e.txSlots[tx] = append(e.txSlots[tx], slot)
		e.res.Tx++
		e.emit(Event{Slot: slot, Kind: EventTx, Node: e.topo.At(int(tx))})
		for _, nb := range e.nbr[tx] {
			if e.cfg.Channel != nil && !e.cfg.Channel.Deliver(slot, tx, nb) {
				e.res.Lost++
				e.emit(Event{Slot: slot, Kind: EventLost, Node: e.topo.At(int(nb))})
				continue
			}
			e.heard[nb]++
			e.res.Rx++
			if e.hit[nb] == 0 {
				touched = append(touched, nb)
			}
			e.hit[nb]++
		}
	}
	e.touched = touched
	for _, nb := range touched {
		n := e.hit[nb]
		e.hit[nb] = 0
		if n >= 2 {
			e.res.Collisions++
			e.emit(Event{Slot: slot, Kind: EventCollision, Node: e.topo.At(int(nb))})
			continue
		}
		if e.decode[nb] >= 0 {
			e.res.Duplicates++
			e.emit(Event{Slot: slot, Kind: EventDuplicate, Node: e.topo.At(int(nb))})
			continue
		}
		e.decode[nb] = slot
		e.res.Reached++
		c := e.topo.At(int(nb))
		e.emit(Event{Slot: slot, Kind: EventDecode, Node: c})
		if e.proto.IsRelay(e.topo, e.src, c) {
			d := e.proto.TxDelay(e.topo, e.src, c)
			if d < 1 {
				d = 1
			}
			first := slot + d
			e.schedule(first, nb)
			for _, off := range e.proto.Retransmits(e.topo, e.src, c) {
				if off >= 1 {
					e.schedule(first+off, nb)
				}
			}
		}
	}
}

func (e *refEngine) anyMissing() bool { return e.res.Reached < e.res.Total }

// isDown reports whether node i has failed.
func (e *refEngine) isDown(i int) bool { return e.down != nil && e.down[i] }

// txAt reports whether node transmitted in the given slot of this
// schedule, or is already planned to by pendingInj.
func (e *refEngine) txAt(node int32, slot int, pendingInj []injection) bool {
	for _, s := range e.txSlots[node] {
		if s == slot {
			return true
		}
	}
	for _, in := range pendingInj {
		if in.node == node && in.slot == slot {
			return true
		}
	}
	return false
}

// planInjections extends inj with one repair transmission per missing
// node, each placed at the earliest slot that (a) no other neighbor of
// the missing node transmits in, (b) does not destroy any first decode
// of the donor's neighbors, and (c) does not clash with repairs
// planned in this round. Returns how many injections were added.
func (e *refEngine) planInjections(inj *[]injection) int {
	added := 0
	var round []injection
	for u := range e.decode {
		if e.decode[u] >= 0 || e.isDown(u) {
			continue
		}
		donor := e.pickDonor(u)
		if donor < 0 {
			continue // disconnected from the decoded set
		}
		slot := e.pickSlot(int32(u), donor, round)
		round = append(round, injection{node: donor, slot: slot})
		added++
	}
	*inj = append(*inj, round...)
	return added
}

// pickDonor finds, deterministically, the earliest-decoded neighbor of
// u (ties by index).
func (e *refEngine) pickDonor(u int) int32 {
	best := int32(-1)
	for _, nb := range e.nbr[u] {
		if e.decode[nb] < 0 {
			continue
		}
		if best < 0 || e.decode[nb] < e.decode[best] ||
			(e.decode[nb] == e.decode[best] && nb < best) {
			best = nb
		}
	}
	return best
}

// pickSlot chooses the earliest conflict-free slot for donor to cover
// u, considering this schedule plus the repairs already planned in
// this round.
func (e *refEngine) pickSlot(u, donor int32, round []injection) int {
	for s := e.decode[donor] + 1; ; s++ {
		if e.conflictAt(u, donor, s, round) {
			continue
		}
		return s
	}
}

// conflictAt reports whether donor transmitting in slot s would fail
// to deliver to u or would destroy someone else's first decode.
func (e *refEngine) conflictAt(u, donor int32, s int, round []injection) bool {
	// Another neighbor of u (or donor itself, collided) transmits at s.
	for _, nb := range e.nbr[u] {
		if e.txAt(nb, s, round) {
			return true
		}
	}
	// A neighbor of donor first-decodes at s from a single transmitter;
	// donor's extra transmission would turn it into a collision.
	for _, w := range e.nbr[donor] {
		if e.decode[w] == s {
			return true
		}
	}
	// A repair planned this round delivers to a common neighbor at s.
	for _, in := range round {
		if in.slot != s {
			continue
		}
		for _, w := range e.nbr[donor] {
			if w == in.node {
				return true
			}
			for _, x := range e.nbr[in.node] {
				if x == w && e.decode[w] < 0 {
					return true
				}
			}
		}
	}
	return false
}

// appendRepair is the fallback when planning does not converge:
// serialized retransmissions strictly after all other activity, one
// per round, which cannot collide with anything.
func (e *refEngine) appendRepair() error {
	for e.res.Reached < e.res.Total {
		donor := int32(-1)
		for u := range e.decode {
			if e.decode[u] >= 0 || e.isDown(u) {
				continue
			}
			if d := e.pickDonor(u); d >= 0 {
				donor = d
				break
			}
		}
		if donor < 0 {
			return nil // disconnected topology: nothing more to do
		}
		slot := e.last + 1
		e.injAt[slot] = append(e.injAt[slot], donor)
		e.outstanding++
		if slot > e.maxSched {
			e.maxSched = slot
		}
		if err := e.drain(); err != nil {
			return err
		}
	}
	return nil
}

// finish computes the derived metrics.
func (e *refEngine) finish() {
	r := e.res
	srcIdx := e.topo.Index(e.src)
	for i, d := range e.decode {
		if i != srcIdx && d > r.Delay {
			r.Delay = d
		}
	}
	etx := e.cfg.Model.TxEnergyJ(e.cfg.Packet.Bits, e.cfg.Packet.NeighborDistM)
	erx := e.cfg.Model.RxEnergyJ(e.cfg.Packet.Bits)
	// Sized by dense node index (down nodes hold 0), not by live
	// count: consumers like the energy heatmap index it by t.Index.
	r.PerNodeEnergyJ = make([]float64, len(e.txSlots))
	for i := range r.PerNodeEnergyJ {
		r.PerNodeEnergyJ[i] = float64(len(e.txSlots[i]))*etx + float64(e.heard[i])*erx
	}
	ledger := radio.NewLedger(e.cfg.Model, e.cfg.Packet)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	r.EnergyJ = ledger.TotalJ()
	r.DecodeSlot = e.decode
	r.TxSlots = e.txSlots
	r.downMask = e.down
}

func (e *refEngine) emit(ev Event) {
	if e.cfg.Trace != nil {
		e.traceBuf = append(e.traceBuf, ev)
	}
}

// flushTrace delivers the final schedule's events. Intermediate
// planning replays are not traced.
func (e *refEngine) flushTrace() {
	if e.cfg.Trace == nil {
		return
	}
	for _, ev := range e.traceBuf {
		e.cfg.Trace(ev)
	}
}
