package sim

// Property harness for the lane randomness layer: the lane-vs-scalar
// bit equality that the differential matrix proves on real broadcasts
// is pinned here on arbitrary inputs — any (seed, rate, coordinates)
// the fuzzer invents must see lane λ's bit equal the scalar draw for
// seeds[λ], and replication seeds must never collide within a study.
// CI runs each fuzz target briefly on every push (make / ci.yml); the
// committed corpus keeps the seed cases as plain unit tests.

import (
	"testing"

	"wsnbcast/internal/grid"
)

// fuzzRate maps 64 random bits onto a uniform rate in [0, 1) — the
// same top-53-bit projection the draws themselves use, so mutations
// explore thresholds right at the representable boundaries.
func fuzzRate(bits uint64) float64 { return float64(bits>>11) * 0x1p-53 }

// fuzzSeeds derives a 1-to-64 lane batch the way the Monte Carlo
// layer does, so fuzzed batches have the production seed structure.
func fuzzSeeds(seed uint64, width uint8) []uint64 {
	seeds := make([]uint64, 1+int(width%64))
	for i := range seeds {
		seeds[i] = ReplicationSeed(seed, i)
	}
	return seeds
}

func FuzzLaneLossMask(f *testing.F) {
	f.Add(uint64(1), 0, int32(0), int32(1), uint64(0), uint8(63))
	f.Add(uint64(42), 7, int32(12), int32(13), ^uint64(0), uint8(0))
	f.Add(uint64(0xdeadbeef), 900, int32(511), int32(0), uint64(1)<<62, uint8(31))
	f.Fuzz(func(t *testing.T, seed uint64, slot int, tx, rx int32, rateBits uint64, width uint8) {
		rate := fuzzRate(rateBits)
		seeds := fuzzSeeds(seed, width)
		mask := LaneLossMask(seeds, rate, slot, tx, rx)
		for lane, s := range seeds {
			want := false
			if ch := NewBernoulliLoss(s, rate); ch != nil {
				want = !ch.Deliver(slot, tx, rx)
			}
			if got := mask>>uint(lane)&1 == 1; got != want {
				t.Fatalf("lane %d (seed %#x rate %g slot %d tx %d rx %d): lane bit lost=%v, scalar lost=%v",
					lane, s, rate, slot, tx, rx, got, want)
			}
		}
	})
}

func FuzzLaneFailureMasks(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint8(63), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), ^uint64(0), uint8(0), uint8(3), uint8(5), uint8(17))
	f.Add(uint64(0xfeed), uint64(1)<<62, uint8(15), uint8(6), uint8(2), uint8(40))
	f.Fuzz(func(t *testing.T, seed, rateBits uint64, width, mB, nB, srcB uint8) {
		topo := grid.NewMesh2D4(2+int(mB%8), 2+int(nB%8))
		src := topo.At(int(srcB) % topo.NumNodes())
		rate := fuzzRate(rateBits)
		seeds := fuzzSeeds(seed, width)
		fail := make([]uint64, topo.NumNodes())
		LaneFailureMasks(topo, src, seeds, rate, fail)
		for lane, s := range seeds {
			down := make(map[int]bool)
			for _, c := range SampleFailures(topo, src, s, rate) {
				down[topo.Index(c)] = true
			}
			for i := range fail {
				if got := fail[i]>>uint(lane)&1 == 1; got != down[i] {
					t.Fatalf("lane %d (seed %#x rate %g) node %d: lane bit down=%v, scalar down=%v",
						lane, s, rate, i, got, down[i])
				}
			}
		}
	})
}

// Replication seeds within a study must be collision-free: two
// replications sharing a seed would share every uniform and silently
// halve the effective sample size of every estimate.
func TestReplicationSeedCollisionFree(t *testing.T) {
	for _, study := range []uint64{0, 1, 0xdeadbeefcafe} {
		seen := make(map[uint64]int, 1<<16)
		for r := 0; r < 1<<16; r++ {
			s := ReplicationSeed(study, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("study %#x: replications %d and %d share seed %#x", study, prev, r, s)
			}
			seen[s] = r
		}
	}
}
