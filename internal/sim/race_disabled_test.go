//go:build !race

package sim_test

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
