package sim

import (
	"fmt"
	"sort"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Result is the outcome of one simulated broadcast, carrying exactly
// the quantities the paper's Section 4 evaluates plus diagnostics.
type Result struct {
	// Kind and Source identify the run.
	Kind   grid.Kind
	Source grid.Coord
	// Protocol is the protocol name.
	Protocol string

	// Tx is the total number of transmissions (paper: T_x).
	Tx int
	// Rx is the total number of receptions, one per (transmitter,
	// hearing neighbor) pair, duplicates and collided copies included
	// (paper: R_x).
	Rx int
	// EnergyJ is the total power consumption in Joules:
	// Tx*E_Tx(k,d) + Rx*E_Rx(k).
	EnergyJ float64
	// Delay is the slot in which the last node first decoded the
	// message (the source transmits in slot 0). Zero for a one-node
	// network.
	Delay int
	// Reached is the number of nodes holding the message at the end
	// (including the source). 100% reachability means Reached == Total.
	Reached int
	// Total is the number of live nodes in the network (failed nodes
	// excluded).
	Total int
	// Down is the number of failed nodes (Config.Down).
	Down int

	// Collisions counts (slot, receiver) collision events.
	Collisions int
	// Lost counts receptions a lossy channel (Config.Channel) dropped
	// before they reached the receiver; Rx excludes them, so
	// Rx + Lost equals the error-free degree sum.
	Lost int
	// Duplicates counts successful decodes of already-held copies.
	Duplicates int
	// Repairs counts scheduler-granted retransmissions beyond the
	// protocol's own rules (0 when the protocol is self-sufficient).
	Repairs int

	// DecodeSlot[i] is the slot node i first decoded the message, -1 if
	// never; the source holds 0 (it originates the message).
	DecodeSlot []int
	// TxSlots[i] lists the slots node i transmitted in (ordered).
	TxSlots [][]int
	// PerNodeEnergyJ[i] is the energy the node at dense index i spent
	// (its own Tx plus everything it heard); down nodes hold 0.
	PerNodeEnergyJ []float64

	// downMask marks failed nodes (nil when none); set by the engine
	// and consulted by Validate.
	downMask []bool
}

// IsDown reports whether the node at dense index i was failed in this
// run.
func (r *Result) IsDown(i int) bool { return r.downMask != nil && r.downMask[i] }

// Reachability returns the fraction of nodes reached, in [0, 1].
func (r *Result) Reachability() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Reached) / float64(r.Total)
}

// FullyReached reports 100% reachability.
func (r *Result) FullyReached() bool { return r.Reached == r.Total }

// RelayCount returns how many distinct nodes transmitted at least once.
func (r *Result) RelayCount() int {
	n := 0
	for _, s := range r.TxSlots {
		if len(s) > 0 {
			n++
		}
	}
	return n
}

// RetransmitNodes returns the dense indices of nodes that transmitted
// more than once (the paper's gray nodes), sorted.
func (r *Result) RetransmitNodes() []int {
	var out []int
	for i, s := range r.TxSlots {
		if len(s) > 1 {
			out = append(out, i)
		}
	}
	return out
}

// MaxNodeEnergyJ returns the highest per-node energy, the quantity that
// bounds network lifetime.
func (r *Result) MaxNodeEnergyJ() float64 {
	max := 0.0
	for _, e := range r.PerNodeEnergyJ {
		if e > max {
			max = e
		}
	}
	return max
}

// EnergyQuantiles returns the q-quantiles (q in [0,1], ascending) of
// the per-node energy distribution.
func (r *Result) EnergyQuantiles(qs ...float64) []float64 {
	if len(r.PerNodeEnergyJ) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), r.PerNodeEnergyJ...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}

// String summarizes the run in one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s src=%s: Tx=%d Rx=%d E=%.4e J delay=%d reached=%d/%d coll=%d rep=%d",
		r.Protocol, r.Kind, r.Source, r.Tx, r.Rx, r.EnergyJ, r.Delay, r.Reached, r.Total,
		r.Collisions, r.Repairs)
}

// Validate checks the internal consistency of the result against the
// topology and the engine's contract:
//
//   - every transmitting node other than the source decoded strictly
//     before its first transmission;
//   - transmission slot lists are strictly increasing;
//   - Tx equals the total number of logged transmissions;
//   - Rx plus channel-dropped copies equals the sum over transmissions
//     of the transmitter's degree;
//   - Delay equals the maximum decode slot;
//   - energy matches the ledger formula.
func (r *Result) Validate(t grid.Topology, model radio.Model, pkt radio.Packet) error {
	if t.NumNodes() != r.Total+r.Down {
		return fmt.Errorf("sim: result total %d + down %d != topology %d",
			r.Total, r.Down, t.NumNodes())
	}
	// One reused buffer through the implicit indexer: validation of a
	// large-grid result stays O(1) in allocations instead of one
	// Neighbors slice per transmitting node.
	var nbuf []int32
	liveDegree := func(i int) int {
		nbuf = grid.IndexNeighbors(t, i, nbuf[:0])
		if r.downMask == nil {
			return len(nbuf)
		}
		d := 0
		for _, nb := range nbuf {
			if !r.downMask[nb] {
				d++
			}
		}
		return d
	}
	txCount, rxCount := 0, 0
	srcIdx := t.Index(r.Source)
	for i, slots := range r.TxSlots {
		if r.IsDown(i) && (len(slots) > 0 || r.DecodeSlot[i] >= 0) {
			return fmt.Errorf("sim: down node %v transmitted or decoded", t.At(i))
		}
		for k := 1; k < len(slots); k++ {
			if slots[k] <= slots[k-1] {
				return fmt.Errorf("sim: node %v tx slots not increasing: %v", t.At(i), slots)
			}
		}
		if len(slots) > 0 {
			txCount += len(slots)
			rxCount += len(slots) * liveDegree(i)
			first := slots[0]
			if i == srcIdx {
				if first != SourceTx {
					return fmt.Errorf("sim: source first tx in slot %d", first)
				}
			} else {
				d := r.DecodeSlot[i]
				if d < 0 {
					return fmt.Errorf("sim: node %v transmitted without decoding", t.At(i))
				}
				if first <= d {
					return fmt.Errorf("sim: node %v transmitted in slot %d but decoded in %d",
						t.At(i), first, d)
				}
			}
		}
	}
	if txCount != r.Tx {
		return fmt.Errorf("sim: Tx=%d but logged %d transmissions", r.Tx, txCount)
	}
	if rxCount != r.Rx+r.Lost {
		return fmt.Errorf("sim: Rx=%d + Lost=%d but degree-sum is %d", r.Rx, r.Lost, rxCount)
	}
	maxDecode := 0
	reached := 0
	for i, d := range r.DecodeSlot {
		if d >= 0 {
			reached++
			if d > maxDecode && i != srcIdx {
				maxDecode = d
			}
		}
	}
	if reached != r.Reached {
		return fmt.Errorf("sim: Reached=%d but %d decode slots set", r.Reached, reached)
	}
	if r.Delay != maxDecode {
		return fmt.Errorf("sim: Delay=%d but max decode slot is %d", r.Delay, maxDecode)
	}
	ledger := radio.NewLedger(model, pkt)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	if diff := r.EnergyJ - ledger.TotalJ(); diff > 1e-12 || diff < -1e-12 {
		return fmt.Errorf("sim: EnergyJ=%g, ledger says %g", r.EnergyJ, ledger.TotalJ())
	}
	return nil
}
