package sim

import "math/bits"

// bitset is a flat []uint64 bit vector over dense node indices — the
// large-grid engine's representation for per-node boolean state
// (covered, down, relay). At a million nodes a bitset costs 128 KiB
// where a []bool costs 1 MiB and a materialized adjacency row set costs
// tens of MiB; the whole steady-state boolean footprint of a pooled
// engine is O(N) bits.
type bitset []uint64

// newBitset returns a bitset holding n bits, all clear.
func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

// sizeToBits (re)dimensions b to hold n bits, retaining capacity, and
// clears every word. The receiver-pointer form lets pooled arenas grow
// in place.
func (b *bitset) sizeToBits(n int) {
	words := (n + 63) >> 6
	if cap(*b) < words {
		*b = make(bitset, words)
		return
	}
	*b = (*b)[:words]
	clear(*b)
}

// get reports bit i.
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint32(i)&63)) != 0 }

// set sets bit i.
func (b bitset) set(i int32) { b[i>>6] |= 1 << (uint32(i) & 63) }

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// nextZero returns the index of the first clear bit >= from, or limit
// if none exists below it. Word-skipping: a fully set word — the
// steady state of a covered vector on an almost-fully-reached mesh —
// costs one compare for 64 nodes.
func (b bitset) nextZero(from int32, limit int32) int32 {
	if from >= limit {
		return limit
	}
	wi := int(from >> 6)
	// Mask off bits below from in the first word by treating them as set.
	w := b[wi] | (1<<(uint32(from)&63) - 1)
	for {
		if w != ^uint64(0) {
			i := int32(wi<<6 + bits.TrailingZeros64(^w))
			if i >= limit {
				return limit
			}
			return i
		}
		wi++
		if wi >= len(b) {
			return limit
		}
		w = b[wi]
	}
}
