package sim_test

// Micro-benchmarks of the broadcast engine's hot path: one sim.Run on
// each canonical 512-node topology with the paper's protocol, plus the
// repair-heavy (flooding), lossy-channel and failed-node variants the
// Monte Carlo engine replays thousands of times. These are the
// benchstat units `make benchstat` compares against bench/baseline.txt
// (pinned before the slot-scheduler/arena/relay-plan overhaul). Run:
//
//	go test ./internal/sim -bench=Engine -benchmem -run=^$

import (
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// center returns the canonical center source of a mesh, matching the
// wsnmc default.
func center(t grid.Topology) grid.Coord {
	m, n, l := t.Size()
	return grid.C3((m+1)/2, (n+1)/2, (l+1)/2)
}

// BenchmarkEngine measures one paper-protocol broadcast on each
// canonical 512-node topology.
func BenchmarkEngine(b *testing.B) {
	for _, k := range grid.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			topo := grid.Canonical(k)
			proto := core.ForTopology(k)
			src := center(topo)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(topo, proto, src, sim.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineFlooding measures the repair-heavy path: blind
// flooding on the canonical 2D-4 mesh collides massively and drives
// the scheduler through many replay rounds.
func BenchmarkEngineFlooding(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	proto := core.NewFlooding()
	src := center(topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(topo, proto, src, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLossy measures the stochastic-channel path the Monte
// Carlo engine replays per replication: canonical 2D-4, 10% loss.
func BenchmarkEngineLossy(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	proto := core.ForTopology(grid.Mesh2D4)
	src := center(topo)
	cfg := sim.Config{Channel: sim.NewBernoulliLoss(42, 0.1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(topo, proto, src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDown measures the failed-node path (private mutable
// adjacency): canonical 2D-4 with 5% sampled failures.
func BenchmarkEngineDown(b *testing.B) {
	topo := grid.Canonical(grid.Mesh2D4)
	proto := core.ForTopology(grid.Mesh2D4)
	src := center(topo)
	cfg := sim.Config{Down: sim.SampleFailures(topo, src, 7, 0.05)}
	if len(cfg.Down) == 0 {
		b.Fatal("no sampled failures")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(topo, proto, src, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSmall measures a small mesh where fixed per-Run setup
// cost dominates over per-slot work.
func BenchmarkEngineSmall(b *testing.B) {
	topo := grid.NewMesh2D4(8, 8)
	proto := core.ForTopology(grid.Mesh2D4)
	src := center(topo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(topo, proto, src, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
