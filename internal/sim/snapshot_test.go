package sim

import (
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// A snapshot replayed on the same topology/source reproduces the
// original run exactly — including any planned repairs, now baked into
// the roles.
func TestSnapshotReplaysExactly(t *testing.T) {
	topo := grid.NewMesh2D4(12, 9)
	src := grid.C2(5, 4)
	snap, orig, err := Snapshot(topo, allRelay("flood"), src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(topo, src); err != nil {
		t.Fatal(err)
	}
	replay, err := Run(topo, snap, src, Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Tx != orig.Tx || replay.Rx != orig.Rx || replay.Delay != orig.Delay {
		t.Errorf("replay Tx/Rx/Delay = %d/%d/%d, original %d/%d/%d",
			replay.Tx, replay.Rx, replay.Delay, orig.Tx, orig.Rx, orig.Delay)
	}
	if !replay.FullyReached() {
		t.Error("replay incomplete")
	}
	if replay.Repairs != 0 {
		t.Errorf("replay needed %d repairs — snapshot should have frozen them", replay.Repairs)
	}
	for i := range replay.TxSlots {
		if len(replay.TxSlots[i]) != len(orig.TxSlots[i]) {
			t.Fatalf("node %v: replay tx count %d != original %d",
				topo.At(i), len(replay.TxSlots[i]), len(orig.TxSlots[i]))
		}
		for k := range replay.TxSlots[i] {
			if replay.TxSlots[i][k] != orig.TxSlots[i][k] {
				t.Fatalf("node %v: tx slot %d differs", topo.At(i), k)
			}
		}
	}
	if err := replay.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotValidateMismatch(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(4, 4)
	snap, _, err := Snapshot(topo, allRelay("flood"), src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(grid.NewMesh2D4(9, 9), src); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := snap.Validate(topo, grid.C2(1, 1)); err == nil {
		t.Error("source mismatch accepted")
	}
	if err := snap.Validate(grid.NewMesh2D8(8, 8), src); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestSnapshotName(t *testing.T) {
	topo := grid.NewMesh2D4(4, 4)
	snap, _, err := Snapshot(topo, allRelay("flood"), grid.C2(2, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name() != "flood-snapshot" {
		t.Errorf("name = %q", snap.Name())
	}
	if snap.Source() != grid.C2(2, 2) {
		t.Errorf("source = %v", snap.Source())
	}
}
