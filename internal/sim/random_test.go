package sim

import (
	"math"
	"reflect"
	"testing"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// The keyed draws are part of the wire-visible contract: a replication
// seed must reproduce its byte-identical report forever, so the PRNG's
// exact outputs are pinned here. If these values ever change, every
// published reliability curve silently changes with them.
func TestKeyedDrawsPinned(t *testing.T) {
	pins := []struct {
		words []uint64
		want  uint64
	}{
		{[]uint64{0}, keyedUint64(0)},
		{[]uint64{1, 2, 3}, keyedUint64(1, 2, 3)},
	}
	// Self-consistency (same words, same draw) plus divergence.
	for _, p := range pins {
		if got := keyedUint64(p.words...); got != p.want {
			t.Errorf("keyedUint64(%v) not stable: %d vs %d", p.words, got, p.want)
		}
	}
	if keyedUint64(1, 2) == keyedUint64(2, 1) {
		t.Error("keyed draw ignores word order")
	}
	if keyedUint64(1, 2) == keyedUint64(2, 1+golden) {
		t.Error("adjacent word pairs collide")
	}
	// Absolute pins: the splitmix64 chain must not drift across
	// refactors or Go versions.
	if got := keyedUint64(42, domainLoss, 7, 3, 4); got != 0x1ba1eebe8788012d {
		t.Errorf("keyedUint64(42, loss, 7, 3, 4) = %#x (pinned value drifted)", got)
	}
	if u := keyedUnit(42, domainFailure, 9); u < 0 || u >= 1 {
		t.Errorf("keyedUnit out of [0,1): %g", u)
	}
}

func TestBernoulliLossBasics(t *testing.T) {
	if NewBernoulliLoss(1, 0) != nil {
		t.Error("rate 0 should return the nil (perfect) channel")
	}
	ch := NewBernoulliLoss(1, 0.3)
	if ch == nil {
		t.Fatal("rate 0.3 returned nil channel")
	}
	// Pure function: repeated evaluation agrees.
	for slot := 0; slot < 50; slot++ {
		if ch.Deliver(slot, 1, 2) != ch.Deliver(slot, 1, 2) {
			t.Fatalf("Deliver not deterministic at slot %d", slot)
		}
	}
	// Empirical rate over many independent links.
	lost := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !ch.Deliver(i, 3, 4) {
			lost++
		}
	}
	if f := float64(lost) / n; math.Abs(f-0.3) > 0.02 {
		t.Errorf("empirical loss rate %g, want ~0.3", f)
	}
	// Common-random-numbers coupling: raising the rate only removes
	// deliveries, never adds them.
	lo, hi := NewBernoulliLoss(9, 0.1), NewBernoulliLoss(9, 0.4)
	for i := 0; i < 5000; i++ {
		if hi.Deliver(i, 1, 2) && !lo.Deliver(i, 1, 2) {
			t.Fatal("delivery at rate 0.4 that is lost at rate 0.1 (coupling broken)")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rate not rejected")
		}
	}()
	NewBernoulliLoss(0, 1.5)
}

func TestSampleFailures(t *testing.T) {
	topo := grid.NewMesh2D4(32, 16)
	src := grid.C2(16, 8)
	if down := SampleFailures(topo, src, 7, 0); down != nil {
		t.Errorf("rate 0 sampled %d failures", len(down))
	}
	down := SampleFailures(topo, src, 7, 0.1)
	again := SampleFailures(topo, src, 7, 0.1)
	if !reflect.DeepEqual(down, again) {
		t.Error("failure sampling not deterministic")
	}
	for _, c := range down {
		if c == src {
			t.Fatal("source sampled as failed")
		}
	}
	if f := float64(len(down)) / float64(topo.NumNodes()-1); math.Abs(f-0.1) > 0.05 {
		t.Errorf("empirical failure rate %g, want ~0.1", f)
	}
	// Monotone coupling: every node down at 0.1 is down at 0.3.
	more := SampleFailures(topo, src, 7, 0.3)
	set := make(map[grid.Coord]bool, len(more))
	for _, c := range more {
		set[c] = true
	}
	for _, c := range down {
		if !set[c] {
			t.Fatalf("node %s down at rate 0.1 but alive at 0.3", c)
		}
	}
	// Per-node keying: draws are independent of the source position.
	other := SampleFailures(topo, grid.C2(1, 1), 7, 0.1)
	asSet := func(cs []grid.Coord) map[grid.Coord]bool {
		m := make(map[grid.Coord]bool, len(cs))
		for _, c := range cs {
			m[c] = true
		}
		return m
	}
	a, b := asSet(down), asSet(other)
	for c := range a {
		if c != grid.C2(1, 1) && !b[c] {
			t.Fatalf("moving the source changed node %s's failure draw", c)
		}
	}
}

// A lossy run keeps the engine's accounting exact: Rx + Lost equals the
// error-free degree sum, Validate passes, and loss rate 0 is
// byte-identical to the deterministic path.
func TestLossyRunAccounting(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	lossy, err := Run(topo, allRelay("flood"), src, Config{
		DisableRepair: true,
		Channel:       NewBernoulliLoss(3, 0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Lost == 0 {
		t.Error("20% loss dropped nothing")
	}
	if err := lossy.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatal(err)
	}
	clean, err := Run(topo, allRelay("flood"), src, Config{
		DisableRepair: true,
		Channel:       NewBernoulliLoss(3, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(topo, allRelay("flood"), src, Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, base) {
		t.Error("loss rate 0 differs from the deterministic engine")
	}
}

// With repair enabled the scheduler retries through the loss until the
// live connected component is covered — lost repairs simply re-plan.
func TestLossyRunWithRepair(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	for seed := uint64(0); seed < 10; seed++ {
		r, err := Run(topo, allRelay("flood"), grid.C2(4, 4), Config{
			Channel: NewBernoulliLoss(seed, 0.15),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.FullyReached() {
			t.Errorf("seed %d: repair left %d/%d reached", seed, r.Reached, r.Total)
		}
		if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property test over seeds for the Down x loss interaction: sampled
// failures merged into Config.Down must contribute neither loss-RNG
// draws nor receptions — no trace event of any kind touches a down
// node — and the Total/Down split must stay exact.
func TestDownLossInteractionProperty(t *testing.T) {
	topo := grid.NewMesh2D4(10, 6)
	src := grid.C2(5, 3)
	for seed := uint64(0); seed < 25; seed++ {
		down := SampleFailures(topo, src, seed, 0.12)
		var events []Event
		r, err := Run(topo, allRelay("flood"), src, Config{
			Down:          down,
			DisableRepair: true,
			Channel:       NewBernoulliLoss(seed, 0.1),
			Trace:         CollectTrace(&events),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Down != len(down) || r.Total != topo.NumNodes()-len(down) {
			t.Fatalf("seed %d: Total=%d Down=%d for %d sampled failures on %d nodes",
				seed, r.Total, r.Down, len(down), topo.NumNodes())
		}
		downSet := make(map[grid.Coord]bool, len(down))
		for _, c := range down {
			downSet[c] = true
		}
		for _, ev := range events {
			if downSet[ev.Node] {
				t.Fatalf("seed %d: down node %s appears in trace as %s", seed, ev.Node, ev.Kind)
			}
		}
		for _, c := range down {
			i := topo.Index(c)
			if r.DecodeSlot[i] >= 0 || len(r.TxSlots[i]) > 0 || r.PerNodeEnergyJ[i] != 0 {
				t.Fatalf("seed %d: down node %s participated", seed, c)
			}
		}
		if err := r.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// PerNodeEnergyJ is indexed by dense node id over the whole mesh, so
// the heatmap and lifetime layers can use t.Index directly even when
// nodes are down.
func TestPerNodeEnergyDenseIndexing(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	r, err := Run(topo, allRelay("flood"), grid.C2(1, 1),
		Config{Down: []grid.Coord{grid.C2(6, 6), grid.C2(3, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerNodeEnergyJ) != topo.NumNodes() {
		t.Fatalf("PerNodeEnergyJ length %d, want %d (dense)", len(r.PerNodeEnergyJ), topo.NumNodes())
	}
	if e := r.PerNodeEnergyJ[topo.Index(grid.C2(3, 3))]; e != 0 {
		t.Errorf("down node spent %g J", e)
	}
	if e := r.PerNodeEnergyJ[topo.Index(grid.C2(1, 1))]; e == 0 {
		t.Error("source spent nothing")
	}
}
