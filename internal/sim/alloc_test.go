package sim_test

// Allocation-budget regression tests: the engine overhaul's pooled
// arena promises that a steady-state sim.Run allocates only what
// escapes into the Result — the Result itself, the DecodeSlot copy,
// the TxSlots headers plus one flat backing array, and PerNodeEnergyJ.
// These tests pin that budget absolutely and relative to the preserved
// reference engine (the issue's >= 5x reduction criterion), so a
// future change that quietly reintroduces per-run allocation fails
// loudly.

import (
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// steadyStateAllocs measures allocations per Run after a warm-up run
// that populates the engine pool, adjacency cache and relay-plan
// cache. Averaged over many runs so a concurrent GC emptying the
// sync.Pool mid-measurement cannot flip the verdict.
func steadyStateAllocs(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord, cfg sim.Config,
	run func(grid.Topology, sim.Protocol, grid.Coord, sim.Config) (*sim.Result, error)) float64 {
	t.Helper()
	if _, err := run(topo, p, src, cfg); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	return testing.AllocsPerRun(100, func() {
		if _, err := run(topo, p, src, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRunAllocationBudget pins the absolute steady-state budget on the
// canonical 512-node meshes: at most 8 allocations per Run (5-7 in
// practice; slack for a pool miss after a GC).
func TestRunAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse and allocates for instrumentation; budget holds only in normal builds")
	}
	for _, k := range grid.Kinds() {
		topo := grid.Canonical(k)
		src := topo.At(topo.NumNodes() / 2)
		allocs := steadyStateAllocs(t, topo, core.ForTopology(k), src, sim.Config{}, sim.Run)
		if allocs > 8 {
			t.Errorf("%s: %.1f allocs per steady-state Run, budget is 8", k, allocs)
		}
	}
}

// TestRunAllocationReduction enforces the issue's acceptance bar:
// steady-state allocs/op at least 5x below the reference engine, on
// both the deterministic and the lossy path.
func TestRunAllocationReduction(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse and allocates for instrumentation; ratio holds only in normal builds")
	}
	topo := grid.Canonical(grid.Mesh2D4)
	src := topo.At(topo.NumNodes() / 2)
	p := core.ForTopology(grid.Mesh2D4)
	for name, cfg := range map[string]sim.Config{
		"lossless": {},
		"lossy":    {Channel: sim.NewBernoulliLoss(9, 0.1)},
	} {
		newAllocs := steadyStateAllocs(t, topo, p, src, cfg, sim.Run)
		refAllocs := steadyStateAllocs(t, topo, p, src, cfg, sim.RunReference)
		if newAllocs*5 > refAllocs {
			t.Errorf("%s: optimized Run allocates %.1f/op vs reference %.1f/op — less than the required 5x reduction",
				name, newAllocs, refAllocs)
		}
	}
}
