package sim

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130)
	if len(b) != 3 {
		t.Fatalf("130 bits should take 3 words, got %d", len(b))
	}
	for _, i := range []int32{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set after set", i)
		}
	}
	if b.count() != 8 {
		t.Fatalf("count = %d, want 8", b.count())
	}
	b.sizeToBits(130)
	if b.count() != 0 {
		t.Fatalf("sizeToBits did not clear: count = %d", b.count())
	}
	b.sizeToBits(1024)
	if len(b) != 16 || b.count() != 0 {
		t.Fatalf("grow to 1024 bits: len=%d count=%d", len(b), b.count())
	}
}

// TestBitsetNextZero checks the word-skipping scan against a naive
// reference on randomized patterns, including the all-set and all-clear
// extremes and out-of-range froms.
func TestBitsetNextZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := int32(rng.Intn(300) + 1)
		b := newBitset(int(n))
		ref := make([]bool, n)
		density := rng.Float64()
		for i := int32(0); i < n; i++ {
			if rng.Float64() < density {
				b.set(i)
				ref[i] = true
			}
		}
		for from := int32(0); from <= n+2; from++ {
			want := n
			for i := from; i < n; i++ {
				if !ref[i] {
					want = i
					break
				}
			}
			if got := b.nextZero(from, n); got != want {
				t.Fatalf("n=%d from=%d: nextZero=%d, want %d", n, from, got, want)
			}
		}
	}
}
