package sim

import (
	"reflect"
	"sync"

	"wsnbcast/internal/grid"
)

// A relayPlan is the compiled form of a Protocol on one (topology,
// source): the per-node answers of IsRelay, TxDelay (clamped to >= 1)
// and Retransmits (offsets < 1 dropped), which the Protocol interface
// documents as pure functions of (topology, source, node). The engine
// consults the plan on every decode, turning three interface calls —
// and whatever slice Retransmits allocates — into array lookups. A
// plan is built once per Run and, for cacheable keys, shared read-only
// across every Run of the same (kind, size, protocol, source), exactly
// like adjCache shares adjacency: across the thousands of runs of a
// sweep or a Monte Carlo grid the rules are compiled exactly once.
type relayPlan struct {
	relay bitset
	delay []int32 // first tx = decode slot + delay[i]; valid when relay set
	// retr holds every node's retransmission offsets concatenated;
	// node i's are retr[retrIdx[i]:retrIdx[i+1]]. The source's entry is
	// populated even when the source is not a relay (the engine
	// schedules source retransmissions unconditionally).
	retr    []int
	retrIdx []int32
}

// isRelay reports the compiled IsRelay answer for node i.
func (pl *relayPlan) isRelay(i int32) bool { return pl.relay.get(i) }

// retransmits returns node i's retransmission offsets (already
// filtered to >= 1).
func (pl *relayPlan) retransmits(i int32) []int {
	return pl.retr[pl.retrIdx[i]:pl.retrIdx[i+1]]
}

// planKey identifies a cached relay plan. The protocol value itself is
// part of the key (dynamic type and value both participate in
// equality), so two configurations of one protocol type — say
// different gossip probabilities — never share a plan.
type planKey struct {
	kind    grid.Kind
	m, n, l int
	src     int // dense source index
	proto   Protocol
}

// planCache memoizes compiled relay plans, keyed like adjCache. Only
// regular topologies qualify (an Irregular mesh is not determined by
// its kind and size), and only protocols whose dynamic type is a
// comparable non-pointer value: comparability is required to form the
// key at all, and pointer identity is excluded so short-lived protocol
// instances (e.g. snapshots) cannot grow the cache without bound.
var planCache sync.Map // planKey -> *relayPlan

// planCacheable reports whether p can participate in a planKey.
func planCacheable(p Protocol) bool {
	t := reflect.TypeOf(p)
	return t != nil && t.Kind() != reflect.Pointer && t.Comparable()
}

// bigPlanCache is the large-grid plan cache: a tiny mutex-guarded LRU
// instead of the unbounded sync.Map. A compiled plan for a 1M-node
// mesh is ~5 MiB; pinning one per (size, source, protocol) forever —
// the sync.Map policy, fine below largeGridNodes — would let a source
// sweep hold gigabytes. Caching is still required at scale: protocols
// allocate in Retransmits per relay node, so compiling per Run would
// blow the steady-state allocation budget the engine promises.
const bigPlanCacheCap = 4

var (
	bigPlanMu      sync.Mutex
	bigPlanEntries []bigPlanEntry // least-recently-used first
)

type bigPlanEntry struct {
	key planKey
	pl  *relayPlan
}

func bigPlanFor(key planKey, compile func() *relayPlan) *relayPlan {
	bigPlanMu.Lock()
	for i := range bigPlanEntries {
		if bigPlanEntries[i].key == key {
			e := bigPlanEntries[i]
			bigPlanEntries = append(append(bigPlanEntries[:i], bigPlanEntries[i+1:]...), e)
			bigPlanMu.Unlock()
			return e.pl
		}
	}
	bigPlanMu.Unlock()
	pl := compile() // outside the lock: compilation is O(N) interface calls
	bigPlanMu.Lock()
	defer bigPlanMu.Unlock()
	for i := range bigPlanEntries { // a concurrent compile may have won
		if bigPlanEntries[i].key == key {
			return bigPlanEntries[i].pl
		}
	}
	bigPlanEntries = append(bigPlanEntries, bigPlanEntry{key, pl})
	if len(bigPlanEntries) > bigPlanCacheCap {
		bigPlanEntries = append(bigPlanEntries[:0], bigPlanEntries[1:]...)
	}
	return pl
}

// planFor returns the compiled relay plan for (t, p, src), from the
// cache when the key qualifies.
func planFor(t grid.Topology, p Protocol, src grid.Coord) *relayPlan {
	srcIdx := t.Index(src)
	if t.Kind() == grid.Irregular || !planCacheable(p) {
		return compilePlan(t, p, src, srcIdx)
	}
	m, n, l := t.Size()
	key := planKey{kind: t.Kind(), m: m, n: n, l: l, src: srcIdx, proto: p}
	if t.NumNodes() >= largeGridNodes {
		return bigPlanFor(key, func() *relayPlan { return compilePlan(t, p, src, srcIdx) })
	}
	if v, ok := planCache.Load(key); ok {
		return v.(*relayPlan)
	}
	// Concurrent first access may compile twice; LoadOrStore keeps one.
	v, _ := planCache.LoadOrStore(key, compilePlan(t, p, src, srcIdx))
	return v.(*relayPlan)
}

// compilePlan evaluates the protocol's rules for every node. The call
// pattern matches the engine's: TxDelay and Retransmits are consulted
// only for relays, plus Retransmits for the source (scheduled
// unconditionally at startup).
func compilePlan(t grid.Topology, p Protocol, src grid.Coord, srcIdx int) *relayPlan {
	v := t.NumNodes()
	pl := &relayPlan{
		relay:   newBitset(v),
		delay:   make([]int32, v),
		retrIdx: make([]int32, v+1),
	}
	for i := 0; i < v; i++ {
		c := t.At(i)
		var offs []int
		if p.IsRelay(t, src, c) {
			pl.relay.set(int32(i))
			d := p.TxDelay(t, src, c)
			if d < 1 {
				d = 1
			}
			pl.delay[i] = int32(d)
			offs = p.Retransmits(t, src, c)
		} else if i == srcIdx {
			offs = p.Retransmits(t, src, c)
		}
		for _, off := range offs {
			if off >= 1 {
				pl.retr = append(pl.retr, off)
			}
		}
		pl.retrIdx[i+1] = int32(len(pl.retr))
	}
	return pl
}
