package sim

import (
	"reflect"
	"sync"

	"wsnbcast/internal/grid"
)

// A relayPlan is the compiled form of a Protocol on one (topology,
// source): the per-node answers of IsRelay, TxDelay (clamped to >= 1)
// and Retransmits (offsets < 1 dropped), which the Protocol interface
// documents as pure functions of (topology, source, node). The engine
// consults the plan on every decode, turning three interface calls —
// and whatever slice Retransmits allocates — into array lookups. A
// plan is built once per Run and, for cacheable keys, shared read-only
// across every Run of the same (kind, size, protocol, source), exactly
// like adjCache shares adjacency: across the thousands of runs of a
// sweep or a Monte Carlo grid the rules are compiled exactly once.
type relayPlan struct {
	relay []bool
	delay []int // first tx = decode slot + delay[i]; valid when relay[i]
	// retr holds every node's retransmission offsets concatenated;
	// node i's are retr[retrIdx[i]:retrIdx[i+1]]. The source's entry is
	// populated even when the source is not a relay (the engine
	// schedules source retransmissions unconditionally).
	retr    []int
	retrIdx []int32
}

// retransmits returns node i's retransmission offsets (already
// filtered to >= 1).
func (pl *relayPlan) retransmits(i int32) []int {
	return pl.retr[pl.retrIdx[i]:pl.retrIdx[i+1]]
}

// planKey identifies a cached relay plan. The protocol value itself is
// part of the key (dynamic type and value both participate in
// equality), so two configurations of one protocol type — say
// different gossip probabilities — never share a plan.
type planKey struct {
	kind    grid.Kind
	m, n, l int
	src     int // dense source index
	proto   Protocol
}

// planCache memoizes compiled relay plans, keyed like adjCache. Only
// regular topologies qualify (an Irregular mesh is not determined by
// its kind and size), and only protocols whose dynamic type is a
// comparable non-pointer value: comparability is required to form the
// key at all, and pointer identity is excluded so short-lived protocol
// instances (e.g. snapshots) cannot grow the cache without bound.
var planCache sync.Map // planKey -> *relayPlan

// planCacheable reports whether p can participate in a planKey.
func planCacheable(p Protocol) bool {
	t := reflect.TypeOf(p)
	return t != nil && t.Kind() != reflect.Pointer && t.Comparable()
}

// planFor returns the compiled relay plan for (t, p, src), from the
// cache when the key qualifies.
func planFor(t grid.Topology, p Protocol, src grid.Coord) *relayPlan {
	srcIdx := t.Index(src)
	if t.Kind() == grid.Irregular || !planCacheable(p) {
		return compilePlan(t, p, src, srcIdx)
	}
	m, n, l := t.Size()
	key := planKey{kind: t.Kind(), m: m, n: n, l: l, src: srcIdx, proto: p}
	if v, ok := planCache.Load(key); ok {
		return v.(*relayPlan)
	}
	// Concurrent first access may compile twice; LoadOrStore keeps one.
	v, _ := planCache.LoadOrStore(key, compilePlan(t, p, src, srcIdx))
	return v.(*relayPlan)
}

// compilePlan evaluates the protocol's rules for every node. The call
// pattern matches the engine's: TxDelay and Retransmits are consulted
// only for relays, plus Retransmits for the source (scheduled
// unconditionally at startup).
func compilePlan(t grid.Topology, p Protocol, src grid.Coord, srcIdx int) *relayPlan {
	v := t.NumNodes()
	pl := &relayPlan{
		relay:   make([]bool, v),
		delay:   make([]int, v),
		retrIdx: make([]int32, v+1),
	}
	for i := 0; i < v; i++ {
		c := t.At(i)
		var offs []int
		if p.IsRelay(t, src, c) {
			pl.relay[i] = true
			d := p.TxDelay(t, src, c)
			if d < 1 {
				d = 1
			}
			pl.delay[i] = d
			offs = p.Retransmits(t, src, c)
		} else if i == srcIdx {
			offs = p.Retransmits(t, src, c)
		}
		for _, off := range offs {
			if off >= 1 {
				pl.retr = append(pl.retr, off)
			}
		}
		pl.retrIdx[i+1] = int32(len(pl.retr))
	}
	return pl
}
