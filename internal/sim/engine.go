package sim

import (
	"fmt"
	"sync"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Config parameterizes one simulated broadcast.
type Config struct {
	// Model is the radio energy model; zero value means radio.Default().
	Model radio.Model
	// Packet is the packet length/spacing; zero value means the paper's
	// canonical 512 bits / 0.5 m.
	Packet radio.Packet
	// MaxSlots bounds the simulation; 0 means an automatic generous
	// bound. Exceeding the bound returns an error (runaway protocol).
	MaxSlots int
	// DisableRepair turns off the scheduler's repair pass; the run then
	// reports whatever reachability the protocol rules achieve on
	// their own.
	DisableRepair bool
	// MaxPlanRounds caps the repair planner's fixpoint iterations; 0
	// means an automatic bound. When the cap is hit the engine falls
	// back to serialized end-of-schedule repairs, which always
	// terminate.
	MaxPlanRounds int
	// Trace, when non-nil, receives every engine event of the final
	// schedule in deterministic order.
	Trace TraceFunc
	// Down lists failed nodes: they never transmit, hear, or decode.
	// A broadcast cannot originate at a down node. Reachability and
	// reception accounting cover the live nodes only.
	Down []grid.Coord
	// Channel, when non-nil, decides per-link reception (lossy
	// channels). It must be a pure function of (slot, tx, rx): the
	// engine replays schedules while planning repairs and relies on a
	// replayed transmission receiving the same verdict. nil is the
	// error-free channel.
	Channel Channel
}

func (c Config) withDefaults(v int) Config {
	if c.Model == (radio.Model{}) {
		c.Model = radio.Default()
	}
	if c.Packet == (radio.Packet{}) {
		c.Packet = radio.CanonicalPacket()
	}
	if c.MaxSlots == 0 {
		c.MaxSlots = 1024 + 64*v
	}
	if c.MaxPlanRounds == 0 {
		c.MaxPlanRounds = 8 + v/4
	}
	return c
}

// injection is a repair transmission planned by the scheduler: node
// transmits in the given absolute slot (provided it holds the message
// by then).
type injection struct {
	node int32
	slot int
}

// Run simulates one broadcast of protocol p from src on topology t.
//
// When the protocol's own rules leave nodes unreached (collisions the
// designated retransmissions do not cover), the scheduler repairs the
// broadcast: it deterministically plans extra retransmissions at the
// earliest conflict-free slots and replays the schedule, iterating to
// a fixpoint — the paper's premise that the topology is fixed and
// collisions predictable, applied mechanically. Every repair
// transmission is counted in Result.Repairs.
//
// Run is the optimized engine: a slot-indexed array schedule (no
// hashing on the hot path), a pooled scratch arena reset — not
// reallocated — across repair-replay rounds and reused across runs,
// and a memoized relay plan replacing the per-decode Protocol
// interface calls. RunReference preserves the original implementation;
// the differential tests prove the two produce byte-identical Results.
func Run(t grid.Topology, p Protocol, src grid.Coord, cfg Config) (*Result, error) {
	if !t.Contains(src) {
		return nil, fmt.Errorf("sim: source %s outside %s mesh", src, t.Kind())
	}
	cfg = cfg.withDefaults(t.NumNodes())
	if err := cfg.Packet.Validate(); err != nil {
		return nil, err
	}
	var down []bool
	if len(cfg.Down) > 0 {
		down = make([]bool, t.NumNodes())
		for _, c := range cfg.Down {
			if !t.Contains(c) {
				return nil, fmt.Errorf("sim: down node %s outside mesh", c)
			}
			down[t.Index(c)] = true
		}
		if down[t.Index(src)] {
			return nil, fmt.Errorf("sim: source %s is down", src)
		}
	}
	adj := buildAdjacency(t, down != nil)
	if down != nil {
		// Remove the down nodes from the radio graph entirely (adj is a
		// private copy when down != nil).
		for i := range adj {
			if down[i] {
				adj[i] = nil
				continue
			}
			kept := adj[i][:0]
			for _, nb := range adj[i] {
				if !down[nb] {
					kept = append(kept, nb)
				}
			}
			adj[i] = kept
		}
	}

	e := getEngine(t, p, planFor(t, p, src), src, cfg, adj, down)
	defer e.release()

	var inj []injection
	for round := 0; ; round++ {
		e.reset(inj)
		if err := e.drain(); err != nil {
			return nil, err
		}
		if cfg.DisableRepair || !e.anyMissing() {
			break
		}
		if round >= cfg.MaxPlanRounds {
			// Fallback: serialized repairs after all other activity.
			if err := e.appendRepair(); err != nil {
				return nil, err
			}
			break
		}
		if e.planInjections(&inj) == 0 {
			break // unreached nodes are disconnected from the source
		}
	}
	res := e.finish()
	e.flushTrace()
	return res, nil
}

// adjCache memoizes dense adjacency for the regular topologies, which
// are value types fully determined by (kind, size) — a full source
// sweep would otherwise rebuild the same lists once per source.
var adjCache sync.Map // adjKey -> [][]int32

type adjKey struct {
	kind    grid.Kind
	m, n, l int
}

// buildAdjacency returns dense neighbor lists, cached for the regular
// topologies. Callers treat the result as read-only except when they
// need to mutate it (node failures), in which case they must pass
// mutable=true to get a private copy — taken from the cached entry
// (populating it on first use) rather than rebuilt from the topology.
func buildAdjacency(t grid.Topology, mutable bool) [][]int32 {
	if t.Kind() == grid.Irregular {
		return buildAdjacencyUncached(t)
	}
	m, n, l := t.Size()
	key := adjKey{t.Kind(), m, n, l}
	v, ok := adjCache.Load(key)
	if !ok {
		// Concurrent first access may build twice; LoadOrStore keeps one.
		v, _ = adjCache.LoadOrStore(key, buildAdjacencyUncached(t))
	}
	adj := v.([][]int32)
	if !mutable {
		return adj
	}
	return copyAdjacency(adj)
}

func buildAdjacencyUncached(t grid.Topology) [][]int32 {
	v := t.NumNodes()
	adj := make([][]int32, v)
	var buf []grid.Coord
	for i := 0; i < v; i++ {
		buf = t.Neighbors(t.At(i), buf[:0])
		row := make([]int32, len(buf))
		for k, nb := range buf {
			row[k] = int32(t.Index(nb))
		}
		adj[i] = row
	}
	return adj
}

// copyAdjacency deep-copies neighbor lists into one flat backing array
// (two allocations regardless of node count). Rows are capacity-capped
// so in-place pruning of one row cannot clobber the next.
func copyAdjacency(adj [][]int32) [][]int32 {
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	flat := make([]int32, 0, total)
	out := make([][]int32, len(adj))
	for i, row := range adj {
		flat = append(flat, row...)
		out[i] = flat[len(flat)-len(row) : len(flat) : len(flat)]
	}
	return out
}

// engine holds the mutable state of one schedule replay. Engines are
// pooled (enginePool): all scratch state — decode/heard/hit vectors,
// per-node transmission logs, the slot queues, the trace buffer — is
// sized once and reset, not reallocated, across the repair-replay
// rounds of one Run and across the thousands of Runs of a sweep or
// Monte Carlo grid. Only the slices that escape into the Result are
// freshly allocated, in finish.
type engine struct {
	// Per-Run bindings, cleared on release so the pool pins nothing.
	topo   grid.Topology
	proto  Protocol
	plan   *relayPlan
	src    grid.Coord
	srcIdx int32
	cfg    Config
	nbr    [][]int32 // dense adjacency (down nodes removed)
	down   []bool    // failed nodes (nil when none)

	// Arena state, capacity retained across Runs.
	decode     []int // first-decode slot, -1 never; source 0
	heard      []int // receptions per node
	hit        []int // scratch: transmitters heard this slot
	txSlots    [][]int
	touched    []int32   // scratch: receivers hit this slot
	pending    slotQueue // protocol-scheduled transmissions
	inject     slotQueue // planned repair transmissions
	injScratch []int32   // scratch txs for injection-only slots
	traceBuf   []Event

	outstanding int
	maxSched    int // highest slot with scheduled activity so far
	last        int // highest slot processed with activity
	res         Result
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

// getEngine binds a pooled engine to one Run.
func getEngine(t grid.Topology, p Protocol, plan *relayPlan, src grid.Coord, cfg Config, adj [][]int32, down []bool) *engine {
	e := enginePool.Get().(*engine)
	e.topo = t
	e.proto = p
	e.plan = plan
	e.src = src
	e.srcIdx = int32(t.Index(src))
	e.cfg = cfg
	e.nbr = adj
	e.down = down
	e.sizeTo(t.NumNodes())
	return e
}

// release clears the per-Run references and returns the engine to the
// pool. The arena keeps its capacity; everything that escaped into the
// Result was copied out by finish.
func (e *engine) release() {
	e.topo = nil
	e.proto = nil
	e.plan = nil
	e.cfg = Config{} // drops the Trace func, Channel and Down list
	e.nbr = nil
	e.down = nil
	enginePool.Put(e)
}

// sizeTo (re)dimensions the per-node vectors for v nodes, retaining
// capacity when possible.
func (e *engine) sizeTo(v int) {
	if cap(e.decode) < v {
		e.decode = make([]int, v)
		e.heard = make([]int, v)
		e.hit = make([]int, v)
		e.txSlots = make([][]int, v)
	}
	e.decode = e.decode[:v]
	e.heard = e.heard[:v]
	e.hit = e.hit[:v]
	e.txSlots = e.txSlots[:v]
}

// reset rewinds the engine to the start of a schedule replay: clears
// the arena, seeds the source's transmissions, and loads the planned
// repair injections. Equivalent to the reference engine constructing a
// fresh state per round, without the allocations.
func (e *engine) reset(inj []injection) {
	for i := range e.decode {
		e.decode[i] = -1
	}
	clear(e.heard)
	clear(e.hit)
	for i := range e.txSlots {
		e.txSlots[i] = e.txSlots[i][:0]
	}
	e.touched = e.touched[:0]
	e.pending.reset()
	e.inject.reset()
	e.traceBuf = e.traceBuf[:0]
	e.outstanding, e.maxSched, e.last = 0, 0, 0

	e.res = Result{
		Kind:     e.topo.Kind(),
		Source:   e.src,
		Protocol: e.proto.Name(),
	}
	for _, d := range e.down {
		if d {
			e.res.Down++
		}
	}
	e.res.Total = len(e.decode) - e.res.Down
	e.decode[e.srcIdx] = 0
	e.res.Reached = 1
	e.schedule(SourceTx, e.srcIdx)
	for _, off := range e.plan.retransmits(e.srcIdx) {
		e.schedule(SourceTx+off, e.srcIdx)
	}
	for _, in := range inj {
		e.injectAt(in.slot, in.node)
	}
}

// schedule books a protocol transmission. Slots beyond MaxSlots are
// counted but not stored: drain's runaway guard trips before any such
// slot could be processed, so the bucket array stays bounded.
func (e *engine) schedule(slot int, node int32) {
	e.outstanding++
	if slot > e.maxSched {
		e.maxSched = slot
	}
	if slot > e.cfg.MaxSlots {
		return
	}
	e.pending.add(slot, node)
}

// injectAt books a planned repair transmission, same clamping as
// schedule.
func (e *engine) injectAt(slot int, node int32) {
	e.outstanding++
	if slot > e.maxSched {
		e.maxSched = slot
	}
	if slot > e.cfg.MaxSlots {
		return
	}
	e.inject.add(slot, node)
}

// drain processes slots in order until no transmissions remain
// scheduled.
func (e *engine) drain() error {
	slot := e.last
	for e.outstanding > 0 {
		if slot > e.cfg.MaxSlots {
			return fmt.Errorf("sim: %s/%s exceeded %d slots (runaway schedule)",
				e.proto.Name(), e.topo.Kind(), e.cfg.MaxSlots)
		}
		txs := e.pending.take(slot)
		injs := e.inject.take(slot)
		if txs == nil && injs == nil {
			slot++
			continue
		}
		e.outstanding -= len(txs) + len(injs)
		if injs != nil {
			fromScratch := false
			if txs == nil {
				txs = e.injScratch[:0]
				fromScratch = true
			}
			// An injection fires only if its node decoded in an earlier
			// slot: replays may shift decode times and invalidate it.
			for _, v := range injs {
				if d := e.decode[v]; d >= 0 && d < slot {
					txs = append(txs, v)
					e.res.Repairs++
					if e.cfg.Trace != nil {
						e.emit(Event{Slot: slot, Kind: EventRepair, Node: e.topo.At(int(v))})
					}
				}
			}
			if fromScratch {
				e.injScratch = txs // retain grown capacity
			}
		}
		if len(txs) == 0 {
			slot++
			continue
		}
		txs = dedupe(txs)
		e.step(slot, txs)
		e.last = slot
		slot++
	}
	return nil
}

// step executes one slot with the given transmitters.
func (e *engine) step(slot int, txs []int32) {
	tracing := e.cfg.Trace != nil
	ch := e.cfg.Channel
	touched := e.touched[:0]
	for _, tx := range txs {
		e.txSlots[tx] = append(e.txSlots[tx], slot)
		e.res.Tx++
		if tracing {
			e.emit(Event{Slot: slot, Kind: EventTx, Node: e.topo.At(int(tx))})
		}
		for _, nb := range e.nbr[tx] {
			if ch != nil && !ch.Deliver(slot, tx, nb) {
				e.res.Lost++
				if tracing {
					e.emit(Event{Slot: slot, Kind: EventLost, Node: e.topo.At(int(nb))})
				}
				continue
			}
			e.heard[nb]++
			e.res.Rx++
			if e.hit[nb] == 0 {
				touched = append(touched, nb)
			}
			e.hit[nb]++
		}
	}
	e.touched = touched
	for _, nb := range touched {
		n := e.hit[nb]
		e.hit[nb] = 0
		if n >= 2 {
			e.res.Collisions++
			if tracing {
				e.emit(Event{Slot: slot, Kind: EventCollision, Node: e.topo.At(int(nb))})
			}
			continue
		}
		if e.decode[nb] >= 0 {
			e.res.Duplicates++
			if tracing {
				e.emit(Event{Slot: slot, Kind: EventDuplicate, Node: e.topo.At(int(nb))})
			}
			continue
		}
		e.decode[nb] = slot
		e.res.Reached++
		if tracing {
			e.emit(Event{Slot: slot, Kind: EventDecode, Node: e.topo.At(int(nb))})
		}
		// The compiled relay plan answers IsRelay/TxDelay/Retransmits
		// with array lookups; delays are pre-clamped and offsets
		// pre-filtered to >= 1 at compile time.
		if e.plan.relay[nb] {
			first := slot + e.plan.delay[nb]
			e.schedule(first, nb)
			for _, off := range e.plan.retransmits(nb) {
				e.schedule(first+off, nb)
			}
		}
	}
}

func (e *engine) anyMissing() bool { return e.res.Reached < e.res.Total }

// isDown reports whether node i has failed.
func (e *engine) isDown(i int) bool { return e.down != nil && e.down[i] }

// txAt reports whether node transmitted in the given slot of this
// schedule, or is already planned to by pendingInj.
func (e *engine) txAt(node int32, slot int, pendingInj []injection) bool {
	for _, s := range e.txSlots[node] {
		if s == slot {
			return true
		}
	}
	for _, in := range pendingInj {
		if in.node == node && in.slot == slot {
			return true
		}
	}
	return false
}

// planInjections extends inj with one repair transmission per missing
// node, each placed at the earliest slot that (a) no other neighbor of
// the missing node transmits in, (b) does not destroy any first decode
// of the donor's neighbors, and (c) does not clash with repairs
// planned in this round. Returns how many injections were added.
func (e *engine) planInjections(inj *[]injection) int {
	added := 0
	var round []injection
	for u := range e.decode {
		if e.decode[u] >= 0 || e.isDown(u) {
			continue
		}
		donor := e.pickDonor(u)
		if donor < 0 {
			continue // disconnected from the decoded set
		}
		slot := e.pickSlot(int32(u), donor, round)
		round = append(round, injection{node: donor, slot: slot})
		added++
	}
	*inj = append(*inj, round...)
	return added
}

// pickDonor finds, deterministically, the earliest-decoded neighbor of
// u (ties by index).
func (e *engine) pickDonor(u int) int32 {
	best := int32(-1)
	for _, nb := range e.nbr[u] {
		if e.decode[nb] < 0 {
			continue
		}
		if best < 0 || e.decode[nb] < e.decode[best] ||
			(e.decode[nb] == e.decode[best] && nb < best) {
			best = nb
		}
	}
	return best
}

// pickSlot chooses the earliest conflict-free slot for donor to cover
// u, considering this schedule plus the repairs already planned in
// this round.
func (e *engine) pickSlot(u, donor int32, round []injection) int {
	for s := e.decode[donor] + 1; ; s++ {
		if e.conflictAt(u, donor, s, round) {
			continue
		}
		return s
	}
}

// conflictAt reports whether donor transmitting in slot s would fail
// to deliver to u or would destroy someone else's first decode.
func (e *engine) conflictAt(u, donor int32, s int, round []injection) bool {
	// Another neighbor of u (or donor itself, collided) transmits at s.
	for _, nb := range e.nbr[u] {
		if e.txAt(nb, s, round) {
			return true
		}
	}
	// A neighbor of donor first-decodes at s from a single transmitter;
	// donor's extra transmission would turn it into a collision.
	for _, w := range e.nbr[donor] {
		if e.decode[w] == s {
			return true
		}
	}
	// A repair planned this round delivers to a common neighbor at s.
	for _, in := range round {
		if in.slot != s {
			continue
		}
		for _, w := range e.nbr[donor] {
			if w == in.node {
				return true
			}
			for _, x := range e.nbr[in.node] {
				if x == w && e.decode[w] < 0 {
					return true
				}
			}
		}
	}
	return false
}

// appendRepair is the fallback when planning does not converge:
// serialized retransmissions strictly after all other activity, one
// per round, which cannot collide with anything.
func (e *engine) appendRepair() error {
	for e.res.Reached < e.res.Total {
		donor := int32(-1)
		for u := range e.decode {
			if e.decode[u] >= 0 || e.isDown(u) {
				continue
			}
			if d := e.pickDonor(u); d >= 0 {
				donor = d
				break
			}
		}
		if donor < 0 {
			return nil // disconnected topology: nothing more to do
		}
		e.injectAt(e.last+1, donor)
		if err := e.drain(); err != nil {
			return err
		}
	}
	return nil
}

// finish computes the derived metrics into a fresh Result. Only what
// escapes is allocated: the Result itself, the DecodeSlot copy, the
// TxSlots headers plus one flat backing array, and PerNodeEnergyJ —
// the arena stays with the pooled engine.
func (e *engine) finish() *Result {
	r := new(Result)
	*r = e.res
	srcIdx := int(e.srcIdx)
	for i, d := range e.decode {
		if i != srcIdx && d > r.Delay {
			r.Delay = d
		}
	}
	etx := e.cfg.Model.TxEnergyJ(e.cfg.Packet.Bits, e.cfg.Packet.NeighborDistM)
	erx := e.cfg.Model.RxEnergyJ(e.cfg.Packet.Bits)
	// Sized by dense node index (down nodes hold 0), not by live
	// count: consumers like the energy heatmap index it by t.Index.
	r.PerNodeEnergyJ = make([]float64, len(e.txSlots))
	totalTx := 0
	for i := range r.PerNodeEnergyJ {
		n := len(e.txSlots[i])
		totalTx += n
		r.PerNodeEnergyJ[i] = float64(n)*etx + float64(e.heard[i])*erx
	}
	r.TxSlots = make([][]int, len(e.txSlots))
	flat := make([]int, 0, totalTx)
	for i, s := range e.txSlots {
		if len(s) == 0 {
			continue // keep nil rows nil, like the per-round engine did
		}
		flat = append(flat, s...)
		r.TxSlots[i] = flat[len(flat)-len(s) : len(flat) : len(flat)]
	}
	r.DecodeSlot = make([]int, len(e.decode))
	copy(r.DecodeSlot, e.decode)
	ledger := radio.NewLedger(e.cfg.Model, e.cfg.Packet)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	r.EnergyJ = ledger.TotalJ()
	r.downMask = e.down
	return r
}

func (e *engine) emit(ev Event) {
	if e.cfg.Trace != nil {
		e.traceBuf = append(e.traceBuf, ev)
	}
}

// flushTrace delivers the final schedule's events. Intermediate
// planning replays are not traced.
func (e *engine) flushTrace() {
	if e.cfg.Trace == nil {
		return
	}
	for _, ev := range e.traceBuf {
		e.cfg.Trace(ev)
	}
}
