package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// Link names one undirected lattice link by its endpoint coordinates.
// The order of A and B is irrelevant: Config.DownLinks removes both
// directions from the radio graph.
type Link struct {
	A, B grid.Coord
}

// Config parameterizes one simulated broadcast.
type Config struct {
	// Model is the radio energy model; zero value means radio.Default().
	Model radio.Model
	// Packet is the packet length/spacing; zero value means the paper's
	// canonical 512 bits / 0.5 m.
	Packet radio.Packet
	// MaxSlots bounds the simulation; 0 means an automatic generous
	// bound. Exceeding the bound returns an error (runaway protocol).
	MaxSlots int
	// DisableRepair turns off the scheduler's repair pass; the run then
	// reports whatever reachability the protocol rules achieve on
	// their own.
	DisableRepair bool
	// MaxPlanRounds caps the repair planner's fixpoint iterations; 0
	// means an automatic bound. When the cap is hit the engine falls
	// back to serialized end-of-schedule repairs, which always
	// terminate.
	MaxPlanRounds int
	// Trace, when non-nil, receives every engine event of the final
	// schedule in deterministic order.
	Trace TraceFunc
	// Down lists failed nodes: they never transmit, hear, or decode.
	// A broadcast cannot originate at a down node. Reachability and
	// reception accounting cover the live nodes only.
	Down []grid.Coord
	// DownLinks lists failed (churned) undirected links: both directions
	// are removed from the radio graph before the run, exactly as Down
	// removes nodes, so the repair planner sees the true round topology
	// and never chases a donor across a dead link. Entries whose
	// endpoints are not lattice neighbors are no-ops; endpoints outside
	// the mesh are an error. Note that Result.Validate's degree-sum
	// invariant assumes the full lattice adjacency and does not hold
	// when links are removed.
	DownLinks []Link
	// Channel, when non-nil, decides per-link reception (lossy
	// channels). It must be a pure function of (slot, tx, rx): the
	// engine replays schedules while planning repairs and relies on a
	// replayed transmission receiving the same verdict. nil is the
	// error-free channel.
	Channel Channel
	// Workers bounds the intra-run worker pool that shards each slot's
	// transmitter set. 0 (or negative) means auto: serial below the
	// large-grid node threshold, min(GOMAXPROCS, 8) workers above it.
	// 1 pins the serial path. The sharded path merges per-shard deltas
	// in shard order, so the Result — traces included — is
	// byte-identical for every value; only wall-clock time changes.
	Workers int
}

func (c Config) withDefaults(v int) Config {
	if c.Model == (radio.Model{}) {
		c.Model = radio.Default()
	}
	if c.Packet == (radio.Packet{}) {
		c.Packet = radio.CanonicalPacket()
	}
	if c.MaxSlots == 0 {
		c.MaxSlots = 1024 + 64*v
	}
	if c.MaxPlanRounds == 0 {
		c.MaxPlanRounds = 8 + v/4
	}
	return c
}

// Large-grid engine thresholds. Vars, not consts, so the differential
// tests can force either path at any size; production code never
// mutates them.
var (
	// largeGridNodes is the node count at (and above) which the engine
	// switches from the cached materialized adjacency of the small-grid
	// path to implicit neighbor indexing, stops populating the unbounded
	// (kind, size)-keyed caches, and — under Workers=0 auto — enables
	// intra-run sharding. 64k nodes materialize only a few hundred KiB
	// of adjacency; one step further (256k and beyond) the lists reach
	// tens of MiB and the implicit path wins on both memory and time.
	largeGridNodes = 1 << 16
	// parallelMinTxs is the minimum transmitter count in one slot for
	// the sharded path to engage; below it the per-slot goroutine
	// handoff costs more than it saves.
	parallelMinTxs = 128
	// autoWorkersCap bounds the auto-selected worker count; slot
	// sharding is memory-bandwidth bound well before 8 workers.
	autoWorkersCap = 8
)

// effectiveWorkers resolves Config.Workers for a v-node run.
func effectiveWorkers(cfgWorkers, v int) int {
	if cfgWorkers == 1 {
		return 1
	}
	if cfgWorkers > 1 {
		return cfgWorkers
	}
	if v >= largeGridNodes {
		if w := runtime.GOMAXPROCS(0); w < autoWorkersCap {
			return w
		}
		return autoWorkersCap
	}
	return 1
}

// injection is a repair transmission planned by the scheduler: node
// transmits in the given absolute slot (provided it holds the message
// by then).
type injection struct {
	node int32
	slot int
}

// Run simulates one broadcast of protocol p from src on topology t.
//
// When the protocol's own rules leave nodes unreached (collisions the
// designated retransmissions do not cover), the scheduler repairs the
// broadcast: it deterministically plans extra retransmissions at the
// earliest conflict-free slots and replays the schedule, iterating to
// a fixpoint — the paper's premise that the topology is fixed and
// collisions predictable, applied mechanically. Every repair
// transmission is counted in Result.Repairs.
//
// Run is the optimized engine: a slot-indexed array schedule (no
// hashing on the hot path), a pooled scratch arena reset — not
// reallocated — across repair-replay rounds and reused across runs,
// and a memoized relay plan replacing the per-decode Protocol
// interface calls. Above largeGridNodes (and for every Irregular mesh)
// it additionally drops the materialized adjacency for implicit
// neighbor indexing (grid.NeighborIndexer) and, when Config.Workers
// allows, shards each slot's transmitter set across a bounded worker
// pool with shard-ordered merges. RunReference preserves the original
// implementation; the differential tests prove every path produces
// byte-identical Results.
func Run(t grid.Topology, p Protocol, src grid.Coord, cfg Config) (*Result, error) {
	e, err := runLoop(t, p, src, cfg)
	if e != nil {
		defer e.release()
	}
	if err != nil {
		return nil, err
	}
	res := e.finish()
	e.flushTrace()
	return res, nil
}

// runLoop validates the inputs, selects the neighbor source, and
// drives the schedule/repair loop to completion on a pooled engine.
// The caller owns the returned engine (finish/flushTrace/release);
// it is non-nil whenever an engine was bound, error or not.
func runLoop(t grid.Topology, p Protocol, src grid.Coord, cfg Config) (*engine, error) {
	if !t.Contains(src) {
		return nil, fmt.Errorf("sim: source %s outside %s mesh", src, t.Kind())
	}
	cfg = cfg.withDefaults(t.NumNodes())
	if err := cfg.Packet.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSlots >= math.MaxInt32 {
		// Slot state is int32 (struct-of-arrays arena); a schedule this
		// long could not be drained slot-by-slot anyway.
		return nil, fmt.Errorf("sim: MaxSlots %d exceeds the engine's int32 slot limit", cfg.MaxSlots)
	}
	var down []bool
	if len(cfg.Down) > 0 {
		down = make([]bool, t.NumNodes())
		for _, c := range cfg.Down {
			if !t.Contains(c) {
				return nil, fmt.Errorf("sim: down node %s outside mesh", c)
			}
			down[t.Index(c)] = true
		}
		if down[t.Index(src)] {
			return nil, fmt.Errorf("sim: source %s is down", src)
		}
	}

	// Neighbor source selection. Irregular meshes always go through
	// their own NeighborIndexer (the instance's adjacency is built once
	// at construction — nothing to rebuild or memoize per Run); regular
	// meshes up to largeGridNodes keep the cached materialized lists
	// (small, warm, and pruned copies are cheap under node failures);
	// everything larger iterates implicitly so steady-state engine
	// state is O(N) words + O(N) bits with no O(N*deg) table anywhere.
	var ix grid.NeighborIndexer
	var adj [][]int32
	if gix, ok := t.(grid.NeighborIndexer); ok && len(cfg.DownLinks) == 0 &&
		(t.Kind() == grid.Irregular || t.NumNodes() >= largeGridNodes) {
		ix = gix
	} else {
		// Link churn forces this materialized branch even on large and
		// Irregular meshes: implicit neighbor arithmetic cannot express a
		// graph with individual links missing, and the repair planner must
		// see the true round topology.
		adj = buildAdjacency(t, down != nil || len(cfg.DownLinks) > 0)
		if down != nil {
			// Remove the down nodes from the radio graph entirely (adj is a
			// private copy when down != nil).
			for i := range adj {
				if down[i] {
					adj[i] = nil
					continue
				}
				kept := adj[i][:0]
				for _, nb := range adj[i] {
					if !down[nb] {
						kept = append(kept, nb)
					}
				}
				adj[i] = kept
			}
		}
		for _, lk := range cfg.DownLinks {
			if !t.Contains(lk.A) || !t.Contains(lk.B) {
				return nil, fmt.Errorf("sim: down link %s-%s outside %s mesh", lk.A, lk.B, t.Kind())
			}
			a, b := int32(t.Index(lk.A)), int32(t.Index(lk.B))
			adj[a] = removeNeighbor(adj[a], b)
			adj[b] = removeNeighbor(adj[b], a)
		}
	}

	e := getEngine(t, p, planFor(t, p, src), src, cfg, ix, adj, down)
	return e, e.runSchedule()
}

// runSchedule drives the schedule/repair loop to completion on a bound
// engine: replay the schedule, plan repair injections for unreached
// nodes, iterate to a fixpoint. Shared verbatim by sim.Run and the
// round-persistent Session. The injection lists live in the pooled
// arena (injPlan), so a steady-state schedule with no repairs plans
// with zero allocations.
func (e *engine) runSchedule() error {
	inj := e.injPlan[:0]
	defer func() { e.injPlan = inj[:0] }() // retain grown capacity
	e.usedAppendRepair = false
	for round := 0; ; round++ {
		e.reset(inj)
		if err := e.drain(); err != nil {
			return err
		}
		if e.onReplay != nil {
			// Snapshot hook for the session delta cache: called once per
			// completed replay with the injection set the replay ran with,
			// before the termination checks decide whether it was final.
			e.onReplay(inj)
		}
		if e.cfg.DisableRepair || !e.anyMissing() {
			return nil
		}
		if round >= e.cfg.MaxPlanRounds {
			// Fallback: serialized repairs after all other activity. These
			// mutate state past the last replay snapshot, so delta captures
			// of this run are discarded (usedAppendRepair).
			e.usedAppendRepair = true
			return e.appendRepair()
		}
		if e.planInjections(&inj) == 0 {
			return nil // unreached nodes are disconnected from the source
		}
	}
}

// adjCache memoizes dense adjacency for the regular topologies, which
// are value types fully determined by (kind, size) — a full source
// sweep would otherwise rebuild the same lists once per source. Only
// meshes below largeGridNodes are cached: above that the optimized
// engine iterates implicitly and never asks, and pinning multi-MiB
// lists per (kind, size) forever would let a handful of large oracle
// runs hold hundreds of MiB.
var adjCache sync.Map // adjKey -> [][]int32

type adjKey struct {
	kind    grid.Kind
	m, n, l int
}

// buildAdjacency returns dense neighbor lists, cached for the regular
// topologies below the large-grid threshold. Callers treat the result
// as read-only except when they need to mutate it (node failures), in
// which case they must pass mutable=true to get a private copy — taken
// from the cached entry (populating it on first use) rather than
// rebuilt from the topology.
func buildAdjacency(t grid.Topology, mutable bool) [][]int32 {
	if t.Kind() == grid.Irregular || t.NumNodes() >= largeGridNodes {
		return buildAdjacencyUncached(t)
	}
	m, n, l := t.Size()
	key := adjKey{t.Kind(), m, n, l}
	v, ok := adjCache.Load(key)
	if !ok {
		// Concurrent first access may build twice; LoadOrStore keeps one.
		v, _ = adjCache.LoadOrStore(key, buildAdjacencyUncached(t))
	}
	adj := v.([][]int32)
	if !mutable {
		return adj
	}
	return copyAdjacency(adj)
}

func buildAdjacencyUncached(t grid.Topology) [][]int32 {
	v := t.NumNodes()
	adj := make([][]int32, v)
	var buf []int32
	for i := 0; i < v; i++ {
		buf = grid.IndexNeighbors(t, i, buf[:0])
		row := make([]int32, len(buf))
		copy(row, buf)
		adj[i] = row
	}
	return adj
}

// removeNeighbor deletes nb from a private adjacency row in place,
// preserving order. A row that does not list nb — a non-adjacent
// DownLinks pair, or a row already nil'd by node failure — comes back
// unchanged.
func removeNeighbor(row []int32, nb int32) []int32 {
	for i, v := range row {
		if v == nb {
			return append(row[:i], row[i+1:]...)
		}
	}
	return row
}

// copyAdjacency deep-copies neighbor lists into one flat backing array
// (two allocations regardless of node count). Rows are capacity-capped
// so in-place pruning of one row cannot clobber the next.
func copyAdjacency(adj [][]int32) [][]int32 {
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	flat := make([]int32, 0, total)
	out := make([][]int32, len(adj))
	for i, row := range adj {
		flat = append(flat, row...)
		out[i] = flat[len(flat)-len(row) : len(flat) : len(flat)]
	}
	return out
}

// stepShard is one contiguous chunk of a slot's transmitter set,
// processed by one worker of the sharded path. Everything a shard
// writes is either private to it (the delta counters, the hits and
// trace buffers, the neighbor scratch) or owned exclusively by one of
// its transmitters (txSlots rows — transmitters are deduplicated per
// slot, and the partition is disjoint). The serial merge then folds
// shards back IN SHARD ORDER, which reconstructs exactly the sequence
// a serial pass over the whole transmitter set would have produced:
// shard-local buffers are in serial order by construction, and every
// reception of shard s precedes every reception of shard s+1. That is
// the whole determinism argument — results are byte-identical at any
// worker count, including the trace event stream.
type stepShard struct {
	lo, hi int     // chunk bounds into the slot's txs
	rx     int     // delivered receptions
	lost   int     // channel-dropped receptions
	hits   []int32 // delivered receivers, one entry per reception, serial order
	trace  []Event // EventTx/EventLost stream of this chunk, serial order
	nbuf   []int32 // implicit-iteration scratch
}

// engine holds the mutable state of one schedule replay. Engines are
// pooled (enginePool): all scratch state — the struct-of-arrays
// decode/heard/hit vectors, the covered bitset, per-node transmission
// logs, the slot queues, the shard buffers, the trace buffer — is
// sized once and reset, not reallocated, across the repair-replay
// rounds of one Run and across the thousands of Runs of a sweep or
// Monte Carlo grid. Only the slices that escape into the Result are
// freshly allocated, in finish.
type engine struct {
	// Per-Run bindings, cleared on release so the pool pins nothing.
	topo    grid.Topology
	proto   Protocol
	plan    *relayPlan
	src     grid.Coord
	srcIdx  int32
	cfg     Config
	ix      grid.NeighborIndexer // implicit neighbor source (large grids, Irregular)
	nbr     [][]int32            // materialized adjacency (small grids; down nodes removed)
	down    []bool               // failed-node mask (nil when none); escapes into the Result
	downN   int                  // number of failed nodes
	workers int                  // resolved intra-run worker count

	// Arena state, capacity retained across Runs. Per-node scalars are
	// int32 (struct-of-arrays), per-node booleans are bitsets: the
	// steady-state footprint is O(N) words for the counters plus O(N)
	// bits for the flags, never O(N*deg).
	decode     []int32 // first-decode slot, -1 never; source 0
	covered    bitset  // decode[i] >= 0, plus padding bits set
	heard      []int32 // receptions per node
	hit        []int32 // scratch: transmitters heard this slot
	txSlots    [][]int
	touched    []int32   // scratch: receivers hit this slot
	pending    slotQueue // protocol-scheduled transmissions
	inject     slotQueue // planned repair transmissions
	injScratch []int32   // scratch txs for injection-only slots
	shards     []stepShard
	nbufStep   []int32     // serial step's neighbor scratch
	nbufA      []int32     // planner scratch: missing node's neighbors
	nbufB      []int32     // planner scratch: donor's neighbors
	nbufC      []int32     // planner scratch: planned repair's neighbors
	injPlan    []injection // accumulated repair injections across replay rounds
	injRound   []injection // planner scratch: this round's injections
	planHead   []int32     // planner index: 1+round-position of the latest injection per slot
	planPrev   []int32     // planner index: per round-position, 1+position of the previous injection at the same slot
	dedupBits  bitset      // dedupe scratch, all-zero between calls
	traceBuf   []Event

	outstanding int
	maxSched    int // highest slot with scheduled activity so far
	last        int // highest slot processed with activity
	res         Result

	// onReplay, when set, is invoked after each completed schedule
	// replay with the injection set that replay ran with. The session
	// delta cache uses it to snapshot per-replay state. usedAppendRepair
	// records that the serialized-repair fallback ran after the last
	// replay, so snapshots of this run are stale and must be dropped.
	onReplay        func(inj []injection)
	usedAppendRepair bool
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

// getEngine binds a pooled engine to one Run.
func getEngine(t grid.Topology, p Protocol, plan *relayPlan, src grid.Coord, cfg Config, ix grid.NeighborIndexer, adj [][]int32, down []bool) *engine {
	e := enginePool.Get().(*engine)
	e.topo = t
	e.proto = p
	e.plan = plan
	e.src = src
	e.srcIdx = int32(t.Index(src))
	e.cfg = cfg
	e.ix = ix
	e.nbr = adj
	e.down = down
	e.downN = 0
	for _, d := range down {
		if d {
			e.downN++
		}
	}
	e.workers = effectiveWorkers(cfg.Workers, t.NumNodes())
	e.sizeTo(t.NumNodes())
	return e
}

// release clears the per-Run references and returns the engine to the
// pool. The arena keeps its capacity; everything that escaped into the
// Result was copied out by finish.
func (e *engine) release() {
	e.topo = nil
	e.proto = nil
	e.plan = nil
	e.cfg = Config{} // drops the Trace func, Channel, Down and DownLinks lists
	e.ix = nil
	e.nbr = nil
	e.down = nil
	e.onReplay = nil
	enginePool.Put(e)
}

// sizeTo (re)dimensions the per-node vectors for v nodes, retaining
// capacity when possible.
func (e *engine) sizeTo(v int) {
	if cap(e.decode) < v {
		e.decode = make([]int32, v)
		e.heard = make([]int32, v)
		e.hit = make([]int32, v)
		e.txSlots = make([][]int, v)
	}
	e.decode = e.decode[:v]
	e.heard = e.heard[:v]
	e.hit = e.hit[:v]
	e.txSlots = e.txSlots[:v]
}

// neighborsOf returns node i's neighbor indices: the materialized row
// on the small-grid path (already pruned of down nodes), or an
// implicit emission into *buf on the large-grid path (caller filters
// down nodes, see liveFilter). The returned slice is valid until the
// next call with the same buf.
func (e *engine) neighborsOf(i int32, buf *[]int32) []int32 {
	if e.ix != nil {
		b := e.ix.IndexNeighbors(int(i), (*buf)[:0])
		*buf = b
		return b
	}
	return e.nbr[i]
}

// liveFilter returns the down mask consumers must filter against, or
// nil when no filtering is needed: the materialized path prunes down
// nodes out of the lists up front, the implicit path skips them at
// iteration time.
func (e *engine) liveFilter() []bool {
	if e.ix != nil {
		return e.down
	}
	return nil
}

// reset rewinds the engine to the start of a schedule replay: clears
// the arena, seeds the source's transmissions, and loads the planned
// repair injections. Equivalent to the reference engine constructing a
// fresh state per round, without the allocations.
func (e *engine) reset(inj []injection) {
	for i := range e.decode {
		e.decode[i] = -1
	}
	v := len(e.decode)
	e.covered.sizeToBits(v)
	for i := int32(v); i < int32(len(e.covered)<<6); i++ {
		e.covered.set(i) // padding bits read as covered by the scans
	}
	clear(e.heard)
	clear(e.hit)
	for i := range e.txSlots {
		e.txSlots[i] = e.txSlots[i][:0]
	}
	e.touched = e.touched[:0]
	e.pending.reset()
	e.inject.reset()
	e.traceBuf = e.traceBuf[:0]
	e.outstanding, e.maxSched, e.last = 0, 0, 0

	e.res = Result{
		Kind:     e.topo.Kind(),
		Source:   e.src,
		Protocol: e.proto.Name(),
		Down:     e.downN,
	}
	e.res.Total = v - e.res.Down
	e.decode[e.srcIdx] = 0
	e.covered.set(e.srcIdx)
	e.res.Reached = 1
	e.schedule(SourceTx, e.srcIdx)
	for _, off := range e.plan.retransmits(e.srcIdx) {
		e.schedule(SourceTx+off, e.srcIdx)
	}
	for _, in := range inj {
		e.injectAt(in.slot, in.node)
	}
}

// schedule books a protocol transmission. Slots beyond MaxSlots are
// counted but not stored: drain's runaway guard trips before any such
// slot could be processed, so the bucket array stays bounded.
func (e *engine) schedule(slot int, node int32) {
	e.outstanding++
	if slot > e.maxSched {
		e.maxSched = slot
	}
	if slot > e.cfg.MaxSlots {
		return
	}
	e.pending.add(slot, node)
}

// injectAt books a planned repair transmission, same clamping as
// schedule.
func (e *engine) injectAt(slot int, node int32) {
	e.outstanding++
	if slot > e.maxSched {
		e.maxSched = slot
	}
	if slot > e.cfg.MaxSlots {
		return
	}
	e.inject.add(slot, node)
}

// drain processes slots in order until no transmissions remain
// scheduled.
func (e *engine) drain() error {
	slot := e.last
	for e.outstanding > 0 {
		if slot > e.cfg.MaxSlots {
			return fmt.Errorf("sim: %s/%s exceeded %d slots (runaway schedule)",
				e.proto.Name(), e.topo.Kind(), e.cfg.MaxSlots)
		}
		txs := e.pending.take(slot)
		injs := e.inject.take(slot)
		if txs == nil && injs == nil {
			slot++
			continue
		}
		e.outstanding -= len(txs) + len(injs)
		if injs != nil {
			fromScratch := false
			if txs == nil {
				txs = e.injScratch[:0]
				fromScratch = true
			}
			// An injection fires only if its node decoded in an earlier
			// slot: replays may shift decode times and invalidate it.
			for _, v := range injs {
				if d := e.decode[v]; d >= 0 && int(d) < slot {
					txs = append(txs, v)
					e.res.Repairs++
					if e.cfg.Trace != nil {
						e.emit(Event{Slot: slot, Kind: EventRepair, Node: e.topo.At(int(v))})
					}
				}
			}
			if fromScratch {
				e.injScratch = txs // retain grown capacity
			}
		}
		if len(txs) == 0 {
			slot++
			continue
		}
		txs = e.dedupeTxs(txs)
		e.step(slot, txs)
		e.last = slot
		slot++
	}
	return nil
}

// step executes one slot with the given transmitters, sharding the set
// across the worker pool when it is large enough to pay for the
// handoff.
func (e *engine) step(slot int, txs []int32) {
	if e.workers > 1 && len(txs) >= parallelMinTxs {
		e.stepSharded(slot, txs)
		return
	}
	tracing := e.cfg.Trace != nil
	ch := e.cfg.Channel
	filter := e.liveFilter()
	touched := e.touched[:0]
	for _, tx := range txs {
		e.txSlots[tx] = append(e.txSlots[tx], slot)
		e.res.Tx++
		if tracing {
			e.emit(Event{Slot: slot, Kind: EventTx, Node: e.topo.At(int(tx))})
		}
		for _, nb := range e.neighborsOf(tx, &e.nbufStep) {
			if filter != nil && filter[nb] {
				continue
			}
			if ch != nil && !ch.Deliver(slot, tx, nb) {
				e.res.Lost++
				if tracing {
					e.emit(Event{Slot: slot, Kind: EventLost, Node: e.topo.At(int(nb))})
				}
				continue
			}
			e.heard[nb]++
			e.res.Rx++
			if e.hit[nb] == 0 {
				touched = append(touched, nb)
			}
			e.hit[nb]++
		}
	}
	e.touched = touched
	e.decodePhase(slot, touched)
}

// stepSharded is the deterministic parallel variant of the transmitter
// loop: contiguous chunks of the (deduplicated, sorted) transmitter
// set are processed concurrently, then folded back in shard order. See
// the stepShard comment for why the fold reconstructs the serial
// sequence exactly.
func (e *engine) stepSharded(slot int, txs []int32) {
	nsh := e.workers
	if maxSh := (len(txs) + parallelMinTxs - 1) / parallelMinTxs; nsh > maxSh {
		nsh = maxSh
	}
	if cap(e.shards) < nsh {
		grown := make([]stepShard, nsh)
		copy(grown, e.shards[:cap(e.shards)])
		e.shards = grown
	}
	shards := e.shards[:nsh]
	chunk := (len(txs) + nsh - 1) / nsh
	var wg sync.WaitGroup
	for s := range shards {
		sh := &shards[s]
		sh.lo = s * chunk
		if sh.lo > len(txs) {
			sh.lo = len(txs) // ceil-sized chunks can overshoot: trailing shards go empty
		}
		sh.hi = sh.lo + chunk
		if sh.hi > len(txs) {
			sh.hi = len(txs)
		}
		sh.rx, sh.lost = 0, 0
		sh.hits = sh.hits[:0]
		sh.trace = sh.trace[:0]
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.shardWork(slot, txs, sh)
		}()
	}
	wg.Wait()

	// Shard-ordered merge: counters, trace streams, then the reception
	// sequence driving heard/hit/touched — all identical to one serial
	// pass over txs.
	e.res.Tx += len(txs)
	tracing := e.cfg.Trace != nil
	touched := e.touched[:0]
	for s := range shards {
		sh := &shards[s]
		e.res.Rx += sh.rx
		e.res.Lost += sh.lost
		if tracing {
			e.traceBuf = append(e.traceBuf, sh.trace...)
		}
		for _, nb := range sh.hits {
			e.heard[nb]++
			if e.hit[nb] == 0 {
				touched = append(touched, nb)
			}
			e.hit[nb]++
		}
	}
	e.touched = touched
	e.decodePhase(slot, touched)
}

// shardWork processes one shard's transmitters. It writes only
// shard-private state and the txSlots rows of its own (deduplicated)
// transmitters; reads are of immutable per-Run state.
func (e *engine) shardWork(slot int, txs []int32, sh *stepShard) {
	tracing := e.cfg.Trace != nil
	ch := e.cfg.Channel
	filter := e.liveFilter()
	for _, tx := range txs[sh.lo:sh.hi] {
		e.txSlots[tx] = append(e.txSlots[tx], slot)
		if tracing {
			sh.trace = append(sh.trace, Event{Slot: slot, Kind: EventTx, Node: e.topo.At(int(tx))})
		}
		for _, nb := range e.neighborsOf(tx, &sh.nbuf) {
			if filter != nil && filter[nb] {
				continue
			}
			if ch != nil && !ch.Deliver(slot, tx, nb) {
				sh.lost++
				if tracing {
					sh.trace = append(sh.trace, Event{Slot: slot, Kind: EventLost, Node: e.topo.At(int(nb))})
				}
				continue
			}
			sh.rx++
			sh.hits = append(sh.hits, nb)
		}
	}
}

// decodePhase resolves the slot's touched receivers — collision,
// duplicate, or first decode with relay scheduling — in first-hit
// order. Shared verbatim by the serial and sharded paths.
func (e *engine) decodePhase(slot int, touched []int32) {
	tracing := e.cfg.Trace != nil
	for _, nb := range touched {
		n := e.hit[nb]
		e.hit[nb] = 0
		if n >= 2 {
			e.res.Collisions++
			if tracing {
				e.emit(Event{Slot: slot, Kind: EventCollision, Node: e.topo.At(int(nb))})
			}
			continue
		}
		if e.covered.get(nb) {
			e.res.Duplicates++
			if tracing {
				e.emit(Event{Slot: slot, Kind: EventDuplicate, Node: e.topo.At(int(nb))})
			}
			continue
		}
		e.decode[nb] = int32(slot)
		e.covered.set(nb)
		e.res.Reached++
		if tracing {
			e.emit(Event{Slot: slot, Kind: EventDecode, Node: e.topo.At(int(nb))})
		}
		// The compiled relay plan answers IsRelay/TxDelay/Retransmits
		// with bitset/array lookups; delays are pre-clamped and offsets
		// pre-filtered to >= 1 at compile time.
		if e.plan.relay.get(nb) {
			first := slot + int(e.plan.delay[nb])
			e.schedule(first, nb)
			for _, off := range e.plan.retransmits(nb) {
				e.schedule(first+off, nb)
			}
		}
	}
}

func (e *engine) anyMissing() bool { return e.res.Reached < e.res.Total }

// isDown reports whether node i has failed.
func (e *engine) isDown(i int32) bool { return e.down != nil && e.down[i] }

// txAt reports whether node transmitted in the given slot of this
// schedule. Injections planned in the current round are consulted
// separately through the per-slot chain index (planHead/planPrev).
func (e *engine) txAt(node int32, slot int) bool {
	for _, s := range e.txSlots[node] {
		if s == slot {
			return true
		}
	}
	return false
}

// planInjections extends inj with one repair transmission per missing
// node, each placed at the earliest slot that (a) no other neighbor of
// the missing node transmits in, (b) does not destroy any first decode
// of the donor's neighbors, and (c) does not clash with repairs
// planned in this round. Returns how many injections were added. The
// covered bitset drives the scan: fully decoded words — the common
// case on an almost-reached mesh — cost one compare per 64 nodes.
func (e *engine) planInjections(inj *[]injection) int {
	added := 0
	round := e.injRound[:0]
	e.planPrev = e.planPrev[:0]
	v := int32(len(e.decode))
	for u := e.covered.nextZero(0, v); u < v; u = e.covered.nextZero(u+1, v) {
		if e.isDown(u) {
			continue
		}
		donor := e.pickDonor(u)
		if donor < 0 {
			continue // disconnected from the decoded set
		}
		slot := e.pickSlot(u, donor, round)
		round = append(round, injection{node: donor, slot: slot})
		// Chain the new entry into the per-slot index so later pickSlot
		// calls consult only the injections sharing a candidate slot,
		// not the whole round — the scan was quadratic in repair count.
		for slot >= len(e.planHead) {
			e.planHead = append(e.planHead, 0)
		}
		e.planPrev = append(e.planPrev, e.planHead[slot])
		e.planHead[slot] = int32(len(round))
		added++
	}
	// Restore the all-zero index invariant by unwinding the touched
	// slots; a full clear would be O(maxSched) per planning round.
	for _, in := range round {
		e.planHead[in.slot] = 0
	}
	e.injRound = round[:0] // retain grown capacity
	*inj = append(*inj, round...)
	return added
}

// pickDonor finds, deterministically, the earliest-decoded neighbor of
// u (ties by index).
func (e *engine) pickDonor(u int32) int32 {
	best := int32(-1)
	filter := e.liveFilter()
	for _, nb := range e.neighborsOf(u, &e.nbufA) {
		if filter != nil && filter[nb] {
			continue
		}
		if e.decode[nb] < 0 {
			continue
		}
		if best < 0 || e.decode[nb] < e.decode[best] ||
			(e.decode[nb] == e.decode[best] && nb < best) {
			best = nb
		}
	}
	return best
}

// pickSlot chooses the earliest conflict-free slot for donor to cover
// u, considering this schedule plus the repairs already planned in
// this round.
func (e *engine) pickSlot(u, donor int32, round []injection) int {
	for s := int(e.decode[donor]) + 1; ; s++ {
		if e.conflictAt(u, donor, s, round) {
			continue
		}
		return s
	}
}

// conflictAt reports whether donor transmitting in slot s would fail
// to deliver to u or would destroy someone else's first decode.
func (e *engine) conflictAt(u, donor int32, s int, round []injection) bool {
	filter := e.liveFilter()
	// Another neighbor of u (or donor itself, collided) transmits at s.
	uNbs := e.neighborsOf(u, &e.nbufA)
	for _, nb := range uNbs {
		if filter != nil && filter[nb] {
			continue
		}
		if e.txAt(nb, s) {
			return true
		}
	}
	// A neighbor of donor first-decodes at s from a single transmitter;
	// donor's extra transmission would turn it into a collision.
	donorNbs := e.neighborsOf(donor, &e.nbufB)
	for _, w := range donorNbs {
		if filter != nil && filter[w] {
			continue
		}
		if int(e.decode[w]) == s && e.decode[w] >= 0 {
			return true
		}
	}
	// Repairs already planned this round: only the chain of injections
	// at exactly slot s can conflict — by transmitting next to u, or by
	// delivering to a common neighbor of the donor. The per-slot index
	// replaces a scan of the whole round per candidate slot.
	if s < len(e.planHead) {
		for idx := e.planHead[s]; idx > 0; idx = e.planPrev[idx-1] {
			in := round[idx-1]
			for _, nb := range uNbs {
				if nb != in.node {
					continue
				}
				if filter == nil || !filter[nb] {
					return true
				}
			}
			for _, w := range donorNbs {
				if filter != nil && filter[w] {
					continue
				}
				if w == in.node {
					return true
				}
				for _, x := range e.neighborsOf(in.node, &e.nbufC) {
					if x == w && e.decode[w] < 0 {
						return true
					}
				}
			}
		}
	}
	return false
}

// appendRepair is the fallback when planning does not converge:
// serialized retransmissions strictly after all other activity, one
// per round, which cannot collide with anything.
func (e *engine) appendRepair() error {
	v := int32(len(e.decode))
	for e.res.Reached < e.res.Total {
		donor := int32(-1)
		for u := e.covered.nextZero(0, v); u < v; u = e.covered.nextZero(u+1, v) {
			if e.isDown(u) {
				continue
			}
			if d := e.pickDonor(u); d >= 0 {
				donor = d
				break
			}
		}
		if donor < 0 {
			return nil // disconnected topology: nothing more to do
		}
		e.injectAt(e.last+1, donor)
		if err := e.drain(); err != nil {
			return err
		}
	}
	return nil
}

// resultArena holds the backing arrays of the slices a Result carries
// out of the engine. sim.Run hands finishInto an empty arena, so every
// array is freshly allocated and the Result owns its memory outright;
// a Session passes its persistent arena, so steady-state rounds write
// the same backing arrays in place and allocate nothing.
type resultArena struct {
	energy  []float64
	txSlots [][]int
	flat    []int
	decode  []int
}

// finish computes the derived metrics into a fresh Result. Only what
// escapes is allocated: the Result itself, the widened DecodeSlot
// copy, the TxSlots headers plus one flat backing array, and
// PerNodeEnergyJ — the arena stays with the pooled engine.
func (e *engine) finish() *Result {
	return e.finishInto(new(Result), &resultArena{})
}

// finishInto is finish parameterized over the Result and the backing
// arrays; see resultArena for the ownership contract. The computed
// values are identical for every arena — only who owns the memory
// changes.
func (e *engine) finishInto(r *Result, a *resultArena) *Result {
	*r = e.res
	srcIdx := int(e.srcIdx)
	for i, d := range e.decode {
		if i != srcIdx && int(d) > r.Delay {
			r.Delay = int(d)
		}
	}
	etx := e.cfg.Model.TxEnergyJ(e.cfg.Packet.Bits, e.cfg.Packet.NeighborDistM)
	erx := e.cfg.Model.RxEnergyJ(e.cfg.Packet.Bits)
	v := len(e.txSlots)
	// Sized by dense node index (down nodes hold 0), not by live
	// count: consumers like the energy heatmap index it by t.Index.
	if cap(a.energy) < v {
		a.energy = make([]float64, v)
	}
	r.PerNodeEnergyJ = a.energy[:v]
	totalTx := 0
	for i := range r.PerNodeEnergyJ {
		n := len(e.txSlots[i])
		totalTx += n
		r.PerNodeEnergyJ[i] = float64(n)*etx + float64(e.heard[i])*erx
	}
	if cap(a.txSlots) < v {
		a.txSlots = make([][]int, v)
	}
	r.TxSlots = a.txSlots[:v]
	if cap(a.flat) < totalTx {
		a.flat = make([]int, 0, totalTx)
	}
	flat := a.flat[:0]
	for i, s := range e.txSlots {
		if len(s) == 0 {
			r.TxSlots[i] = nil // keep nil rows nil, like the per-round engine did
			continue
		}
		flat = append(flat, s...)
		r.TxSlots[i] = flat[len(flat)-len(s) : len(flat) : len(flat)]
	}
	a.flat = flat[:0]
	if cap(a.decode) < v {
		a.decode = make([]int, v)
	}
	r.DecodeSlot = a.decode[:v]
	for i, d := range e.decode {
		r.DecodeSlot[i] = int(d)
	}
	ledger := radio.NewLedger(e.cfg.Model, e.cfg.Packet)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	r.EnergyJ = ledger.TotalJ()
	r.downMask = e.down
	return r
}

func (e *engine) emit(ev Event) {
	if e.cfg.Trace != nil {
		e.traceBuf = append(e.traceBuf, ev)
	}
}

// flushTrace delivers the final schedule's events. Intermediate
// planning replays are not traced.
func (e *engine) flushTrace() {
	if e.cfg.Trace == nil {
		return
	}
	for _, ev := range e.traceBuf {
		e.cfg.Trace(ev)
	}
}
