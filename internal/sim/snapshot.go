package sim

import (
	"fmt"

	"wsnbcast/internal/grid"
)

// SnapshotProtocol replays the exact transmission schedule of a
// completed broadcast, expressed relative to each node's decode time.
// It freezes the scheduler's planned repairs into ordinary protocol
// rules, so the schedule can be re-executed — or pipelined — without
// the planner. A snapshot is only meaningful for the (topology,
// source) it was taken from.
type SnapshotProtocol struct {
	name   string
	source grid.Coord
	kind   grid.Kind
	total  int
	// roles[i]: transmission plan of node i.
	roles []snapshotRole
}

type snapshotRole struct {
	relay   bool
	delay   int   // first tx = decode + delay
	offsets []int // further txs = first + offset
}

// Snapshot runs one broadcast of p from src and captures its final
// schedule (including any planned repairs) as a protocol.
func Snapshot(t grid.Topology, p Protocol, src grid.Coord, cfg Config) (*SnapshotProtocol, *Result, error) {
	r, err := Run(t, p, src, cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &SnapshotProtocol{
		name:   p.Name() + "-snapshot",
		source: src,
		kind:   t.Kind(),
		total:  t.NumNodes(),
		roles:  make([]snapshotRole, t.NumNodes()),
	}
	for i, slots := range r.TxSlots {
		if len(slots) == 0 {
			continue
		}
		d := r.DecodeSlot[i]
		if d < 0 {
			// Cannot happen for a transmitter (the engine enforces
			// decode-before-transmit), but stay defensive.
			continue
		}
		role := snapshotRole{relay: true, delay: slots[0] - d}
		if role.delay < 1 {
			role.delay = 1 // the source "decodes" in its own tx slot
		}
		for _, s2 := range slots[1:] {
			role.offsets = append(role.offsets, s2-slots[0])
		}
		s.roles[i] = role
	}
	return s, r, nil
}

// Name implements Protocol.
func (s *SnapshotProtocol) Name() string { return s.name }

// Source returns the source the snapshot was taken from.
func (s *SnapshotProtocol) Source() grid.Coord { return s.source }

// Validate reports whether the snapshot matches the given topology and
// source.
func (s *SnapshotProtocol) Validate(t grid.Topology, src grid.Coord) error {
	if t.Kind() != s.kind || t.NumNodes() != s.total {
		return fmt.Errorf("sim: snapshot taken on %v/%d nodes, used on %v/%d",
			s.kind, s.total, t.Kind(), t.NumNodes())
	}
	if src != s.source {
		return fmt.Errorf("sim: snapshot taken for source %s, used with %s", s.source, src)
	}
	return nil
}

// IsRelay implements Protocol.
func (s *SnapshotProtocol) IsRelay(t grid.Topology, _, c grid.Coord) bool {
	return s.roles[t.Index(c)].relay
}

// TxDelay implements Protocol.
func (s *SnapshotProtocol) TxDelay(t grid.Topology, _, c grid.Coord) int {
	if d := s.roles[t.Index(c)].delay; d >= 1 {
		return d
	}
	return 1
}

// Retransmits implements Protocol.
func (s *SnapshotProtocol) Retransmits(t grid.Topology, _, c grid.Coord) []int {
	return s.roles[t.Index(c)].offsets
}

var _ Protocol = (*SnapshotProtocol)(nil)
