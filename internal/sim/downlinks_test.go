package sim

import (
	"testing"

	"wsnbcast/internal/grid"
)

// A churned link is removed from the radio graph: the repair planner
// routes the broadcast around it when the graph stays connected.
func TestDownLinksRoutedAround(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	cut := []Link{
		{A: grid.C2(4, 4), B: grid.C2(5, 4)},
		{A: grid.C2(4, 4), B: grid.C2(4, 5)},
	}
	r, err := Run(topo, allRelay("flood"), src, Config{DownLinks: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !r.FullyReached() {
		t.Errorf("connected graph with cut links not fully reached: %d/%d", r.Reached, r.Total)
	}
	// Repairs may add traffic, so compare receptions with repair off:
	// a cut link then strictly removes deliveries.
	damaged, err := Run(topo, allRelay("flood"), src, Config{DownLinks: cut, DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(topo, allRelay("flood"), src, Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if damaged.Rx >= full.Rx {
		t.Errorf("Rx with cut links (%d) not below full graph (%d)", damaged.Rx, full.Rx)
	}
}

// Cutting the only link in a line partitions the far side; the engine
// reports partial reachability honestly instead of looping on repairs.
func TestDownLinksPartition(t *testing.T) {
	topo := grid.NewMesh2D4(7, 1)
	for name, cut := range map[string]Link{
		"forward":  {A: grid.C2(3, 1), B: grid.C2(4, 1)},
		"reversed": {A: grid.C2(4, 1), B: grid.C2(3, 1)},
	} {
		r, err := Run(topo, allRelay("flood"), grid.C2(1, 1), Config{DownLinks: []Link{cut}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.FullyReached() {
			t.Errorf("%s: partitioned network reported fully reached", name)
		}
		// Both directions of the undirected link must be gone regardless
		// of the endpoint order, so exactly nodes 1..3 are reached.
		if r.Reached != 3 {
			t.Errorf("%s: Reached = %d, want 3 (the near side)", name, r.Reached)
		}
	}
}

func TestDownLinksValidation(t *testing.T) {
	topo := grid.NewMesh2D4(5, 5)
	if _, err := Run(topo, allRelay("x"), grid.C2(1, 1),
		Config{DownLinks: []Link{{A: grid.C2(1, 1), B: grid.C2(9, 9)}}}); err == nil {
		t.Error("out-of-mesh link endpoint accepted")
	}
}

// A DownLinks pair that is not a lattice edge is a no-op: the result
// matches the unperturbed run exactly.
func TestDownLinksNonAdjacentNoOp(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	src := grid.C2(2, 2)
	base, err := Run(topo, allRelay("flood"), src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(topo, allRelay("flood"), src, Config{
		DownLinks: []Link{{A: grid.C2(1, 1), B: grid.C2(6, 6)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reached != base.Reached || r.Rx != base.Rx || r.Tx != base.Tx ||
		r.Delay != base.Delay || r.Collisions != base.Collisions {
		t.Errorf("non-adjacent cut changed the run: got %+v, want %+v", r, base)
	}
}

// DownLinks composes with Down: dead nodes and dead links prune the
// same private adjacency copy.
func TestDownLinksWithDownNodes(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	r, err := Run(topo, allRelay("flood"), src, Config{
		Down:      []grid.Coord{grid.C2(5, 5)},
		DownLinks: []Link{{A: grid.C2(4, 4), B: grid.C2(5, 4)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Down != 1 {
		t.Errorf("Down = %d, want 1", r.Down)
	}
	if !r.FullyReached() {
		t.Errorf("live nodes not all reached: %d/%d", r.Reached, r.Total)
	}
}

// Duplicate DownLinks entries are idempotent: the second removal of an
// already-removed neighbor is a no-op, so listing a cut once, twice,
// or with its endpoints swapped produces identical results. Pinned
// because the session layer relies on removeNeighbor's no-op behavior
// for exactly this case.
func TestDownLinksDuplicatesIdempotent(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	lk := Link{A: grid.C2(4, 4), B: grid.C2(5, 4)}
	once, err := Run(topo, allRelay("flood"), src, Config{DownLinks: []Link{lk}})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := Run(topo, allRelay("flood"), src, Config{
		DownLinks: []Link{lk, lk, {A: lk.B, B: lk.A}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Tx != once.Tx || dup.Rx != once.Rx || dup.Reached != once.Reached ||
		dup.Delay != once.Delay || dup.Collisions != once.Collisions || dup.Repairs != once.Repairs {
		t.Errorf("duplicate cut entries changed the run: got %v, want %v", dup, once)
	}
}

// A self-referential A==B entry is a no-op (a node is never its own
// lattice neighbor), not an error and not a graph change.
func TestDownLinksSelfLinkNoOp(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	src := grid.C2(2, 2)
	base, err := Run(topo, allRelay("flood"), src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(topo, allRelay("flood"), src, Config{
		DownLinks: []Link{{A: grid.C2(3, 3), B: grid.C2(3, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Tx != base.Tx || r.Rx != base.Rx || r.Reached != base.Reached || r.Delay != base.Delay {
		t.Errorf("self link changed the run: got %v, want %v", r, base)
	}
}

// A DownLinks entry whose endpoint is also in Down is redundant — the
// node failure already removed every incident link — and the result
// equals the Down-only run exactly.
func TestDownLinksAlreadySeveredByDownNode(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	downOnly, err := Run(topo, allRelay("flood"), src, Config{
		Down: []grid.Coord{grid.C2(5, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(topo, allRelay("flood"), src, Config{
		Down:      []grid.Coord{grid.C2(5, 5)},
		DownLinks: []Link{{A: grid.C2(5, 5), B: grid.C2(5, 4)}, {A: grid.C2(4, 5), B: grid.C2(5, 5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if both.Tx != downOnly.Tx || both.Rx != downOnly.Rx || both.Reached != downOnly.Reached ||
		both.Delay != downOnly.Delay || both.Down != downOnly.Down {
		t.Errorf("cutting a dead node's links changed the run: got %v, want %v", both, downOnly)
	}
}

// Link churn forces the materialized adjacency path even where the
// implicit indexer would normally engage (large grids, Irregular): the
// cut must take effect, not be silently ignored by lattice arithmetic.
func TestDownLinksForcesMaterializedPath(t *testing.T) {
	defer SetLargeGridThresholdForTest(0)() // implicit path at every size
	topo := grid.NewMesh2D4(7, 1)
	r, err := Run(topo, allRelay("flood"), grid.C2(1, 1), Config{
		DownLinks: []Link{{A: grid.C2(3, 1), B: grid.C2(4, 1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reached != 3 {
		t.Errorf("Reached = %d, want 3: cut ignored on the forced-implicit path", r.Reached)
	}
}
