package sim_test

// Session correctness suite: the round-persistent Session must be an
// exact drop-in for sim.Run at every point of any mutation sequence —
// node deaths, link cuts, link recoveries, in any order — because the
// lifetime engine's byte-identity guarantee rests on it. Each test
// drives a session through incremental mutations and compares every
// Run against a cold sim.Run handed the equivalent Down/DownLinks
// lists.

import (
	"bytes"
	"encoding/json"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// sessionHarness pairs a session with the bookkeeping needed to build
// the equivalent one-shot Config at any point of a mutation sequence.
type sessionHarness struct {
	t     *testing.T
	topo  grid.Topology
	proto sim.Protocol
	cfg   sim.Config
	sess  *sim.Session
	links []sim.IndexLink
	down  map[int]bool
	cut   map[int]bool
}

func newSessionHarness(t *testing.T, topo grid.Topology, p sim.Protocol, cfg sim.Config) *sessionHarness {
	t.Helper()
	sess, err := sim.NewSession(topo, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &sessionHarness{
		t: t, topo: topo, proto: p, cfg: cfg, sess: sess,
		links: sim.LinksOf(topo),
		down:  map[int]bool{},
		cut:   map[int]bool{},
	}
}

func (h *sessionHarness) nodeDown(i int) {
	h.t.Helper()
	if err := h.sess.SetNodeDown(i); err != nil {
		h.t.Fatal(err)
	}
	h.down[i] = true
}

func (h *sessionHarness) linkDown(id int) {
	h.t.Helper()
	if err := h.sess.SetLinkDown(id); err != nil {
		h.t.Fatal(err)
	}
	h.cut[id] = true
}

func (h *sessionHarness) linkUp(id int) {
	h.t.Helper()
	if err := h.sess.SetLinkUp(id); err != nil {
		h.t.Fatal(err)
	}
	delete(h.cut, id)
}

// oneShotConfig rebuilds the Down/DownLinks lists sim.Run would need
// for the session's current state, in deterministic dense order (the
// order the lifetime engine's roundConfig uses).
func (h *sessionHarness) oneShotConfig() sim.Config {
	cfg := h.cfg
	for i := 0; i < h.topo.NumNodes(); i++ {
		if h.down[i] {
			cfg.Down = append(cfg.Down, h.topo.At(i))
		}
	}
	for id := range h.links {
		if h.cut[id] {
			lk := h.links[id]
			cfg.DownLinks = append(cfg.DownLinks, sim.Link{A: h.topo.At(int(lk.A)), B: h.topo.At(int(lk.B))})
		}
	}
	return cfg
}

// check runs the session and the equivalent one-shot config from src
// and compares the full Results (and trace streams) byte for byte.
func (h *sessionHarness) check(src grid.Coord, label string) {
	h.t.Helper()
	var sessTrace, runTrace []sim.Event
	h.cfg.Trace = nil // session was built without a trace; compare untraced first
	got, err := h.sess.Run(src)
	if err != nil {
		h.t.Fatalf("%s: session: %v", label, err)
	}
	cfg := h.oneShotConfig()
	cfg.Trace = func(ev sim.Event) { runTrace = append(runTrace, ev) }
	want, err := sim.Run(h.topo, h.proto, src, cfg)
	if err != nil {
		h.t.Fatalf("%s: one-shot: %v", label, err)
	}
	gj, wj := mustResultJSON(h.t, got), mustResultJSON(h.t, want)
	if !bytes.Equal(gj, wj) {
		h.t.Fatalf("%s: session result differs from sim.Run:\n got %s\nwant %s", label, gj, wj)
	}
	// Trace equality needs a traced session of the same state: build one
	// fresh and replay the mutations (cheap at test sizes).
	tcfg := h.cfg
	tcfg.Trace = func(ev sim.Event) { sessTrace = append(sessTrace, ev) }
	tsess, err := sim.NewSession(h.topo, h.proto, tcfg)
	if err != nil {
		h.t.Fatal(err)
	}
	for i := range h.down {
		if err := tsess.SetNodeDown(i); err != nil {
			h.t.Fatal(err)
		}
	}
	for id := range h.cut {
		if err := tsess.SetLinkDown(id); err != nil {
			h.t.Fatal(err)
		}
	}
	if _, err := tsess.Run(src); err != nil {
		h.t.Fatalf("%s: traced session: %v", label, err)
	}
	if len(sessTrace) != len(runTrace) {
		h.t.Fatalf("%s: trace length %d vs %d", label, len(sessTrace), len(runTrace))
	}
	for i := range sessTrace {
		if sessTrace[i] != runTrace[i] {
			h.t.Fatalf("%s: trace event %d: %+v vs %+v", label, i, sessTrace[i], runTrace[i])
		}
	}
}

func mustResultJSON(t *testing.T, r *sim.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A scripted mutation sequence over every canonical topology: deaths
// and link flips interleaved, including a recovery, checked against
// the one-shot path after every step.
func TestSessionDifferentialAllKinds(t *testing.T) {
	for _, k := range grid.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			topo := grid.Canonical(k)
			src := topo.At(topo.NumNodes() / 2)
			h := newSessionHarness(t, topo, core.ForTopology(k), sim.Config{})
			h.check(src, "pristine")
			h.nodeDown(3)
			h.check(src, "one death")
			h.linkDown(7)
			h.linkDown(21)
			h.check(src, "death+cuts")
			h.linkUp(7)
			h.check(src, "recovery")
			h.nodeDown(topo.NumNodes() - 2)
			h.linkDown(2)
			h.check(src, "more churn")
			// Rotate the source: per-source plans must stay correct.
			h.check(topo.At(1), "rotated source")
		})
	}
}

// A pseudo-random churn storm on the 2D-4 mesh: many flips per step,
// links cut and restored repeatedly, occasional deaths — the exact
// access pattern of the lifetime hot loop.
func TestSessionDifferentialChurnStorm(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	nl := len(h.links)
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 12; step++ {
		for f := 0; f < 10; f++ {
			id := next(nl)
			if h.cut[id] {
				h.linkUp(id)
			} else {
				h.linkDown(id)
			}
		}
		if step%3 == 2 {
			i := next(topo.NumNodes())
			if i != topo.NumNodes()/2 && !h.down[i] {
				h.nodeDown(i)
			}
		}
		h.check(topo.At(topo.NumNodes()/2), "storm step")
	}
}

// Cutting every link of a node and restoring them all must restore the
// pristine result bytes: SetLinkUp rebuilds rows in IndexNeighbors
// order, not insertion order.
func TestSessionLinkUpRestoresPristine(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(1, 1)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	base, err := h.sess.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	want := mustResultJSON(t, base)
	// Cut a batch in one order, restore in a different order.
	cut := []int{40, 3, 17, 41, 8, 25}
	for _, id := range cut {
		h.linkDown(id)
	}
	for i := len(cut)/2 - 1; i >= 0; i-- { // restore half backwards...
		h.linkUp(cut[i])
	}
	for _, id := range cut[len(cut)/2:] { // ...and half forwards
		h.linkUp(id)
	}
	got, err := h.sess.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if gj := mustResultJSON(t, got); !bytes.Equal(gj, want) {
		t.Fatalf("restored session differs from pristine:\n got %s\nwant %s", gj, want)
	}
}

// Reset revives everything at once.
func TestSessionReset(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	src := grid.C2(4, 4)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	base, err := h.sess.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	want := mustResultJSON(t, base)
	h.nodeDown(10)
	h.linkDown(5)
	h.sess.Reset()
	got, err := h.sess.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if gj := mustResultJSON(t, got); !bytes.Equal(gj, want) {
		t.Fatalf("reset session differs from pristine:\n got %s\nwant %s", gj, want)
	}
	if h.sess.NodeDown(10) || h.sess.LinkDown(5) {
		t.Error("Reset left node/link state set")
	}
}

// Mutations are idempotent and link ids match the LinksOf table.
func TestSessionMutationIdempotence(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	sess, err := sim.NewSession(topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	links := sim.LinksOf(topo)
	if sess.NumLinks() != len(links) {
		t.Fatalf("NumLinks = %d, LinksOf has %d", sess.NumLinks(), len(links))
	}
	for id := range links {
		if sess.Link(id) != links[id] {
			t.Fatalf("link %d = %+v, LinksOf says %+v", id, sess.Link(id), links[id])
		}
	}
	for i := 0; i < 3; i++ { // repeat everything: second calls must no-op
		if err := sess.SetNodeDown(7); err != nil {
			t.Fatal(err)
		}
		if err := sess.SetLinkDown(4); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.NodeDown(7) || !sess.LinkDown(4) {
		t.Error("mutations not recorded")
	}
	got, err := sess.Run(grid.C2(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	lk := links[4]
	want, err := sim.Run(topo, core.ForTopology(grid.Mesh2D4), grid.C2(1, 1), sim.Config{
		Down:      []grid.Coord{topo.At(7)},
		DownLinks: []sim.Link{{A: topo.At(int(lk.A)), B: topo.At(int(lk.B))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustResultJSON(t, got), mustResultJSON(t, want)) {
		t.Error("idempotent mutations produced a different result")
	}
}

// Error cases mirror sim.Run: bad source coordinates, a down source,
// out-of-range mutation targets, and owned config fields.
func TestSessionErrors(t *testing.T) {
	topo := grid.NewMesh2D4(6, 6)
	p := core.ForTopology(grid.Mesh2D4)
	if _, err := sim.NewSession(topo, p, sim.Config{Down: []grid.Coord{grid.C2(1, 1)}}); err == nil {
		t.Error("session accepted Config.Down")
	}
	if _, err := sim.NewSession(topo, p, sim.Config{DownLinks: []sim.Link{{A: grid.C2(1, 1), B: grid.C2(2, 1)}}}); err == nil {
		t.Error("session accepted Config.DownLinks")
	}
	sess, err := sim.NewSession(topo, p, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(grid.C2(99, 99)); err == nil {
		t.Error("out-of-mesh source accepted")
	}
	if err := sess.SetNodeDown(8); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(topo.At(8)); err == nil {
		t.Error("down source accepted")
	}
	if err := sess.SetNodeDown(-1); err == nil {
		t.Error("negative node index accepted")
	}
	if err := sess.SetNodeDown(topo.NumNodes()); err == nil {
		t.Error("out-of-range node index accepted")
	}
	if err := sess.SetLinkDown(-1); err == nil {
		t.Error("negative link id accepted")
	}
	if err := sess.SetLinkUp(sess.NumLinks()); err == nil {
		t.Error("out-of-range link id accepted")
	}
}

// The steady-state session round is allocation-free up to pool churn:
// the engine arena, injection plan, Result and all its slices are
// reused in place. Budget 2 leaves slack for a GC emptying the engine
// pool mid-measurement.
func TestSessionAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse and allocates for instrumentation; budget holds only in normal builds")
	}
	topo := grid.Canonical(grid.Mesh2D4)
	src := topo.At(topo.NumNodes() / 2)
	sess, err := sim.NewSession(topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Steady state includes mutations: kill one node and cut one link up
	// front so the down-mask path is exercised, then warm everything.
	if err := sess.SetNodeDown(3); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetLinkDown(11); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(src); err != nil {
		t.Fatal(err)
	}
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		// One link flip per round, like a churn-heavy lifetime cell.
		flip = !flip
		if flip {
			_ = sess.SetLinkDown(30)
		} else {
			_ = sess.SetLinkUp(30)
		}
		if _, err := sess.Run(src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state session round allocates %.1f/op, budget is 2", allocs)
	}
}
