package sim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
)

// This file is the lockstep lane engine: up to 64 seeded Monte Carlo
// replications of one (topology, protocol, source, loss rate, failure
// rate) grid point simulated simultaneously, one bit lane per
// replication. Per-node boolean state (decoded, delivered once,
// delivered twice) becomes a 64-bit lane mask, per-link Bernoulli loss
// draws become lost-masks from cached splitmix64 chain prefixes
// (lanerand.go), and pre-broadcast node failures become per-lane alive
// masks — so the slot loop's cost is paid once per link event instead
// of once per link event per replication.
//
// # Correctness contract
//
// Lane λ must reproduce, bit for bit, the scalar replication
//
//	cfg.Down    = spec.Config.Down + SampleFailures(t, src, seed_λ, failureRate)
//	cfg.Channel = NewBernoulliLoss(seed_λ, lossRate)
//	sim.Run(t, p, src, cfg)
//
// for every aggregate the Monte Carlo layer consumes. Lanes never
// interact: every mask operation is a per-lane AND/OR/ANDNOT, every
// draw is counter-based and keyed by the lane's own seed, and the
// repair planner runs per lane on that lane's decode view. Replaying a
// round re-derives identical draws, so a lane whose scalar counterpart
// would have exited the repair loop earlier simply replays its final
// schedule unchanged while other lanes catch up. The differential
// matrices in lanes_test.go and internal/mc prove the equivalence; the
// design argument is written out in DESIGN.md §11.
//
// # Fallback
//
// Anything inherently scalar — tracing, snapshotting, a caller-set
// Channel, the serialized appendRepair fallback after MaxPlanRounds,
// runaway schedules, grids past laneMaxNodes — returns
// ErrLaneFallback, and the Monte Carlo layer reruns the batch through
// scalar sim.Run, which also reproduces scalar error identities
// exactly.

// ErrLaneFallback reports a batch the lane engine declines to run.
// Callers fall back to per-replication scalar sim.Run, whose behavior
// — results and errors both — is the contract the lane engine mirrors.
var ErrLaneFallback = errors.New("sim: batch needs the scalar engine")

// laneMaxNodes bounds the lane engine's O(nodes x 64) decode-slot
// arena (a var so tests can force the fallback); larger grids fall
// back to scalar replications, which shard internally anyway.
var laneMaxNodes = 1 << 17

// LaneSpec describes one lockstep batch: len(Seeds) replications of a
// single Monte Carlo grid point, lane λ seeded by Seeds[λ].
type LaneSpec struct {
	Topology grid.Topology
	Protocol Protocol
	Source   grid.Coord
	// Config is the base configuration shared by every lane; its Down
	// list is the static failure set on top of which each lane samples
	// its own failures. Trace and Channel must be nil — tracing is
	// inherently scalar, and the engine owns the channel.
	Config Config
	// Seeds holds one derived replication seed per lane (1 to 64).
	Seeds []uint64
	// LossRate and FailureRate position the batch on the study grid;
	// both must lie in [0, 1].
	LossRate    float64
	FailureRate float64
}

// LaneResult is one lane's replication outcome: exactly the scalar
// Result fields the Monte Carlo layer aggregates.
type LaneResult struct {
	Reached    int
	Total      int
	Down       int
	Delay      int
	Tx         int
	Rx         int
	Lost       int
	Collisions int
	Duplicates int
	Repairs    int
	EnergyJ    float64
}

// Reachability returns the fraction of live nodes reached, matching
// Result.Reachability.
func (r LaneResult) Reachability() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Reached) / float64(r.Total)
}

// FullyReached reports 100% reachability.
func (r LaneResult) FullyReached() bool { return r.Reached == r.Total }

// RunLanes executes one lockstep batch and returns one LaneResult per
// seed, index-aligned with spec.Seeds. A batch the engine cannot carry
// (see ErrLaneFallback) reports the sentinel; invalid specs report
// ordinary errors.
func RunLanes(spec LaneSpec) ([]LaneResult, error) {
	t, p := spec.Topology, spec.Protocol
	if t == nil || p == nil {
		return nil, fmt.Errorf("sim: lane spec needs a topology and a protocol")
	}
	if n := len(spec.Seeds); n < 1 || n > 64 {
		return nil, fmt.Errorf("sim: lane batch needs 1 to 64 seeds (got %d)", n)
	}
	if r := spec.LossRate; r < 0 || r > 1 || math.IsNaN(r) {
		return nil, fmt.Errorf("sim: loss rate %g outside [0, 1]", spec.LossRate)
	}
	if r := spec.FailureRate; r < 0 || r > 1 || math.IsNaN(r) {
		return nil, fmt.Errorf("sim: failure rate %g outside [0, 1]", spec.FailureRate)
	}
	// Scalar-only configurations: let the caller rerun the batch
	// through sim.Run, which reproduces the scalar results — or the
	// scalar validation errors — these conditions imply.
	if spec.Config.Trace != nil || spec.Config.Channel != nil {
		return nil, ErrLaneFallback
	}
	if !t.Contains(spec.Source) || t.NumNodes() > laneMaxNodes {
		return nil, ErrLaneFallback
	}
	cfg := spec.Config.withDefaults(t.NumNodes())
	if err := cfg.Packet.Validate(); err != nil {
		return nil, ErrLaneFallback
	}
	if cfg.MaxSlots >= math.MaxInt32 {
		return nil, ErrLaneFallback
	}
	srcIdx := t.Index(spec.Source)
	for _, c := range cfg.Down {
		if !t.Contains(c) || t.Index(c) == srcIdx {
			return nil, ErrLaneFallback
		}
	}

	e := getLaneEngine(t, p, spec, cfg)
	defer e.release()
	return e.run()
}

// laneTx is one slot-bucket entry: node transmits in the bucket's slot
// in every lane of mask.
type laneTx struct {
	node int32
	mask uint64
}

// laneTxRec is one row of a node's transmission log: the per-lane
// record the repair planner's txAt consults.
type laneTxRec struct {
	slot int32
	mask uint64
}

// laneInj is a planned repair transmission for the lanes of mask.
type laneInj struct {
	node int32
	slot int32
	mask uint64
}

// laneQueue is the lane engine's slot-indexed schedule, the lane-mask
// analog of slotQueue: bucket b holds the (node, mask) transmissions
// of absolute slot b, capacity retained across resets.
type laneQueue struct {
	buckets [][]laneTx
	hi      int
}

func (q *laneQueue) add(slot int, node int32, mask uint64) {
	for slot >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	q.buckets[slot] = append(q.buckets[slot], laneTx{node: node, mask: mask})
	if slot+1 > q.hi {
		q.hi = slot + 1
	}
}

func (q *laneQueue) take(slot int) []laneTx {
	if slot >= len(q.buckets) {
		return nil
	}
	b := q.buckets[slot]
	q.buckets[slot] = b[:0]
	if len(b) == 0 {
		return nil
	}
	return b
}

func (q *laneQueue) reset() {
	n := min(q.hi, len(q.buckets))
	for i := 0; i < n; i++ {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.hi = 0
}

// laneEngine is the pooled arena of one lockstep batch.
type laneEngine struct {
	// Per-batch bindings, cleared on release.
	topo grid.Topology
	plan *relayPlan
	cfg  Config
	ix   grid.NeighborIndexer
	adj  [][]int32

	srcIdx int32
	v      int
	lanes  int
	active uint64 // mask of the batch's live lanes (low len(Seeds) bits)

	// replayMask selects the lanes the current replay simulates: the
	// first replay runs every lane, later replays drop completed and
	// settled lanes (their schedules are frozen, so replaying them is a
	// deterministic no-op). Because a replay is a pure function of the
	// lane's (schedule, injections), a lane's results are extracted the
	// moment it leaves the mask — its last replay is its final
	// trajectory — and no lane is ever simulated again after it stops
	// evolving.
	replayMask uint64

	lossRate float64
	lossT    uint64 // integer loss threshold: draw>>11 < lossT ⟺ unit < rate
	seeds    [64]uint64
	lossH2   [64]uint64 // per-lane chain prefix after (seed, domainLoss)
	txH      [64]uint64 // per-(slot, transmitter) continuation of lossH2

	// Arena, capacity retained across batches.
	alive      []uint64 // per node: lanes in which the node is live
	covered    []uint64 // per node: lanes in which the node decoded
	once       []uint64 // per slot scratch: delivered at least once
	twice      []uint64 // per slot scratch: delivered at least twice
	touched    []int32  // per slot scratch: receivers hit this slot
	decodeSlot []int32  // v*64 node-major first-decode slots, -1 never
	maxDec     []int32  // per node: upper bound on its decode slots, -1 none
	slotIdx    []int32  // per-node slot-merge scratch, -1 outside mergeSlot
	txLog      [][]laneTxRec
	pending    laneQueue
	inject     laneQueue
	nbufStep   []int32 // implicit-iteration scratch for the slot loop
	nbufA      []int32 // planner scratch: missing node's neighbors
	nbufB      []int32 // planner scratch: donor's neighbors
	nbufC      []int32 // planner scratch: planned repair's neighbors

	// Planner scratch: the per-missing-node forbidden-slot bitset and
	// the epoch-versioned neighbor marks it is built through (markU:
	// live neighbors of the missing node, markD: live neighbors of its
	// donor). A node is marked iff its entry equals the current epoch,
	// so clearing is one counter increment per missing node.
	forbid   []uint64
	forbidHi int
	markU    []int32
	markD    []int32
	epoch    int32
	roundBuf []laneInj

	// Cross-round loss cache. A loss draw is a pure function of
	// (slot, transmitter, receiver, lane seed), so a transmission's lost
	// masks recur bit-identically in every later replay of its slot.
	// lossEnt[node] lists the node's cached (slot, row offset) pairs; a
	// row in lossArena is one computed-lanes mask followed by one lost
	// mask per neighbor, in neighbor order. Rows live for the batch.
	lossEnt   [][]lossEntry
	lossArena []uint64

	txC, rxC, lostC, colC, dupC laneCounter
	totals                      [64]int32
	reached                     [64]int32
	repairs                     [64]int32

	// Per-slot checkpoints of the five radio counters and the repair
	// tallies, written at the top of every drained slot: checkpoint s
	// holds the counts over slots [0, s), which are identical between
	// consecutive rounds' replays below the round's resume slot. checkMax
	// is one past the highest checkpointed slot this batch.
	checkData []uint64
	checkRep  []int32
	checkMax  int

	outstanding int
	overflow    bool // a schedule crossed MaxSlots: scalar would error
}

// lossEntry locates one cached loss row: the lost masks of node's
// transmission at slot start at lossArena[off].
type lossEntry struct{ slot, off int32 }

var laneEnginePool = sync.Pool{New: func() any { return new(laneEngine) }}

// getLaneEngine binds a pooled engine to one batch: resolves the
// neighbor source exactly as the scalar engine does, derives the
// per-lane alive masks from the static Down list plus each lane's
// sampled failures, and precomputes the per-lane loss-chain prefixes.
func getLaneEngine(t grid.Topology, p Protocol, spec LaneSpec, cfg Config) *laneEngine {
	e := laneEnginePool.Get().(*laneEngine)
	e.topo = t
	e.plan = planFor(t, p, spec.Source)
	e.cfg = cfg
	e.srcIdx = int32(t.Index(spec.Source))
	e.v = t.NumNodes()
	e.lanes = len(spec.Seeds)
	e.active = ^uint64(0) >> uint(64-e.lanes)
	e.lossRate = spec.LossRate
	// rate*0x1p53 is exact (a pure exponent shift for rate in [0, 1]),
	// so the integer compare draw>>11 < lossT reproduces the scalar
	// float64(draw>>11)*0x1p-53 < rate decision bit for bit.
	e.lossT = uint64(math.Ceil(spec.LossRate * 0x1p53))
	copy(e.seeds[:], spec.Seeds)
	if e.lossRate > 0 {
		laneSeedPrefix(spec.Seeds, domainLoss, &e.lossH2)
	}

	// Same neighbor-source policy as runLoop; the lane engine never
	// prunes adjacency (failures are lane-local), so the shared cached
	// lists are used read-only.
	e.ix, e.adj = nil, nil
	if gix, ok := t.(grid.NeighborIndexer); ok &&
		(t.Kind() == grid.Irregular || e.v >= largeGridNodes) {
		e.ix = gix
	} else {
		e.adj = buildAdjacency(t, false)
	}

	e.sizeTo(e.v)
	for i := range e.alive {
		e.alive[i] = e.active
	}
	if spec.FailureRate > 0 {
		// fail-mask scratch: reuse `once`, which sizeTo just dimensioned
		// and reset will clear before the first slot.
		LaneFailureMasks(t, spec.Source, spec.Seeds, spec.FailureRate, e.once)
		for i := range e.alive {
			e.alive[i] &^= e.once[i]
		}
	}
	for _, c := range cfg.Down {
		e.alive[t.Index(c)] = 0
	}
	clear(e.totals[:])
	for i := range e.alive {
		for m := e.alive[i]; m != 0; m &= m - 1 {
			e.totals[bits.TrailingZeros64(m)]++
		}
	}
	return e
}

func (e *laneEngine) release() {
	e.topo = nil
	e.plan = nil
	e.cfg = Config{}
	e.ix = nil
	e.adj = nil
	laneEnginePool.Put(e)
}

func (e *laneEngine) sizeTo(v int) {
	if cap(e.alive) < v {
		e.alive = make([]uint64, v)
		e.covered = make([]uint64, v)
		e.once = make([]uint64, v)
		e.twice = make([]uint64, v)
		e.txLog = make([][]laneTxRec, v)
	}
	e.alive = e.alive[:v]
	e.covered = e.covered[:v]
	e.once = e.once[:v]
	e.twice = e.twice[:v]
	e.txLog = e.txLog[:v]
	if cap(e.decodeSlot) < v<<6 {
		e.decodeSlot = make([]int32, v<<6)
	}
	e.decodeSlot = e.decodeSlot[:v<<6]
	if cap(e.slotIdx) < v {
		e.slotIdx = make([]int32, v)
		for i := range e.slotIdx {
			e.slotIdx[i] = -1
		}
	}
	e.slotIdx = e.slotIdx[:v]
	if cap(e.maxDec) < v {
		e.maxDec = make([]int32, v)
	}
	e.maxDec = e.maxDec[:v]
	if cap(e.lossEnt) < v {
		e.lossEnt = make([][]lossEntry, v)
	}
	e.lossEnt = e.lossEnt[:v]
	if cap(e.markU) < v {
		e.markU = make([]int32, v)
		e.markD = make([]int32, v)
	}
	e.markU = e.markU[:v]
	e.markD = e.markD[:v]
	if e.epoch >= math.MaxInt32/2 {
		// A pooled engine's epoch survives across batches; on the
		// (practically unreachable) wrap, restart the mark arrays.
		clear(e.markU)
		clear(e.markD)
		e.epoch = 0
	}
}

func (e *laneEngine) neighborsOf(i int32, buf *[]int32) []int32 {
	if e.ix != nil {
		b := e.ix.IndexNeighbors(int(i), (*buf)[:0])
		*buf = b
		return b
	}
	return e.adj[i]
}

// run drives the lockstep analog of runLoop's schedule/repair rounds.
// The round loop is global, but every lane follows exactly its scalar
// trajectory: a lane still missing nodes plans its own injections on
// its own decode view; a lane that is complete — or settled, having
// planned nothing while missing (its unreached nodes are disconnected,
// the scalar break condition) — plans nothing more, and replaying its
// unchanged schedule is a deterministic no-op.
//
// That no-op is also why later rounds drop such lanes entirely: each
// replay simulates — and, counter adds being masked by the events
// themselves, counts — only the lanes whose injection lists are still
// growing. A lane that completes or settles is extracted right away
// from the replay that froze it; per-lane independence makes masking
// it out of subsequent replays invisible to the lanes that remain.
func (e *laneEngine) run() ([]LaneResult, error) {
	out := make([]LaneResult, e.lanes)
	var inj []laneInj
	e.replayMask = e.active
	resume := 0
	for round := 0; ; round++ {
		if round == 0 {
			e.reset()
		} else {
			e.rewind(resume, inj)
		}
		if err := e.drain(resume); err != nil {
			return nil, err
		}
		missing := e.missingLanes() & e.replayMask
		if e.cfg.DisableRepair {
			missing = 0
		}
		if missing != 0 && round >= e.cfg.MaxPlanRounds {
			// The scalar engine's serialized appendRepair fallback is
			// inherently per-lane sequential; hand the batch back.
			return nil, ErrLaneFallback
		}
		var next uint64
		newFrom := len(inj)
		for m := missing; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if e.planLane(lane, &inj) > 0 {
				next |= 1 << uint(lane)
			}
		}
		// Lanes leaving the replay set — complete, or settled having
		// planned nothing while missing (their unreached nodes are
		// disconnected, the scalar break condition) — are final now.
		for m := e.replayMask &^ next; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			e.extractLane(lane, &out[lane])
		}
		if next == 0 {
			return out, nil
		}
		// The next replay resumes at the earliest slot this round's
		// planning touched; everything below it is prefix-stable.
		resume = int(inj[newFrom].slot)
		for _, in := range inj[newFrom+1:] {
			if int(in.slot) < resume {
				resume = int(in.slot)
			}
		}
		e.replayMask = next
	}
}

// writeCheckpoint records the counter and repair state as of the top
// of the given slot — the counts over slots [0, slot).
func (e *laneEngine) writeCheckpoint(slot int) {
	if need := (slot + 1) * 160; len(e.checkData) < need {
		e.checkData = append(e.checkData, make([]uint64, need-len(e.checkData))...)
	}
	off := slot * 160
	copy(e.checkData[off:], e.txC.planes[:])
	copy(e.checkData[off+32:], e.rxC.planes[:])
	copy(e.checkData[off+64:], e.lostC.planes[:])
	copy(e.checkData[off+96:], e.colC.planes[:])
	copy(e.checkData[off+128:], e.dupC.planes[:])
	if need := (slot + 1) * 64; len(e.checkRep) < need {
		e.checkRep = append(e.checkRep, make([]int32, need-len(e.checkRep))...)
	}
	copy(e.checkRep[slot*64:], e.repairs[:])
	if slot+1 > e.checkMax {
		e.checkMax = slot + 1
	}
}

func (e *laneEngine) restoreCheckpoint(slot int) {
	off := slot * 160
	copy(e.txC.planes[:], e.checkData[off:off+32])
	copy(e.rxC.planes[:], e.checkData[off+32:off+64])
	copy(e.lostC.planes[:], e.checkData[off+64:off+96])
	copy(e.colC.planes[:], e.checkData[off+96:off+128])
	copy(e.dupC.planes[:], e.checkData[off+128:off+160])
	copy(e.repairs[:], e.checkRep[slot*64:(slot+1)*64])
}

// rewind prepares a resumed replay from slot S. Everything strictly
// below S — decode slots, coverage, transmission logs, counters — is
// identical between consecutive rounds' replays: draws are
// counter-based, the round's new injections all land at slots >= S,
// and the transmissions the prefix books are a pure function of its
// decode slots. So instead of re-simulating the prefix, rewind
// reconstructs its end state in place from the last replay: counters
// restore from the slot-S checkpoint (or, past the drained range,
// stand as they are), coverage and per-lane reached recompute from
// the decode slots below S, transmission logs truncate at S, and the
// schedule refills with exactly the prefix's bookings at slots >= S —
// the source's retransmits, the relays of prefix decodes, and the
// injection list.
func (e *laneEngine) rewind(S int, inj []laneInj) {
	if S < e.checkMax {
		e.restoreCheckpoint(S)
	} else {
		// No events in [checkMax, S): the current counters already are
		// the counts over [0, S). Backfill so the range stays dense.
		for s := e.checkMax; s <= S; s++ {
			e.writeCheckpoint(s)
		}
	}
	e.pending.reset()
	e.inject.reset()
	e.outstanding = 0
	e.overflow = false

	// reached is carried over from the last replay and repaired by
	// decrementing per cleared decode — no per-lane recount. maxDec
	// bounds a node's decode slots from above, so nodes whose bound is
	// below S skip the clearing scan entirely; after clearing, S-1 is
	// the new (conservative) bound.
	var ds [64]int32  // distinct prefix decode slots of one relay node
	var ms [64]uint64 // lanes (within replayMask) decoding at ds[k]
	rm := e.replayMask
	for i := 0; i < e.v; i++ {
		base := i << 6
		cov := e.covered[i]
		if int(e.maxDec[i]) >= S {
			for m := cov; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				if int(e.decodeSlot[base+lane]) >= S {
					e.decodeSlot[base+lane] = -1
					cov &^= 1 << uint(lane)
					e.reached[lane]--
				}
			}
			e.covered[i] = cov
			e.maxDec[i] = int32(S - 1)
		}
		rows := e.txLog[i]
		for len(rows) > 0 && int(rows[len(rows)-1].slot) >= S {
			rows = rows[:len(rows)-1]
		}
		e.txLog[i] = rows
		act := cov & rm
		if act == 0 || int32(i) == e.srcIdx || !e.plan.relay.get(int32(i)) {
			continue
		}
		cnt := 0
		for m := act; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			d := e.decodeSlot[base+lane]
			k := 0
			for ; k < cnt; k++ {
				if ds[k] == d {
					ms[k] |= 1 << uint(lane)
					break
				}
			}
			if k == cnt {
				ds[cnt], ms[cnt] = d, 1<<uint(lane)
				cnt++
			}
		}
		for k := 0; k < cnt; k++ {
			first := int(ds[k]) + int(e.plan.delay[i])
			if first >= S {
				e.schedule(first, int32(i), ms[k])
			}
			for _, off := range e.plan.retransmits(int32(i)) {
				if s := first + off; s >= S {
					e.schedule(s, int32(i), ms[k])
				}
			}
		}
	}
	if SourceTx >= S {
		e.schedule(SourceTx, e.srcIdx, e.replayMask)
	}
	for _, off := range e.plan.retransmits(e.srcIdx) {
		if s := SourceTx + off; s >= S {
			e.schedule(s, e.srcIdx, e.replayMask)
		}
	}
	for _, in := range inj {
		if int(in.slot) < S {
			continue
		}
		if m := in.mask & e.replayMask; m != 0 {
			e.injectAt(int(in.slot), in.node, m)
		}
	}
}

// missingLanes returns the lanes whose replication has live nodes
// still unreached.
func (e *laneEngine) missingLanes() uint64 {
	var m uint64
	for lane := 0; lane < e.lanes; lane++ {
		if e.reached[lane] < e.totals[lane] {
			m |= 1 << uint(lane)
		}
	}
	return m
}

// reset prepares the batch's first replay from a clean arena, the
// lockstep analog of engine.reset; later rounds go through rewind.
func (e *laneEngine) reset() {
	clear(e.covered)
	clear(e.once)
	clear(e.twice)
	for i := range e.decodeSlot {
		e.decodeSlot[i] = -1
	}
	for i := range e.maxDec {
		e.maxDec[i] = -1
	}
	for i := range e.txLog {
		e.txLog[i] = e.txLog[i][:0]
	}
	for i := range e.lossEnt {
		e.lossEnt[i] = e.lossEnt[i][:0]
	}
	e.lossArena = e.lossArena[:0]
	e.touched = e.touched[:0]
	e.pending.reset()
	e.inject.reset()
	e.txC.reset()
	e.rxC.reset()
	e.lostC.reset()
	e.colC.reset()
	e.dupC.reset()
	clear(e.repairs[:])
	e.outstanding = 0
	e.overflow = false
	e.checkMax = 0

	e.covered[e.srcIdx] = e.replayMask
	e.maxDec[e.srcIdx] = SourceTx
	base := int(e.srcIdx) << 6
	for lane := 0; lane < e.lanes; lane++ {
		e.decodeSlot[base+lane] = SourceTx
		e.reached[lane] = 1
	}
	e.schedule(SourceTx, e.srcIdx, e.replayMask)
	for _, off := range e.plan.retransmits(e.srcIdx) {
		e.schedule(SourceTx+off, e.srcIdx, e.replayMask)
	}
}

// schedule books a protocol transmission for the lanes of mask. A slot
// beyond MaxSlots means the scalar engine would report a runaway
// schedule; the overflow flag hands the batch to the scalar path,
// which reproduces that error.
func (e *laneEngine) schedule(slot int, node int32, mask uint64) {
	if slot > e.cfg.MaxSlots {
		e.overflow = true
		return
	}
	e.outstanding++
	e.pending.add(slot, node, mask)
}

func (e *laneEngine) injectAt(slot int, node int32, mask uint64) {
	if slot > e.cfg.MaxSlots {
		e.overflow = true
		return
	}
	e.outstanding++
	e.inject.add(slot, node, mask)
}

// drain processes slots in order, from the replay's resume slot, until
// no transmissions remain in any lane. On return checkMax is truncated
// to this drain's actual end: checkpoints past it were written by an
// earlier, longer replay whose suffix this round rewrote, so restoring
// them would resurrect a superseded trajectory's counts.
func (e *laneEngine) drain(from int) error {
	slot := from
	defer func() { e.checkMax = slot }()
	for ; e.outstanding > 0; slot++ {
		if e.overflow || slot > e.cfg.MaxSlots {
			return ErrLaneFallback
		}
		e.writeCheckpoint(slot)
		txs := e.pending.take(slot)
		injs := e.inject.take(slot)
		if txs == nil && injs == nil {
			continue
		}
		e.outstanding -= len(txs) + len(injs)
		for _, in := range injs {
			// An injection fires, per lane, only where its node decoded
			// in an earlier slot — replays may shift decode times.
			var fire uint64
			base := int(in.node) << 6
			for m := in.mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				if d := e.decodeSlot[base+lane]; d >= 0 && int(d) < slot {
					fire |= 1 << uint(lane)
					e.repairs[lane]++
				}
			}
			if fire != 0 {
				txs = append(txs, laneTx{node: in.node, mask: fire})
			}
		}
		if len(txs) == 0 {
			continue
		}
		e.step(slot, e.mergeSlot(txs))
		if e.overflow {
			return ErrLaneFallback
		}
	}
	return nil
}

// mergeSlot ORs together the masks of duplicate nodes in one slot's
// entries — the lane analog of dedupe: a node transmits at most once
// per slot per lane no matter how many schedule entries produced it.
// Dedupe is by a per-node index scratch (restored to -1 before
// returning) rather than a sort; entry order within a slot is
// irrelevant because every per-slot state update is a commutative mask
// OR and decoding only ever schedules future slots.
func (e *laneEngine) mergeSlot(txs []laneTx) []laneTx {
	out := txs[:0]
	for _, tx := range txs {
		if j := e.slotIdx[tx.node]; j >= 0 {
			out[j].mask |= tx.mask
		} else {
			e.slotIdx[tx.node] = int32(len(out))
			out = append(out, tx)
		}
	}
	for _, tx := range out {
		e.slotIdx[tx.node] = -1
	}
	return out
}

// step executes one slot: reception masks per link, collision masks
// per receiver, decode and relay scheduling per newly decoded lane.
func (e *laneEngine) step(slot int, txs []laneTx) {
	lossy := e.lossRate > 0
	touched := e.touched[:0]
	for _, tx := range txs {
		e.txC.add(tx.mask)
		e.txLog[tx.node] = append(e.txLog[tx.node], laneTxRec{slot: int32(slot), mask: tx.mask})
		nbs := e.neighborsOf(tx.node, &e.nbufStep)
		var row []uint64
		if lossy {
			row = e.lossRow(slot, tx.node, tx.mask, nbs)
		}
		for k, nb := range nbs {
			cand := tx.mask & e.alive[nb]
			if cand == 0 {
				continue
			}
			del := cand
			if lossy {
				if lost := row[k+1] & cand; lost != 0 {
					e.lostC.add(lost)
					del = cand &^ lost
					if del == 0 {
						continue
					}
				}
			}
			e.rxC.add(del)
			if e.once[nb] == 0 && e.twice[nb] == 0 {
				touched = append(touched, nb)
			}
			e.twice[nb] |= e.once[nb] & del
			e.once[nb] |= del
		}
	}
	e.touched = touched
	e.decodePhase(slot, touched)
}

// lossRow returns the lost masks of node's transmission at slot, one
// per neighbor of nbs (offset by the leading computed-lanes mask).
// Draws are computed only for lanes of mask the row does not cover
// yet; replays of the same slot in later rounds — the common case,
// since every repair round re-runs a suffix of the schedule — hit the
// cached bits without touching the PRNG.
func (e *laneEngine) lossRow(slot int, node int32, mask uint64, nbs []int32) []uint64 {
	off := int32(-1)
	for _, ent := range e.lossEnt[node] {
		if int(ent.slot) == slot {
			off = ent.off
			break
		}
	}
	if off < 0 {
		off = int32(len(e.lossArena))
		for i := 0; i <= len(nbs); i++ {
			e.lossArena = append(e.lossArena, 0)
		}
		e.lossEnt[node] = append(e.lossEnt[node], lossEntry{slot: int32(slot), off: off})
	}
	row := e.lossArena[off : int(off)+len(nbs)+1]
	need := mask &^ row[0]
	if need == 0 {
		return row
	}
	sw := golden + uint64(slot)
	txw := golden + uint64(uint32(node))
	for m := need; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		e.txH[lane] = mix64(mix64(e.lossH2[lane]+sw) + txw)
	}
	for k, nb := range nbs {
		rxw := golden + uint64(uint32(nb))
		var lost uint64
		for m := need; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if mix64(e.txH[lane]+rxw)>>11 < e.lossT {
				lost |= 1 << uint(lane)
			}
		}
		row[k+1] |= lost
	}
	row[0] |= need
	return row
}

// decodePhase resolves the slot's touched receivers per lane:
// collision lanes (two or more deliveries), duplicate lanes (exactly
// one delivery, already covered), and first-decode lanes, which
// schedule the node's compiled relay plan in exactly those lanes.
func (e *laneEngine) decodePhase(slot int, touched []int32) {
	for _, nb := range touched {
		o1, t2 := e.once[nb], e.twice[nb]
		e.once[nb], e.twice[nb] = 0, 0
		if t2 != 0 {
			e.colC.add(t2)
		}
		ex1 := o1 &^ t2
		if ex1 == 0 {
			continue
		}
		cov := e.covered[nb]
		if dup := ex1 & cov; dup != 0 {
			e.dupC.add(dup)
		}
		newDec := ex1 &^ cov
		if newDec == 0 {
			continue
		}
		e.covered[nb] = cov | newDec
		e.maxDec[nb] = int32(slot) // drain slots ascend: always the max
		base := int(nb) << 6
		for m := newDec; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			e.decodeSlot[base+lane] = int32(slot)
			e.reached[lane]++
		}
		if e.plan.relay.get(nb) {
			first := slot + int(e.plan.delay[nb])
			e.schedule(first, nb, newDec)
			for _, off := range e.plan.retransmits(nb) {
				e.schedule(first+off, nb, newDec)
			}
		}
	}
}

// planLane ports planInjections to one lane's view of the last replay:
// one repair per missing node, donor and slot chosen by exactly the
// scalar rules against this lane's decode slots and transmission log.
// Returns how many injections were added; zero means the lane's
// unreached nodes are disconnected from its decoded set.
//
// The scalar planner probes candidate slots one by one, rescanning
// neighborhoods and transmission logs at each probe; here the three
// conflict rules are folded into one forbidden-slot bitset built once
// per missing node, and the chosen slot is the first clear bit after
// the donor's decode. The bitset forbids exactly the slots conflictAt
// would reject, so the planned injections are identical:
//
//  1. slots where a live neighbor of u transmitted in this lane's last
//     replay, or is planned to by this round;
//  2. slots where a live neighbor of the donor first-decodes — the
//     donor's extra transmission would collide it;
//  3. slots of repairs planned this round that deliver to the donor's
//     neighborhood (by the repairing node, or any undecoded common
//     neighbor).
func (e *laneEngine) planLane(lane int, inj *[]laneInj) int {
	bit := uint64(1) << uint(lane)
	round := e.roundBuf[:0]
	for u := int32(0); u < int32(e.v); u++ {
		if e.alive[u]&bit == 0 || e.covered[u]&bit != 0 {
			continue
		}
		e.epoch++
		ep := e.epoch
		e.clearForbid()
		// One pass over u's live neighbors: pick the earliest-decoded
		// donor (ties by index), mark them for the round scan, and
		// forbid their logged transmission slots (rule 1).
		donor, bestD := int32(-1), int32(0)
		for _, nb := range e.neighborsOf(u, &e.nbufA) {
			if e.alive[nb]&bit == 0 {
				continue
			}
			e.markU[nb] = ep
			for _, rec := range e.txLog[nb] {
				if rec.mask&bit != 0 {
					e.setForbid(int(rec.slot))
				}
			}
			if d := e.decodeSlot[int(nb)<<6+lane]; d >= 0 {
				if donor < 0 || d < bestD || (d == bestD && nb < donor) {
					donor, bestD = nb, d
				}
			}
		}
		if donor < 0 {
			continue
		}
		// Donor's live neighbors: mark for rule 3 and forbid their
		// first-decode slots (rule 2).
		for _, w := range e.neighborsOf(donor, &e.nbufB) {
			if e.alive[w]&bit == 0 {
				continue
			}
			e.markD[w] = ep
			if d := e.decodeSlot[int(w)<<6+lane]; d >= 0 {
				e.setForbid(int(d))
			}
		}
		// This round's planned repairs: rule 1's planned half for u's
		// neighbors, rule 3 for the donor's.
		for _, in := range round {
			if e.markU[in.node] == ep {
				e.setForbid(int(in.slot))
			}
			if e.markD[in.node] == ep {
				e.setForbid(int(in.slot))
				continue
			}
			for _, x := range e.neighborsOf(in.node, &e.nbufC) {
				if e.markD[x] == ep && e.decodeSlot[int(x)<<6+lane] < 0 {
					e.setForbid(int(in.slot))
					break
				}
			}
		}
		slot := e.firstFree(int(bestD) + 1)
		round = append(round, laneInj{node: donor, slot: int32(slot), mask: bit})
	}
	e.roundBuf = round
	*inj = append(*inj, round...)
	return len(round)
}

// clearForbid empties the forbidden-slot bitset (only the words
// setForbid dirtied since the last clear).
func (e *laneEngine) clearForbid() {
	for i := 0; i <= e.forbidHi && i < len(e.forbid); i++ {
		e.forbid[i] = 0
	}
	e.forbidHi = 0
}

func (e *laneEngine) setForbid(s int) {
	w := s >> 6
	for w >= len(e.forbid) {
		e.forbid = append(e.forbid, 0)
	}
	e.forbid[w] |= 1 << uint(s&63)
	if w > e.forbidHi {
		e.forbidHi = w
	}
}

// firstFree returns the first slot >= s not in the forbidden bitset;
// slots beyond the bitset are free.
func (e *laneEngine) firstFree(s int) int {
	w := s >> 6
	if w >= len(e.forbid) {
		return s
	}
	m := ^e.forbid[w] & (^uint64(0) << uint(s&63))
	for {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
		w++
		if w >= len(e.forbid) {
			return w << 6
		}
		m = ^e.forbid[w]
	}
}

// extractLane reads one frozen lane's scalar-equivalent metrics out of
// its final replay: the counters' lane bits, its decode-slot column,
// and the shared energy model.
func (e *laneEngine) extractLane(lane int, r *LaneResult) {
	r.Total = int(e.totals[lane])
	r.Down = e.v - r.Total
	r.Reached = int(e.reached[lane])
	r.Tx = e.txC.count(lane)
	r.Rx = e.rxC.count(lane)
	r.Lost = e.lostC.count(lane)
	r.Collisions = e.colC.count(lane)
	r.Duplicates = e.dupC.count(lane)
	r.Repairs = int(e.repairs[lane])
	ledger := radio.NewLedger(e.cfg.Model, e.cfg.Packet)
	ledger.AddTx(r.Tx)
	ledger.AddRx(r.Rx)
	r.EnergyJ = ledger.TotalJ()
	for i := 0; i < e.v; i++ {
		if int32(i) == e.srcIdx {
			continue
		}
		if d := int(e.decodeSlot[i<<6+lane]); d > r.Delay {
			r.Delay = d
		}
	}
}
