package sim

import (
	"fmt"

	"wsnbcast/internal/grid"
)

// EventKind classifies trace events emitted by the engine.
type EventKind int

const (
	// EventTx is a node transmitting the broadcast message in a slot.
	EventTx EventKind = iota
	// EventDecode is a node successfully decoding the message for the
	// first time.
	EventDecode
	// EventDuplicate is a node decoding a copy it already holds.
	EventDuplicate
	// EventCollision is a node hearing two or more simultaneous
	// transmissions and decoding nothing.
	EventCollision
	// EventRepair is the scheduler granting an unplanned retransmission
	// to cover a node the protocol rules left unreachable.
	EventRepair
	// EventLost is a lossy channel (Config.Channel) dropping one copy
	// before it reaches the node: the receiver neither hears nor pays
	// for it.
	EventLost
)

// String names the event kind for human-readable traces.
func (k EventKind) String() string {
	switch k {
	case EventTx:
		return "tx"
	case EventDecode:
		return "decode"
	case EventDuplicate:
		return "dup"
	case EventCollision:
		return "collide"
	case EventRepair:
		return "repair"
	case EventLost:
		return "lost"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one engine occurrence: node did/suffered kind in slot.
type Event struct {
	Slot int
	Kind EventKind
	Node grid.Coord
}

// String renders the event as "slot 12: decode (3,4)".
func (e Event) String() string {
	return fmt.Sprintf("slot %d: %s %s", e.Slot, e.Kind, e.Node)
}

// TraceFunc receives engine events in deterministic order. A nil trace
// is never called.
type TraceFunc func(Event)

// CollectTrace returns a TraceFunc appending to the given slice, for
// tests and the viz tool.
func CollectTrace(dst *[]Event) TraceFunc {
	return func(e Event) { *dst = append(*dst, e) }
}
