package sim_test

// Delta-propagation correctness suite: Session.RunDelta must be an
// exact drop-in for sim.Run at every point of any mutation sequence,
// whether a round is served from the incremental cone, the zero-seed
// shortcut, or any fallback to the full engine. Every check compares
// the full Result JSON against a cold sim.Run handed the equivalent
// Down/DownLinks lists — the same oracle the session suite uses — so
// the splice-equals-resimulate argument is locked byte for byte.

import (
	"bytes"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/sim"
)

// checkDelta runs RunDelta and compares against the one-shot oracle.
func (h *sessionHarness) checkDelta(src grid.Coord, label string) {
	h.t.Helper()
	got, err := h.sess.RunDelta(src)
	if err != nil {
		h.t.Fatalf("%s: RunDelta: %v", label, err)
	}
	want, err := sim.Run(h.topo, h.proto, src, h.oneShotConfig())
	if err != nil {
		h.t.Fatalf("%s: one-shot: %v", label, err)
	}
	gj, wj := mustResultJSON(h.t, got), mustResultJSON(h.t, want)
	if !bytes.Equal(gj, wj) {
		h.t.Fatalf("%s: RunDelta result differs from sim.Run:\n got %s\nwant %s", label, gj, wj)
	}
}

// The scripted all-kinds sequence from the session suite, driven
// through RunDelta: deaths, cuts, a recovery, repeated no-mutation
// rounds (the zero-seed shortcut), a plain Run interleaved, and a
// source rotation — each step checked against the oracle.
func TestDeltaDifferentialAllKinds(t *testing.T) {
	for _, k := range grid.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			topo := grid.Canonical(k)
			src := topo.At(topo.NumNodes() / 2)
			h := newSessionHarness(t, topo, core.ForTopology(k), sim.Config{})
			h.checkDelta(src, "pristine")
			h.checkDelta(src, "pristine again") // zero seeds: cached bytes
			h.nodeDown(3)
			h.checkDelta(src, "one death")
			h.linkDown(7)
			h.linkDown(21)
			h.checkDelta(src, "death+cuts")
			h.linkUp(7)
			h.checkDelta(src, "recovery")
			h.linkDown(21) // toggled back up and down: net parity zero
			h.linkUp(21)
			h.checkDelta(src, "parity cancel")
			h.check(src, "plain Run interleaved") // session.Run between deltas
			h.nodeDown(topo.NumNodes() - 2)
			h.linkDown(2)
			h.checkDelta(src, "more churn")
			h.checkDelta(topo.At(1), "rotated source")
			h.checkDelta(src, "rotated back")
			hits, _ := h.sess.DeltaStats()
			if hits == 0 {
				t.Error("delta path never engaged: the suite is vacuous")
			}
		})
	}
}

// A pseudo-random churn storm driven through RunDelta on the 2D-4
// mesh: many flips per step, links cut and restored repeatedly,
// occasional deaths — the lifetime hot loop's exact access pattern.
func TestDeltaDifferentialChurnStorm(t *testing.T) {
	topo := grid.NewMesh2D4(10, 10)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	nl := len(h.links)
	rng := uint64(54321)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 16; step++ {
		for f := 0; f < 8; f++ {
			id := next(nl)
			if h.cut[id] {
				h.linkUp(id)
			} else {
				h.linkDown(id)
			}
		}
		if step%3 == 2 {
			i := next(topo.NumNodes())
			if i != topo.NumNodes()/2 && !h.down[i] {
				h.nodeDown(i)
			}
		}
		h.checkDelta(topo.At(topo.NumNodes()/2), "storm step")
	}
	hits, _ := h.sess.DeltaStats()
	if hits == 0 {
		t.Error("delta path never engaged during the storm")
	}
}

// The same storm under flooding, whose collision holes make the
// repair planner inject retransmissions: the cone walk must replan
// injections through the real engine and splice multi-replay caches,
// or abort to the exact full path — byte-identical either way.
func TestDeltaDifferentialFloodingRepairs(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.NewFlooding(), sim.Config{})
	nl := len(h.links)
	rng := uint64(99)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	src := topo.At(topo.NumNodes() / 2)
	base, err := sim.Run(topo, core.NewFlooding(), src, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Repairs == 0 {
		t.Fatal("flooding run has no repairs: the multi-replay path is untested")
	}
	for step := 0; step < 12; step++ {
		for f := 0; f < 4; f++ {
			id := next(nl)
			if h.cut[id] {
				h.linkUp(id)
			} else {
				h.linkDown(id)
			}
		}
		h.checkDelta(src, "flooding storm step")
	}
}

// Alternating sources never arm the cache (each snapshot would be
// stale before use), but a source that settles re-points it: the
// stability heuristic must keep both patterns byte-identical and
// re-engage the cone once the origin sticks.
func TestDeltaSourceRotation(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	a, b := topo.At(10), topo.At(50)
	for i := 0; i < 4; i++ {
		h.linkDown(i * 3)
		h.checkDelta(a, "alternating A")
		h.checkDelta(b, "alternating B")
	}
	hitsBefore, _ := h.sess.DeltaStats()
	for i := 0; i < 4; i++ {
		h.linkUp(i * 3)
		h.checkDelta(b, "settled B")
	}
	hitsAfter, _ := h.sess.DeltaStats()
	if hitsAfter <= hitsBefore {
		t.Errorf("delta path did not re-engage after the source settled: hits %d -> %d",
			hitsBefore, hitsAfter)
	}
	if reasons := h.sess.DeltaFallbacksByReason(); reasons["source_changed"] == 0 {
		t.Errorf("no source_changed fallbacks recorded: %v", reasons)
	}
}

// Scalar configs (trace, lossy channel) are inherently full-run; the
// delta entry point must route them to the plain path — counted as
// scalar fallbacks — and still match the oracle.
func TestDeltaScalarConfigFallsBack(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	p := core.ForTopology(grid.Mesh2D4)
	src := topo.At(20)
	cfg := sim.Config{Channel: sim.NewBernoulliLoss(9, 0.1)}
	sess, err := sim.NewSession(topo, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := sess.SetLinkDown(round + 4); err != nil {
			t.Fatal(err)
		}
		got, err := sess.RunDelta(src)
		if err != nil {
			t.Fatal(err)
		}
		oracle := cfg
		for id := 4; id <= round+4; id++ {
			lk := sim.LinksOf(topo)[id]
			oracle.DownLinks = append(oracle.DownLinks, sim.Link{A: topo.At(int(lk.A)), B: topo.At(int(lk.B))})
		}
		want, err := sim.Run(topo, p, src, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustResultJSON(t, got), mustResultJSON(t, want)) {
			t.Fatalf("round %d: lossy RunDelta differs from sim.Run", round)
		}
	}
	hits, falls := sess.DeltaStats()
	if hits != 0 || falls != 3 {
		t.Errorf("lossy session: hits %d falls %d, want 0/3", hits, falls)
	}
	if reasons := sess.DeltaFallbacksByReason(); reasons["scalar"] != 3 {
		t.Errorf("fallback reasons = %v, want scalar:3", reasons)
	}
}

// Forcing the seed-overflow threshold down to its floor makes a large
// mutation batch fall back — byte-identically — while a later small
// batch re-engages the cone.
func TestDeltaForcedSeedOverflow(t *testing.T) {
	defer sim.SetDeltaSeedDivForTest(1 << 30)() // cap = 64 + ~0
	topo := grid.NewMesh2D4(10, 10)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(topo.NumNodes() / 2)
	h.checkDelta(src, "arm cache")
	for id := 0; id < 70; id++ { // 70 seeds > the 64-seed floor
		h.linkDown(id)
	}
	h.checkDelta(src, "overflow batch")
	if reasons := h.sess.DeltaFallbacksByReason(); reasons["seed_overflow"] == 0 {
		t.Fatalf("no seed_overflow fallback: %v", reasons)
	}
	h.linkUp(3)
	h.checkDelta(src, "small batch after overflow")
	if hits, _ := h.sess.DeltaStats(); hits == 0 {
		t.Error("cone never re-engaged after the overflow re-capture")
	}
}

// Forcing the event budget to its floor aborts the cone mid-drain.
// The abort must leave no stale queue buckets behind: after restoring
// the budget, the very next small delta must succeed byte-identically
// (a dirty bucket would surface as spurious events or a false
// event_budget abort).
func TestDeltaForcedEventBudgetAndQueueCleanup(t *testing.T) {
	restore := sim.SetDeltaEventBudgetForTest(-1<<20, 8) // budget < 0: first event aborts
	topo := grid.NewMesh2D4(10, 10)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(topo.NumNodes() / 2)
	h.checkDelta(src, "arm cache")
	for id := 20; id < 50; id++ {
		h.linkDown(id)
	}
	h.checkDelta(src, "over-budget batch")
	if reasons := h.sess.DeltaFallbacksByReason(); reasons["event_budget"] == 0 {
		restore()
		t.Fatalf("no event_budget fallback: %v", reasons)
	}
	restore()
	hitsBefore, _ := h.sess.DeltaStats()
	h.linkUp(25)
	h.checkDelta(src, "small batch after abort")
	if hits, _ := h.sess.DeltaStats(); hits <= hitsBefore {
		t.Error("cone did not recover after the aborted walk")
	}
}

// Reset drops the cache: the next RunDelta is a cold re-capture and
// the pristine bytes come back exactly.
func TestDeltaReset(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(30)
	base, err := h.sess.RunDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	want := mustResultJSON(t, base)
	h.nodeDown(10)
	h.linkDown(5)
	h.checkDelta(src, "mutated")
	h.sess.Reset()
	h.down = map[int]bool{}
	h.cut = map[int]bool{}
	if h.sess.DeltaCacheValidForTest() {
		t.Error("Reset left the delta cache armed")
	}
	got, err := h.sess.RunDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	if gj := mustResultJSON(t, got); !bytes.Equal(gj, want) {
		t.Fatalf("reset RunDelta differs from pristine:\n got %s\nwant %s", gj, want)
	}
}

// The zero-seed shortcut returns the identical Result pointer with
// identical bytes — the graph has not changed, so the previous round's
// assembled Result IS this round's.
func TestDeltaZeroSeedShortcut(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	sess, err := sim.NewSession(topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	src := topo.At(30)
	first, err := sess.RunDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	want := mustResultJSON(t, first)
	again, err := sess.RunDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("unchanged-graph RunDelta rebuilt the Result instead of returning the cached one")
	}
	if got := mustResultJSON(t, again); !bytes.Equal(got, want) {
		t.Fatalf("cached Result bytes changed:\n got %s\nwant %s", got, want)
	}
}

// Every RunDelta call lands in exactly one bucket: hits + fallbacks
// must equal the call count.
func TestDeltaStatsAccounting(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(30)
	calls := 0
	step := func(mutate func()) {
		mutate()
		h.checkDelta(src, "stats step")
		calls++
	}
	step(func() {})
	step(func() {})
	step(func() { h.linkDown(3) })
	step(func() { h.nodeDown(7) })
	step(func() { h.linkUp(3) })
	hits, falls := h.sess.DeltaStats()
	if int(hits+falls) != calls {
		t.Errorf("hits %d + fallbacks %d != %d RunDelta calls", hits, falls, calls)
	}
}

// Session mutation edge cases (issue satellite): SetLinkUp on a link
// whose endpoint node is already down must keep the dead node's row
// empty while restoring the live endpoint's view — under both Run and
// RunDelta.
func TestSessionLinkUpWithDeadEndpoint(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(topo.NumNodes() / 2)
	// Find a link incident to node 9, kill node 9, then cut and restore
	// that link around delta rounds.
	var id int = -1
	for i, lk := range h.links {
		if lk.A == 9 || lk.B == 9 {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatal("node 9 has no links")
	}
	h.nodeDown(9)
	h.checkDelta(src, "dead endpoint")
	h.linkDown(id)
	h.checkDelta(src, "cut link on dead endpoint")
	h.linkUp(id)
	h.checkDelta(src, "restored link on dead endpoint")
	h.check(src, "plain run agrees")
}

// Repeated SetNodeDown of the same node across delta rounds is a
// no-op after the first call: no duplicate seeds, no byte drift.
func TestSessionRepeatedNodeDownDelta(t *testing.T) {
	topo := grid.NewMesh2D4(8, 8)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(topo.NumNodes() / 2)
	h.checkDelta(src, "pristine")
	h.nodeDown(12)
	h.checkDelta(src, "first death")
	for i := 0; i < 3; i++ {
		if err := h.sess.SetNodeDown(12); err != nil {
			t.Fatal(err)
		}
		h.checkDelta(src, "repeated death")
	}
}

// A churn rate that overflows the seed cap round after round must trip
// the overload latch: after two consecutive capacity fallbacks the
// session drops the cache and runs plain (no snapshot tax) until the
// suppression window expires, then re-captures and serves deltas
// again. Output stays byte-identical throughout.
func TestDeltaOverloadLatch(t *testing.T) {
	defer sim.SetDeltaSeedDivForTest(1 << 30)() // seed cap = 64 + ~0
	defer sim.SetDeltaSuppressForTest(4, 8)()
	topo := grid.NewMesh2D4(10, 10)
	h := newSessionHarness(t, topo, core.ForTopology(grid.Mesh2D4), sim.Config{})
	src := topo.At(topo.NumNodes() / 2)
	h.checkDelta(src, "arm cache")

	// Two consecutive 70-seed rounds (> the 64-seed floor): the first
	// overflow re-captures, the second engages the latch.
	for id := 0; id < 70; id++ {
		h.linkDown(id)
	}
	h.checkDelta(src, "overflow round 1")
	if !h.sess.DeltaCacheValidForTest() {
		t.Fatal("first overflow must re-capture, not drop the cache")
	}
	for id := 0; id < 70; id++ {
		h.linkUp(id)
	}
	h.checkDelta(src, "overflow round 2")
	if !h.sess.DeltaSuppressedForTest() {
		t.Fatal("two consecutive seed overflows did not engage the latch")
	}
	if h.sess.DeltaCacheValidForTest() {
		t.Fatal("latch engaged but the cache was kept")
	}

	// The four suppressed rounds: plain runs, no re-capture, still
	// counted under the reason that tripped the latch.
	for i := 0; i < 2; i++ {
		h.linkDown(5)
		h.checkDelta(src, "suppressed round")
		h.linkUp(5)
		h.checkDelta(src, "suppressed round")
		if h.sess.DeltaCacheValidForTest() {
			t.Fatalf("suppressed round %d re-captured", i)
		}
	}
	if reasons := h.sess.DeltaFallbacksByReason(); reasons["seed_overflow"] < 6 {
		t.Errorf("suppressed rounds not attributed to seed_overflow: %v", reasons)
	}

	// Window expired: the next stable round re-captures, the one after
	// serves a delta again.
	h.checkDelta(src, "re-capture after latch")
	if !h.sess.DeltaCacheValidForTest() {
		t.Fatal("cache not re-armed after the suppression window")
	}
	hitsBefore, _ := h.sess.DeltaStats()
	h.checkDelta(src, "unchanged round after latch") // zero-seed shortcut
	if hits, _ := h.sess.DeltaStats(); hits <= hitsBefore {
		t.Errorf("delta path never re-engaged after the latch expired: %v", h.sess.DeltaFallbacksByReason())
	}
}
