// Package sim is the slotted-time broadcast simulator underlying the
// paper's numerical evaluation. All sensor nodes are synchronized
// (Section 2); time advances in slots; a transmission in a slot is
// heard by every directly connected neighbor; a node decodes the
// message in a slot iff exactly one of its neighbors transmits in that
// slot (two or more simultaneous transmissions in range collide and
// destroy each other at that receiver).
//
// The simulator executes a Protocol — a set of pure, node-local
// decision rules — from a given source and accounts transmissions,
// receptions, energy, collisions and delay exactly the way the paper's
// Section 4 does.
package sim

import "wsnbcast/internal/grid"

// Protocol is a broadcast protocol expressed as pure node-local rules,
// mirroring the paper's premise that the topology is regular and fixed
// so each node can decide its role from (topology, source, own id)
// alone. Implementations must be deterministic and stateless.
type Protocol interface {
	// Name identifies the protocol in tables and traces.
	Name() string

	// IsRelay reports whether the node forwards the broadcast message
	// after first decoding it. The source is implicitly a transmitter
	// regardless of this predicate.
	IsRelay(t grid.Topology, src, node grid.Coord) bool

	// TxDelay returns the number of slots between the node's first
	// decode and its (first) forwarding transmission; must be >= 1.
	// The paper's protocols use 1 everywhere except the 3D-6 z-relays
	// in the source plane, which are deferred one extra slot.
	TxDelay(t grid.Topology, src, node grid.Coord) int

	// Retransmits returns the designated retransmission offsets of the
	// node, in slots after its first transmission (each must be >= 1).
	// These are the paper's "gray nodes": relays whose first
	// transmission is known to collide at some receiver and which
	// therefore transmit again. A nil or empty slice means none.
	Retransmits(t grid.Topology, src, node grid.Coord) []int
}

// SourceTx is the slot in which the source transmits: slot 0.
const SourceTx = 0
