package sim_test

// Differential and budget tests for the large-grid fast path: implicit
// neighbor indexing, bitset/struct-of-arrays arena state, and the
// deterministic sharded step. The contract under test is the same as
// differential_test.go's — byte-identical Results and traces against
// the frozen sim.RunReference oracle — extended across the engine's
// path-selection thresholds (forced via the export_test knobs) and
// across Config.Workers values.

import (
	"fmt"
	"reflect"
	"testing"

	"wsnbcast/internal/core"
	"wsnbcast/internal/grid"
	"wsnbcast/internal/radio"
	"wsnbcast/internal/sim"
)

// largeTopo returns a >= 256^2-node mesh of the given kind, the scale
// the issue requires the workers matrix to run at.
func largeTopo(k grid.Kind) grid.Topology {
	if k == grid.Mesh3D6 {
		return grid.NewMesh3D6(41, 40, 40) // 65600 nodes
	}
	return grid.New(k, 256, 256, 1) // 65536 nodes
}

// TestDifferentialImplicitSmall reruns the full small differential
// matrix — four kinds x {paper, flooding, jittered} x {lossless,
// lossy, down, lossy+down} from three sources — with the implicit path
// forced at every size. Together with TestDifferentialEngineSmall
// (materialized path, same matrix) this proves the two neighbor
// sources are interchangeable on every configuration the engine
// supports, borders and repair planning included.
func TestDifferentialImplicitSmall(t *testing.T) {
	defer sim.SetLargeGridThresholdForTest(0)()
	for _, k := range grid.Kinds() {
		topo := diffSmallTopo(k)
		sources := []grid.Coord{topo.At(0), topo.At(topo.NumNodes() / 2), topo.At(topo.NumNodes() - 1)}
		for _, p := range diffProtocols(k) {
			for _, src := range sources {
				for name, cfg := range channelConfigs(topo, src) {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", k, p.Name(), src, name), func(t *testing.T) {
						diffOne(t, topo, p, src, cfg)
					})
				}
			}
		}
	}
}

// TestDifferentialShardedSmall forces both the implicit path and the
// sharded step (every slot shards, even single-transmitter ones) on
// the small matrix, at several worker counts. This is the cheap,
// exhaustive proof of the shard-merge determinism argument: collisions,
// duplicates, lossy drops, down nodes and repair replays all cross the
// merge, and the result must still be byte-identical to the serial
// oracle — traces included. Run under -race by the Makefile's race
// target, which also makes it the data-race check for shardWork.
func TestDifferentialShardedSmall(t *testing.T) {
	defer sim.SetLargeGridThresholdForTest(0)()
	defer sim.SetParallelMinTxsForTest(1)()
	for _, workers := range []int{2, 3, 8} {
		for _, k := range grid.Kinds() {
			topo := diffSmallTopo(k)
			src := topo.At(topo.NumNodes()/2 + 1)
			for _, p := range diffProtocols(k) {
				for name, cfg := range channelConfigs(topo, src) {
					cfg.Workers = workers
					t.Run(fmt.Sprintf("w%d/%s/%s/%s", workers, k, p.Name(), name), func(t *testing.T) {
						diffOne(t, topo, p, src, cfg)
					})
				}
			}
		}
	}
}

// largeDiffOne checks Run against a precomputed reference Result and
// trace (the reference engine is too slow to rerun per worker count at
// this scale).
func largeDiffOne(t *testing.T, topo grid.Topology, p sim.Protocol, src grid.Coord, cfg sim.Config,
	want *sim.Result, wantTrace []sim.Event) {
	t.Helper()
	var gotTrace []sim.Event
	if wantTrace != nil {
		cfg.Trace = sim.CollectTrace(&gotTrace)
	}
	got, err := sim.Run(topo, p, src, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Result differs from reference at workers=%d\nref: %v\nnew: %v",
			cfg.Workers, want, got)
	}
	if wantTrace != nil && !reflect.DeepEqual(wantTrace, gotTrace) {
		t.Fatalf("trace differs at workers=%d: reference %d events, got %d",
			cfg.Workers, len(wantTrace), len(gotTrace))
	}
}

// TestLargeGridWorkersDifferential is the at-scale contract: on >=
// 256^2-node meshes of all four kinds, the implicit+sharded engine must
// match sim.RunReference byte-for-byte at Workers 1, 2 and 8. The
// paper protocol runs the full channel matrix with traces; flooding
// and jittered flooding run lossless (tracing half a million flooding
// receptions x 4 engines adds minutes for no extra merge coverage —
// the sharded-small matrix already crosses every event kind through
// the merge).
func TestLargeGridWorkersDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("large-grid differential matrix skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation makes the 65k-node reference runs take minutes; sharded coverage under race comes from TestDifferentialShardedSmall")
	}
	defer sim.SetParallelMinTxsForTest(32)() // shard even sparse wavefront slots
	for _, k := range grid.Kinds() {
		topo := largeTopo(k)
		src := center(topo)
		paper := core.ForTopology(k)
		for name, cfg := range channelConfigs(topo, src) {
			if name == "lossy+down" {
				continue // planning-heavy at this scale; lossy and down each covered alone
			}
			t.Run(fmt.Sprintf("%s/%s/%s", k, paper.Name(), name), func(t *testing.T) {
				var refTrace []sim.Event
				refCfg := cfg
				refCfg.Trace = sim.CollectTrace(&refTrace)
				want, err := sim.RunReference(topo, paper, src, refCfg)
				if err != nil {
					t.Fatalf("RunReference: %v", err)
				}
				for _, w := range []int{1, 2, 8} {
					wCfg := cfg
					wCfg.Workers = w
					largeDiffOne(t, topo, paper, src, wCfg, want, refTrace)
				}
			})
		}
		for _, p := range []sim.Protocol{core.NewFlooding(), core.NewJitteredFlooding(8)} {
			t.Run(fmt.Sprintf("%s/%s/lossless", k, p.Name()), func(t *testing.T) {
				want, err := sim.RunReference(topo, p, src, sim.Config{})
				if err != nil {
					t.Fatalf("RunReference: %v", err)
				}
				for _, w := range []int{1, 2, 8} {
					largeDiffOne(t, topo, p, src, sim.Config{Workers: w}, want, nil)
				}
			})
		}
	}
}

// TestLargeGridShardedUnderRace keeps one at-scale sharded run in the
// race build: flooding on the 256^2 8-neighbor mesh with Workers=8
// pushes thousands of transmitters through every sharded slot, and the
// race detector checks the shard workers' memory discipline for real
// (no reference comparison — Workers=1 of the same engine is the
// oracle here).
func TestLargeGridShardedUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("large-grid sharded run skipped in -short mode")
	}
	topo := grid.NewMesh2D8(256, 256)
	src := center(topo)
	serial, err := sim.Run(topo, core.NewFlooding(), src, sim.Config{Workers: 1})
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	sharded, err := sim.Run(topo, core.NewFlooding(), src, sim.Config{Workers: 8})
	if err != nil {
		t.Fatalf("sharded Run: %v", err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("Workers=8 Result differs from Workers=1\nserial: %v\nsharded: %v", serial, sharded)
	}
}

// TestLargeGridForcedMaterialized pits the two in-engine paths against
// each other directly at 256^2: the default implicit path (serial and
// sharded) must byte-match the forced materialized path — the PR-4
// engine configuration — on the same mesh.
func TestLargeGridForcedMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("forced-materialized comparison skipped in -short mode")
	}
	topo := grid.NewMesh2D8(256, 256)
	src := center(topo)
	p := core.ForTopology(grid.Mesh2D8)
	cfg := sim.Config{Channel: sim.NewBernoulliLoss(13, 0.05)}

	restore := sim.SetLargeGridThresholdForTest(1 << 30)
	want, err := sim.Run(topo, p, src, cfg)
	restore()
	if err != nil {
		t.Fatalf("materialized Run: %v", err)
	}
	for _, w := range []int{1, 8} {
		wCfg := cfg
		wCfg.Workers = w
		got, err := sim.Run(topo, p, src, wCfg)
		if err != nil {
			t.Fatalf("implicit Run (workers=%d): %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("implicit path (workers=%d) differs from materialized path", w)
		}
	}
}

// TestLargeGridNoMaterializedAdjacency is the tentpole's memory claim
// at full scale: a 1024x1024 8-neighbor broadcast (a million nodes,
// ~8.4M directed edges) completes through the implicit path with no
// materialized adjacency anywhere — the shared cache stays empty for
// the size, and the unbounded plan cache is bypassed for the bounded
// LRU. Steady-state per-node engine state is O(N) int32 words plus
// O(N) bits; an adjacency table alone would be ~33 MiB.
func TestLargeGridNoMaterializedAdjacency(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node run skipped in -short mode")
	}
	topo := grid.NewMesh2D8(1024, 1024)
	src := center(topo)
	p := core.ForTopology(grid.Mesh2D8)
	res, err := sim.Run(topo, p, src, sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reached != res.Total || res.Total != topo.NumNodes() {
		t.Fatalf("million-node broadcast incomplete: reached %d/%d", res.Reached, res.Total)
	}
	if err := res.Validate(topo, radio.Default(), radio.CanonicalPacket()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sim.AdjCacheHas(topo) {
		t.Fatalf("large grid materialized adjacency into the shared cache")
	}
	if sim.PlanCacheHas(topo, p, src) {
		t.Fatalf("large grid populated the unbounded plan cache instead of the LRU")
	}
}

// TestLargeGridAllocBudget pins the steady-state allocation budget on
// the implicit path at 256^2: after warm-up, a Run allocates only what
// escapes into the Result (the Result itself, DecodeSlot, the TxSlots
// headers plus flat backing, PerNodeEnergyJ) — a dozen allocations,
// independent of node count and degree.
func TestLargeGridAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse; budget holds only in normal builds")
	}
	if testing.Short() {
		t.Skip("large-grid alloc budget skipped in -short mode")
	}
	topo := grid.NewMesh2D8(256, 256)
	src := center(topo)
	p := core.ForTopology(grid.Mesh2D8)
	if _, err := sim.Run(topo, p, src, sim.Config{}); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sim.Run(topo, p, src, sim.Config{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 12 {
		t.Errorf("256^2 mesh: %.1f allocs per steady-state Run, budget is 12", allocs)
	}
}

// TestEffectiveWorkers pins the Config.Workers semantics: 0 (and
// negative) auto-select — serial below the large-grid threshold,
// capped GOMAXPROCS above it; 1 pins serial; explicit counts pass
// through.
func TestEffectiveWorkers(t *testing.T) {
	if w := sim.EffectiveWorkersForTest(1, 1<<20); w != 1 {
		t.Errorf("Workers=1 must pin serial, got %d", w)
	}
	if w := sim.EffectiveWorkersForTest(5, 64); w != 5 {
		t.Errorf("explicit Workers=5 must pass through, got %d", w)
	}
	if w := sim.EffectiveWorkersForTest(0, 512); w != 1 {
		t.Errorf("auto below threshold must be serial, got %d", w)
	}
	if w := sim.EffectiveWorkersForTest(-3, 512); w != 1 {
		t.Errorf("negative Workers below threshold must be serial, got %d", w)
	}
	if w := sim.EffectiveWorkersForTest(0, 1<<20); w < 1 || w > 8 {
		t.Errorf("auto above threshold must pick 1..8 workers, got %d", w)
	}
}
